package sgxperf_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sgxperf"
)

func TestPublicAPIQuickstart(t *testing.T) {
	h, err := sgxperf.NewHost()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := sgxperf.AttachLogger(h, sgxperf.LoggerOptions{Workload: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	iface, _, err := sgxperf.ParseEDL(`
		enclave {
			trusted { public ecall_ping(); };
			untrusted { ocall_pong(); };
		};
	`)
	if err != nil {
		t.Fatal(err)
	}
	impl := map[string]sgxperf.TrustedFn{
		"ecall_ping": func(env *sgxperf.Env, args any) (any, error) {
			return env.Ocall("ocall_pong", nil)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgxperf.EnclaveConfig{Name: "api"}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sgxperf.BuildOcallTable(iface, h, map[string]sgxperf.OcallFn{
		"ocall_pong": func(ctx *sgxperf.Context, args any) (any, error) { return "pong", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	proxies := sgxperf.Proxies(app, h, otab)
	res, err := proxies["ecall_ping"](ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != "pong" {
		t.Fatalf("res = %v", res)
	}
	report := sgxperf.MustAnalyze(lg.Trace())
	if report.TotalCalls() != 2 {
		t.Fatalf("total calls = %d", report.TotalCalls())
	}
	if !strings.Contains(report.Render(), "ecall_ping") {
		t.Fatal("report missing the ecall")
	}
}

// TestSessionQuickstart drives the same application as
// TestPublicAPIQuickstart through the Session builder and checks the
// live collector agrees with the post-mortem report.
func TestSessionQuickstart(t *testing.T) {
	s, err := sgxperf.NewSession(
		sgxperf.WithEDL(`
			enclave {
				trusted { public ecall_ping(); };
				untrusted { ocall_pong(); };
			};
		`),
		sgxperf.WithOcallImpls(map[string]sgxperf.OcallFn{
			"ocall_pong": func(ctx *sgxperf.Context, args any) (any, error) { return "pong", nil },
		}),
		sgxperf.WithLogger(sgxperf.WithWorkload("session-test"), sgxperf.WithAEX(sgxperf.AEXCount)),
	)
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.Live(sgxperf.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ctx := s.NewContext("main")
	enc, err := s.Enclave(ctx, sgxperf.EnclaveConfig{Name: "api"},
		map[string]sgxperf.TrustedFn{
			"ecall_ping": func(env *sgxperf.Env, args any) (any, error) {
				return env.Ocall("ocall_pong", nil)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := enc.Call(ctx, "ecall_ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != "pong" {
		t.Fatalf("res = %v", res)
	}
	if _, err := enc.Call(ctx, "ecall_ghost", nil); err == nil {
		t.Fatal("unknown ecall accepted")
	}
	report, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalCalls() != 2 {
		t.Fatalf("total calls = %d", report.TotalCalls())
	}
	col.Drain()
	snap := col.Snapshot()
	if snap.Counts.Ecalls != 1 || snap.Counts.Ocalls != 1 {
		t.Fatalf("live counts = %+v", snap.Counts)
	}
	if snap.Workload != "session-test" {
		t.Fatalf("live workload = %q", snap.Workload)
	}
	s.Close()
	if !s.Logger.Detached() {
		t.Fatal("session close did not detach the logger")
	}
}

// TestSessionAnalyzeParallelMatchesSerial records a workload through a
// Session and checks the default (parallel) analysis equals the serial
// reference pipeline — both via Session.AnalyzeWith and via a
// NewAnalyzer built on the session's trace.
func TestSessionAnalyzeParallelMatchesSerial(t *testing.T) {
	s, err := sgxperf.NewSession(
		sgxperf.WithEDL(`
			enclave {
				trusted { public ecall_put(); public ecall_get(); };
				untrusted { ocall_read(); ocall_write(); };
			};
		`),
		sgxperf.WithOcallImpls(map[string]sgxperf.OcallFn{
			"ocall_read":  func(ctx *sgxperf.Context, args any) (any, error) { return nil, nil },
			"ocall_write": func(ctx *sgxperf.Context, args any) (any, error) { return nil, nil },
		}),
		sgxperf.WithLogger(sgxperf.WithWorkload("parallel-vs-serial"), sgxperf.WithAEX(sgxperf.AEXCount)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := s.NewContext("main")
	enc, err := s.Enclave(ctx, sgxperf.EnclaveConfig{Name: "kv"},
		map[string]sgxperf.TrustedFn{
			"ecall_put": func(env *sgxperf.Env, args any) (any, error) {
				return env.Ocall("ocall_write", nil)
			},
			"ecall_get": func(env *sgxperf.Env, args any) (any, error) {
				if _, err := env.Ocall("ocall_read", nil); err != nil {
					return nil, err
				}
				return env.Ocall("ocall_read", nil)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := "ecall_put"
		if i%3 == 0 {
			name = "ecall_get"
		}
		if _, err := enc.Call(ctx, name, nil); err != nil {
			t.Fatal(err)
		}
	}

	parallel, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.AnalyzeWith(sgxperf.AnalyzerOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Session parallel report differs from the serial reference")
	}
	// Same equality through the standalone analyser on the session's trace.
	a, err := sgxperf.NewAnalyzer(s.Logger.Trace(), sgxperf.AnalyzerOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Analyze(), parallel) {
		t.Fatal("standalone serial analyser differs from the Session report")
	}
}

// TestSentinelErrorsThroughReexports asserts errors.Is matches the
// sentinels through every layer of wrapping the re-exports add.
func TestSentinelErrorsThroughReexports(t *testing.T) {
	if _, err := sgxperf.NewAnalyzer(nil, sgxperf.AnalyzerOptions{}); !errors.Is(err, sgxperf.ErrNoTrace) {
		t.Fatalf("NewAnalyzer(nil) = %v, want ErrNoTrace", err)
	}
	if _, err := sgxperf.Analyze(nil); !errors.Is(err, sgxperf.ErrNoTrace) {
		t.Fatalf("Analyze(nil) = %v, want ErrNoTrace", err)
	}
	h, err := sgxperf.NewHost()
	if err != nil {
		t.Fatal(err)
	}
	l, err := sgxperf.NewLogger(h, sgxperf.WithWorkload("sentinel"))
	if err != nil {
		t.Fatal(err)
	}
	l.Detach()
	if _, err := sgxperf.AttachLive(l, sgxperf.LiveOptions{}); !errors.Is(err, sgxperf.ErrLoggerDetached) {
		t.Fatalf("AttachLive(detached) = %v, want ErrLoggerDetached", err)
	} else if !strings.Contains(err.Error(), "live: attach") {
		t.Fatalf("wrapped error lost its context: %v", err)
	}
}

func TestRunWorkloadAndTraceFileRoundTrip(t *testing.T) {
	run, err := sgxperf.RunWorkload("sqlite", sgxperf.WorkloadOptions{
		Variant: "enclave",
		Ops:     50,
		Logger:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Ops != 50 || run.Trace == nil {
		t.Fatalf("run = %+v", run)
	}
	path := filepath.Join(t.TempDir(), "trace.evdb")
	if err := run.Trace.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := sgxperf.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ecalls.Len() != run.Trace.Ecalls.Len() {
		t.Fatalf("loaded %d ecalls, want %d", loaded.Ecalls.Len(), run.Trace.Ecalls.Len())
	}
	// Analysis works on the loaded trace (including the embedded EDL).
	a, err := sgxperf.NewAnalyzer(loaded, sgxperf.AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interface() == nil {
		t.Fatal("embedded EDL not recovered from the trace file")
	}
}

func TestRunWorkloadUnknownNames(t *testing.T) {
	if _, err := sgxperf.RunWorkload("ghost", sgxperf.WorkloadOptions{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := sgxperf.WorkloadVariants("ghost"); err == nil {
		t.Fatal("unknown workload accepted by WorkloadVariants")
	}
	for _, w := range sgxperf.Workloads() {
		vs, err := sgxperf.WorkloadVariants(w)
		if err != nil || len(vs) == 0 {
			t.Fatalf("variants(%s) = %v, %v", w, vs, err)
		}
	}
}

func TestRunWorkloadWithWorkingSet(t *testing.T) {
	run, err := sgxperf.RunWorkload("glamdring", sgxperf.WorkloadOptions{
		Variant:    "enclave",
		Ops:        1,
		WorkingSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.SteadyPages == 0 {
		t.Fatal("working set not measured")
	}
}

func TestCatalogueAndWeightsExposed(t *testing.T) {
	// Table 1's six problem classes plus the eight static classes
	// (reentrancy, boundary copies, transition-bound calls, locks held
	// across the boundary, loop-amplified transitions, boundary data
	// hazards, secret leaks, direction mismatches).
	if len(sgxperf.Catalogue()) != 14 {
		t.Fatal("problem catalogue incomplete")
	}
	w := sgxperf.DefaultWeights()
	if w.Move1 != 0.35 || w.Move5 != 0.50 || w.Move10 != 0.65 {
		t.Fatalf("Equation 1 defaults wrong: %+v", w)
	}
	if sgxperf.DefaultFrequency.Duration(sgxperf.Cycles(3.4e9)) != time.Second {
		t.Fatal("frequency helpers broken")
	}
}
