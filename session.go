package sgxperf

import (
	"context"
	"fmt"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/staticlint"
	"sgxperf/internal/sdk"
)

// Session is the one-stop entry point to the toolset: a simulated host
// with the sgx-perf logger preloaded, an enclave interface, and the
// ocall table — everything the 5-step quick start (NewHost →
// AttachLogger → ParseEDL → BuildOcallTable → Proxies) builds by hand.
// The individual steps remain available for callers that need to
// compose the pieces differently.
type Session struct {
	Host      *Host
	Logger    *Logger
	Interface *Interface
	// Ocalls is the assembled ocall table; the logger has already swapped
	// its tracing stubs in front of it.
	Ocalls *OcallTable
	// Warnings are the EDL parser's non-fatal diagnostics, if WithEDL was
	// used.
	Warnings []string

	switchless *sdk.SwitchlessConfig
	// enclaves tracks enclaves with a running switchless runtime, so
	// Close can stop them.
	enclaves []*SessionEnclave
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	hostOpts   []HostOption
	loggerOpts []LoggerOption
	edl        string
	hasEDL     bool
	ocallImpls map[string]OcallFn
	switchless *sdk.SwitchlessConfig
}

// WithEDL declares the enclave interface from EDL source. Without it the
// session starts with an empty interface that can be populated through
// Session.Interface.
func WithEDL(src string) SessionOption {
	return func(c *sessionConfig) { c.edl, c.hasEDL = src, true }
}

// WithOcallImpls supplies the untrusted ocall implementations backing
// the interface's untrusted functions.
func WithOcallImpls(impls map[string]OcallFn) SessionOption {
	return func(c *sessionConfig) { c.ocallImpls = impls }
}

// WithSwitchless applies a switchless runtime configuration — typically
// emitted by the static analyzer (SwitchlessConfigFrom, or
// `sgx-perf-lint -switchless-config`) — to every enclave the session
// creates: calls the configuration routes run on self-tuning worker
// pools instead of crossing the enclave boundary. A nil configuration
// is ignored.
func WithSwitchless(cfg *sdk.SwitchlessConfig) SessionOption {
	return func(c *sessionConfig) { c.switchless = cfg }
}

// WithHost forwards options to the underlying NewHost call.
func WithHost(opts ...HostOption) SessionOption {
	return func(c *sessionConfig) { c.hostOpts = append(c.hostOpts, opts...) }
}

// WithLogger forwards options to the underlying logger attachment.
func WithLogger(opts ...LoggerOption) SessionOption {
	return func(c *sessionConfig) { c.loggerOpts = append(c.loggerOpts, opts...) }
}

// NewSession builds a host, preloads the logger, parses the interface
// and assembles the ocall table in one call.
func NewSession(opts ...SessionOption) (*Session, error) {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	h, err := host.New(cfg.hostOpts...)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	l, err := logger.New(h, cfg.loggerOpts...)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	s := &Session{Host: h, Logger: l, switchless: cfg.switchless}
	if cfg.hasEDL {
		iface, warnings, err := edl.Parse(cfg.edl)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		s.Interface, s.Warnings = iface, warnings
	} else {
		s.Interface = edl.NewInterface()
	}
	otab, err := sdk.BuildOcallTable(s.Interface, h.URTS, cfg.ocallImpls)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	s.Ocalls = otab
	return s, nil
}

// NewContext creates a simulated OS thread on the session's host.
func (s *Session) NewContext(name string) *Context { return s.Host.NewContext(name) }

// SessionEnclave is an enclave created through a Session, with its
// untrusted ecall proxies pre-generated.
type SessionEnclave struct {
	App     *AppEnclave
	Proxies map[string]Proxy
	// Switchless is the enclave's self-tuning switchless runtime, non-nil
	// when the session was built WithSwitchless. Call routes configured
	// ecalls through it automatically; it is stopped by Stop (or
	// Session.Close).
	Switchless *sdk.Switchless

	session *Session
}

// Enclave builds an enclave against the session's interface and returns
// it with its proxies. With a switchless configuration on the session,
// the enclave's self-tuning runtime is started here and ocalls to
// configured names are routed through it from the first call.
func (s *Session) Enclave(ctx *Context, cfg EnclaveConfig, trusted map[string]TrustedFn) (*SessionEnclave, error) {
	app, err := s.Host.URTS.CreateEnclave(ctx, cfg, s.Interface, trusted)
	if err != nil {
		return nil, fmt.Errorf("session: enclave %q: %w", cfg.Name, err)
	}
	e := &SessionEnclave{
		App:     app,
		Proxies: sdk.Proxies(app, s.Host.Proc, s.Ocalls),
		session: s,
	}
	if s.switchless != nil {
		// The raw ocall table, deliberately: switchless workers bypass the
		// logger's stub interposition (the blind spot the synthetic trace
		// events compensate for).
		sl, err := s.Host.URTS.StartSwitchlessAuto(app, *s.switchless, s.Ocalls)
		if err != nil {
			return nil, fmt.Errorf("session: enclave %q: %w", cfg.Name, err)
		}
		e.Switchless = sl
		s.enclaves = append(s.enclaves, e)
	}
	return e, nil
}

// Call invokes one of the enclave's public ecalls by name. Ecalls the
// session's switchless configuration routes go through the worker pool
// (falling back to the regular transition path when its queue is full);
// everything else takes the regular proxy.
func (e *SessionEnclave) Call(ctx *Context, name string, args any) (any, error) {
	if e.Switchless != nil && e.Switchless.RoutesEcall(name) {
		if f, ok := e.session.Interface.Lookup(name); ok {
			return e.Switchless.Call(ctx, f.ID, e.session.Ocalls, args)
		}
	}
	p, ok := e.Proxies[name]
	if !ok {
		return nil, fmt.Errorf("session: no ecall proxy %q", name)
	}
	return p(ctx, args)
}

// Stop shuts down the enclave's switchless runtime, if any: workers are
// joined and later Calls take the regular transition path. Idempotent.
func (e *SessionEnclave) Stop() {
	if e.Switchless != nil {
		e.Switchless.Stop()
	}
}

// Analyze runs the post-mortem analysis over everything the session's
// logger has recorded so far, on the parallel pipeline (the default;
// see AnalyzerOptions.Serial for the reference pipeline).
func (s *Session) Analyze() (*Report, error) {
	return s.AnalyzeWith(AnalyzerOptions{})
}

// AnalyzeWith is Analyze with explicit analyser options — detector
// weights, per-enclave dissection, or the serial reference pipeline.
func (s *Session) AnalyzeWith(opts AnalyzerOptions) (*Report, error) {
	return s.AnalyzeContext(context.Background(), opts)
}

// AnalyzeContext is AnalyzeWith with cooperative cancellation, for
// callers — server handlers, deadline-bound batch jobs — that may need
// to abandon a long analysis. Cancellation is observed between analysis
// kernels and pool partitions; a cancelled run returns ctx.Err(). An
// uncancelled AnalyzeContext produces exactly AnalyzeWith's report.
func (s *Session) AnalyzeContext(ctx context.Context, opts AnalyzerOptions) (*Report, error) {
	a, err := analyzer.New(s.Logger.Trace(), opts)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	r, err := a.AnalyzeContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return r, nil
}

// Lint runs the static interface analysis over the session's interface:
// findings from the EDL alone, before (or without) any workload run.
func (s *Session) Lint(opts LintOptions) *LintReport {
	return staticlint.Static(s.Interface, opts)
}

// LintHybrid joins the static findings with everything the session's
// logger has recorded so far, ranking them by observed call counts and
// flagging static-only and dynamic-only discrepancies.
func (s *Session) LintHybrid(opts LintOptions) (*LintReport, error) {
	return s.LintHybridContext(context.Background(), opts)
}

// LintHybridContext is LintHybrid with cooperative cancellation; a
// cancelled run returns ctx.Err(). An uncancelled LintHybridContext
// produces exactly LintHybrid's report.
func (s *Session) LintHybridContext(ctx context.Context, opts LintOptions) (*LintReport, error) {
	r, err := staticlint.HybridContext(ctx, s.Interface, s.Logger.Trace(), opts)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return r, nil
}

// Live attaches a streaming collector to the session's trace. The
// caller owns the collector and should Close it when done.
func (s *Session) Live(opts LiveOptions) (*LiveCollector, error) {
	return live.Attach(s.Logger, opts)
}

// Close stops any switchless runtimes the session started and detaches
// the logger; the recorded trace stays readable.
func (s *Session) Close() {
	for _, e := range s.enclaves {
		e.Stop()
	}
	s.Logger.Detach()
}
