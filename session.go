package sgxperf

import (
	"fmt"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/staticlint"
	"sgxperf/internal/sdk"
)

// Session is the one-stop entry point to the toolset: a simulated host
// with the sgx-perf logger preloaded, an enclave interface, and the
// ocall table — everything the 5-step quick start (NewHost →
// AttachLogger → ParseEDL → BuildOcallTable → Proxies) builds by hand.
// The individual steps remain available for callers that need to
// compose the pieces differently.
type Session struct {
	Host      *Host
	Logger    *Logger
	Interface *Interface
	// Ocalls is the assembled ocall table; the logger has already swapped
	// its tracing stubs in front of it.
	Ocalls *OcallTable
	// Warnings are the EDL parser's non-fatal diagnostics, if WithEDL was
	// used.
	Warnings []string
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	hostOpts   []HostOption
	loggerOpts []LoggerOption
	edl        string
	hasEDL     bool
	ocallImpls map[string]OcallFn
}

// WithEDL declares the enclave interface from EDL source. Without it the
// session starts with an empty interface that can be populated through
// Session.Interface.
func WithEDL(src string) SessionOption {
	return func(c *sessionConfig) { c.edl, c.hasEDL = src, true }
}

// WithOcallImpls supplies the untrusted ocall implementations backing
// the interface's untrusted functions.
func WithOcallImpls(impls map[string]OcallFn) SessionOption {
	return func(c *sessionConfig) { c.ocallImpls = impls }
}

// WithHost forwards options to the underlying NewHost call.
func WithHost(opts ...HostOption) SessionOption {
	return func(c *sessionConfig) { c.hostOpts = append(c.hostOpts, opts...) }
}

// WithLogger forwards options to the underlying logger attachment.
func WithLogger(opts ...LoggerOption) SessionOption {
	return func(c *sessionConfig) { c.loggerOpts = append(c.loggerOpts, opts...) }
}

// NewSession builds a host, preloads the logger, parses the interface
// and assembles the ocall table in one call.
func NewSession(opts ...SessionOption) (*Session, error) {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	h, err := host.New(cfg.hostOpts...)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	l, err := logger.New(h, cfg.loggerOpts...)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	s := &Session{Host: h, Logger: l}
	if cfg.hasEDL {
		iface, warnings, err := edl.Parse(cfg.edl)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		s.Interface, s.Warnings = iface, warnings
	} else {
		s.Interface = edl.NewInterface()
	}
	otab, err := sdk.BuildOcallTable(s.Interface, h.URTS, cfg.ocallImpls)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	s.Ocalls = otab
	return s, nil
}

// NewContext creates a simulated OS thread on the session's host.
func (s *Session) NewContext(name string) *Context { return s.Host.NewContext(name) }

// SessionEnclave is an enclave created through a Session, with its
// untrusted ecall proxies pre-generated.
type SessionEnclave struct {
	App     *AppEnclave
	Proxies map[string]Proxy
}

// Enclave builds an enclave against the session's interface and returns
// it with its proxies.
func (s *Session) Enclave(ctx *Context, cfg EnclaveConfig, trusted map[string]TrustedFn) (*SessionEnclave, error) {
	app, err := s.Host.URTS.CreateEnclave(ctx, cfg, s.Interface, trusted)
	if err != nil {
		return nil, fmt.Errorf("session: enclave %q: %w", cfg.Name, err)
	}
	return &SessionEnclave{
		App:     app,
		Proxies: sdk.Proxies(app, s.Host.Proc, s.Ocalls),
	}, nil
}

// Call invokes one of the enclave's public ecalls by name.
func (e *SessionEnclave) Call(ctx *Context, name string, args any) (any, error) {
	p, ok := e.Proxies[name]
	if !ok {
		return nil, fmt.Errorf("session: no ecall proxy %q", name)
	}
	return p(ctx, args)
}

// Analyze runs the post-mortem analysis over everything the session's
// logger has recorded so far, on the parallel pipeline (the default;
// see AnalyzerOptions.Serial for the reference pipeline).
func (s *Session) Analyze() (*Report, error) {
	return s.AnalyzeWith(AnalyzerOptions{})
}

// AnalyzeWith is Analyze with explicit analyser options — detector
// weights, per-enclave dissection, or the serial reference pipeline.
func (s *Session) AnalyzeWith(opts AnalyzerOptions) (*Report, error) {
	a, err := analyzer.New(s.Logger.Trace(), opts)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return a.Analyze(), nil
}

// Lint runs the static interface analysis over the session's interface:
// findings from the EDL alone, before (or without) any workload run.
func (s *Session) Lint(opts LintOptions) *LintReport {
	return staticlint.Static(s.Interface, opts)
}

// LintHybrid joins the static findings with everything the session's
// logger has recorded so far, ranking them by observed call counts and
// flagging static-only and dynamic-only discrepancies.
func (s *Session) LintHybrid(opts LintOptions) (*LintReport, error) {
	r, err := staticlint.Hybrid(s.Interface, s.Logger.Trace(), opts)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return r, nil
}

// Live attaches a streaming collector to the session's trace. The
// caller owns the collector and should Close it when done.
func (s *Session) Live(opts LiveOptions) (*LiveCollector, error) {
	return live.Attach(s.Logger, opts)
}

// Close detaches the logger; the recorded trace stays readable.
func (s *Session) Close() { s.Logger.Detach() }
