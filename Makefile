GO ?= go

.PHONY: build test vet lint race verify fuzz bench-contention bench-analyze bench-switchless bench-serve bench-outofcore serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus the repository's own analyzer suite
# (cmd/sgx-perf-vet): the virtual-clock and lock-free hot-path
# invariants, the concurrency dataflow checks (lock order, held-across,
# atomic mixing) and the interprocedural boundary checks (transition
# amplification, double fetch, pointer escape).
lint: vet
	$(GO) run ./cmd/sgx-perf-vet

# The recording pipeline, the live streaming engine
# (internal/perf/live), the event store with its subscription tap and
# parallel codec (internal/evstore) and the shared worker pool
# (internal/pool) behind the parallel analyzer are the
# concurrency-sensitive packages; run their suites under the race
# detector, together with the simulator layers they drive (machine, SDK
# runtime, host) — lock-ordering bugs between the logger and the SDK
# sync primitives only surface when both run raced. RACE_PKGS is the one
# place that list lives; race and verify share it.
RACE_PKGS = ./internal/perf/... ./internal/evstore/... \
	./internal/pool/... ./internal/serve/... ./internal/experiments/... \
	./internal/sgx/... ./internal/sdk/... ./internal/host/...

race:
	$(GO) test -race $(RACE_PKGS)

# verify is the documented check for this repo: lint (go vet + the
# custom analyzers) + the tier-1 gate (build + full test suite, see
# ROADMAP.md) + the race-detector suites.
verify: lint
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)

# Short fuzz smoke over the two parser/codec boundaries that accept
# untrusted bytes: the columnar trace codec round-trip and the EDL
# parser. FUZZTIME bounds each target (CI uses the default).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz=FuzzCodecRoundTrip -fuzztime=$(FUZZTIME) ./internal/evstore
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/edl

# Re-measure logger recording throughput, chaining the previous results
# in BENCH_results.json as the baseline for the speedup computation.
bench-contention:
	$(GO) run ./cmd/sgx-perf-bench -exp contention \
		-baseline BENCH_results.json -json BENCH_results.json

# Measure analysis-pipeline throughput (serial vs parallel) and trace
# codec speed (gob vs columnar), merging the rows into BENCH_results.json
# under the "analyze" key.
bench-analyze:
	GOMAXPROCS=8 $(GO) run ./cmd/sgx-perf-bench -exp analyze -repeats 5 \
		-json BENCH_results.json

# Run the closed switchless loop (baseline → lint → auto-config →
# re-measure) and merge the outcome into BENCH_results.json under the
# "switchless" key; the bench exits non-zero unless the auto-configured
# run beats the 1.5x speedup bar with identical results and a converged
# scheduler.
bench-switchless:
	$(GO) run ./cmd/sgx-perf-bench -exp switchless -json BENCH_results.json

# Benchmark the always-on analysis service: 8 concurrent sessions, cold
# vs warm report latency through the artifact cache, sustained request
# throughput and append invalidation, merging the outcome into
# BENCH_results.json under the "serve" key. The bench exits non-zero
# unless the served report matches the offline analyser byte-for-byte,
# warm requests beat cold by ≥ 5x and an append reuses cached windows.
bench-serve:
	$(GO) run ./cmd/sgx-perf-bench -exp serve -json BENCH_results.json

# Price the out-of-core streaming analysis against the resident path on
# the same on-disk trace, merging the outcome into BENCH_results.json
# under the "outofcore" key. The bench exits non-zero unless the
# streaming report is byte-identical to the resident one, peak heap
# drops by ≥ 3x and the streaming peak stays under an absolute 64 MiB
# bound regardless of trace size. OUTOFCORE_OPS overrides the synthetic
# trace size (0 = the experiment's default).
OUTOFCORE_OPS ?= 0
bench-outofcore:
	$(GO) run ./cmd/sgx-perf-bench -exp outofcore \
		-outofcore-ops $(OUTOFCORE_OPS) -json BENCH_results.json

# End-to-end daemon smoke: build the binaries, record a trace, boot
# sgx-perf-serve on a free port, upload the trace over HTTP and check
# GET /v1/report is byte-identical to offline `sgx-perf-analyze -json`.
serve-smoke:
	./scripts/serve_smoke.sh
