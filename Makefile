GO ?= go

.PHONY: build test vet race verify bench-contention

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The recording pipeline, the live streaming engine
# (internal/perf/live) and the event store with its subscription tap
# (internal/evstore) are the concurrency-sensitive packages; run their
# suites under the race detector. The ./internal/perf/... wildcard
# includes the live engine and its golden live-vs-postmortem tests.
race:
	$(GO) test -race ./internal/perf/... ./internal/evstore/...

# verify is the documented check for this repo: vet + the tier-1 gate
# (build + full test suite, see ROADMAP.md) + the race-detector suites.
verify: vet
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/perf/... ./internal/evstore/...

# Re-measure logger recording throughput, chaining the previous results
# in BENCH_results.json as the baseline for the speedup computation.
bench-contention:
	$(GO) run ./cmd/sgx-perf-bench -exp contention \
		-baseline BENCH_results.json -json BENCH_results.json
