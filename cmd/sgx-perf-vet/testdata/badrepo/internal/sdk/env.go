// env.go stubs the dispatch surface the interprocedural analyzers
// classify by name: fixture handlers call Env.Ocall exactly like real
// enclave code calls the sgxperf SDK, so transamp, doublefetch and
// ptrescape exercise their production code paths over this tree.
package sdk

// Env is the trusted runtime handle handlers receive.
type Env struct{}

// Ocall dispatches an ocall by name.
func (e *Env) Ocall(name string, args any) (any, error) { return nil, nil }
