// Package sdk seeds one vclock violation for the golden test: a
// simulator package reading the wall clock.
package sdk

import "time"

// Stamp returns the host time — forbidden here; the simulator runs on
// virtual time.
func Stamp() int64 { return time.Now().UnixNano() }
