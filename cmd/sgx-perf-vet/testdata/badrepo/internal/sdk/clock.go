// Package sdk seeds one vclock violation for the golden test: a
// simulator package reading the wall clock.
package sdk

import "time"

// Stamp returns the host time — forbidden here; the simulator runs on
// virtual time.
func Stamp() int64 { return time.Now().UnixNano() }

type runtime struct{ served int }

// Serve is clean: internal/sdk is in the hot-path check's
// must-annotate scope, and without at least one annotated method the
// analyzer would report the package instead of the seeded violations.
//
//sgxperf:hotpath
func (r *runtime) Serve() { r.served++ }
