// trusted.go stubs the handler-registration surface collectEntries
// recovers: fixture workloads bind ecall names to TrustedFn handlers in
// composite literals just like real enclave code, so the ecall→handler
// map behind the edlflow cross-validation is built from this tree the
// same way it is from the real one.
package sdk

// TrustedFn is the in-enclave handler shape.
type TrustedFn func(env *Env, args any) (any, error)
