// Package logger seeds one hotpath violation for the golden test: the
// annotated method acquires its receiver's mutex.
package logger

import "sync"

// Recorder is a stand-in event recorder.
type Recorder struct {
	mu sync.Mutex
	n  int
}

// Record is the per-event entry point.
//
//sgxperf:hotpath
func (r *Recorder) Record() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
