package app

import "sync/atomic"

type counter struct {
	hits int64
}

// bump updates the counter atomically…
func (c *counter) bump() { atomic.AddInt64(&c.hits, 1) }

// …but read loads it plainly: the atomicmix seed.
func (c *counter) read() int64 { return c.hits }
