// Package app seeds one heldacross and one atomicmix violation for the
// golden test.
package app

import "sync"

type queue struct {
	mu  sync.Mutex
	out chan int
	n   int
}

// push sends on the channel while still holding the queue mutex.
func (q *queue) push(v int) {
	q.mu.Lock()
	q.n++
	q.out <- v
	q.mu.Unlock()
}
