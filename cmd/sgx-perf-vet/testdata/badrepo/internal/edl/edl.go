// edl.go stubs the interface-builder surface the taint analysis's EDL
// recovery classifies by name: fixture workloads declare their boundary
// surface with AddEcall/AddOcall and Param literals exactly like real
// enclave code declares the sgxperf EDL, so secretflow and edlflow
// exercise their production code paths over this tree.
package edl

// PtrDir is an explicit pointer direction annotation.
type PtrDir int

const (
	DirValue PtrDir = iota + 1
	DirIn
	DirOut
	DirInOut
	DirUserCheck
)

// Param is one declared call parameter.
type Param struct {
	Name     string
	Dir      PtrDir
	Size     string
	IsString bool
}

// Interface is a minimal boundary-interface builder.
type Interface struct{}

// New returns an empty interface.
func New() *Interface { return &Interface{} }

// AddEcall declares one ecall.
func (i *Interface) AddEcall(name string, public bool, params ...Param) {}

// AddOcall declares one ocall.
func (i *Interface) AddOcall(name string, allow []string, params ...Param) {}
