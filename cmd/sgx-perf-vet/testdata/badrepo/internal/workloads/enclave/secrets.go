// secrets.go seeds one violation for each taint analyzer: a
// //sgxperf:secret value shipped raw through an ocall (secretflow), and
// a handler writing a boundary param its EDL declares [in] (edlflow).
package enclave

import (
	"lintfixture/internal/edl"
	"lintfixture/internal/sdk"
)

// vault holds enclave-confidential state.
type vault struct {
	//sgxperf:secret long-term sealing key, must never cross unsealed
	sealKey [16]byte
	limit   int
}

// leakKey ships the raw key through an ocall — the secretflow seed.
func (v *vault) leakKey(env *sdk.Env) error {
	_, err := env.Ocall("ocall_backup_key", v.sealKey)
	return err
}

// clampLen writes the boundary param the EDL below declares [in], so
// the store is silently dropped at copy-back — the edlflow seed.
func (v *vault) clampLen(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*req)
	if !ok {
		return nil, nil
	}
	a.Len = v.limit
	return nil, nil
}

// newVault wires the vault's boundary surface: the handler map the
// entry recovery reads, and the EDL declaration edlflow validates it
// against.
func newVault() (map[string]sdk.TrustedFn, *edl.Interface) {
	v := &vault{limit: 64}
	impl := map[string]sdk.TrustedFn{
		"ecall_clamp_len": v.clampLen,
	}
	i := edl.New()
	i.AddEcall("ecall_clamp_len", true, edl.Param{Name: "len", Dir: edl.DirIn})
	return impl, i
}
