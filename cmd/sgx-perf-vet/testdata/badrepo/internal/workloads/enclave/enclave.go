// Package enclave seeds one violation for each interprocedural
// analyzer: a loop-amplified ocall (transamp), a boundary-buffer value
// re-read after a crossing (doublefetch), and an enclave pointer handed
// to the untrusted side (ptrescape).
package enclave

import "lintfixture/internal/sdk"

// req is the boundary argument shape handlers downcast to.
type req struct {
	Len  int
	Data string
}

type handler struct {
	table   [4]uint64
	written int
}

// flushAll dispatches once per chunk instead of batching — the transamp
// seed.
func (h *handler) flushAll(env *sdk.Env) error {
	for i := 0; i < 8; i++ {
		if _, err := env.Ocall("ocall_put_chunk", i); err != nil {
			return err
		}
	}
	return nil
}

// handlePut validates the length, crosses the boundary, then trusts the
// shared buffer again — the doublefetch seed.
func (h *handler) handlePut(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*req)
	if !ok {
		return nil, nil
	}
	if a.Len > 64 {
		return nil, nil
	}
	if _, err := env.Ocall("ocall_append_log", a.Data); err != nil {
		return nil, err
	}
	h.written += a.Len
	return nil, nil
}

// share hands the untrusted side the address of enclave state — the
// ptrescape seed.
func (h *handler) share(env *sdk.Env) error {
	_, err := env.Ocall("ocall_register_table", &h.table)
	return err
}
