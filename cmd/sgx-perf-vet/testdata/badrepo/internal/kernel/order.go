// Package kernel seeds one lockorder violation for the golden test: ab
// acquires a then b, ba acquires b then a.
package kernel

import "sync"

type core struct {
	a sync.Mutex
	b sync.Mutex
}

func (c *core) ab() {
	c.a.Lock()
	c.b.Lock()
	c.b.Unlock()
	c.a.Unlock()
}

func (c *core) ba() {
	c.b.Lock()
	c.a.Lock()
	c.a.Unlock()
	c.b.Unlock()
}
