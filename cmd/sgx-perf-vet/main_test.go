package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regenerate the golden files after an intentional output change with
//
//	go test ./cmd/sgx-perf-vet -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// badRepo is a fixture tree seeding exactly one violation per analyzer:
// a wall-clock read in a simulator package (vclock), a receiver mutex in
// a //sgxperf:hotpath method (hotpath), an a→b/b→a acquisition inversion
// (lockorder), a channel send under a held mutex (heldacross), a field
// accessed both atomically and plainly (atomicmix), an ocall dispatched
// inside a loop (transamp), a boundary-buffer value re-read after a
// crossing (doublefetch), an enclave pointer passed to an ocall
// (ptrescape), a //sgxperf:secret value shipped raw through an ocall
// (secretflow), and a handler writing a boundary param its EDL declares
// [in] (edlflow). It lives under testdata so the repository's own lint
// walk skips it.
const badRepo = "testdata/badrepo"

// TestGoldenDiagnostics pins sgx-perf-vet's exact output — text and JSON
// — over the seeded fixture. Diagnostics are sorted and deduplicated by
// (file, line, analyzer), so the output is fully deterministic.
func TestGoldenDiagnostics(t *testing.T) {
	var text bytes.Buffer
	n, err := vet(badRepo, false, &text)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("diagnostics = %d, want 10 (one per analyzer):\n%s", n, text.String())
	}
	compareGolden(t, "badrepo.txt", text.Bytes())

	var raw bytes.Buffer
	if _, err := vet(badRepo, true, &raw); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "badrepo.json", raw.Bytes())
}

// TestEachAnalyzerFires double-checks the fixture seeds what it claims:
// every analyzer in the suite contributes exactly one diagnostic.
func TestEachAnalyzerFires(t *testing.T) {
	var text bytes.Buffer
	if _, err := vet(badRepo, false, &text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, a := range []string{"vclock", "hotpath", "lockorder", "heldacross", "atomicmix", "transamp", "doublefetch", "ptrescape", "secretflow", "edlflow"} {
		if got := strings.Count(out, ": "+a+": "); got != 1 {
			t.Errorf("analyzer %s fired %d times, want 1:\n%s", a, got, out)
		}
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}
