// Command sgx-perf-vet runs the repository's own static-analysis suite
// (internal/lint): the virtual-clock invariant for simulator packages and
// the lock-free hot-path invariant for the logger. It exits non-zero when
// any diagnostic is reported, so `make verify` fails on violations.
//
// Usage:
//
//	sgx-perf-vet            # analyse the tree rooted at .
//	sgx-perf-vet -root ../  # analyse another checkout
//	sgx-perf-vet -list      # print the analyzers and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sgxperf/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-vet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		root    = flag.String("root", ".", "repository root to analyse")
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON")
		list    = flag.Bool("list", false, "print the analyzer suite and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return nil
	}

	n, err := vet(*root, *jsonOut, os.Stdout)
	if err != nil {
		return err
	}
	if n > 0 {
		return fmt.Errorf("%d diagnostic(s)", n)
	}
	return nil
}

// vet runs the full suite over the tree at root, writes the diagnostics
// to w (plain lines, or JSON when jsonOut is set) and returns their
// count.
func vet(root string, jsonOut bool, w io.Writer) (int, error) {
	diags, err := lint.Run(root, lint.Analyzers())
	if err != nil {
		return 0, err
	}
	if jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(w, string(raw))
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	return len(diags), nil
}
