// Command sgx-perf-vet runs the repository's own static-analysis suite
// (internal/lint): the virtual-clock invariant for simulator packages and
// the lock-free hot-path invariant for the logger. It exits non-zero when
// any diagnostic is reported, so `make verify` fails on violations.
//
// Usage:
//
//	sgx-perf-vet            # analyse the tree rooted at .
//	sgx-perf-vet -root ../  # analyse another checkout
//	sgx-perf-vet -list      # print the analyzers and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-vet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		root    = flag.String("root", ".", "repository root to analyse")
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON")
		list    = flag.Bool("list", false, "print the analyzer suite and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return nil
	}

	n, err := vet(*root, *jsonOut, os.Stdout)
	if err != nil {
		return err
	}
	if n > 0 {
		return fmt.Errorf("%d diagnostic(s)", n)
	}
	return nil
}

// vet runs the full suite over the tree at root, writes the diagnostics
// to w (plain lines, or an api/v1 vet document when jsonOut is set) and
// returns their count.
func vet(root string, jsonOut bool, w io.Writer) (int, error) {
	analyzers := lint.Analyzers()
	diags, err := lint.Run(root, analyzers)
	if err != nil {
		return 0, err
	}
	if jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		raw, err := apiv1.Marshal(apiv1.FromDiagnostics(root, names, diags))
		if err != nil {
			return 0, err
		}
		fmt.Fprint(w, string(raw))
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	return len(diags), nil
}
