// Command sgx-perf-analyze analyses a trace file recorded by
// sgx-perf-log: general statistics, the Table 1 anti-pattern detectors
// with recommendations, security hints, and optional DOT call graphs,
// histograms and scatter data (§4.3).
//
// Usage:
//
//	sgx-perf-analyze trace.evdb
//	sgx-perf-analyze -dot graph.dot -hist sgx_ecall_SSL_read trace.evdb
//	sgx-perf-analyze -edl enclave.edl trace.evdb
//	sgx-perf-analyze -json trace.evdb
//
// -json emits the report as an api/v1 wire document in the canonical
// serialisation — byte-for-byte what sgx-perf-serve answers on
// GET /v1/traces/{id}/report for the same trace.
//
// -stream analyses the trace through the out-of-core streaming fold:
// the file is read chunk-by-chunk and memory stays bounded by the chunk
// size, not the trace size, so traces larger than RAM analyse fine. The
// report is identical to the resident path's; the trace must be saved
// in stream order (sgx-perf-log emits it; an unsorted file is
// rejected). Event-level flags (-hist, -scatter, -csv-dir, -compare)
// need the resident event set and do not combine with -stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sgxperf"
	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dotOut  = flag.String("dot", "", "write the Fig. 5-style call graph to this DOT file")
		histFor = flag.String("hist", "", "print a histogram of this call's execution times (Fig. 7)")
		bins    = flag.Int("bins", 100, "histogram bin count")
		scatFor = flag.String("scatter", "", "print scatter data for this call (Fig. 8)")
		edlPath = flag.String("edl", "", "EDL file for the security checks (default: the EDL embedded in the trace)")
		csvDir  = flag.String("csv-dir", "", "write stats.csv (plus histogram/scatter CSVs and gnuplot scripts for -hist/-scatter) into this directory")
		compare = flag.String("compare", "", "second trace file: print a before/after comparison (the §5.2 optimise-and-remeasure workflow)")
		enclave = flag.Uint64("enclave", 0, "restrict the analysis to one enclave ID (0 = all)")
		jsonOut = flag.Bool("json", false, "emit the report as an api/v1 JSON document instead of text")
		stream  = flag.Bool("stream", false, "analyse out-of-core: read the trace chunk-by-chunk with bounded memory (for traces larger than RAM)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected exactly one trace file argument")
	}
	opts := sgxperf.AnalyzerOptions{Enclave: sgxperf.EnclaveID(*enclave)}
	if *stream {
		for name, set := range map[string]bool{
			"-hist": *histFor != "", "-scatter": *scatFor != "",
			"-csv-dir": *csvDir != "", "-compare": *compare != "",
		} {
			if set {
				return fmt.Errorf("%s needs the resident event set and cannot combine with -stream", name)
			}
		}
		if err := loadEDL(*edlPath, &opts); err != nil {
			return err
		}
		return runStream(flag.Arg(0), opts, *jsonOut, *dotOut)
	}
	trace, err := sgxperf.LoadTrace(flag.Arg(0))
	if err != nil {
		return err
	}
	if err := loadEDL(*edlPath, &opts); err != nil {
		return err
	}
	a, err := sgxperf.NewAnalyzer(trace, opts)
	if err != nil {
		return err
	}
	if *compare != "" {
		other, err := sgxperf.LoadTrace(*compare)
		if err != nil {
			return err
		}
		b, err := sgxperf.NewAnalyzer(other, sgxperf.AnalyzerOptions{})
		if err != nil {
			return err
		}
		fmt.Print(analyzer.Compare(a, b).Render())
		return nil
	}
	report := a.Analyze()
	if *jsonOut {
		raw, err := apiv1.Marshal(apiv1.FromReport(report))
		if err != nil {
			return err
		}
		fmt.Print(string(raw))
		return nil
	}
	fmt.Print(report.Render())

	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(report.Graph.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("call graph written to %s (render with: dot -Tpdf)\n", *dotOut)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*csvDir, "stats.csv"), []byte(a.StatsCSV()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*csvDir, "wakegraph.csv"), []byte(a.WakeGraphCSV()), 0o644); err != nil {
			return err
		}
		written := []string{"stats.csv", "wakegraph.csv"}
		if *histFor != "" {
			csv, err := a.HistogramCSV(*histFor, *bins)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*csvDir, "histogram.csv"), []byte(csv), 0o644); err != nil {
				return err
			}
			script := analyzer.GnuplotHistogram(*histFor, "histogram.csv", "histogram.pdf")
			if err := os.WriteFile(filepath.Join(*csvDir, "histogram.gp"), []byte(script), 0o644); err != nil {
				return err
			}
			written = append(written, "histogram.csv", "histogram.gp")
		}
		if *scatFor != "" {
			csv, err := a.ScatterCSV(*scatFor)
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*csvDir, "scatter.csv"), []byte(csv), 0o644); err != nil {
				return err
			}
			script := analyzer.GnuplotScatter(*scatFor, "scatter.csv", "scatter.pdf")
			if err := os.WriteFile(filepath.Join(*csvDir, "scatter.gp"), []byte(script), 0o644); err != nil {
				return err
			}
			written = append(written, "scatter.csv", "scatter.gp")
		}
		fmt.Printf("wrote %v to %s (render plots with gnuplot)\n", written, *csvDir)
	}
	if *histFor != "" {
		hist := a.Histogram(*histFor, *bins)
		if hist == nil {
			return fmt.Errorf("no events for call %q", *histFor)
		}
		fmt.Printf("\nhistogram of %s (%d bins):\n", *histFor, *bins)
		for _, b := range hist {
			if b.Count == 0 {
				continue
			}
			fmt.Printf("%12s – %-12s %d\n",
				b.Lo.Round(100*time.Nanosecond), b.Hi.Round(100*time.Nanosecond), b.Count)
		}
	}
	if *scatFor != "" {
		pts := a.Scatter(*scatFor)
		if pts == nil {
			return fmt.Errorf("no events for call %q", *scatFor)
		}
		fmt.Printf("\nscatter of %s (time-since-start, execution-time):\n", *scatFor)
		for _, p := range pts {
			fmt.Printf("%v\t%v\n", p.T, p.Dur)
		}
	}
	return nil
}

// loadEDL reads and parses an -edl file into opts (no-op when the flag
// is empty, which selects the EDL embedded in the trace).
func loadEDL(path string, opts *sgxperf.AnalyzerOptions) error {
	if path == "" {
		return nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	iface, warnings, err := sgxperf.ParseEDL(string(src))
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "edl warning:", w)
	}
	opts.Interface = iface
	return nil
}

// runStream is the -stream path: the trace file is analysed through
// the bounded-memory fold without ever loading its tables.
func runStream(path string, opts sgxperf.AnalyzerOptions, jsonOut bool, dotOut string) error {
	st, err := events.OpenStreamTrace(path)
	if err != nil {
		return err
	}
	defer st.Close()
	src, err := analyzer.NewStreamTraceSource(st)
	if err != nil {
		return err
	}
	report, err := analyzer.AnalyzeStream(src, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		raw, err := apiv1.Marshal(apiv1.FromReport(report))
		if err != nil {
			return err
		}
		fmt.Print(string(raw))
		return nil
	}
	fmt.Print(report.Render())
	if dotOut != "" {
		if err := os.WriteFile(dotOut, []byte(report.Graph.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("call graph written to %s (render with: dot -Tpdf)\n", dotOut)
	}
	return nil
}
