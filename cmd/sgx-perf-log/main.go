// Command sgx-perf-log runs one of the evaluation workloads on the
// simulated SGX host with the sgx-perf event logger preloaded, and writes
// the recorded trace to a file for later analysis with sgx-perf-analyze —
// the same split the paper's toolchain uses (§4).
//
// Usage:
//
//	sgx-perf-log -workload sqlite -variant enclave -ops 2000 -o trace.evdb
//	sgx-perf-log -workload talos -ops 1000 -aex count -o talos.evdb
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sgxperf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-log:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload   = flag.String("workload", "", "workload to run: "+fmt.Sprint(sgxperf.Workloads()))
		variant    = flag.String("variant", "", "workload variant (default: the enclave variant)")
		ops        = flag.Int("ops", 0, "operation count (workload-specific default)")
		duration   = flag.Duration("duration", 0, "virtual-time bound instead of -ops")
		aex        = flag.String("aex", "off", "AEX observation: off, count, trace")
		mitigation = flag.String("mitigation", "vanilla", "microcode state: vanilla, spectre, l1tf")
		out        = flag.String("o", "trace.evdb", "output trace file")
	)
	flag.Parse()
	if *workload == "" {
		flag.Usage()
		return fmt.Errorf("missing -workload")
	}
	mode, err := parseAEX(*aex)
	if err != nil {
		return err
	}
	mit, err := parseMitigation(*mitigation)
	if err != nil {
		return err
	}

	start := time.Now()
	runRes, err := sgxperf.RunWorkload(*workload, sgxperf.WorkloadOptions{
		Variant:    *variant,
		Ops:        *ops,
		Duration:   *duration,
		Mitigation: mit,
		Logger:     true,
		AEX:        mode,
	})
	if err != nil {
		return err
	}
	fmt.Println(runRes.Result.String())
	fmt.Printf("recorded %d ecall, %d ocall, %d AEX, %d paging, %d sync events (wall %v)\n",
		runRes.Trace.Ecalls.Len(), runRes.Trace.Ocalls.Len(), runRes.Trace.AEXs.Len(),
		runRes.Trace.Paging.Len(), runRes.Trace.Syncs.Len(), time.Since(start).Round(time.Millisecond))
	if err := runRes.Trace.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("trace written to %s\n", *out)
	return nil
}

func parseAEX(s string) (sgxperf.AEXMode, error) {
	switch s {
	case "off":
		return sgxperf.AEXOff, nil
	case "count":
		return sgxperf.AEXCount, nil
	case "trace":
		return sgxperf.AEXTrace, nil
	default:
		return 0, fmt.Errorf("unknown -aex %q (off, count, trace)", s)
	}
}

func parseMitigation(s string) (sgxperf.MitigationLevel, error) {
	switch s {
	case "vanilla", "none":
		return sgxperf.MitigationNone, nil
	case "spectre":
		return sgxperf.MitigationSpectre, nil
	case "l1tf", "full", "spectre+l1tf":
		return sgxperf.MitigationFull, nil
	default:
		return 0, fmt.Errorf("unknown -mitigation %q (vanilla, spectre, l1tf)", s)
	}
}
