// Command sgx-perf-serve is the always-on analysis service: a long-lived
// daemon that accepts recorded traces over HTTP, serves analyser
// reports, windowed statistics, hybrid lint reports and live snapshots
// from them, and caches every computed artifact content-addressed by the
// trace's chunk hashes — so re-analysing an appended trace recomputes
// only the changed tail.
//
// Every response is an api/v1 wire document in the canonical
// serialisation; GET /v1/traces/{id}/report is byte-for-byte what
// `sgx-perf-analyze -json` prints for the same trace.
//
// Usage:
//
//	sgx-perf-serve -addr 127.0.0.1:7910
//	sgx-perf-serve -addr 127.0.0.1:0 -addr-file /tmp/serve.addr trace.evdb
//
// Endpoints:
//
//	POST /v1/traces[?id=NAME]          upload an evstore trace stream
//	GET  /v1/traces                    list registered traces
//	GET  /v1/traces/{id}               one trace's info (content key, counts, seq)
//	POST /v1/traces/{id}/append        append a delta trace stream
//	GET  /v1/traces/{id}/report        full analyser report (?enclave=N)
//	GET  /v1/traces/{id}/stats         windowed incremental statistics
//	GET  /v1/traces/{id}/lint          hybrid lint report (embedded EDL; ?source=1 adds the source passes)
//	GET  /v1/traces/{id}/snapshot      live snapshot; ?seq=N long-polls for a change
//	GET  /v1/traces/{id}/live          server-sent-events snapshot stream
//	GET  /v1/report[?trace=ID]         report alias (sole trace when unambiguous)
//	GET  /v1/metrics                   artifact-cache and request counters
//	GET  /v1/healthz                   liveness probe
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7910", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		cacheCap = flag.Int("cache", 0, "artifact cache capacity in entries (0 = default)")
		maxMB    = flag.Int64("max-upload-mb", 0, "upload/append body limit in MiB (0 = default 256)")
		poll     = flag.Duration("poll-timeout", 0, "long-poll wait bound (0 = default 25s)")
		srcRoot  = flag.String("source-root", "", "enable ?source=1 lint requests: run the source passes over the Go tree at this root")
		srcDirs  = flag.String("source-dirs", "", "comma-separated root-relative directories limiting the source passes (default: the whole tree)")
	)
	flag.Parse()
	if *srcDirs != "" && *srcRoot == "" {
		return fmt.Errorf("-source-dirs needs -source-root")
	}

	opts := serve.Options{
		CacheCapacity:  *cacheCap,
		MaxUploadBytes: *maxMB << 20,
		PollTimeout:    *poll,
		SourceRoot:     *srcRoot,
	}
	for _, d := range strings.Split(*srcDirs, ",") {
		if d = strings.TrimSpace(d); d != "" {
			opts.SourceDirs = append(opts.SourceDirs, d)
		}
	}
	s := serve.New(opts)

	// Positional arguments are trace files to pre-register, each under
	// its basename (sans extension).
	for _, path := range flag.Args() {
		tr, err := events.NewTrace()
		if err != nil {
			return err
		}
		if err := tr.LoadFile(path); err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := s.Preload(id, tr); err != nil {
			return fmt.Errorf("register %s: %w", path, err)
		}
		fmt.Printf("registered %s as %q\n", path, id)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sgx-perf-serve listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("sgx-perf-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
