package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sgxperf"
)

// Regenerate the golden files after an intentional output change with
//
//	go test ./cmd/sgx-perf-lint -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenReports pins the exact text and JSON reports sgx-perf-lint
// produces for the bundled workload interfaces. The static pass is fully
// deterministic — same interface, same cost model, same findings in the
// same order — so any diff here is a real behaviour change.
func TestGoldenReports(t *testing.T) {
	for name, build := range bundledInterfaces {
		iface, err := build()
		if err != nil {
			t.Fatalf("%s interface: %v", name, err)
		}
		report := sgxperf.StaticLint(iface, sgxperf.LintOptions{})

		text := report.Render()
		compareGolden(t, name+".txt", []byte(text))

		raw, err := report.MarshalJSON()
		if err != nil {
			t.Fatalf("%s json: %v", name, err)
		}
		compareGolden(t, name+".json", append(raw, '\n'))
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}
