package main

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sgxperf"
	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/workloads/amplify"
	"sgxperf/internal/workloads/contend"
	"sgxperf/internal/workloads/leaky"
)

// Regenerate the golden files after an intentional output change with
//
//	go test ./cmd/sgx-perf-lint -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenReports pins the exact text and JSON reports sgx-perf-lint
// produces for the bundled workload interfaces. The static pass is fully
// deterministic — same interface, same cost model, same findings in the
// same order — so any diff here is a real behaviour change.
func TestGoldenReports(t *testing.T) {
	for name, build := range bundledInterfaces {
		iface, err := build()
		if err != nil {
			t.Fatalf("%s interface: %v", name, err)
		}
		report := sgxperf.StaticLint(iface, sgxperf.LintOptions{})

		text := report.Render()
		compareGolden(t, name+".txt", []byte(text))

		// The .json goldens pin the -json-legacy shape; the .api.json ones
		// pin the api/v1 document -json now emits.
		raw, err := report.MarshalJSON()
		if err != nil {
			t.Fatalf("%s json: %v", name, err)
		}
		compareGolden(t, name+".json", append(raw, '\n'))

		wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
		if err != nil {
			t.Fatalf("%s api json: %v", name, err)
		}
		compareGolden(t, name+".api.json", wire)
	}
}

// TestGoldenSwitchlessConfig pins the machine-readable switchless
// configuration `-switchless-config` emits for the bundled SecureKeeper
// interface, and proves it survives the JSON round-trip the
// lint → config → re-measure hand-off depends on.
func TestGoldenSwitchlessConfig(t *testing.T) {
	iface, err := bundledInterfaces["securekeeper"]()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sgxperf.SwitchlessConfigFrom(iface, sgxperf.LintOptions{})
	if cfg == nil {
		t.Fatal("SecureKeeper is transition-bound; expected a switchless configuration")
	}
	if cfg.Source != "staticlint" {
		t.Fatalf("config source = %q, want staticlint", cfg.Source)
	}
	raw, err := cfg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "securekeeper_switchless.json", raw)

	parsed, err := sgxperf.ParseSwitchlessConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, cfg) {
		t.Fatalf("config changed across the JSON round-trip:\n emitted %+v\n parsed  %+v", cfg, parsed)
	}
}

// sourceOpts point the concurrency dataflow pass at the repository root
// (two levels up from this command) scoped to the contend exhibit, the
// configuration `sgx-perf-lint -workload contend -source ../..
// -source-dirs internal/workloads/contend` uses.
var sourceOpts = sgxperf.LintOptions{
	SourceRoot: "../..",
	SourceDirs: []string{"internal/workloads/contend"},
}

// TestGoldenSourceReport pins the static report when the source pass
// joins in: the contend workload's boundary-sync finding (its update
// ecall holds the counter mutex across the audit ocall) merges with the
// interface findings.
func TestGoldenSourceReport(t *testing.T) {
	iface, err := contend.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report := sgxperf.StaticLint(iface, sourceOpts)
	if len(report.Warnings) != 0 {
		t.Fatalf("source pass warned: %v", report.Warnings)
	}
	compareGolden(t, "contend_source.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "contend_source.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "contend_source.api.json", wire)
}

// TestGoldenHybridReport records one single-threaded contend run (fully
// deterministic in virtual time: no lock contention, so no scheduling-
// dependent sync ocalls) and pins the hybrid report: the boundary-sync
// finding joined with the observed audit-ocall count and re-ranked.
func TestGoldenHybridReport(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "contend"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := contend.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(contend.RunOptions{Threads: 1, OpsPerThread: 40}); err != nil {
		t.Fatal(err)
	}
	iface, err := contend.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sgxperf.HybridLint(iface, l.Trace(), sourceOpts)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "contend_hybrid.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "contend_hybrid.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "contend_hybrid.api.json", wire)
}

// amplifyOpts scope the source pass to the amplify exhibit, the
// configuration `sgx-perf-lint -workload amplify -source ../..
// -source-dirs internal/workloads/amplify` uses.
var amplifyOpts = sgxperf.LintOptions{
	SourceRoot: "../..",
	SourceDirs: []string{"internal/workloads/amplify"},
}

// TestGoldenAmplifySourceReport pins the static report for the
// chatty-boundary exhibit: the interprocedural pass contributes a
// Loop-Amplified Transitions finding (8 put-chunk ocalls per flush),
// two Boundary Data Hazards (the Len double fetch and the table pointer
// escape), and the per-entry transition predictions.
func TestGoldenAmplifySourceReport(t *testing.T) {
	iface, err := amplify.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report := sgxperf.StaticLint(iface, amplifyOpts)
	// The exhibit deliberately declares its table parameter user_check,
	// so exactly that EDL warning — and nothing from the source pass —
	// is expected.
	if len(report.Warnings) != 1 || !strings.Contains(report.Warnings[0], "user_check") {
		t.Fatalf("source pass warned: %v", report.Warnings)
	}
	if !report.HasProblem(sgxperf.ProblemTransitionAmplification) {
		t.Error("expected a Loop-Amplified Transitions finding")
	}
	if !report.HasProblem(sgxperf.ProblemBoundaryDataHazard) {
		t.Error("expected Boundary Data Hazard findings")
	}
	compareGolden(t, "amplify_source.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "amplify_source.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "amplify_source.api.json", wire)
}

// TestGoldenAmplifyHybridReport records one single-threaded amplify run
// (fully deterministic in virtual time) and pins the hybrid report with
// its predicted-vs-observed section: flush's 8-ocall prediction agrees
// with the trace exactly, the two single-dispatch handlers agree, and
// the branch-guarded spill — predicted 1, never executed under the
// default run — is flagged as over-predicted.
func TestGoldenAmplifyHybridReport(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "amplify"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := amplify.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(amplify.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	iface, err := amplify.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sgxperf.HybridLint(iface, l.Trace(), amplifyOpts)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]string)
	for _, p := range report.Predicted {
		verdicts[p.Ecall] = p.Verdict
	}
	want := map[string]string{
		amplify.EcallFlush:        "agree",
		amplify.EcallCheckedWrite: "agree",
		amplify.EcallShare:        "agree",
		amplify.EcallMaybe:        "over-predicted",
	}
	if !reflect.DeepEqual(verdicts, want) {
		t.Errorf("prediction verdicts = %v, want %v", verdicts, want)
	}
	compareGolden(t, "amplify_hybrid.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "amplify_hybrid.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "amplify_hybrid.api.json", wire)
}

// leakyOpts scope the source pass to the leaky exhibit, the
// configuration `sgx-perf-lint -workload leaky -source ../..
// -source-dirs internal/workloads/leaky` uses.
var leakyOpts = sgxperf.LintOptions{
	SourceRoot: "../..",
	SourceDirs: []string{"internal/workloads/leaky"},
}

// TestGoldenLeakySourceReport pins the static report for the
// secret-flow exhibit: the taint pass contributes the unsealed
// master-key flow (with its source→sink witness chain) and the three
// direction mismatches, while the sealed backup flow stays silent —
// no flow in the report may mention the sealed stash ocall.
func TestGoldenLeakySourceReport(t *testing.T) {
	iface, err := leaky.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report := sgxperf.StaticLint(iface, leakyOpts)
	// The exhibit deliberately declares its scatter buffer user_check,
	// so exactly that EDL warning — and nothing from the source pass —
	// is expected.
	if len(report.Warnings) != 1 || !strings.Contains(report.Warnings[0], "user_check") {
		t.Fatalf("source pass warned: %v", report.Warnings)
	}
	if !report.HasProblem(sgxperf.ProblemSecretLeak) {
		t.Error("expected a Secret Data Crossing Boundary finding")
	}
	if !report.HasProblem(sgxperf.ProblemDirectionMismatch) {
		t.Error("expected Boundary Direction Mismatch findings")
	}
	if len(report.Flows) != 1 {
		t.Errorf("flows = %d, want exactly 1 (the sealed backup flow must stay silent)", len(report.Flows))
	}
	for _, fl := range report.Flows {
		if fl.Call == leaky.OcallSealed {
			t.Errorf("sealed flow %s → %s reported; sealBlob must sanitize it", fl.Source, fl.Sink)
		}
	}
	compareGolden(t, "leaky_source.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "leaky_source.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "leaky_source.api.json", wire)
}

// TestGoldenLeakyHybridReport records one single-threaded leaky run
// (fully deterministic in virtual time) and pins the hybrid report:
// the unsealed master-key flow is joined with the observed stash-ocall
// count (the default run exports it three times) and ranked above any
// never-executed flow.
func TestGoldenLeakyHybridReport(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "leaky"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := leaky.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(leaky.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	iface, err := leaky.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sgxperf.HybridLint(iface, l.Trace(), leakyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Flows) != 1 {
		t.Fatalf("flows = %d, want exactly 1", len(report.Flows))
	}
	if got := report.Flows[0].Observed; got != 3 {
		t.Errorf("unsealed flow observed %d crossings, want 3 (the default run's export count)", got)
	}
	compareGolden(t, "leaky_hybrid.txt", []byte(report.Render()))
	raw, err := report.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "leaky_hybrid.json", append(raw, '\n'))
	wire, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "leaky_hybrid.api.json", wire)
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden file.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}
