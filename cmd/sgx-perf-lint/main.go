// Command sgx-perf-lint runs the static interface analysis: findings
// from an enclave's EDL alone, with no workload run. Given a trace it
// switches to hybrid mode — static findings re-ranked by observed call
// counts, with static-only and dynamic-only discrepancies flagged.
//
// With -source the concurrency dataflow pass joins in: the Go sources
// under the given root are analysed for locks held across blocking
// boundaries and lock-order cycles, and those findings merge with the
// interface ones, priced from the same machine cost model.
//
// Usage:
//
//	sgx-perf-lint -edl enclave.edl
//	sgx-perf-lint -workload securekeeper
//	sgx-perf-lint -workload sqlite -trace trace.evdb
//	sgx-perf-lint -workload contend -source . -source-dirs internal/workloads/contend
//	sgx-perf-lint -edl enclave.edl -json
//	sgx-perf-lint -workload securekeeper -switchless-config > switchless.json
//
// -json emits the report as an api/v1 wire document (the schema shared
// with sgx-perf-serve's /v1/traces/{id}/lint endpoint); -json-legacy
// keeps the pre-api/v1 shape for older consumers.
//
// -switchless-config turns the Transition-Bound Calls findings into the
// machine-readable configuration sgxperf.WithSwitchless consumes,
// closing the lint → config → re-measure loop from the command line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sgxperf"
	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/edl"
	"sgxperf/internal/workloads/amplify"
	"sgxperf/internal/workloads/contend"
	"sgxperf/internal/workloads/keeper"
	"sgxperf/internal/workloads/leaky"
	"sgxperf/internal/workloads/minidb"
)

// bundledInterfaces maps workload names to their interface builders, so
// the bundled studies can be linted without an EDL file on disk.
var bundledInterfaces = map[string]func() (*edl.Interface, error){
	"securekeeper": keeper.Interface,
	"sqlite":       minidb.Interface,
	"contend":      contend.Interface,
	"amplify":      amplify.Interface,
	"leaky":        leaky.Interface,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-lint:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload  = flag.String("workload", "", "lint a bundled workload's interface (securekeeper, sqlite, contend, amplify, leaky)")
		edlPath   = flag.String("edl", "", "lint the interface in this EDL file")
		tracePath = flag.String("trace", "", "trace file for hybrid mode (rank findings by observed call counts)")
		jsonOut   = flag.Bool("json", false, "emit the report as an api/v1 JSON document")
		jsonOld   = flag.Bool("json-legacy", false, "emit the report in the pre-api/v1 JSON shape")
		wideMin   = flag.Int("wide-surface", 0, "public-ecall count that flags a wide surface (0 = default)")
		srcRoot   = flag.String("source", "", "also run the concurrency dataflow pass over the Go sources under this root")
		srcDirs   = flag.String("source-dirs", "", "comma-separated root-relative directories limiting the source pass (default: the whole tree)")
		slConfig  = flag.Bool("switchless-config", false, "emit the machine-readable switchless configuration derived from the Transition-Bound Calls findings instead of the report")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return fmt.Errorf("unexpected arguments %v", flag.Args())
	}

	var iface *sgxperf.Interface
	switch {
	case *workload != "" && *edlPath != "":
		return fmt.Errorf("-workload and -edl are mutually exclusive")
	case *workload != "":
		build, ok := bundledInterfaces[*workload]
		if !ok {
			names := make([]string, 0, len(bundledInterfaces))
			for n := range bundledInterfaces {
				names = append(names, n)
			}
			return fmt.Errorf("unknown workload %q (have %v)", *workload, names)
		}
		var err error
		if iface, err = build(); err != nil {
			return err
		}
	case *edlPath != "":
		src, err := os.ReadFile(*edlPath)
		if err != nil {
			return err
		}
		parsed, warnings, err := sgxperf.ParseEDL(string(src))
		if err != nil {
			return fmt.Errorf("parse %s: %w", *edlPath, err)
		}
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "edl warning:", w)
		}
		iface = parsed
	case *tracePath == "":
		flag.Usage()
		return fmt.Errorf("need -workload, -edl or -trace")
	}

	opts := sgxperf.LintOptions{WideSurfaceMin: *wideMin, SourceRoot: *srcRoot}
	if *srcDirs != "" {
		if *srcRoot == "" {
			return fmt.Errorf("-source-dirs needs -source")
		}
		for _, d := range strings.Split(*srcDirs, ",") {
			if d = strings.TrimSpace(d); d != "" {
				opts.SourceDirs = append(opts.SourceDirs, d)
			}
		}
	}
	if *slConfig {
		if iface == nil {
			return fmt.Errorf("-switchless-config needs -workload or -edl")
		}
		cfg := sgxperf.SwitchlessConfigFrom(iface, opts)
		if cfg == nil {
			return fmt.Errorf("no transition-bound calls in the interface; nothing to route switchless")
		}
		raw, err := cfg.JSON()
		if err != nil {
			return err
		}
		fmt.Print(string(raw))
		return nil
	}

	var report *sgxperf.LintReport
	if *tracePath != "" {
		trace, err := sgxperf.LoadTrace(*tracePath)
		if err != nil {
			return err
		}
		if report, err = sgxperf.HybridLint(iface, trace, opts); err != nil {
			return err
		}
	} else {
		report = sgxperf.StaticLint(iface, opts)
	}

	switch {
	case *jsonOut && *jsonOld:
		return fmt.Errorf("-json and -json-legacy are mutually exclusive")
	case *jsonOut:
		raw, err := apiv1.Marshal(apiv1.FromLintReport(report))
		if err != nil {
			return err
		}
		fmt.Print(string(raw))
	case *jsonOld:
		raw, err := report.MarshalJSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
	default:
		fmt.Print(report.Render())
	}
	return nil
}
