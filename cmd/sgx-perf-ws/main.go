// Command sgx-perf-ws estimates an enclave's working set (§4.2): it runs
// a workload with all MMU page permissions stripped, repairs pages on the
// resulting faults, and reports how many pages were accessed after
// start-up and during the benchmark phase — the numbers §5.2.3 and §5.2.4
// report for Glamdring-LibreSSL and SecureKeeper.
//
// Usage:
//
//	sgx-perf-ws -workload glamdring
//	sgx-perf-ws -workload securekeeper -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sgxperf"
	"sgxperf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-ws:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "", "workload: glamdring, securekeeper, sqlite, talos")
		variant  = flag.String("variant", "", "workload variant")
		ops      = flag.Int("ops", 0, "operation count")
		duration = flag.Duration("duration", time.Second, "virtual-time bound (securekeeper)")
	)
	flag.Parse()
	switch *workload {
	case "glamdring":
		ws, err := experiments.RunGlamdringWorkingSet()
		if err != nil {
			return err
		}
		fmt.Print(ws.Render())
		return nil
	case "securekeeper":
		f, err := experiments.RunFig78(*duration)
		if err != nil {
			return err
		}
		fmt.Printf("== §5.2.4 SecureKeeper working set ==\n")
		fmt.Printf("start-up: %d pages / %.2f MiB (paper: 322 / 1.26 MiB)\n",
			f.StartupPages, float64(f.StartupPages)*4096/(1<<20))
		fmt.Printf("benchmark: %d pages / %.2f MiB (paper: 94 / 0.36 MiB)\n",
			f.SteadyPages, float64(f.SteadyPages)*4096/(1<<20))
		fmt.Printf("EPC capacity: %d such enclaves without paging (paper: 249)\n", f.EnclavesFitEPC)
		return nil
	case "":
		flag.Usage()
		return fmt.Errorf("missing -workload")
	default:
		res, err := sgxperf.RunWorkload(*workload, sgxperf.WorkloadOptions{
			Variant:    *variant,
			Ops:        *ops,
			Duration:   *duration,
			WorkingSet: true,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Result.String())
		fmt.Printf("working set: %d pages / %.2f MiB accessed during the run\n",
			res.SteadyPages, float64(res.SteadyPages)*4096/(1<<20))
		return nil
	}
}
