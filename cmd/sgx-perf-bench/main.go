// Command sgx-perf-bench regenerates every table and figure of the
// paper's evaluation on the simulated substrate, printing ours next to
// the paper's values.
//
// Usage:
//
//	sgx-perf-bench                     # run everything at default sizes
//	sgx-perf-bench -exp table2
//	sgx-perf-bench -exp fig6-libressl -signs 10
//	sgx-perf-bench -exp fig78 -duration 31s -full
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgx-perf-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: all, transitions, table2, fig5, fig6-sqlite, fig6-libressl, fig78, ws-glamdring, ablation-lock, ablation-paging, ablation-switchless, switchless, contention, live, analyze, serve, outofcore")
		requests = flag.Int("requests", 1000, "fig5: HTTP GET count")
		inserts  = flag.Int("inserts", 2000, "fig6-sqlite: insert count")
		signs    = flag.Int("signs", 5, "fig6-libressl: signatures per variant")
		duration = flag.Duration("duration", time.Second, "fig78/live: load duration (paper: 31s)")
		full     = flag.Bool("full", false, "use the paper's full experiment sizes (slower)")
		dotOut   = flag.String("dot", "", "fig5: also write the call graph to this DOT file")
		ops      = flag.Int("ops", 20000, "contention: ecalls per thread")
		repeats  = flag.Int("repeats", 5, "contention: sweep repetitions (median is reported)")
		jsonOut  = flag.String("json", "", "contention/live/serve: write machine-readable results to this file")
		jsonOld  = flag.Bool("json-legacy", false, "with -json: write the live results in the pre-api/v1 shape")
		baseline = flag.String("baseline", "", "contention: previous -json output to compute speedups against")
		analyzeN = flag.Int("analyze-ops", 50000, "analyze: synthetic trace size in top-level calls")
		oocOps   = flag.Int("outofcore-ops", 0, "outofcore: synthetic trace size in top-level calls (0 = default; raise to push the resident path past RAM)")

		switchlessOps = flag.Int("switchless-ops", 400, "switchless: transition-bound calls per caller thread")
		serveSessions = flag.Int("serve-sessions", 0, "serve: concurrent analysis sessions (0 = default 8)")
		serveOps      = flag.Int("serve-ops", 0, "serve: calls per session trace (0 = default)")
		serveReqs     = flag.Int("serve-requests", 0, "serve: warm report requests per session in the throughput phase (0 = default)")
		liveView      = flag.Bool("live", false, "shorthand for -exp live: monitor the SecureKeeper run with streaming snapshots")
		interval      = flag.Duration("interval", 200*time.Millisecond, "live: wall-clock delay between streamed snapshots")
	)
	flag.Parse()
	if *liveView {
		*exp = "live"
	}
	if *full {
		*requests = 1000
		*inserts = 20000
		*signs = 30
		*duration = 31 * time.Second
	}

	runOne := func(name string) error {
		switch name {
		case "transitions":
			rows, err := experiments.Transitions()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTransitions(rows))
		case "table2":
			t2, err := experiments.RunTable2(experiments.Table2Options{})
			if err != nil {
				return err
			}
			fmt.Println(t2.Render())
		case "fig5":
			f, err := experiments.RunFig5(*requests)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
			if *dotOut != "" {
				if err := os.WriteFile(*dotOut, []byte(f.DOT), 0o644); err != nil {
					return err
				}
				fmt.Printf("call graph written to %s\n\n", *dotOut)
			}
		case "fig6-sqlite":
			rows, err := experiments.RunFig6SQLite(*inserts)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFig6("SQLite inserts (paper: 1.00 / 0.57 / 0.76 vanilla bars)", rows))
		case "fig6-libressl":
			rows, err := experiments.RunFig6LibreSSL(*signs)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFig6("LibreSSL signing (paper: 1.00 / 0.23 / 0.50 vanilla bars)", rows))
			speedups := experiments.Speedups(rows, "enclave", "optimized")
			fmt.Printf("optimised/enclave speedups: vanilla %.2fx, spectre %.2fx, l1tf %.2fx (paper: 2.16 / 2.66 / 2.87)\n\n",
				speedups["vanilla"], speedups["spectre"], speedups["spectre+l1tf"])
		case "fig78":
			f, err := experiments.RunFig78(*duration)
			if err != nil {
				return err
			}
			fmt.Println(f.Render())
		case "ws-glamdring":
			ws, err := experiments.RunGlamdringWorkingSet()
			if err != nil {
				return err
			}
			fmt.Println(ws.Render())
		case "ablation-lock":
			rows, err := experiments.RunHybridLockAblation(0, 0)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderHybridLock(rows))
		case "ablation-paging":
			rows, err := experiments.RunPagingAblation(0, 0, 0)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderPaging(rows))
		case "ablation-switchless":
			rows, err := experiments.RunSwitchlessAblation(*signs)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderSwitchless(rows))
		case "switchless":
			res, err := experiments.RunSwitchlessLoop(0, *switchlessOps)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderSwitchlessLoop(res))
			if err := checkSwitchlessLoop(res); err != nil {
				return err
			}
			if *jsonOut != "" {
				if err := mergeJSONKey(*jsonOut, "switchless", res); err != nil {
					return err
				}
				fmt.Printf("switchless results merged into %s\n\n", *jsonOut)
			}
		case "live":
			view, err := experiments.RunLive(*duration, *interval, func(t experiments.LiveTick) {
				fmt.Printf("[t+%v] +%d call events\n%s\n",
					t.Elapsed.Round(time.Millisecond), t.NewCalls,
					experiments.RenderLiveSnapshot(t.Snapshot))
			})
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderLiveRun(view))
			if *jsonOut != "" {
				if *jsonOld {
					if err := writeJSON(*jsonOut, view); err != nil {
						return err
					}
				} else if err := writeWireJSON(*jsonOut, liveResultsWire{
					SchemaVersion: apiv1.Version,
					DurationNs:    int64(view.Duration),
					Ticks:         view.Ticks,
					EventsSeen:    view.EventsSeen,
					Final:         apiv1.FromSnapshot(&view.Final),
				}); err != nil {
					return err
				}
				fmt.Printf("live results written to %s\n\n", *jsonOut)
			}
		case "serve":
			res, err := experiments.RunServeBench(*serveSessions, *serveOps, *serveReqs)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderServe(res))
			if err := checkServe(res); err != nil {
				return err
			}
			if *jsonOut != "" {
				if err := mergeJSONKey(*jsonOut, "serve", res); err != nil {
					return err
				}
				fmt.Printf("serve results merged into %s\n\n", *jsonOut)
			}
		case "contention":
			rows, err := experiments.RunLoggerContentionMedian(*ops, *repeats)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderContention(rows))
			liveRows, err := experiments.RunLoggerContentionLiveMedian(*ops, *repeats)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderContentionLive(liveRows))
			res := contentionResults{
				Benchmark:    "logger_contention",
				OpsPerThread: *ops,
				Repeats:      *repeats,
				Rows:         rows,
				LiveRows:     liveRows,
				LiveOverhead: contentionOverheads(rows, liveRows),
			}
			for _, r := range liveRows {
				key := fmt.Sprintf("threads=%d", r.Threads)
				if o, ok := res.LiveOverhead[key]; ok {
					fmt.Printf("live subscriber throughput at %s: %.1f%% of plain recording\n", key, o*100)
				}
			}
			fmt.Println()
			if *baseline != "" {
				base, err := readContentionBaseline(*baseline)
				if err != nil {
					return err
				}
				res.Baseline = base
				res.Speedup = contentionSpeedups(base, rows)
				for _, r := range rows {
					key := fmt.Sprintf("threads=%d", r.Threads)
					if s, ok := res.Speedup[key]; ok {
						fmt.Printf("speedup vs baseline at %s: %.2fx\n", key, s)
					}
				}
				fmt.Println()
			}
			if *jsonOut != "" {
				if err := writeJSON(*jsonOut, res); err != nil {
					return err
				}
				fmt.Printf("results written to %s\n\n", *jsonOut)
			}
		case "analyze":
			res, err := experiments.RunAnalyzeThroughput(*analyzeN, *repeats)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderAnalyze(res))
			if *jsonOut != "" {
				if err := mergeJSONKey(*jsonOut, "analyze", res); err != nil {
					return err
				}
				fmt.Printf("analyze results merged into %s\n\n", *jsonOut)
			}
		case "outofcore":
			res, err := experiments.RunOutOfCore(*oocOps)
			if err != nil {
				return err
			}
			if err := checkOutOfCore(res); err != nil {
				return err
			}
			fmt.Println(experiments.RenderOutOfCore(res))
			if *jsonOut != "" {
				if err := mergeJSONKey(*jsonOut, "outofcore", res); err != nil {
					return err
				}
				fmt.Printf("outofcore results merged into %s\n\n", *jsonOut)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp != "all" {
		return runOne(*exp)
	}
	for _, name := range []string{
		"transitions", "table2", "fig5", "fig6-sqlite", "fig6-libressl",
		"fig78", "ws-glamdring", "ablation-lock", "ablation-paging",
		"ablation-switchless", "switchless", "contention", "live", "analyze",
		"serve", "outofcore",
	} {
		start := time.Now()
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// checkSwitchlessLoop enforces the closed loop's acceptance criteria:
// the optimisation must come from the analyser, actually pay off, leave
// the workload's results untouched, and settle on a stable worker count.
func checkSwitchlessLoop(res *experiments.SwitchlessLoopResult) error {
	if !res.LintFoundTransitionBound {
		return fmt.Errorf("switchless: lint did not flag the transition-bound interface")
	}
	if res.ConfigSource != "staticlint" {
		return fmt.Errorf("switchless: config source %q, want \"staticlint\"", res.ConfigSource)
	}
	if res.SwitchlessChecksum != res.BaselineChecksum {
		return fmt.Errorf("switchless: results diverge: baseline checksum %d, switchless %d",
			res.BaselineChecksum, res.SwitchlessChecksum)
	}
	if res.Speedup < 1.5 {
		return fmt.Errorf("switchless: speedup %.2fx below the 1.5x bar", res.Speedup)
	}
	if !res.Converged {
		return fmt.Errorf("switchless: scheduler did not converge (worker count still moving in the final epochs)")
	}
	if res.TraceSwless.Served == 0 {
		return fmt.Errorf("switchless: trace shows no served switchless events — the observability fix regressed")
	}
	return nil
}

// checkServe enforces the always-on service's acceptance criteria: the
// served report must match the offline analyser exactly, the run must
// exercise real concurrency, the artifact cache must make warm requests
// at least 5x faster than cold ones, and an append must invalidate only
// the tail of the windowed statistics.
func checkServe(res *experiments.ServeResult) error {
	if !res.ServedEqualsOffline {
		return fmt.Errorf("serve: served report diverges from the offline analyser")
	}
	if res.Sessions < 8 {
		return fmt.Errorf("serve: only %d concurrent sessions, want >= 8", res.Sessions)
	}
	if res.WarmSpeedup < 5 {
		return fmt.Errorf("serve: warm/cold speedup %.1fx below the 5x bar", res.WarmSpeedup)
	}
	if res.AppendWindowsReused < 1 || res.AppendWindowsComputed < 1 {
		return fmt.Errorf("serve: append recomputed %d and reused %d windows — incremental invalidation regressed",
			res.AppendWindowsComputed, res.AppendWindowsReused)
	}
	if res.AppendWindowsComputed >= res.AppendWindowsTotal {
		return fmt.Errorf("serve: append recomputed all %d windows — nothing was reused", res.AppendWindowsTotal)
	}
	return nil
}

// checkOutOfCore enforces the streaming pipeline's acceptance criteria:
// the out-of-core report must be byte-identical to the resident one,
// and peak memory must sit at the chunk-window scale — far below the
// resident path (which holds every table) and below an absolute ceiling
// that does not grow with the trace (chunk size x a handful of cursors,
// plus aggregate state and GC slack).
func checkOutOfCore(res *experiments.OutOfCoreResult) error {
	if !res.StreamEqualsResident {
		return fmt.Errorf("outofcore: streaming report diverges from resident")
	}
	if res.PeakReduction < 3 {
		return fmt.Errorf("outofcore: peak memory reduction %.1fx below the 3x bar (resident %d B, stream %d B)",
			res.PeakReduction, res.ResidentPeakBytes, res.StreamPeakBytes)
	}
	if limit := uint64(64 << 20); res.StreamPeakBytes > limit {
		return fmt.Errorf("outofcore: streaming peak %d B exceeds the %d B chunk-window budget",
			res.StreamPeakBytes, limit)
	}
	return nil
}

// contentionResults is the machine-readable schema of -exp contention
// -json: the measured sweep, and optionally the baseline sweep it was
// compared against with per-thread-count speedups.
type contentionResults struct {
	Benchmark    string                      `json:"benchmark"`
	OpsPerThread int                         `json:"ops_per_thread"`
	Repeats      int                         `json:"repeats"`
	Rows         []experiments.ContentionRow `json:"rows"`
	// LiveRows repeats the sweep with a live streaming collector
	// subscribed to the trace; LiveOverhead is live/plain throughput per
	// thread count (1.0 = free, the acceptance bar is ≥ 0.9).
	LiveRows     []experiments.ContentionRow `json:"live_rows,omitempty"`
	LiveOverhead map[string]float64          `json:"live_overhead,omitempty"`
	Baseline     []experiments.ContentionRow `json:"baseline,omitempty"`
	Speedup      map[string]float64          `json:"speedup_vs_baseline,omitempty"`
}

// readContentionBaseline accepts a previous -json output file (the
// baseline is its "rows" field, so results chain run-over-run) or a bare
// JSON array of rows.
func readContentionBaseline(path string) ([]experiments.ContentionRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res contentionResults
	if err := json.Unmarshal(data, &res); err == nil && len(res.Rows) > 0 {
		return res.Rows, nil
	}
	var rows []experiments.ContentionRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return rows, nil
}

// contentionOverheads reports the live sweep's throughput as a fraction
// of the plain sweep's, per thread count.
func contentionOverheads(plain, live []experiments.ContentionRow) map[string]float64 {
	byThreads := make(map[int]float64, len(plain))
	for _, r := range plain {
		byThreads[r.Threads] = r.EventsPerSec
	}
	out := make(map[string]float64, len(live))
	for _, r := range live {
		if p := byThreads[r.Threads]; p > 0 {
			out[fmt.Sprintf("threads=%d", r.Threads)] = r.EventsPerSec / p
		}
	}
	return out
}

func contentionSpeedups(base, cur []experiments.ContentionRow) map[string]float64 {
	byThreads := make(map[int]float64, len(base))
	for _, b := range base {
		byThreads[b.Threads] = b.EventsPerSec
	}
	out := make(map[string]float64, len(cur))
	for _, c := range cur {
		if b := byThreads[c.Threads]; b > 0 {
			out[fmt.Sprintf("threads=%d", c.Threads)] = c.EventsPerSec / b
		}
	}
	return out
}

// mergeJSONKey sets key to v inside the JSON object stored at path,
// preserving every other top-level field (the contention results live in
// the same file). A missing or non-object file starts a fresh object.
func mergeJSONKey(path, key string, v any) error {
	obj := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &obj) // best-effort: garbage starts fresh
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	obj[key] = raw
	out, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// liveResultsWire is the api/v1 form of -exp live -json: run totals
// plus the final snapshot as the shared LiveSnapshot wire type
// (-json-legacy keeps the old internal-type shape).
type liveResultsWire struct {
	SchemaVersion int                 `json:"schema_version"`
	DurationNs    int64               `json:"duration_ns"`
	Ticks         int                 `json:"ticks"`
	EventsSeen    int64               `json:"events_seen"`
	Final         *apiv1.LiveSnapshot `json:"final"`
}

// writeWireJSON writes an api/v1 document in the canonical
// serialisation.
func writeWireJSON(path string, v any) error {
	data, err := apiv1.Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
