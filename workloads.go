package sgxperf

import (
	"fmt"
	"sort"
	"time"

	"sgxperf/internal/perf/logger"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/amplify"
	"sgxperf/internal/workloads/glamdring"
	"sgxperf/internal/workloads/keeper"
	"sgxperf/internal/workloads/minidb"
	"sgxperf/internal/workloads/talos"
)

// WorkloadResult is one workload run's outcome.
type WorkloadResult = workloads.Result

// WorkloadOptions parameterises RunWorkload.
type WorkloadOptions struct {
	// Variant selects the workload configuration (see WorkloadVariants);
	// empty picks the workload's default.
	Variant string
	// Ops bounds the run by operation count.
	Ops int
	// Duration bounds the run by virtual time.
	Duration time.Duration
	// Mitigation selects the machine's microcode state.
	Mitigation MitigationLevel
	// Logger attaches the sgx-perf event logger; the trace is returned.
	Logger bool
	// AEX selects the logger's AEX mode (default off).
	AEX AEXMode
	// WorkingSet attaches the working-set estimator (enclave workloads).
	WorkingSet bool
}

// WorkloadRun is the outcome of RunWorkload.
type WorkloadRun struct {
	Result WorkloadResult
	// Trace is the recorded event trace when Options.Logger was set.
	Trace *Trace
	// StartupPages/SteadyPages are working-set measurements when
	// Options.WorkingSet was set.
	StartupPages int
	SteadyPages  int
}

// Workloads lists the evaluation workloads by name. The paper's four
// studies plus the amplify exhibit — the chatty-boundary workload the
// interprocedural lint pass predicts and the hybrid report verifies.
func Workloads() []string {
	out := []string{"talos", "securekeeper", "sqlite", "glamdring", "amplify"}
	sort.Strings(out)
	return out
}

// WorkloadVariants lists the variants of a workload.
func WorkloadVariants(name string) ([]string, error) {
	switch name {
	case "talos":
		return []string{"enclave"}, nil
	case "securekeeper":
		return []string{"proxy"}, nil
	case "sqlite":
		return []string{"native", "enclave", "merged"}, nil
	case "glamdring":
		return []string{"native", "enclave", "optimized", "switchless"}, nil
	case "amplify":
		return []string{"chatty-boundary"}, nil
	default:
		return nil, fmt.Errorf("sgxperf: unknown workload %q (have %v)", name, Workloads())
	}
}

// RunWorkload builds a fresh host and runs one of the paper's four
// evaluation workloads (§5.2) on it.
func RunWorkload(name string, opts WorkloadOptions) (*WorkloadRun, error) {
	if opts.Mitigation == 0 {
		opts.Mitigation = MitigationNone
	}
	hostOpts := []HostOption{WithMitigation(opts.Mitigation)}
	if name == "glamdring" {
		hostOpts = glamdring.RecommendedHostOptions(opts.Mitigation)
	}
	h, err := NewHost(hostOpts...)
	if err != nil {
		return nil, err
	}
	out := &WorkloadRun{}
	var l *Logger
	if opts.Logger {
		mode := opts.AEX
		if mode == 0 {
			mode = AEXOff
		}
		l, err = AttachLogger(h, logger.Options{Workload: name, AEX: mode})
		if err != nil {
			return nil, err
		}
		out.Trace = l.Trace()
	}
	runOpts := workloads.Options{Ops: opts.Ops, Duration: opts.Duration}

	var enclave *Enclave
	var run func(ctx *Context) (WorkloadResult, error)
	ctx := h.NewContext("driver")

	switch name {
	case "talos":
		srv, err := talos.NewServer(h, ctx)
		if err != nil {
			return nil, err
		}
		enclave = srv.Enclave().SgxEnclave()
		run = func(ctx *Context) (WorkloadResult, error) { return srv.Run(ctx, runOpts) }
	case "securekeeper":
		w, err := keeper.New(h, ctx)
		if err != nil {
			return nil, err
		}
		enclave = w.Enclave()
		run = func(ctx *Context) (WorkloadResult, error) {
			return w.Run(keeper.RunOptions{Duration: opts.Duration})
		}
	case "sqlite":
		variant := minidb.Variant(opts.Variant)
		if opts.Variant == "" {
			variant = minidb.VariantEnclave
		}
		w, err := minidb.New(h, variant, ctx)
		if err != nil {
			return nil, err
		}
		enclave = w.Enclave()
		run = func(ctx *Context) (WorkloadResult, error) { return w.Run(ctx, runOpts) }
	case "glamdring":
		variant := glamdring.Variant(opts.Variant)
		if opts.Variant == "" {
			variant = glamdring.VariantEnclave
		}
		w, err := glamdring.New(h, variant)
		if err != nil {
			return nil, err
		}
		defer w.Close() // stops switchless workers, a no-op otherwise
		enclave = w.Enclave()
		run = func(ctx *Context) (WorkloadResult, error) { return w.Run(ctx, runOpts) }
	case "amplify":
		w, err := amplify.New(h, ctx)
		if err != nil {
			return nil, err
		}
		enclave = w.Enclave()
		run = func(ctx *Context) (WorkloadResult, error) {
			// Ops scales the checked writes; flush/spill counts keep
			// their deterministic defaults so the predicted-vs-observed
			// arithmetic stays recognisable.
			return w.Run(amplify.RunOptions{Writes: opts.Ops})
		}
	default:
		return nil, fmt.Errorf("sgxperf: unknown workload %q (have %v)", name, Workloads())
	}

	var est *WorkingSetEstimator
	if opts.WorkingSet {
		if enclave == nil {
			return nil, fmt.Errorf("sgxperf: variant %q has no enclave to estimate", opts.Variant)
		}
		est = NewWorkingSetEstimator(h, enclave)
		if err := est.Start(); err != nil {
			return nil, err
		}
		defer est.Stop()
	}

	res, err := run(ctx)
	if err != nil {
		return nil, err
	}
	out.Result = res
	if est != nil {
		// A single-phase measurement: the run covers both start-up and
		// load; callers wanting the two-phase split use the experiment
		// harness.
		out.StartupPages = est.Count()
		out.SteadyPages = est.Count()
	}
	return out, nil
}
