package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// EnclaveID identifies an enclave on a machine.
type EnclaveID uint64

// Config describes an enclave to be built. It mirrors the SDK's enclave
// configuration file: heap and stack sizes and the number of concurrent
// threads are fixed at build time (§2.3.3).
type Config struct {
	// Name labels the enclave in traces and reports.
	Name string
	// CodeBytes is the size of the code+static-data segment.
	CodeBytes int
	// HeapBytes is the in-enclave heap size.
	HeapBytes int
	// StackBytes is the per-thread stack size.
	StackBytes int
	// NumTCS is the number of Thread Control Structures, bounding
	// concurrent in-enclave threads.
	NumTCS int
	// Debug marks the enclave as a debug enclave (inspectable by tools).
	Debug bool
	// SGXv2 enables dynamic memory management: heap pages may be added
	// after creation (EAUG) instead of failing allocation.
	SGXv2 bool
	// HeapReserveBytes bounds how much an SGXv2 enclave may grow beyond
	// HeapBytes. Defaults to 3×HeapBytes when SGXv2 is set.
	HeapReserveBytes int
}

func (c *Config) withDefaults() Config {
	cc := *c
	if cc.Name == "" {
		cc.Name = "enclave"
	}
	if cc.CodeBytes <= 0 {
		cc.CodeBytes = 64 * 1024
	}
	if cc.HeapBytes <= 0 {
		cc.HeapBytes = 256 * 1024
	}
	if cc.StackBytes <= 0 {
		cc.StackBytes = 64 * 1024
	}
	if cc.NumTCS <= 0 {
		cc.NumTCS = 1
	}
	if cc.SGXv2 && cc.HeapReserveBytes <= 0 {
		cc.HeapReserveBytes = 3 * cc.HeapBytes
	}
	return cc
}

// ssaPagesPerThread is the number of State Save Area pages per TCS.
const ssaPagesPerThread = 2

// Enclave is a built enclave: a contiguous range of pages starting at Base,
// with a measurement covering every measured page. Pages are added to the
// EPC by the kernel driver, not here.
type Enclave struct {
	ID     EnclaveID
	Base   Vaddr
	Config Config

	pages       []*Page
	measurement [32]byte

	// tcsFree is a bitmap of free TCS slots (bit i set ⇔ slot i free),
	// managed with CAS so concurrent EENTERs never serialise on a mutex.
	tcsFree  []atomic.Uint64
	tcsPages []*Page
	// tcsBound/tcsPeak account for dynamically bound TCSs: the current
	// gauge and its high-water mark, so runtimes that grow and retire
	// worker threads (switchless pools) can report peak TCS pressure.
	tcsBound  atomic.Int64
	tcsPeak   atomic.Int64
	destroyed atomic.Bool

	mu       sync.Mutex
	heapNext int // byte offset into heap region
	heapSize int
	heap     []*Page // committed heap pages in order
	reserve  []*Page // SGXv2 uncommitted heap pages (EAUG candidates)
}

// buildEnclave lays out the enclave's address space. Layout, in page order:
//
//	SECS | code... | heap... | per thread: guard, stack..., guard, TCS, SSA×2 | padding...
//
// The total size is rounded up to a power of two, as required by the
// enclave measurement (§4.2).
func buildEnclave(id EnclaveID, base Vaddr, cfg Config) *Enclave {
	cfg = cfg.withDefaults()
	e := &Enclave{ID: id, Base: base, Config: cfg}

	addr := base
	add := func(kind PageKind, thread int, sgxPerm Perm) *Page {
		p := &Page{
			Vaddr:   addr,
			Kind:    kind,
			Thread:  thread,
			SGXPerm: sgxPerm,
		}
		p.setMMUPerm(sgxPerm)
		addr += PageSize
		e.pages = append(e.pages, p)
		return p
	}

	add(PageSECS, -1, PermRead)
	for i := 0; i < pagesFor(cfg.CodeBytes); i++ {
		add(PageCode, -1, PermRead|PermExec)
	}
	heapPages := pagesFor(cfg.HeapBytes)
	for i := 0; i < heapPages; i++ {
		e.heap = append(e.heap, add(PageHeap, -1, PermRW))
	}
	e.heapSize = heapPages * PageSize
	// SGXv2 reserve: laid out contiguously after the committed heap so the
	// bump allocator's address arithmetic stays valid; EAUG pages are not
	// part of the build-time measurement.
	for i := 0; i < pagesFor(cfg.HeapReserveBytes); i++ {
		e.reserve = append(e.reserve, add(PageHeap, -1, PermRW))
	}
	for t := 0; t < cfg.NumTCS; t++ {
		add(PageGuard, t, 0)
		for i := 0; i < pagesFor(cfg.StackBytes); i++ {
			add(PageStack, t, PermRW)
		}
		add(PageGuard, t, 0)
		tcs := add(PageTCS, t, PermRW)
		e.tcsPages = append(e.tcsPages, tcs)
		for i := 0; i < ssaPagesPerThread; i++ {
			add(PageSSA, t, PermRW)
		}
	}
	for len(e.pages) < nextPow2(len(e.pages)) {
		add(PagePadding, -1, PermRead)
	}
	e.tcsFree = make([]atomic.Uint64, (cfg.NumTCS+63)/64)
	for t := 0; t < cfg.NumTCS; t++ {
		e.tcsFree[t/64].Store(e.tcsFree[t/64].Load() | 1<<(t%64))
	}
	e.measurement = measure(base, e.pages, e.reserve)
	return e
}

func pagesFor(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + PageSize - 1) / PageSize
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// measure computes MRENCLAVE: a SHA-256 over the ordered page metadata,
// mirroring the EADD/EEXTEND measurement chain. Offsets relative to the
// enclave base are hashed (not absolute addresses): enclaves are
// position-independent, so relocation must not change the measurement.
// SGXv2 reserve pages are excluded: EAUG pages are added after the
// measurement is finalised.
func measure(base Vaddr, pages, exclude []*Page) [32]byte {
	excluded := make(map[*Page]struct{}, len(exclude))
	for _, p := range exclude {
		excluded[p] = struct{}{}
	}
	h := sha256.New()
	var buf [16]byte
	for _, p := range pages {
		if _, skip := excluded[p]; skip {
			continue
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.Vaddr-base))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(p.Kind))
		binary.LittleEndian.PutUint32(buf[12:16], uint32(p.SGXPerm))
		h.Write(buf[:])
	}
	var m [32]byte
	copy(m[:], h.Sum(nil))
	return m
}

// Measurement returns the enclave's MRENCLAVE.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Pages returns the enclave's pages in layout order. Callers must not
// mutate the slice.
func (e *Enclave) Pages() []*Page { return e.pages }

// NumPages returns the total page count including padding.
func (e *Enclave) NumPages() int { return len(e.pages) }

// SizeBytes returns the enclave's virtual size.
func (e *Enclave) SizeBytes() int { return len(e.pages) * PageSize }

// PageAt returns the page containing vaddr, or nil if out of range.
func (e *Enclave) PageAt(v Vaddr) *Page {
	if v < e.Base {
		return nil
	}
	idx := v.PageIndex(e.Base)
	if idx < 0 || idx >= len(e.pages) {
		return nil
	}
	return e.pages[idx]
}

// Contains reports whether vaddr falls inside the enclave.
func (e *Enclave) Contains(v Vaddr) bool { return e.PageAt(v) != nil }

// acquireTCS binds a free TCS slot, or returns false if all are busy. The
// slot is claimed by clearing its bit with a CAS loop; highest free slot
// wins, matching the previous LIFO free-stack's initial order.
func (e *Enclave) acquireTCS() (int, bool) {
	for {
		retry := false
		for w := len(e.tcsFree) - 1; w >= 0; w-- {
			v := e.tcsFree[w].Load()
			if v == 0 {
				continue
			}
			bit := bits.Len64(v) - 1
			if e.tcsFree[w].CompareAndSwap(v, v&^(1<<bit)) {
				n := e.tcsBound.Add(1)
				for {
					p := e.tcsPeak.Load()
					if n <= p || e.tcsPeak.CompareAndSwap(p, n) {
						break
					}
				}
				return w*64 + bit, true
			}
			retry = true
			break
		}
		if !retry {
			return 0, false
		}
	}
}

// releaseTCS frees a TCS slot by setting its bit back.
func (e *Enclave) releaseTCS(slot int) {
	w := &e.tcsFree[slot/64]
	mask := uint64(1) << (slot % 64)
	for {
		v := w.Load()
		if w.CompareAndSwap(v, v|mask) {
			e.tcsBound.Add(-1)
			return
		}
	}
}

// BoundTCS returns the number of currently bound TCS slots.
func (e *Enclave) BoundTCS() int { return int(e.tcsBound.Load()) }

// PeakTCS returns the high-water mark of simultaneously bound TCS slots
// over the enclave's lifetime.
func (e *Enclave) PeakTCS() int { return int(e.tcsPeak.Load()) }

// FreeTCS returns the number of currently unbound TCS slots.
func (e *Enclave) FreeTCS() int {
	n := 0
	for i := range e.tcsFree {
		n += bits.OnesCount64(e.tcsFree[i].Load())
	}
	return n
}

// ErrOutOfEnclaveMemory is returned when a heap allocation exceeds the
// configured heap and the enclave is not SGXv2-expandable (§2.3.3).
var ErrOutOfEnclaveMemory = fmt.Errorf("sgx: out of enclave memory")

// heapAlloc reserves n bytes on the in-enclave heap and returns the start
// address. grow is called with e.mu held when an SGXv2 enclave needs extra
// pages; it must not re-lock. It may be nil for fixed-size enclaves.
func (e *Enclave) heapAlloc(n int, grow func(pages int) ([]*Page, error)) (Vaddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sgx: invalid allocation size %d", n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Align to 16 bytes like a real allocator.
	n = (n + 15) &^ 15
	if e.heapNext+n > e.heapSize {
		if !e.Config.SGXv2 || grow == nil {
			return 0, ErrOutOfEnclaveMemory
		}
		need := pagesFor(e.heapNext + n - e.heapSize)
		added, err := grow(need)
		if err != nil {
			return 0, fmt.Errorf("sgx: grow heap: %w", err)
		}
		e.heap = append(e.heap, added...)
		e.heapSize += len(added) * PageSize
	}
	if len(e.heap) == 0 {
		return 0, ErrOutOfEnclaveMemory
	}
	off := e.heapNext
	e.heapNext += n
	return e.heap[0].Vaddr + Vaddr(off), nil
}

// commitReserve moves n pages from the SGXv2 reserve into the committed
// heap (the EAUG path). Called with e.mu held by heapAlloc.
func (e *Enclave) commitReserve(n int) ([]*Page, error) {
	if n > len(e.reserve) {
		return nil, ErrOutOfEnclaveMemory
	}
	added := e.reserve[:n]
	e.reserve = e.reserve[n:]
	return added, nil
}

// HeapInUse returns the number of heap bytes currently allocated.
func (e *Enclave) HeapInUse() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.heapNext
}

// heapReset releases all heap allocations (bump-allocator reset). The SDK
// has a real allocator; for the analyses in this repository only the page
// touch pattern matters, so a resettable bump allocator suffices.
func (e *Enclave) heapReset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.heapNext = 0
}

// Report is a local-attestation report binding an enclave measurement to a
// machine's report key.
type Report struct {
	EnclaveID   EnclaveID
	Measurement [32]byte
	MAC         [32]byte
}

// makeReport MACs the measurement with the platform report key (EREPORT).
func makeReport(e *Enclave, reportKey []byte) Report {
	mac := hmac.New(sha256.New, reportKey)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(e.ID))
	mac.Write(idb[:])
	mac.Write(e.measurement[:])
	r := Report{EnclaveID: e.ID, Measurement: e.measurement}
	copy(r.MAC[:], mac.Sum(nil))
	return r
}

// verifyReport checks a report against the platform report key (the
// verifying enclave's EGETKEY path in local attestation).
func verifyReport(r Report, reportKey []byte) bool {
	mac := hmac.New(sha256.New, reportKey)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(r.EnclaveID))
	mac.Write(idb[:])
	mac.Write(r.Measurement[:])
	return hmac.Equal(mac.Sum(nil), r.MAC[:])
}
