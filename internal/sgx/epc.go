package sgx

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EPC sizing (§2.3.3): current hardware reserves 128 MiB of system memory,
// of which ≈93 MiB are usable for enclave pages; the rest holds integrity
// metadata.
const (
	// EPCTotalBytes is the reserved EPC region size.
	EPCTotalBytes = 128 << 20
	// EPCUsableBytes is the portion available for enclave pages.
	EPCUsableBytes = 93 << 20
	// EPCUsablePages is the usable page capacity (23,808 pages).
	EPCUsablePages = EPCUsableBytes / PageSize
)

// EPC is the Enclave Page Cache: a fixed-capacity set of resident enclave
// pages shared by all enclaves on the machine. Eviction policy lives in the
// kernel driver; the EPC itself only tracks occupancy, enforces capacity,
// and maintains LRU ordering metadata.
type EPC struct {
	// useClock is the logical LRU clock. It is atomic so Touch — hit on
	// every page access of every concurrent thread — never takes the EPC
	// mutex.
	useClock atomic.Uint64

	mu       sync.Mutex
	capacity int
	resident map[*Page]struct{}

	// stats
	insertions uint64
	removals   uint64
	peak       int
}

// NewEPC creates an EPC with the given page capacity. Capacity 0 selects
// the architectural default (EPCUsablePages).
func NewEPC(capacity int) *EPC {
	if capacity <= 0 {
		capacity = EPCUsablePages
	}
	return &EPC{
		capacity: capacity,
		resident: make(map[*Page]struct{}, capacity/16),
	}
}

// Capacity returns the page capacity.
func (e *EPC) Capacity() int { return e.capacity }

// Resident returns the number of currently resident pages.
func (e *EPC) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.resident)
}

// Free returns the number of free page slots.
func (e *EPC) Free() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.capacity - len(e.resident)
}

// ErrEPCFull is returned by Insert when no slot is free; the caller (the
// driver) must evict a victim first.
var ErrEPCFull = fmt.Errorf("sgx: epc full")

// Insert marks the page resident, consuming one slot.
func (e *EPC) Insert(p *Page) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.resident[p]; ok {
		return nil
	}
	if len(e.resident) >= e.capacity {
		return ErrEPCFull
	}
	e.resident[p] = struct{}{}
	p.resident.Store(true)
	p.lastUse.Store(e.useClock.Add(1))
	e.insertions++
	if len(e.resident) > e.peak {
		e.peak = len(e.resident)
	}
	return nil
}

// Remove marks the page non-resident, freeing its slot.
func (e *EPC) Remove(p *Page) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.resident[p]; !ok {
		return
	}
	delete(e.resident, p)
	p.resident.Store(false)
	e.removals++
}

// Touch refreshes the page's LRU stamp. It is lock-free: page accesses
// happen on every memory touch of every running thread, and serialising
// them through the EPC mutex would dominate the simulation.
func (e *EPC) Touch(p *Page) {
	p.lastUse.Store(e.useClock.Add(1))
}

// Victim returns the least-recently-used resident page for which keep
// returns false, or nil if none qualifies. The driver uses keep to protect
// pages that must stay resident (e.g. the SECS of a running enclave).
func (e *EPC) Victim(keep func(*Page) bool) *Page {
	e.mu.Lock()
	defer e.mu.Unlock()
	var victim *Page
	for p := range e.resident {
		if keep != nil && keep(p) {
			continue
		}
		if victim == nil || p.lastUse.Load() < victim.lastUse.Load() {
			victim = p
		}
	}
	return victim
}

// Stats reports lifetime counters.
func (e *EPC) Stats() (insertions, removals uint64, peak int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.insertions, e.removals, e.peak
}
