package sgx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"sgxperf/internal/vtime"
)

// testResolver is a minimal in-test "driver": it pages faulting pages in,
// evicting LRU victims when the EPC is full.
type testResolver struct {
	m        *Machine
	pageIns  int
	pageOuts int
}

func (r *testResolver) ResolveEPCFault(ctx *Context, enc *Enclave, page *Page, _ bool) error {
	epc := r.m.EPC()
	for epc.Free() == 0 {
		victim := epc.Victim(func(p *Page) bool {
			return p == page || p.Kind == PageSECS || p.Kind == PageTCS
		})
		if victim == nil {
			return errors.New("no victim")
		}
		victim.SealFor(r.m.MEE())
		epc.Remove(victim)
		r.pageOuts++
	}
	if _, err := page.Unseal(r.m.MEE()); err != nil {
		return err
	}
	r.pageIns++
	return epc.Insert(page)
}

// loadAll inserts every page of the enclave into the EPC (test-side EADD).
func loadAll(t *testing.T, m *Machine, e *Enclave) {
	t.Helper()
	for _, p := range e.Pages() {
		if err := m.EPC().Insert(p); err != nil {
			t.Fatalf("insert %v: %v", p, err)
		}
	}
}

func newTestMachine(t *testing.T, opts ...Option) (*Machine, *testResolver) {
	t.Helper()
	m, err := NewMachine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	r := &testResolver{m: m}
	m.SetPageFaultResolver(r)
	return m, r
}

func TestMitigationRoundTrips(t *testing.T) {
	tests := []struct {
		level MitigationLevel
		want  time.Duration
	}{
		{MitigationNone, 2130 * time.Nanosecond},
		{MitigationSpectre, 3850 * time.Nanosecond},
		{MitigationFull, 4890 * time.Nanosecond},
	}
	for _, tt := range tests {
		t.Run(tt.level.String(), func(t *testing.T) {
			cm := DefaultCostModel(tt.level)
			got := cm.Frequency.Duration(cm.RoundTrip())
			if got < tt.want-2*time.Nanosecond || got > tt.want+2*time.Nanosecond {
				t.Fatalf("round trip %v, want %v", got, tt.want)
			}
		})
	}
	// §2.3.1 ratios: Spectre ≈1.74×, full ≈2.24× the vanilla cost.
	base := DefaultCostModel(MitigationNone).RoundTrip()
	spectre := DefaultCostModel(MitigationSpectre).RoundTrip()
	full := DefaultCostModel(MitigationFull).RoundTrip()
	if r := float64(spectre) / float64(base); r < 1.7 || r > 1.9 {
		t.Errorf("spectre/base ratio %.2f, want ≈1.74", r)
	}
	if r := float64(full) / float64(base); r < 2.1 || r > 2.4 {
		t.Errorf("full/base ratio %.2f, want ≈2.24", r)
	}
}

func TestEnclaveLayout(t *testing.T) {
	m, _ := newTestMachine(t)
	cfg := Config{
		Name:       "layout",
		CodeBytes:  8 * PageSize,
		HeapBytes:  16 * PageSize,
		StackBytes: 4 * PageSize,
		NumTCS:     3,
	}
	e := m.NewEnclaveLayout(cfg)

	counts := map[PageKind]int{}
	for _, p := range e.Pages() {
		counts[p.Kind]++
	}
	if counts[PageSECS] != 1 {
		t.Errorf("SECS pages = %d, want 1", counts[PageSECS])
	}
	if counts[PageCode] != 8 {
		t.Errorf("code pages = %d, want 8", counts[PageCode])
	}
	if counts[PageHeap] != 16 {
		t.Errorf("heap pages = %d, want 16", counts[PageHeap])
	}
	if counts[PageTCS] != 3 {
		t.Errorf("TCS pages = %d, want 3", counts[PageTCS])
	}
	if counts[PageSSA] != 3*ssaPagesPerThread {
		t.Errorf("SSA pages = %d, want %d", counts[PageSSA], 3*ssaPagesPerThread)
	}
	if counts[PageStack] != 3*4 {
		t.Errorf("stack pages = %d, want 12", counts[PageStack])
	}
	if counts[PageGuard] != 3*2 {
		t.Errorf("guard pages = %d, want 6", counts[PageGuard])
	}
	// Power-of-two total size (§4.2).
	n := e.NumPages()
	if n&(n-1) != 0 {
		t.Errorf("total pages %d not a power of two", n)
	}
	// Pages are contiguous from Base.
	for i, p := range e.Pages() {
		want := e.Base + Vaddr(i*PageSize)
		if p.Vaddr != want {
			t.Fatalf("page %d at %#x, want %#x", i, uint64(p.Vaddr), uint64(want))
		}
	}
}

func TestEnclaveMeasurementDeterministic(t *testing.T) {
	m, _ := newTestMachine(t)
	cfg := Config{CodeBytes: PageSize, HeapBytes: PageSize, StackBytes: PageSize, NumTCS: 1}
	e1 := m.NewEnclaveLayout(cfg)
	e2 := m.NewEnclaveLayout(cfg)
	if e1.Measurement() != e2.Measurement() {
		t.Error("identical configs produced different measurements")
	}
	cfg.HeapBytes = 2 * PageSize
	e3 := m.NewEnclaveLayout(cfg)
	if e1.Measurement() == e3.Measurement() {
		t.Error("different configs produced identical measurements")
	}
}

func TestLocalAttestation(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	r := m.Report(e)
	if !m.VerifyReport(r) {
		t.Fatal("genuine report failed verification")
	}
	r.Measurement[0] ^= 0xff
	if m.VerifyReport(r) {
		t.Fatal("tampered report verified")
	}
	other, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if other.VerifyReport(m.Report(e)) {
		t.Fatal("report verified on a different platform")
	}
}

func TestEEnterEExitCharges(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	loadAll(t, m, e)
	ctx := m.NewContext("t")

	start := ctx.Now()
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	if !ctx.InEnclave() {
		t.Fatal("not in enclave after EEnter")
	}
	if err := ctx.EExit(); err != nil {
		t.Fatal(err)
	}
	if ctx.InEnclave() {
		t.Fatal("still in enclave after EExit")
	}
	elapsed := ctx.Now() - start
	rt := m.Cost().RoundTrip()
	// Round trip plus a page touch for the TCS.
	if elapsed < rt || elapsed > rt+m.Cost().PageTouch*4 {
		t.Fatalf("enter+exit charged %d cycles, want ≈%d", elapsed, rt)
	}
}

func TestTCSExhaustion(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{NumTCS: 2})
	loadAll(t, m, e)

	c1, c2, c3 := m.NewContext("a"), m.NewContext("b"), m.NewContext("c")
	if err := c1.EEnter(e); err != nil {
		t.Fatal(err)
	}
	if err := c2.EEnter(e); err != nil {
		t.Fatal(err)
	}
	if err := c3.EEnter(e); !errors.Is(err, ErrNoFreeTCS) {
		t.Fatalf("third concurrent entry: %v, want ErrNoFreeTCS", err)
	}
	if err := c1.EExit(); err != nil {
		t.Fatal(err)
	}
	if err := c3.EEnter(e); err != nil {
		t.Fatalf("entry after exit freed a TCS: %v", err)
	}
}

func TestOcallSuspendsFrameAndReusesTCS(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{NumTCS: 1})
	loadAll(t, m, e)
	ctx := m.NewContext("t")

	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	if err := ctx.OcallExit(); err != nil {
		t.Fatal(err)
	}
	if ctx.InEnclave() {
		t.Fatal("in enclave during ocall")
	}
	// Nested ecall during the ocall must reuse the bound TCS even though
	// the enclave has only one.
	if err := ctx.EEnter(e); err != nil {
		t.Fatalf("nested ecall: %v", err)
	}
	if ctx.EnclaveDepth() != 2 {
		t.Fatalf("depth %d, want 2", ctx.EnclaveDepth())
	}
	if err := ctx.EExit(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.OcallReturn(); err != nil {
		t.Fatal(err)
	}
	if !ctx.InEnclave() {
		t.Fatal("not back in enclave after ocall return")
	}
	if err := ctx.EExit(); err != nil {
		t.Fatal(err)
	}
}

func TestTimerAEXInjection(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	loadAll(t, m, e)
	ctx := m.NewContext("t")

	var aexCount int
	m.PatchAEP(func(c *Context, info AEXInfo) {
		aexCount++
		c.chargeERESUME()
	})

	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	// Table 2's long-ecall experiment: ~45.4ms of work over a 4ms quantum
	// yields ≈11.5 AEXs.
	ctx.Compute(45377 * time.Microsecond)
	if err := ctx.EExit(); err != nil {
		t.Fatal(err)
	}
	if aexCount < 10 || aexCount > 13 {
		t.Fatalf("AEX count %d, want ≈11", aexCount)
	}
	if got := 0; ctx.CurrentCallAEXCount() != got {
		t.Fatalf("frame popped, AEX count should be unreadable (0), got %d", ctx.CurrentCallAEXCount())
	}
}

func TestNoTimerAEXOutsideEnclave(t *testing.T) {
	m, _ := newTestMachine(t)
	ctx := m.NewContext("t")
	var aexCount int
	m.PatchAEP(func(c *Context, info AEXInfo) {
		aexCount++
		c.chargeERESUME()
	})
	ctx.Compute(50 * time.Millisecond)
	if aexCount != 0 {
		t.Fatalf("AEXs outside enclave: %d", aexCount)
	}
}

func TestHeapAllocAndRW(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 4 * PageSize})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	v, err := ctx.HeapAlloc(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("sgx-perf "), 1000) // crosses pages
	if err := ctx.WriteBytes(v, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := ctx.ReadBytes(v, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("read back different bytes")
	}
}

func TestHeapExhaustionSGXv1(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 2 * PageSize})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	if _, err := ctx.HeapAlloc(PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HeapAlloc(2 * PageSize); !errors.Is(err, ErrOutOfEnclaveMemory) {
		t.Fatalf("over-allocation: %v, want ErrOutOfEnclaveMemory", err)
	}
	// Reset frees everything.
	if err := ctx.HeapReset(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HeapAlloc(2 * PageSize); err != nil {
		t.Fatalf("alloc after reset: %v", err)
	}
}

func TestHeapGrowthSGXv2(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 2 * PageSize, SGXv2: true})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	// 2 pages committed + 6 reserve: 8 pages allocatable in total.
	if _, err := ctx.HeapAlloc(7 * PageSize); err != nil {
		t.Fatalf("SGXv2 growth failed: %v", err)
	}
	if _, err := ctx.HeapAlloc(4 * PageSize); !errors.Is(err, ErrOutOfEnclaveMemory) {
		t.Fatalf("beyond reserve: %v, want ErrOutOfEnclaveMemory", err)
	}
}

func TestPageFaultPathAndCharges(t *testing.T) {
	m, r := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 4 * PageSize})
	// Load everything except heap pages: heap touches must fault.
	for _, p := range e.Pages() {
		if p.Kind != PageHeap {
			if err := m.EPC().Insert(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	v, err := ctx.HeapAlloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	before := ctx.Now()
	if err := ctx.TouchRange(v, 2*PageSize, true); err != nil {
		t.Fatal(err)
	}
	if r.pageIns != 2 {
		t.Fatalf("page-ins = %d, want 2", r.pageIns)
	}
	// Each fault costs at least AEXSave + PageFault + EResume.
	minCost := 2 * (m.Cost().AEXSave + m.Cost().PageFault + m.Cost().EResume)
	if got := ctx.Now() - before; got < minCost {
		t.Fatalf("fault path charged %d cycles, want ≥%d", got, minCost)
	}
	// Second touch: no more faults.
	if err := ctx.TouchRange(v, 2*PageSize, true); err != nil {
		t.Fatal(err)
	}
	if r.pageIns != 2 {
		t.Fatalf("page-ins after warm touch = %d, want 2", r.pageIns)
	}
}

func TestEvictionSealsAndRestoresContent(t *testing.T) {
	// EPC big enough for metadata + 1 heap page: two heap pages fight.
	m, r := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 2 * PageSize})
	var capacity int
	for _, p := range e.Pages() {
		if p.Kind != PageHeap {
			capacity++
		}
	}
	capacity++ // room for exactly one heap page
	m2, r2 := newTestMachine(t, WithEPCCapacity(capacity))
	_ = m
	_ = r
	e = m2.NewEnclaveLayout(Config{HeapBytes: 2 * PageSize})
	for _, p := range e.Pages() {
		if p.Kind != PageHeap {
			if err := m2.EPC().Insert(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx := m2.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	v, err := ctx.HeapAlloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pageA := []byte("page A content: secret")
	pageB := []byte("page B content: also secret")
	if err := ctx.WriteBytes(v, pageA); err != nil {
		t.Fatal(err)
	}
	if err := ctx.WriteBytes(v+PageSize, pageB); err != nil { // evicts A
		t.Fatal(err)
	}
	got := make([]byte, len(pageA))
	if err := ctx.ReadBytes(v, got); err != nil { // faults A back, evicts B
		t.Fatal(err)
	}
	if !bytes.Equal(got, pageA) {
		t.Fatalf("page A corrupted after eviction round-trip: %q", got)
	}
	if r2.pageOuts == 0 {
		t.Fatal("no evictions happened; test is vacuous")
	}
}

func TestMMUFaultSignalPath(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 2 * PageSize})
	loadAll(t, m, e)
	ctx := m.NewContext("t")

	// Working-set-estimator style: strip perms, count faults, restore.
	faults := 0
	m.SetSegvHandler(func(c *Context, enc *Enclave, p *Page, write bool) bool {
		faults++
		m.SetMMUPerm(p, p.SGXPerm)
		return true
	})
	for _, p := range e.Pages() {
		if p.Kind == PageHeap {
			m.SetMMUPerm(p, 0)
		}
	}

	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	v, err := ctx.HeapAlloc(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.TouchRange(v, 2*PageSize, true); err != nil {
		t.Fatal(err)
	}
	if faults != 2 {
		t.Fatalf("faults = %d, want 2", faults)
	}
	// Permissions restored: no further faults.
	if err := ctx.TouchRange(v, 2*PageSize, true); err != nil {
		t.Fatal(err)
	}
	if faults != 2 {
		t.Fatalf("faults after restore = %d, want 2", faults)
	}
}

func TestUnhandledMMUFaultCrashes(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: PageSize})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	v, err := ctx.HeapAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p := e.PageAt(v)
	m.SetMMUPerm(p, 0)
	err = ctx.TouchRange(v, 64, false)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("unhandled fault: %v, want *FaultError", err)
	}
}

func TestGuardPageFaults(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	var guard *Page
	for _, p := range e.Pages() {
		if p.Kind == PageGuard {
			guard = p
			break
		}
	}
	if guard == nil {
		t.Fatal("no guard page in layout")
	}
	err := ctx.TouchRange(guard.Vaddr, 8, false)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("guard access: %v, want *FaultError", err)
	}
}

func TestDestroyedEnclaveRejectsEntry(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	loadAll(t, m, e)
	m.RemoveEnclave(e.ID)
	ctx := m.NewContext("t")
	if err := ctx.EEnter(e); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("enter destroyed enclave: %v", err)
	}
}

func TestLookupAddr(t *testing.T) {
	m, _ := newTestMachine(t)
	e1 := m.NewEnclaveLayout(Config{})
	e2 := m.NewEnclaveLayout(Config{})
	enc, page := m.LookupAddr(e2.Base + 3*PageSize)
	if enc != e2 || page != e2.Pages()[3] {
		t.Fatal("lookup resolved wrong enclave/page")
	}
	if enc, _ := m.LookupAddr(e1.Base - PageSize); enc != nil {
		t.Fatal("lookup outside any enclave returned an enclave")
	}
}

func TestMEERoundTripProperty(t *testing.T) {
	mee, err := NewMEE([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(content []byte, addr uint32, version uint8) bool {
		page := make([]byte, PageSize)
		copy(page, content)
		sealed := mee.Seal(Vaddr(addr), uint64(version), page)
		got, err := mee.Open(Vaddr(addr), uint64(version), sealed)
		return err == nil && bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMEERejectsTamperAndReplay(t *testing.T) {
	mee, err := NewMEE([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	copy(page, "secret")
	sealed := mee.Seal(0x1000, 1, page)

	tampered := make([]byte, len(sealed))
	copy(tampered, sealed)
	tampered[10] ^= 1
	if _, err := mee.Open(0x1000, 1, tampered); err == nil {
		t.Error("tampered image decrypted")
	}
	// Replay: old image against a newer version fails.
	if _, err := mee.Open(0x1000, 2, sealed); err == nil {
		t.Error("replayed image accepted")
	}
	// Relocation: image bound to a different address fails.
	if _, err := mee.Open(0x2000, 1, sealed); err == nil {
		t.Error("relocated image accepted")
	}
}

func TestMEERejectsBadKey(t *testing.T) {
	if _, err := NewMEE([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestEPCCapacityEnforced(t *testing.T) {
	epc := NewEPC(2)
	pages := []*Page{{Vaddr: 0x1000}, {Vaddr: 0x2000}, {Vaddr: 0x3000}}
	if err := epc.Insert(pages[0]); err != nil {
		t.Fatal(err)
	}
	if err := epc.Insert(pages[1]); err != nil {
		t.Fatal(err)
	}
	if err := epc.Insert(pages[2]); !errors.Is(err, ErrEPCFull) {
		t.Fatalf("over-capacity insert: %v", err)
	}
	epc.Remove(pages[0])
	if err := epc.Insert(pages[2]); err != nil {
		t.Fatal(err)
	}
	if epc.Resident() != 2 || epc.Free() != 0 {
		t.Fatalf("resident=%d free=%d", epc.Resident(), epc.Free())
	}
}

func TestEPCVictimIsLRU(t *testing.T) {
	epc := NewEPC(3)
	a, b, c := &Page{Vaddr: 0xa000}, &Page{Vaddr: 0xb000}, &Page{Vaddr: 0xc000}
	for _, p := range []*Page{a, b, c} {
		if err := epc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	epc.Touch(a) // a is now most recent; b is LRU
	if v := epc.Victim(nil); v != b {
		t.Fatalf("victim %v, want %v", v, b)
	}
	if v := epc.Victim(func(p *Page) bool { return p == b }); v != c {
		t.Fatalf("victim with keep(b) = %v, want %v", v, c)
	}
}

func TestEPCDefaultCapacityMatchesPaper(t *testing.T) {
	// 93 MiB usable (§2.3.3) = 23,808 4-KiB pages.
	if EPCUsablePages != 23808 {
		t.Fatalf("EPCUsablePages = %d, want 23808", EPCUsablePages)
	}
	if NewEPC(0).Capacity() != EPCUsablePages {
		t.Fatal("default EPC capacity mismatch")
	}
}

func TestComputeDurationAccounting(t *testing.T) {
	m, _ := newTestMachine(t)
	ctx := m.NewContext("t")
	start := ctx.Now()
	ctx.Compute(100 * time.Microsecond)
	got := ctx.Clock().Frequency().Duration(ctx.Now() - start)
	if got < 99*time.Microsecond || got > 101*time.Microsecond {
		t.Fatalf("compute advanced %v, want 100µs", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.NumTCS != 1 || c.HeapBytes <= 0 || c.StackBytes <= 0 || c.CodeBytes <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	v2 := (&Config{SGXv2: true, HeapBytes: PageSize}).withDefaults()
	if v2.HeapReserveBytes != 3*PageSize {
		t.Fatalf("SGXv2 reserve default = %d, want %d", v2.HeapReserveBytes, 3*PageSize)
	}
}

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{0, "---"},
		{PermRead, "r--"},
		{PermRW, "rw-"},
		{PermRead | PermWrite | PermExec, "rwx"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestAEXCauseVisibility(t *testing.T) {
	// Cause is only visible for debug+SGXv2 enclaves (§4.1.4).
	run := func(debug, v2 bool) AEXCause {
		m, _ := newTestMachine(t)
		e := m.NewEnclaveLayout(Config{Debug: debug, SGXv2: v2})
		loadAll(t, m, e)
		ctx := m.NewContext("t")
		var got AEXCause
		m.PatchAEP(func(c *Context, info AEXInfo) {
			got = info.Cause
			c.chargeERESUME()
		})
		if err := ctx.EEnter(e); err != nil {
			t.Fatal(err)
		}
		ctx.Compute(5 * time.Millisecond) // one timer AEX
		if err := ctx.EExit(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if c := run(true, true); c != AEXTimer {
		t.Errorf("debug+v2 cause = %v, want timer", c)
	}
	if c := run(false, false); c != 0 {
		t.Errorf("v1 cause = %v, want hidden (0)", c)
	}
}

var _ = vtime.Cycles(0)

func TestRemoteAttestation(t *testing.T) {
	svc := NewAttestationService()
	m1, _ := newTestMachine(t)
	m2, _ := newTestMachine(t)
	id1, err := svc.Register(m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(m2); err != nil {
		t.Fatal(err)
	}
	e := m1.NewEnclaveLayout(Config{Name: "attested"})

	var nonce [16]byte
	copy(nonce[:], "verifier-nonce-1")
	q, err := m1.QuoteFor(e, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if q.PlatformID != id1 {
		t.Fatalf("platform = %d, want %d", q.PlatformID, id1)
	}
	// The quote verifies remotely — unlike the local report, which only
	// verifies on its own machine.
	if err := svc.Verify(q, nonce); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	if m2.VerifyReport(q.Report) {
		t.Fatal("local report verified on a foreign machine")
	}

	// Tampered measurement → rejected.
	bad := q
	bad.Report.Measurement[0] ^= 1
	if err := svc.Verify(bad, nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered quote: %v", err)
	}
	// Replay under a different challenge → rejected.
	var nonce2 [16]byte
	copy(nonce2[:], "verifier-nonce-2")
	if err := svc.Verify(q, nonce2); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("replayed quote: %v", err)
	}
	// Unknown platform → rejected.
	unknown := q
	unknown.PlatformID = 999
	if err := svc.Verify(unknown, nonce); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("unknown platform: %v", err)
	}
	// Unprovisioned machine cannot quote.
	m3, _ := newTestMachine(t)
	e3 := m3.NewEnclaveLayout(Config{})
	if _, err := m3.QuoteFor(e3, nonce); !errors.Is(err, ErrNotProvisioned) {
		t.Fatalf("unprovisioned quote: %v", err)
	}
}

func TestMergedClockDoesNotReplayTimerTicks(t *testing.T) {
	// Regression: a cross-thread clock merge while parked inside an
	// enclave (a switchless worker waiting on its queue) must not replay
	// every missed 4ms timer tick as an AEX when the thread next
	// computes.
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{})
	loadAll(t, m, e)
	ctx := m.NewContext("worker")
	aex := 0
	m.PatchAEP(func(c *Context, info AEXInfo) {
		aex++
		c.chargeERESUME()
	})
	if err := ctx.EEnter(e); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	// The worker sits parked for 10 virtual seconds (2,500 missed ticks),
	// then handles a 1µs request.
	ctx.Clock().MergeAtLeast(ctx.Now() + m.Cost().Frequency.Cycles(10*time.Second))
	before := ctx.Now()
	ctx.Compute(time.Microsecond)
	if aex > 1 {
		t.Fatalf("merge replayed %d AEXs", aex)
	}
	elapsed := m.Cost().Frequency.Duration(ctx.Now() - before)
	if elapsed > 100*time.Microsecond {
		t.Fatalf("1µs of work charged %v", elapsed)
	}
}
