package sgx

import (
	"crypto/rand"
	"fmt"
	"sync"

	"sgxperf/internal/vtime"
)

// ThreadID identifies a simulated OS thread.
type ThreadID int64

// AEXCause distinguishes why an asynchronous exit happened. SGX v1 hardware
// cannot report this to software (§4.1.4); the machine model records it for
// its own bookkeeping, and only exposes it through the AEP when the enclave
// is a debug enclave with SGXv2 enabled, mirroring the paper's description
// of what SGX v2 will allow.
type AEXCause int

const (
	// AEXTimer is a timer interrupt.
	AEXTimer AEXCause = iota + 1
	// AEXPageFault is an EPC-residency page fault.
	AEXPageFault
	// AEXAccessFault is an MMU permission fault (delivered as a signal).
	AEXAccessFault
)

// String names the cause.
func (c AEXCause) String() string {
	switch c {
	case AEXTimer:
		return "timer"
	case AEXPageFault:
		return "page-fault"
	case AEXAccessFault:
		return "access-fault"
	default:
		return "unknown"
	}
}

// AEXInfo is passed to the AEP handler on every asynchronous exit.
type AEXInfo struct {
	Enclave EnclaveID
	Thread  ThreadID
	Time    vtime.Cycles
	// Cause is AEXTimer/AEXPageFault/AEXAccessFault for debug+SGXv2
	// enclaves and 0 (unknown) otherwise.
	Cause AEXCause
}

// AEPFunc is the handler located at the Asynchronous Exit Pointer. The
// default handler immediately resumes the enclave (ERESUME). Tools may
// patch it (§4.1.4) and must chain to the previous handler to resume.
type AEPFunc func(ctx *Context, info AEXInfo)

// PageFaultResolver resolves EPC-residency faults. It is implemented by the
// kernel driver: page the victim out if the EPC is full, page the faulting
// page in.
type PageFaultResolver interface {
	ResolveEPCFault(ctx *Context, enc *Enclave, page *Page, write bool) error
}

// SegvHandler handles MMU permission faults on enclave pages (the signal
// path used by the working-set estimator, §4.2). It returns true if the
// fault was handled and the access should be retried.
type SegvHandler func(ctx *Context, enc *Enclave, page *Page, write bool) bool

// Machine is one SGX-capable host: an EPC, an MEE, a cost model, and the
// set of enclaves in its address space.
type Machine struct {
	cost CostModel
	epc  *EPC
	mee  *MEE

	mu          sync.Mutex
	enclaves    map[EnclaveID]*Enclave
	order       []*Enclave // creation order, for address lookup
	nextEnclave EnclaveID
	nextThread  ThreadID
	nextBase    Vaddr

	resolver PageFaultResolver
	segv     SegvHandler
	aep      AEPFunc

	// Remote-attestation provisioning (attest.go).
	platformID uint64
	attestKey  []byte
}

// Option configures a Machine.
type Option func(*Machine)

// WithCostModel overrides the default (vanilla-mitigation) cost model.
func WithCostModel(c CostModel) Option {
	return func(m *Machine) { m.cost = c }
}

// WithEPCCapacity overrides the EPC page capacity (useful for forcing
// paging in tests without 93 MiB of working set).
func WithEPCCapacity(pages int) Option {
	return func(m *Machine) { m.epc = NewEPC(pages) }
}

// enclaveBaseGap spaces enclave base addresses apart.
const enclaveBaseGap = 1 << 32

// NewMachine creates a machine. Each machine gets a fresh random platform
// key, so reports and sealed pages from one machine do not verify on
// another (the key is not an experiment variable — no measurement depends
// on it); the cost model defaults to MitigationNone.
func NewMachine(opts ...Option) (*Machine, error) {
	key := make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("sgx: platform key: %w", err)
	}
	mee, err := NewMEE(key)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cost:     DefaultCostModel(MitigationNone),
		epc:      NewEPC(0),
		mee:      mee,
		enclaves: make(map[EnclaveID]*Enclave),
		nextBase: 0x7f0000000000,
	}
	m.aep = defaultAEP
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

func defaultAEP(ctx *Context, info AEXInfo) {
	ctx.chargeERESUME()
}

// Cost returns the machine's cost model.
func (m *Machine) Cost() CostModel { return m.cost }

// EPC returns the machine's enclave page cache.
func (m *Machine) EPC() *EPC { return m.epc }

// MEE returns the machine's memory encryption engine.
func (m *Machine) MEE() *MEE { return m.mee }

// SetPageFaultResolver installs the kernel driver's fault resolver. Must be
// called during wiring, before enclaves run.
func (m *Machine) SetPageFaultResolver(r PageFaultResolver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolver = r
}

// SetSegvHandler installs the kernel's signal dispatch for MMU faults.
func (m *Machine) SetSegvHandler(h SegvHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.segv = h
}

// PatchAEP replaces the AEP handler, returning the previous one so the new
// handler can chain to it (the logger's AEX tracing does exactly this,
// §4.1.4).
func (m *Machine) PatchAEP(fn AEPFunc) AEPFunc {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.aep
	m.aep = fn
	return prev
}

func (m *Machine) currentAEP() AEPFunc {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aep
}

func (m *Machine) segvHandler() SegvHandler {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.segv
}

func (m *Machine) faultResolver() PageFaultResolver {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resolver
}

// NewEnclaveLayout builds an enclave's address-space layout and registers
// it with the machine. It performs no EPC loading: enclave creation is a
// kernel-space operation (§2.1), so the driver calls this and then loads
// the pages.
func (m *Machine) NewEnclaveLayout(cfg Config) *Enclave {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextEnclave++
	base := m.nextBase
	m.nextBase += enclaveBaseGap
	e := buildEnclave(m.nextEnclave, base, cfg)
	m.enclaves[e.ID] = e
	m.order = append(m.order, e)
	return e
}

// RemoveEnclave unregisters a destroyed enclave.
func (m *Machine) RemoveEnclave(id EnclaveID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.enclaves[id]
	if !ok {
		return
	}
	e.destroyed.Store(true)
	delete(m.enclaves, id)
	for i, o := range m.order {
		if o == e {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Enclave returns the enclave with the given ID, or nil.
func (m *Machine) Enclave(id EnclaveID) *Enclave {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enclaves[id]
}

// Enclaves returns a snapshot of all live enclaves.
func (m *Machine) Enclaves() []*Enclave {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Enclave, len(m.order))
	copy(out, m.order)
	return out
}

// LookupAddr resolves a virtual address to the enclave and page containing
// it. Tools use this to attribute paging events to enclave regions
// (§4.1.5).
func (m *Machine) LookupAddr(v Vaddr) (*Enclave, *Page) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.order {
		if p := e.PageAt(v); p != nil {
			return e, p
		}
	}
	return nil, nil
}

// Report produces a local-attestation report for the enclave.
func (m *Machine) Report(e *Enclave) Report {
	return makeReport(e, m.mee.ReportKey())
}

// VerifyReport checks a local-attestation report produced on this machine.
func (m *Machine) VerifyReport(r Report) bool {
	return verifyReport(r, m.mee.ReportKey())
}

// NewContext creates a simulated OS thread with its own virtual clock.
func (m *Machine) NewContext(name string) *Context {
	m.mu.Lock()
	m.nextThread++
	id := m.nextThread
	m.mu.Unlock()
	c := &Context{
		id:    id,
		name:  name,
		m:     m,
		clock: vtime.NewClock(m.cost.Frequency),
	}
	c.nextTimer = m.cost.TimerQuantum
	return c
}

// SetMMUPerm changes a page's OS page-table permission. This is the
// mprotect-equivalent used by the working-set estimator; SGX permissions
// are unaffected.
func (m *Machine) SetMMUPerm(p *Page, perm Perm) {
	p.setMMUPerm(perm)
}

var errNoResolver = fmt.Errorf("sgx: no page-fault resolver installed")
