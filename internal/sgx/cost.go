// Package sgx models the Intel Software Guard Extensions hardware that the
// paper's tooling depends on: the Enclave Page Cache (EPC), enclaves built
// from SECS/TCS/SSA/stack/heap/code pages, the EENTER/EEXIT/ERESUME
// transition instructions, Asynchronous Enclave Exits (AEX), a Memory
// Encryption Engine, and MMU page permissions that are checked before the
// SGX permissions.
//
// The model runs on virtual time (package vtime): every operation charges a
// calibrated number of cycles to the executing thread's clock. Calibration
// targets are the paper's own measurements (§2.3.1 and Table 2), so the
// reproduction is deterministic yet shaped like the original hardware.
package sgx

import (
	"time"

	"sgxperf/internal/vtime"
)

// MitigationLevel selects which side-channel microcode/SDK mitigations are
// applied. The paper measures enclave transitions in all three settings
// (§2.3.1) and re-runs the Glamdring benchmark under each (§5.2.3).
type MitigationLevel int

const (
	// MitigationNone is an unmodified SGX-capable processor.
	MitigationNone MitigationLevel = iota + 1
	// MitigationSpectre applies the Spectre SDK + microcode updates.
	MitigationSpectre
	// MitigationFull additionally applies the Foreshadow (L1TF) microcode
	// update.
	MitigationFull
)

// String returns the conventional name of the mitigation level.
func (m MitigationLevel) String() string {
	switch m {
	case MitigationNone:
		return "vanilla"
	case MitigationSpectre:
		return "spectre"
	case MitigationFull:
		return "spectre+l1tf"
	default:
		return "unknown"
	}
}

// RoundTripDuration returns the paper's measured warm-cache EENTER+EEXIT
// round-trip time for this mitigation level (§2.3.1).
func (m MitigationLevel) RoundTripDuration() time.Duration {
	switch m {
	case MitigationSpectre:
		return 3850 * time.Nanosecond
	case MitigationFull:
		return 4890 * time.Nanosecond
	default:
		return 2130 * time.Nanosecond
	}
}

// CostModel holds every virtual-time charge the machine model applies. All
// values are in cycles at Frequency.
type CostModel struct {
	// Frequency is the simulated CPU frequency.
	Frequency vtime.Frequency

	// EEnter and EExit are the one-way transition costs. Their sum is the
	// measured round-trip of §2.3.1 for the selected mitigation level.
	EEnter vtime.Cycles
	EExit  vtime.Cycles
	// EResume re-enters the enclave after an AEX; it is priced like EEnter.
	EResume vtime.Cycles
	// AEXSave is the hardware cost of saving the execution context into the
	// SSA and leaving the enclave on an asynchronous exit.
	AEXSave vtime.Cycles
	// IRQHandler is the untrusted interrupt-handler work performed between
	// the AEX and the jump to the AEP.
	IRQHandler vtime.Cycles

	// TimerQuantum is the interval between timer interrupts while executing
	// inside an enclave. Linux 4.4 with CONFIG_HZ=250 (the paper's kernel)
	// fires every 4ms; the long-ecall experiment in Table 2 observes ~11.5
	// AEXs over a 45.4ms ecall, matching this quantum.
	TimerQuantum vtime.Cycles

	// PageFault is the kernel-side fault-handling overhead charged on every
	// EPC or MMU page fault, on top of the AEX round-trip.
	PageFault vtime.Cycles
	// PageCrypto is the Memory Encryption Engine cost for encrypting or
	// decrypting one 4 KiB page during EWB/ELDU.
	PageCrypto vtime.Cycles
	// PageDriver is the SGX driver bookkeeping cost per EWB/ELDU.
	PageDriver vtime.Cycles

	// PageTouch is charged on the first access to a resident page within a
	// call (TLB-miss shaped cost); subsequent touches are free.
	PageTouch vtime.Cycles

	// EAdd is the per-page enclave-build cost (EADD + EEXTEND measurement).
	EAdd vtime.Cycles

	// EnclaveComputeFactor scales compute time spent inside an enclave
	// relative to the same work outside. Memory accesses that miss the
	// cache go through the Memory Encryption Engine, so enclave code runs
	// slower; 1.0 (the default) models cache-resident code, data-heavy
	// workloads use 1.2–3×. Zero means 1.0.
	EnclaveComputeFactor float64
}

// Transition cost split: EENTER is slightly more expensive than EEXIT
// because it performs the TCS checks and mode switch.
const (
	eenterShare = 0.55
	eexitShare  = 0.45
)

// DefaultCostModel returns the cost model calibrated to the paper's machine
// (Xeon E3-1230 v5 @ 3.40GHz) at the given mitigation level.
func DefaultCostModel(m MitigationLevel) CostModel {
	f := vtime.DefaultFrequency
	rt := f.Cycles(m.RoundTripDuration())
	enter := vtime.Cycles(float64(rt) * eenterShare)
	exit := rt - enter
	return CostModel{
		Frequency:    f,
		EEnter:       enter,
		EExit:        exit,
		EResume:      enter,
		AEXSave:      exit,
		IRQHandler:   f.Cycles(1500 * time.Nanosecond),
		TimerQuantum: f.Cycles(4 * time.Millisecond),
		PageFault:    f.Cycles(2 * time.Microsecond),
		PageCrypto:   f.Cycles(3 * time.Microsecond),
		PageDriver:   f.Cycles(5 * time.Microsecond),
		PageTouch:    f.Cycles(50 * time.Nanosecond),
		EAdd:         f.Cycles(600 * time.Nanosecond),

		EnclaveComputeFactor: 1.0,
	}
}

// RoundTrip returns the EENTER+EEXIT cost in cycles.
func (c CostModel) RoundTrip() vtime.Cycles { return c.EEnter + c.EExit }

// AEXRoundTrip returns the full cost of one asynchronous exit and resume:
// context save, interrupt handler, and ERESUME.
func (c CostModel) AEXRoundTrip() vtime.Cycles {
	return c.AEXSave + c.IRQHandler + c.EResume
}

// enclaveScale applies the in-enclave compute penalty to a cycle count.
func (c CostModel) enclaveScale(n vtime.Cycles) vtime.Cycles {
	if c.EnclaveComputeFactor <= 0 || c.EnclaveComputeFactor == 1.0 {
		return n
	}
	return vtime.Cycles(float64(n) * c.EnclaveComputeFactor)
}
