package sgx

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sgxperf/internal/vtime"
)

// Errors returned by context operations.
var (
	// ErrNoFreeTCS mirrors SGX_ERROR_OUT_OF_TCS: all Thread Control
	// Structures are bound to other threads.
	ErrNoFreeTCS = errors.New("sgx: no free TCS")
	// ErrNotInEnclave is returned for enclave-only operations issued
	// outside an enclave.
	ErrNotInEnclave = errors.New("sgx: not executing inside an enclave")
	// ErrEnclaveDestroyed is returned when entering a destroyed enclave.
	ErrEnclaveDestroyed = errors.New("sgx: enclave destroyed")
)

// FaultError reports an unhandled memory fault (the simulated equivalent of
// a crash-inducing SIGSEGV).
type FaultError struct {
	Addr  Vaddr
	Write bool
	Kind  PageKind
}

func (e *FaultError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("sgx: unhandled fault: %s of %#x (%s page)", op, uint64(e.Addr), e.Kind)
}

// frame is one enclave entry on a thread's call stack. Ocalls suspend the
// frame (the thread runs untrusted code); nested ecalls push a new frame.
type frame struct {
	enc         *Enclave
	tcs         int
	borrowedTCS bool
	suspended   bool
	aexCount    int

	// Touched-page tracking for the first-touch cost charge. Most calls
	// touch a handful of pages, so a linear-scanned list beats a map (no
	// hashing, no per-call make, trivially reusable); page-heavy calls
	// spill into the map.
	touchedList []*Page
	touchedMap  map[*Page]struct{}
}

// touchedListMax bounds the linear-scanned touched list before spilling
// into the map.
const touchedListMax = 32

func (f *frame) touchedBefore(p *Page) bool {
	for _, q := range f.touchedList {
		if q == p {
			return true
		}
	}
	if f.touchedMap != nil {
		_, ok := f.touchedMap[p]
		return ok
	}
	return false
}

func (f *frame) noteTouched(p *Page) {
	if len(f.touchedList) < touchedListMax {
		f.touchedList = append(f.touchedList, p)
		return
	}
	if f.touchedMap == nil {
		f.touchedMap = make(map[*Page]struct{}, 2*touchedListMax)
	}
	f.touchedMap[p] = struct{}{}
}

// reset clears the frame for reuse, keeping the touched containers'
// capacity.
func (f *frame) reset() {
	f.enc = nil
	f.tcs = 0
	f.borrowedTCS = false
	f.suspended = false
	f.aexCount = 0
	f.touchedList = f.touchedList[:0]
	if f.touchedMap != nil {
		clear(f.touchedMap)
	}
}

// Context is a simulated OS thread. It owns a virtual clock and an enclave
// frame stack. A Context must only be used from a single goroutine.
type Context struct {
	id    ThreadID
	name  string
	m     *Machine
	clock *vtime.Clock

	frames    []*frame
	nextTimer vtime.Cycles
	inAEX     bool

	// framePool recycles popped frames (and their touched maps) so the
	// per-ecall EENTER path allocates nothing in steady state. A Context is
	// single-goroutine, so the pool needs no locking.
	framePool []*frame

	// tls is per-thread storage, the pthread TLS equivalent runtimes use
	// for per-thread bookkeeping without shared-map lookups. Indexed by
	// TLSKey; single-goroutine like the rest of the Context.
	tls []any
}

// TLSKey indexes one per-thread storage slot across all Contexts.
type TLSKey int

var nextTLSKey atomic.Int32

// NewTLSKey allocates a process-wide TLS slot. Subsystems allocate their
// key once (at init or construction) and then get O(1) per-thread state
// on any Context without locks or map hashing.
func NewTLSKey() TLSKey { return TLSKey(nextTLSKey.Add(1) - 1) }

// TLSGet returns the thread's value for the slot, or nil.
func (c *Context) TLSGet(k TLSKey) any {
	if int(k) < len(c.tls) {
		return c.tls[k]
	}
	return nil
}

// TLSSet stores the thread's value for the slot.
func (c *Context) TLSSet(k TLSKey, v any) {
	for int(k) >= len(c.tls) {
		c.tls = append(c.tls, nil)
	}
	c.tls[k] = v
}

// ID returns the thread identifier.
func (c *Context) ID() ThreadID { return c.id }

// Name returns the thread's label.
func (c *Context) Name() string { return c.name }

// Clock returns the thread's virtual clock.
func (c *Context) Clock() *vtime.Clock { return c.clock }

// Now returns the thread's current virtual time.
func (c *Context) Now() vtime.Cycles { return c.clock.Now() }

// Machine returns the machine this thread runs on.
func (c *Context) Machine() *Machine { return c.m }

// InEnclave reports whether the thread is currently executing enclave code.
func (c *Context) InEnclave() bool {
	f := c.top()
	return f != nil && !f.suspended
}

// CurrentEnclave returns the enclave of the innermost frame (suspended or
// not), or nil.
func (c *Context) CurrentEnclave() *Enclave {
	if f := c.top(); f != nil {
		return f.enc
	}
	return nil
}

// EnclaveDepth returns the number of enclave frames on the thread's stack.
func (c *Context) EnclaveDepth() int { return len(c.frames) }

// CurrentCallAEXCount returns the number of AEXs suffered by the innermost
// frame so far.
func (c *Context) CurrentCallAEXCount() int {
	if f := c.top(); f != nil {
		return f.aexCount
	}
	return 0
}

func (c *Context) top() *frame {
	if len(c.frames) == 0 {
		return nil
	}
	return c.frames[len(c.frames)-1]
}

// advance moves the clock without timer-interrupt modelling (used for the
// machine's own micro-costs).
func (c *Context) advance(n vtime.Cycles) { c.clock.Advance(n) }

func (c *Context) chargeERESUME() { c.advance(c.m.cost.EResume) }

// Compute advances the thread's clock by d of simulated work, delivering
// timer-interrupt AEXs at quantum boundaries while inside an enclave.
func (c *Context) Compute(d time.Duration) {
	c.ComputeCycles(c.m.cost.Frequency.Cycles(d))
}

// ComputeCycles is Compute in cycle units. Work performed inside an
// enclave is scaled by the cost model's EnclaveComputeFactor (MEE-induced
// slowdown) and delivers timer AEXs at quantum boundaries.
func (c *Context) ComputeCycles(n vtime.Cycles) {
	if c.InEnclave() && !c.inAEX {
		n = c.m.cost.enclaveScale(n)
	}
	for n > 0 {
		if !c.InEnclave() || c.inAEX {
			c.clock.Advance(n)
			c.catchUpTimer()
			return
		}
		if c.nextTimer <= c.clock.Now() {
			// The clock jumped past pending ticks — typically a
			// cross-thread merge while the thread was parked (a
			// switchless worker waiting on its queue). Those ticks
			// interrupted idle time, not this computation: realign the
			// timer without charging AEXs for them.
			c.catchUpTimer()
		}
		until := c.nextTimer - c.clock.Now()
		if until > n {
			c.clock.Advance(n)
			return
		}
		c.clock.Advance(until)
		n -= until
		_ = c.deliverAEX(AEXTimer, nil)
	}
}

// catchUpTimer skips missed ticks while outside enclaves (interrupts are
// handled by the OS without enclave involvement, so they cost nothing in
// this model).
func (c *Context) catchUpTimer() {
	q := c.m.cost.TimerQuantum
	for c.nextTimer <= c.clock.Now() {
		c.nextTimer += q
	}
}

// deliverAEX runs the full asynchronous-exit sequence: save state, run the
// untrusted handler (for timers: the IRQ handler; for faults the caller
// performs resolution before calling the AEP), then jump to the AEP, which
// by default executes ERESUME.
func (c *Context) deliverAEX(cause AEXCause, handler func() error) error {
	f := c.top()
	cost := c.m.cost
	c.inAEX = true
	defer func() { c.inAEX = false }()

	c.advance(cost.AEXSave)
	f.aexCount++
	if cause == AEXTimer {
		c.nextTimer += cost.TimerQuantum
		c.advance(cost.IRQHandler)
	}
	if handler != nil {
		if err := handler(); err != nil {
			return err
		}
	}
	info := AEXInfo{
		Enclave: f.enc.ID,
		Thread:  c.id,
		Time:    c.clock.Now(),
	}
	if f.enc.Config.Debug && f.enc.Config.SGXv2 {
		info.Cause = cause
	}
	c.m.currentAEP()(c, info)
	return nil
}

// EEnter enters the enclave: binds a TCS, charges the transition, and
// pushes a frame. Nested entries during an ocall reuse the suspended
// frame's TCS, matching SDK semantics.
func (c *Context) EEnter(enc *Enclave) error {
	if enc.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	tcs := -1
	borrowed := false
	for i := len(c.frames) - 1; i >= 0; i-- {
		if c.frames[i].enc == enc && c.frames[i].suspended {
			tcs = c.frames[i].tcs
			borrowed = true
			break
		}
	}
	if tcs < 0 {
		slot, ok := enc.acquireTCS()
		if !ok {
			return ErrNoFreeTCS
		}
		tcs = slot
	}
	c.advance(c.m.cost.EEnter)
	f := c.newFrame()
	f.enc = enc
	f.tcs = tcs
	f.borrowedTCS = borrowed
	c.frames = append(c.frames, f)
	if err := c.touchPage(enc.tcsPages[tcs], true); err != nil {
		c.popFrame()
		return err
	}
	return nil
}

// EExit leaves the enclave, popping the innermost frame.
func (c *Context) EExit() error {
	f := c.top()
	if f == nil || f.suspended {
		return ErrNotInEnclave
	}
	c.advance(c.m.cost.EExit)
	c.popFrame()
	return nil
}

// newFrame takes a recycled frame from the pool, or allocates one.
func (c *Context) newFrame() *frame {
	if n := len(c.framePool); n > 0 {
		f := c.framePool[n-1]
		c.framePool = c.framePool[:n-1]
		return f
	}
	return &frame{}
}

func (c *Context) popFrame() {
	f := c.frames[len(c.frames)-1]
	c.frames = c.frames[:len(c.frames)-1]
	if !f.borrowedTCS {
		f.enc.releaseTCS(f.tcs)
	}
	f.reset()
	c.framePool = append(c.framePool, f)
}

// OcallExit suspends the innermost frame for an ocall: the thread leaves
// the enclave (EEXIT) but keeps its TCS bound.
func (c *Context) OcallExit() error {
	f := c.top()
	if f == nil || f.suspended {
		return ErrNotInEnclave
	}
	c.advance(c.m.cost.EExit)
	f.suspended = true
	return nil
}

// OcallReturn re-enters the enclave after an ocall completes.
func (c *Context) OcallReturn() error {
	f := c.top()
	if f == nil || !f.suspended {
		return fmt.Errorf("sgx: no suspended ocall frame")
	}
	c.advance(c.m.cost.EEnter)
	f.suspended = false
	return nil
}

// maxFaultRetries bounds fault-retry loops against buggy handlers.
const maxFaultRetries = 8

// touchPage performs one page access with full fault modelling: MMU
// permission check first (signal path), then EPC residency (driver paging
// path), then the access itself.
func (c *Context) touchPage(p *Page, write bool) error {
	f := c.top()
	if f == nil {
		return ErrNotInEnclave
	}
	need := PermRead
	if write {
		need |= PermWrite
	}
	cost := c.m.cost
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		if !p.MMUPerm().Has(need) {
			err := c.deliverAEX(AEXAccessFault, func() error {
				c.advance(cost.PageFault)
				h := c.m.segvHandler()
				if h == nil || !h(c, f.enc, p, write) {
					return &FaultError{Addr: p.Vaddr, Write: write, Kind: p.Kind}
				}
				return nil
			})
			if err != nil {
				return err
			}
			continue
		}
		if !p.Resident() {
			err := c.deliverAEX(AEXPageFault, func() error {
				c.advance(cost.PageFault)
				r := c.m.faultResolver()
				if r == nil {
					return errNoResolver
				}
				return r.ResolveEPCFault(c, f.enc, p, write)
			})
			if err != nil {
				return err
			}
			continue
		}
		if !f.touchedBefore(p) {
			f.noteTouched(p)
			c.advance(cost.PageTouch)
		}
		c.m.epc.Touch(p)
		return nil
	}
	return fmt.Errorf("sgx: access to %#x not resolved after %d faults", uint64(p.Vaddr), maxFaultRetries)
}

// TouchRange accesses every page overlapping [v, v+n), faulting pages in
// as needed. It is the memory-access primitive trusted code uses.
func (c *Context) TouchRange(v Vaddr, n int, write bool) error {
	f := c.top()
	if f == nil || f.suspended {
		return ErrNotInEnclave
	}
	if n <= 0 {
		return nil
	}
	enc := f.enc
	first := v &^ (PageSize - 1)
	for a := first; a < v+Vaddr(n); a += PageSize {
		p := enc.PageAt(a)
		if p == nil {
			return &FaultError{Addr: a, Write: write}
		}
		if err := c.touchPage(p, write); err != nil {
			return err
		}
	}
	return nil
}

// WriteBytes copies b into enclave memory at v, touching pages on the way.
func (c *Context) WriteBytes(v Vaddr, b []byte) error {
	if err := c.TouchRange(v, len(b), true); err != nil {
		return err
	}
	enc := c.top().enc
	for off := 0; off < len(b); {
		p := enc.PageAt(v + Vaddr(off))
		po := int(v+Vaddr(off)) & (PageSize - 1)
		off += p.CopyIn(po, b[off:])
	}
	return nil
}

// ReadBytes copies enclave memory at v into b.
func (c *Context) ReadBytes(v Vaddr, b []byte) error {
	if err := c.TouchRange(v, len(b), false); err != nil {
		return err
	}
	enc := c.top().enc
	for off := 0; off < len(b); {
		p := enc.PageAt(v + Vaddr(off))
		po := int(v+Vaddr(off)) & (PageSize - 1)
		off += p.CopyOut(po, b[off:])
	}
	return nil
}

// HeapAlloc allocates n bytes on the innermost enclave's heap. SGXv2
// enclaves grow on demand from their reserve region; SGXv1 enclaves fail
// with ErrOutOfEnclaveMemory when exhausted (§2.3.3).
func (c *Context) HeapAlloc(n int) (Vaddr, error) {
	f := c.top()
	if f == nil || f.suspended {
		return 0, ErrNotInEnclave
	}
	return f.enc.heapAlloc(n, f.enc.commitReserve)
}

// HeapReset frees all heap allocations of the innermost enclave.
func (c *Context) HeapReset() error {
	f := c.top()
	if f == nil {
		return ErrNotInEnclave
	}
	f.enc.heapReset()
	return nil
}
