package sgx

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Remote attestation (§2.1 background: "authenticity and integrity of the
// enclave is guaranteed by SGX through both local and remote attestation
// mechanisms"). The model follows EPID's shape without its cryptography:
// each machine owns an attestation key provisioned with a verification
// service, QuoteFor signs a report with it, and the service checks quotes
// from any registered machine — so a quote transfers trust across
// machines, which a local report (MAC'd with the machine-private report
// key) cannot.

// Quote is a remotely verifiable statement about an enclave.
type Quote struct {
	// PlatformID identifies the quoting machine at the service.
	PlatformID uint64
	Report     Report
	// Nonce binds the quote to a verifier challenge.
	Nonce [16]byte
	// Signature is the attestation-key MAC over the quote body.
	Signature [32]byte
}

// ErrUnknownPlatform is returned for quotes from unregistered machines.
var ErrUnknownPlatform = errors.New("sgx: unknown platform")

// ErrBadQuote is returned when a quote fails verification.
var ErrBadQuote = errors.New("sgx: quote verification failed")

// AttestationService is the verification authority (the IAS stand-in):
// it knows each registered platform's attestation key.
type AttestationService struct {
	mu     sync.Mutex
	nextID uint64
	keys   map[uint64][]byte
}

// NewAttestationService creates an empty service.
func NewAttestationService() *AttestationService {
	return &AttestationService{keys: make(map[uint64][]byte)}
}

// Register provisions a machine with an attestation key and returns its
// platform identity. In real SGX this is the EPID provisioning flow.
func (s *AttestationService) Register(m *Machine) (uint64, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return 0, fmt.Errorf("sgx: provision attestation key: %w", err)
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.keys[id] = key
	s.mu.Unlock()
	m.setAttestation(id, key)
	return id, nil
}

// Verify checks a quote against the expected nonce. On success the caller
// may trust the contained measurement.
func (s *AttestationService) Verify(q Quote, nonce [16]byte) error {
	s.mu.Lock()
	key, ok := s.keys[q.PlatformID]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownPlatform
	}
	if q.Nonce != nonce {
		return fmt.Errorf("%w: nonce mismatch", ErrBadQuote)
	}
	want := quoteMAC(key, q)
	if !hmac.Equal(want[:], q.Signature[:]) {
		return ErrBadQuote
	}
	return nil
}

func quoteMAC(key []byte, q Quote) [32]byte {
	mac := hmac.New(sha256.New, key)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], q.PlatformID)
	mac.Write(idb[:])
	binary.LittleEndian.PutUint64(idb[:], uint64(q.Report.EnclaveID))
	mac.Write(idb[:])
	mac.Write(q.Report.Measurement[:])
	mac.Write(q.Report.MAC[:])
	mac.Write(q.Nonce[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// setAttestation stores the provisioned identity (the quoting enclave's
// sealed key in real SGX).
func (m *Machine) setAttestation(id uint64, key []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.platformID = id
	m.attestKey = append([]byte(nil), key...)
}

// ErrNotProvisioned is returned by QuoteFor before Register.
var ErrNotProvisioned = errors.New("sgx: machine not provisioned for remote attestation")

// QuoteFor produces a remotely verifiable quote over the enclave: the
// quoting path first checks the local report (as the real quoting enclave
// does) and then signs it with the attestation key.
func (m *Machine) QuoteFor(e *Enclave, nonce [16]byte) (Quote, error) {
	m.mu.Lock()
	id, key := m.platformID, m.attestKey
	m.mu.Unlock()
	if key == nil {
		return Quote{}, ErrNotProvisioned
	}
	report := makeReport(e, m.mee.ReportKey())
	if !verifyReport(report, m.mee.ReportKey()) {
		return Quote{}, fmt.Errorf("sgx: local report self-check failed")
	}
	q := Quote{PlatformID: id, Report: report, Nonce: nonce}
	q.Signature = quoteMAC(key, q)
	return q, nil
}
