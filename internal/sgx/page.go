package sgx

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the architectural page size used throughout the model.
const PageSize = 4096

// PageKind describes the role of a page inside an enclave (§2.1, §2.3.3).
type PageKind int

const (
	// PageSECS is the enclave control structure holding metadata such as
	// size and measurement. Exactly one per enclave.
	PageSECS PageKind = iota + 1
	// PageTCS is a Thread Control Structure describing an entry point. The
	// number of TCS pages bounds concurrent in-enclave threads.
	PageTCS
	// PageSSA is a State Save Area page used on asynchronous exits.
	PageSSA
	// PageStack is an in-enclave stack page (per configured thread).
	PageStack
	// PageHeap is an in-enclave heap page.
	PageHeap
	// PageCode holds enclave code and static data.
	PageCode
	// PageGuard is an unmapped guard page (e.g. below each stack). Guard
	// pages are never accessed in a correct execution.
	PageGuard
	// PagePadding pads the enclave to a power-of-two size. Padding pages
	// are measured but never accessed.
	PagePadding
)

// String returns a short name for the page kind.
func (k PageKind) String() string {
	switch k {
	case PageSECS:
		return "secs"
	case PageTCS:
		return "tcs"
	case PageSSA:
		return "ssa"
	case PageStack:
		return "stack"
	case PageHeap:
		return "heap"
	case PageCode:
		return "code"
	case PageGuard:
		return "guard"
	case PagePadding:
		return "padding"
	default:
		return "unknown"
	}
}

// Perm is a page permission bit set. SGX keeps its own permissions (fixed
// at enclave build in SGXv1) while the MMU permissions can be changed at
// runtime — the working-set estimator exploits exactly this (§4.2).
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW is the common read-write permission set.
const PermRW = PermRead | PermWrite

// Has reports whether all bits in q are set in p.
func (p Perm) Has(q Perm) bool { return p&q == q }

// String renders the permission set in rwx form.
func (p Perm) String() string {
	b := []byte("---")
	if p.Has(PermRead) {
		b[0] = 'r'
	}
	if p.Has(PermWrite) {
		b[1] = 'w'
	}
	if p.Has(PermExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Vaddr is a simulated virtual address.
type Vaddr uint64

// PageIndex returns the page number of the address within an enclave whose
// base is base.
func (v Vaddr) PageIndex(base Vaddr) int {
	return int((v - base) / PageSize)
}

// Page is one enclave page. Pages are owned by their enclave; residency
// and MMU-permission state are accessed by concurrent simulated threads
// and are therefore atomic, while content transitions (seal/unseal) are
// serialised by the driver.
type Page struct {
	// Vaddr is the page's virtual address (immutable).
	Vaddr Vaddr
	// Kind is the page's role (immutable).
	Kind PageKind
	// Thread is the configured thread slot this page belongs to, or -1 for
	// enclave-global pages (immutable).
	Thread int
	// SGXPerm is the permission recorded in the EPC metadata; fixed after
	// enclave creation in SGX v1 (immutable here).
	SGXPerm Perm

	// mmuPerm is the OS page-table permission, checked before SGXPerm and
	// mutable at runtime (mprotect).
	mmuPerm atomic.Uint32
	// resident reports whether the page currently occupies an EPC slot.
	resident atomic.Bool

	// mu guards content state below.
	mu sync.Mutex
	// data holds the plaintext page content while resident. Allocated
	// lazily on first write.
	data []byte
	// sealed holds the MEE-encrypted image while swapped out.
	sealed []byte
	// version counts evictions, feeding the MEE nonce (anti-replay).
	version uint64

	// lastUse is a logical-time stamp for LRU eviction, updated atomically
	// by the EPC's lock-free Touch path.
	lastUse atomic.Uint64
}

// MMUPerm returns the current OS page-table permission.
func (p *Page) MMUPerm() Perm { return Perm(p.mmuPerm.Load()) }

// setMMUPerm changes the OS page-table permission (mprotect equivalent).
func (p *Page) setMMUPerm(perm Perm) { p.mmuPerm.Store(uint32(perm)) }

// Resident reports whether the page is in the EPC.
func (p *Page) Resident() bool { return p.resident.Load() }

// Data returns the page's plaintext content, allocating it on first use.
// Only meaningful while the page is resident.
func (p *Page) Data() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.data == nil {
		p.data = make([]byte, PageSize)
	}
	return p.data
}

// CopyIn writes b into the page at byte offset off, returning the number
// of bytes copied (bounded by the page end).
func (p *Page) CopyIn(off int, b []byte) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.data == nil {
		p.data = make([]byte, PageSize)
	}
	return copy(p.data[off:], b)
}

// CopyOut reads from the page at byte offset off into b, returning the
// number of bytes copied.
func (p *Page) CopyOut(off int, b []byte) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.data == nil {
		p.data = make([]byte, PageSize)
	}
	return copy(b, p.data[off:])
}

// Version returns the page's eviction counter, which feeds the MEE nonce.
func (p *Page) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

// SealFor encrypts the page's current content with the MEE for eviction,
// bumping the version so stale images cannot be replayed.
func (p *Page) SealFor(mee *MEE) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.version++
	if p.data == nil {
		// Never-written page: an all-zero image.
		p.data = make([]byte, PageSize)
	}
	p.sealed = mee.Seal(p.Vaddr, p.version, p.data)
}

// Unseal decrypts the page's sealed image (if any) back into its plaintext
// buffer, verifying integrity. restored reports whether an image existed;
// it is false for never-evicted pages.
func (p *Page) Unseal(mee *MEE) (restored bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sealed == nil {
		return false, nil
	}
	pt, err := mee.Open(p.Vaddr, p.version, p.sealed)
	if err != nil {
		return false, err
	}
	if p.data == nil {
		p.data = make([]byte, PageSize)
	}
	copy(p.data, pt)
	p.sealed = nil
	return true, nil
}

func (p *Page) String() string {
	return fmt.Sprintf("page{%#x %s %s}", uint64(p.Vaddr), p.Kind, p.MMUPerm())
}
