package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// MEE models the Memory Encryption Engine [Gueron 2016]: all enclave memory
// leaving the EPC is encrypted and integrity-protected, and verified when
// reloaded. We use AES-128-GCM with a per-page, per-version nonce, which
// gives the same confidentiality/integrity/anti-replay properties the MEE
// provides in hardware.
type MEE struct {
	aead cipher.AEAD
	key  []byte
}

// NewMEE creates a memory encryption engine from a 16-byte platform key.
func NewMEE(key []byte) (*MEE, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("mee: key must be 16 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("mee: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("mee: %w", err)
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &MEE{aead: aead, key: k}, nil
}

// nonce derives the GCM nonce from the page address and version, so that a
// replayed old image fails authentication.
func (m *MEE) nonce(vaddr Vaddr, version uint64) []byte {
	n := make([]byte, m.aead.NonceSize())
	binary.LittleEndian.PutUint64(n[0:8], uint64(vaddr))
	binary.LittleEndian.PutUint32(n[8:12], uint32(version))
	return n
}

// Seal encrypts a page image for eviction to untrusted memory (EWB).
func (m *MEE) Seal(vaddr Vaddr, version uint64, plaintext []byte) []byte {
	return m.aead.Seal(nil, m.nonce(vaddr, version), plaintext, nil)
}

// Open decrypts and verifies a sealed page image on reload (ELDU). It
// returns an error if the image was tampered with or replayed.
func (m *MEE) Open(vaddr Vaddr, version uint64, sealed []byte) ([]byte, error) {
	pt, err := m.aead.Open(nil, m.nonce(vaddr, version), sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("mee: page %#x integrity check: %w", uint64(vaddr), err)
	}
	return pt, nil
}

// ReportKey derives the platform key used for local-attestation reports.
func (m *MEE) ReportKey() []byte {
	h := hmac.New(sha256.New, m.key)
	h.Write([]byte("sgx-report-key"))
	return h.Sum(nil)
}
