package sgx

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestEPCInvariantsUnderRandomOps drives the EPC with random
// insert/remove/touch/victim sequences and checks its invariants after
// every step: residency never exceeds capacity, Free+Resident equals
// Capacity, and every page's Resident flag agrees with the set.
func TestEPCInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + int(capRaw)%16
		epc := NewEPC(capacity)
		pages := make([]*Page, 32)
		for i := range pages {
			pages[i] = &Page{Vaddr: Vaddr(0x1000 * (i + 1)), Kind: PageHeap}
		}
		inSet := make(map[*Page]bool)
		for step := 0; step < 200; step++ {
			p := pages[rng.Intn(len(pages))]
			switch rng.Intn(4) {
			case 0:
				err := epc.Insert(p)
				if err == nil {
					inSet[p] = true
				} else if err != ErrEPCFull || inSet[p] {
					// Insert may only fail with ErrEPCFull, and only for
					// pages not already resident.
					return false
				}
			case 1:
				epc.Remove(p)
				delete(inSet, p)
			case 2:
				if inSet[p] {
					epc.Touch(p)
				}
			case 3:
				victim := epc.Victim(nil)
				if victim != nil && !inSet[victim] {
					return false
				}
			}
			if epc.Resident() != len(inSet) {
				return false
			}
			if epc.Resident() > capacity {
				return false
			}
			if epc.Free()+epc.Resident() != capacity {
				return false
			}
			for q, want := range map[*Page]bool{p: inSet[p]} {
				if q.Resident() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVictimIsAlwaysLeastRecentlyUsed checks the LRU property against a
// reference model under random access patterns.
func TestVictimIsAlwaysLeastRecentlyUsed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		epc := NewEPC(8)
		var order []*Page // reference LRU order, least-recent first
		pages := make([]*Page, 8)
		for i := range pages {
			pages[i] = &Page{Vaddr: Vaddr(0x1000 * (i + 1))}
			if err := epc.Insert(pages[i]); err != nil {
				return false
			}
			order = append(order, pages[i])
		}
		moveBack := func(p *Page) {
			for i, q := range order {
				if q == p {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, p)
		}
		for step := 0; step < 100; step++ {
			p := pages[rng.Intn(len(pages))]
			epc.Touch(p)
			moveBack(p)
			if v := epc.Victim(nil); v != order[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestClockNeverRegressesAcrossMachineOps runs a thread through random
// enclave operations and verifies virtual time is monotonic throughout.
func TestClockNeverRegressesAcrossMachineOps(t *testing.T) {
	m, _ := newTestMachine(t)
	e := m.NewEnclaveLayout(Config{HeapBytes: 8 * PageSize, NumTCS: 2})
	loadAll(t, m, e)
	ctx := m.NewContext("t")
	rng := rand.New(rand.NewSource(42))

	last := ctx.Now()
	check := func() {
		t.Helper()
		if ctx.Now() < last {
			t.Fatalf("clock regressed: %d < %d", ctx.Now(), last)
		}
		last = ctx.Now()
	}
	var heap Vaddr
	for step := 0; step < 500; step++ {
		switch rng.Intn(5) {
		case 0:
			if !ctx.InEnclave() && ctx.EnclaveDepth() == 0 {
				if err := ctx.EEnter(e); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if ctx.InEnclave() {
				if err := ctx.EExit(); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			ctx.Compute(time.Duration(rng.Intn(2000)) * time.Microsecond)
		case 3:
			if ctx.InEnclave() {
				if heap == 0 {
					v, err := ctx.HeapAlloc(4 * PageSize)
					if err != nil {
						t.Fatal(err)
					}
					heap = v
				}
				if err := ctx.TouchRange(heap, 4*PageSize, true); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if ctx.InEnclave() {
				if err := ctx.OcallExit(); err != nil {
					t.Fatal(err)
				}
				ctx.Compute(time.Duration(rng.Intn(50)) * time.Microsecond)
				check()
				if err := ctx.OcallReturn(); err != nil {
					t.Fatal(err)
				}
			}
		}
		check()
	}
}
