package host_test

import (
	"sync"
	"testing"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/sgx"
)

func TestNewWiresEverything(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	if h.Machine == nil || h.Kernel == nil || h.Proc == nil || h.URTS == nil {
		t.Fatal("host components missing")
	}
	// The process image has the URTS and libc loaded with their symbols.
	for _, sym := range []string{
		loader.SymSGXEcall, loader.SymPthreadCreate, loader.SymSignal, loader.SymSigaction,
	} {
		if _, ok := h.Proc.Dlsym(sym); !ok {
			t.Errorf("symbol %q unresolved", sym)
		}
	}
	// Default EPC is the architectural size.
	if h.Machine.EPC().Capacity() != sgx.EPCUsablePages {
		t.Errorf("EPC capacity = %d", h.Machine.EPC().Capacity())
	}
}

func TestHostOptions(t *testing.T) {
	h, err := host.New(
		host.WithMitigation(sgx.MitigationSpectre),
		host.WithEPCCapacity(128),
		host.WithEnclaveComputeFactor(2.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	rt := h.Machine.Cost().Frequency.Duration(h.Machine.Cost().RoundTrip())
	if rt < 3800*time.Nanosecond || rt > 3900*time.Nanosecond {
		t.Errorf("round trip %v, want ≈3850ns (spectre)", rt)
	}
	if h.Machine.EPC().Capacity() != 128 {
		t.Errorf("EPC capacity = %d", h.Machine.EPC().Capacity())
	}
	if f := h.Machine.Cost().EnclaveComputeFactor; f != 2.0 {
		t.Errorf("compute factor = %v", f)
	}
}

func TestSpawnRoutesThroughPthreadCreate(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	// Shadow pthread_create the way the logger does and verify Spawn goes
	// through the shadow.
	var mu sync.Mutex
	var seen []string
	next, err := loader.Lookup[host.PthreadCreateFn](h.Proc, loader.SymPthreadCreate)
	if err != nil {
		t.Fatal(err)
	}
	shadow := loader.NewLibrary("libshadow").Define(loader.SymPthreadCreate,
		host.PthreadCreateFn(func(name string, fn func(ctx *sgx.Context)) {
			mu.Lock()
			seen = append(seen, name)
			mu.Unlock()
			next(name, fn)
		}))
	h.Proc.Preload(shadow)

	ran := false
	if err := h.Spawn("worker", func(ctx *sgx.Context) { ran = true }); err != nil {
		t.Fatal(err)
	}
	h.Wait()
	if !ran {
		t.Fatal("spawned function did not run")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "worker" {
		t.Fatalf("shadow saw %v", seen)
	}
}

func TestSigactionRoutesThroughSymbol(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	called := false
	old, err := h.Sigaction(kernel.SIGUSR1, func(ctx *sgx.Context, sig kernel.Signal, info *kernel.SigInfo) bool {
		called = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if old != nil {
		t.Fatal("fresh signal table returned a previous handler")
	}
	if !h.Kernel.Signals.Deliver(nil, kernel.SIGUSR1, nil) {
		t.Fatal("delivery failed")
	}
	if !called {
		t.Fatal("handler not invoked")
	}
}
