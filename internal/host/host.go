// Package host composes a complete simulated application environment: an
// SGX machine, the kernel (driver, signals, kprobes, filesystem), a
// process image with its loaded libraries, and the SDK's untrusted
// runtime. Workloads run against a Host; tools such as the sgx-perf
// logger attach to one by preloading a shadowing library (§4).
package host

import (
	"fmt"

	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// PthreadCreateFn is the signature of the pthread_create symbol: it starts
// fn on a new simulated thread. The logger shadows it to track threads.
type PthreadCreateFn func(name string, fn func(ctx *sgx.Context))

// SigactionFn is the signature of the sigaction symbol.
type SigactionFn func(sig kernel.Signal, h kernel.SigHandler) kernel.SigHandler

// Host is one simulated application process on one SGX machine.
type Host struct {
	Machine *sgx.Machine
	Kernel  *kernel.Kernel
	Proc    *loader.Process
	URTS    *sdk.URTS
}

// Option configures host construction.
type Option func(*config)

type config struct {
	machineOpts   []sgx.Option
	mitigation    sgx.MitigationLevel
	computeFactor float64
}

// WithMitigation selects the machine's mitigation level (§2.3.1).
func WithMitigation(level sgx.MitigationLevel) Option {
	return func(c *config) { c.mitigation = level }
}

// WithEPCCapacity overrides the EPC size in pages.
func WithEPCCapacity(pages int) Option {
	return func(c *config) {
		c.machineOpts = append(c.machineOpts, sgx.WithEPCCapacity(pages))
	}
}

// WithEnclaveComputeFactor sets the in-enclave compute slowdown (MEE
// effect) while keeping the selected mitigation's transition costs. Apply
// after WithMitigation.
func WithEnclaveComputeFactor(factor float64) Option {
	return func(c *config) { c.computeFactor = factor }
}

// WithMachineOptions passes raw machine options through.
func WithMachineOptions(opts ...sgx.Option) Option {
	return func(c *config) { c.machineOpts = append(c.machineOpts, opts...) }
}

// New builds a host: machine, kernel, URTS, and a process image loading
// libsgx_urts and libc in default order.
func New(opts ...Option) (*Host, error) {
	cfg := config{mitigation: sgx.MitigationNone}
	for _, o := range opts {
		o(&cfg)
	}
	cost := sgx.DefaultCostModel(cfg.mitigation)
	if cfg.computeFactor > 0 {
		cost.EnclaveComputeFactor = cfg.computeFactor
	}
	machineOpts := append([]sgx.Option{sgx.WithCostModel(cost)}, cfg.machineOpts...)
	m, err := sgx.NewMachine(machineOpts...)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	k := kernel.New(m)
	u := sdk.NewURTS(m, k.Driver)

	h := &Host{Machine: m, Kernel: k, URTS: u}

	libc := loader.NewLibrary("libc").
		Define(loader.SymPthreadCreate, PthreadCreateFn(k.Spawn)).
		Define(loader.SymSigaction, SigactionFn(k.Signals.Sigaction)).
		Define(loader.SymSignal, SigactionFn(k.Signals.Sigaction))
	h.Proc = loader.NewProcess(u.Library(), libc)
	return h, nil
}

// NewContext creates the process's main thread (or another raw context).
func (h *Host) NewContext(name string) *sgx.Context {
	return h.Machine.NewContext(name)
}

// Spawn starts a thread through the pthread_create symbol, so preloaded
// tools observe thread creation. Use Wait to join.
func (h *Host) Spawn(name string, fn func(ctx *sgx.Context)) error {
	create, err := loader.Lookup[PthreadCreateFn](h.Proc, loader.SymPthreadCreate)
	if err != nil {
		return fmt.Errorf("host: %w", err)
	}
	create(name, fn)
	return nil
}

// Wait joins all threads started with Spawn.
func (h *Host) Wait() { h.Kernel.Wait() }

// Sigaction installs a signal handler through the sigaction symbol, so a
// preloaded tool's shadow can chain (§4).
func (h *Host) Sigaction(sig kernel.Signal, handler kernel.SigHandler) (kernel.SigHandler, error) {
	sa, err := loader.Lookup[SigactionFn](h.Proc, loader.SymSigaction)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	return sa(sig, handler), nil
}
