// Package loader models the dynamic linker behaviour sgx-perf relies on:
// the event logger is a shared library injected with LD_PRELOAD so that its
// symbols (sgx_ecall, pthread_create, signal, sigaction) shadow those of
// the URTS and libc without recompiling the application (§4). Shadowing
// libraries resolve the original implementation with RTLD_NEXT semantics
// and chain to it.
//
// Symbols are Go function values stored under their C-style names; the
// typed Lookup helper recovers them.
package loader

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Well-known symbol names used across the repository.
const (
	// SymSGXEcall is the URTS entry point every generated ecall wrapper
	// calls; shadowing it is how the logger traces ecalls (Fig. 2).
	SymSGXEcall = "sgx_ecall"
	// SymPthreadCreate is shadowed to track application threads.
	SymPthreadCreate = "pthread_create"
	// SymSignal and SymSigaction are shadowed so the logger can observe
	// signals before other handlers (§4).
	SymSignal    = "signal"
	SymSigaction = "sigaction"
)

// Library is a shared object: a named bag of symbols. Symbol tables are
// copy-on-write: ecall proxies resolve sgx_ecall through the loader on
// every call (so preloads take effect without recompiling), which makes
// lookup a hot path that must not contend on a lock.
type Library struct {
	name string

	mu      sync.Mutex // serialises writers
	symbols atomic.Pointer[map[string]any]
}

// NewLibrary creates an empty library.
func NewLibrary(name string) *Library {
	l := &Library{name: name}
	m := make(map[string]any)
	l.symbols.Store(&m)
	return l
}

// Name returns the library's name.
func (l *Library) Name() string { return l.name }

// Define exports a symbol (typically a function value) under name. It
// copies the symbol table, so concurrent lookups never see a partial map.
func (l *Library) Define(name string, value any) *Library {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := *l.symbols.Load()
	next := make(map[string]any, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = value
	l.symbols.Store(&next)
	return l
}

// Symbol returns the library's own definition of name. Lock-free.
func (l *Library) Symbol(name string) (any, bool) {
	v, ok := (*l.symbols.Load())[name]
	return v, ok
}

// Process is a process image: an ordered list of loaded libraries. Symbol
// resolution walks the list front to back, so preloaded libraries shadow
// later ones — exactly LD_PRELOAD. The list is copy-on-write so Dlsym —
// run by every ecall proxy — is lock-free.
type Process struct {
	mu   sync.Mutex // serialises Load/Preload
	libs atomic.Pointer[[]*Library]
}

// NewProcess creates a process with the given libraries in load order.
func NewProcess(libs ...*Library) *Process {
	p := &Process{}
	l := append([]*Library(nil), libs...)
	p.libs.Store(&l)
	return p
}

// Load appends a library (normal linking order).
func (p *Process) Load(lib *Library) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.libs.Load()
	next := make([]*Library, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, lib)
	p.libs.Store(&next)
}

// Preload prepends a library so its symbols shadow everything loaded later
// (the LD_PRELOAD environment variable, §4).
func (p *Process) Preload(lib *Library) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.libs.Load()
	next := make([]*Library, 0, len(old)+1)
	next = append(next, lib)
	next = append(next, old...)
	p.libs.Store(&next)
}

// Libraries returns the current load order.
func (p *Process) Libraries() []*Library {
	libs := *p.libs.Load()
	out := make([]*Library, len(libs))
	copy(out, libs)
	return out
}

// Dlsym resolves a symbol in load order (RTLD_DEFAULT). Lock-free.
func (p *Process) Dlsym(name string) (any, bool) {
	for _, l := range *p.libs.Load() {
		if v, ok := l.Symbol(name); ok {
			return v, true
		}
	}
	return nil, false
}

// DlsymNext resolves a symbol starting after the given library
// (RTLD_NEXT): a shadowing library uses this to find the implementation it
// shadows.
func (p *Process) DlsymNext(after *Library, name string) (any, bool) {
	seen := false
	for _, l := range *p.libs.Load() {
		if l == after {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if v, ok := l.Symbol(name); ok {
			return v, true
		}
	}
	return nil, false
}

// Lookup resolves name and asserts it to T.
func Lookup[T any](p *Process, name string) (T, error) {
	var zero T
	v, ok := p.Dlsym(name)
	if !ok {
		return zero, fmt.Errorf("loader: undefined symbol %q", name)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("loader: symbol %q has type %T, not %T", name, v, zero)
	}
	return t, nil
}

// LookupNext resolves name with RTLD_NEXT semantics and asserts it to T.
func LookupNext[T any](p *Process, after *Library, name string) (T, error) {
	var zero T
	v, ok := p.DlsymNext(after, name)
	if !ok {
		return zero, fmt.Errorf("loader: undefined next symbol %q after %q", name, after.Name())
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("loader: symbol %q has type %T, not %T", name, v, zero)
	}
	return t, nil
}
