package loader

import (
	"strings"
	"testing"
)

func TestDlsymLoadOrder(t *testing.T) {
	libc := NewLibrary("libc").Define("write", "libc-write")
	urts := NewLibrary("liburts").Define(SymSGXEcall, "urts-ecall")
	p := NewProcess(urts, libc)

	if v, ok := p.Dlsym(SymSGXEcall); !ok || v != "urts-ecall" {
		t.Fatalf("Dlsym(sgx_ecall) = %v, %v", v, ok)
	}
	if _, ok := p.Dlsym("missing"); ok {
		t.Fatal("resolved a missing symbol")
	}
}

func TestPreloadShadows(t *testing.T) {
	urts := NewLibrary("liburts").Define(SymSGXEcall, "urts-ecall")
	p := NewProcess(urts)
	logger := NewLibrary("liblogger").Define(SymSGXEcall, "logger-ecall")
	p.Preload(logger)

	if v, _ := p.Dlsym(SymSGXEcall); v != "logger-ecall" {
		t.Fatalf("preload did not shadow: got %v", v)
	}
	// RTLD_NEXT from the preloaded library finds the original.
	if v, ok := p.DlsymNext(logger, SymSGXEcall); !ok || v != "urts-ecall" {
		t.Fatalf("DlsymNext = %v, %v", v, ok)
	}
	// RTLD_NEXT past the last definition fails.
	if _, ok := p.DlsymNext(urts, SymSGXEcall); ok {
		t.Fatal("DlsymNext past the end resolved")
	}
}

func TestDlsymNextSkipsEarlierLibraries(t *testing.T) {
	a := NewLibrary("a").Define("f", "a-f")
	b := NewLibrary("b").Define("f", "b-f")
	c := NewLibrary("c").Define("f", "c-f")
	p := NewProcess(a, b, c)
	if v, _ := p.DlsymNext(b, "f"); v != "c-f" {
		t.Fatalf("DlsymNext(b) = %v, want c-f", v)
	}
}

func TestTypedLookup(t *testing.T) {
	lib := NewLibrary("l").Define("add", func(a, b int) int { return a + b })
	p := NewProcess(lib)

	add, err := Lookup[func(int, int) int](p, "add")
	if err != nil {
		t.Fatal(err)
	}
	if add(2, 3) != 5 {
		t.Fatal("resolved function misbehaves")
	}
	if _, err := Lookup[func()](p, "add"); err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("wrong-type lookup: %v", err)
	}
	if _, err := Lookup[func()](p, "nope"); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("missing lookup: %v", err)
	}
}

func TestLookupNextTyped(t *testing.T) {
	orig := func() string { return "orig" }
	base := NewLibrary("base").Define("f", orig)
	shadow := NewLibrary("shadow").Define("f", func() string { return "shadow" })
	p := NewProcess(base)
	p.Preload(shadow)

	f, err := LookupNext[func() string](p, shadow, "f")
	if err != nil {
		t.Fatal(err)
	}
	if f() != "orig" {
		t.Fatal("LookupNext resolved the shadow, not the original")
	}
	if _, err := LookupNext[func() string](p, base, "f"); err == nil {
		t.Fatal("LookupNext past end succeeded")
	}
}

func TestLibrariesSnapshot(t *testing.T) {
	a, b := NewLibrary("a"), NewLibrary("b")
	p := NewProcess(a)
	libs := p.Libraries()
	p.Load(b)
	if len(libs) != 1 {
		t.Fatal("snapshot mutated by later Load")
	}
	if got := p.Libraries(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("load order wrong: %v", got)
	}
}
