package sdk_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// slFixture builds an enclave suited for switchless testing: plenty of
// TCSs and a mix of public/private ecalls.
type slFixture struct {
	h       *host.Host
	ctx     *sgx.Context
	app     *sdk.AppEnclave
	otab    *sdk.OcallTable
	proxies map[string]sdk.Proxy
}

func newSLFixture(t *testing.T) *slFixture {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_double", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_short_work", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_private", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_with_ocall", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("ocall_ping", []string{"ecall_private"}); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_double": func(env *sdk.Env, args any) (any, error) {
			n, _ := args.(int)
			return 2 * n, nil
		},
		"ecall_short_work": func(env *sdk.Env, args any) (any, error) {
			env.Compute(time.Microsecond)
			return nil, nil
		},
		"ecall_private": func(env *sdk.Env, args any) (any, error) { return nil, nil },
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_ping", nil)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "sl", NumTCS: 8}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_ping": func(ctx *sgx.Context, args any) (any, error) { return "pong", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &slFixture{
		h: h, ctx: ctx, app: app, otab: otab,
		proxies: sdk.Proxies(app, h.Proc, otab),
	}
}

func callID(t *testing.T, f *slFixture, name string) int {
	t.Helper()
	decl, ok := f.app.Interface().Lookup(name)
	if !ok {
		t.Fatalf("no ecall %q", name)
	}
	return decl.ID
}

func TestSwitchlessReturnsResults(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	for i := 0; i < 50; i++ {
		res, err := sl.Call(f.ctx, callID(t, f, "ecall_double"), f.otab, i)
		if err != nil {
			t.Fatal(err)
		}
		if res != 2*i {
			t.Fatalf("double(%d) = %v", i, res)
		}
	}
	served, _ := sl.Stats()
	if served != 50 {
		t.Fatalf("served = %d, want 50", served)
	}
}

func TestSwitchlessEliminatesTransitionCost(t *testing.T) {
	// The whole point (§2.3, §6): a short call over the queue must cost
	// far less than the 4.2µs transition+dispatch path.
	f := newSLFixture(t)
	id := callID(t, f, "ecall_short_work")

	// Regular path baseline.
	f.call(t, "ecall_short_work")
	start := f.ctx.Now()
	const n = 100
	for i := 0; i < n; i++ {
		f.call(t, "ecall_short_work")
	}
	regular := f.ctx.Clock().DurationSince(start) / n

	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	if _, err := sl.Call(f.ctx, id, f.otab, nil); err != nil {
		t.Fatal(err)
	}
	start = f.ctx.Now()
	for i := 0; i < n; i++ {
		if _, err := sl.Call(f.ctx, id, f.otab, nil); err != nil {
			t.Fatal(err)
		}
	}
	switchless := f.ctx.Clock().DurationSince(start) / n

	if regular < 5*time.Microsecond {
		t.Fatalf("regular path suspiciously fast: %v", regular)
	}
	if switchless*2 >= regular {
		t.Fatalf("switchless %v not clearly faster than regular %v", switchless, regular)
	}
}

func (f *slFixture) call(t *testing.T, name string) {
	t.Helper()
	if _, err := f.proxies[name](f.ctx, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchlessRejectsPrivateEcalls(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	_, err = sl.Call(f.ctx, callID(t, f, "ecall_private"), f.otab, nil)
	if !errors.Is(err, sdk.ErrEcallNotAllowed) {
		t.Fatalf("private switchless call: %v", err)
	}
}

func TestSwitchlessWorkerCanOcall(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	// The worker thread must be able to leave the enclave for ocalls and
	// come back, using the saved ocall table.
	if _, err := f.proxies["ecall_double"](f.ctx, 1); err != nil {
		t.Fatal(err) // ensures a table is saved via the regular path first
	}
	res, err := sl.Call(f.ctx, callID(t, f, "ecall_with_ocall"), f.otab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != "pong" {
		t.Fatalf("ocall via worker = %v", res)
	}
}

func TestSwitchlessFallbackOnFullQueue(t *testing.T) {
	f := newSLFixture(t)
	// One worker, depth 1, and a slow call to jam the queue.
	iface := f.app.Interface()
	_ = iface
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	id := callID(t, f, "ecall_short_work")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := f.h.Spawn("caller", func(ctx *sgx.Context) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := sl.Call(ctx, id, f.otab, nil); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	served, fellBack := sl.Stats()
	if served+fellBack != 400 {
		t.Fatalf("served %d + fallback %d != 400", served, fellBack)
	}
	if served == 0 {
		t.Fatal("nothing ran switchless")
	}
}

func TestSwitchlessStop(t *testing.T) {
	f := newSLFixture(t)
	freeBefore := f.app.Enclave().FreeTCS()
	sl, err := f.h.URTS.StartSwitchless(f.app, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.app.Enclave().FreeTCS(); got != freeBefore-3 {
		t.Fatalf("workers hold %d TCSs, want 3", freeBefore-got)
	}
	sl.Stop()
	sl.Stop() // idempotent
	if got := f.app.Enclave().FreeTCS(); got != freeBefore {
		t.Fatalf("TCSs not released: %d != %d", got, freeBefore)
	}
	if _, err := sl.Call(f.ctx, callID(t, f, "ecall_double"), f.otab, 1); !errors.Is(err, sdk.ErrSwitchlessStopped) {
		t.Fatalf("call after stop: %v", err)
	}
}

func TestSwitchlessNeedsFreeTCS(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{NumTCS: 1}, iface,
		map[string]sdk.TrustedFn{"e": func(env *sdk.Env, args any) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.URTS.StartSwitchless(app, 2, 0); err == nil {
		t.Fatal("switchless started with too few TCSs")
	}
}

func TestSwitchlessBypassesLoggerInterposition(t *testing.T) {
	// Switchless calls do not pass through sgx_ecall: an attached logger
	// must not see them (the documented observability blind spot), while
	// ocalls issued by the trusted code remain visible through the stub
	// table.
	f := newSLFixture(t)
	l, err := logger.Attach(f.h, logger.Options{Workload: "sl-blindspot"})
	if err != nil {
		t.Fatal(err)
	}
	// One regular call so the logger saves its stub ocall table.
	f.call(t, "ecall_with_ocall")

	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	for i := 0; i < 20; i++ {
		if _, err := sl.Call(f.ctx, callID(t, f, "ecall_with_ocall"), f.otab, nil); err != nil {
			t.Fatal(err)
		}
	}
	ecalls := l.Trace().Ecalls.Len()
	ocalls := l.Trace().Ocalls.Len()
	if ecalls != 1 {
		t.Fatalf("logger saw %d ecalls, want only the 1 regular one", ecalls)
	}
	if ocalls != 1+20 {
		t.Fatalf("logger saw %d ocalls, want 21 (stub table still active for workers)", ocalls)
	}
}
