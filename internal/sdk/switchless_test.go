package sdk_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// slFixture builds an enclave suited for switchless testing: plenty of
// TCSs and a mix of public/private ecalls.
type slFixture struct {
	h       *host.Host
	ctx     *sgx.Context
	app     *sdk.AppEnclave
	otab    *sdk.OcallTable
	proxies map[string]sdk.Proxy
}

func newSLFixture(t *testing.T) *slFixture {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_double", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_short_work", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_private", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_with_ocall", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("ocall_ping", []string{"ecall_private"}); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_double": func(env *sdk.Env, args any) (any, error) {
			n, _ := args.(int)
			return 2 * n, nil
		},
		"ecall_short_work": func(env *sdk.Env, args any) (any, error) {
			env.Compute(time.Microsecond)
			return nil, nil
		},
		"ecall_private": func(env *sdk.Env, args any) (any, error) { return nil, nil },
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_ping", nil)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "sl", NumTCS: 8}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_ping": func(ctx *sgx.Context, args any) (any, error) { return "pong", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &slFixture{
		h: h, ctx: ctx, app: app, otab: otab,
		proxies: sdk.Proxies(app, h.Proc, otab),
	}
}

func callID(t *testing.T, f *slFixture, name string) int {
	t.Helper()
	decl, ok := f.app.Interface().Lookup(name)
	if !ok {
		t.Fatalf("no ecall %q", name)
	}
	return decl.ID
}

func TestSwitchlessReturnsResults(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	for i := 0; i < 50; i++ {
		res, err := sl.Call(f.ctx, callID(t, f, "ecall_double"), f.otab, i)
		if err != nil {
			t.Fatal(err)
		}
		if res != 2*i {
			t.Fatalf("double(%d) = %v", i, res)
		}
	}
	served, _ := sl.Stats()
	if served != 50 {
		t.Fatalf("served = %d, want 50", served)
	}
}

func TestSwitchlessEliminatesTransitionCost(t *testing.T) {
	// The whole point (§2.3, §6): a short call over the queue must cost
	// far less than the 4.2µs transition+dispatch path.
	f := newSLFixture(t)
	id := callID(t, f, "ecall_short_work")

	// Regular path baseline.
	f.call(t, "ecall_short_work")
	start := f.ctx.Now()
	const n = 100
	for i := 0; i < n; i++ {
		f.call(t, "ecall_short_work")
	}
	regular := f.ctx.Clock().DurationSince(start) / n

	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	if _, err := sl.Call(f.ctx, id, f.otab, nil); err != nil {
		t.Fatal(err)
	}
	start = f.ctx.Now()
	for i := 0; i < n; i++ {
		if _, err := sl.Call(f.ctx, id, f.otab, nil); err != nil {
			t.Fatal(err)
		}
	}
	switchless := f.ctx.Clock().DurationSince(start) / n

	if regular < 5*time.Microsecond {
		t.Fatalf("regular path suspiciously fast: %v", regular)
	}
	if switchless*2 >= regular {
		t.Fatalf("switchless %v not clearly faster than regular %v", switchless, regular)
	}
}

func (f *slFixture) call(t *testing.T, name string) {
	t.Helper()
	if _, err := f.proxies[name](f.ctx, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchlessRejectsPrivateEcalls(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	_, err = sl.Call(f.ctx, callID(t, f, "ecall_private"), f.otab, nil)
	if !errors.Is(err, sdk.ErrEcallNotAllowed) {
		t.Fatalf("private switchless call: %v", err)
	}
}

func TestSwitchlessWorkerCanOcall(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	// The worker thread must be able to leave the enclave for ocalls and
	// come back, using the saved ocall table.
	if _, err := f.proxies["ecall_double"](f.ctx, 1); err != nil {
		t.Fatal(err) // ensures a table is saved via the regular path first
	}
	res, err := sl.Call(f.ctx, callID(t, f, "ecall_with_ocall"), f.otab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != "pong" {
		t.Fatalf("ocall via worker = %v", res)
	}
}

func TestSwitchlessFallbackOnFullQueue(t *testing.T) {
	f := newSLFixture(t)
	// One worker, depth 1, and a slow call to jam the queue.
	iface := f.app.Interface()
	_ = iface
	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	id := callID(t, f, "ecall_short_work")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := f.h.Spawn("caller", func(ctx *sgx.Context) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := sl.Call(ctx, id, f.otab, nil); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	served, fellBack := sl.Stats()
	if served+fellBack != 400 {
		t.Fatalf("served %d + fallback %d != 400", served, fellBack)
	}
	if served == 0 {
		t.Fatal("nothing ran switchless")
	}
}

func TestSwitchlessStop(t *testing.T) {
	f := newSLFixture(t)
	freeBefore := f.app.Enclave().FreeTCS()
	sl, err := f.h.URTS.StartSwitchless(f.app, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.app.Enclave().FreeTCS(); got != freeBefore-3 {
		t.Fatalf("workers hold %d TCSs, want 3", freeBefore-got)
	}
	sl.Stop()
	sl.Stop() // idempotent
	if got := f.app.Enclave().FreeTCS(); got != freeBefore {
		t.Fatalf("TCSs not released: %d != %d", got, freeBefore)
	}
	if _, err := sl.Call(f.ctx, callID(t, f, "ecall_double"), f.otab, 1); !errors.Is(err, sdk.ErrSwitchlessStopped) {
		t.Fatalf("call after stop: %v", err)
	}
}

func TestSwitchlessNeedsFreeTCS(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{NumTCS: 1}, iface,
		map[string]sdk.TrustedFn{"e": func(env *sdk.Env, args any) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.URTS.StartSwitchless(app, 2, 0); err == nil {
		t.Fatal("switchless started with too few TCSs")
	}
}

func TestSwitchlessBypassesLoggerInterposition(t *testing.T) {
	// Switchless calls do not pass through sgx_ecall: an attached logger
	// must not see them in the ecall table (the §6 observability blind
	// spot), while ocalls issued by the trusted code remain visible
	// through the stub table. The runtime compensates by emitting one
	// synthetic switchless event per served call through the observer
	// hook — the blind spot is closed in the dedicated table, not papered
	// over in the ecall one.
	f := newSLFixture(t)
	l, err := logger.Attach(f.h, logger.Options{Workload: "sl-blindspot"})
	if err != nil {
		t.Fatal(err)
	}
	// One regular call so the logger saves its stub ocall table.
	f.call(t, "ecall_with_ocall")

	sl, err := f.h.URTS.StartSwitchless(f.app, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	for i := 0; i < 20; i++ {
		if _, err := sl.Call(f.ctx, callID(t, f, "ecall_with_ocall"), f.otab, nil); err != nil {
			t.Fatal(err)
		}
	}
	ecalls := l.Trace().Ecalls.Len()
	ocalls := l.Trace().Ocalls.Len()
	if ecalls != 1 {
		t.Fatalf("logger saw %d ecalls, want only the 1 regular one", ecalls)
	}
	if ocalls != 1+20 {
		t.Fatalf("logger saw %d ocalls, want 21 (stub table still active for workers)", ocalls)
	}
	swless := l.Trace().Switchless.Len()
	if swless != 20 {
		t.Fatalf("trace has %d synthetic switchless events, want 20", swless)
	}
}

// TestSwitchlessStopWithInFlightCalls is the race exercise behind the
// retire protocol: callers hammer the pool while Stop arrives midway.
// Every call must either complete normally or report
// ErrSwitchlessStopped — no hangs, no lost replies, and `go test -race`
// over this path is the scheduler's data-race certificate.
func TestSwitchlessStopWithInFlightCalls(t *testing.T) {
	f := newSLFixture(t)
	sl, err := f.h.URTS.StartSwitchless(f.app, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := callID(t, f, "ecall_short_work")
	var wg sync.WaitGroup
	var completed, stopped, unexpected atomic.Uint64
	const callers, perCaller = 6, 40
	for i := 0; i < callers; i++ {
		wg.Add(1)
		if err := f.h.Spawn("caller", func(ctx *sgx.Context) {
			defer wg.Done()
			for j := 0; j < perCaller; j++ {
				switch _, err := sl.Call(ctx, id, f.otab, nil); {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, sdk.ErrSwitchlessStopped):
					stopped.Add(1)
				default:
					unexpected.Add(1)
					t.Errorf("call: %v", err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Stop from a separate simulated thread once some calls are in
	// flight; the drain protocol must answer everything already queued.
	wg.Add(1)
	if err := f.h.Spawn("stopper", func(ctx *sgx.Context) {
		defer wg.Done()
		for {
			if served, fell := sl.Stats(); served+fell >= callers*perCaller/4 {
				break
			}
			runtime.Gosched()
		}
		sl.Stop()
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if unexpected.Load() != 0 {
		t.Fatalf("%d calls failed with unexpected errors", unexpected.Load())
	}
	if got := completed.Load() + stopped.Load(); got != callers*perCaller {
		t.Fatalf("accounted for %d calls, want %d", got, callers*perCaller)
	}
	if completed.Load() == 0 {
		t.Fatal("stop landed before any call completed; race window not exercised")
	}
}

// TestSwitchlessCallBatch pins the batched submission contract: results
// arrive in submission order, and the N overlapped round-trips plus a
// single collect charge cost less than N sequential Calls.
func TestSwitchlessCallBatch(t *testing.T) {
	f := newSLFixture(t)
	// Queue depth 32 so the whole batch fits without fallbacks.
	sl, err := f.h.URTS.StartSwitchless(f.app, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	id := callID(t, f, "ecall_double")

	const n = 16
	// One warm-up call per context before its measurement: the first call
	// from a fresh thread merges its clock up to the workers' timelines,
	// which would otherwise bill the earlier phase's progress to this one.
	seq := f.h.NewContext("seq")
	if _, err := sl.Call(seq, id, f.otab, 0); err != nil {
		t.Fatal(err)
	}
	start := seq.Now()
	for i := 0; i < n; i++ {
		res, err := sl.Call(seq, id, f.otab, i)
		if err != nil {
			t.Fatal(err)
		}
		if res != 2*i {
			t.Fatalf("sequential double(%d) = %v", i, res)
		}
	}
	seqCost := seq.Clock().DurationSince(start)

	batchCtx := f.h.NewContext("batch")
	if _, err := sl.Call(batchCtx, id, f.otab, 0); err != nil {
		t.Fatal(err)
	}
	calls := make([]sdk.BatchCall, n)
	for i := range calls {
		calls[i] = sdk.BatchCall{CallID: id, Args: i}
	}
	start = batchCtx.Now()
	results, err := sl.CallBatch(batchCtx, f.otab, calls)
	if err != nil {
		t.Fatal(err)
	}
	batchCost := batchCtx.Clock().DurationSince(start)
	if len(results) != n {
		t.Fatalf("batch returned %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch[%d]: %v", i, r.Err)
		}
		if r.Res != 2*i {
			t.Fatalf("batch double(%d) = %v", i, r.Res)
		}
	}
	if batchCost >= seqCost {
		t.Fatalf("batch %v not cheaper than %d sequential calls %v", batchCost, n, seqCost)
	}
}

// TestSwitchlessAutoTunerConverges drives the self-tuning scheduler with
// a stable concurrent load and asserts the trajectory the queueing model
// promises: the pool grows from MinWorkers, every decision is priced in
// virtual time, and the trailing decisions hold one worker count — the
// no-oscillation guarantee the closed loop's converged flag relies on.
func TestSwitchlessAutoTunerConverges(t *testing.T) {
	f := newSLFixture(t)
	cfg := sdk.SwitchlessConfig{
		Source:     "manual",
		Ecalls:     []string{"ecall_short_work"},
		MinWorkers: 1,
		MaxWorkers: 4,
		QueueDepth: 8,
		EpochCalls: 32,
	}
	sl, err := f.h.URTS.StartSwitchlessAuto(f.app, cfg, f.otab)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	id := callID(t, f, "ecall_short_work")
	var wg sync.WaitGroup
	const callers, perCaller = 6, 300
	for i := 0; i < callers; i++ {
		wg.Add(1)
		if err := f.h.Spawn("caller", func(ctx *sgx.Context) {
			defer wg.Done()
			for j := 0; j < perCaller; j++ {
				if _, err := sl.Call(ctx, id, f.otab, nil); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	decisions := sl.Decisions()
	if len(decisions) < 4 {
		t.Fatalf("only %d scaling decisions for %d calls", len(decisions), callers*perCaller)
	}
	grew := false
	for i, d := range decisions {
		if d.Action == "grow" {
			grew = true
		}
		if d.Workers < cfg.MinWorkers || d.Workers > cfg.MaxWorkers {
			t.Fatalf("decision %d left the pool at %d workers, outside [%d,%d]", i, d.Workers, cfg.MinWorkers, cfg.MaxWorkers)
		}
		if d.Callers <= 0 {
			t.Fatalf("decision %d saw %d callers; caller tracking broken", i, d.Callers)
		}
	}
	if !grew {
		t.Fatal("tuner never grew the pool under sustained concurrent load")
	}
	tail := decisions[len(decisions)-3:]
	for _, d := range tail[1:] {
		if d.Workers != tail[0].Workers {
			t.Fatalf("tuner still oscillating in the trailing epochs: %+v", tail)
		}
	}
	ecallW, _ := sl.Workers()
	if ecallW != tail[len(tail)-1].Workers {
		t.Fatalf("live worker count %d disagrees with the last decision %d", ecallW, tail[len(tail)-1].Workers)
	}
}
