package sdk

import (
	"fmt"
	"runtime"
	"sync"

	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// runtimeGosched yields the Go scheduler during simulated spinning so the
// lock holder's goroutine can run.
func runtimeGosched() { runtime.Gosched() }

// Mutex is the SDK's in-enclave mutex (§2.3.2): an uncontended lock is
// taken without leaving the enclave, but a contended lock enqueues the
// thread and sleeps through an ocall, and the unlocking thread wakes the
// sleeper through another ocall — so one contended lock/unlock pair can
// cost two enclave transitions, the Short Synchronisation Calls problem
// (§3.4).
type Mutex struct {
	// SpinCount is the number of in-enclave spin attempts before sleeping.
	// 0 is the plain SDK mutex; a positive count makes this the hybrid
	// lock the paper recommends for short critical sections (§3.4).
	SpinCount int

	mu      sync.Mutex // models the in-enclave spinlock word
	locked  bool
	owner   sgx.ThreadID
	waiters []sgx.ThreadID
	handoff vtime.SyncPoint

	// stats
	contended uint64
	sleeps    uint64
}

// Lock acquires the mutex on behalf of the calling enclave thread.
func (m *Mutex) Lock(env *Env) error {
	self := env.Context().ID()
	spins := m.SpinCount
	for {
		env.Compute(CostSpin)
		m.mu.Lock()
		if !m.locked {
			m.locked = true
			m.owner = self
			m.mu.Unlock()
			m.handoff.Observe(env.Context().Clock())
			return nil
		}
		if spins > 0 {
			spins--
			m.mu.Unlock()
			// Let the holder make progress; virtual spin cost was charged
			// above, the yield is only for the Go scheduler.
			runtimeGosched()
			continue
		}
		m.contended++
		m.sleeps++
		m.waiters = append(m.waiters, self)
		m.mu.Unlock()
		// Sleep outside the enclave (the first of the two transitions).
		//sgxperf:allow(transamp) sleep-retry loop: exactly one wait ocall per park/wake round, the §3.4 shape itself, not amplification
		if _, err := env.Ocall(OcallThreadWait, WaitEventArgs{Self: self}); err != nil {
			return fmt.Errorf("sdk: mutex sleep: %w", err)
		}
		spins = m.SpinCount
	}
}

// Unlock releases the mutex, waking the first waiter via an ocall if any
// (the second, typically very short, transition).
func (m *Mutex) Unlock(env *Env) error {
	self := env.Context().ID()
	m.mu.Lock()
	if !m.locked || m.owner != self {
		m.mu.Unlock()
		return fmt.Errorf("sdk: unlock of mutex not held by thread %d", self)
	}
	m.locked = false
	m.owner = 0
	var target sgx.ThreadID
	if len(m.waiters) > 0 {
		target = m.waiters[0]
		m.waiters = m.waiters[1:]
	}
	m.mu.Unlock()
	m.handoff.Publish(env.Context().Now())
	if target != 0 {
		if _, err := env.Ocall(OcallThreadSet, SetEventArgs{Target: target}); err != nil {
			return fmt.Errorf("sdk: mutex wake: %w", err)
		}
	}
	return nil
}

// Stats returns how often the lock was contended and how many sleep
// ocalls it issued.
func (m *Mutex) Stats() (contended, sleeps uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.contended, m.sleeps
}

// Cond is the SDK's in-enclave condition variable. Wait enqueues the
// thread, releases the mutex and sleeps via ocall; Signal wakes one
// waiter, Broadcast wakes all (the "wake multiple" ocall).
type Cond struct {
	mu      sync.Mutex
	waiters []sgx.ThreadID
}

// Wait atomically releases m and sleeps until signalled, then re-acquires
// m.
func (c *Cond) Wait(env *Env, m *Mutex) error {
	self := env.Context().ID()
	c.mu.Lock()
	c.waiters = append(c.waiters, self)
	c.mu.Unlock()
	if err := m.Unlock(env); err != nil {
		return err
	}
	if _, err := env.Ocall(OcallThreadWait, WaitEventArgs{Self: self}); err != nil {
		return fmt.Errorf("sdk: cond wait: %w", err)
	}
	return m.Lock(env)
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal(env *Env) error {
	c.mu.Lock()
	var target sgx.ThreadID
	if len(c.waiters) > 0 {
		target = c.waiters[0]
		c.waiters = c.waiters[1:]
	}
	c.mu.Unlock()
	if target == 0 {
		return nil
	}
	_, err := env.Ocall(OcallThreadSet, SetEventArgs{Target: target})
	return err
}

// Broadcast wakes every waiter with a single "wake multiple" ocall.
func (c *Cond) Broadcast(env *Env) error {
	c.mu.Lock()
	targets := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	if len(targets) == 0 {
		return nil
	}
	_, err := env.Ocall(OcallThreadSetMultiple, SetMultipleEventArgs{Targets: targets})
	return err
}

// Waiters returns the number of threads currently enqueued on the condvar
// (used by tests and diagnostics).
func (c *Cond) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
