package sdk

import (
	"encoding/json"
	"fmt"
)

// SwitchlessConfig selects which interface functions run switchless and
// bounds the self-tuning scheduler. The static analyzer emits one from
// its Transition-Bound Calls findings (Source "staticlint"), closing the
// paper's find→optimise→re-measure loop; hand-written configurations
// work the same way.
type SwitchlessConfig struct {
	// Source records who produced the configuration ("staticlint",
	// "manual", ...), so measurements can prove their provenance.
	Source string `json:"source"`
	// Ecalls and Ocalls are the function names routed through the
	// switchless queues. Non-public ecalls, allow-listed ocalls and SDK
	// sync ocalls are ignored: they cannot run on a detached worker.
	Ecalls []string `json:"ecalls"`
	Ocalls []string `json:"ocalls,omitempty"`
	// MinWorkers and MaxWorkers bound each pool; the scheduler starts at
	// MinWorkers and never grows past MaxWorkers (or the free TCSs, for
	// the trusted pool).
	MinWorkers int `json:"min_workers"`
	MaxWorkers int `json:"max_workers"`
	// QueueDepth bounds in-flight requests per worker queue; when every
	// worker's queue is full the call falls back to the regular
	// transition path.
	QueueDepth int `json:"queue_depth"`
	// EpochCalls is the scheduler period: every EpochCalls-th submission
	// to a pool runs one scaling decision.
	EpochCalls int `json:"epoch_calls"`
}

// withDefaults fills unset fields with the runtime defaults.
func (c SwitchlessConfig) withDefaults() SwitchlessConfig {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
		if c.MaxWorkers < 8 {
			c.MaxWorkers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.EpochCalls <= 0 {
		c.EpochCalls = 64
	}
	return c
}

// JSON renders the configuration as indented JSON.
func (c SwitchlessConfig) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sdk: switchless config: %w", err)
	}
	return append(b, '\n'), nil
}

// ParseSwitchlessConfig parses a configuration produced by JSON (or by
// `sgx-perf-lint -switchless-config`).
func ParseSwitchlessConfig(b []byte) (*SwitchlessConfig, error) {
	var c SwitchlessConfig
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("sdk: switchless config: %w", err)
	}
	return &c, nil
}
