package sdk_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/loader"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// fixture builds a host with one enclave exposing a small interface:
//
//	public ecall_noop();
//	public ecall_work(µs);            // computes for the given time
//	public ecall_with_ocall();        // issues ocall_noop
//	ecall_private();                  // allowed only from ocall_gate
//	ocall_noop() allow();
//	ocall_gate() allow(ecall_private);
type fixture struct {
	h       *host.Host
	app     *sdk.AppEnclave
	otab    *sdk.OcallTable
	proxies map[string]sdk.Proxy
	ctx     *sgx.Context

	mu        sync.Mutex
	ocallHits map[string]int
}

type workArgs struct{ D time.Duration }

func newFixture(t *testing.T, opts ...host.Option) *fixture {
	t.Helper()
	h, err := host.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{h: h, ocallHits: make(map[string]int)}

	iface := edl.NewInterface()
	mustAddE := func(name string, public bool) {
		t.Helper()
		if _, err := iface.AddEcall(name, public); err != nil {
			t.Fatal(err)
		}
	}
	mustAddE("ecall_noop", true)
	mustAddE("ecall_work", true)
	mustAddE("ecall_with_ocall", true)
	mustAddE("ecall_private", false)
	if _, err := iface.AddOcall("ocall_noop", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("ocall_gate", []string{"ecall_private"}); err != nil {
		t.Fatal(err)
	}

	impl := map[string]sdk.TrustedFn{
		"ecall_noop": func(env *sdk.Env, args any) (any, error) { return "ok", nil },
		"ecall_work": func(env *sdk.Env, args any) (any, error) {
			a, _ := args.(workArgs)
			env.Compute(a.D)
			return nil, nil
		},
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_noop", nil)
		},
		"ecall_private": func(env *sdk.Env, args any) (any, error) { return "private-ok", nil },
	}

	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "test"}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	ocalls := map[string]sdk.OcallFn{
		"ocall_noop": func(ctx *sgx.Context, args any) (any, error) {
			f.count("ocall_noop")
			return nil, nil
		},
		"ocall_gate": func(ctx *sgx.Context, args any) (any, error) {
			f.count("ocall_gate")
			return nil, nil
		},
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		t.Fatal(err)
	}
	f.app, f.otab, f.ctx = app, otab, ctx
	f.proxies = sdk.Proxies(app, h.Proc, otab)
	return f
}

func (f *fixture) count(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ocallHits[name]++
}

func (f *fixture) hits(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ocallHits[name]
}

func (f *fixture) call(t *testing.T, name string, args any) any {
	t.Helper()
	res, err := f.proxies[name](f.ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestEcallRoundTripResult(t *testing.T) {
	f := newFixture(t)
	if got := f.call(t, "ecall_noop", nil); got != "ok" {
		t.Fatalf("ecall_noop = %v", got)
	}
}

func TestNativeEcallCostMatchesTable2(t *testing.T) {
	// Table 2, "Native, single ecall": ≈4,205 ns per call on the vanilla
	// machine.
	f := newFixture(t)
	f.call(t, "ecall_noop", nil) // warm: fault in TCS page etc.
	start := f.ctx.Now()
	const n = 100
	for i := 0; i < n; i++ {
		f.call(t, "ecall_noop", nil)
	}
	per := f.ctx.Clock().DurationSince(start) / n
	if per < 4100*time.Nanosecond || per > 4350*time.Nanosecond {
		t.Fatalf("native ecall = %v, want ≈4205ns", per)
	}
}

func TestNativeEcallOcallCostMatchesTable2(t *testing.T) {
	// Table 2, "Native, ecall + ocall": ≈8,013 ns per call.
	f := newFixture(t)
	f.call(t, "ecall_with_ocall", nil)
	start := f.ctx.Now()
	const n = 100
	for i := 0; i < n; i++ {
		f.call(t, "ecall_with_ocall", nil)
	}
	per := f.ctx.Clock().DurationSince(start) / n
	if per < 7900*time.Nanosecond || per > 8250*time.Nanosecond {
		t.Fatalf("native ecall+ocall = %v, want ≈8013ns", per)
	}
	if f.hits("ocall_noop") != n+1 {
		t.Fatalf("ocall ran %d times, want %d", f.hits("ocall_noop"), n+1)
	}
}

func TestEcallWorkIsCharged(t *testing.T) {
	f := newFixture(t)
	start := f.ctx.Now()
	f.call(t, "ecall_work", workArgs{D: 500 * time.Microsecond})
	got := f.ctx.Clock().DurationSince(start)
	if got < 500*time.Microsecond {
		t.Fatalf("work ecall took %v, want ≥500µs", got)
	}
}

func TestPrivateEcallRejectedAtTopLevel(t *testing.T) {
	f := newFixture(t)
	_, err := f.proxies["ecall_private"](f.ctx, nil)
	if !errors.Is(err, sdk.ErrEcallNotAllowed) {
		t.Fatalf("private ecall at top level: %v", err)
	}
}

// TestNestedEcallDuringOcall builds its own enclave whose public ecall
// issues ocall_gate, whose untrusted implementation re-enters via the
// private ecall — the ecall-during-ocall path with allow-list checks.
func TestNestedEcallDuringOcall(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_entry", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_private", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("ecall_forbidden", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("ocall_gate", []string{"ecall_private"}); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_entry": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_gate", nil)
		},
		"ecall_private":   func(env *sdk.Env, args any) (any, error) { return "nested-ok", nil },
		"ecall_forbidden": func(env *sdk.Env, args any) (any, error) { return nil, nil },
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	var proxies map[string]sdk.Proxy
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_gate": func(ctx *sgx.Context, args any) (any, error) {
			// Allowed nested ecall succeeds…
			res, err := proxies["ecall_private"](ctx, nil)
			if err != nil {
				return nil, err
			}
			// …and a not-allowed one is rejected by the runtime.
			if _, err := proxies["ecall_forbidden"](ctx, nil); !errors.Is(err, sdk.ErrEcallNotAllowed) {
				return nil, errors.New("forbidden nested ecall was not rejected")
			}
			return res, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxies = sdk.Proxies(app, h.Proc, otab)
	res, err := proxies["ecall_entry"](ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != "nested-ok" {
		t.Fatalf("nested result = %v", res)
	}
}

func TestInvalidIDs(t *testing.T) {
	f := newFixture(t)
	if _, err := f.h.URTS.Ecall(f.ctx, 9999, 0, f.otab, nil); !errors.Is(err, sdk.ErrInvalidEnclave) {
		t.Fatalf("bad enclave: %v", err)
	}
	if _, err := f.h.URTS.Ecall(f.ctx, f.app.ID(), 9999, f.otab, nil); !errors.Is(err, sdk.ErrInvalidEcall) {
		t.Fatalf("bad ecall id: %v", err)
	}
}

func TestUndeclaredOcallRejected(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, map[string]sdk.TrustedFn{
		"e": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_ghost", nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	if _, err := proxies["e"](ctx, nil); !errors.Is(err, sdk.ErrInvalidOcall) {
		t.Fatalf("undeclared ocall: %v", err)
	}
}

func TestImplementationForUndeclaredEcallRejected(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	ctx := h.NewContext("main")
	_, err = h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, map[string]sdk.TrustedFn{
		"ghost": func(env *sdk.Env, args any) (any, error) { return nil, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("undeclared impl: %v", err)
	}
}

func TestMissingOcallImplementationRejected(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddOcall("ocall_unimplemented", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sdk.WithSyncOcalls(iface); err != nil {
		t.Fatal(err)
	}
	if _, err := sdk.BuildOcallTable(iface, h.URTS, nil); err == nil {
		t.Fatal("missing ocall impl accepted")
	}
}

func TestWithSyncOcallsIdempotent(t *testing.T) {
	iface := edl.NewInterface()
	if _, err := sdk.WithSyncOcalls(iface); err != nil {
		t.Fatal(err)
	}
	if _, err := sdk.WithSyncOcalls(iface); err != nil {
		t.Fatal(err)
	}
	if got := len(iface.Ocalls()); got != 4 {
		t.Fatalf("sync ocalls declared %d times", got)
	}
	for _, n := range sdk.SyncOcallNames() {
		if !sdk.IsSyncOcall(n) {
			t.Fatalf("IsSyncOcall(%q) = false", n)
		}
	}
	if sdk.IsSyncOcall("ocall_noop") {
		t.Fatal("IsSyncOcall misclassified a regular ocall")
	}
}

type copiedArgs struct{ in, out int }

func (c copiedArgs) CopyInBytes() int  { return c.in }
func (c copiedArgs) CopyOutBytes() int { return c.out }

func TestBoundaryCopyCharged(t *testing.T) {
	f := newFixture(t)
	f.call(t, "ecall_noop", nil)
	base := f.ctx.Now()
	f.call(t, "ecall_noop", nil)
	plain := f.ctx.Now() - base

	base = f.ctx.Now()
	f.call(t, "ecall_noop", copiedArgs{in: 64 * 1024, out: 64 * 1024})
	copied := f.ctx.Now() - base
	wantExtra := f.ctx.Clock().Frequency().Cycles(2 * 64 * sdk.CostCopyPerKiB)
	extra := copied - plain
	if extra < wantExtra*9/10 || extra > wantExtra*11/10 {
		t.Fatalf("copy charge = %d cycles, want ≈%d", extra, wantExtra)
	}
}

func TestOcallTableSwapInterceptsOcalls(t *testing.T) {
	// The Fig. 3 mechanism: pass a different table on the next ecall and
	// the TRTS dispatches ocalls through it.
	f := newFixture(t)
	intercepted := 0
	stubTable := &sdk.OcallTable{
		Funcs: make([]sdk.OcallFn, len(f.otab.Funcs)),
		Names: f.otab.Names,
	}
	for i, orig := range f.otab.Funcs {
		orig := orig
		stubTable.Funcs[i] = func(ctx *sgx.Context, args any) (any, error) {
			intercepted++
			return orig(ctx, args)
		}
	}
	if _, err := f.h.URTS.Ecall(f.ctx, f.app.ID(), 2 /* ecall_with_ocall */, stubTable, nil); err != nil {
		t.Fatal(err)
	}
	if intercepted != 1 {
		t.Fatalf("stub table intercepted %d ocalls, want 1", intercepted)
	}
	if f.hits("ocall_noop") != 1 {
		t.Fatal("original ocall did not run through the stub")
	}
}

func TestSgxEcallShadowing(t *testing.T) {
	// Preload a library shadowing sgx_ecall; proxies must route through
	// it (the logger's mechanism, Fig. 2).
	f := newFixture(t)
	var seen []int
	shadow := loader.NewLibrary("libshadow")
	var next sdk.EcallFn
	shadow.Define(loader.SymSGXEcall, sdk.EcallFn(
		func(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *sdk.OcallTable, args any) (any, error) {
			seen = append(seen, callID)
			return next(ctx, eid, callID, otab, args)
		}))
	f.h.Proc.Preload(shadow)
	var err error
	next, err = loader.LookupNext[sdk.EcallFn](f.h.Proc, shadow, loader.SymSGXEcall)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.call(t, "ecall_noop", nil); got != "ok" {
		t.Fatalf("shadowed call result = %v", got)
	}
	if len(seen) != 1 || seen[0] != 0 {
		t.Fatalf("shadow saw %v, want [0]", seen)
	}
}

func TestMutexUncontendedNoOcalls(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	var m sdk.Mutex
	syncOcalls := 0
	impl := map[string]sdk.TrustedFn{
		"e": func(env *sdk.Env, args any) (any, error) {
			for i := 0; i < 10; i++ {
				if err := m.Lock(env); err != nil {
					return nil, err
				}
				if err := m.Unlock(env); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count sync ocalls by wrapping the table.
	for i, fn := range otab.Funcs {
		if sdk.IsSyncOcall(otab.Names[i]) {
			orig := fn
			otab.Funcs[i] = func(ctx *sgx.Context, args any) (any, error) {
				syncOcalls++
				return orig(ctx, args)
			}
		}
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	if _, err := proxies["e"](ctx, nil); err != nil {
		t.Fatal(err)
	}
	if syncOcalls != 0 {
		t.Fatalf("uncontended mutex issued %d sync ocalls (§2.3.2 says none)", syncOcalls)
	}
	if c, s := m.Stats(); c != 0 || s != 0 {
		t.Fatalf("stats contended=%d sleeps=%d, want 0,0", c, s)
	}
}

func TestMutexContendedSleepsAndWakes(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("hold", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("take", true); err != nil {
		t.Fatal(err)
	}
	var m sdk.Mutex
	held := make(chan struct{})
	release := make(chan struct{})
	impl := map[string]sdk.TrustedFn{
		"hold": func(env *sdk.Env, args any) (any, error) {
			if err := m.Lock(env); err != nil {
				return nil, err
			}
			close(held)
			<-release
			return nil, m.Unlock(env)
		},
		"take": func(env *sdk.Env, args any) (any, error) {
			if err := m.Lock(env); err != nil {
				return nil, err
			}
			return nil, m.Unlock(env)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{NumTCS: 4}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)

	if err := h.Spawn("holder", func(c *sgx.Context) {
		if _, err := proxies["hold"](c, nil); err != nil {
			t.Errorf("hold: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-held
	done := make(chan struct{})
	if err := h.Spawn("taker", func(c *sgx.Context) {
		defer close(done)
		if _, err := proxies["take"](c, nil); err != nil {
			t.Errorf("take: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Give the taker time to block, then release.
	waitUntil(t, func() bool { _, s := m.Stats(); return s >= 1 })
	close(release)
	<-done
	h.Wait()
	if c, s := m.Stats(); c == 0 || s == 0 {
		t.Fatalf("contended lock recorded contended=%d sleeps=%d", c, s)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("waiter", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("wakeall", true); err != nil {
		t.Fatal(err)
	}
	var (
		m     sdk.Mutex
		c     sdk.Cond
		woken sync.WaitGroup
	)
	ready := make(chan struct{}, 3)
	impl := map[string]sdk.TrustedFn{
		"waiter": func(env *sdk.Env, args any) (any, error) {
			if err := m.Lock(env); err != nil {
				return nil, err
			}
			ready <- struct{}{}
			if err := c.Wait(env, &m); err != nil {
				return nil, err
			}
			woken.Done()
			return nil, m.Unlock(env)
		},
		"wakeall": func(env *sdk.Env, args any) (any, error) {
			return nil, c.Broadcast(env)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{NumTCS: 8}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	const waiters = 3
	woken.Add(waiters)
	for i := 0; i < waiters; i++ {
		if err := h.Spawn("waiter", func(c *sgx.Context) {
			if _, err := proxies["waiter"](c, nil); err != nil {
				t.Errorf("waiter: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < waiters; i++ {
		<-ready
	}
	// Broadcast only once every waiter is registered on the condvar.
	waitUntil(t, func() bool { return c.Waiters() == waiters })
	if _, err := proxies["wakeall"](ctx, nil); err != nil {
		t.Fatal(err)
	}
	donech := make(chan struct{})
	go func() { woken.Wait(); close(donech) }()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast did not wake all waiters")
	}
	h.Wait()
}

func TestHybridMutexSpinsBeforeSleeping(t *testing.T) {
	// A hybrid lock with a generous spin budget should avoid sleep ocalls
	// when the critical section is very short (§3.4).
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("spin", true); err != nil {
		t.Fatal(err)
	}
	m := sdk.Mutex{SpinCount: 1 << 20}
	impl := map[string]sdk.TrustedFn{
		"spin": func(env *sdk.Env, args any) (any, error) {
			for i := 0; i < 50; i++ {
				if err := m.Lock(env); err != nil {
					return nil, err
				}
				if err := m.Unlock(env); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{NumTCS: 4}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	for i := 0; i < 2; i++ {
		if err := h.Spawn("w", func(c *sgx.Context) {
			if _, err := proxies["spin"](c, nil); err != nil {
				t.Errorf("spin: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.Wait()
	if _, sleeps := m.Stats(); sleeps != 0 {
		t.Fatalf("hybrid lock slept %d times despite huge spin budget", sleeps)
	}
}

func TestUnlockByNonOwnerFails(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("bad", true); err != nil {
		t.Fatal(err)
	}
	var m sdk.Mutex
	impl := map[string]sdk.TrustedFn{
		"bad": func(env *sdk.Env, args any) (any, error) {
			return nil, m.Unlock(env)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	if _, err := proxies["bad"](ctx, nil); err == nil {
		t.Fatal("unlock of unheld mutex succeeded")
	}
}
