package sdk

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Switchless calls are the transition-elimination technique of SCONE,
// HotCalls and Eleos that the paper discusses as the alternative to a
// better interface (§2.3, §6) and that Intel later shipped as
// "switchless calls": worker threads parked *inside* the enclave service
// ecall requests from a shared queue, so a short call costs a queue
// round-trip (~hundreds of ns) instead of an EENTER/EEXIT round trip
// (~2–5 µs). Symmetrically, untrusted workers parked *outside* the
// enclave service ocall requests, so trusted code can call out without
// an EEXIT/EENTER round trip (the HotCalls direction).
//
// This implementation mirrors Intel's semantics: only public ecalls may
// run switchless, requests fall back to the regular sgx_ecall path when
// the queue is full, and trusted workers hold a TCS each while parked.
// On top of the fixed-worker mode, StartSwitchlessAuto adds the
// configless dynamic scaling of "SGX Switchless Calls Made Configless":
// a per-epoch scheduler grows and retires workers from the observed
// fallback rate and average queue occupancy, priced in virtual time so
// experiments stay deterministic.
//
// Observability: switchless calls do NOT pass through sgx_ecall or the
// ocall table, so interposition alone cannot see them (§6). The runtime
// closes that blind spot cooperatively: every served call and every
// fallback is reported through the URTS switchless observer, which an
// attached logger turns into synthetic switchless events in the trace.

// Switchless queue costs.
const (
	// CostSwitchlessSubmit is the caller-side enqueue + signal cost,
	// charged both at submit and at result collection.
	CostSwitchlessSubmit = 150 * time.Nanosecond
	// CostSwitchlessWake is the worker-side dequeue cost per request.
	CostSwitchlessWake = 200 * time.Nanosecond
	// CostSwitchlessTune is charged on the caller that trips an epoch
	// boundary and runs the scaling decision.
	CostSwitchlessTune = 400 * time.Nanosecond
)

// ErrSwitchlessStopped is returned by Call after Stop.
var ErrSwitchlessStopped = errors.New("sdk: switchless workers stopped")

// SwitchlessRecord is one completed switchless call (or fallback) as the
// runtime reports it to the URTS observer. The logger converts records
// into synthetic trace events; the type is deliberately free of trace
// schema so the SDK does not depend on the events package.
type SwitchlessRecord struct {
	// Ecall is true for the trusted (ecall) direction, false for the
	// untrusted (ocall) direction.
	Ecall   bool
	Enclave sgx.EnclaveID
	// Caller is the submitting thread.
	Caller sgx.ThreadID
	CallID int
	Name   string
	// Start is the caller's submit time, End its collect time.
	Start vtime.Cycles
	End   vtime.Cycles
	// Worker is the pool thread that serviced the request, 0 on fallback.
	Worker sgx.ThreadID
	// Fallback records that the queue was full and the call took the
	// regular transition path instead.
	Fallback bool
	Err      bool
}

// SwitchlessObserver receives one record per switchless call.
type SwitchlessObserver func(SwitchlessRecord)

// slRequest is one queued switchless call (either direction).
type slRequest struct {
	callID int
	args   any
	// submitted is the caller's virtual time at enqueue.
	submitted vtime.Cycles
	done      chan slResult
}

// slWorker is one pool worker: a private request queue plus the virtual
// time its clock reached at its last completion. Requests are assigned
// to workers at submit time by comparing busyUntil against the request's
// submit time (see pickWorker); a shared FIFO would instead hand a
// request to whichever worker wins the real-time race, and a worker
// whose clock one caller's timeline dragged forward would then stall
// every other caller Lamport-style — serialising the pool in virtual
// time no matter how many workers it has.
type slWorker struct {
	queue chan *slRequest
	// busyUntil is the worker's clock at its last completion, published
	// for the submit-side assignment.
	busyUntil atomic.Int64
	// pending counts requests committed to this queue but not yet
	// dequeued; the retire drain loop runs until it reaches zero.
	pending atomic.Int64
	// retiring is set (before the worker leaves the published slice) to
	// turn away submitters that raced the retirement.
	retiring atomic.Bool
	retire   chan struct{}
}

type slResult struct {
	res any
	err error
	// completed is the worker's virtual time when the call finished.
	completed vtime.Cycles
	// worker is the servicing pool thread.
	worker sgx.ThreadID
}

// slPool is one direction's worker pool: the trusted pool's workers park
// inside the enclave (one TCS each) and service ecalls, the untrusted
// pool's workers stay outside and service ocalls.
type slPool struct {
	name    string // "ecall" or "ocall"
	trusted bool
	// depth is the per-worker queue capacity; a full queue falls back.
	depth int
	// workers is the published slice the submit path assigns against;
	// only the tuner (under tuneMu) replaces it.
	workers atomic.Pointer[[]*slWorker]

	served   atomic.Uint64
	fellBack atomic.Uint64
	// calls counts submissions; every EpochCalls-th submission runs the
	// tuner.
	calls atomic.Uint64
	// waitCycles accumulates, in virtual cycles, how long each served
	// request sat in the queue: the amount by which the serving worker's
	// clock was already past the submit time. Real queue length is useless
	// as a load signal here — workers drain their channels in real time
	// even when callers pile up in virtual time — so backlog is priced in
	// virtual time.
	waitCycles atomic.Uint64
	// serviceCycles accumulates the virtual time workers spent holding
	// requests (dequeue to completion), the tuner's service-time estimate.
	serviceCycles atomic.Uint64
	// seen and callers track the distinct caller timelines that ever
	// submitted to this pool — the tuner's demand estimate. Read-mostly:
	// one store per caller lifetime.
	seen    sync.Map
	callers atomic.Int64

	// Tuner state, guarded by Switchless.tuneMu.
	count      int
	spawned    int
	epoch      int
	quiet      int
	lastServed uint64
	lastFell   uint64
	lastWait   uint64
}

// EpochDecision is one scaling decision of the self-tuning scheduler.
type EpochDecision struct {
	// Pool is "ecall" or "ocall".
	Pool  string `json:"pool"`
	Epoch int    `json:"epoch"`
	// Action is "grow", "shrink" or "hold".
	Action string `json:"action"`
	// Workers is the pool size after the action.
	Workers int `json:"workers"`
	// Served and Fallbacks are this epoch's deltas.
	Served    uint64 `json:"served"`
	Fallbacks uint64 `json:"fallbacks"`
	// AvgWait is the mean virtual time served requests spent queued this
	// epoch, as measured by the workers.
	AvgWait time.Duration `json:"avg_wait_ns"`
	// Callers is the demand estimate: distinct caller timelines seen on
	// this pool so far.
	Callers int `json:"callers"`
	// PredictedWait is the queueing model's per-request wait at the
	// pre-decision worker count — the value the decision was taken on.
	PredictedWait time.Duration `json:"predicted_wait_ns"`
}

// Tuner policy. The measured per-epoch wait is recorded for
// observability but is too lumpy to scale on: which caller timelines hit
// a busy worker within one epoch depends on how the host interleaved the
// goroutines, so thresholding it oscillates. The tuner instead prices a
// deterministic queueing model — C caller timelines sharing W workers of
// mean service time S queue for about (C-W)·S/W per request — and grows
// while that prediction exceeds slGrowWait (or any submit fell back on a
// full queue). It retires a worker only when the model says W-1 workers
// would STILL keep the predicted wait under slGrowWait, after
// slShrinkQuiet consecutive fallback-free epochs: grow and shrink can
// then never disagree about the same worker count, so the pool settles
// instead of oscillating.
const (
	slGrowWait    = 2 * CostSwitchlessWake
	slShrinkQuiet = 2
)

// Switchless manages the worker pools servicing switchless call queues.
type Switchless struct {
	app  *AppEnclave
	urts *URTS

	ecalls *slPool
	ocalls *slPool // nil unless auto mode routes ocalls
	// otab is the raw ocall table the untrusted workers execute from —
	// the real implementations, not a logger's stub table, exactly
	// because switchless ocalls bypass interposition.
	otab *OcallTable
	// routedEcalls/routedOcalls are the names the configuration routes
	// through the queues; immutable after start.
	routedEcalls map[string]bool
	routedOcalls map[string]bool
	auto         bool
	cfg          SwitchlessConfig

	stop     chan struct{}
	stopped  atomic.Bool
	inflight atomic.Int64
	wg       sync.WaitGroup

	// tuneMu serialises scaling decisions and worker spawn/retire; the
	// submit fast path never takes it.
	tuneMu    sync.Mutex
	decisions []EpochDecision
}

// StartSwitchless parks `workers` trusted worker threads inside the
// enclave (each binds one TCS for its lifetime, like sgx_uswitchless) and
// returns the dispatcher. queueDepth bounds in-flight requests; a full
// queue makes Call fall back to the regular transition path. The worker
// count is fixed; see StartSwitchlessAuto for the self-tuning mode.
func (u *URTS) StartSwitchless(app *AppEnclave, workers, queueDepth int) (*Switchless, error) {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = workers * 4
	}
	if app.Enclave().FreeTCS() < workers {
		return nil, fmt.Errorf("sdk: switchless needs %d free TCS, have %d",
			workers, app.Enclave().FreeTCS())
	}
	s := &Switchless{
		app:  app,
		urts: u,
		ecalls: &slPool{
			name:    "ecall",
			trusted: true,
			depth:   queueDepth,
		},
		stop: make(chan struct{}),
	}
	s.ecalls.workers.Store(&[]*slWorker{})
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	for i := 0; i < workers; i++ {
		//sgxperf:allow(heldacross) spawn handshake must run under tuneMu so a concurrent Stop cannot join mid-spawn; the ready channel is answered before the worker parks
		if err := s.growLocked(s.ecalls); err != nil {
			//sgxperf:allow(heldacross) the join must run under tuneMu so no concurrent tune respawns after it; workers exit without taking tuneMu
			s.stopLocked()
			return nil, err
		}
	}
	return s, nil
}

// StartSwitchlessAuto starts the self-tuning runtime from a switchless
// configuration (typically emitted by the static analyzer): the ecall
// pool services cfg.Ecalls, an untrusted pool services cfg.Ocalls
// against otab, and both pools start at MinWorkers and are resized per
// epoch by the scheduler. The runtime installs itself on the enclave so
// in-enclave ocalls to routed names take the queue instead of the
// transition path.
func (u *URTS) StartSwitchlessAuto(app *AppEnclave, cfg SwitchlessConfig, otab *OcallTable) (*Switchless, error) {
	cfg = cfg.withDefaults()
	routedE := make(map[string]bool, len(cfg.Ecalls))
	for _, name := range cfg.Ecalls {
		f, ok := app.iface.Lookup(name)
		if !ok || f.Kind != edl.Ecall || !f.Public {
			continue // only existing public ecalls can run switchless
		}
		routedE[name] = true
	}
	routedO := make(map[string]bool, len(cfg.Ocalls))
	if otab != nil {
		for _, name := range cfg.Ocalls {
			f, ok := app.iface.Lookup(name)
			if !ok || f.Kind != edl.Ocall || len(f.Allow) > 0 || IsSyncOcall(name) {
				// Allow-listed ocalls may re-enter the enclave and sync
				// ocalls block on the caller's identity; neither can run
				// on a detached worker.
				continue
			}
			if f.ID >= len(otab.Funcs) || otab.Funcs[f.ID] == nil {
				continue
			}
			routedO[name] = true
		}
	}
	if app.Enclave().FreeTCS() < cfg.MinWorkers {
		return nil, fmt.Errorf("sdk: switchless needs %d free TCS, have %d",
			cfg.MinWorkers, app.Enclave().FreeTCS())
	}
	s := &Switchless{
		app:  app,
		urts: u,
		ecalls: &slPool{
			name:    "ecall",
			trusted: true,
			depth:   cfg.QueueDepth,
		},
		otab:         otab,
		routedEcalls: routedE,
		routedOcalls: routedO,
		auto:         true,
		cfg:          cfg,
		stop:         make(chan struct{}),
	}
	s.ecalls.workers.Store(&[]*slWorker{})
	if len(routedO) > 0 {
		s.ocalls = &slPool{
			name:  "ocall",
			depth: cfg.QueueDepth,
		}
		s.ocalls.workers.Store(&[]*slWorker{})
	}
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	for _, p := range s.pools() {
		for i := 0; i < cfg.MinWorkers; i++ {
			//sgxperf:allow(heldacross) spawn handshake must run under tuneMu so a concurrent Stop cannot join mid-spawn; the ready channel is answered before the worker parks
			if err := s.growLocked(p); err != nil {
				//sgxperf:allow(heldacross) the join must run under tuneMu so no concurrent tune respawns after it; workers exit without taking tuneMu
				s.stopLocked()
				return nil, err
			}
		}
	}
	if !app.setSwitchless(s) {
		//sgxperf:allow(heldacross) the join must run under tuneMu so no concurrent tune respawns after it; workers exit without taking tuneMu
		s.stopLocked()
		return nil, fmt.Errorf("sdk: enclave %d already has a switchless runtime", app.ID())
	}
	return s, nil
}

func (s *Switchless) pools() []*slPool {
	ps := []*slPool{s.ecalls}
	if s.ocalls != nil {
		ps = append(ps, s.ocalls)
	}
	return ps
}

// growLocked spawns one worker for the pool and publishes it for
// assignment; tuneMu must be held.
func (s *Switchless) growLocked(p *slPool) error {
	if p.trusted && s.app.Enclave().FreeTCS() < 1 {
		return sgx.ErrNoFreeTCS
	}
	ctx := s.urts.machine.NewContext(fmt.Sprintf("switchless-%s-%d", p.name, p.spawned))
	p.spawned++
	w := &slWorker{
		queue:  make(chan *slRequest, p.depth),
		retire: make(chan struct{}),
	}
	ready := make(chan error, 1)
	s.wg.Add(1)
	go s.worker(p, w, ctx, ready)
	if err := <-ready; err != nil {
		return err
	}
	old := *p.workers.Load()
	next := make([]*slWorker, len(old)+1)
	copy(next, old)
	next[len(old)] = w
	p.workers.Store(&next)
	p.count++
	return nil
}

// shrinkLocked retires the most recently spawned worker; tuneMu held.
// The worker is marked retiring and unpublished before its retire signal
// fires, so submitters either miss it or back out and fall back; it then
// serves every request already committed to its queue and exits.
func (s *Switchless) shrinkLocked(p *slPool) {
	old := *p.workers.Load()
	if len(old) == 0 {
		return
	}
	w := old[len(old)-1]
	w.retiring.Store(true)
	next := make([]*slWorker, len(old)-1)
	copy(next, old[:len(old)-1])
	p.workers.Store(&next)
	close(w.retire)
	p.count--
}

// worker services its private queue until stopped or retired. Trusted
// workers enter the enclave once and hold their TCS while parked.
func (s *Switchless) worker(p *slPool, w *slWorker, ctx *sgx.Context, ready chan<- error) {
	defer s.wg.Done()
	var env *Env
	if p.trusted {
		if err := ctx.EEnter(s.app.Enclave()); err != nil {
			ready <- fmt.Errorf("sdk: switchless worker enter: %w", err)
			return
		}
		defer func() { _ = ctx.EExit() }()
		env = &Env{ctx: ctx, app: s.app, urts: s.urts}
	}
	ready <- nil
	for {
		select {
		case <-s.stop:
			w.drainStopped()
			return
		case <-w.retire:
			// Serve the stragglers: any submitter that committed to this
			// queue before the retiring flag was raised (pending counts
			// them) still gets its result.
			for {
				select {
				case <-s.stop:
					w.drainStopped()
					return
				case req := <-w.queue:
					w.pending.Add(-1)
					s.serve(p, w, ctx, env, req)
				default:
					if w.pending.Load() == 0 {
						return
					}
					runtime.Gosched()
				}
			}
		case req := <-w.queue:
			w.pending.Add(-1)
			s.serve(p, w, ctx, env, req)
		}
	}
}

// serve runs one request on its assigned worker and publishes the
// worker's new busy horizon.
func (s *Switchless) serve(p *slPool, w *slWorker, ctx *sgx.Context, env *Env, req *slRequest) {
	// Virtual queue wait: a worker whose clock is already past the submit
	// time was busy when the request arrived. With best-fit assignment
	// this only happens under genuine contention (more caller timelines
	// than workers), which is exactly the signal the tuner wants.
	if now := ctx.Now(); now > req.submitted {
		p.waitCycles.Add(uint64(now - req.submitted))
	}
	// The worker observes the request: its clock advances to at least the
	// submit time plus the queue hand-off.
	ctx.Clock().MergeAtLeast(req.submitted)
	start := ctx.Now()
	ctx.Compute(CostSwitchlessWake)
	var res any
	var err error
	if p.trusted {
		res, err = s.executeEcall(env, req)
	} else {
		res, err = s.executeOcall(ctx, req)
	}
	completed := ctx.Now()
	p.served.Add(1)
	p.serviceCycles.Add(uint64(completed - start))
	w.busyUntil.Store(int64(completed))
	req.done <- slResult{res: res, err: err, completed: completed, worker: ctx.ID()}
}

// drainStopped answers everything left in the worker's queue with
// ErrSwitchlessStopped so no submitter blocks across Stop.
func (w *slWorker) drainStopped() {
	for {
		select {
		case req := <-w.queue:
			w.pending.Add(-1)
			req.done <- slResult{err: ErrSwitchlessStopped}
		default:
			return
		}
	}
}

// noteCaller counts the distinct caller timelines submitting to the
// pool — the tuner's demand estimate. The fast path is a lock-free map
// read; each caller stores exactly once.
//
//sgxperf:hotpath
func (p *slPool) noteCaller(id sgx.ThreadID) {
	if _, ok := p.seen.Load(id); ok {
		return
	}
	if _, loaded := p.seen.LoadOrStore(id, struct{}{}); !loaded {
		p.callers.Add(1)
	}
}

// enqueue assigns the request to a worker and commits it to that
// worker's queue. It reports false when the pool cannot take the request
// (no workers, a full queue, or a racing retirement) and the caller must
// fall back to the regular transition path. Lock-free: the submit path
// is annotated hot.
func (p *slPool) enqueue(req *slRequest) bool {
	ws := *p.workers.Load()
	if len(ws) == 0 {
		return false
	}
	w := pickWorker(ws, req.submitted)
	w.pending.Add(1)
	if w.retiring.Load() {
		// Retirement raced the assignment; the retire drain only waits
		// for submitters it saw commit, so back out and fall back.
		w.pending.Add(-1)
		return false
	}
	select {
	case w.queue <- req:
		return true
	default:
		w.pending.Add(-1)
		return false
	}
}

// pickWorker chooses the worker whose busy horizon best fits the
// request's submit time: the latest horizon at or before it (serving
// there costs no wait, and taking the *latest* such horizon keeps
// idle, far-behind workers free for callers whose own timelines are
// behind), else the earliest horizon (least virtual wait). Assigning by
// virtual time instead of a shared real-time FIFO is what lets the pool
// actually run caller timelines in parallel: it keeps one caller's
// Lamport-merged clock from contaminating every other caller through a
// shared worker.
func pickWorker(ws []*slWorker, submitted vtime.Cycles) *slWorker {
	var fit, min *slWorker
	var fitBusy, minBusy int64
	for _, w := range ws {
		b := w.busyUntil.Load()
		if b <= int64(submitted) && (fit == nil || b > fitBusy) {
			fit, fitBusy = w, b
		}
		if min == nil || b < minBusy {
			min, minBusy = w, b
		}
	}
	if fit != nil {
		return fit
	}
	return min
}

func (s *Switchless) executeEcall(env *Env, req *slRequest) (any, error) {
	decl, ok := s.app.iface.EcallByID(req.callID)
	if !ok {
		return nil, ErrInvalidEcall
	}
	if !decl.Public {
		// Private ecalls require an in-flight ocall context, which a
		// parked worker never has — mirror the SDK and reject.
		return nil, fmt.Errorf("%w: switchless %s", ErrEcallNotAllowed, decl.Name)
	}
	fn, ok := s.app.trustedFn(req.callID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImplementation, decl.Name)
	}
	chargeCopy(env.ctx, req.args, true)
	res, err := fn(env, req.args)
	chargeCopy(env.ctx, req.args, false)
	return res, err
}

// executeOcall runs one routed ocall on an untrusted worker, straight
// from the raw table — no EEXIT, no dispatch, no interposition stubs.
func (s *Switchless) executeOcall(ctx *sgx.Context, req *slRequest) (any, error) {
	if req.callID < 0 || req.callID >= len(s.otab.Funcs) || s.otab.Funcs[req.callID] == nil {
		return nil, fmt.Errorf("%w: id %d has no table entry", ErrInvalidOcall, req.callID)
	}
	return s.otab.Funcs[req.callID](ctx, req.args)
}

// Future is an in-flight asynchronous switchless ecall. A caller may
// submit several futures and collect them in one wait, amortising the
// queue round-trip (the batched transition queues of the IO-intensive
// switchless designs).
type Future struct {
	s      *Switchless
	req    *slRequest
	callID int
	start  vtime.Cycles

	settled  bool
	res      any
	err      error
	worker   sgx.ThreadID
	fallback bool
	emitted  bool
}

// Submit enqueues a switchless ecall without waiting for its result.
// When the queue is full the call runs synchronously over the regular
// transition path (the fallback is already complete when Submit
// returns); Wait still must be called to collect it.
//
//sgxperf:hotpath
func (s *Switchless) Submit(ctx *sgx.Context, callID int, otab *OcallTable, args any) (*Future, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.stopped.Load() {
		return nil, ErrSwitchlessStopped
	}
	p := s.ecalls
	p.noteCaller(ctx.ID())
	ctx.Compute(CostSwitchlessSubmit)
	f := &Future{s: s, callID: callID, start: ctx.Now()}
	req := &slRequest{callID: callID, args: args, submitted: f.start, done: make(chan slResult, 1)}
	if p.enqueue(req) {
		f.req = req
	} else {
		// Full queue (or a racing retirement): fall back to a regular
		// transition.
		p.fellBack.Add(1)
		f.res, f.err = s.urts.Ecall(ctx, s.app.ID(), callID, otab, args)
		f.settled, f.fallback = true, true
	}
	if n := p.calls.Add(1); s.auto && n%uint64(s.cfg.EpochCalls) == 0 {
		s.tune(ctx, p)
	}
	return f, nil
}

// Wait collects the future's result, advancing the caller's clock to the
// completion time and charging the collect cost.
//
//sgxperf:hotpath
func (f *Future) Wait(ctx *sgx.Context) (any, error) {
	return f.wait(ctx, true)
}

func (f *Future) wait(ctx *sgx.Context, charge bool) (any, error) {
	if !f.settled {
		result := <-f.req.done
		// The caller waited (spinning on the response flag) until the
		// worker finished: its clock advances to the completion time.
		ctx.Clock().MergeAtLeast(result.completed)
		f.res, f.err, f.worker = result.res, result.err, result.worker
		f.settled = true
	}
	if charge {
		ctx.Compute(CostSwitchlessSubmit)
	}
	if !f.emitted {
		f.emitted = true
		f.s.emitEcall(ctx, f)
	}
	return f.res, f.err
}

// Call issues a switchless ecall: enqueue, wait, merge clocks. When the
// queue is full or the workers are stopped it falls back to the regular
// transition path, exactly like Intel's switchless runtime.
//
//sgxperf:hotpath
func (s *Switchless) Call(ctx *sgx.Context, callID int, otab *OcallTable, args any) (any, error) {
	f, err := s.Submit(ctx, callID, otab, args)
	if err != nil {
		return nil, err
	}
	return f.Wait(ctx)
}

// CallBatch submits every call before collecting any result, so the N
// queue round-trips overlap and the collect cost is charged once.
func (s *Switchless) CallBatch(ctx *sgx.Context, otab *OcallTable, calls []BatchCall) ([]BatchResult, error) {
	futures := make([]*Future, len(calls))
	for i, c := range calls {
		f, err := s.Submit(ctx, c.CallID, otab, c.Args)
		if err != nil {
			return nil, err
		}
		futures[i] = f
	}
	out := make([]BatchResult, len(calls))
	for i, f := range futures {
		res, err := f.wait(ctx, false)
		out[i] = BatchResult{Res: res, Err: err}
	}
	ctx.Compute(CostSwitchlessSubmit)
	return out, nil
}

// BatchCall is one entry of a CallBatch.
type BatchCall struct {
	CallID int
	Args   any
}

// BatchResult is one result of a CallBatch.
type BatchResult struct {
	Res any
	Err error
}

// ocallSwitchless routes an in-enclave ocall through the untrusted
// worker pool. handled=false means the caller must take the regular
// transition path (name not routed, queue full, or runtime stopped).
//
//sgxperf:hotpath
func (s *Switchless) ocallSwitchless(ctx *sgx.Context, decl *edl.Func, args any) (res any, err error, handled bool) {
	if s.ocalls == nil || !s.routedOcalls[decl.Name] {
		return nil, nil, false
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.stopped.Load() {
		return nil, nil, false
	}
	p := s.ocalls
	p.noteCaller(ctx.ID())
	ctx.Compute(CostSwitchlessSubmit)
	start := ctx.Now()
	// The caller marshals the arguments into the shared request area —
	// the copy cost stays, only the transition disappears.
	chargeCopy(ctx, args, true)
	req := &slRequest{callID: decl.ID, args: args, submitted: ctx.Now(), done: make(chan slResult, 1)}
	if !p.enqueue(req) {
		p.fellBack.Add(1)
		s.emit(SwitchlessRecord{
			Enclave: s.app.ID(), Caller: ctx.ID(), CallID: decl.ID, Name: decl.Name,
			Start: start, End: ctx.Now(), Fallback: true,
		})
		return nil, nil, false
	}
	if n := p.calls.Add(1); s.auto && n%uint64(s.cfg.EpochCalls) == 0 {
		s.tune(ctx, p)
	}
	result := <-req.done
	ctx.Clock().MergeAtLeast(result.completed)
	ctx.Compute(CostSwitchlessSubmit)
	chargeCopy(ctx, args, false)
	if errors.Is(result.err, ErrSwitchlessStopped) {
		// Stopped while queued: let the regular path run the call.
		return nil, nil, false
	}
	s.emit(SwitchlessRecord{
		Enclave: s.app.ID(), Caller: ctx.ID(), CallID: decl.ID, Name: decl.Name,
		Start: start, End: ctx.Now(), Worker: result.worker, Err: result.err != nil,
	})
	return result.res, result.err, true
}

// emitEcall reports one collected ecall future to the observer.
//
//sgxperf:hotpath
func (s *Switchless) emitEcall(ctx *sgx.Context, f *Future) {
	obs := s.urts.switchlessObserver()
	if obs == nil {
		return
	}
	name := ""
	if decl, ok := s.app.iface.EcallByID(f.callID); ok {
		name = decl.Name
	}
	obs(SwitchlessRecord{
		Ecall: true, Enclave: s.app.ID(), Caller: ctx.ID(), CallID: f.callID, Name: name,
		Start: f.start, End: ctx.Now(), Worker: f.worker, Fallback: f.fallback,
		Err: f.err != nil,
	})
}

//sgxperf:hotpath
func (s *Switchless) emit(rec SwitchlessRecord) {
	if obs := s.urts.switchlessObserver(); obs != nil {
		obs(rec)
	}
}

// RoutesEcall reports whether the configuration routes the named ecall
// through the switchless queue.
func (s *Switchless) RoutesEcall(name string) bool { return s.routedEcalls[name] }

// RoutesOcall reports whether the configuration routes the named ocall
// through the untrusted worker pool.
func (s *Switchless) RoutesOcall(name string) bool { return s.routedOcalls[name] }

// tune runs one epoch of the scaling scheduler for a pool: grow on
// fallbacks or a predicted queue wait over the threshold, retire a
// worker when one fewer would still keep the prediction under it (see
// the policy comment at slGrowWait). The decision cost is charged to the
// caller that tripped the epoch, in virtual time.
func (s *Switchless) tune(ctx *sgx.Context, p *slPool) {
	ctx.Compute(CostSwitchlessTune)
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	if s.stopped.Load() {
		return
	}
	p.epoch++
	served, fell, wait := p.served.Load(), p.fellBack.Load(), p.waitCycles.Load()
	dServed, dFell := served-p.lastServed, fell-p.lastFell
	dWait := wait - p.lastWait
	p.lastServed, p.lastFell, p.lastWait = served, fell, wait
	freq := ctx.Clock().Frequency()
	var avgWait time.Duration
	if dServed > 0 {
		avgWait = freq.Duration(vtime.Cycles(dWait / dServed))
	}

	// The queueing model: C caller timelines sharing w workers of mean
	// service time svc each queue for about (C-w)·svc/w per request.
	callers := int(p.callers.Load())
	var svc vtime.Cycles
	if served > 0 {
		svc = vtime.Cycles(p.serviceCycles.Load() / served)
	}
	predict := func(w int) vtime.Cycles {
		if w <= 0 || callers <= w {
			return 0
		}
		return vtime.Cycles(callers-w) * svc / vtime.Cycles(w)
	}
	growThresh := freq.Cycles(slGrowWait)
	pred := predict(p.count)

	action := "hold"
	switch {
	case (dFell > 0 || pred > growThresh) && p.count < s.cfg.MaxWorkers:
		//sgxperf:allow(heldacross) spawn handshake must run under tuneMu so a concurrent Stop cannot join mid-spawn; the ready channel is answered before the worker parks
		if s.growLocked(p) == nil {
			action = "grow"
		}
		p.quiet = 0
	case dFell == 0 && predict(p.count-1) <= growThresh && p.count > s.cfg.MinWorkers:
		p.quiet++
		if p.quiet >= slShrinkQuiet {
			s.shrinkLocked(p)
			action = "shrink"
			p.quiet = 0
		}
	default:
		p.quiet = 0
	}
	s.decisions = append(s.decisions, EpochDecision{
		Pool: p.name, Epoch: p.epoch, Action: action, Workers: p.count,
		Served: dServed, Fallbacks: dFell, AvgWait: avgWait,
		Callers: callers, PredictedWait: freq.Duration(pred),
	})
}

// Decisions returns a copy of every scaling decision taken so far.
func (s *Switchless) Decisions() []EpochDecision {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	out := make([]EpochDecision, len(s.decisions))
	copy(out, s.decisions)
	return out
}

// Workers returns the current ecall- and ocall-pool worker counts.
func (s *Switchless) Workers() (ecall, ocall int) {
	s.tuneMu.Lock()
	defer s.tuneMu.Unlock()
	ecall = s.ecalls.count
	if s.ocalls != nil {
		ocall = s.ocalls.count
	}
	return ecall, ocall
}

// Config returns the effective configuration (defaults applied); zero
// for the fixed-worker mode.
func (s *Switchless) Config() SwitchlessConfig { return s.cfg }

// Stats reports how many calls ran switchless and how many fell back,
// summed over both directions.
func (s *Switchless) Stats() (served, fellBack uint64) {
	for _, p := range s.pools() {
		served += p.served.Load()
		fellBack += p.fellBack.Load()
	}
	return served, fellBack
}

// Stop drains the workers: they EEXIT, release their TCSs and terminate.
// In-flight calls complete; subsequent Calls return ErrSwitchlessStopped.
func (s *Switchless) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.tuneMu.Lock()
	//sgxperf:allow(heldacross) the join must run under tuneMu so no concurrent tune spawns a worker after it begins; workers exit without taking tuneMu
	s.stopLocked()
	s.tuneMu.Unlock()
	if s.auto {
		s.app.clearSwitchless(s)
	}
	// Answer any request that slipped into a queue after the workers
	// left, so no caller blocks forever. A submitter that passed the
	// stopped check races the drain, so spin until none is in flight.
	for {
		s.drainQueues()
		if s.inflight.Load() == 0 {
			break
		}
		runtime.Gosched()
	}
	s.drainQueues()
}

// stopLocked closes the stop channel (once) and joins the workers;
// tuneMu must be held so no concurrent tune spawns a worker after the
// join begins.
func (s *Switchless) stopLocked() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
	for _, p := range s.pools() {
		p.count = 0
	}
}

// drainQueues answers stragglers that were committed to a worker queue
// after that worker's own stop drain ran. The retired workers' queues
// need no sweep: the retiring flag turns submitters away before the
// worker's final drain.
func (s *Switchless) drainQueues() {
	for _, p := range s.pools() {
		for _, w := range *p.workers.Load() {
			w.drainStopped()
		}
	}
}
