package sdk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Switchless calls are the transition-elimination technique of SCONE,
// HotCalls and Eleos that the paper discusses as the alternative to a
// better interface (§2.3, §6) and that Intel later shipped as
// "switchless calls": worker threads parked *inside* the enclave service
// ecall requests from a shared queue, so a short call costs a queue
// round-trip (~hundreds of ns) instead of an EENTER/EEXIT round trip
// (~2–5 µs).
//
// This implementation mirrors Intel's semantics: only public ecalls may
// run switchless, requests fall back to the regular sgx_ecall path when
// no worker is available, and the workers hold a TCS each for their whole
// lifetime.
//
// Observability note: switchless calls do NOT pass through sgx_ecall, so
// an attached sgx-perf logger records neither them nor their durations —
// only their fallback calls and any ocalls the trusted code issues. This
// blind spot is inherent to interposition-based tooling and is one more
// reason the paper's authors prefer fixing the interface over hiding the
// transitions.

// Switchless queue costs.
const (
	// CostSwitchlessSubmit is the caller-side enqueue + signal cost.
	CostSwitchlessSubmit = 150 * time.Nanosecond
	// CostSwitchlessWake is the worker-side dequeue cost per request.
	CostSwitchlessWake = 200 * time.Nanosecond
)

// ErrSwitchlessStopped is returned by Call after Stop.
var ErrSwitchlessStopped = errors.New("sdk: switchless workers stopped")

// slRequest is one queued switchless ecall.
type slRequest struct {
	callID int
	args   any
	// submitted is the caller's virtual time at enqueue.
	submitted vtime.Cycles
	done      chan slResult
}

type slResult struct {
	res any
	err error
	// completed is the worker's virtual time when the call finished.
	completed vtime.Cycles
}

// Switchless manages in-enclave worker threads servicing an ecall queue.
type Switchless struct {
	app   *AppEnclave
	urts  *URTS
	queue chan *slRequest

	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	stopped  bool
	served   uint64
	fellBack uint64
}

// StartSwitchless parks `workers` trusted worker threads inside the
// enclave (each binds one TCS for its lifetime, like sgx_uswitchless) and
// returns the dispatcher. queueDepth bounds in-flight requests; a full
// queue makes Call fall back to the regular transition path.
func (u *URTS) StartSwitchless(app *AppEnclave, workers, queueDepth int) (*Switchless, error) {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = workers * 4
	}
	if app.Enclave().FreeTCS() < workers {
		return nil, fmt.Errorf("sdk: switchless needs %d free TCS, have %d",
			workers, app.Enclave().FreeTCS())
	}
	s := &Switchless{
		app:   app,
		urts:  u,
		queue: make(chan *slRequest, queueDepth),
		stop:  make(chan struct{}),
	}
	ready := make(chan error, workers)
	for i := 0; i < workers; i++ {
		ctx := u.machine.NewContext(fmt.Sprintf("switchless-%d", i))
		s.wg.Add(1)
		go s.worker(ctx, ready)
	}
	for i := 0; i < workers; i++ {
		if err := <-ready; err != nil {
			close(s.stop)
			s.wg.Wait()
			return nil, err
		}
	}
	return s, nil
}

// worker enters the enclave once and services requests until stopped.
func (s *Switchless) worker(ctx *sgx.Context, ready chan<- error) {
	defer s.wg.Done()
	if err := ctx.EEnter(s.app.Enclave()); err != nil {
		ready <- fmt.Errorf("sdk: switchless worker enter: %w", err)
		return
	}
	ready <- nil
	defer func() { _ = ctx.EExit() }()

	env := &Env{ctx: ctx, app: s.app, urts: s.urts}
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.queue:
			// The worker observes the request: its clock advances to at
			// least the submit time plus the queue hand-off.
			ctx.Clock().MergeAtLeast(req.submitted)
			ctx.Compute(CostSwitchlessWake)
			res, err := s.execute(env, req)
			req.done <- slResult{res: res, err: err, completed: ctx.Now()}
		}
	}
}

func (s *Switchless) execute(env *Env, req *slRequest) (any, error) {
	decl, ok := s.app.iface.EcallByID(req.callID)
	if !ok {
		return nil, ErrInvalidEcall
	}
	if !decl.Public {
		// Private ecalls require an in-flight ocall context, which a
		// parked worker never has — mirror the SDK and reject.
		return nil, fmt.Errorf("%w: switchless %s", ErrEcallNotAllowed, decl.Name)
	}
	fn, ok := s.app.trustedFn(req.callID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImplementation, decl.Name)
	}
	chargeCopy(env.ctx, req.args, true)
	res, err := fn(env, req.args)
	chargeCopy(env.ctx, req.args, false)
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	return res, err
}

// Call issues a switchless ecall: enqueue, wait, merge clocks. When the
// queue is full or the workers are stopped it falls back to the regular
// transition path, exactly like Intel's switchless runtime.
func (s *Switchless) Call(ctx *sgx.Context, callID int, otab *OcallTable, args any) (any, error) {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return nil, ErrSwitchlessStopped
	}
	ctx.Compute(CostSwitchlessSubmit)
	req := &slRequest{
		callID:    callID,
		args:      args,
		submitted: ctx.Now(),
		done:      make(chan slResult, 1),
	}
	select {
	case s.queue <- req:
	default:
		// Queue full: fall back to a regular transition.
		s.mu.Lock()
		s.fellBack++
		s.mu.Unlock()
		return s.urts.Ecall(ctx, s.app.ID(), callID, otab, args)
	}
	result := <-req.done
	// The caller waited (spinning on the response flag) until the worker
	// finished: its clock advances to the completion time.
	ctx.Clock().MergeAtLeast(result.completed)
	ctx.Compute(CostSwitchlessSubmit)
	return result.res, result.err
}

// Stats reports how many calls ran switchless and how many fell back.
func (s *Switchless) Stats() (served, fellBack uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.fellBack
}

// Stop drains the workers: they EEXIT, release their TCSs and terminate.
// In-flight calls complete; subsequent Calls return ErrSwitchlessStopped.
func (s *Switchless) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	// Answer any request that slipped into the queue after the workers
	// left, so no caller blocks forever.
	for {
		select {
		case req := <-s.queue:
			req.done <- slResult{err: ErrSwitchlessStopped}
		default:
			return
		}
	}
}
