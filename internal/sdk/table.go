package sdk

import (
	"fmt"

	"sgxperf/internal/edl"
	"sgxperf/internal/sgx"
)

// OcallFn is one untrusted ocall implementation. It runs outside the
// enclave on the calling thread.
type OcallFn func(ctx *sgx.Context, args any) (any, error)

// OcallTable maps ocall IDs to untrusted implementations. The generated
// wrapper code passes a pointer to this table into sgx_ecall; the URTS
// saves the pointer and the TRTS dispatches ocalls through it. Because the
// table is injected at runtime, a preloaded tool can substitute its own
// stub table — exactly the mechanism sgx-perf uses to trace ocalls
// (Fig. 3).
type OcallTable struct {
	// Funcs is indexed by ocall ID.
	Funcs []OcallFn
	// Names mirrors Funcs with the declared ocall names (diagnostics).
	Names []string
}

// BuildOcallTable assembles the table for an interface from named
// implementations. Every declared ocall needs an implementation, except
// the four SDK synchronisation ocalls, which the URTS provides itself
// (they are added to the interface by WithSyncOcalls).
func BuildOcallTable(iface *edl.Interface, u *URTS, impls map[string]OcallFn) (*OcallTable, error) {
	ocalls := iface.Ocalls()
	t := &OcallTable{
		Funcs: make([]OcallFn, len(ocalls)),
		Names: make([]string, len(ocalls)),
	}
	for _, o := range ocalls {
		fn, ok := impls[o.Name]
		if !ok {
			fn = u.syncOcallImpl(o.Name)
			if fn == nil {
				return nil, fmt.Errorf("sdk: no implementation for ocall %q", o.Name)
			}
		}
		t.Funcs[o.ID] = fn
		t.Names[o.ID] = o.Name
	}
	return t, nil
}

// Sync ocall names, matching the Intel SDK's sgx_tstdc.edl (§4.1.3).
const (
	OcallThreadWait        = "sgx_thread_wait_untrusted_event_ocall"
	OcallThreadSet         = "sgx_thread_set_untrusted_event_ocall"
	OcallThreadSetMultiple = "sgx_thread_set_multiple_untrusted_events_ocall"
	OcallThreadSetWait     = "sgx_thread_setwait_untrusted_events_ocall"
)

// SyncOcallNames lists the four SDK synchronisation ocalls in the order
// the paper describes them: sleep, wake one, wake multiple, wake one and
// sleep.
func SyncOcallNames() []string {
	return []string{OcallThreadWait, OcallThreadSet, OcallThreadSetMultiple, OcallThreadSetWait}
}

// IsSyncOcall reports whether name is one of the four SDK sync ocalls.
func IsSyncOcall(name string) bool {
	switch name {
	case OcallThreadWait, OcallThreadSet, OcallThreadSetMultiple, OcallThreadSetWait:
		return true
	}
	return false
}

// WithSyncOcalls appends the four SDK synchronisation ocalls to an
// interface if they are not already declared, as linking sgx_tstdc does.
func WithSyncOcalls(iface *edl.Interface) (*edl.Interface, error) {
	for _, name := range SyncOcallNames() {
		if _, ok := iface.Lookup(name); ok {
			continue
		}
		if _, err := iface.AddOcall(name, nil, edl.Param{Name: "target", Dir: edl.DirValue}); err != nil {
			return nil, fmt.Errorf("sdk: declare %s: %w", name, err)
		}
	}
	return iface, nil
}

// Arguments of the sync ocalls.
type (
	// WaitEventArgs puts the calling thread to sleep until its event is
	// set.
	WaitEventArgs struct{ Self sgx.ThreadID }
	// SetEventArgs wakes one thread.
	SetEventArgs struct{ Target sgx.ThreadID }
	// SetMultipleEventArgs wakes several threads.
	SetMultipleEventArgs struct{ Targets []sgx.ThreadID }
	// SetWaitEventArgs wakes one thread and puts the caller to sleep.
	SetWaitEventArgs struct {
		Target sgx.ThreadID
		Self   sgx.ThreadID
	}
)
