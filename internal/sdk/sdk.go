package sdk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Errors mirroring SDK status codes.
var (
	// ErrInvalidEnclave is returned for unknown enclave IDs.
	ErrInvalidEnclave = errors.New("sdk: invalid enclave id")
	// ErrInvalidEcall is returned for out-of-range ecall IDs.
	ErrInvalidEcall = errors.New("sdk: invalid ecall id")
	// ErrEcallNotAllowed mirrors SGX_ERROR_ECALL_NOT_ALLOWED: a private
	// ecall issued outside an ocall, or an ecall not in the in-flight
	// ocall's allow list (§3.6).
	ErrEcallNotAllowed = errors.New("sdk: ecall not allowed")
	// ErrInvalidOcall is returned for undeclared ocalls.
	ErrInvalidOcall = errors.New("sdk: invalid ocall")
	// ErrNoImplementation is returned when the enclave image lacks the
	// requested ecall.
	ErrNoImplementation = errors.New("sdk: ecall has no implementation")
)

// TrustedFn is one in-enclave ecall implementation.
type TrustedFn func(env *Env, args any) (any, error)

// EcallFn is the signature of the sgx_ecall symbol: the single URTS entry
// point all generated ecall wrappers call (Fig. 1). Tools shadow exactly
// this symbol to trace ecalls (Fig. 2).
type EcallFn func(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *OcallTable, args any) (any, error)

// Copied lets call arguments declare how many bytes the TRTS copies across
// the enclave boundary for [in]/[out] parameters, so marshalling cost is
// charged faithfully.
type Copied interface {
	CopyInBytes() int
	CopyOutBytes() int
}

// AppEnclave is the URTS-side state of one created enclave: the hardware
// enclave, its declared interface, the trusted code image, and the saved
// ocall-table pointer.
type AppEnclave struct {
	enc   *sgx.Enclave
	iface *edl.Interface
	urts  *URTS

	// trusted is immutable after CreateEnclave, so ecall dispatch reads it
	// without synchronisation.
	trusted []TrustedFn
	// savedTable is the last ocall table passed to sgx_ecall — the
	// injection point for the logger's stub table (Fig. 3). Atomic: every
	// ecall saves it and the logger swaps it concurrently.
	savedTable atomic.Pointer[OcallTable]
	// sl is the active auto-configured switchless runtime, if any; the
	// TRTS ocall path consults it to route configured ocalls through the
	// untrusted worker pool instead of the transition path.
	sl atomic.Pointer[Switchless]
}

// Enclave returns the underlying hardware enclave.
func (a *AppEnclave) Enclave() *sgx.Enclave { return a.enc }

// ID returns the enclave ID.
func (a *AppEnclave) ID() sgx.EnclaveID { return a.enc.ID }

// Interface returns the enclave's declared EDL interface.
func (a *AppEnclave) Interface() *edl.Interface { return a.iface }

func (a *AppEnclave) saveTable(t *OcallTable) { a.savedTable.Store(t) }

func (a *AppEnclave) table() *OcallTable { return a.savedTable.Load() }

func (a *AppEnclave) setSwitchless(s *Switchless) bool { return a.sl.CompareAndSwap(nil, s) }

func (a *AppEnclave) clearSwitchless(s *Switchless) { a.sl.CompareAndSwap(s, nil) }

// Switchless returns the enclave's active auto-configured switchless
// runtime, or nil.
func (a *AppEnclave) Switchless() *Switchless { return a.sl.Load() }

func (a *AppEnclave) trustedFn(id int) (TrustedFn, bool) {
	if id < 0 || id >= len(a.trusted) {
		return nil, false
	}
	return a.trusted[id], a.trusted[id] != nil
}

// uevent is the untrusted per-thread event object the sync ocalls block
// on: a binary semaphore plus a clock sync point for causality.
type uevent struct {
	ch    chan struct{}
	point vtime.SyncPoint
}

func newUevent() *uevent {
	return &uevent{ch: make(chan struct{}, 1)}
}

func (e *uevent) set(now vtime.Cycles) {
	e.point.Publish(now)
	select {
	case e.ch <- struct{}{}:
	default: // already set; events are binary
	}
}

func (e *uevent) wait(ctx *sgx.Context) {
	<-e.ch
	e.point.Observe(ctx.Clock())
}

// URTS is the untrusted runtime system: the enclave registry and the real
// implementation of sgx_ecall. Its registries are sync.Maps: every ecall
// consults them, and a shared mutex would serialise otherwise-independent
// threads (§4.1 wants the probe path contention-free).
type URTS struct {
	machine *sgx.Machine
	driver  *kernel.Driver

	// enclaves maps sgx.EnclaveID → *AppEnclave.
	enclaves sync.Map
	// lastEnclave is a one-entry cache in front of enclaves: workloads
	// overwhelmingly ecall into one enclave, so the common lookup is one
	// atomic load and an ID compare instead of a hashed map access.
	lastEnclave atomic.Pointer[AppEnclave]
	// events maps sgx.ThreadID → *uevent. It stays a shared map because
	// wake ocalls signal other threads' events.
	events sync.Map
	// inflightKey is the TLS slot holding each thread's *ocallStack: the
	// stack of ocall names currently executing on that thread, which the
	// TRTS consults to enforce allow lists. Thread-local storage makes the
	// per-ecall consult lock- and hash-free.
	inflightKey sgx.TLSKey

	// slObserver is the registered switchless observer, if any: the
	// cooperative visibility hook the switchless runtime reports every
	// served call and fallback through, since those calls bypass the
	// interposable sgx_ecall / ocall-table paths entirely.
	slObserver atomic.Pointer[SwitchlessObserver]

	// Dispatch costs pre-converted to cycles at construction (the machine
	// frequency is fixed), sparing a float conversion on every call.
	urtsDispatchCycles  vtime.Cycles
	trtsDispatchCycles  vtime.Cycles
	ocallDispatchCycles vtime.Cycles
}

// ocallStack is one thread's in-flight ocall-name stack, stored in the
// thread's TLS slot and only ever accessed by its owner.
type ocallStack struct {
	names []string
}

// NewURTS creates the runtime for a machine+driver pair.
func NewURTS(m *sgx.Machine, d *kernel.Driver) *URTS {
	freq := m.Cost().Frequency
	return &URTS{
		machine:             m,
		driver:              d,
		inflightKey:         sgx.NewTLSKey(),
		urtsDispatchCycles:  freq.Cycles(CostURTSDispatch),
		trtsDispatchCycles:  freq.Cycles(CostTRTSDispatch),
		ocallDispatchCycles: freq.Cycles(CostOcallDispatch),
	}
}

// Library exposes the URTS as a shared library defining the sgx_ecall
// symbol, so applications resolve it through the loader and preloaded
// tools can shadow it.
func (u *URTS) Library() *loader.Library {
	return loader.NewLibrary("libsgx_urts").Define(loader.SymSGXEcall, EcallFn(u.Ecall))
}

// CreateEnclave builds the enclave through the kernel driver and registers
// its trusted image. The interface is extended with the SDK sync ocalls
// (as linking sgx_tstdc does) and validated.
func (u *URTS) CreateEnclave(ctx *sgx.Context, cfg sgx.Config, iface *edl.Interface, impl map[string]TrustedFn) (*AppEnclave, error) {
	if _, err := WithSyncOcalls(iface); err != nil {
		return nil, err
	}
	if _, err := iface.Validate(); err != nil {
		return nil, fmt.Errorf("sdk: interface: %w", err)
	}
	for name := range impl {
		f, ok := iface.Lookup(name)
		if !ok || f.Kind != edl.Ecall {
			return nil, fmt.Errorf("sdk: implementation for undeclared ecall %q", name)
		}
	}
	enc, err := u.driver.CreateEnclave(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("sdk: create enclave: %w", err)
	}
	app := &AppEnclave{
		enc:     enc,
		iface:   iface,
		urts:    u,
		trusted: make([]TrustedFn, len(iface.Ecalls())),
	}
	for name, fn := range impl {
		f, _ := iface.Lookup(name)
		app.trusted[f.ID] = fn
	}
	u.enclaves.Store(enc.ID, app)
	return app, nil
}

// DestroyEnclave tears the enclave down.
func (u *URTS) DestroyEnclave(app *AppEnclave) {
	u.enclaves.Delete(app.enc.ID)
	u.lastEnclave.CompareAndSwap(app, nil)
	u.driver.DestroyEnclave(app.enc)
}

// AppEnclaveFor returns the registered enclave state for an ID.
func (u *URTS) AppEnclaveFor(eid sgx.EnclaveID) (*AppEnclave, bool) {
	if a := u.lastEnclave.Load(); a != nil && a.enc.ID == eid {
		return a, true
	}
	v, ok := u.enclaves.Load(eid)
	if !ok {
		return nil, false
	}
	a := v.(*AppEnclave)
	u.lastEnclave.Store(a)
	return a, true
}

// Machine returns the machine this runtime drives.
func (u *URTS) Machine() *sgx.Machine { return u.machine }

// SetSwitchlessObserver registers fn to receive one record per
// switchless call (served or fallback); nil unregisters. A preloaded
// logger installs its trace emitter here at attach time.
func (u *URTS) SetSwitchlessObserver(fn SwitchlessObserver) {
	if fn == nil {
		u.slObserver.Store(nil)
		return
	}
	u.slObserver.Store(&fn)
}

//sgxperf:hotpath
func (u *URTS) switchlessObserver() SwitchlessObserver {
	if p := u.slObserver.Load(); p != nil {
		return *p
	}
	return nil
}

func (u *URTS) eventFor(tid sgx.ThreadID) *uevent {
	if v, ok := u.events.Load(tid); ok {
		return v.(*uevent)
	}
	v, _ := u.events.LoadOrStore(tid, newUevent())
	return v.(*uevent)
}

// ocallStackFor returns the thread's in-flight stack from its TLS slot,
// creating it on first use.
func (u *URTS) ocallStackFor(ctx *sgx.Context) *ocallStack {
	if v := ctx.TLSGet(u.inflightKey); v != nil {
		return v.(*ocallStack)
	}
	s := &ocallStack{}
	ctx.TLSSet(u.inflightKey, s)
	return s
}

func (u *URTS) pushOcall(ctx *sgx.Context, name string) {
	s := u.ocallStackFor(ctx)
	s.names = append(s.names, name)
}

func (u *URTS) popOcall(ctx *sgx.Context) {
	s := u.ocallStackFor(ctx)
	if len(s.names) > 0 {
		s.names = s.names[:len(s.names)-1]
	}
}

// currentOcall returns the innermost in-flight ocall on the thread, if
// any.
func (u *URTS) currentOcall(ctx *sgx.Context) (string, bool) {
	s := u.ocallStackFor(ctx)
	if len(s.names) == 0 {
		return "", false
	}
	return s.names[len(s.names)-1], true
}

// Ecall is the real sgx_ecall: the single entry point for all ecalls. It
// saves the ocall table, charges URTS dispatch, enters the enclave, and
// runs the TRTS trampoline which dispatches to the trusted function.
func (u *URTS) Ecall(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *OcallTable, args any) (any, error) {
	app, ok := u.AppEnclaveFor(eid)
	if !ok {
		return nil, ErrInvalidEnclave
	}
	decl, ok := app.iface.EcallByID(callID)
	if !ok {
		return nil, ErrInvalidEcall
	}
	ctx.ComputeCycles(u.urtsDispatchCycles)
	if otab != nil {
		app.saveTable(otab)
	}

	// Interface enforcement (§3.6): outside any ocall only public ecalls
	// may run; during an ocall the ecall must be in that ocall's allow
	// list (the SDK triggers an error for forgotten combinations).
	if cur, in := u.currentOcall(ctx); in {
		if !app.iface.Allowed(cur, decl.Name) {
			return nil, fmt.Errorf("%w: %s during ocall %s", ErrEcallNotAllowed, decl.Name, cur)
		}
	} else if !decl.Public {
		return nil, fmt.Errorf("%w: private ecall %s outside an ocall", ErrEcallNotAllowed, decl.Name)
	}

	fn, ok := app.trustedFn(callID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImplementation, decl.Name)
	}
	if err := ctx.EEnter(app.enc); err != nil {
		return nil, fmt.Errorf("sdk: eenter: %w", err)
	}
	// TRTS trampoline: resolve the ID, charge dispatch, copy [in] buffers.
	ctx.ComputeCycles(u.trtsDispatchCycles)
	chargeCopy(ctx, args, true)
	env := &Env{ctx: ctx, app: app, urts: u}
	res, err := fn(env, args)
	chargeCopy(ctx, args, false)
	if exitErr := ctx.EExit(); exitErr != nil && err == nil {
		err = fmt.Errorf("sdk: eexit: %w", exitErr)
	}
	return res, err
}

// chargeCopy prices boundary copies for arguments implementing Copied.
func chargeCopy(ctx *sgx.Context, args any, in bool) {
	c, ok := args.(Copied)
	if !ok {
		return
	}
	n := c.CopyOutBytes()
	if in {
		n = c.CopyInBytes()
	}
	if n <= 0 {
		return
	}
	ctx.Compute(CostCopyPerKiB * time.Duration((n+1023)/1024))
}

// syncOcallImpl returns the URTS-provided implementation of an SDK sync
// ocall, or nil for other names.
func (u *URTS) syncOcallImpl(name string) OcallFn {
	switch name {
	case OcallThreadWait:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(WaitEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadWait, args)
			}
			u.eventFor(a.Self).wait(ctx)
			return nil, nil
		}
	case OcallThreadSet:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSet, args)
			}
			u.eventFor(a.Target).set(ctx.Now())
			return nil, nil
		}
	case OcallThreadSetMultiple:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetMultipleEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSetMultiple, args)
			}
			for _, t := range a.Targets {
				u.eventFor(t).set(ctx.Now())
			}
			return nil, nil
		}
	case OcallThreadSetWait:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetWaitEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSetWait, args)
			}
			u.eventFor(a.Target).set(ctx.Now())
			u.eventFor(a.Self).wait(ctx)
			return nil, nil
		}
	}
	return nil
}
