package sdk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Errors mirroring SDK status codes.
var (
	// ErrInvalidEnclave is returned for unknown enclave IDs.
	ErrInvalidEnclave = errors.New("sdk: invalid enclave id")
	// ErrInvalidEcall is returned for out-of-range ecall IDs.
	ErrInvalidEcall = errors.New("sdk: invalid ecall id")
	// ErrEcallNotAllowed mirrors SGX_ERROR_ECALL_NOT_ALLOWED: a private
	// ecall issued outside an ocall, or an ecall not in the in-flight
	// ocall's allow list (§3.6).
	ErrEcallNotAllowed = errors.New("sdk: ecall not allowed")
	// ErrInvalidOcall is returned for undeclared ocalls.
	ErrInvalidOcall = errors.New("sdk: invalid ocall")
	// ErrNoImplementation is returned when the enclave image lacks the
	// requested ecall.
	ErrNoImplementation = errors.New("sdk: ecall has no implementation")
)

// TrustedFn is one in-enclave ecall implementation.
type TrustedFn func(env *Env, args any) (any, error)

// EcallFn is the signature of the sgx_ecall symbol: the single URTS entry
// point all generated ecall wrappers call (Fig. 1). Tools shadow exactly
// this symbol to trace ecalls (Fig. 2).
type EcallFn func(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *OcallTable, args any) (any, error)

// Copied lets call arguments declare how many bytes the TRTS copies across
// the enclave boundary for [in]/[out] parameters, so marshalling cost is
// charged faithfully.
type Copied interface {
	CopyInBytes() int
	CopyOutBytes() int
}

// AppEnclave is the URTS-side state of one created enclave: the hardware
// enclave, its declared interface, the trusted code image, and the saved
// ocall-table pointer.
type AppEnclave struct {
	enc   *sgx.Enclave
	iface *edl.Interface
	urts  *URTS

	mu      sync.Mutex
	trusted []TrustedFn
	// savedTable is the last ocall table passed to sgx_ecall — the
	// injection point for the logger's stub table (Fig. 3).
	savedTable *OcallTable
}

// Enclave returns the underlying hardware enclave.
func (a *AppEnclave) Enclave() *sgx.Enclave { return a.enc }

// ID returns the enclave ID.
func (a *AppEnclave) ID() sgx.EnclaveID { return a.enc.ID }

// Interface returns the enclave's declared EDL interface.
func (a *AppEnclave) Interface() *edl.Interface { return a.iface }

func (a *AppEnclave) saveTable(t *OcallTable) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.savedTable = t
}

func (a *AppEnclave) table() *OcallTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.savedTable
}

func (a *AppEnclave) trustedFn(id int) (TrustedFn, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id < 0 || id >= len(a.trusted) {
		return nil, false
	}
	return a.trusted[id], a.trusted[id] != nil
}

// uevent is the untrusted per-thread event object the sync ocalls block
// on: a binary semaphore plus a clock sync point for causality.
type uevent struct {
	ch    chan struct{}
	point vtime.SyncPoint
}

func newUevent() *uevent {
	return &uevent{ch: make(chan struct{}, 1)}
}

func (e *uevent) set(now vtime.Cycles) {
	e.point.Publish(now)
	select {
	case e.ch <- struct{}{}:
	default: // already set; events are binary
	}
}

func (e *uevent) wait(ctx *sgx.Context) {
	<-e.ch
	e.point.Observe(ctx.Clock())
}

// URTS is the untrusted runtime system: the enclave registry and the real
// implementation of sgx_ecall.
type URTS struct {
	machine *sgx.Machine
	driver  *kernel.Driver

	mu       sync.Mutex
	enclaves map[sgx.EnclaveID]*AppEnclave
	events   map[sgx.ThreadID]*uevent
	// inflight tracks, per thread, the stack of ocall names currently
	// executing; the TRTS consults it to enforce allow lists.
	inflight map[sgx.ThreadID][]string
}

// NewURTS creates the runtime for a machine+driver pair.
func NewURTS(m *sgx.Machine, d *kernel.Driver) *URTS {
	return &URTS{
		machine:  m,
		driver:   d,
		enclaves: make(map[sgx.EnclaveID]*AppEnclave),
		events:   make(map[sgx.ThreadID]*uevent),
		inflight: make(map[sgx.ThreadID][]string),
	}
}

// Library exposes the URTS as a shared library defining the sgx_ecall
// symbol, so applications resolve it through the loader and preloaded
// tools can shadow it.
func (u *URTS) Library() *loader.Library {
	return loader.NewLibrary("libsgx_urts").Define(loader.SymSGXEcall, EcallFn(u.Ecall))
}

// CreateEnclave builds the enclave through the kernel driver and registers
// its trusted image. The interface is extended with the SDK sync ocalls
// (as linking sgx_tstdc does) and validated.
func (u *URTS) CreateEnclave(ctx *sgx.Context, cfg sgx.Config, iface *edl.Interface, impl map[string]TrustedFn) (*AppEnclave, error) {
	if _, err := WithSyncOcalls(iface); err != nil {
		return nil, err
	}
	if _, err := iface.Validate(); err != nil {
		return nil, fmt.Errorf("sdk: interface: %w", err)
	}
	for name := range impl {
		f, ok := iface.Lookup(name)
		if !ok || f.Kind != edl.Ecall {
			return nil, fmt.Errorf("sdk: implementation for undeclared ecall %q", name)
		}
	}
	enc, err := u.driver.CreateEnclave(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("sdk: create enclave: %w", err)
	}
	app := &AppEnclave{
		enc:     enc,
		iface:   iface,
		urts:    u,
		trusted: make([]TrustedFn, len(iface.Ecalls())),
	}
	for name, fn := range impl {
		f, _ := iface.Lookup(name)
		app.trusted[f.ID] = fn
	}
	u.mu.Lock()
	u.enclaves[enc.ID] = app
	u.mu.Unlock()
	return app, nil
}

// DestroyEnclave tears the enclave down.
func (u *URTS) DestroyEnclave(app *AppEnclave) {
	u.mu.Lock()
	delete(u.enclaves, app.enc.ID)
	u.mu.Unlock()
	u.driver.DestroyEnclave(app.enc)
}

// AppEnclaveFor returns the registered enclave state for an ID.
func (u *URTS) AppEnclaveFor(eid sgx.EnclaveID) (*AppEnclave, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	a, ok := u.enclaves[eid]
	return a, ok
}

// Machine returns the machine this runtime drives.
func (u *URTS) Machine() *sgx.Machine { return u.machine }

func (u *URTS) eventFor(tid sgx.ThreadID) *uevent {
	u.mu.Lock()
	defer u.mu.Unlock()
	ev, ok := u.events[tid]
	if !ok {
		ev = newUevent()
		u.events[tid] = ev
	}
	return ev
}

func (u *URTS) pushOcall(tid sgx.ThreadID, name string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.inflight[tid] = append(u.inflight[tid], name)
}

func (u *URTS) popOcall(tid sgx.ThreadID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	s := u.inflight[tid]
	if len(s) > 0 {
		u.inflight[tid] = s[:len(s)-1]
	}
}

// currentOcall returns the innermost in-flight ocall on the thread, if
// any.
func (u *URTS) currentOcall(tid sgx.ThreadID) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	s := u.inflight[tid]
	if len(s) == 0 {
		return "", false
	}
	return s[len(s)-1], true
}

// Ecall is the real sgx_ecall: the single entry point for all ecalls. It
// saves the ocall table, charges URTS dispatch, enters the enclave, and
// runs the TRTS trampoline which dispatches to the trusted function.
func (u *URTS) Ecall(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *OcallTable, args any) (any, error) {
	app, ok := u.AppEnclaveFor(eid)
	if !ok {
		return nil, ErrInvalidEnclave
	}
	decl, ok := app.iface.EcallByID(callID)
	if !ok {
		return nil, ErrInvalidEcall
	}
	ctx.Compute(CostURTSDispatch)
	if otab != nil {
		app.saveTable(otab)
	}

	// Interface enforcement (§3.6): outside any ocall only public ecalls
	// may run; during an ocall the ecall must be in that ocall's allow
	// list (the SDK triggers an error for forgotten combinations).
	if cur, in := u.currentOcall(ctx.ID()); in {
		if !app.iface.Allowed(cur, decl.Name) {
			return nil, fmt.Errorf("%w: %s during ocall %s", ErrEcallNotAllowed, decl.Name, cur)
		}
	} else if !decl.Public {
		return nil, fmt.Errorf("%w: private ecall %s outside an ocall", ErrEcallNotAllowed, decl.Name)
	}

	fn, ok := app.trustedFn(callID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImplementation, decl.Name)
	}
	if err := ctx.EEnter(app.enc); err != nil {
		return nil, fmt.Errorf("sdk: eenter: %w", err)
	}
	// TRTS trampoline: resolve the ID, charge dispatch, copy [in] buffers.
	ctx.Compute(CostTRTSDispatch)
	chargeCopy(ctx, args, true)
	env := &Env{ctx: ctx, app: app, urts: u}
	res, err := fn(env, args)
	chargeCopy(ctx, args, false)
	if exitErr := ctx.EExit(); exitErr != nil && err == nil {
		err = fmt.Errorf("sdk: eexit: %w", exitErr)
	}
	return res, err
}

// chargeCopy prices boundary copies for arguments implementing Copied.
func chargeCopy(ctx *sgx.Context, args any, in bool) {
	c, ok := args.(Copied)
	if !ok {
		return
	}
	n := c.CopyOutBytes()
	if in {
		n = c.CopyInBytes()
	}
	if n <= 0 {
		return
	}
	ctx.Compute(CostCopyPerKiB * time.Duration((n+1023)/1024))
}

// syncOcallImpl returns the URTS-provided implementation of an SDK sync
// ocall, or nil for other names.
func (u *URTS) syncOcallImpl(name string) OcallFn {
	switch name {
	case OcallThreadWait:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(WaitEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadWait, args)
			}
			u.eventFor(a.Self).wait(ctx)
			return nil, nil
		}
	case OcallThreadSet:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSet, args)
			}
			u.eventFor(a.Target).set(ctx.Now())
			return nil, nil
		}
	case OcallThreadSetMultiple:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetMultipleEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSetMultiple, args)
			}
			for _, t := range a.Targets {
				u.eventFor(t).set(ctx.Now())
			}
			return nil, nil
		}
	case OcallThreadSetWait:
		return func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(SetWaitEventArgs)
			if !ok {
				return nil, fmt.Errorf("sdk: %s: bad args %T", OcallThreadSetWait, args)
			}
			u.eventFor(a.Target).set(ctx.Now())
			u.eventFor(a.Self).wait(ctx)
			return nil, nil
		}
	}
	return nil
}
