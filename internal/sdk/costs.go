// Package sdk reimplements the Intel SGX SDK runtime the paper's tooling
// interposes on (§2.2): an Untrusted Runtime System whose sgx_ecall entry
// point dispatches every ecall through a per-enclave ocall table (the two
// hooks sgx-perf needs, Figs. 2–3), a Trusted Runtime System with a
// trampoline entry point and EDL-driven interface checks (§3.6), and the
// SDK's in-enclave synchronisation primitives that sleep and wake through
// ocalls (§2.3.2).
package sdk

import "time"

// SDK dispatch costs, calibrated so that Table 2 reproduces: a native
// no-op ecall costs ≈4,205 ns (EENTER+EEXIT round trip of 2,130 ns on the
// unpatched machine plus URTS+TRTS dispatch), and adding a no-op ocall
// brings the total to ≈8,013 ns.
const (
	// CostURTSDispatch covers sgx_ecall's work outside the enclave:
	// looking up the enclave, finding a free TCS, saving the ocall table.
	CostURTSDispatch = 1200 * time.Nanosecond
	// CostTRTSDispatch covers the trampoline inside the enclave: resolving
	// the ecall ID to the function and checking the interface rules.
	CostTRTSDispatch = 875 * time.Nanosecond
	// CostOcallDispatch covers marshalling an ocall: the TRTS-side
	// preparation plus the URTS-side table lookup (on top of the
	// EEXIT+EENTER round trip).
	CostOcallDispatch = 1678 * time.Nanosecond
	// CostCopyPerKiB is charged per KiB copied across the enclave
	// boundary for [in]/[out] parameters.
	CostCopyPerKiB = 350 * time.Nanosecond
	// CostSpin is one iteration of an in-enclave spinlock attempt.
	CostSpin = 30 * time.Nanosecond
)
