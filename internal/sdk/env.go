package sdk

import (
	"fmt"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/sgx"
)

// Env is the trusted-side view a TrustedFn receives: simulated in-enclave
// computation, enclave memory, and the ability to issue ocalls through the
// TRTS.
type Env struct {
	ctx  *sgx.Context
	app  *AppEnclave
	urts *URTS
}

// Context returns the executing thread.
func (e *Env) Context() *sgx.Context { return e.ctx }

// EnclaveID returns the current enclave's ID.
func (e *Env) EnclaveID() sgx.EnclaveID { return e.app.enc.ID }

// Interface returns the enclave's declared interface.
func (e *Env) Interface() *edl.Interface { return e.app.iface }

// Compute burns d of in-enclave CPU time (subject to timer AEXs).
func (e *Env) Compute(d time.Duration) { e.ctx.Compute(d) }

// Alloc allocates enclave heap memory.
func (e *Env) Alloc(n int) (sgx.Vaddr, error) { return e.ctx.HeapAlloc(n) }

// Write copies b into enclave memory.
func (e *Env) Write(v sgx.Vaddr, b []byte) error { return e.ctx.WriteBytes(v, b) }

// Read copies enclave memory into b.
func (e *Env) Read(v sgx.Vaddr, b []byte) error { return e.ctx.ReadBytes(v, b) }

// Touch accesses [v, v+n) without transferring data.
func (e *Env) Touch(v sgx.Vaddr, n int, write bool) error {
	return e.ctx.TouchRange(v, n, write)
}

// Ocall issues the named ocall: the TRTS marshals the call, EEXITs, looks
// up the function pointer in the ocall table the URTS saved at ecall time
// (Fig. 3), runs it untrusted, and re-enters.
func (e *Env) Ocall(name string, args any) (any, error) {
	decl, ok := e.app.iface.Lookup(name)
	if !ok || decl.Kind != edl.Ocall {
		return nil, fmt.Errorf("%w: %s", ErrInvalidOcall, name)
	}
	return e.ocall(decl, args)
}

// OcallByID issues an ocall by numeric identifier.
func (e *Env) OcallByID(id int, args any) (any, error) {
	decl, ok := e.app.iface.OcallByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrInvalidOcall, id)
	}
	return e.ocall(decl, args)
}

func (e *Env) ocall(decl *edl.Func, args any) (any, error) {
	// A routed ocall takes the switchless queue: an untrusted worker runs
	// it while this thread stays inside the enclave, skipping the
	// EEXIT/EENTER round trip and the dispatch. handled=false (name not
	// routed, queue full, runtime stopped) falls through to the regular
	// transition path below.
	if sl := e.app.sl.Load(); sl != nil {
		if res, err, handled := sl.ocallSwitchless(e.ctx, decl, args); handled {
			return res, err
		}
	}
	tab := e.app.table()
	if tab == nil || decl.ID >= len(tab.Funcs) || tab.Funcs[decl.ID] == nil {
		return nil, fmt.Errorf("%w: %s has no table entry", ErrInvalidOcall, decl.Name)
	}
	fn := tab.Funcs[decl.ID]

	e.ctx.ComputeCycles(e.urts.ocallDispatchCycles)
	chargeCopy(e.ctx, args, true) // [out]-to-untrusted copy before leaving
	if err := e.ctx.OcallExit(); err != nil {
		return nil, fmt.Errorf("sdk: ocall exit: %w", err)
	}
	e.urts.pushOcall(e.ctx, decl.Name)
	res, err := fn(e.ctx, args)
	e.urts.popOcall(e.ctx)
	if retErr := e.ctx.OcallReturn(); retErr != nil && err == nil {
		err = fmt.Errorf("sdk: ocall return: %w", retErr)
	}
	chargeCopy(e.ctx, args, false)
	return res, err
}
