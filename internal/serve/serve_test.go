package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sgxperf"
	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
	"sgxperf/internal/workloads/leaky"
)

// --- synthetic trace helpers -------------------------------------------

type xorshift struct{ s uint64 }

func (r *xorshift) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
func (r *xorshift) intn(n int) int { return int(r.next() % uint64(n)) }

const testEDL = `enclave {
	trusted { public ecall_put(); public ecall_get(); };
	untrusted { ocall_write(); ocall_log(); };
};`

// synthEvents appends nOps worth of call events to tr, with event IDs
// starting at firstID. Returns the next free ID, so a second call
// produces an append-compatible delta.
func synthEvents(tr *events.Trace, nOps int, firstID int64, seed uint64) int64 {
	rng := &xorshift{s: seed}
	enames := []string{"ecall_put", "ecall_get"}
	onames := []string{"ocall_write", "ocall_log"}
	var ecalls, ocalls []events.CallEvent
	var aexs []events.AEXEvent
	id := firstID
	nextID := func() events.EventID { id++; return events.EventID(id) }
	clock := int64(firstID * 5000)
	for op := 0; op < nOps; op++ {
		clock += int64(500 + rng.intn(3000))
		dur := int64(200 + rng.intn(8000))
		eid := nextID()
		ecalls = append(ecalls, events.CallEvent{
			ID: eid, Kind: events.KindEcall, Enclave: 1,
			Thread: sgx.ThreadID(1 + op%3), CallID: op % 2,
			Name:  enames[op%2],
			Start: vtime.Cycles(clock), End: vtime.Cycles(clock + dur),
			Parent: events.NoEvent, AEXCount: rng.intn(2),
		})
		if op%3 == 0 {
			oid := nextID()
			at := clock + int64(50+rng.intn(100))
			odur := int64(100 + rng.intn(500))
			ocalls = append(ocalls, events.CallEvent{
				ID: oid, Kind: events.KindOcall, Enclave: 1,
				Thread: sgx.ThreadID(1 + op%3), Name: onames[op%2],
				Start: vtime.Cycles(at), End: vtime.Cycles(at + odur),
				Parent: eid,
			})
		}
		if op%7 == 0 {
			aexs = append(aexs, events.AEXEvent{
				ID: nextID(), Enclave: 1, Thread: sgx.ThreadID(1 + op%3),
				Time: vtime.Cycles(clock + dur/2), During: eid,
			})
		}
	}
	tr.Ecalls.BatchInsert(ecalls)
	tr.Ocalls.BatchInsert(ocalls)
	tr.AEXs.BatchInsert(aexs)
	return id
}

// synthTrace builds a deterministic trace with meta and an embedded
// EDL, nOps operations strong.
func synthTrace(t testing.TB, nOps int) *events.Trace {
	t.Helper()
	tr, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.Insert(events.TraceMeta{Workload: "serve-test", FrequencyHz: 3.5e9, TransitionCycles: 13500})
	tr.Enclaves.Insert(events.EnclaveMeta{Enclave: 1, Name: "e1", NumPages: 64, EDL: testEDL})
	synthEvents(tr, nOps, 0, 0x5eed)
	return tr
}

// deltaTrace builds an append body: events only, IDs continuing after
// the base.
func deltaTrace(t testing.TB, nOps int, firstID int64) *events.Trace {
	t.Helper()
	tr, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	synthEvents(tr, nOps, firstID, 0xfeed+uint64(firstID))
	return tr
}

func traceBytes(t testing.TB, tr *events.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// --- HTTP helpers -------------------------------------------------------

func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{PollTimeout: 250 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doReq(t testing.TB, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func upload(t testing.TB, ts *httptest.Server, id string, tr *events.Trace) apiv1.TraceInfo {
	t.Helper()
	url := ts.URL + "/v1/traces"
	if id != "" {
		url += "?id=" + id
	}
	status, raw := doReq(t, "POST", url, traceBytes(t, tr))
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", status, raw)
	}
	var info apiv1.TraceInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// --- end-to-end tests ---------------------------------------------------

// TestServedReportByteEqualsOffline is the serve contract in one test:
// the report served over HTTP is byte-for-byte what the offline
// analyser emits through the same api/v1 canonical serialisation.
func TestServedReportByteEqualsOffline(t *testing.T) {
	_, ts := newTestServer(t)
	tr := synthTrace(t, 500)
	info := upload(t, ts, "golden", tr)
	if err := apiv1.CheckVersion(info.SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if info.Counts.Ecalls != tr.Ecalls.Len() {
		t.Fatalf("info counts %+v do not match trace", info.Counts)
	}

	status, served := doReq(t, "GET", ts.URL+"/v1/traces/golden/report", nil)
	if status != http.StatusOK {
		t.Fatalf("report: status %d: %s", status, served)
	}

	a, err := analyzer.New(tr, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := apiv1.Marshal(apiv1.FromReport(a.Analyze()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, offline) {
		t.Fatalf("served report differs from offline -json output\nserved:  %.200s\noffline: %.200s", served, offline)
	}

	// The /v1/report alias resolves the sole registered trace.
	status, alias := doReq(t, "GET", ts.URL+"/v1/report", nil)
	if status != http.StatusOK || !bytes.Equal(alias, served) {
		t.Fatalf("/v1/report alias: status %d, equal=%v", status, bytes.Equal(alias, served))
	}
}

// TestReportCacheHitAndAppendInvalidation proves re-requests hit the
// artifact cache and an append produces a fresh report under a new
// content key.
func TestReportCacheHitAndAppendInvalidation(t *testing.T) {
	s, ts := newTestServer(t)
	info := upload(t, ts, "tr", synthTrace(t, 300))

	_, first := doReq(t, "GET", ts.URL+"/v1/traces/tr/report", nil)
	m0 := s.cache.Metrics()
	_, second := doReq(t, "GET", ts.URL+"/v1/traces/tr/report", nil)
	m1 := s.cache.Metrics()
	if !bytes.Equal(first, second) {
		t.Fatal("identical trace served two different reports")
	}
	if m1.Hits != m0.Hits+1 {
		t.Fatalf("re-request did not hit the cache: %+v -> %+v", m0, m1)
	}

	status, raw := doReq(t, "POST", ts.URL+"/v1/traces/tr/append", traceBytes(t, deltaTrace(t, 50, 2_000)))
	if status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, raw)
	}
	var after apiv1.TraceInfo
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if after.ContentKey == info.ContentKey {
		t.Fatal("append did not change the content key")
	}
	if after.Seq != info.Seq+1 {
		t.Fatalf("append seq = %d, want %d", after.Seq, info.Seq+1)
	}
	_, third := doReq(t, "GET", ts.URL+"/v1/traces/tr/report", nil)
	if bytes.Equal(first, third) {
		t.Fatal("appended trace served the stale report")
	}
}

// TestStatsWindowsIncremental proves the windowed stats engine: the
// assembled statistics equal the full report's, and appending a chunk's
// worth of events recomputes only the new tail window.
func TestStatsWindowsIncremental(t *testing.T) {
	_, ts := newTestServer(t)

	// Ecall-only trace with exactly two full chunks, so every window is
	// frozen and the append lands in a fresh chunk.
	tr, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.Insert(events.TraceMeta{Workload: "windows", FrequencyHz: 3.5e9, TransitionCycles: 13500})
	rows := make([]events.CallEvent, 2048)
	for i := range rows {
		rows[i] = events.CallEvent{
			ID: events.EventID(i + 1), Kind: events.KindEcall, Enclave: 1,
			Thread: 1, Name: fmt.Sprintf("ecall_%d", i%3),
			Start: vtime.Cycles(int64(i) * 10_000), End: vtime.Cycles(int64(i)*10_000 + 20_000 + int64(i%50)*1000),
			Parent: events.NoEvent, AEXCount: i % 2,
		}
	}
	tr.Ecalls.BatchInsert(rows)
	upload(t, ts, "w", tr)

	getStats := func() apiv1.StatsReport {
		t.Helper()
		status, raw := doReq(t, "GET", ts.URL+"/v1/traces/w/stats", nil)
		if status != http.StatusOK {
			t.Fatalf("stats: status %d: %s", status, raw)
		}
		var doc apiv1.StatsReport
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	cold := getStats()
	if cold.WindowsTotal != 2 || cold.WindowsComputed != 2 || cold.WindowsReused != 0 {
		t.Fatalf("cold stats windows = %+v, want 2 computed", cold)
	}

	// The windowed result must equal the full analyser's stats.
	a, err := analyzer.New(tr, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := apiv1.FromStats(a.AllStats())
	if !reflect.DeepEqual(cold.Stats, want) {
		t.Fatal("windowed stats differ from the analyser's")
	}

	warm := getStats()
	if warm.WindowsComputed != 0 || warm.WindowsReused != 2 {
		t.Fatalf("warm stats windows = computed %d / reused %d, want 0/2", warm.WindowsComputed, warm.WindowsReused)
	}

	// Append a third chunk's worth: the two frozen windows are reused,
	// only the new tail is computed.
	delta, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	more := make([]events.CallEvent, 100)
	for i := range more {
		more[i] = events.CallEvent{
			ID: events.EventID(3000 + i), Kind: events.KindEcall, Enclave: 1,
			Thread: 1, Name: "ecall_tail",
			Start: vtime.Cycles(100_000_000 + i*10_000), End: vtime.Cycles(100_000_000 + i*10_000 + 30_000),
			Parent: events.NoEvent,
		}
	}
	delta.Ecalls.BatchInsert(more)
	if status, raw := doReq(t, "POST", ts.URL+"/v1/traces/w/append", traceBytes(t, delta)); status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, raw)
	}

	tail := getStats()
	if tail.WindowsTotal != 3 || tail.WindowsComputed != 1 || tail.WindowsReused != 2 {
		t.Fatalf("post-append windows = total %d / computed %d / reused %d, want 3/1/2",
			tail.WindowsTotal, tail.WindowsComputed, tail.WindowsReused)
	}
	// Mirror the append locally so the offline analyser sees the same rows.
	tr.Ecalls.BatchInsert(more)
	a2, err := analyzer.New(tr, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tail.Stats, apiv1.FromStats(a2.AllStats())) {
		t.Fatal("post-append windowed stats differ from the analyser's")
	}
}

// TestReportWindowsIncremental proves the windowed full-report engine:
// the complete report — statistics, detector findings, call graph,
// security hints — served after an append replays every frozen fold
// window from the cache and recomputes only the tail, while staying
// byte-identical to the offline analyser on the appended trace.
func TestReportWindowsIncremental(t *testing.T) {
	_, ts := newTestServer(t)
	tr := synthTrace(t, 1500) // two ecall chunks: multi-window from the start
	upload(t, ts, "rw", tr)

	getReport := func() ([]byte, [3]int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/traces/rw/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report: status %d: %s", resp.StatusCode, raw)
		}
		var wc [3]int
		for i, h := range []string{"Sgxperf-Windows-Total", "Sgxperf-Windows-Computed", "Sgxperf-Windows-Reused"} {
			v, err := strconv.Atoi(resp.Header.Get(h))
			if err != nil {
				t.Fatalf("header %s = %q: %v", h, resp.Header.Get(h), err)
			}
			wc[i] = v
		}
		return raw, wc
	}
	offline := func() []byte {
		t.Helper()
		a, err := analyzer.New(tr, analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := apiv1.Marshal(apiv1.FromReport(a.Analyze()))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	nWin := tr.Ecalls.NumChunks()
	if nWin < 2 {
		t.Fatalf("want a multi-chunk trace, got %d ecall chunks", nWin)
	}
	cold, wc := getReport()
	if wc != [3]int{nWin, nWin, 0} {
		t.Fatalf("cold report windows = %v, want all %d computed", wc, nWin)
	}
	if !bytes.Equal(cold, offline()) {
		t.Fatal("cold windowed report differs from the offline analyser's")
	}

	if _, wc = getReport(); wc != [3]int{nWin, 0, nWin} {
		t.Fatalf("warm report windows = %v, want all %d reused", wc, nWin)
	}

	// Append enough sorted events to fill the tail ecall chunk and spill
	// into a new one: the frozen windows replay from the cache; only the
	// grown tail chunk's window and the new final window are refolded.
	delta := deltaTrace(t, 700, 3_000)
	if status, raw := doReq(t, "POST", ts.URL+"/v1/traces/rw/append", traceBytes(t, delta)); status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, raw)
	}
	appendTrace(tr, delta) // mirror locally for the offline reference

	grown := tr.Ecalls.NumChunks()
	if grown != nWin+1 {
		t.Fatalf("append grew the ecall table to %d chunks, want %d", grown, nWin+1)
	}
	tail, wc := getReport()
	if wc != [3]int{grown, 2, grown - 2} {
		t.Fatalf("post-append report windows = %v, want 2 computed / %d reused", wc, grown-2)
	}
	if !bytes.Equal(tail, offline()) {
		t.Fatal("post-append windowed report differs from the offline analyser's")
	}
}

// TestLintEndpoint proves the hybrid lint artifact serves the EDL
// embedded in the trace.
func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	upload(t, ts, "l", synthTrace(t, 200))
	status, raw := doReq(t, "GET", ts.URL+"/v1/traces/l/lint", nil)
	if status != http.StatusOK {
		t.Fatalf("lint: status %d: %s", status, raw)
	}
	var doc apiv1.LintReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if err := apiv1.CheckVersion(doc.SchemaVersion); err != nil {
		t.Fatal(err)
	}
	if doc.Source != "hybrid" {
		t.Fatalf("lint source = %q, want hybrid", doc.Source)
	}
	if doc.Summary.Ecalls != 2 || doc.Summary.Ocalls != 2 {
		t.Fatalf("lint summary = %+v, want the embedded EDL's 2+2 calls", doc.Summary)
	}
}

// TestSourceLintEndpoint proves ?source=1 runs the source passes under
// the daemon's configured root: the report gains per-entry transition
// predictions (every entry "not-executed" — the synthetic trace has
// none of the exhibit's ecalls) and caches separately from the plain
// lint artifact.
func TestSourceLintEndpoint(t *testing.T) {
	s := New(Options{
		SourceRoot: "../..",
		SourceDirs: []string{"internal/workloads/amplify"},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	upload(t, ts, "l", synthTrace(t, 100))

	status, raw := doReq(t, "GET", ts.URL+"/v1/traces/l/lint?source=1", nil)
	if status != http.StatusOK {
		t.Fatalf("source lint: status %d: %s", status, raw)
	}
	var doc apiv1.LintReport
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Predicted) == 0 {
		t.Fatal("source lint: no per-entry predictions; the source pass did not run")
	}
	for _, p := range doc.Predicted {
		if p.Verdict != "not-executed" {
			t.Errorf("entry %s: verdict %q, want not-executed (trace has no such ecall)", p.Ecall, p.Verdict)
		}
	}

	// The plain variant must come from its own cache slot, without the
	// source pass's predictions.
	status, raw = doReq(t, "GET", ts.URL+"/v1/traces/l/lint", nil)
	if status != http.StatusOK {
		t.Fatalf("plain lint: status %d: %s", status, raw)
	}
	var plain apiv1.LintReport
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Predicted) != 0 {
		t.Fatalf("plain lint gained predictions %v; the source artifact leaked across cache keys", plain.Predicted)
	}
}

// TestSourceLintFlowsByteIdentical records one leaky run and proves the
// typed flows section is one schema end to end: the daemon's
// `GET /v1/traces/{id}/lint?source=1` answer and the api/v1 document
// `sgx-perf-lint -workload leaky -trace … -source ../.. -source-dirs
// internal/workloads/leaky -json` emits offline carry byte-identical
// `flows` — same marshaller, same order, no drift between the two
// surfaces.
func TestSourceLintFlowsByteIdentical(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "leaky"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := leaky.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(leaky.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	trace := l.Trace()

	s := New(Options{
		SourceRoot: "../..",
		SourceDirs: []string{"internal/workloads/leaky"},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	upload(t, ts, "leaky", trace)
	status, raw := doReq(t, "GET", ts.URL+"/v1/traces/leaky/lint?source=1", nil)
	if status != http.StatusOK {
		t.Fatalf("source lint: status %d: %s", status, raw)
	}

	iface, err := leaky.Interface()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sgxperf.HybridLint(iface, trace, sgxperf.LintOptions{
		SourceRoot: "../..",
		SourceDirs: []string{"internal/workloads/leaky"},
	})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := apiv1.Marshal(apiv1.FromLintReport(report))
	if err != nil {
		t.Fatal(err)
	}

	want := rawSection(t, offline, "flows")
	got := rawSection(t, raw, "flows")
	if len(want) == 0 {
		t.Fatal("offline report has no flows section; the leaky exhibit should leak")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flows sections differ between the endpoint and the offline CLI path.\n--- serve\n%s\n--- offline\n%s", got, want)
	}
}

// rawSection extracts one top-level key of a JSON document verbatim.
func rawSection(t testing.TB, doc []byte, key string) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatal(err)
	}
	return m[key]
}

// TestErrorStatuses drives each sentinel through the HTTP surface.
func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t)
	upload(t, ts, "dup", synthTrace(t, 10))

	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		status int
	}{
		{"unknown trace", "GET", "/v1/traces/nope/report", nil, http.StatusNotFound},
		{"unknown trace info", "GET", "/v1/traces/nope", nil, http.StatusNotFound},
		{"corrupt upload", "POST", "/v1/traces", []byte("not an evstore stream"), http.StatusBadRequest},
		{"duplicate id", "POST", "/v1/traces?id=dup", traceBytes(t, synthTrace(t, 5)), http.StatusConflict},
		{"bad id", "POST", "/v1/traces?id=bad/slash", traceBytes(t, synthTrace(t, 5)), http.StatusBadRequest},
		{"bad enclave param", "GET", "/v1/traces/dup/report?enclave=x", nil, http.StatusBadRequest},
		{"append to unknown", "POST", "/v1/traces/nope/append", traceBytes(t, synthTrace(t, 5)), http.StatusNotFound},
		{"report alias ambiguous", "GET", "/v1/report?trace=ghost", nil, http.StatusNotFound},
		{"source lint unconfigured", "GET", "/v1/traces/dup/lint?source=1", nil, http.StatusUnprocessableEntity},
		{"bad source param", "GET", "/v1/traces/dup/lint?source=x", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, raw := doReq(t, c.method, ts.URL+c.path, c.body)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, status, c.status, raw)
			continue
		}
		var e apiv1.Error
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", c.name, raw)
			continue
		}
		if e.Status != c.status || e.SchemaVersion != apiv1.Version || e.Error == "" {
			t.Errorf("%s: error doc %+v", c.name, e)
		}
	}
}

// TestTraceListing proves upload/list/info agree.
func TestTraceListing(t *testing.T) {
	_, ts := newTestServer(t)
	upload(t, ts, "b", synthTrace(t, 20))
	upload(t, ts, "a", synthTrace(t, 30))
	status, raw := doReq(t, "GET", ts.URL+"/v1/traces", nil)
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	var list apiv1.TraceList
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 2 || list.Traces[0].ID != "a" || list.Traces[1].ID != "b" {
		t.Fatalf("list = %+v, want [a b]", list.Traces)
	}
	status, raw = doReq(t, "GET", ts.URL+"/v1/traces/a", nil)
	var info apiv1.TraceInfo
	if status != http.StatusOK || json.Unmarshal(raw, &info) != nil || info.ID != "a" {
		t.Fatalf("info: status %d body %s", status, raw)
	}

	status, raw = doReq(t, "GET", ts.URL+"/v1/metrics", nil)
	var m apiv1.ServerMetrics
	if status != http.StatusOK || json.Unmarshal(raw, &m) != nil {
		t.Fatalf("metrics: status %d body %s", status, raw)
	}
	if m.Traces != 2 || m.Requests == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestMetricsMemoryGauges proves /v1/metrics carries the memory gauge
// set: a live runtime.MemStats snapshot, the peak heap observed across
// analysis work, and the artifact cache's estimated resident bytes —
// the production-observable side of the bounded-memory claim.
func TestMetricsMemoryGauges(t *testing.T) {
	_, ts := newTestServer(t)
	upload(t, ts, "m", synthTrace(t, 500))

	// A cold report populates the artifact cache and samples the peak.
	if status, raw := doReq(t, "GET", ts.URL+"/v1/traces/m/report", nil); status != http.StatusOK {
		t.Fatalf("report: status %d body %s", status, raw)
	}

	status, raw := doReq(t, "GET", ts.URL+"/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d body %s", status, raw)
	}
	var m apiv1.ServerMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Memory.HeapAllocBytes == 0 {
		t.Error("heap_alloc_bytes = 0, want a live MemStats snapshot")
	}
	if m.Memory.HeapSysBytes < m.Memory.HeapAllocBytes {
		t.Errorf("heap_sys_bytes %d < heap_alloc_bytes %d",
			m.Memory.HeapSysBytes, m.Memory.HeapAllocBytes)
	}
	// The metrics read itself folds into the peak, so the gauge is
	// never below the snapshot it ships with.
	if m.Memory.PeakHeapAllocBytes < m.Memory.HeapAllocBytes {
		t.Errorf("peak_heap_alloc_bytes %d < heap_alloc_bytes %d",
			m.Memory.PeakHeapAllocBytes, m.Memory.HeapAllocBytes)
	}
	if m.Cache.Entries == 0 || m.Cache.Bytes == 0 {
		t.Errorf("cache after a cold report = %d entries / %d bytes, want both > 0",
			m.Cache.Entries, m.Cache.Bytes)
	}
}

// TestLongPollSnapshot proves ?seq= long-polling: a poll past the
// current sequence blocks until an append bumps it.
func TestLongPollSnapshot(t *testing.T) {
	_, ts := newTestServer(t)
	info := upload(t, ts, "lp", synthTrace(t, 50))

	// Immediate snapshot (no seq).
	status, raw := doReq(t, "GET", ts.URL+"/v1/traces/lp/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", status, raw)
	}
	var snap apiv1.LiveSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seq != info.Seq {
		t.Fatalf("snapshot seq = %d, want %d", snap.Seq, info.Seq)
	}
	if snap.Counts.Ecalls == 0 || len(snap.Stats) == 0 {
		t.Fatalf("snapshot is empty: %+v", snap.Counts)
	}

	// Long-poll for the next change, append concurrently.
	type polled struct {
		snap apiv1.LiveSnapshot
		err  error
	}
	ch := make(chan polled, 1)
	go func() {
		status, raw := doReq(t, "GET", fmt.Sprintf("%s/v1/traces/lp/snapshot?seq=%d", ts.URL, info.Seq), nil)
		var s apiv1.LiveSnapshot
		err := json.Unmarshal(raw, &s)
		if status != http.StatusOK {
			err = fmt.Errorf("status %d: %s", status, raw)
		}
		ch <- polled{s, err}
	}()
	time.Sleep(30 * time.Millisecond)
	if status, raw := doReq(t, "POST", ts.URL+"/v1/traces/lp/append", traceBytes(t, deltaTrace(t, 20, 500))); status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, raw)
	}
	select {
	case p := <-ch:
		if p.err != nil {
			t.Fatal(p.err)
		}
		if p.snap.Seq != info.Seq+1 {
			t.Fatalf("long-poll woke at seq %d, want %d", p.snap.Seq, info.Seq+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not return after append")
	}

	// A poll past the head with no change answers within the poll
	// timeout with the unchanged snapshot.
	status, raw = doReq(t, "GET", fmt.Sprintf("%s/v1/traces/lp/snapshot?seq=%d", ts.URL, info.Seq+1), nil)
	if status != http.StatusOK {
		t.Fatalf("timed-out poll: status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seq != info.Seq+1 {
		t.Fatalf("timed-out poll seq = %d, want unchanged %d", snap.Seq, info.Seq+1)
	}
}

// TestSSEStream proves the /live endpoint streams one snapshot
// immediately and one per append, as SSE events.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t)
	info := upload(t, ts, "sse", synthTrace(t, 50))

	resp, err := http.Get(ts.URL + "/v1/traces/sse/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	snaps := make(chan apiv1.LiveSnapshot, 4)
	go func() {
		defer close(snaps)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var s apiv1.LiveSnapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
				t.Errorf("bad SSE data: %v", err)
				return
			}
			snaps <- s
		}
	}()

	read := func(wantSeq uint64) apiv1.LiveSnapshot {
		t.Helper()
		select {
		case s, ok := <-snaps:
			if !ok {
				t.Fatal("SSE stream closed early")
			}
			if s.Seq != wantSeq {
				t.Fatalf("SSE snapshot seq = %d, want %d", s.Seq, wantSeq)
			}
			return s
		case <-time.After(5 * time.Second):
			t.Fatal("no SSE snapshot within 5s")
		}
		panic("unreachable")
	}

	first := read(info.Seq)
	if len(first.Stats) == 0 {
		t.Fatal("first SSE snapshot has no stats")
	}
	if status, raw := doReq(t, "POST", ts.URL+"/v1/traces/sse/append", traceBytes(t, deltaTrace(t, 20, 700))); status != http.StatusOK {
		t.Fatalf("append: status %d: %s", status, raw)
	}
	second := read(info.Seq + 1)
	if second.Counts.Ecalls <= first.Counts.Ecalls {
		t.Fatalf("SSE snapshot counts did not grow: %d -> %d", first.Counts.Ecalls, second.Counts.Ecalls)
	}
}

// TestConcurrentReportRequests race-exercises the full path: many
// clients requesting the same cold report must coalesce onto one
// analysis and all receive identical bytes.
func TestConcurrentReportRequests(t *testing.T) {
	// Baseline: how many artifact computations one cold report request
	// costs (the report entry plus its fold-window intermediates).
	sOne, tsOne := newTestServer(t)
	upload(t, tsOne, "cc", synthTrace(t, 400))
	if status, _ := doReq(t, "GET", tsOne.URL+"/v1/traces/cc/report", nil); status != http.StatusOK {
		t.Fatalf("baseline report: status %d", status)
	}
	coldMisses := sOne.cache.Metrics().Misses

	s, ts := newTestServer(t)
	upload(t, ts, "cc", synthTrace(t, 400))

	const clients = 12
	bodies := make([][]byte, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			status, raw := doReq(t, "GET", ts.URL+"/v1/traces/cc/report", nil)
			if status != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, status)
				return
			}
			bodies[i] = raw
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw a different report", i)
		}
	}
	// Concurrency must not multiply work: the 12 cold requests coalesce
	// onto exactly the computations one cold request performs.
	if m := s.cache.Metrics(); m.Misses != coldMisses {
		t.Fatalf("cold concurrent requests ran %d computations, want %d (metrics %+v)", m.Misses, coldMisses, m)
	}
}
