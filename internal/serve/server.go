// Package serve implements the always-on analysis service behind
// sgx-perf-serve: traces are uploaded (or appended to) as evstore
// streams, analyses run concurrently on the shared worker pool with
// per-request cancellation, live snapshots stream to any number of
// subscribers over SSE or long-poll, and every computed artifact is
// cached content-addressed by the trace's chunk hashes so re-analysing
// an appended trace recomputes only what changed.
//
// Every response body is an api/v1 wire document in the canonical
// apiv1.Marshal serialisation — byte-for-byte what the offline CLIs
// emit for the same trace.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/staticlint"
	"sgxperf/internal/sgx"
)

// Options configures a Server.
type Options struct {
	// CacheCapacity bounds the artifact cache in entries (0 = default).
	CacheCapacity int
	// MaxUploadBytes bounds one upload or append body (0 = 256 MiB).
	MaxUploadBytes int64
	// PollTimeout bounds how long a long-poll waits for a change before
	// answering with the unchanged snapshot (0 = 25s).
	PollTimeout time.Duration
	// SourceRoot, when set, enables the source-aware lint path
	// (?source=1 on /v1/traces/{id}/lint): the interprocedural and
	// concurrency dataflow passes run over the Go tree at this root and
	// their findings — plus the per-entry transition predictions — join
	// the interface report.
	SourceRoot string
	// SourceDirs limits the source passes to these root-relative
	// directories (empty = the whole tree).
	SourceDirs []string
}

// maxArtifactAttempts bounds the optimistic-concurrency retry loop: an
// artifact computed while the trace was being appended to is discarded
// and recomputed against the new content key.
const maxArtifactAttempts = 8

// Server is the analysis service: a registry of uploaded traces, the
// shared artifact cache, and the HTTP handler tree over them.
type Server struct {
	opts  Options
	cache *ArtifactCache

	mu     sync.RWMutex
	traces map[string]*traceEntry
	nextID int

	requests atomic.Uint64
	peakHeap atomic.Uint64
	mux      *http.ServeMux
}

// noteHeap samples the live heap into the peak gauge and returns the
// snapshot. It is called where the heap actually crests — after cold
// report computations — and on each metrics read, rather than on every
// request: ReadMemStats briefly stops the world, so pricing it per
// request would tax the hot cached path for a gauge that only moves
// when analysis work runs.
func (s *Server) noteHeap() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := s.peakHeap.Load()
		if ms.HeapAlloc <= old || s.peakHeap.CompareAndSwap(old, ms.HeapAlloc) {
			return ms
		}
	}
}

// traceEntry is one registered trace. The trace's tables are internally
// synchronised (analyses read them while appends land); appendMu only
// serialises whole append bodies so each lands atomically across
// tables.
type traceEntry struct {
	id       string
	trace    *events.Trace
	hub      *hub
	appendMu sync.Mutex
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 256 << 20
	}
	if opts.PollTimeout <= 0 {
		opts.PollTimeout = 25 * time.Second
	}
	s := &Server{
		opts:   opts,
		cache:  NewArtifactCache(opts.CacheCapacity),
		traces: make(map[string]*traceEntry),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("GET /v1/traces", s.handleList)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/traces/{id}/append", s.handleAppend)
	s.mux.HandleFunc("GET /v1/traces/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/traces/{id}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces/{id}/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/traces/{id}/live", s.handleLive)
	s.mux.HandleFunc("GET /v1/traces/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/report", s.handleReportDefault)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Preload registers an already-loaded trace under id (empty = assigned
// name), for embedding the server in-process and for the daemon's
// positional trace-file arguments.
func (s *Server) Preload(id string, tr *events.Trace) error {
	_, err := s.register(id, tr)
	return err
}

// register adds an already-loaded trace under id (empty = assigned);
// the HTTP upload path funnels through here.
func (s *Server) register(id string, tr *events.Trace) (*traceEntry, error) {
	if tr == nil {
		return nil, fmt.Errorf("serve: %w", analyzer.ErrNoTrace)
	}
	if id != "" && !traceIDPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: trace id %q (want %s)", ErrBadRequest, id, traceIDPattern)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("t%d", s.nextID)
			if _, taken := s.traces[id]; !taken {
				break
			}
		}
	} else if _, taken := s.traces[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	e := &traceEntry{id: id, trace: tr, hub: newHub()}
	e.hub.bump() // seq 1: the upload itself is the first change
	s.traces[id] = e
	return e, nil
}

var traceIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// lookup resolves a request's {id} path value.
func (s *Server) lookup(r *http.Request) (*traceEntry, error) {
	id := r.PathValue("id")
	s.mu.RLock()
	e := s.traces[id]
	s.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e, nil
}

// --- artifact computation -----------------------------------------------

// retryable decides whether an artifact computation should be retried:
// the trace was appended to mid-computation, or a coalesced waiter
// inherited the cancellation of some other request's context while its
// own is still live.
func retryable(ctx context.Context, err error, attempt int) bool {
	if attempt >= maxArtifactAttempts || ctx.Err() != nil {
		return false
	}
	return errors.Is(err, errConcurrentAppend) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// reportEntry is the cached full-report artifact: the wire report plus
// how many fold windows its computation replayed versus folded fresh
// (zero-valued when the monolithic path produced it).
type reportEntry struct {
	rep     *apiv1.Report
	windows windowCounts
}

// reportArtifact returns the trace's full wire report, cached by
// content key. Stream-sorted traces are computed through the windowed
// fold (foldedReport), so even a cold content key after an append
// refolds only the tail windows; unsorted uploads run the monolithic
// resident analysis. Concurrency is optimistic: the key is computed
// before the analysis and revalidated after; since the store is
// append-only, an unchanged key proves the analysis saw exactly the
// keyed content, and a changed one discards the run (nothing is cached)
// and retries under the new key.
func (s *Server) reportArtifact(ctx context.Context, e *traceEntry, enclave sgx.EnclaveID) (*apiv1.Report, windowCounts, bool, error) {
	keyOf := func() string {
		return fmt.Sprintf("report|%s|%d", e.trace.ContentKey(), enclave)
	}
	for attempt := 0; ; attempt++ {
		key := keyOf()
		v, hit, err := s.cache.GetOrCompute(key, func() (any, error) {
			rep, wc, err := s.foldedReport(ctx, e, enclave)
			if errors.Is(err, analyzer.ErrUnsorted) {
				rep, err = s.monolithicReport(ctx, e, enclave)
				wc = windowCounts{}
			}
			if err != nil {
				return nil, err
			}
			if keyOf() != key {
				return nil, errConcurrentAppend
			}
			return &reportEntry{rep: rep, windows: wc}, nil
		})
		if err == nil {
			ent := v.(*reportEntry)
			wc := ent.windows
			if hit {
				// A resident artifact answered without touching the
				// window layer at all.
				wc.computed = 0
				wc.reused = wc.total
			} else {
				s.noteHeap() // a fresh analysis is where the heap crests
			}
			return ent.rep, wc, hit, nil
		}
		if retryable(ctx, err, attempt) {
			continue
		}
		return nil, windowCounts{}, false, err
	}
}

// monolithicReport is the resident full analysis, for traces the
// streaming fold cannot window (not stream-sorted).
func (s *Server) monolithicReport(ctx context.Context, e *traceEntry, enclave sgx.EnclaveID) (*apiv1.Report, error) {
	a, err := analyzer.New(e.trace, analyzer.Options{Enclave: enclave})
	if err != nil {
		return nil, err
	}
	rep, err := a.AnalyzeContext(ctx)
	if err != nil {
		return nil, err
	}
	return apiv1.FromReport(rep), nil
}

// lintArtifact returns the trace's hybrid lint report (static findings
// from the EDL embedded in the trace, re-ranked by observed traffic),
// cached by content key like reportArtifact. With src set the source
// passes join in under the server's configured root; the artifact is
// cached under its own key so the two variants never collide.
func (s *Server) lintArtifact(ctx context.Context, e *traceEntry, src bool) (*apiv1.LintReport, bool, error) {
	prefix := "lint|"
	var opts staticlint.Options
	if src {
		prefix = "lint+src|"
		opts.SourceRoot = s.opts.SourceRoot
		opts.SourceDirs = s.opts.SourceDirs
	}
	keyOf := func() string { return prefix + e.trace.ContentKey() }
	for attempt := 0; ; attempt++ {
		key := keyOf()
		v, hit, err := s.cache.GetOrCompute(key, func() (any, error) {
			rep, err := staticlint.HybridContext(ctx, nil, e.trace, opts)
			if err != nil {
				return nil, err
			}
			if keyOf() != key {
				return nil, errConcurrentAppend
			}
			return apiv1.FromLintReport(rep), nil
		})
		if err == nil {
			return v.(*apiv1.LintReport), hit, nil
		}
		if retryable(ctx, err, attempt) {
			continue
		}
		return nil, false, err
	}
}

// statsReport assembles the windowed incremental statistics: one cached
// artifact per chunk window, so only windows whose chunk hashes changed
// since the last request (the appended tail) are recomputed.
func (s *Server) statsReport(ctx context.Context, e *traceEntry, enclave sgx.EnclaveID) (*apiv1.StatsReport, error) {
	tr := e.trace
	for attempt := 0; ; attempt++ {
		contentKey := tr.ContentKey()
		eh, oh := tr.Ecalls.ChunkHashes(), tr.Ocalls.ChunkHashes()
		freq, trans := tr.Frequency(), tr.TransitionCycles()
		n := len(eh)
		if len(oh) > n {
			n = len(oh)
		}
		windows := make([]*windowArtifact, n)
		computed, reused := 0, 0
		var werr error
		for i := 0; i < n; i++ {
			ehi, eok := hashAt(eh, i)
			ohi, ook := hashAt(oh, i)
			key := windowCacheKey(i, ehi, ohi, eok, ook, enclave, freq, trans)
			i := i
			v, hit, err := s.cache.GetOrCompute(key, func() (any, error) {
				w := computeWindow(tr, i, enclave, freq, trans)
				// Revalidate: only a tail chunk can have grown mid-scan,
				// and rehashing is cheap (full-chunk hashes are cached).
				nowE, _ := hashAt(tr.Ecalls.ChunkHashes(), i)
				nowO, _ := hashAt(tr.Ocalls.ChunkHashes(), i)
				if nowE != ehi || nowO != ohi {
					return nil, errConcurrentAppend
				}
				return w, nil
			})
			if err != nil {
				werr = err
				break
			}
			windows[i] = v.(*windowArtifact)
			if hit {
				reused++
			} else {
				computed++
			}
		}
		if werr == nil {
			// The two hash snapshots were taken table-by-table; re-reading
			// them proves no append interleaved and the assembled windows
			// form one consistent view of the trace.
			if !hashesEqual(eh, tr.Ecalls.ChunkHashes()) || !hashesEqual(oh, tr.Ocalls.ChunkHashes()) {
				werr = errConcurrentAppend
			}
		}
		if werr != nil {
			if retryable(ctx, werr, attempt) {
				continue
			}
			return nil, werr
		}
		return &apiv1.StatsReport{
			SchemaVersion:   apiv1.Version,
			Workload:        workloadOf(tr),
			ContentKey:      contentKey,
			Stats:           apiv1.FromStats(assembleStats(windows)),
			WindowsTotal:    n,
			WindowsComputed: computed,
			WindowsReused:   reused,
		}, nil
	}
}

func hashesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshotDoc builds the trace's live snapshot: the cached full report
// plus current raw counts and the change sequence number. Seq is read
// before the report so it never claims to be newer than the analysis it
// carries. Rates stay zero: they are defined over a live logger's
// sliding clock window, which an uploaded trace does not have.
func (s *Server) snapshotDoc(ctx context.Context, e *traceEntry) (*apiv1.LiveSnapshot, error) {
	seq := e.hub.current()
	rep, _, _, err := s.reportArtifact(ctx, e, 0)
	if err != nil {
		return nil, err
	}
	return &apiv1.LiveSnapshot{
		SchemaVersion: apiv1.Version,
		Workload:      rep.Workload,
		Seq:           seq,
		Counts:        countsOf(e.trace),
		Stats:         rep.Stats,
		Findings:      rep.Findings,
		Paging:        rep.Paging,
		WakeGraph:     rep.WakeGraph,
		Switchless:    rep.Switchless,
	}, nil
}

// --- handlers -----------------------------------------------------------

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tr, err := events.NewTrace()
	if err != nil {
		writeError(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := tr.Load(body); err != nil {
		writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
		return
	}
	e, err := s.register(r.URL.Query().Get("id"), tr)
	if err != nil {
		writeError(w, err)
		return
	}
	writeDoc(w, http.StatusCreated, s.traceInfo(e))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]*traceEntry, 0, len(s.traces))
	for _, e := range s.traces {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	list := apiv1.TraceList{SchemaVersion: apiv1.Version, Traces: make([]apiv1.TraceInfo, 0, len(entries))}
	for _, e := range entries {
		list.Traces = append(list.Traces, s.traceInfo(e))
	}
	writeDoc(w, http.StatusOK, list)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	writeDoc(w, http.StatusOK, s.traceInfo(e))
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	delta, err := events.NewTrace()
	if err != nil {
		writeError(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := delta.Load(body); err != nil {
		writeError(w, fmt.Errorf("%w: %w", ErrBadRequest, err))
		return
	}
	e.appendMu.Lock()
	appendTrace(e.trace, delta)
	e.appendMu.Unlock()
	e.hub.bump()
	writeDoc(w, http.StatusOK, s.traceInfo(e))
}

// appendTrace lands a delta trace's events onto the base. Event tables
// are appended wholesale; the delta's meta is adopted only when the
// base has none, and enclave descriptors only for enclaves the base has
// not seen.
func appendTrace(base, delta *events.Trace) {
	if base.Meta.Len() == 0 {
		appendRows(base.Meta, delta.Meta)
	}
	appendRows(base.Ecalls, delta.Ecalls)
	appendRows(base.Ocalls, delta.Ocalls)
	appendRows(base.AEXs, delta.AEXs)
	appendRows(base.Paging, delta.Paging)
	appendRows(base.Syncs, delta.Syncs)
	appendRows(base.Threads, delta.Threads)
	appendRows(base.Switchless, delta.Switchless)
	seen := make(map[sgx.EnclaveID]bool)
	base.Enclaves.Scan(func(_ int, m events.EnclaveMeta) bool {
		seen[m.Enclave] = true
		return true
	})
	var fresh []events.EnclaveMeta
	delta.Enclaves.Scan(func(_ int, m events.EnclaveMeta) bool {
		if !seen[m.Enclave] {
			fresh = append(fresh, m)
			seen[m.Enclave] = true
		}
		return true
	})
	base.Enclaves.BatchInsert(fresh)
}

// appendRows copies every row of src onto dst in one batch.
func appendRows[T any](dst, src *evstore.Table[T]) {
	n := src.Len()
	if n == 0 {
		return
	}
	rows := make([]T, 0, n)
	src.ScanChunks(func(c []T) bool {
		rows = append(rows, c...)
		return true
	})
	dst.BatchInsert(rows)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	s.serveReport(w, r, e)
}

// handleReportDefault is GET /v1/report: the report of ?trace=<id>, or
// of the sole registered trace when the parameter is omitted.
func (s *Server) handleReportDefault(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("trace")
	s.mu.RLock()
	e := s.traces[id]
	if id == "" && len(s.traces) == 1 {
		for _, only := range s.traces {
			e = only
		}
	}
	s.mu.RUnlock()
	if e == nil {
		if id == "" {
			writeError(w, fmt.Errorf("%w: ?trace= required unless exactly one trace is registered", ErrBadRequest))
		} else {
			writeError(w, fmt.Errorf("%w: %q", ErrNotFound, id))
		}
		return
	}
	s.serveReport(w, r, e)
}

func (s *Server) serveReport(w http.ResponseWriter, r *http.Request, e *traceEntry) {
	enclave, err := enclaveParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	rep, wc, _, err := s.reportArtifact(r.Context(), e, enclave)
	if err != nil {
		writeError(w, err)
		return
	}
	// The wire document is byte-identical either way; the fold-window
	// replay accounting rides in headers (all zero on the monolithic
	// path for unsorted traces).
	w.Header().Set("Sgxperf-Windows-Total", strconv.Itoa(wc.total))
	w.Header().Set("Sgxperf-Windows-Computed", strconv.Itoa(wc.computed))
	w.Header().Set("Sgxperf-Windows-Reused", strconv.Itoa(wc.reused))
	writeDoc(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	enclave, err := enclaveParam(r)
	if err != nil {
		writeError(w, err)
		return
	}
	doc, err := s.statsReport(r.Context(), e, enclave)
	if err != nil {
		writeError(w, err)
		return
	}
	writeDoc(w, http.StatusOK, doc)
}

// handleLint serves the hybrid lint report. ?source=1 asks for the
// source-aware variant; it is answerable only when the daemon was
// started with a source root.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	src, err := uintParam(r, "source")
	if err != nil {
		writeError(w, err)
		return
	}
	if src != 0 && s.opts.SourceRoot == "" {
		writeError(w, fmt.Errorf("%w: pass -source-root when starting the daemon", ErrNoSource))
		return
	}
	rep, _, err := s.lintArtifact(r.Context(), e, src != 0)
	if err != nil {
		writeError(w, err)
		return
	}
	writeDoc(w, http.StatusOK, rep)
}

// handleSnapshot is the long-poll subscription: with ?seq=N the
// response is delayed until the trace moves past N (or the poll timeout
// expires, returning the unchanged snapshot for the client to re-poll).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	after, err := uintParam(r, "seq")
	if err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	if after > 0 {
		waitCtx, cancel := context.WithTimeout(ctx, s.opts.PollTimeout)
		_, werr := e.hub.wait(waitCtx, after)
		cancel()
		if werr != nil && ctx.Err() != nil {
			writeError(w, ctx.Err())
			return
		}
	}
	snap, err := s.snapshotDoc(ctx, e)
	if err != nil {
		writeError(w, err)
		return
	}
	writeDoc(w, http.StatusOK, snap)
}

// handleLive streams snapshots over server-sent events: one event
// immediately, then one per change, each a compact one-line LiveSnapshot.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	e, err := s.lookup(r)
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ctx := r.Context()
	var last uint64
	for {
		snap, err := s.snapshotDoc(ctx, e)
		if err != nil {
			return
		}
		raw, err := apiv1.MarshalCompact(snap)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", raw); err != nil {
			return
		}
		flusher.Flush()
		last = snap.Seq
		if _, err := e.hub.wait(ctx, last); err != nil {
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.traces)
	s.mu.RUnlock()
	ms := s.noteHeap()
	writeDoc(w, http.StatusOK, apiv1.ServerMetrics{
		SchemaVersion: apiv1.Version,
		Traces:        n,
		Cache:         s.cache.Metrics(),
		Memory: apiv1.MemoryMetrics{
			HeapAllocBytes:     ms.HeapAlloc,
			HeapSysBytes:       ms.HeapSys,
			PeakHeapAllocBytes: s.peakHeap.Load(),
			NumGC:              ms.NumGC,
		},
		Requests: s.requests.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// --- small helpers ------------------------------------------------------

func (s *Server) traceInfo(e *traceEntry) apiv1.TraceInfo {
	return apiv1.TraceInfo{
		SchemaVersion: apiv1.Version,
		ID:            e.id,
		Workload:      workloadOf(e.trace),
		ContentKey:    e.trace.ContentKey(),
		Counts:        countsOf(e.trace),
		Seq:           e.hub.current(),
	}
}

func workloadOf(tr *events.Trace) string {
	if tr.Meta.Len() > 0 {
		return tr.Meta.At(0).Workload
	}
	return ""
}

func countsOf(tr *events.Trace) apiv1.Counts {
	return apiv1.Counts{
		Ecalls:     tr.Ecalls.Len(),
		Ocalls:     tr.Ocalls.Len(),
		Syncs:      tr.Syncs.Len(),
		AEXs:       tr.AEXs.Len(),
		Paging:     tr.Paging.Len(),
		Switchless: tr.Switchless.Len(),
	}
}

func enclaveParam(r *http.Request) (sgx.EnclaveID, error) {
	v, err := uintParam(r, "enclave")
	return sgx.EnclaveID(v), err
}

func uintParam(r *http.Request, name string) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q is not an unsigned integer", ErrBadRequest, name, raw)
	}
	return v, nil
}

// writeDoc writes a wire document in the canonical serialisation.
func writeDoc(w http.ResponseWriter, status int, v any) {
	raw, err := apiv1.Marshal(v)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

// writeError maps err through the sentinel status table and writes the
// apiv1.Error body.
func writeError(w http.ResponseWriter, err error) {
	status := StatusOf(err)
	doc := apiv1.Error{SchemaVersion: apiv1.Version, Status: status, Error: err.Error()}
	raw, merr := apiv1.Marshal(doc)
	if merr != nil {
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}
