package serve

import "reflect"

// artifactBytes estimates the resident heap size of a cached artifact
// by walking it with reflection: the value's own storage plus
// everything it references (slice backing arrays, map entries, string
// bytes, pointed-to structs). The walk runs once per cold cache insert
// — never on the hit path — and prices the cache's memory footprint for
// the /v1/metrics gauges. It is an estimate: shared sub-objects are
// counted once (cycles and aliasing are tracked by pointer), map bucket
// overhead is approximated, and channels/funcs count as their header
// only.
func artifactBytes(v any) uint64 {
	if v == nil {
		return 0
	}
	rv := reflect.ValueOf(v)
	return uint64(rv.Type().Size()) + heapRefs(rv, make(map[uintptr]bool))
}

// mapEntryOverhead approximates the runtime's per-entry bucket cost
// beyond the key and value storage themselves.
const mapEntryOverhead = 16

// heapRefs returns the bytes v references beyond its own inline
// storage (which the container — a struct's Size, a slice's element
// stride — has already accounted for).
func heapRefs(v reflect.Value, seen map[uintptr]bool) uint64 {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() || seen[v.Pointer()] {
			return 0
		}
		seen[v.Pointer()] = true
		elem := v.Elem()
		return uint64(elem.Type().Size()) + heapRefs(elem, seen)
	case reflect.Interface:
		if v.IsNil() {
			return 0
		}
		elem := v.Elem()
		return uint64(elem.Type().Size()) + heapRefs(elem, seen)
	case reflect.String:
		return uint64(v.Len())
	case reflect.Slice:
		if v.IsNil() || (v.Cap() > 0 && seen[v.Pointer()]) {
			return 0
		}
		if v.Cap() > 0 {
			seen[v.Pointer()] = true
		}
		n := uint64(v.Cap()) * uint64(v.Type().Elem().Size())
		if typeHasRefs(v.Type().Elem()) {
			for i := 0; i < v.Len(); i++ {
				n += heapRefs(v.Index(i), seen)
			}
		}
		return n
	case reflect.Array:
		if !typeHasRefs(v.Type().Elem()) {
			return 0
		}
		var n uint64
		for i := 0; i < v.Len(); i++ {
			n += heapRefs(v.Index(i), seen)
		}
		return n
	case reflect.Map:
		if v.IsNil() || seen[v.Pointer()] {
			return 0
		}
		seen[v.Pointer()] = true
		kt, vt := v.Type().Key(), v.Type().Elem()
		n := uint64(v.Len()) * (uint64(kt.Size()) + uint64(vt.Size()) + mapEntryOverhead)
		if typeHasRefs(kt) || typeHasRefs(vt) {
			it := v.MapRange()
			for it.Next() {
				n += heapRefs(it.Key(), seen) + heapRefs(it.Value(), seen)
			}
		}
		return n
	case reflect.Struct:
		var n uint64
		for i := 0; i < v.NumField(); i++ {
			if typeHasRefs(v.Type().Field(i).Type) {
				n += heapRefs(v.Field(i), seen)
			}
		}
		return n
	default:
		return 0
	}
}

// typeHasRefs reports whether values of t can reference heap memory
// beyond their inline storage — the guard that lets the walk skip the
// per-element loop over scalar slices (histogram buckets, chunk-hash
// arrays) that dominate the artifacts.
func typeHasRefs(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Pointer, reflect.Interface, reflect.String,
		reflect.Slice, reflect.Map:
		return true
	case reflect.Array:
		return typeHasRefs(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasRefs(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
