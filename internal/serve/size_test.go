package serve

import "testing"

// TestArtifactBytes pins the estimator's accounting on the shapes the
// cache actually holds: backing arrays priced by capacity, strings by
// length, shared and cyclic references counted once.
func TestArtifactBytes(t *testing.T) {
	if got := artifactBytes(nil); got != 0 {
		t.Errorf("nil = %d, want 0", got)
	}
	buf := make([]byte, 100, 256)
	if got := artifactBytes(buf); got < 256 || got > 256+64 {
		t.Errorf("[]byte cap 256 = %d, want ≈256 + header", got)
	}
	type node struct {
		name string
		vals []uint64
		next *node
	}
	a := &node{name: "a", vals: make([]uint64, 1000)}
	a.next = a // cycle must terminate and count the node once
	got := artifactBytes(a)
	if got < 8000 {
		t.Errorf("cyclic node with 1000 uint64s = %d, want ≥ 8000", got)
	}
	if got > 8000+512 {
		t.Errorf("cyclic node = %d, cycle was double-counted", got)
	}
	m := map[string]*node{"x": a, "y": a} // shared pointee counted once
	if got2 := artifactBytes(m); got2 > got+512 {
		t.Errorf("map sharing one node = %d vs node %d, pointee double-counted", got2, got)
	}
}
