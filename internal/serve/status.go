package serve

import (
	"context"
	"errors"
	"net/http"

	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/logger"
)

// Sentinel errors the serve layer itself produces. Like the rest of the
// repository's sentinels they are tested with errors.Is; handlers wrap
// them with request context.
var (
	// ErrNotFound reports a trace ID that is not registered.
	ErrNotFound = errors.New("serve: trace not found")
	// ErrDuplicate reports an upload under an already-registered ID.
	ErrDuplicate = errors.New("serve: trace id already registered")
	// ErrBadRequest reports a malformed request (bad ID, bad query
	// parameter, unreadable body).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrNoSource reports a ?source=1 lint request against a daemon that
	// was started without a source root: the variant exists but this
	// deployment cannot compute it.
	ErrNoSource = errors.New("serve: source analysis not configured")
	// errConcurrentAppend reports that a trace was appended to while an
	// artifact was being computed against its previous content key; the
	// computation is discarded and retried against the new key. It only
	// escapes to a client when the trace is appended to faster than it
	// can be analysed.
	errConcurrentAppend = errors.New("serve: trace changed during analysis")
)

// statusTable is the single place mapping the repository's sentinel
// errors onto HTTP status codes. Handlers funnel every error through
// StatusOf, so adding a sentinel here is the whole job of giving it a
// wire status.
var statusTable = []struct {
	err    error
	status int
}{
	{ErrNotFound, http.StatusNotFound},
	{ErrDuplicate, http.StatusConflict},
	{ErrBadRequest, http.StatusBadRequest},
	// An analysis was requested but there is no trace behind it (nil
	// trace, or a logger detached before its trace was taken): the
	// request names a resource that cannot be analysed.
	{analyzer.ErrNoTrace, http.StatusUnprocessableEntity},
	// The source-aware lint variant was requested but the daemon has no
	// source root: the resource exists, the representation cannot be
	// produced.
	{ErrNoSource, http.StatusUnprocessableEntity},
	// The logger backing a session was detached; the resource exists but
	// is in a conflicting state.
	{logger.ErrDetached, http.StatusConflict},
	// The uploaded body is not a valid evstore stream.
	{evstore.ErrCorrupt, http.StatusBadRequest},
	{errConcurrentAppend, http.StatusServiceUnavailable},
	{context.DeadlineExceeded, http.StatusGatewayTimeout},
	{context.Canceled, http.StatusServiceUnavailable},
}

// StatusOf resolves an error to its HTTP status code via the sentinel
// table (using errors.Is, so wrapped sentinels match); unknown errors
// are internal server errors.
func StatusOf(err error) int {
	for _, e := range statusTable {
		if errors.Is(err, e.err) {
			return e.status
		}
	}
	return http.StatusInternalServerError
}
