package serve

import (
	"context"
	"sync"
)

// hub is a per-trace change broadcaster: a monotonic sequence number
// bumped on every upload/append, and a channel that is closed and
// replaced on each bump so any number of subscribers (SSE streams,
// long-polls) can wait for "anything past seq N" without the hub
// tracking them individually.
type hub struct {
	mu      sync.Mutex
	seq     uint64
	changed chan struct{}
}

func newHub() *hub {
	return &hub{changed: make(chan struct{})}
}

// bump advances the sequence number and wakes every current waiter.
func (h *hub) bump() {
	h.mu.Lock()
	h.seq++
	close(h.changed)
	h.changed = make(chan struct{})
	h.mu.Unlock()
}

// current returns the current sequence number.
func (h *hub) current() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// wait blocks until the sequence number exceeds after (returning the
// new value) or ctx is done (returning the last seen value and
// ctx.Err()).
func (h *hub) wait(ctx context.Context, after uint64) (uint64, error) {
	for {
		h.mu.Lock()
		seq := h.seq
		ch := h.changed
		h.mu.Unlock()
		if seq > after {
			return seq, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return seq, ctx.Err()
		}
	}
}
