package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/logger"
)

// TestStatusOf pins the sentinel → HTTP status table, including through
// wrapping (handlers always wrap sentinels with request context).
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{ErrNotFound, http.StatusNotFound},
		{ErrDuplicate, http.StatusConflict},
		{ErrBadRequest, http.StatusBadRequest},
		{analyzer.ErrNoTrace, http.StatusUnprocessableEntity},
		{logger.ErrDetached, http.StatusConflict},
		{evstore.ErrCorrupt, http.StatusBadRequest},
		{errConcurrentAppend, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusServiceUnavailable},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.status {
			t.Errorf("StatusOf(%v) = %d, want %d", c.err, got, c.status)
		}
		wrapped := fmt.Errorf("handler: %w", fmt.Errorf("inner: %w", c.err))
		if got := StatusOf(wrapped); got != c.status {
			t.Errorf("StatusOf(wrapped %v) = %d, want %d", c.err, got, c.status)
		}
	}
	if got := StatusOf(errors.New("mystery")); got != http.StatusInternalServerError {
		t.Errorf("unknown error = %d, want 500", got)
	}
}

// TestSentinelsAreErrorsIsCompatible proves the repo's analysis
// sentinels survive the session-layer wrapping the serve handlers see.
func TestSentinelsAreErrorsIsCompatible(t *testing.T) {
	err := fmt.Errorf("session: %w", fmt.Errorf("analyzer: %w", analyzer.ErrNoTrace))
	if !errors.Is(err, analyzer.ErrNoTrace) {
		t.Fatal("wrapped ErrNoTrace lost its identity")
	}
	if StatusOf(err) != http.StatusUnprocessableEntity {
		t.Fatalf("wrapped ErrNoTrace maps to %d", StatusOf(err))
	}
}
