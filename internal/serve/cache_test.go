package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheHitOnSameKey proves identical keys return the cached
// artifact without recomputation.
func TestCacheHitOnSameKey(t *testing.T) {
	c := NewArtifactCache(8)
	calls := 0
	compute := func() (any, error) { calls++; return "artifact", nil }

	v, hit, err := c.GetOrCompute("k", compute)
	if err != nil || hit || v != "artifact" {
		t.Fatalf("first get = (%v, %v, %v)", v, hit, err)
	}
	v, hit, err = c.GetOrCompute("k", compute)
	if err != nil || !hit || v != "artifact" {
		t.Fatalf("second get = (%v, %v, %v), want cache hit", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Entries != 1 {
		t.Errorf("metrics = %+v, want 1 hit / 1 miss / 1 entry", m)
	}
}

// TestCacheSingleflight race-exercises the coalescing path: many
// concurrent requests for one missing key must run exactly one compute
// and all observe its result.
func TestCacheSingleflight(t *testing.T) {
	c := NewArtifactCache(8)
	const waiters = 32
	var computes atomic.Int64
	var release sync.WaitGroup
	release.Add(1)

	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (any, error) {
				computes.Add(1)
				release.Wait() // hold every concurrent caller in coalesce
				return "shared", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Give the waiters time to pile onto the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	release.Done()
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("waiter %d saw %v", i, v)
		}
	}
	m := c.Metrics()
	if m.Misses != 1 {
		t.Errorf("misses = %d, want 1", m.Misses)
	}
	if m.Coalesced != waiters-1 {
		t.Errorf("coalesced = %d, want %d", m.Coalesced, waiters-1)
	}
}

// TestCacheErrorsNotCached proves a failed compute leaves no entry, so
// the next request retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewArtifactCache(8)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute was cached (%d entries)", c.Len())
	}
	v, hit, err := c.GetOrCompute("k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry = (%v, %v, %v), want fresh ok", v, hit, err)
	}
}

// TestCacheLRUEviction proves the cache holds at most its capacity,
// evicting least-recently-used entries.
func TestCacheLRUEviction(t *testing.T) {
	c := NewArtifactCache(2)
	get := func(k string) (any, bool) {
		t.Helper()
		v, hit, err := c.GetOrCompute(k, func() (any, error) { return "v" + k, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	get("a")
	get("b")
	get("a")        // refresh a: b is now LRU
	get("c")        // evicts b
	if _, hit := get("a"); !hit {
		t.Error("a was evicted although recently used")
	}
	if _, hit := get("b"); hit {
		t.Error("b survived although least recently used")
	}
	if c.Len() != 2 {
		t.Errorf("entries = %d, want 2", c.Len())
	}
	if m := c.Metrics(); m.Evictions == 0 {
		t.Error("no evictions counted")
	}
}

// TestCacheConcurrentKeys race-exercises independent keys computing in
// parallel with repeated hits.
func TestCacheConcurrentKeys(t *testing.T) {
	c := NewArtifactCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%16)
				v, _, err := c.GetOrCompute(key, func() (any, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("key %s: (%v, %v)", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
