package serve

import (
	"fmt"
	"sort"
	"time"

	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// The windowed statistics engine behind GET /v1/traces/{id}/stats.
//
// Window i covers chunk i of the ecall table and chunk i of the ocall
// table. The evstore is append-only and every chunk but the last is
// full and immutable, so after an append only each table's tail chunk
// hash changes: every full window's artifact stays valid in the cache
// and a re-request recomputes nothing but the tail window. The artifact
// holds the per-call transition-adjusted duration multisets — exactly
// what analyzer.StatsFromDurations consumes — so the assembled result
// is reflect.DeepEqual to the full analyser's Report.Stats.

// windowArtifact is the cached intermediate for one chunk window.
// Cached artifacts are shared between requests: assembly copies the
// duration slices and never mutates them in place.
type windowArtifact struct {
	names []string // sorted
	calls map[string]*windowCall
}

// windowCall accumulates one call name within a window.
type windowCall struct {
	kind events.CallKind
	durs []time.Duration
	aex  int
}

// chunkAt snapshots chunk i of a table (nil when the table has fewer
// chunks). The returned slice is the store's own chunk with its length
// pinned; chunks only ever grow in place, so the snapshot stays valid
// after the scan.
func chunkAt[T any](t *evstore.Table[T], i int) []T {
	var out []T
	j := 0
	t.ScanChunks(func(rows []T) bool {
		if j == i {
			out = rows
			return false
		}
		j++
		return true
	})
	return out
}

// hashAt returns the i-th chunk hash and whether the table has an i-th
// chunk.
func hashAt(hashes []uint64, i int) (uint64, bool) {
	if i < 0 || i >= len(hashes) {
		return 0, false
	}
	return hashes[i], true
}

// windowCacheKey is the artifact-cache key of one window: the content
// hashes of both chunks plus everything the computation depends on
// (window index, enclave filter, clock frequency and transition cost).
// Trace identity is deliberately absent — identical chunks share
// artifacts across traces.
func windowCacheKey(i int, eh, oh uint64, ePresent, oPresent bool, enclave sgx.EnclaveID, freq vtime.Frequency, trans vtime.Cycles) string {
	hx := func(h uint64, present bool) string {
		if !present {
			return "-"
		}
		return fmt.Sprintf("%016x", h)
	}
	return fmt.Sprintf("window|%d|e%s|o%s|n%d|f%g|t%d",
		i, hx(eh, ePresent), hx(oh, oPresent), enclave, float64(freq), int64(trans))
}

// computeWindow builds the artifact for window i: per-call duration
// multisets with the same adjustment the analyser applies in prepare()
// (ecalls lose the transition round-trip, clamped at zero; ocall
// timestamps already exclude transitions).
func computeWindow(tr *events.Trace, i int, enclave sgx.EnclaveID, freq vtime.Frequency, trans vtime.Cycles) *windowArtifact {
	w := &windowArtifact{calls: make(map[string]*windowCall)}
	add := func(name string, kind events.CallKind, d time.Duration, aex int) {
		c, ok := w.calls[name]
		if !ok {
			c = &windowCall{kind: kind}
			w.calls[name] = c
			w.names = append(w.names, name)
		}
		c.durs = append(c.durs, d)
		c.aex += aex
	}
	for _, e := range chunkAt(tr.Ecalls, i) {
		if enclave != 0 && e.Enclave != enclave {
			continue
		}
		adj := freq.Duration(e.Duration() - trans)
		if adj < 0 {
			adj = 0
		}
		add(e.Name, e.Kind, adj, e.AEXCount)
	}
	for _, o := range chunkAt(tr.Ocalls, i) {
		if enclave != 0 && o.Enclave != enclave {
			continue
		}
		add(o.Name, o.Kind, freq.Duration(o.Duration()), o.AEXCount)
	}
	sort.Strings(w.names)
	return w
}

// assembleStats merges window artifacts into the final per-call
// statistics. Durations are concatenated into fresh slices
// (StatsFromDurations sorts its input in place and the artifacts are
// shared), names are visited in sorted order and the result is sorted
// with the analyser's own comparator — the exact construction
// AllStats performs, so the two are reflect.DeepEqual.
func assembleStats(windows []*windowArtifact) []analyzer.CallStats {
	totals := make(map[string]*windowCall)
	var names []string
	for _, w := range windows {
		for _, name := range w.names {
			wc := w.calls[name]
			t, ok := totals[name]
			if !ok {
				t = &windowCall{kind: wc.kind}
				totals[name] = t
				names = append(names, name)
			}
			t.durs = append(t.durs, wc.durs...)
			t.aex += wc.aex
		}
	}
	sort.Strings(names)
	out := make([]analyzer.CallStats, 0, len(names))
	for _, name := range names {
		t := totals[name]
		if s, ok := analyzer.StatsFromDurations(name, t.kind, t.durs, t.aex); ok {
			out = append(out, s)
		}
	}
	analyzer.SortStats(out)
	return out
}
