package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	apiv1 "sgxperf/api/v1"
)

// defaultCacheCapacity bounds the artifact cache when Options leaves
// CacheCapacity zero. Entries are whole analysis artifacts (reports,
// lint reports, stats windows), so a few hundred is plenty for many
// concurrently served traces.
const defaultCacheCapacity = 512

// ArtifactCache is the server's content-addressed artifact store: an
// LRU map from artifact key (derived from trace chunk hashes, see
// server.go) to the computed artifact, with single-flight coalescing so
// concurrent requests for the same missing key run one computation and
// share its result.
//
// Artifacts stored here are shared between requests and must be treated
// as immutable by every reader.
type ArtifactCache struct {
	capacity int

	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*flight
	bytes    uint64 // estimated resident artifact bytes (see size.go)

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// cacheEntry is one resident artifact (the lru list's element value).
type cacheEntry struct {
	key   string
	val   any
	bytes uint64
}

// flight is one in-progress computation; waiters block on done and then
// read val/err, which are written exactly once before done is closed.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewArtifactCache returns a cache bounded to capacity entries
// (capacity <= 0 selects the default).
func NewArtifactCache(capacity int) *ArtifactCache {
	if capacity <= 0 {
		capacity = defaultCacheCapacity
	}
	return &ArtifactCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// GetOrCompute returns the cached artifact for key, or runs compute,
// caches its result and returns it. Concurrent callers with the same
// missing key coalesce onto one compute call. hit reports whether the
// value came from the cache. Errors are returned to every coalesced
// caller and are never cached, so a later request retries.
func (c *ArtifactCache) GetOrCompute(key string, compute func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-f.done
		return f.val, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = compute()

	var size uint64
	if f.err == nil {
		size = artifactBytes(f.val) // priced outside the lock
	}
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		el := c.lru.PushFront(&cacheEntry{key: key, val: f.val, bytes: size})
		c.entries[key] = el
		c.bytes += size
		for c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			ent := oldest.Value.(*cacheEntry)
			delete(c.entries, ent.key)
			c.bytes -= ent.bytes
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Len returns the number of resident artifacts.
func (c *ArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the estimated resident size of every cached artifact.
func (c *ArtifactCache) Bytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Metrics returns the cache's wire-form counters.
func (c *ArtifactCache) Metrics() apiv1.CacheMetrics {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return apiv1.CacheMetrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   entries,
		Bytes:     bytes,
		Evictions: c.evictions.Load(),
	}
}
