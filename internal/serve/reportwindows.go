package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// The windowed full-report engine behind GET /v1/traces/{id}/report.
//
// When the trace is stream-sorted (events.StreamSort order), the report
// is computed through the analyzer's streaming fold: one cached
// artifact per chunk window, each holding the window's FoldDelta and
// carry-out. The carry chains window keys — window k's key includes
// carry-in.Hash() — so after an append every frozen window replays from
// the cache and only the tail windows are folded again, for the
// complete report: statistics, detectors, call graph, security hints.
// Uploads that are not stream-sorted fall back to the monolithic
// resident analysis; either way the response is byte-identical to the
// offline analyser's.
//
// Window keys exploit the store's append-only growth: a row, once
// written, never changes, so the consumed span of each table — from the
// carry-in's resume positions to the first row at or past the window's
// time bound — is fully pinned by the carry-in hash plus the COUNT of
// rows before the bound (total rows, for the final window). An append
// therefore leaves a frozen window's key intact even when it lands in a
// chunk the window had consumed only partially (the appended rows sort
// after the bound); only windows whose before-bound population actually
// grew are refolded. Counts address content only within one append-only
// table, so the key is scoped to the trace id — unlike the stats
// windows, these artifacts are not shared across traces. Every window
// also folds the full sync chunk-hash array: the sync prescan's wake
// references feed short-wake classification everywhere, so a sync
// append conservatively recomputes all windows.
type reportWindowArtifact struct {
	delta *analyzer.FoldDelta
	carry *analyzer.FoldCarry
}

// windowCounts reports how much of a report request was replayed from
// the window cache (zero-valued on the monolithic fallback path).
type windowCounts struct {
	total, computed, reused int
}

// hashFold folds the first n chunk hashes (and n itself, so growing a
// table is always visible) into one key component.
func hashFold(hashes []uint64, n int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	h.Write(b[:])
	for _, v := range hashes[:n] {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	return h.Sum64()
}

// rowsBefore counts rows whose timestamp sorts before bound in a
// time-sorted table: linear over chunk first rows, binary search inside
// the chunk the bound falls into. (On a trace that is not actually
// sorted the count is meaningless, but so is the whole window path —
// the fold's own monotonicity check rejects it before anything wrong
// can be cached.)
func rowsBefore[T any](tbl *evstore.Table[T], timeOf func(*T) vtime.Cycles, bound vtime.Cycles) int {
	n := 0
	tbl.ScanChunks(func(rows []T) bool {
		if len(rows) == 0 {
			return true
		}
		if timeOf(&rows[0]) >= bound {
			return false
		}
		if timeOf(&rows[len(rows)-1]) >= bound {
			n += sort.Search(len(rows), func(i int) bool { return timeOf(&rows[i]) >= bound })
			return false
		}
		n += len(rows)
		return true
	})
	return n
}

// syncPrescanArtifact returns the order-free sync digest, cached by the
// fold of every sync chunk hash (content-addressed: shared across
// traces).
func (s *Server) syncPrescanArtifact(e *traceEntry, src *analyzer.StreamSource, syncFold uint64) (*analyzer.SyncPrescan, error) {
	key := fmt.Sprintf("rsync|%016x", syncFold)
	v, _, err := s.cache.GetOrCompute(key, func() (any, error) {
		pre, err := analyzer.PrescanSyncs(src.Syncs)
		if err != nil {
			return nil, err
		}
		live := e.trace.Syncs.ChunkHashes()
		if hashFold(live, len(live)) != syncFold {
			return nil, errConcurrentAppend
		}
		return pre, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*analyzer.SyncPrescan), nil
}

// switchlessArtifact returns the per-name switchless aggregates, cached
// by the fold of every switchless chunk hash.
func (s *Server) switchlessArtifact(e *traceEntry, src *analyzer.StreamSource, swFold uint64) (map[string]*analyzer.SwitchlessAgg, error) {
	key := fmt.Sprintf("rswl|%016x", swFold)
	v, _, err := s.cache.GetOrCompute(key, func() (any, error) {
		agg, err := analyzer.FoldSwitchless(src.Switchless)
		if err != nil {
			return nil, err
		}
		live := e.trace.Switchless.ChunkHashes()
		if hashFold(live, len(live)) != swFold {
			return nil, errConcurrentAppend
		}
		return agg, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(map[string]*analyzer.SwitchlessAgg), nil
}

// foldedReport computes the full wire report through the streaming
// fold, replaying frozen windows from the artifact cache. It returns
// analyzer.ErrUnsorted when the trace is not stream-sorted (the caller
// falls back to the monolithic path) and errConcurrentAppend when an
// append landed mid-computation (the caller retries).
func (s *Server) foldedReport(ctx context.Context, e *traceEntry, enclave sgx.EnclaveID) (*apiv1.Report, windowCounts, error) {
	tr := e.trace
	src := analyzer.NewTraceSource(tr)
	eh, oh := tr.Ecalls.ChunkHashes(), tr.Ocalls.ChunkHashes()
	ph, sh := tr.Paging.ChunkHashes(), tr.Syncs.ChunkHashes()
	wh := tr.Switchless.ChunkHashes()
	weights := analyzer.DefaultWeights()
	var wc windowCounts

	syncFold := hashFold(sh, len(sh))
	pre, err := s.syncPrescanArtifact(e, src, syncFold)
	if err != nil {
		return nil, wc, err
	}
	swAgg, err := s.switchlessArtifact(e, src, hashFold(wh, len(wh)))
	if err != nil {
		return nil, wc, err
	}

	cfg := &analyzer.FoldConfig{
		Weights:    weights,
		Freq:       src.Freq,
		Transition: src.Transition,
		Enclave:    enclave,
		SyncRefs:   pre.Refs,
	}
	in := analyzer.FoldInput{Ecalls: src.Ecalls, Ocalls: src.Ocalls, Paging: src.Paging}
	callStart := func(c *events.CallEvent) vtime.Cycles { return c.Start }
	pageTime := func(p *events.PagingEvent) vtime.Cycles { return p.Time }
	spanCounts := func(bound vtime.Cycles, final bool) (eCnt, oCnt, pCnt int) {
		if final {
			return tr.Ecalls.Len(), tr.Ocalls.Len(), tr.Paging.Len()
		}
		return rowsBefore(tr.Ecalls, callStart, bound),
			rowsBefore(tr.Ocalls, callStart, bound),
			rowsBefore(tr.Paging, pageTime, bound)
	}

	n := len(eh)
	if len(oh) > n {
		n = len(oh)
	}
	if n == 0 {
		n = 1 // no call chunks: one final window still folds paging
	}
	wc.total = n
	carry := analyzer.NewFoldCarry()
	total := analyzer.NewFoldDelta()
	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			return nil, wc, err
		}
		final := k == n-1
		var bound vtime.Cycles
		if !final {
			b, ok, err := analyzer.WindowBound(in, k)
			if err != nil {
				return nil, wc, err
			}
			if !ok {
				final = true
			} else {
				bound = b
			}
		}
		eCnt, oCnt, pCnt := spanCounts(bound, final)
		key := fmt.Sprintf("rwin|%s|%d|c%016x|b%d|e%d|o%d|p%d|s%016x|n%d|f%g|t%d|w%d|fin%t",
			e.id, k, carry.Hash(), int64(bound), eCnt, oCnt, pCnt, syncFold,
			enclave, float64(src.Freq), int64(src.Transition),
			int64(weights.SyncShortLimit), final)
		carryIn := carry
		v, hit, err := s.cache.GetOrCompute(key, func() (any, error) {
			delta, carryOut, err := analyzer.FoldWindow(cfg, carryIn, in, bound, final)
			if err != nil {
				return nil, err
			}
			// Revalidate the counts the key was built from: an append
			// mid-fold may have grown the window's consumed span, and
			// recounting is cheap.
			le, lo, lp := spanCounts(bound, final)
			if le != eCnt || lo != oCnt || lp != pCnt {
				return nil, errConcurrentAppend
			}
			return &reportWindowArtifact{delta: delta, carry: carryOut}, nil
		})
		if err != nil {
			return nil, wc, err
		}
		art := v.(*reportWindowArtifact)
		total.MergeFrom(art.delta)
		carry = art.carry
		if hit {
			wc.reused++
		} else {
			wc.computed++
		}
		if final {
			wc.total = k + 1
			break
		}
	}

	// The hash snapshots were taken table-by-table; re-reading them
	// proves no append interleaved anywhere the report looked, so the
	// assembled windows form one consistent view of the trace.
	if !hashesEqual(eh, tr.Ecalls.ChunkHashes()) ||
		!hashesEqual(oh, tr.Ocalls.ChunkHashes()) ||
		!hashesEqual(ph, tr.Paging.ChunkHashes()) ||
		!hashesEqual(sh, tr.Syncs.ChunkHashes()) ||
		!hashesEqual(wh, tr.Switchless.ChunkHashes()) {
		return nil, wc, errConcurrentAppend
	}

	rep := analyzer.AssembleReport(src.Workload, cfg, total, pre,
		analyzer.SwitchlessStatsFrom(swAgg, src.Freq), src.Interface())
	return apiv1.FromReport(rep), wc, nil
}
