package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestHubWaitWakesAllSubscribers proves one bump releases every waiter
// with the new sequence number.
func TestHubWaitWakesAllSubscribers(t *testing.T) {
	h := newHub()
	h.bump() // seq 1
	const subs = 16
	var wg sync.WaitGroup
	got := make([]uint64, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := h.wait(context.Background(), 1)
			if err != nil {
				t.Errorf("sub %d: %v", i, err)
			}
			got[i] = seq
		}(i)
	}
	h.bump() // seq 2
	wg.Wait()
	for i, seq := range got {
		if seq != 2 {
			t.Errorf("sub %d woke at seq %d, want 2", i, seq)
		}
	}
}

// TestHubWaitPastSeqReturnsImmediately proves a stale cursor does not
// block.
func TestHubWaitPastSeqReturnsImmediately(t *testing.T) {
	h := newHub()
	h.bump()
	h.bump()
	seq, err := h.wait(context.Background(), 0)
	if err != nil || seq != 2 {
		t.Fatalf("wait(0) = (%d, %v), want (2, nil)", seq, err)
	}
}

// TestHubWaitCancel proves a cancelled waiter unblocks with ctx.Err().
func TestHubWaitCancel(t *testing.T) {
	h := newHub()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := h.wait(ctx, 0)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
