// Package contend is a deliberately mis-synchronised workload: a shared
// counter enclave whose update ecall holds the global in-enclave mutex
// across an audit-log ocall. That is the §3.4 anti-pattern the
// boundary-sync detector exists to price — while the holder is outside
// the enclave, every contending thread sleeps through the wait/wake
// ocall pair, so the critical section's cost is the transition budget of
// the audit call, not the few hundred nanoseconds of counter work inside
// it. The pattern is annotated for the repository lint (the exhibit is
// intentional) but the staticlint source pass ignores suppressions and
// keeps reporting it, which is the point.
package contend

import (
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// The enclave interface: two counter ecalls and the audit-log ocall the
// update path issues while holding the counter lock.
const (
	EcallAdd      = "sgx_ecall_counter_add"
	EcallRead     = "sgx_ecall_counter_read"
	OcallAuditLog = "ocall_audit_log"
)

// In-enclave work costs: the counter update itself is tiny, which is
// what makes holding the lock across the ocall so lopsided.
const (
	costCounterOp = 300 * time.Nanosecond
	costAuditFmt  = 200 * time.Nanosecond
	// costAuditWrite is the untrusted append-to-log work, long enough
	// that contenders pile up behind the held lock.
	costAuditWrite = 2 * time.Microsecond
)

// addInput is the argument of EcallAdd.
type addInput struct {
	Key   string
	Delta int64
}

// CopyInBytes implements sdk.Copied.
func (a *addInput) CopyInBytes() int { return len(a.Key) + 8 }

// state is the trusted counter table, guarded by one global SDK mutex —
// the contention point.
type state struct {
	mu       sdk.Mutex
	counters map[string]int64
	// tableMu is the Go-level guard for the simulation's own memory
	// safety; it charges no virtual time.
	tableMu sync.Mutex
}

// Workload is one configured counter enclave.
type Workload struct {
	h       *host.Host
	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy
	s       *state
}

// Interface builds the counter EDL interface.
func Interface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall(EcallAdd, true,
		edl.Param{Name: "key", Dir: edl.DirIn, IsString: true},
		edl.Param{Name: "delta"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallRead, true,
		edl.Param{Name: "key", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallAuditLog, nil,
		edl.Param{Name: "line", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	return iface, nil
}

// New builds the counter enclave.
func New(h *host.Host, ctx *sgx.Context) (*Workload, error) {
	w := &Workload{h: h, s: &state{counters: make(map[string]int64)}}
	iface, err := Interface()
	if err != nil {
		return nil, err
	}
	impl := map[string]sdk.TrustedFn{
		EcallAdd:  w.handleAdd,
		EcallRead: w.handleRead,
	}
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "contend",
		CodeBytes:  8 * sgx.PageSize,
		HeapBytes:  32 * sgx.PageSize,
		StackBytes: 4 * sgx.PageSize,
		NumTCS:     16,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("contend: %w", err)
	}
	ocalls := map[string]sdk.OcallFn{
		OcallAuditLog: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costAuditWrite)
			return nil, nil
		},
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		return nil, err
	}
	w.app = app
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	return w, nil
}

// handleAdd updates one counter and writes the audit line — while still
// holding the table lock, which is the exhibit: the audit ocall leaves
// the enclave mid-critical-section, and every thread contending on
// s.mu meanwhile sleeps through the §3.4 wait/wake ocall pair.
func (w *Workload) handleAdd(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*addInput)
	if !ok {
		return nil, fmt.Errorf("contend: bad addInput %T", args)
	}
	if err := w.s.mu.Lock(env); err != nil {
		return nil, err
	}
	env.Compute(costCounterOp)
	w.s.tableMu.Lock()
	w.s.counters[a.Key] += a.Delta
	total := w.s.counters[a.Key]
	w.s.tableMu.Unlock()
	env.Compute(costAuditFmt)
	//sgxperf:allow(heldacross) deliberate §3.4 exhibit: the audit ocall under s.mu is the pattern the boundary-sync detector prices; Run's contention depends on it
	if _, err := env.Ocall(OcallAuditLog, a.Key); err != nil {
		_ = w.s.mu.Unlock(env)
		return nil, err
	}
	if err := w.s.mu.Unlock(env); err != nil {
		return nil, err
	}
	return total, nil
}

// handleRead returns one counter's value; it holds the lock only for the
// table access, releasing before returning — the well-behaved sibling.
func (w *Workload) handleRead(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*addInput)
	if !ok {
		return nil, fmt.Errorf("contend: bad addInput %T", args)
	}
	if err := w.s.mu.Lock(env); err != nil {
		return nil, err
	}
	env.Compute(costCounterOp)
	w.s.tableMu.Lock()
	total := w.s.counters[a.Key]
	w.s.tableMu.Unlock()
	if err := w.s.mu.Unlock(env); err != nil {
		return nil, err
	}
	return total, nil
}

// Add invokes the update ecall from untrusted code.
func (w *Workload) Add(ctx *sgx.Context, key string, delta int64) (int64, error) {
	res, err := w.proxies[EcallAdd](ctx, &addInput{Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	n, _ := res.(int64)
	return n, nil
}

// Read invokes the read ecall from untrusted code.
func (w *Workload) Read(ctx *sgx.Context, key string) (int64, error) {
	res, err := w.proxies[EcallRead](ctx, &addInput{Key: key})
	if err != nil {
		return 0, err
	}
	n, _ := res.(int64)
	return n, nil
}

// Enclave returns the counter enclave.
func (w *Workload) Enclave() *sgx.Enclave { return w.app.Enclave() }

// RunOptions configures a contention run.
type RunOptions struct {
	// Threads is the number of concurrently updating threads (default 4).
	Threads int
	// OpsPerThread is the update count per thread (default 50).
	OpsPerThread int
}

// Run hammers one counter from every thread: because handleAdd holds the
// lock across the audit ocall, the run records sync ocalls in direct
// proportion to the audit traffic.
func (w *Workload) Run(opts RunOptions) (workloads.Result, error) {
	if opts.Threads <= 0 {
		opts.Threads = 4
	}
	if opts.OpsPerThread <= 0 {
		opts.OpsPerThread = 50
	}
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	start := make(chan struct{})
	for i := 0; i < opts.Threads; i++ {
		i := i
		wg.Add(1)
		if err := w.h.Spawn(fmt.Sprintf("contender-%d", i), func(ctx *sgx.Context) {
			defer wg.Done()
			<-start
			for op := 0; op < opts.OpsPerThread; op++ {
				if _, err := w.Add(ctx, "hits", 1); err != nil {
					errMu.Lock()
					runErr = err
					errMu.Unlock()
					return
				}
				if op%8 == 7 {
					if _, err := w.Read(ctx, "hits"); err != nil {
						errMu.Lock()
						runErr = err
						errMu.Unlock()
						return
					}
				}
			}
		}); err != nil {
			return workloads.Result{}, err
		}
	}
	close(start)
	wg.Wait()
	w.h.Wait()
	if runErr != nil {
		return workloads.Result{}, fmt.Errorf("contend: %w", runErr)
	}
	total := opts.Threads * opts.OpsPerThread
	return workloads.Result{
		Workload: "contend",
		Variant:  "audit-under-lock",
		Ops:      total,
		Extra:    map[string]float64{"threads": float64(opts.Threads)},
	}, nil
}
