// Package glamdring reproduces the paper's Glamdring-partitioned LibreSSL
// workload (§5.2.3): a certificate-signing benchmark whose big-number
// subtraction (bn_sub_part_words) lives inside the enclave while the rest
// of the signing code stays outside — the partition the Glamdring tool
// produced, and the one whose excessive short ecalls sgx-perf diagnoses.
//
// Three variants:
//
//   - VariantNative:    everything outside, no enclave.
//   - VariantEnclave:   the Glamdring partition — every bn_sub_part_words
//     is an ecall, issued in pairs by bn_mul_recursive;
//     short allocation ocalls fire from inside.
//   - VariantOptimized: bn_mul_recursive moved entirely into the enclave
//     (the paper's fix), one ecall per multiplication.
package glamdring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/bignum"
)

// Variant selects the partition (see package doc).
type Variant string

// Variants.
const (
	VariantNative    Variant = "native"
	VariantEnclave   Variant = "enclave"
	VariantOptimized Variant = "optimized"
	// VariantSwitchless keeps the Glamdring partition (every
	// bn_sub_part_words crosses the boundary) but issues the calls over
	// an in-enclave worker queue instead of EENTER/EEXIT — the
	// SCONE/HotCalls/Eleos technique the paper discusses as the
	// alternative to interface redesign (§2.3, §6). Not part of the
	// paper's Fig. 6; used by the switchless ablation.
	VariantSwitchless Variant = "switchless"
)

// Variants lists the paper's variants in evaluation order.
func Variants() []Variant {
	return []Variant{VariantNative, VariantEnclave, VariantOptimized}
}

// AllVariants additionally includes the switchless extension.
func AllVariants() []Variant {
	return append(Variants(), VariantSwitchless)
}

// Interface-shape constants from §5.2.3: the Glamdring-generated enclave
// declares 171 ecalls and 3,357 ocalls, of which only a handful are hot.
const (
	declaredEcalls = 171
	declaredOcalls = 3357
	// expandEvery issues one short allocation ocall per this many
	// bn_sub_part_words calls, reproducing the ≈110k ocalls per 6.6M
	// ecalls ratio.
	expandEvery = 58
	// scratchPages is the in-enclave scratch region the hot path cycles
	// through, shaping the steady-state working set (§5.2.3: 32 pages).
	scratchPages = 24
	// startupPages are touched once at initialisation (§5.2.3: 61 pages
	// after start-up).
	startupPages = 52
)

// RecommendedHostOptions returns the host configuration the experiment
// uses for this workload: a mitigation level plus the in-enclave compute
// penalty for the data-heavy big-number code.
func RecommendedHostOptions(m sgx.MitigationLevel) []host.Option {
	return []host.Option{
		host.WithMitigation(m),
		host.WithEnclaveComputeFactor(2.0),
	}
}

// Key is the deterministic 512-bit signing key (modulus and private
// exponent). Fixed so runs are reproducible.
type Key struct {
	N bignum.Int
	D bignum.Int
}

// DefaultKey returns the workload's fixed key.
func DefaultKey() Key {
	n, _ := new(big.Int).SetString(
		"c3a5c85c97cb3127b11d55faf0c5402e8ae186de983ef4e4a9b4c225f6d5dd7f"+
			"2e0f0f9e6e0ebc9a37dfd0ab1a9c1fbc8a3c2b1d4e5f60718293a4b5c6d7e8f1", 16)
	d, _ := new(big.Int).SetString(
		"9d2b5e8f1c4a70d6b3e9f2a5c8d1407eb6a3f0c9d2e5b8a1f4c7d0a3b6e9f2c5"+
			"d8a1b4e7f0a3c6d9b2e5f8a1c4d7e0b3a6f9c2d5e8b1a4f7c0d3a6b9e2f5c801", 16)
	return Key{N: bignum.MustFromBig(n), D: bignum.MustFromBig(d)}
}

// Certificate is the to-be-signed document.
type Certificate struct {
	Serial  uint64
	Subject string
}

// digest hashes the certificate into a number below the modulus width.
func (c Certificate) digest() bignum.Int {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.Serial)
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte(c.Subject))
	sum := h.Sum(nil)
	// Widen to 512 bits by doubling the hash, as a simple deterministic
	// padding (this is a performance workload, not a secure scheme).
	return bignum.FromBytes(append(sum, sum...))
}

// DigestForTest exposes the certificate digest so tests can verify
// signatures independently with math/big.
func DigestForTest(c Certificate) *big.Int { return c.digest().Big() }

// subArgs are the marshalled arguments of ecall_bn_sub_part_words.
type subArgs struct {
	Dst, A, B bignum.Int
	Neg       bignum.Word
}

// CopyInBytes implements sdk.Copied.
func (a *subArgs) CopyInBytes() int { return 8 * (len(a.A) + len(a.B)) }

// CopyOutBytes implements sdk.Copied.
func (a *subArgs) CopyOutBytes() int { return 8 * len(a.Dst) }

// mulArgs are the marshalled arguments of ecall_bn_mul_recursive.
type mulArgs struct {
	X, Y bignum.Int
	Out  bignum.Int
}

// CopyInBytes implements sdk.Copied.
func (a *mulArgs) CopyInBytes() int { return 8 * (len(a.X) + len(a.Y)) }

// CopyOutBytes implements sdk.Copied.
func (a *mulArgs) CopyOutBytes() int { return 8 * len(a.Out) }

// Workload is one configured Glamdring-LibreSSL instance.
type Workload struct {
	h       *host.Host
	variant Variant
	key     Key

	app        *sdk.AppEnclave
	proxies    map[string]sdk.Proxy
	otab       *sdk.OcallTable
	switchless *sdk.Switchless
	initDone   bool
}

// New builds the workload on the host. For the enclave variants this
// creates the partitioned enclave with its 171-ecall / 3,357-ocall
// interface.
func New(h *host.Host, variant Variant) (*Workload, error) {
	w := &Workload{h: h, variant: variant, key: DefaultKey()}
	if variant == VariantNative {
		return w, nil
	}

	iface := edl.NewInterface()
	hot := []string{"ecall_bn_sub_part_words", "ecall_bn_mul_recursive", "ecall_glamdring_init"}
	for _, name := range hot {
		if _, err := iface.AddEcall(name, true); err != nil {
			return nil, err
		}
	}
	for i := len(hot); i < declaredEcalls; i++ {
		if _, err := iface.AddEcall(fmt.Sprintf("ecall_glamdring_gen_%03d", i), true); err != nil {
			return nil, err
		}
	}
	if _, err := iface.AddOcall("enclave_ocall_bn_expand", nil); err != nil {
		return nil, err
	}
	for i := 1; i < declaredOcalls; i++ {
		if _, err := iface.AddOcall(fmt.Sprintf("enclave_ocall_gen_%04d", i), nil); err != nil {
			return nil, err
		}
	}

	var scratch sgx.Vaddr
	subCount := 0
	// meterOf charges big-number work to the executing thread (inside the
	// enclave, so the compute factor applies).
	meterOf := func(env *sdk.Env) bignum.Meter {
		return bignum.MeterFunc(func(d time.Duration) { env.Compute(d) })
	}
	touchScratch := func(env *sdk.Env) {
		if scratch == 0 {
			return
		}
		page := subCount % scratchPages
		_ = env.Touch(scratch+sgx.Vaddr(page*sgx.PageSize), 8, true)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_glamdring_init": func(env *sdk.Env, args any) (any, error) {
			if scratch != 0 {
				return nil, nil // already initialised
			}
			v, err := env.Alloc(startupPages * sgx.PageSize)
			if err != nil {
				return nil, err
			}
			if err := env.Touch(v, startupPages*sgx.PageSize, true); err != nil {
				return nil, err
			}
			scratch = v
			return nil, nil
		},
		"ecall_bn_sub_part_words": func(env *sdk.Env, args any) (any, error) {
			a, ok := args.(*subArgs)
			if !ok {
				return nil, fmt.Errorf("glamdring: bad subArgs %T", args)
			}
			subCount++
			touchScratch(env)
			a.Neg = bignum.SubPartWords(meterOf(env), a.Dst, a.A, a.B)
			if subCount%expandEvery == 0 {
				if _, err := env.Ocall("enclave_ocall_bn_expand", nil); err != nil {
					return nil, err
				}
			}
			return a, nil
		},
		"ecall_bn_mul_recursive": func(env *sdk.Env, args any) (any, error) {
			a, ok := args.(*mulArgs)
			if !ok {
				return nil, fmt.Errorf("glamdring: bad mulArgs %T", args)
			}
			m := meterOf(env)
			a.Out = bignum.MulRecursive(m, a.X, a.Y, func(dst, x, y bignum.Int) bignum.Word {
				subCount++
				touchScratch(env)
				if subCount%expandEvery == 0 {
					_, _ = env.Ocall("enclave_ocall_bn_expand", nil)
				}
				return bignum.SubPartWords(m, dst, x, y)
			})
			return a, nil
		},
	}

	numTCS := 2
	if variant == VariantSwitchless {
		numTCS = 4 // two parked workers plus the regular entries
	}
	ctx := h.NewContext("glamdring-init")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "glamdring-libressl",
		CodeBytes:  6 * sgx.PageSize,
		HeapBytes:  (startupPages + scratchPages + 8) * sgx.PageSize,
		StackBytes: 4 * sgx.PageSize,
		NumTCS:     numTCS,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("glamdring: %w", err)
	}

	ocalls := map[string]sdk.OcallFn{
		"enclave_ocall_bn_expand": func(ctx *sgx.Context, args any) (any, error) {
			// A very short untrusted allocation (§5.2.3: 78.65% of ocalls
			// are shorter than 1µs).
			ctx.Compute(300 * time.Nanosecond)
			return nil, nil
		},
	}
	for i := 1; i < declaredOcalls; i++ {
		ocalls[fmt.Sprintf("enclave_ocall_gen_%04d", i)] = func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		}
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		return nil, err
	}
	w.app = app
	w.otab = otab
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	if variant == VariantSwitchless {
		sl, err := h.URTS.StartSwitchless(app, 2, 16)
		if err != nil {
			return nil, fmt.Errorf("glamdring: %w", err)
		}
		w.switchless = sl
	}
	return w, nil
}

// Close stops any switchless workers. Safe on every variant.
func (w *Workload) Close() {
	if w.switchless != nil {
		w.switchless.Stop()
	}
}

// SwitchlessStats reports queue statistics for the switchless variant;
// nil otherwise.
func (w *Workload) SwitchlessStats() (served, fellBack uint64) {
	if w.switchless == nil {
		return 0, 0
	}
	return w.switchless.Stats()
}

// Enclave returns the workload's enclave (nil for the native variant), for
// working-set estimation.
func (w *Workload) Enclave() *sgx.Enclave {
	if w.app == nil {
		return nil
	}
	return w.app.Enclave()
}

// Init performs the start-up phase (enclave initialisation touches its
// startup pages). A no-op for the native variant.
func (w *Workload) Init(ctx *sgx.Context) error {
	if w.variant == VariantNative || w.initDone {
		return nil
	}
	w.initDone = true
	_, err := w.proxies["ecall_glamdring_init"](ctx, nil)
	return err
}

// Sign signs one certificate, routing the big-number work according to
// the variant, and returns the signature.
func (w *Workload) Sign(ctx *sgx.Context, cert Certificate) (bignum.Int, error) {
	meter := bignum.MeterFunc(func(d time.Duration) { ctx.Compute(d) })
	z := cert.digest()
	zmod, err := bignum.Mod(meter, z, w.key.N)
	if err != nil {
		return nil, err
	}
	return w.modExp(ctx, meter, zmod, w.key.D, w.key.N)
}

// modExp is the signing exponentiation with variant-specific
// multiplication.
func (w *Workload) modExp(ctx *sgx.Context, meter bignum.Meter, base, exp, n bignum.Int) (bignum.Int, error) {
	mul, err := w.mulFn(ctx, meter)
	if err != nil {
		return nil, err
	}
	result := bignum.Int{1}
	b := base.Clone()
	e := exp
	for i := 0; i < len(e)*64; i++ {
		if e[i/64]>>(uint(i)%64)&1 == 1 {
			prod, err := mul(result, b)
			if err != nil {
				return nil, err
			}
			if result, err = bignum.Mod(meter, prod, n); err != nil {
				return nil, err
			}
		}
		sq, err := mul(b, b)
		if err != nil {
			return nil, err
		}
		if b, err = bignum.Mod(meter, sq, n); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// mulFn returns the variant's multiplication strategy.
func (w *Workload) mulFn(ctx *sgx.Context, meter bignum.Meter) (func(x, y bignum.Int) (bignum.Int, error), error) {
	switch w.variant {
	case VariantNative:
		return func(x, y bignum.Int) (bignum.Int, error) {
			return bignum.MulRecursive(meter, x, y, nil), nil
		}, nil
	case VariantEnclave:
		sub := w.proxies["ecall_bn_sub_part_words"]
		return func(x, y bignum.Int) (bignum.Int, error) {
			var callErr error
			out := bignum.MulRecursive(meter, x, y, func(dst, a, b bignum.Int) bignum.Word {
				res, err := sub(ctx, &subArgs{Dst: dst, A: a, B: b})
				if err != nil {
					callErr = err
					return 0
				}
				return res.(*subArgs).Neg
			})
			return out, callErr
		}, nil
	case VariantOptimized:
		mul := w.proxies["ecall_bn_mul_recursive"]
		return func(x, y bignum.Int) (bignum.Int, error) {
			res, err := mul(ctx, &mulArgs{X: x, Y: y})
			if err != nil {
				return nil, err
			}
			return res.(*mulArgs).Out, nil
		}, nil
	case VariantSwitchless:
		decl, ok := w.app.Interface().Lookup("ecall_bn_sub_part_words")
		if !ok {
			return nil, fmt.Errorf("glamdring: sub ecall undeclared")
		}
		subID := decl.ID
		return func(x, y bignum.Int) (bignum.Int, error) {
			var callErr error
			out := bignum.MulRecursive(meter, x, y, func(dst, a, b bignum.Int) bignum.Word {
				res, err := w.switchless.Call(ctx, subID, w.otab, &subArgs{Dst: dst, A: a, B: b})
				if err != nil {
					callErr = err
					return 0
				}
				return res.(*subArgs).Neg
			})
			return out, callErr
		}, nil
	default:
		return nil, fmt.Errorf("glamdring: unknown variant %q", w.variant)
	}
}

// Run executes the signing benchmark: as many signatures as possible
// within opts.Duration of virtual time (the paper runs 30 s), or exactly
// opts.Ops signatures when set.
func (w *Workload) Run(ctx *sgx.Context, opts workloads.Options) (workloads.Result, error) {
	if opts.Duration <= 0 && opts.Ops <= 0 {
		opts.Duration = 30 * time.Second
	}
	if err := w.Init(ctx); err != nil {
		return workloads.Result{}, err
	}
	start := ctx.Now()
	deadline := start + ctx.Clock().Frequency().Cycles(opts.Duration)
	signs := 0
	for {
		if opts.Ops > 0 && signs >= opts.Ops {
			break
		}
		if opts.Duration > 0 && ctx.Now() >= deadline {
			break
		}
		cert := Certificate{Serial: uint64(signs), Subject: "CN=sgx-perf.example"}
		if _, err := w.Sign(ctx, cert); err != nil {
			return workloads.Result{}, fmt.Errorf("glamdring: sign %d: %w", signs, err)
		}
		signs++
	}
	return workloads.Result{
		Workload: "glamdring-libressl",
		Variant:  string(w.variant),
		Ops:      signs,
		Virtual:  ctx.Clock().Frequency().Duration(ctx.Now() - start),
	}, nil
}
