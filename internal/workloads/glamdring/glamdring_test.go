package glamdring_test

import (
	"math/big"
	"testing"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/glamdring"
)

func newHost(t *testing.T) *host.Host {
	t.Helper()
	h, err := host.New(glamdring.RecommendedHostOptions(sgx.MitigationNone)...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newWorkload(t *testing.T, variant glamdring.Variant) (*host.Host, *sgx.Context, *glamdring.Workload) {
	t.Helper()
	h := newHost(t)
	w, err := glamdring.New(h, variant)
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	if err := w.Init(ctx); err != nil {
		t.Fatal(err)
	}
	return h, ctx, w
}

func TestSignatureCorrectAcrossVariants(t *testing.T) {
	// All three variants must compute the identical signature, and it
	// must equal an independent math/big modexp over the same digest.
	cert := glamdring.Certificate{Serial: 42, Subject: "CN=test"}
	key := glamdring.DefaultKey()

	sigs := map[glamdring.Variant]*big.Int{}
	for _, v := range glamdring.Variants() {
		_, ctx, w := newWorkload(t, v)
		sig, err := w.Sign(ctx, cert)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		sigs[v] = sig.Big()
	}
	for _, v := range glamdring.Variants()[1:] {
		if sigs[v].Cmp(sigs[glamdring.VariantNative]) != 0 {
			t.Fatalf("variant %s signature differs from native", v)
		}
	}
	// Independent verification: z^d mod n via math/big.
	want := new(big.Int).Exp(glamdring.DigestForTest(cert), key.D.Big(), key.N.Big())
	if sigs[glamdring.VariantNative].Cmp(want) != 0 {
		t.Fatal("native signature disagrees with math/big")
	}
}

func TestVariantOrderingMatchesPaper(t *testing.T) {
	// §5.2.3 + Fig. 6: native ≫ optimized > enclave. The paper measures
	// 145 / ≈73 / 33.9 signs/s.
	rates := map[glamdring.Variant]float64{}
	for _, v := range glamdring.Variants() {
		_, ctx, w := newWorkload(t, v)
		res, err := w.Run(ctx, workloads.Options{Ops: 3})
		if err != nil {
			t.Fatal(err)
		}
		rates[v] = res.Throughput()
	}
	native, enclave, opt := rates[glamdring.VariantNative], rates[glamdring.VariantEnclave], rates[glamdring.VariantOptimized]
	if !(native > opt && opt > enclave) {
		t.Fatalf("ordering wrong: native=%.1f optimized=%.1f enclave=%.1f", native, opt, enclave)
	}
	if native < 90 || native > 230 {
		t.Errorf("native rate %.1f signs/s, want ≈145", native)
	}
	if ratio := enclave / native; ratio < 0.1 || ratio > 0.45 {
		t.Errorf("enclave/native = %.2f, want ≈0.23", ratio)
	}
	if speedup := opt / enclave; speedup < 1.5 {
		t.Errorf("optimized/enclave = %.2fx, want ≈2.16x", speedup)
	}
}

func TestEnclaveVariantCallShape(t *testing.T) {
	// §5.2.3: bn_sub_part_words accounts for ≈99.5% of all ecalls, about
	// 6,500 per signature, with short ocalls from the BN_ family.
	h := newHost(t)
	l, err := logger.Attach(h, logger.Options{Workload: "glamdring"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := glamdring.New(h, glamdring.VariantEnclave)
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	const signs = 2
	if _, err := w.Run(ctx, workloads.Options{Ops: signs}); err != nil {
		t.Fatal(err)
	}

	trace := l.Trace()
	total := trace.Ecalls.Len()
	subs := trace.Ecalls.Count(func(e events.CallEvent) bool {
		return e.Name == "ecall_bn_sub_part_words"
	})
	if frac := float64(subs) / float64(total); frac < 0.99 {
		t.Errorf("bn_sub_part_words = %.3f of ecalls, want ≥0.99", frac)
	}
	perSign := subs / signs
	if perSign < 5000 || perSign > 8000 {
		t.Errorf("bn_sub_part_words per signature = %d, want ≈6,500", perSign)
	}
	// Allocation ocalls fire at the ≈1-per-58-subs rate.
	expands := trace.Ocalls.Count(func(e events.CallEvent) bool {
		return e.Name == "enclave_ocall_bn_expand"
	})
	if expands < subs/70 || expands > subs/45 {
		t.Errorf("expand ocalls = %d for %d subs, want ≈1/58", expands, subs)
	}

	// The analyser must flag the SISC batching opportunity on the sub
	// ecall — the paper's headline finding.
	a, err := analyzer.New(trace, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	report := a.Analyze()
	foundBatch := false
	for _, f := range report.FindingsFor("ecall_bn_sub_part_words") {
		for _, s := range f.Solutions {
			if s == analyzer.SolutionBatch || s == analyzer.SolutionMoveCaller {
				foundBatch = true
			}
		}
	}
	if !foundBatch {
		t.Errorf("analyser did not flag ecall_bn_sub_part_words for batching/moving; findings: %+v", report.Findings)
	}
	// Mean sub duration is near the transition time (§5.2.3 reports
	// ≈3µs); with vanilla costs expect roughly the dispatch overhead.
	stats, ok := a.Stats("ecall_bn_sub_part_words")
	if !ok {
		t.Fatal("no stats for the sub ecall")
	}
	if stats.Mean > 6*time.Microsecond {
		t.Errorf("sub ecall mean %v, want a few µs at most", stats.Mean)
	}
}

func TestOptimizedVariantCallShape(t *testing.T) {
	h := newHost(t)
	l, err := logger.Attach(h, logger.Options{Workload: "glamdring-opt"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := glamdring.New(h, glamdring.VariantOptimized)
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	const signs = 2
	if _, err := w.Run(ctx, workloads.Options{Ops: signs}); err != nil {
		t.Fatal(err)
	}
	trace := l.Trace()
	subs := trace.Ecalls.Count(func(e events.CallEvent) bool {
		return e.Name == "ecall_bn_sub_part_words"
	})
	muls := trace.Ecalls.Count(func(e events.CallEvent) bool {
		return e.Name == "ecall_bn_mul_recursive"
	})
	if subs != 0 {
		t.Errorf("optimized variant still issued %d sub ecalls", subs)
	}
	// ≈768 multiplications per 512-bit square-and-multiply signature.
	perSign := muls / signs
	if perSign < 600 || perSign > 900 {
		t.Errorf("mul ecalls per signature = %d, want ≈768", perSign)
	}
}

func TestWorkingSetMatchesPaperShape(t *testing.T) {
	// §5.2.3: 61 pages after start-up, 32 during the benchmark.
	h := newHost(t)
	w, err := glamdring.New(h, glamdring.VariantEnclave)
	if err != nil {
		t.Fatal(err)
	}
	est := workingset.New(h, w.Enclave())
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()

	ctx := h.NewContext("driver")
	if err := w.Init(ctx); err != nil {
		t.Fatal(err)
	}
	startup := est.Count()
	if startup < 45 || startup > 75 {
		t.Errorf("start-up working set = %d pages, want ≈61", startup)
	}
	est.Mark()
	if _, err := w.Run(ctx, workloads.Options{Ops: 1}); err != nil {
		t.Fatal(err)
	}
	during := est.Count()
	if during < 20 || during > 45 {
		t.Errorf("benchmark working set = %d pages, want ≈32", during)
	}
	if during >= startup {
		t.Errorf("benchmark set (%d) not smaller than start-up (%d)", during, startup)
	}
}

func TestInterfaceShapeMatchesPaper(t *testing.T) {
	// §5.2.3: 171 ecalls and 3,357 ocalls declared.
	h := newHost(t)
	w, err := glamdring.New(h, glamdring.VariantEnclave)
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	apps, ok := h.URTS.AppEnclaveFor(w.Enclave().ID)
	if !ok {
		t.Fatal("enclave not registered")
	}
	iface := apps.Interface()
	if got := len(iface.Ecalls()); got != 171 {
		t.Errorf("declared ecalls = %d, want 171", got)
	}
	// +4 SDK sync ocalls appended by the runtime.
	if got := len(iface.Ocalls()); got != 3357+4 {
		t.Errorf("declared ocalls = %d, want 3361", got)
	}
}

func TestUnknownVariantRejected(t *testing.T) {
	h := newHost(t)
	w, err := glamdring.New(h, glamdring.Variant("bogus"))
	if err != nil {
		t.Fatal(err) // construction treats it as enclave-less
	}
	ctx := h.NewContext("driver")
	if _, err := w.Sign(ctx, glamdring.Certificate{}); err == nil {
		t.Fatal("unknown variant signed successfully")
	}
}

func TestSwitchlessVariantCorrectAndFaster(t *testing.T) {
	cert := glamdring.Certificate{Serial: 7, Subject: "CN=switchless"}
	_, ctx, w := newWorkload(t, glamdring.VariantSwitchless)
	defer w.Close()
	sig, err := w.Sign(ctx, cert)
	if err != nil {
		t.Fatal(err)
	}
	_, nctx, nw := newWorkload(t, glamdring.VariantNative)
	want, err := nw.Sign(nctx, cert)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Big().Cmp(want.Big()) != 0 {
		t.Fatal("switchless signature differs from native")
	}
	served, _ := w.SwitchlessStats()
	if served == 0 {
		t.Fatal("no sub calls went through the switchless queue")
	}
	if len(glamdring.AllVariants()) != 4 {
		t.Fatalf("AllVariants = %v", glamdring.AllVariants())
	}
}
