// Package workloads defines the shared result type and run options for
// the four evaluation workloads of §5: TaLoS+nginx, SecureKeeper, the
// SQLite-style database, and the Glamdring-partitioned LibreSSL. Each
// workload lives in its own subpackage and reports a Result measured in
// virtual time.
package workloads

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is one workload run's outcome.
type Result struct {
	// Workload and Variant identify the run (e.g. "glamdring"/"enclave").
	Workload string
	Variant  string
	// Ops is the number of completed operations (requests, inserts,
	// signatures…).
	Ops int
	// Virtual is the elapsed virtual time of the driving thread.
	Virtual time.Duration
	// Extra carries workload-specific metrics (working-set pages, event
	// counts, …).
	Extra map[string]float64
}

// Throughput returns operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Virtual <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Virtual.Seconds()
}

// String renders the result in one line.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: %d ops in %v (%.1f ops/s)",
		r.Workload, r.Variant, r.Ops, r.Virtual.Round(time.Microsecond), r.Throughput())
	if len(r.Extra) > 0 {
		keys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.0f", k, r.Extra[k])
		}
	}
	return b.String()
}

// Options are common run parameters.
type Options struct {
	// Duration bounds the run in virtual time (time-driven workloads).
	Duration time.Duration
	// Ops bounds the run in operations (count-driven workloads).
	Ops int
}
