// Package leaky is the confidentiality counterpart of the amplify
// exhibit: a small key-vault enclave that commits, in one interface,
// every sin the secret-flow taint analysis exists to catch. Its export
// ecall ships the raw //sgxperf:secret master key through an ocall (the
// unsealed flow secretflow traces source→sink); its stamp ecall writes
// a boundary param its EDL declares [in] (the write is dropped at
// copy-back); its readout ecall reads its [out] buffer before the first
// write (stale enclave memory leaks to the caller); and its scatter
// ecall dereferences a user_check buffer without a bounds guard. A
// fifth, backup ecall crosses the same key through the seal sanitizer
// and must stay silent in every report — the discipline the analysis
// enforces, demonstrated. Every sin is annotated for the repository
// lint (the exhibit is intentional) but the staticlint source pass
// ignores suppressions and keeps pricing them, which is the point.
package leaky

import (
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// The enclave interface: five ecalls, each exhibiting one secret-flow
// or direction shape, and the two stash ocalls the key crosses through.
const (
	EcallExport  = "sgx_ecall_export_key"
	EcallBackup  = "sgx_ecall_backup_key"
	EcallStamp   = "sgx_ecall_stamp"
	EcallReadout = "sgx_ecall_readout"
	EcallScatter = "sgx_ecall_scatter"
	OcallStash   = "ocall_stash_key"
	OcallSealed  = "ocall_stash_sealed"
)

// In-enclave work costs (virtual time).
const (
	costExport  = 300 * time.Nanosecond
	costSeal    = 900 * time.Nanosecond
	costStamp   = 150 * time.Nanosecond
	costReadout = 150 * time.Nanosecond
	costScatter = 200 * time.Nanosecond
	// Untrusted-side cost of the stash ocall implementations.
	costStash = 1200 * time.Nanosecond
)

// stampArgs is the boundary buffer of EcallStamp; its EDL declares the
// tag [in], so the handler's write to it is dropped at copy-back.
type stampArgs struct {
	Tag int
}

// readoutArgs is the boundary buffer of EcallReadout; its EDL declares
// the sum [out], so the buffer arrives uninitialised.
type readoutArgs struct {
	Sum int
}

// scatterArgs is the boundary buffer of EcallScatter; its EDL declares
// the buffer user_check, so the SDK copies and checks nothing for it.
type scatterArgs struct {
	Buf []byte
	N   int
}

// vault is the trusted side: the secret master key and a public epoch
// counter the direction exhibits use as harmless payload.
type vault struct {
	//sgxperf:secret device master key, provisioned at enclave build; must never cross unsealed
	masterKey [32]byte
	epoch     int
	// mu is the Go-level guard for the simulation's own memory safety
	// when the driver runs threaded; it charges no virtual time.
	mu sync.Mutex
}

// Workload is one configured key-vault enclave.
type Workload struct {
	h       *host.Host
	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy
	s       *vault
}

// Interface builds the key-vault EDL interface. The scatter buffer is
// deliberately user_check and the stamp tag deliberately [in] — the
// directions the handlers then contradict.
func Interface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall(EcallExport, true); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallBackup, true); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallStamp, true,
		edl.Param{Name: "tag", Dir: edl.DirIn}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallReadout, true,
		edl.Param{Name: "sum", Dir: edl.DirOut}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallScatter, true,
		edl.Param{Name: "buf", Dir: edl.DirUserCheck},
		edl.Param{Name: "n"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallStash, nil,
		edl.Param{Name: "key"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallSealed, nil,
		edl.Param{Name: "blob", Dir: edl.DirIn}); err != nil {
		return nil, err
	}
	return iface, nil
}

// New builds the key-vault enclave.
func New(h *host.Host, ctx *sgx.Context) (*Workload, error) {
	w := &Workload{h: h, s: &vault{}}
	for i := range w.s.masterKey {
		w.s.masterKey[i] = byte(i*7 + 3)
	}
	iface, err := Interface()
	if err != nil {
		return nil, err
	}
	impl := map[string]sdk.TrustedFn{
		EcallExport:  w.handleExport,
		EcallBackup:  w.handleBackup,
		EcallStamp:   w.handleStamp,
		EcallReadout: w.handleReadout,
		EcallScatter: w.handleScatter,
	}
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "leaky",
		CodeBytes:  8 * sgx.PageSize,
		HeapBytes:  16 * sgx.PageSize,
		StackBytes: 4 * sgx.PageSize,
		NumTCS:     8,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("leaky: %w", err)
	}
	ocalls := map[string]sdk.OcallFn{
		OcallStash: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costStash)
			return nil, nil
		},
		OcallSealed: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costStash)
			return nil, nil
		},
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		return nil, err
	}
	w.app = app
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	return w, nil
}

// handleExport stashes the raw master key with the untrusted side — the
// unsealed secret flow the taint analysis traces source→sink.
func (w *Workload) handleExport(env *sdk.Env, args any) (any, error) {
	env.Compute(costExport)
	//sgxperf:allow(secretflow) deliberate exhibit: stashing the raw master key is the unsealed flow the taint analysis demo reproduces
	return env.Ocall(OcallStash, w.s.masterKey)
}

// handleBackup crosses the same key sealed: sealBlob is a recognised
// sanitizer, so this flow must stay silent in every report.
func (w *Workload) handleBackup(env *sdk.Env, args any) (any, error) {
	env.Compute(costSeal)
	return env.Ocall(OcallSealed, sealBlob(w.s.masterKey))
}

// sealBlob stands in for authenticated sealing in the simulation: the
// taint analysis recognises seal/encrypt functions by name and treats
// their result as safe to cross the boundary.
func sealBlob(key [32]byte) []byte {
	out := make([]byte, len(key))
	for i, b := range key {
		out[i] = b ^ 0xa5
	}
	return out
}

// handleStamp writes the boundary tag its EDL declares [in]: the store
// is silently dropped at copy-back, so the caller never sees the epoch.
func (w *Workload) handleStamp(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*stampArgs)
	if !ok {
		return nil, fmt.Errorf("leaky: bad stampArgs %T", args)
	}
	env.Compute(costStamp)
	w.s.mu.Lock()
	epoch := w.s.epoch
	w.s.mu.Unlock()
	//sgxperf:allow(edlflow) deliberate exhibit: writing an [in] param is the dropped copy-back the EDL cross-validation demo reproduces
	a.Tag = epoch
	return epoch, nil
}

// handleReadout reads its [out] buffer before the first write: the
// buffer arrives uninitialised, so the read hands back whatever the
// copy-back machinery returns — stale memory, leaked.
func (w *Workload) handleReadout(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*readoutArgs)
	if !ok {
		return nil, fmt.Errorf("leaky: bad readoutArgs %T", args)
	}
	env.Compute(costReadout)
	//sgxperf:allow(edlflow) deliberate exhibit: reading the [out] buffer before its first write is the stale-data leak the EDL cross-validation demo reproduces
	stale := a.Sum
	a.Sum = stale + 1
	return a.Sum, nil
}

// handleScatter dereferences the user_check buffer without consulting
// the bound that travels next to it — the unchecked untrusted pointer
// §3.6 warns about.
func (w *Workload) handleScatter(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*scatterArgs)
	if !ok {
		return nil, fmt.Errorf("leaky: bad scatterArgs %T", args)
	}
	env.Compute(costScatter)
	w.s.mu.Lock()
	epoch := w.s.epoch
	w.s.mu.Unlock()
	//sgxperf:allow(edlflow) deliberate exhibit: dereferencing the user_check buffer unguarded is the unchecked-pointer hazard the EDL cross-validation demo reproduces
	a.Buf[0] = byte(epoch)
	return len(a.Buf), nil
}

// Export invokes the raw-key export ecall from untrusted code.
func (w *Workload) Export(ctx *sgx.Context) error {
	_, err := w.proxies[EcallExport](ctx, nil)
	return err
}

// Backup invokes the sealed-backup ecall from untrusted code.
func (w *Workload) Backup(ctx *sgx.Context) error {
	_, err := w.proxies[EcallBackup](ctx, nil)
	return err
}

// Stamp invokes the stamp ecall from untrusted code.
func (w *Workload) Stamp(ctx *sgx.Context) (int, error) {
	res, err := w.proxies[EcallStamp](ctx, &stampArgs{})
	if err != nil {
		return 0, err
	}
	n, _ := res.(int)
	return n, nil
}

// Readout invokes the readout ecall from untrusted code.
func (w *Workload) Readout(ctx *sgx.Context) (int, error) {
	res, err := w.proxies[EcallReadout](ctx, &readoutArgs{})
	if err != nil {
		return 0, err
	}
	n, _ := res.(int)
	return n, nil
}

// Scatter invokes the scatter ecall from untrusted code.
func (w *Workload) Scatter(ctx *sgx.Context) error {
	_, err := w.proxies[EcallScatter](ctx, &scatterArgs{Buf: make([]byte, 8), N: 8})
	return err
}

// Enclave returns the key-vault enclave.
func (w *Workload) Enclave() *sgx.Enclave { return w.app.Enclave() }

// RunOptions configures a run.
type RunOptions struct {
	// Exports is the number of raw-key export ecalls (default 3) —
	// each one crosses the unsealed secret.
	Exports int
	// Backups is the number of sealed-backup ecalls (default 2) —
	// silent in every report.
	Backups int
	// Stamps, Readouts and Scatters drive the direction exhibits
	// (defaults 4, 2 and 2).
	Stamps   int
	Readouts int
	Scatters int
}

// Run drives the exhibit single-threaded so hybrid reports are
// deterministic: the unsealed flow crosses Exports times, the sealed
// flow Backups times, and each direction sin executes its default
// count.
func (w *Workload) Run(opts RunOptions) (workloads.Result, error) {
	if opts.Exports <= 0 {
		opts.Exports = 3
	}
	if opts.Backups <= 0 {
		opts.Backups = 2
	}
	if opts.Stamps <= 0 {
		opts.Stamps = 4
	}
	if opts.Readouts <= 0 {
		opts.Readouts = 2
	}
	if opts.Scatters <= 0 {
		opts.Scatters = 2
	}
	var (
		wg     sync.WaitGroup
		runErr error
	)
	wg.Add(1)
	if err := w.h.Spawn("leaky-driver", func(ctx *sgx.Context) {
		defer wg.Done()
		runErr = w.drive(ctx, opts)
	}); err != nil {
		return workloads.Result{}, err
	}
	wg.Wait()
	w.h.Wait()
	if runErr != nil {
		return workloads.Result{}, fmt.Errorf("leaky: %w", runErr)
	}
	return workloads.Result{
		Workload: "leaky",
		Variant:  "secret-flow",
		Ops:      opts.Exports + opts.Backups + opts.Stamps + opts.Readouts + opts.Scatters,
		Extra: map[string]float64{
			"exports": float64(opts.Exports),
			"backups": float64(opts.Backups),
		},
	}, nil
}

func (w *Workload) drive(ctx *sgx.Context, opts RunOptions) error {
	for i := 0; i < opts.Exports; i++ {
		if err := w.Export(ctx); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Backups; i++ {
		if err := w.Backup(ctx); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Stamps; i++ {
		if _, err := w.Stamp(ctx); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Readouts; i++ {
		if _, err := w.Readout(ctx); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Scatters; i++ {
		if err := w.Scatter(ctx); err != nil {
			return err
		}
	}
	return nil
}
