package keeper_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads/keeper"
)

func TestZKStoreHierarchy(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("t")
	s := keeper.NewZKStore()

	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/a", Data: []byte("x"), Version: -1}); r.Err != "" {
		t.Fatal(r.Err)
	}
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/a/b", Data: []byte("y"), Version: -1}); r.Err != "" {
		t.Fatal(r.Err)
	}
	// Parent must exist.
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/ghost/child", Version: -1}); r.Err == "" {
		t.Fatal("create under missing parent succeeded")
	}
	// Duplicate create fails.
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/a", Version: -1}); r.Err == "" {
		t.Fatal("duplicate create succeeded")
	}
	// Children listing.
	r := s.Apply(ctx, keeper.Request{Op: keeper.OpGetChildren, Path: "/a"})
	if len(r.Children) != 1 || r.Children[0] != "b" {
		t.Fatalf("children = %v", r.Children)
	}
	// Versioned set.
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpSetData, Path: "/a", Data: []byte("z"), Version: 0}); r.Err != "" || r.Version != 1 {
		t.Fatalf("set: %+v", r)
	}
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpSetData, Path: "/a", Data: []byte("w"), Version: 0}); r.Err == "" {
		t.Fatal("stale version accepted")
	}
	// Get returns latest.
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpGetData, Path: "/a"}); string(r.Data) != "z" || r.Version != 1 {
		t.Fatalf("get: %+v", r)
	}
	// Delete refuses non-empty, then works bottom-up.
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpDelete, Path: "/a", Version: -1}); r.Err == "" {
		t.Fatal("delete of non-empty node succeeded")
	}
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpDelete, Path: "/a/b", Version: -1}); r.Err != "" {
		t.Fatal(r.Err)
	}
	if r := s.Apply(ctx, keeper.Request{Op: keeper.OpExists, Path: "/a/b"}); r.Exists {
		t.Fatal("deleted node still exists")
	}
	// Bad paths rejected.
	for _, p := range []string{"", "a", "/a//b", "/a/"} {
		if r := s.Apply(ctx, keeper.Request{Op: keeper.OpExists, Path: p}); r.Err == "" && p != "/a/" || p == "" && r.Err == "" {
			// splitPath rejects all of these
			if r.Err == "" {
				t.Fatalf("bad path %q accepted", p)
			}
		}
	}
}

func newKeeper(t *testing.T, opts ...host.Option) (*host.Host, *sgx.Context, *keeper.Workload) {
	t.Helper()
	h, err := host.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return h, ctx, w
}

func TestEndToEndEncryption(t *testing.T) {
	h, ctx, w := newKeeper(t)
	_ = h
	c, err := w.Connect(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("top-secret payload")
	if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/app/secret", Version: -1}); err != nil || r.Err == "" {
		// parent /app missing: expected ZK error, transported correctly
		if err != nil {
			t.Fatal(err)
		}
	}
	if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/app", Version: -1}); err != nil || r.Err != "" {
		t.Fatalf("create /app: %v %q", err, r.Err)
	}
	if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/app/secret", Data: secret, Version: -1}); err != nil || r.Err != "" {
		t.Fatalf("create: %v %q", err, r.Err)
	}
	r, err := c.Do(ctx, keeper.Request{Op: keeper.OpGetData, Path: "/app/secret"})
	if err != nil || r.Err != "" {
		t.Fatalf("get: %v %q", err, r.Err)
	}
	if !bytes.Equal(r.Data, secret) {
		t.Fatalf("round trip corrupted: %q", r.Data)
	}

	// The untrusted store must never see the plaintext path or payload.
	raw := w.Store().Apply(ctx, keeper.Request{Op: keeper.OpGetChildren, Path: "/"})
	for _, child := range raw.Children {
		if strings.Contains(child, "app") {
			t.Fatalf("plaintext path segment leaked to store: %q", child)
		}
	}
	// Find the encrypted node and check its payload is ciphertext.
	var probe func(path string) bool
	probe = func(path string) bool {
		res := w.Store().Apply(ctx, keeper.Request{Op: keeper.OpGetData, Path: path})
		if bytes.Contains(res.Data, secret) {
			t.Fatalf("plaintext payload stored at %q", path)
		}
		kids := w.Store().Apply(ctx, keeper.Request{Op: keeper.OpGetChildren, Path: path})
		for _, k := range kids.Children {
			sub := path + "/" + k
			if path == "/" {
				sub = "/" + k
			}
			probe(sub)
		}
		return true
	}
	probe("/")
}

func TestTwoClientsIsolatedSessions(t *testing.T) {
	_, ctx, w := newKeeper(t)
	c1, err := w.Connect(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := w.Connect(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := c1.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/x", Data: []byte("one"), Version: -1}); err != nil || r.Err != "" {
		t.Fatalf("%v %q", err, r.Err)
	}
	// Client 2 uses different keys: its /x maps to a different pseudonym,
	// so it sees no node.
	r, err := c2.Do(ctx, keeper.Request{Op: keeper.OpExists, Path: "/x"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exists {
		t.Fatal("client 2 sees client 1's pseudonymised node")
	}
}

func TestEcallDurationsMatchPaper(t *testing.T) {
	// §5.2.4: mean execution ≈14µs and ≈18µs — ≈4–6× the transition cost.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "securekeeper"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Connect(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/c1", Version: -1}); err != nil || r.Err != "" {
		t.Fatalf("%v %q", err, r.Err)
	}
	payload := bytes.Repeat([]byte("p"), 1024)
	for i := 0; i < 200; i++ {
		if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpSetData, Path: "/c1", Data: payload, Version: -1}); err != nil || r.Err != "" {
			t.Fatalf("%v %q", err, r.Err)
		}
	}
	a, err := analyzer.New(l.Trace(), analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Means below are transition-adjusted; the paper's raw means include
	// the transition, so compare against ≈14µs/18µs minus the ≈4.2µs
	// overhead.
	s1, ok := a.Stats(keeper.EcallFromClient)
	if !ok {
		t.Fatal("no stats for client ecall")
	}
	s2, ok := a.Stats(keeper.EcallFromZK)
	if !ok {
		t.Fatal("no stats for zk ecall")
	}
	if s1.Mean < 6*time.Microsecond || s1.Mean > 16*time.Microsecond {
		t.Errorf("client ecall mean %v, want ≈10µs (14µs incl. transition)", s1.Mean)
	}
	if s2.Mean < 9*time.Microsecond || s2.Mean > 20*time.Microsecond {
		t.Errorf("zk ecall mean %v, want ≈14µs (18µs incl. transition)", s2.Mean)
	}
	if s2.Mean <= s1.Mean {
		t.Errorf("zk ecall (%v) should be longer than client ecall (%v)", s2.Mean, s1.Mean)
	}
	// No performance findings: the interface is already narrow and calls
	// are long (§5.2.4: "we were not able to spot any performance
	// optimisation possibilities").
	report := a.Analyze()
	for _, f := range report.Findings {
		if f.Call == keeper.EcallFromClient || f.Call == keeper.EcallFromZK {
			t.Errorf("unexpected finding on a well-designed interface: %+v", f)
		}
	}
}

func TestConnectBurstProducesSyncOcalls(t *testing.T) {
	// §5.2.4: simultaneous connects contend on the map mutex → sync
	// ocalls; the benchmark phase itself stays quiet.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "securekeeper"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(keeper.RunOptions{
		Clients:      8,
		Duration:     200 * time.Millisecond,
		TargetOpRate: 17750,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	trace := l.Trace()
	syncs := trace.Syncs.Len()
	if syncs == 0 {
		t.Skip("no contention under this scheduling; burst covered by sdk tests")
	}
	prints := trace.Ocalls.Count(func(e events.CallEvent) bool {
		return e.Name == "ocall_print_debug"
	})
	if prints != 8*12 {
		t.Errorf("debug prints = %d, want 96", prints)
	}
	// Wake graph shows which thread woke which.
	a, err := analyzer.New(trace, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wakes := a.WakeGraph(); len(wakes) == 0 {
		t.Error("sync events recorded but wake graph empty")
	}
}

func TestRunEventVolumeScalesToPaper(t *testing.T) {
	// §5.2.4: 31s under full load → ≈1.1M ecall events. We run 1/62 of
	// the duration and expect ≈1/62 of the events (±40%).
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "securekeeper"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(keeper.RunOptions{Clients: 8, Duration: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	got := l.Trace().Ecalls.Len()
	want := 1100000 / 62
	if got < want*6/10 || got > want*14/10 {
		t.Errorf("ecall events = %d for 0.5s, want ≈%d (1.1M over 31s)", got, want)
	}
}

func TestWorkingSetMatchesPaperShape(t *testing.T) {
	// §5.2.4: 322 pages at start-up, 94 during execution.
	h, ctx, w := newKeeper(t)
	_ = h
	est := workingset.New(h, w.Enclave())
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()

	c, err := w.Connect(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpCreate, Path: "/c1", Version: -1}); err != nil || r.Err != "" {
		t.Fatalf("%v %q", err, r.Err)
	}
	startup := est.Count()
	if startup < 280 || startup > 360 {
		t.Errorf("start-up working set = %d pages, want ≈322", startup)
	}
	est.Mark()
	payload := bytes.Repeat([]byte("p"), 1024)
	for i := 0; i < 300; i++ {
		if r, err := c.Do(ctx, keeper.Request{Op: keeper.OpSetData, Path: "/c1", Data: payload, Version: -1}); err != nil || r.Err != "" {
			t.Fatalf("%v %q", err, r.Err)
		}
	}
	during := est.Count()
	if during < 75 || during > 115 {
		t.Errorf("steady working set = %d pages, want ≈94", during)
	}
	// §5.2.4's capacity estimate: how many such enclaves fit the EPC
	// without paging.
	perEnclave := during + 2 // + SECS and TCS
	fit := sgx.EPCUsablePages / perEnclave
	if fit < 200 || fit > 300 {
		t.Errorf("EPC fits %d enclaves, paper estimates 249", fit)
	}
}
