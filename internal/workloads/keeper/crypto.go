package keeper

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// box is an AES-GCM channel with a counter nonce — the transport
// encryption between client and proxy, and the storage encryption of
// payloads forwarded to ZooKeeper.
type box struct {
	mu   sync.Mutex
	aead cipher.AEAD
	seq  uint64
}

func newBox(key []byte) (*box, error) {
	sum := sha256.Sum256(key)
	block, err := aes.NewCipher(sum[:16])
	if err != nil {
		return nil, fmt.Errorf("keeper: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("keeper: %w", err)
	}
	return &box{aead: aead}, nil
}

// Seal encrypts plain, prepending the nonce.
func (b *box) Seal(plain []byte) []byte {
	b.mu.Lock()
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	nonce := make([]byte, b.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, seq)
	return append(nonce, b.aead.Seal(nil, nonce, plain, nil)...)
}

// Open decrypts a Seal output.
func (b *box) Open(sealed []byte) ([]byte, error) {
	ns := b.aead.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("keeper: sealed packet too short")
	}
	return b.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
}

// pathPseudonym encrypts a ZooKeeper path segment-wise, preserving the
// hierarchy so the untrusted service can still organise znodes — the
// SecureKeeper scheme.
func pathPseudonym(key []byte, path string) string {
	if path == "/" {
		return "/"
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	out := make([]string, len(parts))
	for i, p := range parts {
		mac := hmac.New(sha256.New, key)
		mac.Write([]byte(p))
		out[i] = hex.EncodeToString(mac.Sum(nil))[:16]
	}
	return "/" + strings.Join(out, "/")
}

// encodeRequest / decodeRequest serialise a Request for transport.
func encodeRequest(r Request) []byte {
	out := make([]byte, 0, 16+len(r.Path)+len(r.Data))
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(r.Op))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(r.Version)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.Path)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(r.Data)))
	out = append(out, hdr[:]...)
	out = append(out, r.Path...)
	out = append(out, r.Data...)
	return out
}

func decodeRequest(b []byte) (Request, error) {
	if len(b) < 16 {
		return Request{}, fmt.Errorf("keeper: truncated request")
	}
	pathLen := int(binary.LittleEndian.Uint32(b[8:12]))
	dataLen := int(binary.LittleEndian.Uint32(b[12:16]))
	if len(b) != 16+pathLen+dataLen {
		return Request{}, fmt.Errorf("keeper: request length mismatch")
	}
	return Request{
		Op:      ZKOp(binary.LittleEndian.Uint32(b[0:4])),
		Version: int(int32(binary.LittleEndian.Uint32(b[4:8]))),
		Path:    string(b[16 : 16+pathLen]),
		Data:    append([]byte(nil), b[16+pathLen:]...),
	}, nil
}

// encodeResponse / decodeResponse serialise a Response for transport.
func encodeResponse(r Response) []byte {
	childBlob := strings.Join(r.Children, "\x00")
	out := make([]byte, 0, 20+len(r.Err)+len(r.Data)+len(childBlob))
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(int32(r.Version)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(r.Err)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(childBlob)))
	if r.Exists {
		hdr[16] = 1
	}
	out = append(out, hdr[:]...)
	out = append(out, r.Err...)
	out = append(out, r.Data...)
	out = append(out, childBlob...)
	return out
}

func decodeResponse(b []byte) (Response, error) {
	if len(b) < 20 {
		return Response{}, fmt.Errorf("keeper: truncated response")
	}
	errLen := int(binary.LittleEndian.Uint32(b[4:8]))
	dataLen := int(binary.LittleEndian.Uint32(b[8:12]))
	childLen := int(binary.LittleEndian.Uint32(b[12:16]))
	if len(b) != 20+errLen+dataLen+childLen {
		return Response{}, fmt.Errorf("keeper: response length mismatch")
	}
	r := Response{
		Version: int(int32(binary.LittleEndian.Uint32(b[0:4]))),
		Exists:  b[16] == 1,
	}
	off := 20
	r.Err = string(b[off : off+errLen])
	off += errLen
	r.Data = append([]byte(nil), b[off:off+dataLen]...)
	off += dataLen
	if childLen > 0 {
		r.Children = strings.Split(string(b[off:off+childLen]), "\x00")
	}
	return r, nil
}
