package keeper

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// The two ecalls of the SecureKeeper enclave (§5.2.4), plus the private
// key-renewal ecall and the ZooKeeper notification ocall that make the
// interface exhibit the §3.6 shapes (user_check pointer, allow-list
// reentrancy) the static lint exists to flag.
const (
	EcallFromClient = "sgx_ecall_handle_input_from_client"
	EcallFromZK     = "sgx_ecall_handle_input_from_zookeeper"
	EcallRenewKey   = "sgx_ecall_renew_session_key"
	OcallZKNotify   = "ocall_zk_notify"
)

// Shape constants from §5.2.4.
const (
	// declaredOcalls pads the interface to six ocalls, of which three are
	// exercised (the debug print plus two sync ocalls). The pad counts the
	// debug print, the ZooKeeper notification and generic fillers.
	declaredOcalls = 6
	// debugPrintsPerConnect reproduces the "debugging print ocalls during
	// connection establishment".
	debugPrintsPerConnect = 12
	// startupTouchPages shapes the 322-page start-up working set.
	startupTouchPages = 300
	// steadyPoolPages shapes the 94-page steady-state working set.
	steadyPoolPages = 86
)

// In-enclave crypto work costs, calibrated so the two ecalls log mean
// durations of ≈14µs and ≈18µs (§5.2.4).
const (
	costCryptoOp     = 1500 * time.Nanosecond
	costCryptoPerKiB = 3 * time.Microsecond
	costBookkeeping  = 500 * time.Nanosecond
	// costZKBase is the fixed response-validation and client-packet
	// construction work of the ZooKeeper-side handler; it makes that
	// ecall the longer of the two, as the paper measures.
	costZKBase = 8500 * time.Nanosecond
)

// clientInput is the argument of EcallFromClient.
type clientInput struct {
	Session int
	Connect bool
	// Packet is the transport-encrypted request (nil on connect).
	Packet []byte
}

// CopyInBytes implements sdk.Copied.
func (a *clientInput) CopyInBytes() int { return len(a.Packet) + 16 }

// CopyOutBytes implements sdk.Copied.
func (a *clientInput) CopyOutBytes() int { return len(a.Packet) + 32 }

// zkInput is the argument of EcallFromZK.
type zkInput struct {
	Session int
	// Resp is the ZooKeeper response over encrypted znodes.
	Resp Response
}

// CopyInBytes implements sdk.Copied.
func (a *zkInput) CopyInBytes() int { return len(a.Resp.Data) + 64 }

// CopyOutBytes implements sdk.Copied.
func (a *zkInput) CopyOutBytes() int { return len(a.Resp.Data) + 64 }

// session is the per-client trusted state. Transport boxes are split by
// direction so the shared key never reuses a nonce.
type session struct {
	fromClient *box // client → proxy
	toClient   *box // proxy → client
	storage    *box
	pathKey    []byte
	// queue is the per-client pending-operation queue, guarded by its own
	// mutex (low contention, §5.2.4).
	queueMu sdk.Mutex
	queue   []Request
}

// Proxy is the trusted SecureKeeper state: the session map guarded by an
// SDK mutex (high contention during connect bursts) plus working-set
// scratch regions.
type proxy struct {
	mapMu sdk.Mutex
	// sessionsMu is a Go-level guard for the simulation's own memory
	// safety; it charges no virtual time. The *modelled* contention (the
	// sync ocalls of §5.2.4) comes from mapMu above.
	sessionsMu sync.RWMutex
	sessions   map[int]*session

	initOnce bool
	initBase sgx.Vaddr
	steady   sgx.Vaddr

	// scratchMu guards the steady-state scratch cursor (an in-enclave
	// atomic in the real system).
	scratchMu sync.Mutex
	steadyIdx int
}

// Workload is one configured SecureKeeper instance.
type Workload struct {
	h     *host.Host
	store *ZKStore

	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy

	p *proxy
}

// Option tweaks the workload.
type Option func(*config)

type config struct {
	payloadBase int
}

// WithPayloadBase sets the nominal payload size (default 1 KiB).
func WithPayloadBase(n int) Option {
	return func(c *config) { c.payloadBase = n }
}

// Interface builds the SecureKeeper EDL interface (§5.2.4): the two
// public handler ecalls, a private key-renewal ecall reachable only
// during the ZooKeeper notification ocall (an allow-list reentrancy
// cycle), the debug print, and generic fillers padding the surface to
// declaredOcalls. The key-renewal ecall hands its sealed key out through
// a user_check pointer — exactly the §3.6 obligations the static
// interface lint reports.
func Interface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall(EcallFromClient, true,
		edl.Param{Name: "packet", Dir: edl.DirIn, Size: "len"},
		edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallFromZK, true,
		edl.Param{Name: "resp", Dir: edl.DirIn, Size: "len"},
		edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallRenewKey, false,
		edl.Param{Name: "sealed_key", Dir: edl.DirUserCheck}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall("ocall_print_debug", nil,
		edl.Param{Name: "msg", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallZKNotify, []string{EcallRenewKey}); err != nil {
		return nil, err
	}
	for i := 1; i <= declaredOcalls-2; i++ {
		if _, err := iface.AddOcall(fmt.Sprintf("ocall_keeper_gen_%d", i), nil); err != nil {
			return nil, err
		}
	}
	return iface, nil
}

// New builds the SecureKeeper proxy enclave and the backing store.
func New(h *host.Host, ctx *sgx.Context, opts ...Option) (*Workload, error) {
	cfg := config{payloadBase: 1024}
	for _, o := range opts {
		o(&cfg)
	}
	_ = cfg

	w := &Workload{h: h, store: NewZKStore(), p: &proxy{sessions: make(map[int]*session)}}

	iface, err := Interface()
	if err != nil {
		return nil, err
	}

	impl := map[string]sdk.TrustedFn{
		EcallFromClient: w.handleFromClient,
		EcallFromZK:     w.handleFromZK,
		EcallRenewKey: func(env *sdk.Env, args any) (any, error) {
			env.Compute(costCryptoOp) // re-derive and seal the session key
			return nil, nil
		},
	}
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "securekeeper",
		CodeBytes:  20 * sgx.PageSize,
		HeapBytes:  (startupTouchPages + steadyPoolPages + 32) * sgx.PageSize,
		StackBytes: 8 * sgx.PageSize,
		NumTCS:     32,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("keeper: %w", err)
	}
	ocalls := map[string]sdk.OcallFn{
		"ocall_print_debug": func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(800 * time.Nanosecond) // fprintf to a log
			return nil, nil
		},
		OcallZKNotify: func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		},
	}
	for i := 1; i <= declaredOcalls-2; i++ {
		ocalls[fmt.Sprintf("ocall_keeper_gen_%d", i)] = func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		}
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		return nil, err
	}
	w.app = app
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	return w, nil
}

func (w *Workload) sessionCount() float64 {
	w.p.sessionsMu.RLock()
	defer w.p.sessionsMu.RUnlock()
	return float64(len(w.p.sessions))
}

// Enclave returns the proxy enclave for working-set estimation.
func (w *Workload) Enclave() *sgx.Enclave { return w.app.Enclave() }

// Store returns the backing ZooKeeper stand-in.
func (w *Workload) Store() *ZKStore { return w.store }

// chargeCrypto prices n bytes of AEAD work (ops operations).
func chargeCrypto(env *sdk.Env, bytes, ops int) {
	perByte := float64(costCryptoPerKiB) / 1024
	env.Compute(time.Duration(ops)*costCryptoOp +
		time.Duration(perByte*float64(ops*bytes)))
}

// touchSteady cycles through the steady-state page pool.
func (w *Workload) touchSteady(env *sdk.Env, pages int) {
	w.p.scratchMu.Lock()
	base := w.p.steady
	idx := w.p.steadyIdx
	w.p.steadyIdx = (idx + pages) % steadyPoolPages
	w.p.scratchMu.Unlock()
	if base == 0 {
		return
	}
	for i := 0; i < pages; i++ {
		page := (idx + i) % steadyPoolPages
		_ = env.Touch(base+sgx.Vaddr(page*sgx.PageSize), 8, true)
	}
}

// handleFromClient is the first of the two ecalls: on connect it
// registers the session under the contended map mutex (§5.2.4); on a
// request it decrypts the client packet and re-encrypts path+payload for
// ZooKeeper.
func (w *Workload) handleFromClient(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*clientInput)
	if !ok {
		return nil, fmt.Errorf("keeper: bad clientInput %T", args)
	}
	if a.Connect {
		return w.connect(env, a.Session)
	}
	w.touchSteady(env, 2)

	// The session map is only written during connects (§5.2.4), so the
	// steady-state path reads it without taking the contended in-enclave
	// mutex.
	w.p.sessionsMu.RLock()
	sess := w.p.sessions[a.Session]
	w.p.sessionsMu.RUnlock()
	if sess == nil {
		return nil, fmt.Errorf("keeper: unknown session %d", a.Session)
	}

	plain, err := sess.fromClient.Open(a.Packet)
	if err != nil {
		return nil, fmt.Errorf("keeper: transport decrypt: %w", err)
	}
	req, err := decodeRequest(plain)
	if err != nil {
		return nil, err
	}
	chargeCrypto(env, len(plain), 1) // transport decrypt

	// Track the pending op on the per-client queue (own lock, low
	// contention).
	if err := sess.queueMu.Lock(env); err != nil {
		return nil, err
	}
	sess.queue = append(sess.queue, req)
	if err := sess.queueMu.Unlock(env); err != nil {
		return nil, err
	}

	// Re-encrypt payload and pseudonymise the path for the untrusted
	// store.
	out := Request{
		Op:      req.Op,
		Path:    pathPseudonym(sess.pathKey, req.Path),
		Version: req.Version,
	}
	if len(req.Data) > 0 {
		out.Data = sess.storage.Seal(req.Data)
	}
	chargeCrypto(env, len(req.Data)+len(req.Path), 1) // storage encrypt
	env.Compute(costBookkeeping)
	return &out, nil
}

// handleFromZK is the second ecall: decrypt the znode payload coming back
// from ZooKeeper and transport-encrypt the response for the client.
func (w *Workload) handleFromZK(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*zkInput)
	if !ok {
		return nil, fmt.Errorf("keeper: bad zkInput %T", args)
	}
	w.touchSteady(env, 3)

	w.p.sessionsMu.RLock()
	sess := w.p.sessions[a.Session]
	w.p.sessionsMu.RUnlock()
	if sess == nil {
		return nil, fmt.Errorf("keeper: unknown session %d", a.Session)
	}
	env.Compute(costZKBase)

	// Pop the pending op.
	if err := sess.queueMu.Lock(env); err != nil {
		return nil, err
	}
	if len(sess.queue) > 0 {
		sess.queue = sess.queue[1:]
	}
	if err := sess.queueMu.Unlock(env); err != nil {
		return nil, err
	}

	resp := a.Resp
	if len(resp.Data) > 0 {
		plain, err := sess.storage.Open(resp.Data)
		if err != nil {
			return nil, fmt.Errorf("keeper: storage decrypt: %w", err)
		}
		resp.Data = plain
		chargeCrypto(env, len(plain), 1)
	}
	blob := encodeResponse(resp)
	sealed := sess.toClient.Seal(blob)
	chargeCrypto(env, len(blob), 2) // response integrity + transport encrypt
	env.Compute(costBookkeeping)
	return sealed, nil
}

// connect registers a session: the map mutex is the §5.2.4 contention
// point when all clients connect simultaneously.
func (w *Workload) connect(env *sdk.Env, sid int) (any, error) {
	if err := w.p.mapMu.Lock(env); err != nil {
		return nil, err
	}
	if !w.p.initOnce {
		// First connection initialises the enclave's long-lived state,
		// touching the start-up working set (§5.2.4: 322 pages).
		w.p.initOnce = true
		v, err := env.Alloc((startupTouchPages + steadyPoolPages) * sgx.PageSize)
		if err != nil {
			_ = w.p.mapMu.Unlock(env)
			return nil, err
		}
		if err := env.Touch(v, startupTouchPages*sgx.PageSize, true); err != nil {
			_ = w.p.mapMu.Unlock(env)
			return nil, err
		}
		w.p.initBase = v
		w.p.steady = v + sgx.Vaddr(startupTouchPages-steadyPoolPages)*sgx.PageSize
	}
	key := []byte(fmt.Sprintf("client-%d-key", sid))
	fromClient, err := newBox(append([]byte("transport-c2s-"), key...))
	if err != nil {
		_ = w.p.mapMu.Unlock(env)
		return nil, err
	}
	toClient, err := newBox(append([]byte("transport-s2c-"), key...))
	if err != nil {
		_ = w.p.mapMu.Unlock(env)
		return nil, err
	}
	storage, err := newBox(append([]byte("storage-"), key...))
	if err != nil {
		_ = w.p.mapMu.Unlock(env)
		return nil, err
	}
	// Simulate the session handshake work while holding the map lock, so
	// a connect burst contends (§5.2.4: 18 sync ocalls during the
	// connection phase). The scheduler yields let the other connecting
	// threads genuinely overlap.
	env.Compute(80 * time.Microsecond)
	for y := 0; y < 4; y++ {
		runtime.Gosched()
	}
	w.p.sessionsMu.Lock()
	w.p.sessions[sid] = &session{fromClient: fromClient, toClient: toClient, storage: storage, pathKey: key}
	w.p.sessionsMu.Unlock()
	if err := w.p.mapMu.Unlock(env); err != nil {
		return nil, err
	}
	for i := 0; i < debugPrintsPerConnect; i++ {
		//sgxperf:allow(transamp) deliberate exhibit: SecureKeeper's §5.1 per-connect debug-print storm is the finding the analyzer demo reproduces
		if _, err := env.Ocall("ocall_print_debug", nil); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Client is one connected client's untrusted-side handle.
type Client struct {
	w   *Workload
	sid int
	// send/recv mirror the in-enclave directional transport boxes.
	send *box
	recv *box
}

// Connect establishes a session through the proxy.
func (w *Workload) Connect(ctx *sgx.Context, sid int) (*Client, error) {
	if _, err := w.proxies[EcallFromClient](ctx, &clientInput{Session: sid, Connect: true}); err != nil {
		return nil, fmt.Errorf("keeper: connect %d: %w", sid, err)
	}
	key := []byte(fmt.Sprintf("client-%d-key", sid))
	send, err := newBox(append([]byte("transport-c2s-"), key...))
	if err != nil {
		return nil, err
	}
	recv, err := newBox(append([]byte("transport-s2c-"), key...))
	if err != nil {
		return nil, err
	}
	return &Client{w: w, sid: sid, send: send, recv: recv}, nil
}

// zkLatency is the one-way proxy↔ZooKeeper network latency and
// clientNetLatency the client→proxy one: both separate consecutive ecalls
// by far more than 20µs, which is why the paper's analyser finds no merge
// opportunity here (§5.2.4).
const (
	zkLatency        = 120 * time.Microsecond
	clientNetLatency = 100 * time.Microsecond
)

// Do executes one operation end to end: client encrypt → proxy ecall →
// network → ZooKeeper → network → proxy ecall → client decrypt.
func (c *Client) Do(ctx *sgx.Context, req Request) (Response, error) {
	// Client-side encode + transport encrypt + network to the proxy.
	ctx.Compute(4*time.Microsecond + clientNetLatency)
	packet := c.send.Seal(encodeRequest(req))

	res, err := c.w.proxies[EcallFromClient](ctx, &clientInput{Session: c.sid, Packet: packet})
	if err != nil {
		return Response{}, err
	}
	zkReq, ok := res.(*Request)
	if !ok {
		return Response{}, fmt.Errorf("keeper: proxy returned %T", res)
	}

	ctx.Compute(zkLatency)
	zkResp := c.w.store.Apply(ctx, *zkReq)
	ctx.Compute(zkLatency)

	res, err = c.w.proxies[EcallFromZK](ctx, &zkInput{Session: c.sid, Resp: zkResp})
	if err != nil {
		return Response{}, err
	}
	sealed, ok := res.([]byte)
	if !ok {
		return Response{}, fmt.Errorf("keeper: proxy returned %T", res)
	}
	plain, err := c.recv.Open(sealed)
	if err != nil {
		return Response{}, fmt.Errorf("keeper: client decrypt: %w", err)
	}
	ctx.Compute(2 * time.Microsecond)
	return decodeResponse(plain)
}

// payloadFor varies payload sizes deterministically, producing the
// spread of ecall durations visible in Fig. 7.
func payloadFor(i, base int) []byte {
	size := base/4 + (i*2654435761)%(2*base)
	if size < 16 {
		size = 16
	}
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(i + j)
	}
	return b
}

// RunOptions configures a full benchmark run.
type RunOptions struct {
	// Clients is the number of simultaneously connecting clients
	// (default 8).
	Clients int
	// Duration is the load phase length in virtual time (the paper runs
	// 31 s).
	Duration time.Duration
	// TargetOpRate is the aggregate operation-pair rate (default tuned so
	// a 31 s run records ≈1.1M ecalls, §5.2.4).
	TargetOpRate float64
	// PayloadBase is the nominal payload size in bytes (default 1024).
	PayloadBase int
}

// Run performs the §5.2.4 benchmark: a simultaneous connect burst (map
// contention → sync ocalls) followed by a full-load phase.
func (w *Workload) Run(opts RunOptions) (workloads.Result, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 31 * time.Second
	}
	if opts.TargetOpRate <= 0 {
		opts.TargetOpRate = 17750 // pairs/s → ≈1.1M ecalls over 31s
	}
	if opts.PayloadBase <= 0 {
		opts.PayloadBase = 1024
	}

	// Phase 1: simultaneous connects.
	clients := make([]*Client, opts.Clients)
	var (
		wg      sync.WaitGroup
		connErr error
		errMu   sync.Mutex
	)
	start := make(chan struct{})
	for i := 0; i < opts.Clients; i++ {
		i := i
		wg.Add(1)
		if err := w.h.Spawn(fmt.Sprintf("client-%d", i), func(ctx *sgx.Context) {
			defer wg.Done()
			<-start
			c, err := w.Connect(ctx, i)
			if err != nil {
				errMu.Lock()
				connErr = err
				errMu.Unlock()
				return
			}
			clients[i] = c
			// Create the client's base znode.
			if _, err := c.Do(ctx, Request{Op: OpCreate, Path: fmt.Sprintf("/c%d", i), Version: -1}); err != nil {
				errMu.Lock()
				connErr = err
				errMu.Unlock()
			}
		}); err != nil {
			return workloads.Result{}, err
		}
	}
	close(start)
	wg.Wait()
	if connErr != nil {
		return workloads.Result{}, fmt.Errorf("keeper: connect phase: %w", connErr)
	}

	// Phase 2: paced full load from every client.
	perClientInterval := time.Duration(float64(opts.Clients) / opts.TargetOpRate * float64(time.Second))
	totalOps := int64(0)
	var opsMu sync.Mutex
	var runErr error
	for i := 0; i < opts.Clients; i++ {
		i := i
		c := clients[i]
		if err := w.h.Spawn(fmt.Sprintf("load-%d", i), func(ctx *sgx.Context) {
			freq := ctx.Clock().Frequency()
			deadline := ctx.Now() + freq.Cycles(opts.Duration)
			interval := freq.Cycles(perClientInterval)
			slot := ctx.Now()
			ops := 0
			for ctx.Now() < deadline {
				req := Request{Version: -1}
				payload := payloadFor(i*100000+ops, opts.PayloadBase)
				switch ops % 4 {
				case 0, 1:
					req.Op = OpSetData
					req.Path = fmt.Sprintf("/c%d", i)
					req.Data = payload
					req.Version = -1
				case 2:
					req.Op = OpGetData
					req.Path = fmt.Sprintf("/c%d", i)
				case 3:
					req.Op = OpExists
					req.Path = fmt.Sprintf("/c%d", i)
				}
				if _, err := c.Do(ctx, req); err != nil {
					opsMu.Lock()
					runErr = err
					opsMu.Unlock()
					return
				}
				ops++
				// Pace to the aggregate target rate.
				slot += interval
				ctx.Clock().MergeAtLeast(slot)
			}
			opsMu.Lock()
			totalOps += int64(ops)
			opsMu.Unlock()
		}); err != nil {
			return workloads.Result{}, err
		}
	}
	w.h.Wait()
	if runErr != nil {
		return workloads.Result{}, fmt.Errorf("keeper: load phase: %w", runErr)
	}

	return workloads.Result{
		Workload: "securekeeper",
		Variant:  "proxy",
		Ops:      int(totalOps),
		Virtual:  opts.Duration,
		Extra: map[string]float64{
			"clients":  float64(opts.Clients),
			"zk_ops":   float64(w.store.Ops()),
			"sessions": w.sessionCount(),
		},
	}, nil
}
