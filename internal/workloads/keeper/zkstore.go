// Package keeper reproduces the SecureKeeper workload (§5.2.4): a proxy
// enclave sitting between clients and a ZooKeeper-like coordination
// service, transparently en-/decrypting the path and payload of every
// packet. The enclave interface is deliberately narrow — two ecalls whose
// executions are comfortably longer than a transition — which is why the
// paper finds nothing to optimise and instead uses the workload to
// exercise histograms (Fig. 7), scatter plots (Fig. 8), sync-ocall
// tracking and working-set estimation.
package keeper

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sgxperf/internal/sgx"
)

// ZK op codes, a subset of ZooKeeper's wire protocol.
type ZKOp int

// Operations.
const (
	OpCreate ZKOp = iota + 1
	OpSetData
	OpGetData
	OpGetChildren
	OpExists
	OpDelete
)

// String names the op.
func (o ZKOp) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpSetData:
		return "setData"
	case OpGetData:
		return "getData"
	case OpGetChildren:
		return "getChildren"
	case OpExists:
		return "exists"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// ZK errors.
var (
	ErrNodeExists   = errors.New("keeper: node exists")
	ErrNoNode       = errors.New("keeper: no node")
	ErrBadVersion   = errors.New("keeper: version mismatch")
	ErrNotEmpty     = errors.New("keeper: node has children")
	ErrBadPath      = errors.New("keeper: bad path")
	ErrNoParentNode = errors.New("keeper: parent does not exist")
)

// znode is one node in the hierarchy.
type znode struct {
	data     []byte
	version  int
	children map[string]*znode
}

// ZKStore is the untrusted ZooKeeper stand-in: a hierarchical,
// version-checked key-value tree with per-operation virtual costs.
type ZKStore struct {
	opCost time.Duration

	mu   sync.Mutex
	root *znode
	ops  uint64
}

// NewZKStore creates an empty tree.
func NewZKStore() *ZKStore {
	return &ZKStore{
		opCost: 3 * time.Microsecond,
		root:   &znode{children: make(map[string]*znode)},
	}
}

// Ops returns the number of operations served.
func (s *ZKStore) Ops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || path == "" {
		return nil, ErrBadPath
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	for _, p := range parts {
		if p == "" {
			return nil, ErrBadPath
		}
	}
	return parts, nil
}

func (s *ZKStore) lookup(parts []string) (*znode, bool) {
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}

// Request is one ZK operation.
type Request struct {
	Op      ZKOp
	Path    string
	Data    []byte
	Version int // -1 skips the version check
}

// Response is the result of a ZK operation.
type Response struct {
	Err      string
	Data     []byte
	Version  int
	Children []string
	Exists   bool
}

// Apply executes one request, charging the calling thread.
func (s *ZKStore) Apply(ctx *sgx.Context, req Request) Response {
	ctx.Compute(s.opCost + time.Duration(len(req.Data))*8*time.Nanosecond)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++

	parts, err := splitPath(req.Path)
	if err != nil {
		return Response{Err: err.Error()}
	}
	switch req.Op {
	case OpCreate:
		if len(parts) == 0 {
			return Response{Err: ErrNodeExists.Error()}
		}
		parent, ok := s.lookup(parts[:len(parts)-1])
		if !ok {
			return Response{Err: ErrNoParentNode.Error()}
		}
		name := parts[len(parts)-1]
		if _, dup := parent.children[name]; dup {
			return Response{Err: ErrNodeExists.Error()}
		}
		parent.children[name] = &znode{
			data:     append([]byte(nil), req.Data...),
			children: make(map[string]*znode),
		}
		return Response{Version: 0}
	case OpSetData:
		n, ok := s.lookup(parts)
		if !ok {
			return Response{Err: ErrNoNode.Error()}
		}
		if req.Version >= 0 && req.Version != n.version {
			return Response{Err: ErrBadVersion.Error()}
		}
		n.data = append([]byte(nil), req.Data...)
		n.version++
		return Response{Version: n.version}
	case OpGetData:
		n, ok := s.lookup(parts)
		if !ok {
			return Response{Err: ErrNoNode.Error()}
		}
		return Response{Data: append([]byte(nil), n.data...), Version: n.version}
	case OpGetChildren:
		n, ok := s.lookup(parts)
		if !ok {
			return Response{Err: ErrNoNode.Error()}
		}
		kids := make([]string, 0, len(n.children))
		for k := range n.children {
			kids = append(kids, k)
		}
		sort.Strings(kids)
		return Response{Children: kids}
	case OpExists:
		_, ok := s.lookup(parts)
		return Response{Exists: ok}
	case OpDelete:
		if len(parts) == 0 {
			return Response{Err: ErrBadPath.Error()}
		}
		parent, ok := s.lookup(parts[:len(parts)-1])
		if !ok {
			return Response{Err: ErrNoNode.Error()}
		}
		name := parts[len(parts)-1]
		n, ok := parent.children[name]
		if !ok {
			return Response{Err: ErrNoNode.Error()}
		}
		if req.Version >= 0 && req.Version != n.version {
			return Response{Err: ErrBadVersion.Error()}
		}
		if len(n.children) > 0 {
			return Response{Err: ErrNotEmpty.Error()}
		}
		delete(parent.children, name)
		return Response{}
	default:
		return Response{Err: fmt.Sprintf("keeper: unknown op %d", req.Op)}
	}
}
