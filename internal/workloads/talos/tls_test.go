package talos

import (
	"bytes"
	"testing"
)

// pipeHandshake runs the full handshake between two in-memory endpoints.
func pipeHandshake(t *testing.T) (client, server *tlsConn) {
	t.Helper()
	client = newTLSConn(false)
	server = newTLSConn(true)

	hello, err := client.clientHello()
	if err != nil {
		t.Fatal(err)
	}
	server.feed(hello)
	serverHello, err := server.handshakeStep()
	if err != ErrWantRead {
		t.Fatalf("server after ClientHello: %v", err)
	}
	client.feed(serverHello)
	finished, err := client.handshakeStep()
	if err != nil {
		t.Fatal(err)
	}
	if !client.established {
		t.Fatal("client not established after ServerHello")
	}
	server.feed(finished)
	if _, err := server.handshakeStep(); err != nil {
		t.Fatal(err)
	}
	if !server.established {
		t.Fatal("server not established after Finished")
	}
	return client, server
}

func TestTLSHandshakeAndRecords(t *testing.T) {
	client, server := pipeHandshake(t)

	// Client → server application data.
	msg := []byte("GET / HTTP/1.1\r\n\r\n")
	rec, err := client.writeRecord(msg)
	if err != nil {
		t.Fatal(err)
	}
	server.feed(rec)
	plain, closed, err := server.readRecord()
	if err != nil || closed {
		t.Fatalf("server read: %v closed=%v", err, closed)
	}
	if !bytes.Equal(plain, msg) {
		t.Fatalf("server decrypted %q", plain)
	}
	// Server → client.
	resp := []byte("HTTP/1.1 200 OK\r\n\r\nhello")
	rec, err = server.writeRecord(resp)
	if err != nil {
		t.Fatal(err)
	}
	client.feed(rec)
	plain, _, err = client.readRecord()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, resp) {
		t.Fatalf("client decrypted %q", plain)
	}
	// Close notify.
	alert, err := client.closeNotify()
	if err != nil {
		t.Fatal(err)
	}
	server.feed(alert)
	_, closed, err = server.readRecord()
	if err != nil || !closed {
		t.Fatalf("close notify: %v closed=%v", err, closed)
	}
}

func TestTLSPartialRecordWantsRead(t *testing.T) {
	client, server := pipeHandshake(t)
	rec, err := client.writeRecord([]byte("split me"))
	if err != nil {
		t.Fatal(err)
	}
	server.feed(rec[:len(rec)/2])
	if _, _, err := server.readRecord(); err != ErrWantRead {
		t.Fatalf("partial record: %v, want ErrWantRead", err)
	}
	server.feed(rec[len(rec)/2:])
	plain, _, err := server.readRecord()
	if err != nil || string(plain) != "split me" {
		t.Fatalf("completed record: %q, %v", plain, err)
	}
}

func TestTLSRejectsTamperedRecord(t *testing.T) {
	client, server := pipeHandshake(t)
	rec, err := client.writeRecord([]byte("sensitive"))
	if err != nil {
		t.Fatal(err)
	}
	rec[len(rec)-1] ^= 1
	server.feed(rec)
	if _, _, err := server.readRecord(); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestTLSRejectsReplayedRecord(t *testing.T) {
	client, server := pipeHandshake(t)
	rec, err := client.writeRecord([]byte("pay me once"))
	if err != nil {
		t.Fatal(err)
	}
	server.feed(rec)
	if _, _, err := server.readRecord(); err != nil {
		t.Fatal(err)
	}
	server.feed(rec) // replay: sequence number mismatch breaks the MAC
	if _, _, err := server.readRecord(); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestTLSRejectsForgedServer(t *testing.T) {
	client := newTLSConn(false)
	if _, err := client.clientHello(); err != nil {
		t.Fatal(err)
	}
	// A forged ServerHello with a wrong certificate MAC.
	body := append([]byte{2}, make([]byte, 16+32)...)
	client.feed(frame(recHandshake, body))
	if _, err := client.handshakeStep(); err == nil {
		t.Fatal("forged server accepted")
	}
}

func TestWriteBeforeHandshakeFails(t *testing.T) {
	c := newTLSConn(false)
	if _, err := c.writeRecord([]byte("x")); err == nil {
		t.Fatal("write before handshake succeeded")
	}
	if _, err := c.closeNotify(); err == nil {
		t.Fatal("close before handshake succeeded")
	}
}
