package talos

import (
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// OpenSSL-shaped ecall names (the hot part of Fig. 5).
const (
	EcallSSLNew              = "sgx_ecall_SSL_new"
	EcallSSLSetFD            = "sgx_ecall_SSL_set_fd"
	EcallSSLSetAcceptState   = "sgx_ecall_SSL_set_accept_state"
	EcallSSLDoHandshake      = "sgx_ecall_SSL_do_handshake"
	EcallSSLRead             = "sgx_ecall_SSL_read"
	EcallSSLWrite            = "sgx_ecall_SSL_write"
	EcallSSLShutdown         = "sgx_ecall_SSL_shutdown"
	EcallSSLFree             = "sgx_ecall_SSL_free"
	EcallSSLGetError         = "sgx_ecall_SSL_get_error"
	EcallSSLGetRbio          = "sgx_ecall_SSL_get_rbio"
	EcallSSLSetQuietShutdown = "sgx_ecall_SSL_set_quiet_shutdown"
	EcallBIOIntCtrl          = "sgx_ecall_BIO_int_ctrl"
	EcallERRPeekError        = "sgx_ecall_ERR_peek_error"
	EcallERRClearError       = "sgx_ecall_ERR_clear_error"
)

// Ocall names (the used subset of the 61 declared).
const (
	OcallRead         = "enclave_ocall_read"
	OcallWrite        = "enclave_ocall_write"
	OcallInfoCallback = "enclave_ocall_execute_ssl_ctx_info_callback"
	OcallALPNSelect   = "enclave_ocall_alpn_select_cb"
	OcallGetTime      = "enclave_ocall_gettime"
	OcallErrno        = "enclave_ocall_errno"
	OcallFcntl        = "enclave_ocall_fcntl"
	OcallMalloc       = "enclave_ocall_malloc"
)

// Interface shape (§5.2.1): 207 declared ecalls, 61 declared ocalls.
const (
	declaredEcalls = 207
	declaredOcalls = 61
	// configEcalls are the SSL_CTX_* setup calls nginx makes once at
	// start-up; together with the hot calls they make 61 distinct ecalls
	// appear in the trace, as the paper reports.
	configEcalls = 46
)

// OpenSSL error codes (the subset used).
const (
	SSLErrorNone       = 0
	SSLErrorWantRead   = 2
	SSLErrorZeroReturn = 6
	SSLErrorSSL        = 1
)

// EAGAIN sentinel returned by the read ocall when the socket is empty.
var errEAGAIN = fmt.Errorf("talos: EAGAIN")

// Crypto work costs inside the enclave.
const (
	costRecordOp     = 1200 * time.Nanosecond
	costRecordPerKiB = 3 * time.Microsecond
	costTinyCall     = 150 * time.Nanosecond
)

// sslState is the trusted per-connection state.
type sslState struct {
	conn        *tlsConn
	fd          int
	acceptState bool
	quiet       bool
	// sentClose/gotClose track the shutdown handshake.
	sentClose bool
	gotClose  bool
	// pendingPlain buffers decrypted-but-unread application data.
	pendingPlain [][]byte
}

// trusted is the enclave's global state: the SSL store and the OpenSSL
// error queue (per-enclave, like OpenSSL's per-thread queue under nginx's
// single worker).
type trusted struct {
	mu       sync.Mutex
	nextID   int
	sessions map[int]*sslState
	errQueue []uint64
	// infoCallbacksPerPhase shapes the callback storm of Fig. 5.
	infoPhase1 int
	infoPhase2 int
}

func (t *trusted) get(id int) (*sslState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, fmt.Errorf("talos: no SSL session %d", id)
	}
	return s, nil
}

func (t *trusted) pushErr(code uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errQueue = append(t.errQueue, code)
}

// ecall argument bundles.
type (
	sslArgs struct {
		SSL int
		Arg int
	}
	readArgs struct {
		SSL int
		Max int
	}
	writeArgs struct {
		SSL  int
		Data []byte
	}
	readResult struct {
		Ret  int
		Data []byte
	}
	ioArgs struct {
		FD  int
		Max int
	}
	iowArgs struct {
		FD   int
		Data []byte
	}
)

// CopyInBytes implements sdk.Copied for writes into the enclave.
func (a writeArgs) CopyInBytes() int { return len(a.Data) }

// CopyOutBytes implements sdk.Copied.
func (a writeArgs) CopyOutBytes() int { return 8 }

// buildInterface declares the 207/61 interface.
func buildInterface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	hot := []string{
		EcallSSLRead, // call id 0, like Fig. 5
		EcallSSLNew, EcallSSLSetFD, EcallSSLSetAcceptState, EcallSSLDoHandshake,
		EcallSSLWrite, EcallSSLShutdown, EcallSSLFree, EcallSSLGetError,
		EcallSSLGetRbio, EcallSSLSetQuietShutdown, EcallBIOIntCtrl,
		EcallERRPeekError, EcallERRClearError,
	}
	for _, n := range hot {
		if _, err := iface.AddEcall(n, true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < configEcalls; i++ {
		if _, err := iface.AddEcall(fmt.Sprintf("sgx_ecall_SSL_CTX_set_opt_%02d", i), true); err != nil {
			return nil, err
		}
	}
	for i := len(hot) + configEcalls; i < declaredEcalls; i++ {
		if _, err := iface.AddEcall(fmt.Sprintf("sgx_ecall_ssl_gen_%03d", i), true); err != nil {
			return nil, err
		}
	}
	used := []string{
		OcallRead, OcallWrite, OcallInfoCallback, OcallALPNSelect,
		OcallGetTime, OcallErrno, OcallFcntl, OcallMalloc,
	}
	for _, n := range used {
		if _, err := iface.AddOcall(n, nil); err != nil {
			return nil, err
		}
	}
	for i := len(used); i < declaredOcalls; i++ {
		if _, err := iface.AddOcall(fmt.Sprintf("enclave_ocall_gen_%02d", i), nil); err != nil {
			return nil, err
		}
	}
	return iface, nil
}

// Enclave wraps the TaLoS enclave instance.
type Enclave struct {
	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy
	t       *trusted
}

// NewEnclave builds the TaLoS enclave over the given socket table.
func NewEnclave(h *host.Host, ctx *sgx.Context, socks *SocketTable) (*Enclave, error) {
	iface, err := buildInterface()
	if err != nil {
		return nil, err
	}
	t := &trusted{
		sessions:   make(map[int]*sslState),
		infoPhase1: 12,
		infoPhase2: 7,
	}
	impl := trustedImpls(t)
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "talos",
		CodeBytes:  96 * sgx.PageSize, // LibreSSL is big
		HeapBytes:  128 * sgx.PageSize,
		StackBytes: 16 * sgx.PageSize,
		NumTCS:     4,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("talos: %w", err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, untrustedOcalls(socks))
	if err != nil {
		return nil, err
	}
	return &Enclave{
		app:     app,
		proxies: sdk.Proxies(app, h.Proc, otab),
		t:       t,
	}, nil
}

// Proxy returns the wrapper for one ecall.
func (e *Enclave) Proxy(name string) sdk.Proxy { return e.proxies[name] }

// SgxEnclave returns the hardware enclave.
func (e *Enclave) SgxEnclave() *sgx.Enclave { return e.app.Enclave() }

// chargeRecord prices record-layer crypto.
func chargeRecord(env *sdk.Env, n int) {
	env.Compute(costRecordOp + time.Duration(float64(costRecordPerKiB)*float64(n)/1024))
}

// fillFromSocket pulls transport bytes into the session via the read
// ocall. Returns errEAGAIN if the socket had nothing.
func fillFromSocket(env *sdk.Env, s *sslState) error {
	res, err := env.Ocall(OcallRead, ioArgs{FD: s.fd, Max: 16 * 1024})
	if err != nil {
		return err
	}
	data, ok := res.([]byte)
	if !ok {
		return fmt.Errorf("talos: read ocall returned %T", res)
	}
	if len(data) == 0 {
		// errno fetch after EAGAIN, as the real shim does.
		if _, err := env.Ocall(OcallErrno, nil); err != nil {
			return err
		}
		return errEAGAIN
	}
	s.conn.feed(data)
	return nil
}

// flushToSocket sends transport bytes through the write ocall.
func flushToSocket(env *sdk.Env, s *sslState, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, err := env.Ocall(OcallWrite, iowArgs{FD: s.fd, Data: b})
	return err
}

// fireInfoCallbacks issues n very short callback ocalls (Fig. 5's
// execute_ssl_ctx_info_callback storm).
func fireInfoCallbacks(env *sdk.Env, n int) error {
	for i := 0; i < n; i++ {
		//sgxperf:allow(transamp) deliberate exhibit: TaLoS's Fig. 5 info-callback storm is the finding the analyzer demo reproduces
		if _, err := env.Ocall(OcallInfoCallback, nil); err != nil {
			return err
		}
	}
	return nil
}

// trustedImpls wires every ecall implementation.
func trustedImpls(t *trusted) map[string]sdk.TrustedFn {
	impls := map[string]sdk.TrustedFn{
		EcallSSLNew: func(env *sdk.Env, args any) (any, error) {
			env.Compute(2 * time.Microsecond) // object setup
			if _, err := env.Ocall(OcallMalloc, nil); err != nil {
				return nil, err
			}
			t.mu.Lock()
			t.nextID++
			id := t.nextID
			t.sessions[id] = &sslState{conn: newTLSConn(true), fd: -1}
			t.mu.Unlock()
			return id, nil
		},
		EcallSSLSetFD: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			env.Compute(costTinyCall)
			if _, err := env.Ocall(OcallFcntl, nil); err != nil {
				return nil, err
			}
			s.fd = a.Arg
			return 1, nil
		},
		EcallSSLSetAcceptState: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			env.Compute(costTinyCall)
			s.acceptState = true
			return 1, nil
		},
		EcallSSLGetRbio: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			env.Compute(costTinyCall)
			return s.fd, nil
		},
		EcallSSLSetQuietShutdown: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			env.Compute(costTinyCall)
			s.quiet = a.Arg != 0
			return 1, nil
		},
		EcallBIOIntCtrl: func(env *sdk.Env, args any) (any, error) {
			env.Compute(costTinyCall)
			return 1, nil
		},
		EcallERRClearError: func(env *sdk.Env, args any) (any, error) {
			env.Compute(costTinyCall)
			t.mu.Lock()
			t.errQueue = nil
			t.mu.Unlock()
			return nil, nil
		},
		EcallERRPeekError: func(env *sdk.Env, args any) (any, error) {
			env.Compute(costTinyCall)
			t.mu.Lock()
			defer t.mu.Unlock()
			if len(t.errQueue) == 0 {
				return uint64(0), nil
			}
			return t.errQueue[0], nil
		},
		EcallSSLGetError: func(env *sdk.Env, args any) (any, error) {
			env.Compute(costTinyCall)
			t.mu.Lock()
			defer t.mu.Unlock()
			if len(t.errQueue) == 0 {
				return SSLErrorNone, nil
			}
			return int(t.errQueue[len(t.errQueue)-1]), nil
		},
		EcallSSLDoHandshake: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			if s.conn.established {
				return 1, nil
			}
			if _, err := env.Ocall(OcallGetTime, nil); err != nil {
				return nil, err
			}
			firstPhase := s.conn.clientNonce == nil
			// Pull whatever the socket has.
			if s.conn.buffered() < recordHeaderLen {
				if err := fillFromSocket(env, s); err != nil && err != errEAGAIN {
					return nil, err
				}
			}
			out, hsErr := s.conn.handshakeStep()
			chargeRecord(env, len(out)+64)
			if len(out) > 0 {
				if err := flushToSocket(env, s, out); err != nil {
					return nil, err
				}
			}
			if firstPhase && s.conn.clientNonce != nil {
				// ALPN selection once per connection, right after the
				// ClientHello (Fig. 5).
				if _, err := env.Ocall(OcallALPNSelect, nil); err != nil {
					return nil, err
				}
				if err := fireInfoCallbacks(env, t.infoPhase1); err != nil {
					return nil, err
				}
			} else {
				if err := fireInfoCallbacks(env, t.infoPhase2); err != nil {
					return nil, err
				}
			}
			switch hsErr {
			case nil:
				if s.conn.established {
					return 1, nil
				}
				t.pushErr(SSLErrorWantRead)
				return -1, nil
			case ErrWantRead:
				t.pushErr(SSLErrorWantRead)
				return -1, nil
			default:
				t.pushErr(SSLErrorSSL)
				return -1, hsErr
			}
		},
		EcallSSLRead: func(env *sdk.Env, args any) (any, error) {
			a := args.(readArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			for attempt := 0; attempt < 2; attempt++ {
				plain, closed, rErr := s.conn.readRecord()
				switch {
				case rErr == nil && closed:
					s.gotClose = true
					return readResult{Ret: 0}, nil
				case rErr == nil:
					chargeRecord(env, len(plain))
					return readResult{Ret: len(plain), Data: plain}, nil
				case rErr == ErrWantRead:
					if err := fillFromSocket(env, s); err == errEAGAIN {
						t.pushErr(SSLErrorWantRead)
						return readResult{Ret: -1}, nil
					} else if err != nil {
						return nil, err
					}
					// Retry the decode with the new bytes.
				default:
					t.pushErr(SSLErrorSSL)
					return readResult{Ret: -1}, rErr
				}
			}
			t.pushErr(SSLErrorWantRead)
			return readResult{Ret: -1}, nil
		},
		EcallSSLWrite: func(env *sdk.Env, args any) (any, error) {
			a := args.(writeArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			rec, err := s.conn.writeRecord(a.Data)
			if err != nil {
				return nil, err
			}
			chargeRecord(env, len(a.Data))
			if err := flushToSocket(env, s, rec); err != nil {
				return nil, err
			}
			return len(a.Data), nil
		},
		EcallSSLShutdown: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			s, err := t.get(a.SSL)
			if err != nil {
				return nil, err
			}
			env.Compute(costTinyCall)
			if !s.sentClose {
				alert, err := s.conn.closeNotify()
				if err != nil {
					return nil, err
				}
				chargeRecord(env, len(alert))
				if err := flushToSocket(env, s, alert); err != nil {
					return nil, err
				}
				s.sentClose = true
				if s.gotClose {
					return 1, nil
				}
				return 0, nil
			}
			if s.gotClose {
				return 1, nil
			}
			// Check for the peer's close_notify.
			_, closed, rErr := s.conn.readRecord()
			if rErr == ErrWantRead {
				if err := fillFromSocket(env, s); err == errEAGAIN {
					return 0, nil
				} else if err != nil {
					return nil, err
				}
				_, closed, rErr = s.conn.readRecord()
			}
			if rErr == nil && closed {
				s.gotClose = true
				return 1, nil
			}
			return 0, nil
		},
		EcallSSLFree: func(env *sdk.Env, args any) (any, error) {
			a := args.(sslArgs)
			env.Compute(costTinyCall)
			t.mu.Lock()
			delete(t.sessions, a.SSL)
			t.mu.Unlock()
			return nil, nil
		},
	}
	for i := 0; i < configEcalls; i++ {
		impls[fmt.Sprintf("sgx_ecall_SSL_CTX_set_opt_%02d", i)] = func(env *sdk.Env, args any) (any, error) {
			env.Compute(costTinyCall)
			return 1, nil
		}
	}
	return impls
}
