package talos_test

import (
	"strings"
	"testing"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/talos"
)

func newServer(t *testing.T) (*host.Host, *sgx.Context, *talos.Server) {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("nginx")
	s, err := talos.NewServer(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return h, ctx, s
}

func TestServeRequests(t *testing.T) {
	_, ctx, s := newServer(t)
	res, err := s.Run(ctx, workloads.Options{Ops: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 25 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestCallShapeMatchesFig5(t *testing.T) {
	// §5.2.1 / Fig. 5: for 1,000 GETs the paper logs 27,631 ecall and
	// 28,969 ocall events across 61 and 10 distinct calls; SSL_read runs
	// ≈5.1× per request, SSL_shutdown exactly 2×, the handshake issues a
	// storm of info-callback ocalls.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "talos-nginx"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("nginx")
	s, err := talos.NewServer(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	const reqs = 100
	if _, err := s.Run(ctx, workloads.Options{Ops: reqs}); err != nil {
		t.Fatal(err)
	}

	trace := l.Trace()
	count := func(name string) int {
		return trace.Ecalls.Count(func(e events.CallEvent) bool { return e.Name == name })
	}
	countO := func(name string) int {
		return trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == name })
	}
	perReq := func(n int) float64 { return float64(n) / reqs }

	if got := perReq(count(talos.EcallSSLRead)); got < 4.5 || got > 6 {
		t.Errorf("SSL_read per request = %.2f, want ≈5.1", got)
	}
	if got := count(talos.EcallSSLShutdown); got != 2*reqs {
		t.Errorf("SSL_shutdown = %d, want %d", got, 2*reqs)
	}
	for _, name := range []string{
		talos.EcallSSLNew, talos.EcallSSLSetFD, talos.EcallSSLSetAcceptState,
		talos.EcallSSLFree, talos.EcallSSLGetRbio, talos.EcallBIOIntCtrl,
		talos.EcallSSLSetQuietShutdown,
	} {
		if got := count(name); got != reqs {
			t.Errorf("%s = %d, want %d", name, got, reqs)
		}
	}
	if got := count(talos.EcallSSLDoHandshake); got != 2*reqs {
		t.Errorf("SSL_do_handshake = %d, want %d", got, 2*reqs)
	}
	// ERR_clear_error accompanies every read attempt (Fig. 5: same 5,138
	// count as SSL_read).
	if clear, read := count(talos.EcallERRClearError), count(talos.EcallSSLRead); clear < read {
		t.Errorf("ERR_clear_error (%d) should be ≥ SSL_read (%d)", clear, read)
	}
	if got := perReq(countO(talos.OcallInfoCallback)); got < 15 || got > 25 {
		t.Errorf("info callbacks per request = %.1f, want ≈19", got)
	}
	if got := countO(talos.OcallALPNSelect); got != reqs {
		t.Errorf("alpn callbacks = %d, want %d", got, reqs)
	}
	if got := perReq(countO(talos.OcallWrite)); got < 2.5 || got > 4 {
		t.Errorf("write ocalls per request = %.1f, want ≈3.3", got)
	}
	if got := perReq(countO(talos.OcallRead)); got < 2 || got > 7 {
		t.Errorf("read ocalls per request = %.1f", got)
	}

	// Totals land in the paper's order of magnitude: ≈27.6 ecalls and
	// ≈29 ocalls per request.
	if got := perReq(trace.Ecalls.Len()); got < 22 || got > 34 {
		t.Errorf("ecall events per request = %.1f, want ≈27.6", got)
	}
	if got := perReq(trace.Ocalls.Len()); got < 23 || got > 36 {
		t.Errorf("ocall events per request = %.1f, want ≈29", got)
	}

	// Distinct calls: 61 ecalls (14 hot + 46 config + SSL_get_error) and
	// ≈10 ocalls (§5.2.1: "61 and 10 were called").
	distinctE := map[string]bool{}
	for _, e := range trace.Ecalls.Rows() {
		distinctE[e.Name] = true
	}
	distinctO := map[string]bool{}
	for _, o := range trace.Ocalls.Rows() {
		distinctO[o.Name] = true
	}
	if len(distinctE) < 55 || len(distinctE) > 65 {
		t.Errorf("distinct ecalls = %d, want ≈61", len(distinctE))
	}
	if len(distinctO) < 6 || len(distinctO) > 12 {
		t.Errorf("distinct ocalls = %d, want ≈10", len(distinctO))
	}
}

func TestShortCallFractionsMatchPaper(t *testing.T) {
	// §5.2.1: 60.78% of ecalls and 73.69% of ocalls were shorter than
	// 10µs.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("nginx")
	s, err := talos.NewServer(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, workloads.Options{Ops: 100}); err != nil {
		t.Fatal(err)
	}
	a, err := analyzer.New(l.Trace(), analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var shortE, totalE, shortO, totalO float64
	for _, st := range a.AllStats() {
		if st.Kind == events.KindEcall {
			totalE += float64(st.Count)
			shortE += st.FracBelow10us * float64(st.Count)
		} else {
			totalO += float64(st.Count)
			shortO += st.FracBelow10us * float64(st.Count)
		}
	}
	fe, fo := shortE/totalE, shortO/totalO
	if fe < 0.45 || fe > 0.85 {
		t.Errorf("short ecall fraction = %.2f, want ≈0.61", fe)
	}
	if fo < 0.60 || fo > 0.98 {
		t.Errorf("short ocall fraction = %.2f, want ≈0.74", fo)
	}
}

func TestAnalyzerFlagsOpenSSLInterface(t *testing.T) {
	// §5.2.1's conclusion: the OpenSSL interface is unsuitable as an
	// enclave interface — the error-queue ecalls are flagged as trivially
	// short, and a DOT call graph in the Fig. 5 style is produced.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("nginx")
	s, err := talos.NewServer(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, workloads.Options{Ops: 100}); err != nil {
		t.Fatal(err)
	}
	a, err := analyzer.New(l.Trace(), analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	report := a.Analyze()
	flagged := map[string]bool{}
	for _, f := range report.Findings {
		flagged[f.Call] = true
	}
	for _, name := range []string{talos.EcallERRClearError, talos.EcallSSLGetError} {
		if !flagged[name] {
			t.Errorf("short error-queue ecall %s not flagged; findings: %v", name, flagged)
		}
	}
	// The Fig. 5-style graph: square SSL_read node with its ocall edges.
	dot := report.Graph.DOT()
	for _, want := range []string{
		talos.EcallSSLRead, talos.OcallRead, talos.OcallInfoCallback, "style=dashed",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT graph missing %q", want)
		}
	}
	if n, ok := report.Graph.Node(talos.EcallSSLRead); !ok || n.Count == 0 {
		t.Error("SSL_read node missing from the call graph")
	}
	// Direct edges from the handshake ecall to its callback ocalls.
	if c := report.Graph.EdgeCount(talos.EcallSSLDoHandshake, talos.OcallInfoCallback, false); c == 0 {
		t.Error("no handshake→info-callback edges")
	}
}

func TestResponseIntegrity(t *testing.T) {
	// End-to-end: a full request must return the HTTP body to the client
	// intact (exercised inside ServeRequest; corrupting the socket breaks
	// the run).
	_, ctx, s := newServer(t)
	if err := s.ServeRequest(ctx); err != nil {
		t.Fatal(err)
	}
}
