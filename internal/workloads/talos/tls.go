// Package talos reproduces the TaLoS workload (§5.2.1): a TLS termination
// library living inside an enclave and exposing the OpenSSL API as its
// ecall interface, driven by an nginx-like HTTP server and a curl-like
// client. The paper uses it to show that the OpenSSL interface — with its
// error-queue calls and per-record socket ocalls — is a poor enclave
// interface: 1,000 HTTP GET requests generate tens of thousands of enclave
// transitions (Fig. 5).
//
// The TLS protocol here is a miniature but real one: a nonce-exchange
// handshake deriving an AES-GCM session key, and an encrypted record
// layer with sequence numbers. It is not interoperable TLS, but every
// byte on the simulated wire is genuinely encrypted and authenticated.
package talos

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Record types.
const (
	recHandshake = 22
	recAppData   = 23
	recAlert     = 21
)

// alert payloads.
const alertCloseNotify = 0

// recordHeaderLen is type(1) + length(4).
const recordHeaderLen = 5

// serverSecret is the server's long-term key material ("the certificate
// key" of this toy protocol).
var serverSecret = []byte("talos-server-long-term-secret")

// deriveKey computes the session key from both nonces.
func deriveKey(clientNonce, serverNonce []byte) []byte {
	mac := hmac.New(sha256.New, serverSecret)
	mac.Write(clientNonce)
	mac.Write(serverNonce)
	return mac.Sum(nil)[:16]
}

// recordCipher encrypts/decrypts the record layer after the handshake.
type recordCipher struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
}

func newRecordCipher(key []byte) (*recordCipher, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("talos: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("talos: %w", err)
	}
	return &recordCipher{aead: aead}, nil
}

func (c *recordCipher) seal(dir byte, plain []byte) []byte {
	nonce := make([]byte, c.aead.NonceSize())
	c.sendSeq++
	binary.LittleEndian.PutUint64(nonce, c.sendSeq)
	nonce[len(nonce)-1] = dir
	return c.aead.Seal(nil, nonce, plain, nil)
}

func (c *recordCipher) open(dir byte, sealed []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	c.recvSeq++
	binary.LittleEndian.PutUint64(nonce, c.recvSeq)
	nonce[len(nonce)-1] = dir
	plain, err := c.aead.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("talos: record authentication: %w", err)
	}
	return plain, nil
}

// Directions for nonce separation.
const (
	dirClientToServer = 1
	dirServerToClient = 2
)

// frame wraps a payload in a record.
func frame(recType byte, payload []byte) []byte {
	out := make([]byte, recordHeaderLen+len(payload))
	out[0] = recType
	binary.LittleEndian.PutUint32(out[1:5], uint32(len(payload)))
	copy(out[recordHeaderLen:], payload)
	return out
}

// parseFrame extracts one record from the front of buf, returning the
// record and the remaining bytes, or ok=false if incomplete.
func parseFrame(buf []byte) (recType byte, payload, rest []byte, ok bool) {
	if len(buf) < recordHeaderLen {
		return 0, nil, buf, false
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) < recordHeaderLen+n {
		return 0, nil, buf, false
	}
	return buf[0], buf[recordHeaderLen : recordHeaderLen+n], buf[recordHeaderLen+n:], true
}

// ErrWantRead mirrors SSL_ERROR_WANT_READ: the operation needs more bytes
// from the transport.
var ErrWantRead = errors.New("talos: want read")

// tlsConn is the protocol engine shared by both endpoints; the enclave
// hosts the server side, the curl-like client the other.
type tlsConn struct {
	isServer    bool
	established bool
	closed      bool

	clientNonce []byte
	serverNonce []byte
	cipher      *recordCipher

	// inbuf accumulates transport bytes until full records are available.
	inbuf []byte
}

func newTLSConn(isServer bool) *tlsConn {
	return &tlsConn{isServer: isServer}
}

// feed appends transport bytes.
func (c *tlsConn) feed(b []byte) { c.inbuf = append(c.inbuf, b...) }

// buffered returns the number of undecoded bytes.
func (c *tlsConn) buffered() int { return len(c.inbuf) }

// clientHello produces the client's first flight.
func (c *tlsConn) clientHello() ([]byte, error) {
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	c.clientNonce = nonce
	return frame(recHandshake, append([]byte{1}, nonce...)), nil
}

// handshakeStep advances the handshake with whatever is buffered. It
// returns output bytes to send and ErrWantRead if more input is needed.
func (c *tlsConn) handshakeStep() ([]byte, error) {
	if c.established {
		return nil, nil
	}
	recType, payload, rest, ok := parseFrame(c.inbuf)
	if !ok {
		return nil, ErrWantRead
	}
	if recType != recHandshake || len(payload) < 1 {
		return nil, fmt.Errorf("talos: unexpected record %d during handshake", recType)
	}
	c.inbuf = rest
	switch payload[0] {
	case 1: // ClientHello (server side)
		if !c.isServer {
			return nil, fmt.Errorf("talos: client received ClientHello")
		}
		if len(payload) != 17 {
			return nil, fmt.Errorf("talos: bad ClientHello")
		}
		c.clientNonce = append([]byte(nil), payload[1:]...)
		nonce := make([]byte, 16)
		if _, err := rand.Read(nonce); err != nil {
			return nil, err
		}
		c.serverNonce = nonce
		cph, err := newRecordCipher(deriveKey(c.clientNonce, c.serverNonce))
		if err != nil {
			return nil, err
		}
		c.cipher = cph
		// ServerHello: nonce + a MAC standing in for the certificate
		// chain.
		mac := hmac.New(sha256.New, serverSecret)
		mac.Write(c.clientNonce)
		mac.Write(c.serverNonce)
		body := append([]byte{2}, c.serverNonce...)
		body = append(body, mac.Sum(nil)...)
		// Wait for the client's Finished next.
		return frame(recHandshake, body), ErrWantRead
	case 2: // ServerHello (client side)
		if c.isServer {
			return nil, fmt.Errorf("talos: server received ServerHello")
		}
		if len(payload) != 1+16+32 {
			return nil, fmt.Errorf("talos: bad ServerHello")
		}
		c.serverNonce = append([]byte(nil), payload[1:17]...)
		mac := hmac.New(sha256.New, serverSecret)
		mac.Write(c.clientNonce)
		mac.Write(c.serverNonce)
		if !hmac.Equal(mac.Sum(nil), payload[17:]) {
			return nil, fmt.Errorf("talos: server authentication failed")
		}
		cph, err := newRecordCipher(deriveKey(c.clientNonce, c.serverNonce))
		if err != nil {
			return nil, err
		}
		c.cipher = cph
		c.established = true
		// Finished: an encrypted marker proving key possession.
		fin := c.seal([]byte("finished"))
		return frame(recHandshake, append([]byte{3}, fin...)), nil
	case 3: // Finished (server side)
		if !c.isServer || c.cipher == nil {
			return nil, fmt.Errorf("talos: unexpected Finished")
		}
		plain, err := c.openPeer(payload[1:])
		if err != nil {
			return nil, err
		}
		if string(plain) != "finished" {
			return nil, fmt.Errorf("talos: bad Finished")
		}
		c.established = true
		return nil, nil
	default:
		return nil, fmt.Errorf("talos: unknown handshake message %d", payload[0])
	}
}

func (c *tlsConn) seal(plain []byte) []byte {
	dir := byte(dirClientToServer)
	if c.isServer {
		dir = dirServerToClient
	}
	return c.cipher.seal(dir, plain)
}

func (c *tlsConn) openPeer(sealed []byte) ([]byte, error) {
	dir := byte(dirClientToServer)
	if !c.isServer {
		dir = dirServerToClient
	}
	return c.cipher.open(dir, sealed)
}

// writeRecord encrypts application data into transport bytes.
func (c *tlsConn) writeRecord(plain []byte) ([]byte, error) {
	if !c.established {
		return nil, fmt.Errorf("talos: write before handshake")
	}
	return frame(recAppData, c.seal(plain)), nil
}

// readRecord decrypts the next buffered application record. It returns
// (nil, io-style signals): ErrWantRead when a full record is not yet
// buffered, closed=true on close_notify.
func (c *tlsConn) readRecord() (plain []byte, closed bool, err error) {
	recType, payload, rest, ok := parseFrame(c.inbuf)
	if !ok {
		return nil, false, ErrWantRead
	}
	c.inbuf = rest
	switch recType {
	case recAppData:
		plain, err := c.openPeer(payload)
		return plain, false, err
	case recAlert:
		pt, err := c.openPeer(payload)
		if err != nil {
			return nil, false, err
		}
		if len(pt) == 1 && pt[0] == alertCloseNotify {
			c.closed = true
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("talos: unexpected alert")
	default:
		return nil, false, fmt.Errorf("talos: unexpected record %d", recType)
	}
}

// closeNotify produces the close_notify alert.
func (c *tlsConn) closeNotify() ([]byte, error) {
	if !c.established {
		return nil, fmt.Errorf("talos: close before handshake")
	}
	return frame(recAlert, c.seal([]byte{alertCloseNotify})), nil
}
