package talos

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// sock is one simulated TCP connection's byte queues.
type sock struct {
	mu       sync.Mutex
	toServer []byte
	toClient []byte
}

// SocketTable maps file descriptors to connections; the untrusted read
// and write ocalls operate on it.
type SocketTable struct {
	mu     sync.Mutex
	socks  map[int]*sock
	nextFD int
}

// NewSocketTable creates an empty table.
func NewSocketTable() *SocketTable {
	return &SocketTable{socks: make(map[int]*sock), nextFD: 16}
}

// Accept registers a new connection and returns its fd.
func (st *SocketTable) Accept() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	fd := st.nextFD
	st.nextFD++
	st.socks[fd] = &sock{}
	return fd
}

// Close drops a connection.
func (st *SocketTable) Close(fd int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.socks, fd)
}

func (st *SocketTable) get(fd int) (*sock, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.socks[fd]
	if !ok {
		return nil, fmt.Errorf("talos: bad fd %d", fd)
	}
	return s, nil
}

// clientSend pushes bytes toward the server.
func (st *SocketTable) clientSend(fd int, b []byte) error {
	s, err := st.get(fd)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.toServer = append(s.toServer, b...)
	return nil
}

// clientRecv drains bytes the server wrote.
func (st *SocketTable) clientRecv(fd int) ([]byte, error) {
	s, err := st.get(fd)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.toClient
	s.toClient = nil
	return out, nil
}

// untrustedOcalls implements the enclave's ocall surface over the socket
// table.
func untrustedOcalls(st *SocketTable) map[string]sdk.OcallFn {
	impls := map[string]sdk.OcallFn{
		OcallRead: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(ioArgs)
			if !ok {
				return nil, fmt.Errorf("talos: bad ioArgs %T", args)
			}
			s, err := st.get(a.FD)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			n := len(s.toServer)
			if n > a.Max {
				n = a.Max
			}
			out := append([]byte(nil), s.toServer[:n]...)
			s.toServer = s.toServer[n:]
			s.mu.Unlock()
			// recv(2): base cost plus per-byte copy; an empty read is the
			// cheap EAGAIN case. Sized so data reads land near the paper's
			// measured read-ocall durations.
			if n == 0 {
				ctx.Compute(1200 * time.Nanosecond)
			} else {
				ctx.Compute(10*time.Microsecond + time.Duration(n)*8*time.Nanosecond)
			}
			return out, nil
		},
		OcallWrite: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(iowArgs)
			if !ok {
				return nil, fmt.Errorf("talos: bad iowArgs %T", args)
			}
			s, err := st.get(a.FD)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			s.toClient = append(s.toClient, a.Data...)
			s.mu.Unlock()
			// send(2): §5.2.2 measures write ocalls at ≈17µs for page-sized
			// buffers; scale with size.
			ctx.Compute(11*time.Microsecond + time.Duration(len(a.Data))*8*time.Nanosecond)
			return len(a.Data), nil
		},
		OcallInfoCallback: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(300 * time.Nanosecond)
			return nil, nil
		},
		OcallALPNSelect: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(900 * time.Nanosecond)
			return "http/1.1", nil
		},
		OcallGetTime: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(200 * time.Nanosecond)
			return int64(ctx.Now()), nil
		},
		OcallErrno: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(120 * time.Nanosecond)
			return 11 /* EAGAIN */, nil
		},
		OcallFcntl: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(700 * time.Nanosecond)
			return 0, nil
		},
		OcallMalloc: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(400 * time.Nanosecond)
			return nil, nil
		},
	}
	for i := 8; i < declaredOcalls; i++ {
		impls[fmt.Sprintf("enclave_ocall_gen_%02d", i)] = func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		}
	}
	return impls
}

// Server is the nginx-like host application terminating TLS in the TaLoS
// enclave.
type Server struct {
	h     *host.Host
	enc   *Enclave
	socks *SocketTable
	body  []byte
}

// NewServer builds the enclave and configures the server (running the
// one-time SSL_CTX_* configuration ecalls, like nginx at start-up).
func NewServer(h *host.Host, ctx *sgx.Context) (*Server, error) {
	socks := NewSocketTable()
	enc, err := NewEnclave(h, ctx, socks)
	if err != nil {
		return nil, err
	}
	s := &Server{
		h:     h,
		enc:   enc,
		socks: socks,
		body:  []byte("<html><body>" + strings.Repeat("sgx-perf ", 100) + "</body></html>"),
	}
	for i := 0; i < configEcalls; i++ {
		name := fmt.Sprintf("sgx_ecall_SSL_CTX_set_opt_%02d", i)
		if _, err := enc.Proxy(name)(ctx, sslArgs{}); err != nil {
			return nil, fmt.Errorf("talos: configure: %w", err)
		}
	}
	return s, nil
}

// Enclave exposes the TaLoS enclave (for working-set estimation).
func (s *Server) Enclave() *Enclave { return s.enc }

// call is a helper running one ecall and asserting success.
func (s *Server) call(ctx *sgx.Context, name string, args any) (any, error) {
	res, err := s.enc.Proxy(name)(ctx, args)
	if err != nil {
		return nil, fmt.Errorf("talos: %s: %w", name, err)
	}
	return res, nil
}

// curlClient is the remote curl process: a TLS client over the socket
// table, with client-side work charged to the driving thread.
type curlClient struct {
	st   *SocketTable
	fd   int
	conn *tlsConn
}

// ServeRequest handles exactly one curl GET: the full nginx call sequence
// of Fig. 5 — accept, handshake (two phases with WANT_READ in between),
// header read across TCP segments, response write, bidirectional
// shutdown.
func (s *Server) ServeRequest(ctx *sgx.Context) error {
	fd := s.socks.Accept()
	defer s.socks.Close(fd)
	client := &curlClient{st: s.socks, fd: fd, conn: newTLSConn(false)}

	// curl connects and immediately sends its ClientHello.
	hello, err := client.conn.clientHello()
	if err != nil {
		return err
	}
	if err := s.socks.clientSend(fd, hello); err != nil {
		return err
	}
	ctx.Compute(8 * time.Microsecond) // curl start-up + TCP connect

	// nginx accepts: SSL object setup.
	res, err := s.call(ctx, EcallSSLNew, nil)
	if err != nil {
		return err
	}
	ssl, ok := res.(int)
	if !ok {
		return fmt.Errorf("talos: SSL_new returned %T", res)
	}
	if _, err := s.call(ctx, EcallSSLSetFD, sslArgs{SSL: ssl, Arg: fd}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallSSLSetAcceptState, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallSSLGetRbio, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallBIOIntCtrl, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallSSLSetQuietShutdown, sslArgs{SSL: ssl, Arg: 1}); err != nil {
		return err
	}

	// Handshake phase 1: consumes the ClientHello, emits the ServerHello,
	// wants the Finished.
	if err := s.clearErr(ctx); err != nil {
		return err
	}
	ret, err := s.call(ctx, EcallSSLDoHandshake, sslArgs{SSL: ssl})
	if err != nil {
		return err
	}
	if ret.(int) != -1 {
		return fmt.Errorf("talos: handshake phase 1 returned %v", ret)
	}
	if _, err := s.call(ctx, EcallSSLGetError, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	// curl processes the ServerHello and sends its Finished.
	if err := client.pump(ctx); err != nil {
		return err
	}
	if err := s.clearErr(ctx); err != nil {
		return err
	}
	ret, err = s.call(ctx, EcallSSLDoHandshake, sslArgs{SSL: ssl})
	if err != nil {
		return err
	}
	if ret.(int) != 1 {
		return fmt.Errorf("talos: handshake phase 2 returned %v", ret)
	}

	// curl sends the GET as two records, the first split across TCP
	// segments (header trickle).
	reqRec1, err := client.conn.writeRecord([]byte("GET / HTTP/1.1\r\n"))
	if err != nil {
		return err
	}
	reqRec2, err := client.conn.writeRecord([]byte("Host: sgx-perf.example\r\nUser-Agent: curl\r\n\r\n"))
	if err != nil {
		return err
	}
	ctx.Compute(5 * time.Microsecond) // curl request construction
	if err := s.socks.clientSend(fd, reqRec1[:len(reqRec1)/2]); err != nil {
		return err
	}

	// nginx read loop: partial record → WANT_READ.
	if err := s.clearErr(ctx); err != nil {
		return err
	}
	rres, err := s.call(ctx, EcallSSLRead, readArgs{SSL: ssl, Max: 16 * 1024})
	if err != nil {
		return err
	}
	if rres.(readResult).Ret != -1 {
		return fmt.Errorf("talos: expected WANT_READ on partial record")
	}
	if _, err := s.call(ctx, EcallSSLGetError, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	// The rest of the segments arrive.
	if err := s.socks.clientSend(fd, reqRec1[len(reqRec1)/2:]); err != nil {
		return err
	}
	if err := s.socks.clientSend(fd, reqRec2); err != nil {
		return err
	}
	var header []byte
	for len(header) == 0 || !strings.Contains(string(header), "\r\n\r\n") {
		if err := s.clearErr(ctx); err != nil {
			return err
		}
		rres, err = s.call(ctx, EcallSSLRead, readArgs{SSL: ssl, Max: 16 * 1024})
		if err != nil {
			return err
		}
		rr := rres.(readResult)
		if rr.Ret <= 0 {
			return fmt.Errorf("talos: request read failed: %d", rr.Ret)
		}
		header = append(header, rr.Data...)
	}
	if !strings.HasPrefix(string(header), "GET / HTTP/1.1") {
		return fmt.Errorf("talos: bad request %q", header)
	}
	ctx.Compute(4 * time.Microsecond) // nginx request parsing + routing

	// Response.
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(s.body), s.body)
	if _, err := s.call(ctx, EcallSSLWrite, writeArgs{SSL: ssl, Data: []byte(resp)}); err != nil {
		return err
	}

	// Keep-alive probe: nothing there yet → WANT_READ.
	if err := s.clearErr(ctx); err != nil {
		return err
	}
	rres, err = s.call(ctx, EcallSSLRead, readArgs{SSL: ssl, Max: 16 * 1024})
	if err != nil {
		return err
	}
	if rres.(readResult).Ret != -1 {
		return fmt.Errorf("talos: keep-alive probe unexpectedly returned data")
	}
	if _, err := s.call(ctx, EcallSSLGetError, sslArgs{SSL: ssl}); err != nil {
		return err
	}

	// curl reads the response and closes.
	if err := client.pump(ctx); err != nil {
		return err
	}

	// nginx sees the close: one more read returns 0, then the error
	// queue is inspected.
	if err := s.clearErr(ctx); err != nil {
		return err
	}
	rres, err = s.call(ctx, EcallSSLRead, readArgs{SSL: ssl, Max: 16 * 1024})
	if err != nil {
		return err
	}
	if rres.(readResult).Ret != 0 {
		return fmt.Errorf("talos: expected close_notify, got ret %d", rres.(readResult).Ret)
	}
	if _, err := s.call(ctx, EcallERRPeekError, nil); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallERRPeekError, nil); err != nil {
		return err
	}

	// Bidirectional shutdown: nginx calls SSL_shutdown twice (Fig. 5
	// shows 2,000 calls for 1,000 requests).
	if _, err := s.call(ctx, EcallSSLShutdown, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallSSLShutdown, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	if _, err := s.call(ctx, EcallSSLFree, sslArgs{SSL: ssl}); err != nil {
		return err
	}
	return nil
}

func (s *Server) clearErr(ctx *sgx.Context) error {
	_, err := s.call(ctx, EcallERRClearError, nil)
	return err
}

// pump lets the curl side consume everything the server wrote and react:
// advance the handshake, read application data, and send close_notify
// after the HTTP response arrived.
func (c *curlClient) pump(ctx *sgx.Context) error {
	data, err := c.st.clientRecv(c.fd)
	if err != nil {
		return err
	}
	c.conn.feed(data)
	ctx.Compute(3 * time.Microsecond) // client-side TLS processing
	if !c.conn.established {
		out, hsErr := c.conn.handshakeStep()
		if hsErr != nil && hsErr != ErrWantRead {
			return hsErr
		}
		if len(out) > 0 {
			return c.st.clientSend(c.fd, out)
		}
		return nil
	}
	// Established: drain the response records, then close.
	gotResponse := false
	for {
		plain, closed, err := c.conn.readRecord()
		if err == ErrWantRead {
			break
		}
		if err != nil {
			return err
		}
		if closed {
			return nil
		}
		if len(plain) > 0 {
			gotResponse = true
		}
	}
	if gotResponse {
		alert, err := c.conn.closeNotify()
		if err != nil {
			return err
		}
		return c.st.clientSend(c.fd, alert)
	}
	return nil
}

// Run serves opts.Ops HTTP GET requests (default 1,000, as in §5.2.1).
func (s *Server) Run(ctx *sgx.Context, opts workloads.Options) (workloads.Result, error) {
	if opts.Ops <= 0 {
		opts.Ops = 1000
	}
	start := ctx.Now()
	for i := 0; i < opts.Ops; i++ {
		if err := s.ServeRequest(ctx); err != nil {
			return workloads.Result{}, fmt.Errorf("talos: request %d: %w", i, err)
		}
	}
	return workloads.Result{
		Workload: "talos-nginx",
		Variant:  "enclave",
		Ops:      opts.Ops,
		Virtual:  ctx.Clock().Frequency().Duration(ctx.Now() - start),
	}, nil
}
