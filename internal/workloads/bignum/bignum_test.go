package bignum

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randInt produces a deterministic pseudo-random Int with the given limb
// count.
func randInt(rng *rand.Rand, limbs int) Int {
	out := make(Int, limbs)
	for i := range out {
		out[i] = Word(rng.Uint64())
	}
	return out.norm()
}

func TestAddSubAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := randInt(rng, 1+rng.Intn(10))
		y := randInt(rng, 1+rng.Intn(10))
		sum := Add(nil, x, y)
		want := new(big.Int).Add(x.Big(), y.Big())
		if sum.Big().Cmp(want) != 0 {
			t.Fatalf("add %s + %s = %s, want %s", x, y, sum, want)
		}
		if x.Cmp(y) >= 0 {
			diff, err := Sub(nil, x, y)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Sub(x.Big(), y.Big())
			if diff.Big().Cmp(want) != 0 {
				t.Fatalf("sub mismatch")
			}
		}
	}
}

func TestSubNegativeRejected(t *testing.T) {
	if _, err := Sub(nil, Int{1}, Int{2}); err == nil {
		t.Fatal("negative Sub succeeded")
	}
}

func TestMulRecursiveAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x := randInt(rng, 1+rng.Intn(12))
		y := randInt(rng, 1+rng.Intn(12))
		got := MulRecursive(nil, x, y, nil)
		want := new(big.Int).Mul(x.Big(), y.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("mul %s × %s = %s, want %s", x, y, got, want)
		}
	}
}

func TestMulRecursiveSubCallPattern(t *testing.T) {
	// §5.2.3: bn_mul_recursive calls bn_sub_part_words in successive
	// pairs; for 8-limb operands with threshold 2 the full tree performs
	// exactly 8 sub calls.
	rng := rand.New(rand.NewSource(3))
	x, y := randInt(rng, 8), randInt(rng, 8)
	calls := 0
	sub := func(dst, a, b Int) Word {
		calls++
		return SubPartWords(nil, dst, a, b)
	}
	got := MulRecursive(nil, x, y, sub)
	if got.Big().Cmp(new(big.Int).Mul(x.Big(), y.Big())) != 0 {
		t.Fatal("interposed mul produced a wrong result")
	}
	if calls != 8 {
		t.Fatalf("sub calls = %d, want 8", calls)
	}
}

func TestModAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x := randInt(rng, 1+rng.Intn(16))
		n := randInt(rng, 1+rng.Intn(8))
		if n.IsZero() {
			n = Int{5}
		}
		got, err := Mod(nil, x, n)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Mod(x.Big(), n.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("%s mod %s = %s, want %s", x, n, got, want)
		}
	}
}

func TestModZeroDivisor(t *testing.T) {
	if _, err := Mod(nil, Int{1}, Int{}); err == nil {
		t.Fatal("mod 0 succeeded")
	}
}

func TestModExpAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		base := randInt(rng, 4)
		exp := randInt(rng, 2)
		n := randInt(rng, 4)
		if n.IsZero() {
			n = Int{7}
		}
		got, err := ModExp(nil, base, exp, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(base.Big(), exp.Big(), n.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("modexp mismatch: got %s want %s", got, want)
		}
	}
}

func TestModExpSigningRateCalibration(t *testing.T) {
	// The virtual cost of one 512-bit modexp should put native signing in
	// the right territory: the paper measures ≈145 signs/s (§5.2.3),
	// i.e. ≈6.9ms per signature. Accept a generous band; EXPERIMENTS.md
	// records the exact measured value.
	rng := rand.New(rand.NewSource(6))
	base := randInt(rng, 8)
	exp := randInt(rng, 8)
	n := randInt(rng, 8)
	n[7] |= 1 << 63 // full 512-bit modulus
	var virtual time.Duration
	meter := MeterFunc(func(d time.Duration) { virtual += d })
	if _, err := ModExp(meter, base, exp, n, nil); err != nil {
		t.Fatal(err)
	}
	if virtual < 3*time.Millisecond || virtual > 15*time.Millisecond {
		t.Fatalf("one signing modexp costs %v of virtual time, want ≈6.9ms", virtual)
	}
}

func TestSubPartWordsSignConvention(t *testing.T) {
	dst := make(Int, 2)
	if neg := SubPartWords(nil, dst, Int{10, 0}, Int{3, 0}); neg != 0 {
		t.Fatal("a>b reported negated")
	}
	if dst[0] != 7 {
		t.Fatalf("dst = %v", dst)
	}
	if neg := SubPartWords(nil, dst, Int{3, 0}, Int{10, 0}); neg != 1 {
		t.Fatal("a<b not reported negated")
	}
	if dst[0] != 7 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestRoundTripsBytesAndBig(t *testing.T) {
	f := func(raw []byte) bool {
		x := FromBytes(raw)
		back := FromBytes(x.Bytes())
		return x.Cmp(back) == 0 && x.Big().Cmp(back.Big()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFromBigRejectsNegative(t *testing.T) {
	if _, err := FromBig(big.NewInt(-3)); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestCmpProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Int{Word(a)}, Int{Word(b)}
		c := x.Cmp(y)
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Leading zeros do not affect comparison.
	if (Int{5, 0, 0}).Cmp(Int{5}) != 0 {
		t.Fatal("normalisation broken in Cmp")
	}
}

func TestMeterCharges(t *testing.T) {
	var total time.Duration
	m := MeterFunc(func(d time.Duration) { total += d })
	rng := rand.New(rand.NewSource(7))
	x, y := randInt(rng, 8), randInt(rng, 8)
	MulRecursive(m, x, y, nil)
	if total == 0 {
		t.Fatal("multiplication charged no virtual time")
	}
}
