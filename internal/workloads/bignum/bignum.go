// Package bignum is a small arbitrary-precision integer library shaped
// like LibreSSL's BN code, built for the Glamdring workload (§5.2.3): the
// interesting call is SubPartWords (bn_sub_part_words), which Karatsuba
// multiplication (MulRecursive, bn_mul_recursive) invokes in pairs —
// exactly the pattern the paper's analyser flags for batching, and whose
// per-call enclave transitions dominate the partitioned LibreSSL.
//
// Arithmetic is real (the signing workload produces correct modular
// exponentiation results, cross-checked against math/big in tests); the
// time it costs is charged to a virtual clock through a Meter so
// experiments are deterministic and calibrated to the paper's machine.
package bignum

import (
	"fmt"
	"math/big"
	"math/bits"
	"time"
)

// Word is one limb.
type Word uint64

// Int is a little-endian limb vector. The zero value is 0.
type Int []Word

// Meter receives virtual-time charges for arithmetic work. The Glamdring
// workload plugs the enclave/application clock in here; a nil meter means
// free computation.
type Meter interface {
	Work(d time.Duration)
}

// MeterFunc adapts a function to Meter.
type MeterFunc func(d time.Duration)

// Work implements Meter.
func (f MeterFunc) Work(d time.Duration) { f(d) }

// Cost model: virtual time per primitive word operation, calibrated so
// that 512-bit modular exponentiation signs at ≈145 ops/s natively — the
// paper's native LibreSSL rate (§5.2.3).
const (
	// costWordMul is one word×word multiply-accumulate.
	costWordMul = 65 * time.Nanosecond
	// costWordAdd is one word add/sub with carry.
	costWordAdd = 6 * time.Nanosecond
)

func charge(m Meter, d time.Duration) {
	if m != nil {
		m.Work(d)
	}
}

// norm trims leading zero limbs.
func (x Int) norm() Int {
	n := len(x)
	for n > 0 && x[n-1] == 0 {
		n--
	}
	return x[:n]
}

// IsZero reports x == 0.
func (x Int) IsZero() bool { return len(x.norm()) == 0 }

// Cmp compares x and y: -1, 0, +1.
func (x Int) Cmp(y Int) int {
	a, b := x.norm(), y.norm()
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Clone copies x.
func (x Int) Clone() Int {
	out := make(Int, len(x))
	copy(out, x)
	return out
}

// FromBig converts a non-negative math/big integer.
func FromBig(v *big.Int) (Int, error) {
	if v.Sign() < 0 {
		return nil, fmt.Errorf("bignum: negative value %s", v)
	}
	words := v.Bits()
	out := make(Int, len(words))
	for i, w := range words {
		out[i] = Word(w)
	}
	return out, nil
}

// MustFromBig converts or panics; for constants in tests and setup code.
func MustFromBig(v *big.Int) Int {
	out, err := FromBig(v)
	if err != nil {
		panic(err)
	}
	return out
}

// Big converts to math/big for verification.
func (x Int) Big() *big.Int {
	v := new(big.Int)
	for i := len(x) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(uint64(x[i])))
	}
	return v
}

// String renders in hex.
func (x Int) String() string { return fmt.Sprintf("%#x", x.Big()) }

// Bytes renders x big-endian.
func (x Int) Bytes() []byte { return x.Big().Bytes() }

// FromBytes parses big-endian bytes.
func FromBytes(b []byte) Int {
	return MustFromBig(new(big.Int).SetBytes(b))
}

// Add returns x+y, charging the meter.
func Add(m Meter, x, y Int) Int {
	if len(x) < len(y) {
		x, y = y, x
	}
	out := make(Int, len(x)+1)
	var carry uint64
	for i := range x {
		var yi Word
		if i < len(y) {
			yi = y[i]
		}
		s, c := bits.Add64(uint64(x[i]), uint64(yi), carry)
		out[i] = Word(s)
		carry = c
	}
	out[len(x)] = Word(carry)
	charge(m, time.Duration(len(x))*costWordAdd)
	return out.norm()
}

// Sub returns x-y (requires x ≥ y), charging the meter.
func Sub(m Meter, x, y Int) (Int, error) {
	out := make(Int, len(x))
	if subInto(out, x, y) != 0 {
		return nil, fmt.Errorf("bignum: negative result in Sub")
	}
	charge(m, time.Duration(len(x))*costWordAdd)
	return out.norm(), nil
}

// subInto computes dst = x - y limbwise, returning the final borrow.
func subInto(dst Int, x, y Int) Word {
	var borrow uint64
	for i := range dst {
		var xi, yi Word
		if i < len(x) {
			xi = x[i]
		}
		if i < len(y) {
			yi = y[i]
		}
		d, b := bits.Sub64(uint64(xi), uint64(yi), borrow)
		dst[i] = Word(d)
		borrow = b
	}
	return Word(borrow)
}

// SubPartWords is the workload's bn_sub_part_words: subtract the smaller
// of a, b from the larger into dst (len(dst) limbs), returning 1 if the
// operands were swapped (b > a), 0 otherwise — mirroring OpenSSL's sign
// return. It is deliberately a tiny O(n) function: its execution is far
// shorter than an enclave transition, which is the whole point of §5.2.3.
func SubPartWords(m Meter, dst, a, b Int) Word {
	neg := Word(0)
	if cmpN(a, b, len(dst)) < 0 {
		a, b = b, a
		neg = 1
	}
	subInto(dst, a, b)
	charge(m, time.Duration(len(dst))*costWordAdd)
	return neg
}

// cmpN compares the low n limbs.
func cmpN(a, b Int, n int) int {
	for i := n - 1; i >= 0; i-- {
		var ai, bi Word
		if i < len(a) {
			ai = a[i]
		}
		if i < len(b) {
			bi = b[i]
		}
		if ai != bi {
			if ai < bi {
				return -1
			}
			return 1
		}
	}
	return 0
}

// mulComba is the quadratic base-case multiplier (bn_mul_comba-alike).
func mulComba(m Meter, x, y Int) Int {
	x, y = x.norm(), y.norm()
	out := make(Int, len(x)+len(y)+1)
	for i := range x {
		var carry uint64
		for j := range y {
			hi, lo := bits.Mul64(uint64(x[i]), uint64(y[j]))
			s, c1 := bits.Add64(uint64(out[i+j]), lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			out[i+j] = Word(s)
			carry = hi + c1 + c2
		}
		out[i+len(y)] += Word(carry)
	}
	charge(m, time.Duration(len(x)*len(y)+1)*costWordMul)
	return out.norm()
}

// KaratsubaThreshold is the limb count at or below which multiplication
// falls back to the comba base case. With 512-bit operands (8 limbs) and
// threshold 2, a full multiply performs 8 SubPartWords calls — matching
// the paper's ≈6,500 bn_sub_part_words per signature (§5.2.3).
const KaratsubaThreshold = 2

// SubPartWordsFn lets callers interpose on the bn_sub_part_words calls
// made by MulRecursive — the Glamdring partition routes these through an
// ecall; the optimised variant keeps them in-enclave (§5.2.3).
type SubPartWordsFn func(dst, a, b Int) Word

// MulRecursive is bn_mul_recursive: Karatsuba multiplication calling the
// sub primitive in successive pairs and then recursing — the exact listing
// from §5.2.3.
func MulRecursive(m Meter, x, y Int, sub SubPartWordsFn) Int {
	if sub == nil {
		sub = func(dst, a, b Int) Word { return SubPartWords(m, dst, a, b) }
	}
	return mulRec(m, x, y, sub)
}

func mulRec(m Meter, x, y Int, sub SubPartWordsFn) Int {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	if n <= KaratsubaThreshold {
		return mulComba(m, x, y)
	}
	half := (n + 1) / 2
	x0, x1 := splitAt(x, half)
	y0, y1 := splitAt(y, half)

	// The two successive bn_sub_part_words calls from the paper's
	// listing: t = |x1 - x0|, t2 = |y0 - y1|.
	t := make(Int, half)
	negX := sub(t, x1, x0)
	t2 := make(Int, half)
	negY := sub(t2, y0, y1)

	p0 := mulRec(m, x0.norm(), y0.norm(), sub)
	p1 := mulRec(m, x1.norm(), y1.norm(), sub)
	pm := mulRec(m, t.norm(), t2.norm(), sub)

	// mid = x0·y1 + x1·y0 = p0 + p1 − (x1−x0)(y1−y0). With
	// t = |x1−x0| and t2 = |y0−y1|, the product (x1−x0)(y1−y0) equals
	// −pm when the recorded signs agree and +pm when they differ.
	mid := Add(m, p0, p1)
	if negX == negY {
		mid = Add(m, mid, pm)
	} else {
		var err error
		mid, err = Sub(m, mid, pm)
		if err != nil {
			// Cannot happen: mid = x0·y1 + x1·y0 ≥ 0 by construction.
			panic("bignum: karatsuba middle term underflow")
		}
	}

	out := p0.Clone()
	out = addShifted(m, out, mid, half)
	out = addShifted(m, out, p1, 2*half)
	return out.norm()
}

func splitAt(x Int, k int) (lo, hi Int) {
	if len(x) <= k {
		return x, Int{}
	}
	return x[:k], x[k:]
}

// addShifted returns x + (y << 64·k).
func addShifted(m Meter, x, y Int, k int) Int {
	shifted := make(Int, len(y)+k)
	copy(shifted[k:], y)
	return Add(m, x, shifted)
}

// Mod returns x mod n using word-based long division (Knuth algorithm D,
// the bn_div equivalent; this part of LibreSSL stays outside the enclave
// in the Glamdring partition).
func Mod(m Meter, x, n Int) (Int, error) {
	v := n.norm()
	if len(v) == 0 {
		return nil, fmt.Errorf("bignum: modulus is zero")
	}
	u := x.norm()
	if u.Cmp(v) < 0 {
		return u.Clone(), nil
	}
	if len(v) == 1 {
		var r uint64
		for i := len(u) - 1; i >= 0; i-- {
			_, r = bits.Div64(r, uint64(u[i]), uint64(v[0]))
		}
		charge(m, time.Duration(len(u))*costWordMul)
		return Int{Word(r)}.norm(), nil
	}

	// Normalise so the divisor's top bit is set. After the shift the
	// divisor still fits its original limb count (the shift removes
	// exactly its leading zeros), while the dividend gets one limb of
	// headroom.
	shift := uint(bits.LeadingZeros64(uint64(v[len(v)-1])))
	vn := shlBits(v, shift).norm()
	un := shlBits(u, shift)

	nl := len(vn)
	ml := len(un) - nl
	vTop := uint64(vn[nl-1])
	vSecond := uint64(0)
	if nl >= 2 {
		vSecond = uint64(vn[nl-2])
	}

	for j := ml - 1; j >= 0; j-- {
		uTop := uint64(un[j+nl])
		uNext := uint64(un[j+nl-1])
		var qhat, rhat uint64
		if uTop >= vTop {
			qhat = ^uint64(0)
		} else {
			qhat, rhat = bits.Div64(uTop, uNext, vTop)
			// Refine qhat (at most two corrections).
			for {
				hi, lo := bits.Mul64(qhat, vSecond)
				var uThird uint64
				if j+nl-2 >= 0 {
					uThird = uint64(un[j+nl-2])
				}
				if hi > rhat || (hi == rhat && lo > uThird) {
					qhat--
					var carry uint64
					rhat, carry = bits.Add64(rhat, vTop, 0)
					if carry != 0 {
						break
					}
					continue
				}
				break
			}
		}
		// un[j:j+nl+1] -= qhat * vn
		var borrow, mulCarry uint64
		for i := 0; i < nl; i++ {
			hi, lo := bits.Mul64(qhat, uint64(vn[i]))
			lo, c := bits.Add64(lo, mulCarry, 0)
			mulCarry = hi + c
			d, b := bits.Sub64(uint64(un[j+i]), lo, borrow)
			un[j+i] = Word(d)
			borrow = b
		}
		d, b := bits.Sub64(uint64(un[j+nl]), mulCarry, borrow)
		un[j+nl] = Word(d)
		if b != 0 {
			// qhat was one too large: add back.
			var carry uint64
			for i := 0; i < nl; i++ {
				s, c := bits.Add64(uint64(un[j+i]), uint64(vn[i]), carry)
				un[j+i] = Word(s)
				carry = c
			}
			un[j+nl] = Word(uint64(un[j+nl]) + carry)
		}
	}
	charge(m, time.Duration((ml+1)*nl)*costWordMul)
	return shrBits(Int(un[:nl]), shift).norm(), nil
}

func shlBits(x Int, s uint) Int {
	if s == 0 {
		out := make(Int, len(x)+1)
		copy(out, x)
		return out
	}
	out := make(Int, len(x)+1)
	for i := len(x) - 1; i >= 0; i-- {
		out[i+1] |= x[i] >> (64 - s)
		out[i] = x[i] << s
	}
	return out
}

func shrBits(x Int, s uint) Int {
	if s == 0 {
		return x.Clone()
	}
	out := make(Int, len(x))
	for i := 0; i < len(x); i++ {
		out[i] = x[i] >> s
		if i+1 < len(x) {
			out[i] |= x[i+1] << (64 - s)
		}
	}
	return out
}

// ModMul returns x·y mod n, multiplying with MulRecursive (so the sub
// interposer sees the workload's calls) and reducing with Mod.
func ModMul(m Meter, x, y, n Int, sub SubPartWordsFn) (Int, error) {
	return Mod(m, MulRecursive(m, x, y, sub), n)
}

// ModExp returns base^exp mod n via square-and-multiply — the core of the
// certificate-signing benchmark (§5.2.3).
func ModExp(m Meter, base, exp, n Int, sub SubPartWordsFn) (Int, error) {
	result := Int{1}
	b, err := Mod(m, base, n)
	if err != nil {
		return nil, err
	}
	e := exp.norm()
	for i := 0; i < len(e)*64; i++ {
		if e[i/64]>>(uint(i)%64)&1 == 1 {
			if result, err = ModMul(m, result, b, n, sub); err != nil {
				return nil, err
			}
		}
		if b, err = ModMul(m, b, b, n, sub); err != nil {
			return nil, err
		}
	}
	return result, nil
}
