package minidb_test

import (
	"fmt"
	"strings"
	"testing"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/minidb"
)

func newNativeEngine(t *testing.T) (*minidb.Engine, *sgx.Context) {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("db")
	eng, err := minidb.NewEngine(minidb.NewDirectVFS(h.Kernel.FS, ctx), "test.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ctx
}

func TestSQLParser(t *testing.T) {
	tests := []struct {
		sql  string
		ok   bool
		desc string
	}{
		{"CREATE TABLE t (a, b)", true, "create"},
		{"create table t (a)", true, "case-insensitive"},
		{"INSERT INTO t VALUES ('x', 1)", true, "insert"},
		{"INSERT INTO t VALUES ('it''s', -5)", true, "escaped quote + negative"},
		{"SELECT * FROM t", true, "select star"},
		{"SELECT COUNT(*) FROM t WHERE a = 'x'", true, "count with where"},
		{"SELECT * FROM t WHERE a = 1;", true, "trailing semicolon"},
		{"DROP TABLE t", false, "unsupported"},
		{"SELECT FROM t", false, "missing projection"},
		{"INSERT INTO t VALUES (", false, "unterminated"},
		{"CREATE TABLE t ()", false, "no columns"},
		{"SELECT * FROM t WHERE a = 'unterminated", false, "bad string"},
		{"SELECT * FROM t extra", false, "trailing garbage"},
	}
	for _, tt := range tests {
		t.Run(tt.desc, func(t *testing.T) {
			_, err := minidb.Parse(tt.sql)
			if tt.ok && err != nil {
				t.Fatalf("parse %q: %v", tt.sql, err)
			}
			if !tt.ok && err == nil {
				t.Fatalf("parse %q succeeded", tt.sql)
			}
		})
	}
}

func TestEngineCRUD(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("CREATE TABLE users (name, age)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sql := fmt.Sprintf("INSERT INTO users VALUES ('user%d', %d)", i, 20+i)
		res, err := eng.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("rows affected = %d", res.RowsAffected)
		}
	}
	res, err := eng.Exec("SELECT COUNT(*) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 10 {
		t.Fatalf("count = %d, want 10", res.Count)
	}
	res, err = eng.Exec("SELECT * FROM users WHERE name = 'user3'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Int != 23 {
		t.Fatalf("where result = %+v", res.Rows)
	}
	res, err = eng.Exec("SELECT COUNT(*) FROM users WHERE age = 25")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("count where = %d", res.Count)
	}
}

func TestEngineErrors(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("INSERT INTO ghost VALUES (1)"); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
	if _, err := eng.Exec("CREATE TABLE t (a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE TABLE t (a)"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := eng.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if _, err := eng.Exec("SELECT * FROM t WHERE ghost = 1"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestEngineMultiPageGrowth(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("CREATE TABLE big (payload)"); err != nil {
		t.Fatal(err)
	}
	// ~400 bytes per row: a few hundred rows span many pages.
	payload := strings.Repeat("x", 400)
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO big VALUES ('%s%d')", payload, i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Exec("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n {
		t.Fatalf("count = %d, want %d", res.Count, n)
	}
	// Every row must be retrievable from the last page too.
	res, err = eng.Exec(fmt.Sprintf("SELECT * FROM big WHERE payload = '%s%d'", payload, n-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("last row not found")
	}
}

func TestEnginePersistsAcrossReopen(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("db")
	vfs := minidb.NewDirectVFS(h.Kernel.FS, ctx)
	eng, err := minidb.NewEngine(vfs, "persist.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE TABLE kv (k, v)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO kv VALUES ('a', 1)"); err != nil {
		t.Fatal(err)
	}
	// Reopen: catalog and data must come back from the file.
	eng2, err := minidb.NewEngine(vfs, "persist.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Exec("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("count after reopen = %d", res.Count)
	}
}

func TestPagerRollback(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("db")
	vfs := minidb.NewDirectVFS(h.Kernel.FS, ctx)
	p, err := minidb.OpenPager(vfs, "roll.db")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	n, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg, err := p.Write(n)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg[100:], "committed")
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	// Modify and roll back.
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	pg, err = p.Write(n)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg[100:], "discarded")
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(n)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[100:109]) != "committed" {
		t.Fatalf("page after rollback: %q", got[100:109])
	}
	if p.PageCount() != n+1 {
		t.Fatalf("page count after rollback = %d, want %d", p.PageCount(), n+1)
	}
	// Pager usable again after rollback.
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPagerTxnDiscipline(t *testing.T) {
	h, _ := host.New()
	ctx := h.NewContext("db")
	p, err := minidb.OpenPager(minidb.NewDirectVFS(h.Kernel.FS, ctx), "disc.db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(0); err == nil {
		t.Fatal("write outside txn succeeded")
	}
	if err := p.Commit(); err == nil {
		t.Fatal("commit outside txn succeeded")
	}
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err == nil {
		t.Fatal("nested txn succeeded")
	}
}

func newWorkload(t *testing.T, variant minidb.Variant) (*host.Host, *sgx.Context, *minidb.Workload) {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	w, err := minidb.New(h, variant, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return h, ctx, w
}

func TestWorkloadCorrectAcrossVariants(t *testing.T) {
	for _, v := range minidb.Variants() {
		v := v
		t.Run(string(v), func(t *testing.T) {
			_, ctx, w := newWorkload(t, v)
			res, err := w.Run(ctx, workloads.Options{Ops: 50})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 50 {
				t.Fatalf("ops = %d", res.Ops)
			}
			count, err := w.Exec(ctx, "SELECT COUNT(*) FROM commits")
			if err != nil {
				t.Fatal(err)
			}
			if count.Count != 50 {
				t.Fatalf("count = %d, want 50", count.Count)
			}
		})
	}
}

func TestVariantOrderingMatchesPaper(t *testing.T) {
	// §5.2.2: native ≈23,087 req/s; enclavised ≈0.57×; merged recovers
	// ≈+33%.
	rates := map[minidb.Variant]float64{}
	for _, v := range minidb.Variants() {
		_, ctx, w := newWorkload(t, v)
		res, err := w.Run(ctx, workloads.Options{Ops: 400})
		if err != nil {
			t.Fatal(err)
		}
		rates[v] = res.Throughput()
	}
	native, enclave, merged := rates[minidb.VariantNative], rates[minidb.VariantEnclave], rates[minidb.VariantMerged]
	if !(native > merged && merged > enclave) {
		t.Fatalf("ordering wrong: native=%.0f merged=%.0f enclave=%.0f", native, merged, enclave)
	}
	if native < 12000 || native > 40000 {
		t.Errorf("native = %.0f inserts/s, want ≈23k", native)
	}
	if ratio := enclave / native; ratio < 0.35 || ratio > 0.75 {
		t.Errorf("enclave/native = %.2f, want ≈0.57", ratio)
	}
	if gain := merged/enclave - 1; gain < 0.15 || gain > 0.55 {
		t.Errorf("merged gain = %.0f%%, want ≈33%%", gain*100)
	}
}

func TestEnclaveCallShapeAndSDSCDetection(t *testing.T) {
	// §5.2.2: lseek ocalls are short (≈4µs), writes longer (≈17µs), and
	// sgx-perf's analyser flags the lseek→write merge.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "sqlite"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	w, err := minidb.New(h, minidb.VariantEnclave, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx, workloads.Options{Ops: 200}); err != nil {
		t.Fatal(err)
	}

	trace := l.Trace()
	lseeks := trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == minidb.OcallLseek })
	writes := trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == minidb.OcallWrite })
	fsyncs := trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == minidb.OcallFsync })
	if lseeks == 0 || writes == 0 || fsyncs == 0 {
		t.Fatalf("ocall mix: lseek=%d write=%d fsync=%d", lseeks, writes, fsyncs)
	}
	if lseeks < writes {
		t.Errorf("lseek (%d) should be at least as frequent as write (%d)", lseeks, writes)
	}

	a, err := analyzer.New(trace, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// lseek is much shorter than write on average.
	ls, _ := a.Stats(minidb.OcallLseek)
	ws, _ := a.Stats(minidb.OcallWrite)
	if ls.Mean >= ws.Mean {
		t.Errorf("lseek mean %v not shorter than write mean %v", ls.Mean, ws.Mean)
	}

	report := a.Analyze()
	merge := false
	for _, f := range report.Findings {
		if f.Problem == analyzer.ProblemSDSC &&
			((f.Call == minidb.OcallWrite && f.Partner == minidb.OcallLseek) ||
				(f.Call == minidb.OcallLseek && f.Partner == minidb.OcallWrite)) {
			merge = true
		}
	}
	if !merge {
		t.Errorf("analyser did not flag the lseek+write merge; findings: %+v", report.Findings)
	}
}

func TestMergedVariantEliminatesPairs(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "sqlite-merged"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("driver")
	w, err := minidb.New(h, minidb.VariantMerged, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx, workloads.Options{Ops: 100}); err != nil {
		t.Fatal(err)
	}
	trace := l.Trace()
	mergedCalls := trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == minidb.OcallLseekWrite })
	writes := trace.Ocalls.Count(func(e events.CallEvent) bool { return e.Name == minidb.OcallWrite })
	if mergedCalls == 0 {
		t.Fatal("merged variant issued no merged ocalls")
	}
	if writes != 0 {
		t.Fatalf("merged variant still issued %d separate writes", writes)
	}
}

func TestEngineDelete(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("CREATE TABLE t (name, n)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO t VALUES ('row%d', %d)", i, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Exec("DELETE FROM t WHERE n = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 5 {
		t.Fatalf("deleted %d rows, want 5", res.RowsAffected)
	}
	count, err := eng.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if count.Count != 15 {
		t.Fatalf("count = %d, want 15", count.Count)
	}
	if c, _ := eng.Exec("SELECT COUNT(*) FROM t WHERE n = 2"); c.Count != 0 {
		t.Fatalf("deleted rows still present: %d", c.Count)
	}
	// DELETE without WHERE empties the table.
	if res, err = eng.Exec("DELETE FROM t"); err != nil || res.RowsAffected != 15 {
		t.Fatalf("delete all = %+v, %v", res, err)
	}
	if c, _ := eng.Exec("SELECT COUNT(*) FROM t"); c.Count != 0 {
		t.Fatalf("table not empty: %d", c.Count)
	}
	// Table still usable afterwards.
	if _, err := eng.Exec("INSERT INTO t VALUES ('fresh', 1)"); err != nil {
		t.Fatal(err)
	}
	if c, _ := eng.Exec("SELECT COUNT(*) FROM t"); c.Count != 1 {
		t.Fatalf("count after reinsert = %d", c.Count)
	}
}

func TestEngineUpdate(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("CREATE TABLE users (name, age)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO users VALUES ('u%d', %d)", i, 20+i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Exec("UPDATE users SET age = 99 WHERE name = 'u3'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("updated %d rows", res.RowsAffected)
	}
	row, err := eng.Exec("SELECT * FROM users WHERE name = 'u3'")
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Rows) != 1 || row.Rows[0][1].Int != 99 {
		t.Fatalf("row = %+v", row.Rows)
	}
	// Multi-assignment update of everything.
	res, err = eng.Exec("UPDATE users SET age = 1, name = 'same'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 10 {
		t.Fatalf("updated %d rows, want 10", res.RowsAffected)
	}
	if c, _ := eng.Exec("SELECT COUNT(*) FROM users WHERE name = 'same'"); c.Count != 10 {
		t.Fatalf("count = %d", c.Count)
	}
	// Unknown column rejected.
	if _, err := eng.Exec("UPDATE users SET ghost = 1"); err == nil {
		t.Fatal("unknown SET column accepted")
	}
	if _, err := eng.Exec("UPDATE users SET age = 1 WHERE ghost = 1"); err == nil {
		t.Fatal("unknown WHERE column accepted")
	}
}

func TestEngineUpdateGrowingRowOverflows(t *testing.T) {
	// Updating a row so it no longer fits its page must relocate it, not
	// lose it.
	eng, _ := newNativeEngine(t)
	if _, err := eng.Exec("CREATE TABLE t (k, payload)"); err != nil {
		t.Fatal(err)
	}
	// Fill a page nearly to the brim with mid-sized rows.
	pad := strings.Repeat("x", 360)
	for i := 0; i < 11; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s')", i, pad)); err != nil {
			t.Fatal(err)
		}
	}
	// Grow one row by 3 KiB: the rewritten page cannot hold it.
	big := strings.Repeat("y", 3200)
	res, err := eng.Exec(fmt.Sprintf("UPDATE t SET payload = '%s' WHERE k = 5", big))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	row, err := eng.Exec("SELECT * FROM t WHERE k = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Rows) != 1 || row.Rows[0][1].Str != big {
		t.Fatalf("relocated row lost or corrupted (%d rows)", len(row.Rows))
	}
	if c, _ := eng.Exec("SELECT COUNT(*) FROM t"); c.Count != 11 {
		t.Fatalf("count = %d, want 11", c.Count)
	}
}

func TestDeleteUpdateThroughEnclaveVariant(t *testing.T) {
	_, ctx, w := newWorkload(t, minidb.VariantEnclave)
	if _, err := w.Exec(ctx, "CREATE TABLE kv (k, v)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w.Exec(ctx, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := w.Exec(ctx, "UPDATE kv SET v = 100 WHERE k = 3"); err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %+v, %v", res, err)
	}
	if res, err := w.Exec(ctx, "DELETE FROM kv WHERE k = 0"); err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete: %+v, %v", res, err)
	}
	if c, err := w.Exec(ctx, "SELECT COUNT(*) FROM kv"); err != nil || c.Count != 5 {
		t.Fatalf("count: %+v, %v", c, err)
	}
}
