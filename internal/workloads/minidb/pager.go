package minidb

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the database page size.
const PageSize = 4096

// dbMagic identifies a minidb file.
const dbMagic = 0x6d696e69 // "mini"

// Pager provides transactional page access over a VFS using a rollback
// journal, shaped like SQLite's: before a page is modified its original
// content goes to the journal; commit syncs the journal, writes the dirty
// pages to the database, syncs the database, and truncates the journal.
type Pager struct {
	vfs     VFS
	db      File
	journal File
	name    string

	pageCount int
	cache     map[int][]byte
	dirty     map[int]bool
	journaled map[int]bool
	inTxn     bool
	jOffset   int64
}

// journal record layout: [u32 pageNo][u32 checksum][PageSize bytes]
const journalRecSize = 8 + PageSize

// journalHeaderSize holds the journal magic + page count.
const journalHeaderSize = 12

// OpenPager opens (creating if empty) a database file and its journal.
func OpenPager(vfs VFS, name string) (*Pager, error) {
	db, err := vfs.Open(name)
	if err != nil {
		return nil, fmt.Errorf("minidb: open db: %w", err)
	}
	journal, err := vfs.Open(name + "-journal")
	if err != nil {
		return nil, fmt.Errorf("minidb: open journal: %w", err)
	}
	p := &Pager{
		vfs:       vfs,
		db:        db,
		journal:   journal,
		name:      name,
		cache:     make(map[int][]byte),
		dirty:     make(map[int]bool),
		journaled: make(map[int]bool),
	}
	size, err := db.Size()
	if err != nil {
		return nil, err
	}
	p.pageCount = int(size / PageSize)
	if p.pageCount == 0 {
		// Fresh database: initialise page 0 (header + catalog).
		hdr := make([]byte, PageSize)
		binary.LittleEndian.PutUint32(hdr[0:4], dbMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], 1)
		p.cache[0] = hdr
		p.pageCount = 1
		if err := p.db.WriteAt(hdr, 0); err != nil {
			return nil, err
		}
	} else {
		hdr, err := p.readPage(0)
		if err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != dbMagic {
			return nil, fmt.Errorf("minidb: %q is not a minidb file", name)
		}
		p.pageCount = int(binary.LittleEndian.Uint32(hdr[4:8]))
	}
	return p, nil
}

// PageCount returns the number of allocated pages.
func (p *Pager) PageCount() int { return p.pageCount }

func (p *Pager) readPage(n int) ([]byte, error) {
	if pg, ok := p.cache[n]; ok {
		return pg, nil
	}
	pg := make([]byte, PageSize)
	if _, err := p.db.ReadAt(pg, int64(n)*PageSize); err != nil {
		return nil, fmt.Errorf("minidb: read page %d: %w", n, err)
	}
	p.cache[n] = pg
	return pg, nil
}

// Get returns a read-only view of page n.
func (p *Pager) Get(n int) ([]byte, error) {
	if n < 0 || n >= p.pageCount {
		return nil, fmt.Errorf("minidb: page %d out of range (%d pages)", n, p.pageCount)
	}
	return p.readPage(n)
}

// Begin starts a transaction: the journal header is written out.
func (p *Pager) Begin() error {
	if p.inTxn {
		return fmt.Errorf("minidb: nested transaction")
	}
	p.inTxn = true
	p.jOffset = journalHeaderSize
	hdr := make([]byte, journalHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], dbMagic+1)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(p.pageCount))
	return p.journal.WriteAt(hdr, 0)
}

// Write returns page n for modification, journaling its original content
// first (once per transaction).
func (p *Pager) Write(n int) ([]byte, error) {
	if !p.inTxn {
		return nil, fmt.Errorf("minidb: write outside transaction")
	}
	pg, err := p.Get(n)
	if err != nil {
		return nil, err
	}
	if !p.journaled[n] {
		// Two positioned writes per journal record, as SQLite does on
		// Linux: the page number + checksum header, then the page image —
		// each preceded by an lseek in the naïve ocall port (§5.2.2).
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
		binary.LittleEndian.PutUint32(hdr[4:8], checksum(pg))
		if err := p.journal.WriteAt(hdr, p.jOffset); err != nil {
			return nil, fmt.Errorf("minidb: journal page %d: %w", n, err)
		}
		if err := p.journal.WriteAt(pg, p.jOffset+8); err != nil {
			return nil, fmt.Errorf("minidb: journal page %d: %w", n, err)
		}
		p.jOffset += journalRecSize
		p.journaled[n] = true
	}
	p.dirty[n] = true
	return pg, nil
}

// Allocate appends a fresh page inside the transaction and returns its
// number.
func (p *Pager) Allocate() (int, error) {
	if !p.inTxn {
		return 0, fmt.Errorf("minidb: allocate outside transaction")
	}
	n := p.pageCount
	p.pageCount++
	p.cache[n] = make([]byte, PageSize)
	p.dirty[n] = true
	// Page count lives in the header page, which must be journaled too.
	hdr, err := p.Write(0)
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(p.pageCount))
	return n, nil
}

// Commit makes the transaction durable: sync journal, write dirty pages,
// sync database, truncate journal — the syscall sequence whose lseek+write
// pairs the paper's SDSC finding targets.
func (p *Pager) Commit() error {
	if !p.inTxn {
		return fmt.Errorf("minidb: commit outside transaction")
	}
	if err := p.journal.Sync(); err != nil {
		return err
	}
	for n := range p.dirty {
		if err := p.db.WriteAt(p.cache[n], int64(n)*PageSize); err != nil {
			return fmt.Errorf("minidb: write back page %d: %w", n, err)
		}
	}
	if err := p.db.Sync(); err != nil {
		return err
	}
	if err := p.journal.Truncate(0); err != nil {
		return err
	}
	p.endTxn()
	return nil
}

// Rollback restores every journaled page's original content.
func (p *Pager) Rollback() error {
	if !p.inTxn {
		return fmt.Errorf("minidb: rollback outside transaction")
	}
	size := p.jOffset
	for off := int64(journalHeaderSize); off+journalRecSize <= size; off += journalRecSize {
		rec := make([]byte, journalRecSize)
		if _, err := p.journal.ReadAt(rec, off); err != nil {
			return fmt.Errorf("minidb: rollback read: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(rec[0:4]))
		sum := binary.LittleEndian.Uint32(rec[4:8])
		content := rec[8:]
		if checksum(content) != sum {
			return fmt.Errorf("minidb: journal checksum mismatch for page %d", n)
		}
		pg := make([]byte, PageSize)
		copy(pg, content)
		p.cache[n] = pg
		if err := p.db.WriteAt(pg, int64(n)*PageSize); err != nil {
			return err
		}
	}
	// Restore the page count from the journal header.
	hdr := make([]byte, journalHeaderSize)
	if _, err := p.journal.ReadAt(hdr, 0); err != nil {
		return err
	}
	p.pageCount = int(binary.LittleEndian.Uint64(hdr[4:12]))
	// Drop pages allocated by the aborted transaction.
	for n := range p.cache {
		if n >= p.pageCount {
			delete(p.cache, n)
		}
	}
	if err := p.journal.Truncate(0); err != nil {
		return err
	}
	p.endTxn()
	return nil
}

func (p *Pager) endTxn() {
	p.inTxn = false
	p.dirty = make(map[int]bool)
	p.journaled = make(map[int]bool)
}

// checksum is a tiny additive checksum (SQLite's journal uses a similarly
// cheap one).
func checksum(b []byte) uint32 {
	var sum uint32
	for i := 0; i < len(b); i += 64 {
		sum += binary.LittleEndian.Uint32(b[i : i+4])
	}
	return sum
}
