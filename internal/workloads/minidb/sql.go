package minidb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Value is one SQL value: integer or string.
type Value struct {
	IsInt bool
	Int   int64
	Str   string
}

// IntVal builds an integer value.
func IntVal(v int64) Value { return Value{IsInt: true, Int: v} }

// StrVal builds a string value.
func StrVal(s string) Value { return Value{Str: s} }

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.IsInt != o.IsInt {
		return false
	}
	if v.IsInt {
		return v.Int == o.Int
	}
	return v.Str == o.Str
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
}

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col, ...).
type CreateTable struct {
	Table   string
	Columns []string
}

// Insert is INSERT INTO name VALUES (v, ...).
type Insert struct {
	Table  string
	Values []Value
}

// Cond is the WHERE col = value condition.
type Cond struct {
	Column string
	Value  Value
}

// Select is SELECT */COUNT(*) FROM name [WHERE col = value].
type Select struct {
	Table string
	Count bool
	Where *Cond
}

// Delete is DELETE FROM name [WHERE col = value].
type Delete struct {
	Table string
	Where *Cond
}

// Assignment is one col = value pair in an UPDATE.
type Assignment struct {
	Column string
	Value  Value
}

// Update is UPDATE name SET col = value [, ...] [WHERE col = value].
type Update struct {
	Table string
	Set   []Assignment
	Where *Cond
}

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Delete) stmt()      {}
func (Update) stmt()      {}

// sqlToken kinds.
type sqlTokKind int

const (
	sqlIdent sqlTokKind = iota + 1
	sqlNumber
	sqlString
	sqlPunct
	sqlEOF
)

type sqlTok struct {
	kind sqlTokKind
	text string
}

// lexSQL tokenises a statement.
func lexSQL(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == ';' || c == '*':
			toks = append(toks, sqlTok{sqlPunct, string(c)})
			i++
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("minidb: unterminated string literal")
			}
			toks = append(toks, sqlTok{sqlString, sb.String()})
		case c == '-' || (c >= '0' && c <= '9'):
			start := i
			i++
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, sqlTok{sqlNumber, src[start:i]})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, sqlTok{sqlIdent, src[start:i]})
		default:
			return nil, fmt.Errorf("minidb: unexpected character %q", c)
		}
	}
	toks = append(toks, sqlTok{sqlEOF, ""})
	return toks, nil
}

// sqlParser is a small recursive-descent parser.
type sqlParser struct {
	toks []sqlTok
	pos  int
}

func (p *sqlParser) cur() sqlTok  { return p.toks[p.pos] }
func (p *sqlParser) next() sqlTok { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) keyword(kw string) error {
	t := p.next()
	if t.kind != sqlIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("minidb: expected %s, found %q", kw, t.text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.next()
	if t.kind != sqlIdent {
		return "", fmt.Errorf("minidb: expected identifier, found %q", t.text)
	}
	return t.text, nil
}

func (p *sqlParser) punct(s string) error {
	t := p.next()
	if t.kind != sqlPunct || t.text != s {
		return fmt.Errorf("minidb: expected %q, found %q", s, t.text)
	}
	return nil
}

func (p *sqlParser) value() (Value, error) {
	t := p.next()
	switch t.kind {
	case sqlNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("minidb: bad number %q", t.text)
		}
		return IntVal(n), nil
	case sqlString:
		return StrVal(t.text), nil
	default:
		return Value{}, fmt.Errorf("minidb: expected value, found %q", t.text)
	}
}

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	t := p.cur()
	if t.kind != sqlIdent {
		return nil, fmt.Errorf("minidb: expected statement, found %q", t.text)
	}
	var st Statement
	switch strings.ToUpper(t.text) {
	case "CREATE":
		st, err = p.parseCreate()
	case "INSERT":
		st, err = p.parseInsert()
	case "SELECT":
		st, err = p.parseSelect()
	case "DELETE":
		st, err = p.parseDelete()
	case "UPDATE":
		st, err = p.parseUpdate()
	default:
		return nil, fmt.Errorf("minidb: unsupported statement %q", t.text)
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind == sqlPunct && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != sqlEOF {
		return nil, fmt.Errorf("minidb: trailing input after statement: %q", p.cur().text)
	}
	return st, nil
}

func (p *sqlParser) parseCreate() (Statement, error) {
	if err := p.keyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.keyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.cur().kind == sqlPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	return CreateTable{Table: name, Columns: cols}, nil
}

func (p *sqlParser) parseInsert() (Statement, error) {
	if err := p.keyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.keyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.cur().kind == sqlPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	return Insert{Table: name, Values: vals}, nil
}

// parseWhere parses an optional WHERE col = value clause.
func (p *sqlParser) parseWhere() (*Cond, error) {
	if !(p.cur().kind == sqlIdent && strings.EqualFold(p.cur().text, "WHERE")) {
		return nil, nil
	}
	p.next()
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.punct("="); err != nil {
		return nil, err
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &Cond{Column: col, Value: v}, nil
}

func (p *sqlParser) parseDelete() (Statement, error) {
	if err := p.keyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return Delete{Table: name, Where: where}, nil
}

func (p *sqlParser) parseUpdate() (Statement, error) {
	if err := p.keyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("SET"); err != nil {
		return nil, err
	}
	var set []Assignment
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.punct("="); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		set = append(set, Assignment{Column: col, Value: v})
		if p.cur().kind == sqlPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return Update{Table: name, Set: set, Where: where}, nil
}

func (p *sqlParser) parseSelect() (Statement, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	sel := Select{}
	t := p.next()
	switch {
	case t.kind == sqlPunct && t.text == "*":
	case t.kind == sqlIdent && strings.EqualFold(t.text, "COUNT"):
		sel.Count = true
		if err := p.punct("("); err != nil {
			return nil, err
		}
		if err := p.punct("*"); err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("minidb: expected * or COUNT(*), found %q", t.text)
	}
	if err := p.keyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = name
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	sel.Where = where
	return sel, nil
}
