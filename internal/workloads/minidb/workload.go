package minidb

import (
	"fmt"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// DBFSCost returns the filesystem cost table used by this workload,
// calibrated with the engine costs so the native insert rate approaches
// the paper's ≈23k requests/s (§5.2.2).
func DBFSCost() kernel.FSCost {
	return kernel.FSCost{
		Open:        3 * time.Microsecond,
		Seek:        500 * time.Nanosecond,
		ReadBase:    1200 * time.Nanosecond,
		ReadPerKiB:  250 * time.Nanosecond,
		WriteBase:   1500 * time.Nanosecond,
		WritePerKiB: 1200 * time.Nanosecond,
		Fsync:       8 * time.Microsecond,
		Truncate:    1500 * time.Nanosecond,
	}
}

// Variant selects the §5.2.2 configuration.
type Variant string

// Variants.
const (
	// VariantNative runs the engine outside any enclave.
	VariantNative Variant = "native"
	// VariantEnclave runs the engine inside an enclave with syscalls
	// implemented naïvely as ocalls (separate lseek and write).
	VariantEnclave Variant = "enclave"
	// VariantMerged is VariantEnclave with each lseek+write pair merged
	// into one ocall — the sgx-perf recommendation (+33% in the paper).
	VariantMerged Variant = "merged"
)

// Variants lists all variants in evaluation order.
func Variants() []Variant {
	return []Variant{VariantNative, VariantEnclave, VariantMerged}
}

// envHolder lets the long-lived engine charge work and issue ocalls
// through whichever ecall invocation is currently active.
type envHolder struct{ env *sdk.Env }

// execArgs are the arguments of ecall_exec_sql.
type execArgs struct{ SQL string }

// CopyInBytes implements sdk.Copied.
func (a execArgs) CopyInBytes() int { return len(a.SQL) }

// CopyOutBytes implements sdk.Copied.
func (a execArgs) CopyOutBytes() int { return 64 }

// Workload is one configured database instance.
type Workload struct {
	h       *host.Host
	variant Variant

	// native path
	engine *Engine

	// enclave path
	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy
}

// EcallProgress is the private progress-handler hook: the engine's
// long-running statements let the host interrupt them, but only while the
// fsync ocall is in flight (its allow-list names this ecall alone).
const EcallProgress = "ecall_sqlite_progress"

// Interface builds the enclavised database's EDL interface (§5.2.2): two
// hot public ecalls, the private progress hook, the eight named
// filesystem ocalls and fillers padding the surface to the paper's 41.
// The read/write ocalls hand their buffers over as user_check pointers —
// the common (and §3.6-risky) way real SQLite ports avoid double copies —
// while the merged lseek+write call marshals its buffer properly.
func Interface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_db_init", true); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall("ecall_exec_sql", true,
		edl.Param{Name: "sql", Dir: edl.DirIn, Size: "len", IsString: true},
		edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallProgress, false); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallOpen, nil,
		edl.Param{Name: "path", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallLseek, nil,
		edl.Param{Name: "fd"}, edl.Param{Name: "offset"}, edl.Param{Name: "whence"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallWrite, nil,
		edl.Param{Name: "buf", Dir: edl.DirUserCheck},
		edl.Param{Name: "fd"}, edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallRead, nil,
		edl.Param{Name: "buf", Dir: edl.DirUserCheck},
		edl.Param{Name: "fd"}, edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallFsync, []string{EcallProgress},
		edl.Param{Name: "fd"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallTruncate, nil,
		edl.Param{Name: "fd"}, edl.Param{Name: "size"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallFileSize, nil,
		edl.Param{Name: "fd"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallLseekWrite, nil,
		edl.Param{Name: "buf", Dir: edl.DirIn, Size: "len"},
		edl.Param{Name: "fd"}, edl.Param{Name: "offset"}, edl.Param{Name: "len"}); err != nil {
		return nil, err
	}
	for i := 0; i < FillerOcalls; i++ {
		if _, err := iface.AddOcall(fmt.Sprintf("ocall_sqlite_gen_%02d", i), nil); err != nil {
			return nil, err
		}
	}
	return iface, nil
}

// New builds the workload. The enclave variants create an enclave whose
// interface declares 2 hot ecalls and 41 ocalls (§5.2.2).
func New(h *host.Host, variant Variant, ctx *sgx.Context) (*Workload, error) {
	w := &Workload{h: h, variant: variant}
	fs := kernel.NewFS(DBFSCost())
	switch variant {
	case VariantNative:
		eng, err := NewEngine(NewDirectVFS(fs, ctx), "bench.db",
			func(d time.Duration) { ctx.Compute(d) })
		if err != nil {
			return nil, err
		}
		w.engine = eng
		return w, nil
	case VariantEnclave, VariantMerged:
	default:
		return nil, fmt.Errorf("minidb: unknown variant %q", variant)
	}

	iface, err := Interface()
	if err != nil {
		return nil, err
	}

	holder := &envHolder{}
	var engine *Engine
	impl := map[string]sdk.TrustedFn{
		"ecall_db_init": func(env *sdk.Env, args any) (any, error) {
			if engine != nil {
				return nil, nil
			}
			holder.env = env
			vfs := &holderVFS{holder: holder, merged: variant == VariantMerged}
			eng, err := NewEngine(vfs, "bench.db", func(d time.Duration) {
				if holder.env != nil {
					holder.env.Compute(d)
				}
			})
			if err != nil {
				return nil, err
			}
			engine = eng
			return nil, nil
		},
		"ecall_exec_sql": func(env *sdk.Env, args any) (any, error) {
			a, ok := args.(execArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad execArgs %T", args)
			}
			if engine == nil {
				return nil, fmt.Errorf("minidb: enclave database not initialised")
			}
			holder.env = env
			defer func() { holder.env = nil }()
			return engine.Exec(a.SQL)
		},
	}

	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "minidb",
		CodeBytes:  48 * sgx.PageSize, // SQLite's code footprint is large
		HeapBytes:  96 * sgx.PageSize,
		StackBytes: 8 * sgx.PageSize,
		NumTCS:     2,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("minidb: %w", err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, UntrustedOcalls(fs))
	if err != nil {
		return nil, err
	}
	w.app = app
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	if _, err := w.proxies["ecall_db_init"](ctx, nil); err != nil {
		return nil, fmt.Errorf("minidb: init: %w", err)
	}
	return w, nil
}

// holderVFS builds files bound to the current env holder.
type holderVFS struct {
	holder *envHolder
	merged bool
}

func (v *holderVFS) Open(name string) (File, error) {
	inner := NewOcallVFS(v.holder.env, v.merged)
	f, err := inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &holderFile{holder: v.holder, merged: v.merged, inner: f.(*ocallFile)}, nil
}

// holderFile re-binds the env on every operation, since each ecall gets a
// fresh Env.
type holderFile struct {
	holder *envHolder
	merged bool
	inner  *ocallFile
}

func (f *holderFile) rebind() *ocallFile {
	f.inner.v = &ocallVFS{env: f.holder.env, merged: f.merged}
	return f.inner
}

func (f *holderFile) WriteAt(b []byte, off int64) error { return f.rebind().WriteAt(b, off) }
func (f *holderFile) ReadAt(b []byte, off int64) (int, error) {
	return f.rebind().ReadAt(b, off)
}
func (f *holderFile) Sync() error               { return f.rebind().Sync() }
func (f *holderFile) Truncate(size int64) error { return f.rebind().Truncate(size) }
func (f *holderFile) Size() (int64, error)      { return f.rebind().Size() }

// Enclave returns the database enclave (nil for the native variant).
func (w *Workload) Enclave() *sgx.Enclave {
	if w.app == nil {
		return nil
	}
	return w.app.Enclave()
}

// Exec runs one SQL statement through the variant's path.
func (w *Workload) Exec(ctx *sgx.Context, sql string) (*ExecResult, error) {
	if w.variant == VariantNative {
		return w.engine.Exec(sql)
	}
	res, err := w.proxies["ecall_exec_sql"](ctx, execArgs{SQL: sql})
	if err != nil {
		return nil, err
	}
	out, ok := res.(*ExecResult)
	if !ok {
		return nil, fmt.Errorf("minidb: exec returned %T", res)
	}
	return out, nil
}

// commitRecord synthesises the i-th replayed git commit (the paper replays
// commits from popular repositories as inserts, §5.2.2).
func commitRecord(i int) string {
	sha := fmt.Sprintf("%040x", uint64(i)*0x9e3779b97f4a7c15)
	author := []string{"alice", "bob", "carol", "dave"}[i%4]
	msg := fmt.Sprintf("commit %d: update module %d", i, i%17)
	return fmt.Sprintf("INSERT INTO commits VALUES ('%s', '%s', %d, '%s')",
		sha, author, 1540000000+i*37, msg)
}

// Run replays opts.Ops commit inserts (or as many as fit in
// opts.Duration) against a fresh commits table and reports throughput.
func (w *Workload) Run(ctx *sgx.Context, opts workloads.Options) (workloads.Result, error) {
	if opts.Duration <= 0 && opts.Ops <= 0 {
		opts.Ops = 2000
	}
	if _, err := w.Exec(ctx, "CREATE TABLE commits (sha, author, ts, msg)"); err != nil {
		return workloads.Result{}, err
	}
	start := ctx.Now()
	deadline := start + ctx.Clock().Frequency().Cycles(opts.Duration)
	inserts := 0
	for {
		if opts.Ops > 0 && inserts >= opts.Ops {
			break
		}
		if opts.Duration > 0 && ctx.Now() >= deadline {
			break
		}
		if _, err := w.Exec(ctx, commitRecord(inserts)); err != nil {
			return workloads.Result{}, fmt.Errorf("minidb: insert %d: %w", inserts, err)
		}
		inserts++
	}
	return workloads.Result{
		Workload: "sqlite",
		Variant:  string(w.variant),
		Ops:      inserts,
		Virtual:  ctx.Clock().Frequency().Duration(ctx.Now() - start),
	}, nil
}
