// Package minidb is the SQLite stand-in of §5.2.2: a page-based embedded
// database with a rollback journal and a small SQL front end, running its
// file I/O through a VFS. Three VFS flavours reproduce the paper's three
// configurations:
//
//   - the native engine calls the (simulated) kernel directly;
//   - the enclavised engine implements syscalls "naïvely as ocalls" —
//     every lseek and write is its own enclave transition;
//   - the optimised engine merges each lseek+write pair into a single
//     ocall, the fix sgx-perf's SDSC detector recommends, which the paper
//     measured at +33% throughput.
package minidb

import (
	"fmt"

	"sgxperf/internal/kernel"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// File is the engine's view of an open file. WriteAt/ReadAt are the
// positioned operations SQLite performs as separate lseek+write/read
// syscall pairs on Linux (§5.2.2).
type File interface {
	WriteAt(b []byte, off int64) error
	ReadAt(b []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
}

// VFS opens files.
type VFS interface {
	Open(name string) (File, error)
}

// --- direct VFS: the native engine -------------------------------------

// directVFS issues syscalls straight into the kernel on the calling
// thread.
type directVFS struct {
	fs  *kernel.FS
	ctx *sgx.Context
}

// NewDirectVFS returns the native VFS bound to a thread.
func NewDirectVFS(fs *kernel.FS, ctx *sgx.Context) VFS {
	return &directVFS{fs: fs, ctx: ctx}
}

func (v *directVFS) Open(name string) (File, error) {
	fd, err := v.fs.Open(v.ctx, name)
	if err != nil {
		return nil, err
	}
	return &directFile{v: v, fd: fd, name: name}, nil
}

type directFile struct {
	v    *directVFS
	fd   int
	name string
}

func (f *directFile) WriteAt(b []byte, off int64) error {
	if _, err := f.v.fs.Lseek(f.v.ctx, f.fd, off, kernel.SeekSet); err != nil {
		return err
	}
	_, err := f.v.fs.Write(f.v.ctx, f.fd, b)
	return err
}

func (f *directFile) ReadAt(b []byte, off int64) (int, error) {
	if _, err := f.v.fs.Lseek(f.v.ctx, f.fd, off, kernel.SeekSet); err != nil {
		return 0, err
	}
	return f.v.fs.Read(f.v.ctx, f.fd, b)
}

func (f *directFile) Sync() error { return f.v.fs.Fsync(f.v.ctx, f.fd) }

func (f *directFile) Truncate(size int64) error {
	return f.v.fs.Truncate(f.v.ctx, f.fd, size)
}

func (f *directFile) Size() (int64, error) { return f.v.fs.Size(f.name) }

// --- ocall argument types -----------------------------------------------

// Ocall names of the enclavised database.
const (
	OcallOpen       = "ocall_open"
	OcallLseek      = "ocall_lseek"
	OcallWrite      = "ocall_write"
	OcallRead       = "ocall_read"
	OcallFsync      = "ocall_fsync"
	OcallTruncate   = "ocall_ftruncate"
	OcallFileSize   = "ocall_filesize"
	OcallLseekWrite = "ocall_lseek_write" // the merged call (§5.2.2 fix)
)

// FillerOcalls pads the declared interface: the paper reports 41 ocalls
// for the enclavised SQLite, of which three dominate.
const FillerOcalls = 33

type (
	openArgs  struct{ Name string }
	lseekArgs struct {
		FD     int
		Off    int64
		Whence int
	}
	rwArgs struct {
		FD  int
		Buf []byte
	}
	fdArgs       struct{ FD int }
	truncateArgs struct {
		FD   int
		Size int64
	}
	sizeArgs       struct{ Name string }
	lseekWriteArgs struct {
		FD  int
		Off int64
		Buf []byte
	}
)

// CopyInBytes prices the buffer copy out of the enclave.
func (a rwArgs) CopyInBytes() int { return len(a.Buf) }

// CopyOutBytes prices the read buffer copy back in.
func (a rwArgs) CopyOutBytes() int { return len(a.Buf) }

// CopyInBytes prices the merged call's buffer copy.
func (a lseekWriteArgs) CopyInBytes() int { return len(a.Buf) }

// CopyOutBytes is zero for the merged write.
func (a lseekWriteArgs) CopyOutBytes() int { return 0 }

// --- ocall VFS: the enclavised engine ------------------------------------

// ocallVFS issues every syscall as an ocall from inside the enclave.
// merged selects the lseek+write fusion.
type ocallVFS struct {
	env    *sdk.Env
	merged bool
}

// NewOcallVFS returns the in-enclave VFS. With merged=false every
// positioned write costs two ocalls (lseek, then write), as the paper's
// naïve port does; with merged=true it costs one.
func NewOcallVFS(env *sdk.Env, merged bool) VFS {
	return &ocallVFS{env: env, merged: merged}
}

func (v *ocallVFS) Open(name string) (File, error) {
	res, err := v.env.Ocall(OcallOpen, openArgs{Name: name})
	if err != nil {
		return nil, err
	}
	fd, ok := res.(int)
	if !ok {
		return nil, fmt.Errorf("minidb: open returned %T", res)
	}
	return &ocallFile{v: v, fd: fd, name: name}, nil
}

type ocallFile struct {
	v    *ocallVFS
	fd   int
	name string
}

func (f *ocallFile) WriteAt(b []byte, off int64) error {
	if f.v.merged {
		_, err := f.v.env.Ocall(OcallLseekWrite, lseekWriteArgs{FD: f.fd, Off: off, Buf: b})
		return err
	}
	if _, err := f.v.env.Ocall(OcallLseek, lseekArgs{FD: f.fd, Off: off, Whence: kernel.SeekSet}); err != nil {
		return err
	}
	_, err := f.v.env.Ocall(OcallWrite, rwArgs{FD: f.fd, Buf: b})
	return err
}

func (f *ocallFile) ReadAt(b []byte, off int64) (int, error) {
	if _, err := f.v.env.Ocall(OcallLseek, lseekArgs{FD: f.fd, Off: off, Whence: kernel.SeekSet}); err != nil {
		return 0, err
	}
	res, err := f.v.env.Ocall(OcallRead, rwArgs{FD: f.fd, Buf: b})
	if err != nil {
		return 0, err
	}
	out, ok := res.([]byte)
	if !ok {
		return 0, fmt.Errorf("minidb: read returned %T", res)
	}
	return copy(b, out), nil
}

func (f *ocallFile) Sync() error {
	_, err := f.v.env.Ocall(OcallFsync, fdArgs{FD: f.fd})
	return err
}

func (f *ocallFile) Truncate(size int64) error {
	_, err := f.v.env.Ocall(OcallTruncate, truncateArgs{FD: f.fd, Size: size})
	return err
}

func (f *ocallFile) Size() (int64, error) {
	res, err := f.v.env.Ocall(OcallFileSize, sizeArgs{Name: f.name})
	if err != nil {
		return 0, err
	}
	size, ok := res.(int64)
	if !ok {
		return 0, fmt.Errorf("minidb: filesize returned %T", res)
	}
	return size, nil
}

// UntrustedOcalls builds the untrusted implementations of the database's
// ocalls against the kernel filesystem, for the application's ocall
// table.
func UntrustedOcalls(fs *kernel.FS) map[string]sdk.OcallFn {
	impls := map[string]sdk.OcallFn{
		OcallOpen: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(openArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return fs.Open(ctx, a.Name)
		},
		OcallLseek: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(lseekArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return fs.Lseek(ctx, a.FD, a.Off, a.Whence)
		},
		OcallWrite: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(rwArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return fs.Write(ctx, a.FD, a.Buf)
		},
		OcallRead: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(rwArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			buf := make([]byte, len(a.Buf))
			n, err := fs.Read(ctx, a.FD, buf)
			if err != nil {
				return nil, err
			}
			return buf[:n], nil
		},
		OcallFsync: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(fdArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return nil, fs.Fsync(ctx, a.FD)
		},
		OcallTruncate: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(truncateArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return nil, fs.Truncate(ctx, a.FD, a.Size)
		},
		OcallFileSize: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(sizeArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			return fs.Size(a.Name)
		},
		OcallLseekWrite: func(ctx *sgx.Context, args any) (any, error) {
			a, ok := args.(lseekWriteArgs)
			if !ok {
				return nil, fmt.Errorf("minidb: bad args %T", args)
			}
			if _, err := fs.Lseek(ctx, a.FD, a.Off, kernel.SeekSet); err != nil {
				return nil, err
			}
			return fs.Write(ctx, a.FD, a.Buf)
		},
	}
	for i := 0; i < FillerOcalls; i++ {
		impls[fmt.Sprintf("ocall_sqlite_gen_%02d", i)] = func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		}
	}
	return impls
}
