package minidb

import (
	"encoding/binary"
	"fmt"
	"time"
)

// WorkFunc charges CPU time for engine work to whichever clock the engine
// runs on (the application thread natively, the enclave when ported).
type WorkFunc func(d time.Duration)

// Engine CPU costs (virtual), calibrated with the FS costs so the native
// insert rate lands near the paper's ≈23k requests/s (§5.2.2).
const (
	costParse     = 2500 * time.Nanosecond
	costEncodeRow = 900 * time.Nanosecond
	costScanPage  = 1200 * time.Nanosecond
	costPlan      = 600 * time.Nanosecond
)

// ExecResult is the outcome of one statement.
type ExecResult struct {
	// Rows holds result rows for SELECT *.
	Rows [][]Value
	// Count holds the COUNT(*) result.
	Count int
	// RowsAffected counts inserted/updated/deleted rows.
	RowsAffected int
}

// tableInfo is the in-memory catalog entry.
type tableInfo struct {
	name string
	cols []string
	root int
	last int // last page in the chain (insert fast path)
}

// Engine is the SQL executor over a Pager.
type Engine struct {
	pager  *Pager
	work   WorkFunc
	tables map[string]*tableInfo
}

// NewEngine opens the database through the VFS and loads the catalog.
func NewEngine(vfs VFS, name string, work WorkFunc) (*Engine, error) {
	pager, err := OpenPager(vfs, name)
	if err != nil {
		return nil, err
	}
	e := &Engine{pager: pager, work: work, tables: make(map[string]*tableInfo)}
	if err := e.loadCatalog(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) charge(d time.Duration) {
	if e.work != nil {
		e.work(d)
	}
}

// --- catalog (page 0, after the 8-byte header) ---------------------------

func (e *Engine) loadCatalog() error {
	pg, err := e.pager.Get(0)
	if err != nil {
		return err
	}
	off := 8
	n := int(binary.LittleEndian.Uint16(pg[off:]))
	off += 2
	for i := 0; i < n; i++ {
		nameLen := int(binary.LittleEndian.Uint16(pg[off:]))
		off += 2
		name := string(pg[off : off+nameLen])
		off += nameLen
		root := int(binary.LittleEndian.Uint32(pg[off:]))
		off += 4
		ncols := int(binary.LittleEndian.Uint16(pg[off:]))
		off += 2
		cols := make([]string, ncols)
		for c := 0; c < ncols; c++ {
			l := int(binary.LittleEndian.Uint16(pg[off:]))
			off += 2
			cols[c] = string(pg[off : off+l])
			off += l
		}
		ti := &tableInfo{name: name, cols: cols, root: root, last: -1}
		e.tables[name] = ti
	}
	return nil
}

func (e *Engine) storeCatalog() error {
	pg, err := e.pager.Write(0)
	if err != nil {
		return err
	}
	off := 8
	binary.LittleEndian.PutUint16(pg[off:], uint16(len(e.tables)))
	off += 2
	for _, ti := range e.tablesInOrder() {
		if off+8+len(ti.name) > PageSize {
			return fmt.Errorf("minidb: catalog page full")
		}
		binary.LittleEndian.PutUint16(pg[off:], uint16(len(ti.name)))
		off += 2
		copy(pg[off:], ti.name)
		off += len(ti.name)
		binary.LittleEndian.PutUint32(pg[off:], uint32(ti.root))
		off += 4
		binary.LittleEndian.PutUint16(pg[off:], uint16(len(ti.cols)))
		off += 2
		for _, c := range ti.cols {
			binary.LittleEndian.PutUint16(pg[off:], uint16(len(c)))
			off += 2
			copy(pg[off:], c)
			off += len(c)
		}
	}
	return nil
}

func (e *Engine) tablesInOrder() []*tableInfo {
	// Deterministic order: by root page.
	out := make([]*tableInfo, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].root > out[j].root; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// --- data pages -----------------------------------------------------------
//
// Data page layout: [u32 next][u16 nrec][u16 free] records...
// Record: u16 length, then row encoding.

const dataHeaderSize = 8

func pageNext(pg []byte) int { return int(binary.LittleEndian.Uint32(pg[0:4])) }
func setPageNext(pg []byte, n int) {
	binary.LittleEndian.PutUint32(pg[0:4], uint32(n))
}
func pageNRec(pg []byte) int { return int(binary.LittleEndian.Uint16(pg[4:6])) }
func pageFree(pg []byte) int { return int(binary.LittleEndian.Uint16(pg[6:8])) }

func initDataPage(pg []byte) {
	setPageNext(pg, 0)
	binary.LittleEndian.PutUint16(pg[4:6], 0)
	binary.LittleEndian.PutUint16(pg[6:8], dataHeaderSize)
}

func appendRecord(pg []byte, rec []byte) bool {
	free := pageFree(pg)
	if free+2+len(rec) > PageSize {
		return false
	}
	binary.LittleEndian.PutUint16(pg[free:], uint16(len(rec)))
	copy(pg[free+2:], rec)
	binary.LittleEndian.PutUint16(pg[4:6], uint16(pageNRec(pg)+1))
	binary.LittleEndian.PutUint16(pg[6:8], uint16(free+2+len(rec)))
	return true
}

// encodeRow serialises values: u16 ncols, then per value a type byte and
// payload.
func encodeRow(vals []Value) []byte {
	size := 2
	for _, v := range vals {
		if v.IsInt {
			size += 1 + 8
		} else {
			size += 1 + 2 + len(v.Str)
		}
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint16(out, uint16(len(vals)))
	off := 2
	for _, v := range vals {
		if v.IsInt {
			out[off] = 1
			binary.LittleEndian.PutUint64(out[off+1:], uint64(v.Int))
			off += 9
		} else {
			out[off] = 2
			binary.LittleEndian.PutUint16(out[off+1:], uint16(len(v.Str)))
			copy(out[off+3:], v.Str)
			off += 3 + len(v.Str)
		}
	}
	return out
}

func decodeRow(rec []byte) ([]Value, error) {
	if len(rec) < 2 {
		return nil, fmt.Errorf("minidb: truncated record")
	}
	n := int(binary.LittleEndian.Uint16(rec))
	off := 2
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if off >= len(rec) {
			return nil, fmt.Errorf("minidb: truncated record")
		}
		switch rec[off] {
		case 1:
			if off+9 > len(rec) {
				return nil, fmt.Errorf("minidb: truncated int")
			}
			out = append(out, IntVal(int64(binary.LittleEndian.Uint64(rec[off+1:]))))
			off += 9
		case 2:
			l := int(binary.LittleEndian.Uint16(rec[off+1:]))
			if off+3+l > len(rec) {
				return nil, fmt.Errorf("minidb: truncated string")
			}
			out = append(out, StrVal(string(rec[off+3:off+3+l])))
			off += 3 + l
		default:
			return nil, fmt.Errorf("minidb: unknown value tag %d", rec[off])
		}
	}
	return out, nil
}

// --- execution -------------------------------------------------------------

// Exec parses and executes one statement.
func (e *Engine) Exec(sql string) (*ExecResult, error) {
	e.charge(costParse)
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(st Statement) (*ExecResult, error) {
	e.charge(costPlan)
	switch s := st.(type) {
	case CreateTable:
		return e.execCreate(s)
	case Insert:
		return e.execInsert(s)
	case Select:
		return e.execSelect(s)
	case Delete:
		return e.execDelete(s)
	case Update:
		return e.execUpdate(s)
	default:
		return nil, fmt.Errorf("minidb: unsupported statement %T", st)
	}
}

func (e *Engine) execCreate(s CreateTable) (*ExecResult, error) {
	if _, dup := e.tables[s.Table]; dup {
		return nil, fmt.Errorf("minidb: table %q already exists", s.Table)
	}
	if err := e.pager.Begin(); err != nil {
		return nil, err
	}
	root, err := e.pager.Allocate()
	if err != nil {
		_ = e.pager.Rollback()
		return nil, err
	}
	pg, err := e.pager.Write(root)
	if err != nil {
		_ = e.pager.Rollback()
		return nil, err
	}
	initDataPage(pg)
	e.tables[s.Table] = &tableInfo{name: s.Table, cols: s.Columns, root: root, last: root}
	if err := e.storeCatalog(); err != nil {
		delete(e.tables, s.Table)
		_ = e.pager.Rollback()
		return nil, err
	}
	if err := e.pager.Commit(); err != nil {
		delete(e.tables, s.Table)
		return nil, err
	}
	return &ExecResult{}, nil
}

func (e *Engine) execInsert(s Insert) (*ExecResult, error) {
	ti, ok := e.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("minidb: no such table %q", s.Table)
	}
	if len(s.Values) != len(ti.cols) {
		return nil, fmt.Errorf("minidb: table %q has %d columns, got %d values",
			s.Table, len(ti.cols), len(s.Values))
	}
	if err := e.pager.Begin(); err != nil {
		return nil, err
	}
	if err := e.insertRow(ti, s.Values); err != nil {
		_ = e.pager.Rollback()
		return nil, err
	}
	if err := e.pager.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: 1}, nil
}

// lastPage walks the chain once and caches the tail.
func (e *Engine) lastPage(ti *tableInfo) (int, error) {
	if ti.last >= 0 {
		return ti.last, nil
	}
	n := ti.root
	for {
		pg, err := e.pager.Get(n)
		if err != nil {
			return 0, err
		}
		next := pageNext(pg)
		if next == 0 {
			ti.last = n
			return n, nil
		}
		n = next
	}
}

// colIndex resolves an optional WHERE column.
func (e *Engine) colIndex(ti *tableInfo, where *Cond) (int, error) {
	if where == nil {
		return -1, nil
	}
	for i, c := range ti.cols {
		if c == where.Column {
			return i, nil
		}
	}
	return 0, fmt.Errorf("minidb: no column %q in %q", where.Column, ti.name)
}

// rewriteChain walks the table's pages inside a transaction and rewrites
// each page through fn: fn receives a decoded row and returns the
// replacement row (nil to delete) or an overflow row to re-insert when it
// no longer fits. It returns the affected-row count.
func (e *Engine) rewriteChain(ti *tableInfo, fn func(row []Value) (keep []Value, affected bool, err error)) (int, error) {
	affectedTotal := 0
	var overflow [][]Value
	n := ti.root
	for n != 0 {
		e.charge(costScanPage)
		pg, err := e.pager.Get(n)
		if err != nil {
			return 0, err
		}
		// Decode all records first.
		var rows [][]Value
		off := dataHeaderSize
		for r := 0; r < pageNRec(pg); r++ {
			l := int(binary.LittleEndian.Uint16(pg[off:]))
			row, err := decodeRow(pg[off+2 : off+2+l])
			if err != nil {
				return 0, err
			}
			off += 2 + l
			rows = append(rows, row)
		}
		next := pageNext(pg)
		// Apply fn and detect whether the page changes at all.
		var kept [][]Value
		changed := false
		for _, row := range rows {
			keep, affected, err := fn(row)
			if err != nil {
				return 0, err
			}
			if affected {
				affectedTotal++
				changed = true
			}
			if keep != nil {
				kept = append(kept, keep)
			}
		}
		if changed {
			wpg, err := e.pager.Write(n)
			if err != nil {
				return 0, err
			}
			initDataPage(wpg)
			setPageNext(wpg, next)
			for _, row := range kept {
				e.charge(costEncodeRow)
				rec := encodeRow(row)
				if !appendRecord(wpg, rec) {
					// Updated row grew past the page: re-insert later.
					overflow = append(overflow, row)
				}
			}
		}
		n = next
	}
	for _, row := range overflow {
		if err := e.insertRow(ti, row); err != nil {
			return 0, err
		}
	}
	return affectedTotal, nil
}

func (e *Engine) execDelete(s Delete) (*ExecResult, error) {
	ti, ok := e.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("minidb: no such table %q", s.Table)
	}
	colIdx, err := e.colIndex(ti, s.Where)
	if err != nil {
		return nil, err
	}
	if err := e.pager.Begin(); err != nil {
		return nil, err
	}
	affected, err := e.rewriteChain(ti, func(row []Value) ([]Value, bool, error) {
		if s.Where != nil && !row[colIdx].Equal(s.Where.Value) {
			return row, false, nil
		}
		return nil, true, nil
	})
	if err != nil {
		_ = e.pager.Rollback()
		return nil, err
	}
	if err := e.pager.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: affected}, nil
}

func (e *Engine) execUpdate(s Update) (*ExecResult, error) {
	ti, ok := e.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("minidb: no such table %q", s.Table)
	}
	colIdx, err := e.colIndex(ti, s.Where)
	if err != nil {
		return nil, err
	}
	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		setIdx[i] = -1
		for c, col := range ti.cols {
			if col == a.Column {
				setIdx[i] = c
				break
			}
		}
		if setIdx[i] < 0 {
			return nil, fmt.Errorf("minidb: no column %q in %q", a.Column, s.Table)
		}
	}
	if err := e.pager.Begin(); err != nil {
		return nil, err
	}
	affected, err := e.rewriteChain(ti, func(row []Value) ([]Value, bool, error) {
		if s.Where != nil && !row[colIdx].Equal(s.Where.Value) {
			return row, false, nil
		}
		updated := make([]Value, len(row))
		copy(updated, row)
		for i, a := range s.Set {
			updated[setIdx[i]] = a.Value
		}
		return updated, true, nil
	})
	if err != nil {
		_ = e.pager.Rollback()
		return nil, err
	}
	if err := e.pager.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: affected}, nil
}

// insertRow appends one row inside the current transaction (shared by
// INSERT and by UPDATE overflow handling).
func (e *Engine) insertRow(ti *tableInfo, vals []Value) error {
	e.charge(costEncodeRow)
	rec := encodeRow(vals)
	if len(rec)+2+dataHeaderSize > PageSize {
		return fmt.Errorf("minidb: record too large (%d bytes)", len(rec))
	}
	last, err := e.lastPage(ti)
	if err != nil {
		return err
	}
	pg, err := e.pager.Write(last)
	if err != nil {
		return err
	}
	if !appendRecord(pg, rec) {
		fresh, err := e.pager.Allocate()
		if err != nil {
			return err
		}
		npg, err := e.pager.Write(fresh)
		if err != nil {
			return err
		}
		initDataPage(npg)
		setPageNext(pg, fresh)
		if !appendRecord(npg, rec) {
			return fmt.Errorf("minidb: record does not fit a fresh page")
		}
		ti.last = fresh
	}
	return nil
}

func (e *Engine) execSelect(s Select) (*ExecResult, error) {
	ti, ok := e.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("minidb: no such table %q", s.Table)
	}
	colIdx, err := e.colIndex(ti, s.Where)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{}
	n := ti.root
	for n != 0 {
		e.charge(costScanPage)
		pg, err := e.pager.Get(n)
		if err != nil {
			return nil, err
		}
		off := dataHeaderSize
		for r := 0; r < pageNRec(pg); r++ {
			l := int(binary.LittleEndian.Uint16(pg[off:]))
			row, err := decodeRow(pg[off+2 : off+2+l])
			if err != nil {
				return nil, err
			}
			off += 2 + l
			if s.Where != nil && !row[colIdx].Equal(s.Where.Value) {
				continue
			}
			if s.Count {
				res.Count++
			} else {
				res.Rows = append(res.Rows, row)
			}
		}
		n = pageNext(pg)
	}
	return res, nil
}
