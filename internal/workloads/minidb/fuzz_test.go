package minidb

import "testing"

// FuzzParseSQL checks the SQL parser never panics on arbitrary input.
// Explore with go test -fuzz=FuzzParseSQL ./internal/workloads/minidb.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t (a, b)",
		"INSERT INTO t VALUES ('x', -1)",
		"INSERT INTO t VALUES ('it''s', 2)",
		"SELECT * FROM t WHERE a = 'x'",
		"SELECT COUNT(*) FROM t",
		"DELETE FROM t WHERE a = 1",
		"UPDATE t SET a = 1, b = 'y' WHERE a = 2",
		"UPDATE t SET",
		"INSERT INTO t VALUES (",
		"SELECT * FROM",
		"'unterminated",
		"SELECT * FROM t;;",
		"\x00\x01\x02",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil && st == nil {
			t.Fatalf("nil statement without error for %q", src)
		}
	})
}

// FuzzRowEncoding checks the record codec round-trips arbitrary values.
func FuzzRowEncoding(f *testing.F) {
	f.Add("hello", int64(42), "world")
	f.Add("", int64(-1), "x")
	f.Fuzz(func(t *testing.T, s1 string, n int64, s2 string) {
		if len(s1) > 60000 || len(s2) > 60000 {
			t.Skip("exceeds u16 length fields")
		}
		row := []Value{StrVal(s1), IntVal(n), StrVal(s2)}
		got, err := decodeRow(encodeRow(row))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != 3 || !got[0].Equal(row[0]) || !got[1].Equal(row[1]) || !got[2].Equal(row[2]) {
			t.Fatalf("round trip: %v != %v", got, row)
		}
	})
}
