// Package amplify is a deliberately chatty-boundary workload: a small
// storage enclave that commits, in one interface, the three sins the
// interprocedural analysis exists to catch. Its flush ecall dispatches
// one ocall per chunk inside a counted loop (transition amplification —
// the §3.1 round trip × 8 per invocation that §6 fixes by batching);
// its checked-write ecall validates a boundary-buffer length, crosses
// the boundary, and trusts the same field again (the §3.6 TOCTOU double
// fetch); and its share ecall hands the address of its in-enclave table
// to the untrusted side through an ocall argument (a pointer escape).
// A fourth, branch-guarded spill ocall never fires under the default
// run, so the hybrid predicted-vs-observed section has one deliberate
// over-prediction to flag. Every sin is annotated for the repository
// lint (the exhibit is intentional) but the staticlint source pass
// ignores suppressions and keeps pricing them, which is the point.
package amplify

import (
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
)

// The enclave interface: four ecalls, each exhibiting one boundary
// shape, and the ocalls they dispatch.
const (
	EcallFlush        = "sgx_ecall_flush"
	EcallCheckedWrite = "sgx_ecall_checked_write"
	EcallShare        = "sgx_ecall_share_table"
	EcallMaybe        = "sgx_ecall_maybe_spill"
	OcallPutChunk     = "ocall_put_chunk"
	OcallLog          = "ocall_append_log"
	OcallRegister     = "ocall_register_table"
	OcallSpill        = "ocall_spill"
)

// chunksPerFlush is the static amplification factor: the flush loop
// dispatches exactly this many put-chunk ocalls per invocation, which
// is what the interprocedural prediction must report.
const chunksPerFlush = 8

// maxWrite bounds the checked write's declared length; spillThreshold
// is the branch guard the default run never exceeds.
const (
	maxWrite       = 64
	spillThreshold = 1 << 10
)

// In-enclave work costs (virtual time).
const (
	costChunkPrep  = 400 * time.Nanosecond
	costWriteCheck = 250 * time.Nanosecond
	costShare      = 300 * time.Nanosecond
	// Untrusted-side costs of the ocall implementations.
	costChunkStore = 1500 * time.Nanosecond
	costLogAppend  = 600 * time.Nanosecond
)

// writeInput is the argument of EcallCheckedWrite: the boundary buffer
// whose Len field the handler double-fetches.
type writeInput struct {
	Len  int
	Data string
}

// CopyInBytes implements sdk.Copied.
func (a *writeInput) CopyInBytes() int { return len(a.Data) + 8 }

// state is the trusted side: a tiny chunk table and the write counter
// the double fetch corrupts when the untrusted side races the buffer.
type state struct {
	table   [4]uint64
	written int
	// mu is the Go-level guard for the simulation's own memory safety
	// when the driver runs threaded; it charges no virtual time.
	mu sync.Mutex
}

// Workload is one configured storage enclave.
type Workload struct {
	h       *host.Host
	app     *sdk.AppEnclave
	proxies map[string]sdk.Proxy
	s       *state
}

// Interface builds the storage EDL interface. The register ocall takes
// the table as a user_check pointer — the untrusted side keeps it,
// which is exactly what the pointer-escape analysis prices.
func Interface() (*edl.Interface, error) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall(EcallFlush, true,
		edl.Param{Name: "chunks"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallCheckedWrite, true,
		edl.Param{Name: "len"},
		edl.Param{Name: "data", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallShare, true); err != nil {
		return nil, err
	}
	if _, err := iface.AddEcall(EcallMaybe, true,
		edl.Param{Name: "n"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallPutChunk, nil,
		edl.Param{Name: "chunk"}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallLog, nil,
		edl.Param{Name: "line", Dir: edl.DirIn, IsString: true}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallRegister, nil,
		edl.Param{Name: "table", Dir: edl.DirUserCheck}); err != nil {
		return nil, err
	}
	if _, err := iface.AddOcall(OcallSpill, nil,
		edl.Param{Name: "n"}); err != nil {
		return nil, err
	}
	return iface, nil
}

// New builds the storage enclave.
func New(h *host.Host, ctx *sgx.Context) (*Workload, error) {
	w := &Workload{h: h, s: &state{}}
	iface, err := Interface()
	if err != nil {
		return nil, err
	}
	impl := map[string]sdk.TrustedFn{
		EcallFlush:        w.handleFlush,
		EcallCheckedWrite: w.handleCheckedWrite,
		EcallShare:        w.handleShare,
		EcallMaybe:        w.handleMaybe,
	}
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:       "amplify",
		CodeBytes:  8 * sgx.PageSize,
		HeapBytes:  32 * sgx.PageSize,
		StackBytes: 4 * sgx.PageSize,
		NumTCS:     8,
	}, iface, impl)
	if err != nil {
		return nil, fmt.Errorf("amplify: %w", err)
	}
	ocalls := map[string]sdk.OcallFn{
		OcallPutChunk: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costChunkStore)
			return nil, nil
		},
		OcallLog: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costLogAppend)
			return nil, nil
		},
		OcallRegister: func(ctx *sgx.Context, args any) (any, error) {
			return nil, nil
		},
		OcallSpill: func(ctx *sgx.Context, args any) (any, error) {
			ctx.Compute(costChunkStore)
			return nil, nil
		},
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, ocalls)
	if err != nil {
		return nil, err
	}
	w.app = app
	w.proxies = sdk.Proxies(app, h.Proc, otab)
	return w, nil
}

// handleFlush writes the table out chunk by chunk: one ocall per chunk,
// eight per invocation — the §3.1 amplification the batching solution
// collapses to a single crossing.
func (w *Workload) handleFlush(env *sdk.Env, args any) (any, error) {
	for i := 0; i < chunksPerFlush; i++ {
		env.Compute(costChunkPrep)
		//sgxperf:allow(transamp) deliberate exhibit: the per-chunk ocall storm is the finding the interprocedural analysis demo reproduces
		if _, err := env.Ocall(OcallPutChunk, i); err != nil {
			return nil, err
		}
	}
	return chunksPerFlush, nil
}

// handleCheckedWrite validates the declared length, logs the write
// through an ocall, then trusts the same boundary field again — the
// §3.6 double fetch: the untrusted side shares the buffer and can
// change Len between the validation and the use.
func (w *Workload) handleCheckedWrite(env *sdk.Env, args any) (any, error) {
	a, ok := args.(*writeInput)
	if !ok {
		return nil, fmt.Errorf("amplify: bad writeInput %T", args)
	}
	if a.Len > maxWrite {
		return nil, fmt.Errorf("amplify: write of %d exceeds %d", a.Len, maxWrite)
	}
	env.Compute(costWriteCheck)
	if _, err := env.Ocall(OcallLog, a.Data); err != nil {
		return nil, err
	}
	w.s.mu.Lock()
	//sgxperf:allow(doublefetch) deliberate exhibit: re-reading a.Len after the log ocall is the TOCTOU the interprocedural analysis demo reproduces
	w.s.written += a.Len
	w.s.mu.Unlock()
	return a.Len, nil
}

// handleShare registers the in-enclave chunk table with the untrusted
// side — by address. The pointer outlives the call: every later access
// through it bypasses the boundary copy discipline.
func (w *Workload) handleShare(env *sdk.Env, args any) (any, error) {
	env.Compute(costShare)
	//sgxperf:allow(ptrescape) deliberate exhibit: handing out &w.s.table is the pointer escape the interprocedural analysis demo reproduces
	if _, err := env.Ocall(OcallRegister, &w.s.table); err != nil {
		return nil, err
	}
	return len(w.s.table), nil
}

// handleMaybe spills to untrusted storage only past the threshold; the
// default run never reaches it, so the static (conditional) prediction
// of one dispatch deliberately over-predicts the observed zero.
func (w *Workload) handleMaybe(env *sdk.Env, args any) (any, error) {
	n, ok := args.(int)
	if !ok {
		return nil, fmt.Errorf("amplify: bad spill arg %T", args)
	}
	env.Compute(costWriteCheck)
	if n > spillThreshold {
		return env.Ocall(OcallSpill, n)
	}
	return n, nil
}

// Flush invokes the chunk-flush ecall from untrusted code.
func (w *Workload) Flush(ctx *sgx.Context) (int, error) {
	res, err := w.proxies[EcallFlush](ctx, nil)
	if err != nil {
		return 0, err
	}
	n, _ := res.(int)
	return n, nil
}

// Write invokes the checked-write ecall from untrusted code.
func (w *Workload) Write(ctx *sgx.Context, data string) (int, error) {
	res, err := w.proxies[EcallCheckedWrite](ctx, &writeInput{Len: len(data), Data: data})
	if err != nil {
		return 0, err
	}
	n, _ := res.(int)
	return n, nil
}

// Share invokes the table-registration ecall from untrusted code.
func (w *Workload) Share(ctx *sgx.Context) error {
	_, err := w.proxies[EcallShare](ctx, nil)
	return err
}

// Maybe invokes the guarded-spill ecall from untrusted code.
func (w *Workload) Maybe(ctx *sgx.Context, n int) error {
	_, err := w.proxies[EcallMaybe](ctx, n)
	return err
}

// Written returns the trusted write counter.
func (w *Workload) Written() int {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	return w.s.written
}

// Enclave returns the storage enclave.
func (w *Workload) Enclave() *sgx.Enclave { return w.app.Enclave() }

// RunOptions configures a run.
type RunOptions struct {
	// Flushes is the number of flush ecalls (default 5, each
	// dispatching chunksPerFlush put-chunk ocalls).
	Flushes int
	// Writes is the number of checked writes (default 16).
	Writes int
	// Maybes is the number of guarded-spill calls, all under the
	// threshold (default 8).
	Maybes int
}

// Run drives the exhibit single-threaded so hybrid reports are
// deterministic: every flush amplifies into chunksPerFlush transitions,
// every write logs once, the table is shared once, and the spill guard
// never fires.
func (w *Workload) Run(opts RunOptions) (workloads.Result, error) {
	if opts.Flushes <= 0 {
		opts.Flushes = 5
	}
	if opts.Writes <= 0 {
		opts.Writes = 16
	}
	if opts.Maybes <= 0 {
		opts.Maybes = 8
	}
	var (
		wg     sync.WaitGroup
		runErr error
	)
	wg.Add(1)
	if err := w.h.Spawn("amplify-driver", func(ctx *sgx.Context) {
		defer wg.Done()
		runErr = w.drive(ctx, opts)
	}); err != nil {
		return workloads.Result{}, err
	}
	wg.Wait()
	w.h.Wait()
	if runErr != nil {
		return workloads.Result{}, fmt.Errorf("amplify: %w", runErr)
	}
	return workloads.Result{
		Workload: "amplify",
		Variant:  "chatty-boundary",
		Ops:      opts.Flushes + opts.Writes + opts.Maybes + 1,
		Extra: map[string]float64{
			"flushes":          float64(opts.Flushes),
			"chunks_per_flush": chunksPerFlush,
		},
	}, nil
}

func (w *Workload) drive(ctx *sgx.Context, opts RunOptions) error {
	if err := w.Share(ctx); err != nil {
		return err
	}
	for i := 0; i < opts.Writes; i++ {
		if _, err := w.Write(ctx, fmt.Sprintf("rec-%02d", i)); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Flushes; i++ {
		if _, err := w.Flush(ctx); err != nil {
			return err
		}
	}
	for i := 0; i < opts.Maybes; i++ {
		if err := w.Maybe(ctx, i); err != nil {
			return err
		}
	}
	return nil
}
