package evstore

// The out-of-core read path. Format v3 ("sgxperf-evc\x03") extends the
// chunked columnar codec with a chunk index appended after the table
// data:
//
//	file   := magic | uvarint(#tables) | table* | index | footer
//	index  := uvarint(#tables) | tindex*
//	tindex := str(name) | byte(codec) | uvarint(#rows) |
//	          uvarint(#chunks) | centry*
//	centry := uvarint(file offset of chunk header) | uvarint(#rows) |
//	          8-byte LE FNV-1a chunk hash
//	footer := 8-byte LE file offset of index | "sgxEVIDX"
//
// The per-chunk hash is exactly Table.hashChunk's: FNV-1a over the codec
// byte and the pre-compression payload. That identity is what lets a
// reader compute Trace.ContentKey — and an artifact cache reuse
// chunk-keyed work — without decoding a single row.
//
// StreamReader opens a saved file through the index and hands out
// per-table StreamCursors that decode one chunk at a time, reusing
// rawChunk, decodeChunk's inflate/decode core and the sticky-error
// Decoder. Nothing is materialised beyond the chunk in hand, so a
// multi-GiB trace streams through O(chunk) memory. Files written by
// format v2 carry no index; OpenStream builds one by scanning the chunk
// headers once (hashing payloads as it goes), which reads the file
// sequentially but still holds only one chunk at a time.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
)

// indexMagic terminates a v3 file; the preceding 8 bytes locate the
// index block.
const indexMagic = "sgxEVIDX"

// footerSize is the fixed byte size of the v3 footer.
const footerSize = 8 + len(indexMagic)

// ChunkInfo describes one chunk of a streamed table: where it lives in
// the file, how many rows it decodes to, and its content hash (FNV-1a
// over the codec byte and the pre-compression payload — identical to
// Table.ChunkHashes).
type ChunkInfo struct {
	Offset int64
	Rows   int
	Hash   uint64
}

// streamTable is the per-table slice of the chunk index.
type streamTable struct {
	name      string
	codecByte byte
	rows      int
	chunks    []ChunkInfo
}

// StreamReader iterates a saved binary trace file chunk-by-chunk without
// materialising tables. It is safe for concurrent cursor reads: the
// underlying reader is an io.ReaderAt and the index is immutable after
// open.
type StreamReader struct {
	r      io.ReaderAt
	size   int64
	closer io.Closer
	tables []*streamTable
	byName map[string]*streamTable
}

// OpenStream opens the trace file at path for streaming reads.
func OpenStream(path string) (*StreamReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("evstore: %w", err)
	}
	sr, err := NewStreamReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	sr.closer = f
	return sr, nil
}

// NewStreamReader builds a StreamReader over size bytes of r. Format v3
// files are opened through their index; v2 files get an index built by
// one sequential scan of the chunk headers. The legacy gob format cannot
// be streamed (it is one monolithic reflection stream) — load it fully
// with DB.Load instead.
func NewStreamReader(r io.ReaderAt, size int64) (*StreamReader, error) {
	magic := make([]byte, len(magicBinaryV3))
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, size), magic); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	sr := &StreamReader{r: r, size: size}
	switch string(magic) {
	case magicBinaryV3:
		if err := sr.openIndexed(); err != nil {
			return nil, err
		}
	case magicBinary:
		if err := sr.scanIndex(); err != nil {
			return nil, err
		}
	default:
		return nil, corruptf("not a streamable trace (magic %q); gob-format traces must be fully loaded with Load", magic)
	}
	sr.byName = make(map[string]*streamTable, len(sr.tables))
	for _, t := range sr.tables {
		if _, dup := sr.byName[t.name]; dup {
			return nil, corruptf("duplicate table %q in index", t.name)
		}
		sr.byName[t.name] = t
	}
	return sr, nil
}

// openIndexed reads a v3 file's footer and index block.
func (sr *StreamReader) openIndexed() error {
	if sr.size < int64(len(magicBinaryV3)+footerSize) {
		return corruptf("file of %d bytes cannot hold a v3 footer", sr.size)
	}
	foot := make([]byte, footerSize)
	if _, err := io.ReadFull(io.NewSectionReader(sr.r, sr.size-int64(footerSize), int64(footerSize)), foot); err != nil {
		return corruptf("reading footer: %v", err)
	}
	if string(foot[8:]) != indexMagic {
		return corruptf("bad index magic %q", foot[8:])
	}
	off := int64(binary.LittleEndian.Uint64(foot[:8]))
	if off < int64(len(magicBinaryV3)) || off >= sr.size-int64(footerSize) {
		return corruptf("index offset %d outside file of %d bytes", off, sr.size)
	}
	blob := make([]byte, sr.size-int64(footerSize)-off)
	if _, err := io.ReadFull(io.NewSectionReader(sr.r, off, int64(len(blob))), blob); err != nil {
		return corruptf("reading index: %v", err)
	}
	tables, err := parseStreamIndex(bytes.NewReader(blob), off)
	if err != nil {
		return err
	}
	sr.tables = tables
	return nil
}

// parseStreamIndex decodes an index block. dataEnd bounds the chunk
// offsets: every chunk must start before the index does.
func parseStreamIndex(r io.Reader, dataEnd int64) ([]*streamTable, error) {
	cr := &countingReader{r: r}
	ntables, err := cr.readUvarint(maxDecodeTables)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	tables := make([]*streamTable, 0, ntables)
	prevEnd := int64(len(magicBinaryV3))
	for i := 0; i < int(ntables); i++ {
		t := &streamTable{}
		if t.name, err = cr.readString(maxDecodeName); err != nil {
			return nil, fmt.Errorf("index table %d: %w", i, err)
		}
		if t.codecByte, err = cr.readByte(); err != nil {
			return nil, corruptf("index table %q: truncated codec: %v", t.name, err)
		}
		rows, err := cr.readUvarint(maxDecodeRows)
		if err != nil {
			return nil, fmt.Errorf("index table %q: %w", t.name, err)
		}
		t.rows = int(rows)
		nchunks, err := cr.readUvarint(maxDecodeRows)
		if err != nil {
			return nil, fmt.Errorf("index table %q: %w", t.name, err)
		}
		sum := 0
		t.chunks = make([]ChunkInfo, 0, nchunks)
		for j := 0; j < int(nchunks); j++ {
			off, err := cr.readUvarint(uint64(dataEnd))
			if err != nil {
				return nil, fmt.Errorf("index table %q chunk %d: %w", t.name, j, err)
			}
			crows, err := cr.readUvarint(maxDecodeRows)
			if err != nil {
				return nil, fmt.Errorf("index table %q chunk %d: %w", t.name, j, err)
			}
			hb, err := cr.readN(8)
			if err != nil {
				return nil, fmt.Errorf("index table %q chunk %d: %w", t.name, j, err)
			}
			if int64(off) < prevEnd {
				return nil, corruptf("index table %q chunk %d: offset %d is not monotone", t.name, j, off)
			}
			prevEnd = int64(off)
			sum += int(crows)
			t.chunks = append(t.chunks, ChunkInfo{
				Offset: int64(off),
				Rows:   int(crows),
				Hash:   binary.LittleEndian.Uint64(hb),
			})
		}
		if sum != t.rows {
			return nil, corruptf("index table %q: chunk rows sum to %d, header declares %d", t.name, sum, t.rows)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// appendStreamIndex serialises the index block for saveBinary.
func appendStreamIndex(buf []byte, tables []tableIndex) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = binary.AppendUvarint(buf, uint64(len(t.name)))
		buf = append(buf, t.name...)
		buf = append(buf, t.codecByte)
		buf = binary.AppendUvarint(buf, uint64(t.rows))
		buf = binary.AppendUvarint(buf, uint64(len(t.chunks)))
		for _, c := range t.chunks {
			buf = binary.AppendUvarint(buf, uint64(c.Offset))
			buf = binary.AppendUvarint(buf, uint64(c.Rows))
			buf = binary.LittleEndian.AppendUint64(buf, c.Hash)
		}
	}
	return buf
}

// scanIndex builds the index for a v2 file by reading every chunk header
// (and payload, to hash it) once, front to back. Memory stays bounded by
// one chunk.
func (sr *StreamReader) scanIndex() error {
	src := &countedSource{r: bufio.NewReaderSize(io.NewSectionReader(sr.r, int64(len(magicBinary)), sr.size-int64(len(magicBinary))), 1<<16), n: int64(len(magicBinary))}
	cr := &countingReader{r: src}
	ntables, err := cr.readUvarint(maxDecodeTables)
	if err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	for i := 0; i < int(ntables); i++ {
		t := &streamTable{}
		if t.name, err = cr.readString(maxDecodeName); err != nil {
			return fmt.Errorf("evstore: table %d: %w", i, err)
		}
		if t.codecByte, err = cr.readByte(); err != nil {
			return corruptf("table %q: truncated codec: %v", t.name, err)
		}
		total, err := cr.readUvarint(maxDecodeRows)
		if err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.name, err)
		}
		t.rows = int(total)
		nchunks, err := cr.readUvarint(maxDecodeRows)
		if err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.name, err)
		}
		sum := 0
		for j := 0; j < int(nchunks); j++ {
			off := src.n
			rc, err := cr.readChunk()
			if err != nil {
				return fmt.Errorf("evstore: table %q chunk %d: %w", t.name, j, err)
			}
			payload, err := inflateChunk(rc)
			if err != nil {
				return fmt.Errorf("evstore: table %q chunk %d: %w", t.name, j, err)
			}
			sum += rc.nrows
			t.chunks = append(t.chunks, ChunkInfo{
				Offset: off,
				Rows:   rc.nrows,
				Hash:   hashChunkPayload(t.codecByte, payload),
			})
		}
		if sum != t.rows {
			return corruptf("table %q: chunk rows sum to %d, header declares %d", t.name, sum, t.rows)
		}
		sr.tables = append(sr.tables, t)
	}
	return nil
}

// hashChunkPayload is the chunk content hash: FNV-1a over the codec byte
// and the pre-compression payload — byte-identical to Table.hashChunk on
// the rows the payload decodes to.
func hashChunkPayload(codecByte byte, payload []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte{codecByte})
	h.Write(payload)
	return h.Sum64()
}

// Close releases the underlying file, when the reader owns one.
func (sr *StreamReader) Close() error {
	if sr.closer != nil {
		return sr.closer.Close()
	}
	return nil
}

// TableNames lists the file's tables in file order.
func (sr *StreamReader) TableNames() []string {
	out := make([]string, len(sr.tables))
	for i, t := range sr.tables {
		out[i] = t.name
	}
	return out
}

// Rows returns the named table's total row count, or ok=false when the
// file has no such table.
func (sr *StreamReader) Rows(name string) (int, bool) {
	t, ok := sr.byName[name]
	if !ok {
		return 0, false
	}
	return t.rows, true
}

// ChunkHashes returns the named table's per-chunk content hashes —
// identical to Table.ChunkHashes over the loaded rows — or nil when the
// file has no such table.
func (sr *StreamReader) ChunkHashes(name string) []uint64 {
	t, ok := sr.byName[name]
	if !ok {
		return nil
	}
	out := make([]uint64, len(t.chunks))
	for i, c := range t.chunks {
		out[i] = c.Hash
	}
	return out
}

// Chunks returns the named table's chunk descriptors.
func (sr *StreamReader) Chunks(name string) []ChunkInfo {
	t, ok := sr.byName[name]
	if !ok {
		return nil
	}
	return append([]ChunkInfo(nil), t.chunks...)
}

// StreamCursor iterates one table's chunks in order, decoding each with
// the table's RowCodec. A cursor holds at most one decoded chunk's rows;
// cursors over the same StreamReader are independent, so one table can be
// read by several goroutines each holding its own cursor.
type StreamCursor[T any] struct {
	sr    *StreamReader
	t     *streamTable
	codec RowCodec[T]
	next  int
}

// NewStreamCursor opens a cursor over the named table. codec must match
// the codec registered when the table was written: a columnar table
// needs the RowCodec, a gob table accepts nil.
func NewStreamCursor[T any](sr *StreamReader, name string, codec RowCodec[T]) (*StreamCursor[T], error) {
	t, ok := sr.byName[name]
	if !ok {
		return nil, corruptf("no table %q in stream (have %v)", name, sr.TableNames())
	}
	switch t.codecByte {
	case codecColumnar:
		if codec == nil {
			return nil, corruptf("table %q was written with a columnar codec but none was supplied", name)
		}
	case codecGob:
		// Decodable regardless of codec.
	default:
		return nil, corruptf("table %q: unknown codec %d", name, t.codecByte)
	}
	return &StreamCursor[T]{sr: sr, t: t, codec: codec}, nil
}

// NumChunks returns the number of chunks the cursor iterates.
func (c *StreamCursor[T]) NumChunks() int { return len(c.t.chunks) }

// Rows returns the table's total row count.
func (c *StreamCursor[T]) Rows() int { return c.t.rows }

// Seek positions the cursor so the next Next returns chunk i.
func (c *StreamCursor[T]) Seek(i int) error {
	if i < 0 || i > len(c.t.chunks) {
		return corruptf("seek to chunk %d of table %q with %d chunks", i, c.t.name, len(c.t.chunks))
	}
	c.next = i
	return nil
}

// Next decodes and returns the next chunk's rows, or (nil, nil) after the
// last chunk. The decoded payload is verified against the index's chunk
// hash, so silent mid-stream corruption surfaces as ErrCorrupt rather
// than as wrong rows.
func (c *StreamCursor[T]) Next() ([]T, error) {
	if c.next >= len(c.t.chunks) {
		return nil, nil
	}
	i := c.next
	c.next++
	rows, err := readChunkAt(c.sr, c.t, i, c.codec)
	if err != nil {
		return nil, fmt.Errorf("evstore: table %q chunk %d: %w", c.t.name, i, err)
	}
	return rows, nil
}

// readChunkAt reads, verifies and decodes one indexed chunk.
func readChunkAt[T any](sr *StreamReader, t *streamTable, i int, codec RowCodec[T]) ([]T, error) {
	info := t.chunks[i]
	sect := io.NewSectionReader(sr.r, info.Offset, sr.size-info.Offset)
	cr := &countingReader{r: bufio.NewReaderSize(sect, 32<<10)}
	rc, err := cr.readChunk()
	if err != nil {
		return nil, err
	}
	if rc.nrows != info.Rows {
		return nil, corruptf("chunk header declares %d rows, index %d", rc.nrows, info.Rows)
	}
	payload, err := inflateChunk(rc)
	if err != nil {
		return nil, err
	}
	if h := hashChunkPayload(t.codecByte, payload); h != info.Hash {
		return nil, corruptf("chunk hash %016x does not match index hash %016x", h, info.Hash)
	}
	return decodeChunkPayload(codec, t.codecByte, payload, rc.nrows)
}

// countedSource counts the bytes consumed from an underlying reader —
// the offset bookkeeping for sequential scans of unindexed files.
type countedSource struct {
	r io.Reader
	n int64
}

func (c *countedSource) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
