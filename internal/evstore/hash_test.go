package evstore

import (
	"bytes"
	"testing"
)

type hashRow struct {
	ID   int64
	Name string
}

func hashRows(n, base int) []hashRow {
	out := make([]hashRow, n)
	for i := range out {
		out[i] = hashRow{ID: int64(base + i), Name: "row"}
	}
	return out
}

// TestChunkHashesContentAddressed proves hashes depend only on contents:
// two tables with equal rows hash equally regardless of insert batching,
// and differing rows hash differently.
func TestChunkHashesContentAddressed(t *testing.T) {
	a := NewTable[hashRow]("a")
	b := NewTable[hashRow]("b")
	rows := hashRows(3*chunkSize+17, 0)
	a.BatchInsert(rows)
	for _, r := range rows {
		b.Insert(r)
	}
	ha, hb := a.ChunkHashes(), b.ChunkHashes()
	if len(ha) != 4 || len(hb) != 4 {
		t.Fatalf("chunk counts = %d, %d, want 4", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("chunk %d: %x != %x despite equal contents", i, ha[i], hb[i])
		}
	}

	c := NewTable[hashRow]("c")
	mutated := append([]hashRow(nil), rows...)
	mutated[chunkSize+5].ID = -1
	c.BatchInsert(mutated)
	hc := c.ChunkHashes()
	if hc[1] == ha[1] {
		t.Error("changed row did not change its chunk's hash")
	}
	for _, i := range []int{0, 2, 3} {
		if hc[i] != ha[i] {
			t.Errorf("chunk %d hash changed although its rows did not", i)
		}
	}
}

// TestChunkHashesAppendOnlyTail proves appends only ever change the
// trailing hash: full-chunk prefixes are immutable, which is what lets
// the serve cache invalidate nothing but the tail window.
func TestChunkHashesAppendOnlyTail(t *testing.T) {
	tab := NewTable[hashRow]("t")
	tab.BatchInsert(hashRows(2*chunkSize+10, 0))
	before := tab.ChunkHashes()

	tab.BatchInsert(hashRows(5, 1_000_000))
	after := tab.ChunkHashes()
	if len(after) != len(before) {
		t.Fatalf("chunk count changed: %d -> %d", len(before), len(after))
	}
	for i := 0; i < len(before)-1; i++ {
		if before[i] != after[i] {
			t.Errorf("full chunk %d hash changed on append", i)
		}
	}
	if before[len(before)-1] == after[len(after)-1] {
		t.Error("tail chunk hash unchanged after append")
	}

	// Crossing a chunk boundary freezes the old tail and adds a chunk.
	tab.BatchInsert(hashRows(2*chunkSize, 2_000_000))
	grown := tab.ChunkHashes()
	if len(grown) != len(after)+2 {
		t.Fatalf("chunk count = %d, want %d", len(grown), len(after)+2)
	}
	for i := 0; i < len(after)-1; i++ {
		if grown[i] != after[i] {
			t.Errorf("full chunk %d hash changed on append", i)
		}
	}
}

// TestChunkHashesCacheInvalidation proves the full-chunk cache does not
// survive the rewrite paths.
func TestChunkHashesCacheInvalidation(t *testing.T) {
	tab := NewTable[hashRow]("t")
	tab.BatchInsert(hashRows(chunkSize, 0))
	h1 := tab.ChunkHashes()

	tab.Replace(hashRows(chunkSize, 500))
	h2 := tab.ChunkHashes()
	if h1[0] == h2[0] {
		t.Error("Replace kept a stale chunk hash")
	}

	tab.Reset()
	if got := tab.ChunkHashes(); len(got) != 0 {
		t.Errorf("Reset table has %d chunk hashes", len(got))
	}
}

// TestChunkHashesSurviveSaveLoad proves a save/load round-trip preserves
// content hashes — a loaded trace must hit the same cache entries the
// original populated.
func TestChunkHashesSurviveSaveLoad(t *testing.T) {
	mk := func() (*DB, *Table[hashRow]) {
		tab := NewTable[hashRow]("t")
		db := NewDB()
		if err := Register(db, tab); err != nil {
			t.Fatal(err)
		}
		return db, tab
	}
	db1, tab1 := mk()
	tab1.BatchInsert(hashRows(2*chunkSize+3, 0))
	want := tab1.ChunkHashes()

	var buf bytes.Buffer
	if err := db1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, tab2 := mk()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := tab2.ChunkHashes()
	if len(got) != len(want) {
		t.Fatalf("chunk count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chunk %d hash changed across save/load", i)
		}
	}
}
