package evstore

import (
	"hash/fnv"

	"sgxperf/internal/pool"
)

// ChunkHashes returns one 64-bit content hash per storage chunk, in
// chunk order. The hash covers the chunk's encoded payload (the same
// bytes writeBinary would emit pre-compression), so two tables whose
// chunks hold equal rows hash equally regardless of how the rows were
// inserted, and any row change changes its chunk's hash.
//
// This is the content-addressing primitive behind incremental
// re-analysis: the store is append-only and every chunk but the last is
// full and therefore immutable, so appending events only ever changes
// the trailing hashes — an artifact cache keyed per chunk hash
// invalidates nothing but the tail. Full-chunk hashes are cached inside
// the table (appends never recompute them); the partial tail chunk is
// rehashed on every call.
func (t *Table[T]) ChunkHashes() []uint64 {
	t.notifyRead()
	t.mu.RLock()
	gen := t.hashGen
	chunks := make([][]T, 0, len(t.chunks))
	for _, c := range t.chunks {
		chunks = append(chunks, c[:len(c):len(c)])
	}
	var cached []uint64
	if n := len(t.hashed); n > 0 && n <= len(chunks) {
		cached = t.hashed[:n:n]
	}
	t.mu.RUnlock()

	out := make([]uint64, len(chunks))
	n := copy(out, cached)
	if missing := len(chunks) - n; missing > 0 {
		pool.ForEach(missing, func(i int) {
			out[n+i] = t.hashChunk(chunks[n+i])
		})
	}

	// Adopt newly computed full-chunk hashes into the cache. Only full
	// chunks are cached: they are immutable, so a hash computed from any
	// snapshot stays correct. hashGen guards against a Replace/Reset/load
	// having swapped the contents since the snapshot.
	full := len(chunks)
	if full > 0 && len(chunks[full-1]) < chunkSize {
		full--
	}
	if full > n {
		t.mu.Lock()
		if t.hashGen == gen && len(t.hashed) < full {
			t.hashed = append([]uint64(nil), out[:full]...)
		}
		t.mu.Unlock()
	}
	return out
}

// hashChunk hashes one chunk's rows via its encoded payload (FNV-1a
// over the codec byte and the payload bytes).
func (t *Table[T]) hashChunk(rows []T) uint64 {
	payload, codecByte, err := t.encodeChunkPayload(rows)
	h := fnv.New64a()
	if err != nil {
		// Gob refusing an in-memory row type is a schema bug that Save
		// would also hit; keep the hash deterministic rather than panic.
		h.Write([]byte(err.Error()))
		return h.Sum64()
	}
	h.Write([]byte{codecByte})
	h.Write(payload)
	return h.Sum64()
}

// invalidateHashesLocked drops the full-chunk hash cache; the rewrite
// paths (Replace, Reset, decodeRows, readBinary) call it with t.mu
// held.
func (t *Table[T]) invalidateHashesLocked() {
	t.hashed = nil
	t.hashGen++
}
