package evstore

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

type rec struct {
	ID   int
	Name string
	Dur  int64
}

func TestInsertSelectCount(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{1, "a", 10}, rec{2, "b", 20}, rec{3, "a", 30})
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
	as := tb.Select(func(r rec) bool { return r.Name == "a" })
	if len(as) != 2 || as[0].ID != 1 || as[1].ID != 3 {
		t.Fatalf("select a = %v", as)
	}
	if n := tb.Count(func(r rec) bool { return r.Dur > 15 }); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if n := tb.Count(nil); n != 3 {
		t.Fatalf("count(nil) = %d", n)
	}
	if got := tb.At(1); got.Name != "b" {
		t.Fatalf("At(1) = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{1, "a", 1}, rec{2, "b", 2}, rec{3, "c", 3})
	var seen []int
	tb.Scan(func(i int, r rec) bool {
		seen = append(seen, r.ID)
		return r.ID < 2
	})
	if len(seen) != 2 {
		t.Fatalf("scan visited %v", seen)
	}
}

func TestOrderedByDoesNotMutate(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{3, "c", 3}, rec{1, "a", 1}, rec{2, "b", 2})
	sorted := tb.OrderedBy(func(a, b rec) bool { return a.ID < b.ID })
	if sorted[0].ID != 1 || sorted[2].ID != 3 {
		t.Fatalf("sorted = %v", sorted)
	}
	if tb.At(0).ID != 3 {
		t.Fatal("OrderedBy mutated insertion order")
	}
}

func TestGroupBy(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{1, "a", 1}, rec{2, "b", 2}, rec{3, "a", 3})
	groups := GroupBy(tb, func(r rec) string { return r.Name })
	if len(groups) != 2 || len(groups["a"]) != 2 || len(groups["b"]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestRowsIsACopy(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{1, "a", 1})
	rows := tb.Rows()
	rows[0].Name = "mutated"
	if tb.At(0).Name != "a" {
		t.Fatal("Rows exposed internal storage")
	}
}

func TestConcurrentInsert(t *testing.T) {
	tb := NewTable[rec]("recs")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tb.Insert(rec{ID: w*1000 + i})
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != 4000 {
		t.Fatalf("len = %d, want 4000", tb.Len())
	}
}

func newSchema() (*DB, *Table[rec], *Table[string]) {
	db := NewDB()
	recs := NewTable[rec]("recs")
	names := NewTable[string]("names")
	_ = Register(db, recs)
	_ = Register(db, names)
	return db, recs, names
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, recs, names := newSchema()
	recs.Insert(rec{1, "a", 10}, rec{2, "b", 20})
	names.Insert("x", "y", "z")

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, recs2, names2 := newSchema()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if recs2.Len() != 2 || recs2.At(1).Name != "b" {
		t.Fatalf("recs after load = %v", recs2.Rows())
	}
	if names2.Len() != 3 || names2.At(0) != "x" {
		t.Fatalf("names after load = %v", names2.Rows())
	}
}

func TestSaveLoadFile(t *testing.T) {
	db, recs, _ := newSchema()
	recs.Insert(rec{42, "file", 7})
	path := filepath.Join(t.TempDir(), "trace.evdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, recs2, _ := newSchema()
	if err := db2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if recs2.At(0).ID != 42 {
		t.Fatalf("loaded %v", recs2.Rows())
	}
}

func TestLoadSchemaMismatch(t *testing.T) {
	db, recs, _ := newSchema()
	recs.Insert(rec{1, "a", 1})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	other := NewDB()
	_ = Register(other, NewTable[rec]("different"))
	err := other.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "tables") {
		t.Fatalf("schema mismatch: %v", err)
	}

	// Same count, different name.
	other2 := NewDB()
	_ = Register(other2, NewTable[rec]("recs"))
	_ = Register(other2, NewTable[string]("wrong"))
	err = other2.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), `"wrong"`) {
		t.Fatalf("name mismatch: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db, _, _ := newSchema()
	if err := db.Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	db := NewDB()
	if err := Register(db, NewTable[rec]("t")); err != nil {
		t.Fatal(err)
	}
	if err := Register(db, NewTable[rec]("t")); err == nil {
		t.Fatal("duplicate table registered")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestReset(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{1, "a", 1})
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("reset did not clear rows")
	}
}

func TestScanFrom(t *testing.T) {
	tb := NewTable[rec]("recs")
	// Span several chunks so the offset maths is exercised.
	for i := 0; i < 3*chunkSize+7; i++ {
		tb.Insert(rec{ID: i})
	}
	start := chunkSize + 3
	next := start
	tb.ScanFrom(start, func(i int, r rec) bool {
		if i != next || r.ID != next {
			t.Fatalf("ScanFrom yielded (%d, %d), want %d", i, r.ID, next)
		}
		next++
		return true
	})
	if next != tb.Len() {
		t.Fatalf("ScanFrom stopped at %d, want %d", next, tb.Len())
	}
	// Negative start behaves as zero; out-of-range start yields nothing.
	n := 0
	tb.ScanFrom(-5, func(i int, r rec) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("negative start visited %d rows", n)
	}
	tb.ScanFrom(tb.Len(), func(i int, r rec) bool {
		t.Fatal("yield called past the end")
		return false
	})
}

func TestSubscribeObservesInserts(t *testing.T) {
	tb := NewTable[rec]("recs")
	tb.Insert(rec{ID: 0}, rec{ID: 1})

	var got []int
	cancel := tb.Subscribe(func(rows []rec) {
		for _, r := range rows {
			got = append(got, r.ID)
		}
	}, true)

	tb.Insert(rec{ID: 2})
	tb.BatchInsert([]rec{{ID: 3}, {ID: 4}})
	for i, id := range got {
		if id != i {
			t.Fatalf("subscriber saw %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("subscriber saw %d rows, want 5 (replay + live)", len(got))
	}

	cancel()
	cancel() // idempotent
	tb.Insert(rec{ID: 99})
	if len(got) != 5 {
		t.Fatal("subscriber notified after cancel")
	}
}

func TestSubscribeBatchSpansChunks(t *testing.T) {
	tb := NewTable[rec]("recs")
	pad := make([]rec, chunkSize-2)
	tb.BatchInsert(pad)

	var got []rec
	tb.Subscribe(func(rows []rec) { got = append(got, rows...) }, false)

	batch := []rec{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	tb.BatchInsert(batch)
	if len(got) != len(batch) {
		t.Fatalf("subscriber saw %d rows, want %d", len(got), len(batch))
	}
	for i, r := range got {
		if r.ID != batch[i].ID {
			t.Fatalf("subscriber saw %v", got)
		}
	}
	// The delivered slices alias committed chunk storage: later appends
	// must not change what the subscriber retained.
	retained := got[0]
	tb.BatchInsert([]rec{{ID: 5}, {ID: 6}})
	if got[0] != retained {
		t.Fatal("retained subscription rows mutated by later inserts")
	}
}

func TestSubscribeConcurrentExactlyOnce(t *testing.T) {
	tb := NewTable[rec]("recs")
	var mu sync.Mutex
	seen := make(map[int]int)
	record := func(rows []rec) {
		mu.Lock()
		for _, r := range rows {
			seen[r.ID]++
		}
		mu.Unlock()
	}

	const writers, per = 8, 300
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < per; i++ {
				tb.Insert(rec{ID: w*per + i})
			}
		}(w)
	}
	close(start)
	// Subscribe mid-stream with replay: every row must be seen exactly
	// once, whether it was replayed or delivered live.
	tb.Subscribe(record, true)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != writers*per {
		t.Fatalf("saw %d distinct rows, want %d", len(seen), writers*per)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("row %d delivered %d times", id, n)
		}
	}
}

func TestSaveLoadProperty(t *testing.T) {
	// Property: any set of rows survives a serialisation round trip.
	f := func(ids []int, names []string) bool {
		db, recs, ns := newSchema()
		for _, id := range ids {
			recs.Insert(rec{ID: id})
		}
		ns.Insert(names...)
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		db2, recs2, ns2 := newSchema()
		if err := db2.Load(&buf); err != nil {
			return false
		}
		if recs2.Len() != len(ids) || ns2.Len() != len(names) {
			return false
		}
		for i, id := range ids {
			if recs2.At(i).ID != id {
				return false
			}
		}
		for i, n := range names {
			if ns2.At(i) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
