// Package evstore is a small embedded, typed, append-oriented event
// database — the stand-in for the SQLite database sgx-perf serialises its
// events to (§4). It offers named tables of record types, predicate
// queries, ordering, simple aggregation, and binary (gob) serialisation so
// traces can be written by the logger and analysed later by a different
// process, just as the paper's toolchain does.
//
// Storage is chunked: rows live in fixed-size row chunks, so appends never
// reslice-copy the whole table and batch inserts from the logger's
// per-thread buffers amortise the table lock. Readers should prefer the
// allocation-free Scan/Count paths; Rows copies and is meant for tests and
// export.
package evstore

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// chunkSize is the fixed row-chunk capacity. Appends fill the last chunk
// and then allocate a fresh one, so no insert ever copies existing rows.
// The size must stay a power of two only for readability of the index
// maths; correctness needs it fixed per table.
const chunkSize = 1024

// Table is a typed, append-only table. It is safe for concurrent use: the
// logger inserts from many simulated threads.
type Table[T any] struct {
	name string

	// readHook, when set, runs before every read operation (without the
	// table lock held). The logger uses it to flush per-thread buffers so
	// readers always observe every event recorded before the read —
	// regardless of batching.
	readHook atomic.Pointer[func()]

	// codec, when set (SetCodec), serialises chunks through the columnar
	// binary format instead of gob. Written once during schema setup,
	// before the table is shared; read-only afterwards.
	codec RowCodec[T]

	mu     sync.RWMutex
	chunks [][]T
	length int
	// subs are the insert subscribers, guarded by mu. Inserts already hold
	// the write lock, so notification needs no extra synchronisation and a
	// table with no subscribers pays only a nil-slice check.
	subs []*subscriber[T]

	// hashed caches ChunkHashes results for full (immutable) chunks;
	// hashGen invalidates the cache on the rewrite paths (Replace, Reset,
	// load). Both guarded by mu.
	hashed  []uint64
	hashGen uint64
}

// subscriber is one registered insert tap. The indirection lets cancel
// find its own entry after other subscribers come and go.
type subscriber[T any] struct {
	fn func(rows []T)
}

// NewTable creates an empty table.
func NewTable[T any](name string) *Table[T] {
	return &Table[T]{name: name}
}

// Name returns the table's name.
func (t *Table[T]) Name() string { return t.name }

// SetReadHook installs f to run before every read operation. Writers (the
// logger) use it to flush buffered batches lazily; pass nil to clear.
func (t *Table[T]) SetReadHook(f func()) {
	if f == nil {
		t.readHook.Store(nil)
		return
	}
	t.readHook.Store(&f)
}

func (t *Table[T]) notifyRead() {
	if f := t.readHook.Load(); f != nil {
		(*f)()
	}
}

// appendLocked appends rows chunk by chunk. Caller holds t.mu.
func (t *Table[T]) appendLocked(rows []T) {
	for len(rows) > 0 {
		if n := len(t.chunks); n == 0 || len(t.chunks[n-1]) == chunkSize {
			t.chunks = append(t.chunks, make([]T, 0, chunkSize))
		}
		last := len(t.chunks) - 1
		free := chunkSize - len(t.chunks[last])
		take := len(rows)
		if take > free {
			take = free
		}
		t.chunks[last] = append(t.chunks[last], rows[:take]...)
		rows = rows[take:]
		t.length += take
	}
}

// notifySubsLocked delivers the committed rows in [start, start+n) to
// every subscriber as chunk-backed subslices. Committed chunk prefixes
// are never rewritten (the store is append-only), so the slices stay
// valid after the lock is released without any copy. Caller holds t.mu.
func (t *Table[T]) notifySubsLocked(start, n int) {
	if len(t.subs) == 0 || n == 0 {
		return
	}
	for n > 0 {
		c := t.chunks[start/chunkSize]
		off := start % chunkSize
		take := len(c) - off
		if take > n {
			take = n
		}
		rows := c[off : off+take : off+take]
		for _, s := range t.subs {
			s.fn(rows)
		}
		start += take
		n -= take
	}
}

// Insert appends rows.
func (t *Table[T]) Insert(rows ...T) {
	if len(rows) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.length
	t.appendLocked(rows)
	t.notifySubsLocked(start, len(rows))
}

// BatchInsert appends a whole buffer of rows under one lock acquisition —
// the flush path for per-shard writers.
func (t *Table[T]) BatchInsert(rows []T) {
	if len(rows) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.length
	t.appendLocked(rows)
	t.notifySubsLocked(start, len(rows))
}

// Subscribe registers fn to observe every row inserted from now on, in
// commit order. With replay set, fn first receives every row already in
// the table; registration and replay happen atomically with respect to
// inserts, so the subscriber sees each row exactly once. fn runs with the
// table's write lock held: it must be fast, must treat the slice as
// read-only, and must not call back into the table (hand rows to another
// goroutine for real work). The returned cancel removes the subscription
// and is idempotent.
func (t *Table[T]) Subscribe(fn func(rows []T), replay bool) (cancel func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if replay {
		for _, c := range t.chunks {
			if len(c) > 0 {
				fn(c[:len(c):len(c)])
			}
		}
	}
	s := &subscriber[T]{fn: fn}
	t.subs = append(t.subs, s)
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		for i, cur := range t.subs {
			if cur == s {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				return
			}
		}
	}
}

// Len returns the number of rows.
func (t *Table[T]) Len() int {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.length
}

// At returns row i.
func (t *Table[T]) At(i int) T {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= t.length {
		panic(fmt.Sprintf("evstore: index %d out of range [0,%d)", i, t.length))
	}
	return t.chunks[i/chunkSize][i%chunkSize]
}

// Rows returns a copy of all rows. Prefer Scan on hot paths; Rows exists
// for tests and export.
func (t *Table[T]) Rows() []T {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsLocked()
}

func (t *Table[T]) rowsLocked() []T {
	out := make([]T, 0, t.length)
	for _, c := range t.chunks {
		out = append(out, c...)
	}
	return out
}

// Select returns all rows matching pred, in insertion order.
func (t *Table[T]) Select(pred func(T) bool) []T {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []T
	for _, c := range t.chunks {
		for _, r := range c {
			if pred(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// Count returns the number of rows matching pred (nil counts all).
func (t *Table[T]) Count(pred func(T) bool) int {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if pred == nil {
		return t.length
	}
	n := 0
	for _, c := range t.chunks {
		for _, r := range c {
			if pred(r) {
				n++
			}
		}
	}
	return n
}

// Scan iterates rows in insertion order until yield returns false. It is
// the zero-copy read path: no rows are copied out and no allocation is
// made. The table lock is held for the duration of the scan, so yield must
// not call back into the same table's write path.
func (t *Table[T]) Scan(yield func(i int, row T) bool) {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := 0
	for _, c := range t.chunks {
		for j := range c {
			if !yield(i, c[j]) {
				return
			}
			i++
		}
	}
}

// ScanFrom iterates rows in insertion order starting at index start,
// until yield returns false. It is the cursor read path: a reader that
// remembers how far it got resumes from there without touching earlier
// chunks. Like Scan, it holds the table lock for the duration, so yield
// must not call back into the same table's write path.
func (t *Table[T]) ScanFrom(start int, yield func(i int, row T) bool) {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	for i := start; i < t.length; i++ {
		c := t.chunks[i/chunkSize]
		if !yield(i, c[i%chunkSize]) {
			return
		}
	}
}

// ScanChunks yields each storage chunk in order until yield returns false.
// Chunks must be treated as read-only; this is the bulk zero-copy path for
// exporters.
func (t *Table[T]) ScanChunks(yield func(rows []T) bool) {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range t.chunks {
		if !yield(c) {
			return
		}
	}
}

// NumChunks returns the number of storage chunks currently backing the
// table. Chunks only ever grow in place (the store is append-only), so a
// chunk index obtained here stays valid for ChunkAt.
func (t *Table[T]) NumChunks() int {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.chunks)
}

// ChunkAt returns storage chunk i as a read-only slice in O(1) — the
// random-access companion to ScanChunks for chunk-windowed readers. The
// returned slice is capped at its current length; rows appended after
// the call extend the chunk but never rewrite the returned prefix.
func (t *Table[T]) ChunkAt(i int) []T {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.chunks) {
		panic(fmt.Sprintf("evstore: chunk %d out of range [0,%d)", i, len(t.chunks)))
	}
	c := t.chunks[i]
	return c[:len(c):len(c)]
}

// OrderedBy returns a copy of all rows sorted by less.
func (t *Table[T]) OrderedBy(less func(a, b T) bool) []T {
	out := t.Rows()
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Replace substitutes the table's entire contents. It exists for
// canonicalisation (sorting a trace into a deterministic order after
// concurrent recording); it is not a hot-path operation. Subscribers are
// not notified: a subscription observes the append-only insert stream,
// not rewrites, so canonicalise only after live consumers detach.
func (t *Table[T]) Replace(rows []T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chunks = nil
	t.length = 0
	t.invalidateHashesLocked()
	t.appendLocked(rows)
}

// GroupBy partitions rows by key.
func GroupBy[T any, K comparable](t *Table[T], key func(T) K) map[K][]T {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[K][]T)
	for _, c := range t.chunks {
		for _, r := range c {
			k := key(r)
			out[k] = append(out[k], r)
		}
	}
	return out
}

// Reset drops all rows.
func (t *Table[T]) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chunks = nil
	t.length = 0
	t.invalidateHashesLocked()
}

// table is the untyped view the DB uses for serialisation.
type table interface {
	Name() string
	encodeRows(enc *gob.Encoder) error
	decodeRows(dec *gob.Decoder) error
	writeBinary(w *countingWriter, opts SaveOptions) (tableIndex, error)
	readBinary(r *binTableReader) (tableIndex, error)
}

func (t *Table[T]) encodeRows(enc *gob.Encoder) error {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Encode a flat []T so the on-disk format is identical to the
	// pre-chunking version of the store.
	return enc.Encode(t.rowsLocked())
}

func (t *Table[T]) decodeRows(dec *gob.Decoder) error {
	var rows []T
	if err := dec.Decode(&rows); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chunks = nil
	t.length = 0
	t.invalidateHashesLocked()
	t.appendLocked(rows)
	return nil
}

// DB is a named collection of tables with a stable serialisation format.
type DB struct {
	mu     sync.Mutex
	tables []table
	byName map[string]table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{byName: make(map[string]table)}
}

// Register attaches a table to the database. Registration order defines
// the serialisation order, so writers and readers must register the same
// tables in the same order (they share the schema definition in practice).
func Register[T any](db *DB, t *Table[T]) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byName[t.Name()]; dup {
		return fmt.Errorf("evstore: duplicate table %q", t.Name())
	}
	db.tables = append(db.tables, t)
	db.byName[t.Name()] = t
	return nil
}

// TableNames lists registered tables in registration order.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, len(db.tables))
	for i, t := range db.tables {
		out[i] = t.Name()
	}
	return out
}

// format header for serialised databases.
const (
	magic   = "sgxperf-evstore"
	version = 1
)

type header struct {
	Magic   string
	Version int
	Tables  []string
}

// Save serialises every registered table to w in the default format —
// the chunked columnar codec (see codec.go). Use SaveWith to choose the
// legacy gob format or per-chunk compression.
func (db *DB) Save(w io.Writer) error {
	return db.SaveWith(w, SaveOptions{})
}

// SaveWith serialises every registered table to w with explicit format
// options.
func (db *DB) SaveWith(w io.Writer, opts SaveOptions) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if opts.Format == FormatBinary {
		return db.saveBinary(w, opts)
	}
	return db.saveGob(w)
}

// saveGob writes the legacy gob format. Caller holds db.mu.
func (db *DB) saveGob(w io.Writer) error {
	enc := gob.NewEncoder(w)
	h := header{Magic: magic, Version: version}
	for _, t := range db.tables {
		h.Tables = append(h.Tables, t.Name())
	}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	for _, t := range db.tables {
		if err := t.encodeRows(enc); err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.Name(), err)
		}
	}
	return nil
}

// Load restores table contents from r, materialising every table into
// memory — it is the resident read path. The registered schema must
// match the one the file was written with. Binary format versions 2 and
// 3 and the legacy gob format are accepted; the magic bytes decide.
// Binary files decode chunk-by-chunk (a window at a time, so transient
// memory stays bounded even though the tables end up resident); callers
// that only need a chunk-at-a-time pass over a saved file should use
// OpenStream and cursors instead of loading at all.
func (db *DB) Load(r io.Reader) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	br := bufio.NewReaderSize(r, 1<<16)
	peek, err := br.Peek(len(magicBinary))
	if err == nil && (string(peek) == magicBinary || string(peek) == magicBinaryV3) {
		v3 := string(peek) == magicBinaryV3
		if _, err := br.Discard(len(magicBinary)); err != nil {
			return fmt.Errorf("evstore: header: %w", err)
		}
		return db.loadBinary(br, v3)
	}
	// Not the binary magic (or too short to hold it): try the legacy gob
	// format, which produces its own error on garbage.
	return db.loadGob(br)
}

// loadGob reads the legacy gob format. Caller holds db.mu. Gob is one
// monolithic reflection stream with no chunk boundaries, so this path
// necessarily decodes the whole file into memory at once — there is no
// streaming equivalent; migrate to the binary format (re-Save) to get
// chunked loads and OpenStream access.
func (db *DB) loadGob(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	if h.Magic != magic {
		return fmt.Errorf("evstore: not an evstore file (magic %q)", h.Magic)
	}
	if h.Version != version {
		return fmt.Errorf("evstore: unsupported version %d", h.Version)
	}
	if len(h.Tables) != len(db.tables) {
		return fmt.Errorf("evstore: file has %d tables, schema has %d", len(h.Tables), len(db.tables))
	}
	for i, t := range db.tables {
		if h.Tables[i] != t.Name() {
			return fmt.Errorf("evstore: table %d is %q in file, %q in schema", i, h.Tables[i], t.Name())
		}
		if err := t.decodeRows(dec); err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.Name(), err)
		}
	}
	return nil
}

// SaveFile writes the database to a file path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("evstore: sync: %w", err)
	}
	return nil
}

// LoadFile reads the database from a file path.
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	defer f.Close()
	return db.Load(f)
}
