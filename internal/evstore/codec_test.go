package evstore

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// recCodec is a columnar codec for the test row type, covering every
// Encoder/Decoder primitive (varint delta, uvarint, string interning).
type recCodec struct{}

func (recCodec) Encode(e *Encoder, rows []rec) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.String(rows[i].Name)
	}
	for i := range rows {
		e.Varint(rows[i].Dur)
	}
}

func (recCodec) Decode(d *Decoder, n int) []rec {
	rows := make([]rec, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = int(prev)
	}
	for i := range rows {
		rows[i].Name = d.String()
	}
	for i := range rows {
		rows[i].Dur = d.Varint()
	}
	return rows
}

// aux is a second row type left on the gob fallback, so every DB in
// these tests exercises both chunk codecs.
type aux struct {
	Tag string
	N   float64
}

// testDB builds a two-table schema: "recs" columnar, "extra" gob.
func testDB(t *testing.T) (*DB, *Table[rec], *Table[aux]) {
	t.Helper()
	db := NewDB()
	recs := NewTable[rec]("recs")
	recs.SetCodec(recCodec{})
	extra := NewTable[aux]("extra")
	if err := Register(db, recs); err != nil {
		t.Fatal(err)
	}
	if err := Register(db, extra); err != nil {
		t.Fatal(err)
	}
	return db, recs, extra
}

func fillDB(recs *Table[rec], extra *Table[aux], n int) {
	rows := make([]rec, n)
	for i := range rows {
		rows[i] = rec{ID: i * 3, Name: fmt.Sprintf("name-%d", i%7), Dur: int64(i) - 5}
	}
	recs.BatchInsert(rows)
	for i := 0; i < n/100+1; i++ {
		extra.Insert(aux{Tag: fmt.Sprintf("t%d", i), N: float64(i) / 3})
	}
}

func dbEqual(t *testing.T, a, b *DB, ar, br *Table[rec], ax, bx *Table[aux]) {
	t.Helper()
	if !reflect.DeepEqual(ar.Rows(), br.Rows()) {
		t.Fatalf("recs differ: %v vs %v", ar.Rows(), br.Rows())
	}
	if !reflect.DeepEqual(ax.Rows(), bx.Rows()) {
		t.Fatalf("extra differs: %v vs %v", ax.Rows(), bx.Rows())
	}
}

// TestBinaryRoundTrip saves and loads across format options and table
// sizes, including the multi-chunk regime (> chunkSize rows) that drives
// the parallel encode/decode paths.
func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, chunkSize, chunkSize + 1, 3*chunkSize + 17} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d/compress=%v", n, compress), func(t *testing.T) {
				src, recs, extra := testDB(t)
				_ = src
				fillDB(recs, extra, n)
				var buf bytes.Buffer
				if err := src.SaveWith(&buf, SaveOptions{Compress: compress}); err != nil {
					t.Fatal(err)
				}
				dst, drecs, dextra := testDB(t)
				if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatal(err)
				}
				dbEqual(t, src, dst, recs, drecs, extra, dextra)
			})
		}
	}
}

// TestLegacyGobMigration is the backward-compatibility contract: a
// database saved by the legacy gob format loads identically through the
// new Load, and re-saving it in the binary format round-trips losslessly
// — the gob→codec migration path.
func TestLegacyGobMigration(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 2*chunkSize+9)

	var gobBuf bytes.Buffer
	if err := src.SaveWith(&gobBuf, SaveOptions{Format: FormatGob}); err != nil {
		t.Fatal(err)
	}
	mid, mrecs, mextra := testDB(t)
	if err := mid.Load(bytes.NewReader(gobBuf.Bytes())); err != nil {
		t.Fatalf("loading legacy gob: %v", err)
	}
	dbEqual(t, src, mid, recs, mrecs, extra, mextra)

	// Migrate: write the loaded data in the new format and load it again.
	var binBuf bytes.Buffer
	if err := mid.Save(&binBuf); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(binBuf.Bytes(), gobBuf.Bytes()[:4]) {
		t.Fatal("migrated save still looks like gob")
	}
	dst, drecs, dextra := testDB(t)
	if err := dst.Load(bytes.NewReader(binBuf.Bytes())); err != nil {
		t.Fatalf("loading migrated binary: %v", err)
	}
	dbEqual(t, src, dst, recs, drecs, extra, dextra)
}

// TestLoadOverwritesExisting checks Load replaces prior contents rather
// than appending.
func TestLoadOverwritesExisting(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 50)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, drecs, dextra := testDB(t)
	fillDB(drecs, dextra, 200)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	dbEqual(t, src, dst, recs, drecs, extra, dextra)
}

// TestCorruptInputsError feeds truncations and bit-flips of a valid
// binary file into Load: every one must produce an error or load
// cleanly — never panic. Truncations must always error.
func TestCorruptInputsError(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 300)
	var buf bytes.Buffer
	if err := src.SaveWith(&buf, SaveOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut += 7 {
		dst, _, _ := testDB(t)
		if err := dst.Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded without error", cut, len(full))
		}
	}
	for pos := 0; pos < len(full); pos += 11 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x41
		dst, _, _ := testDB(t)
		_ = dst.Load(bytes.NewReader(mut)) // must not panic; error optional
	}
}

// TestCorruptErrorsAreErrCorrupt spot-checks that structural damage
// reports ErrCorrupt.
func TestCorruptErrorsAreErrCorrupt(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 10)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mut := buf.Bytes()
	mut = mut[:len(mut)-3] // drop the tail of the last chunk
	dst, _, _ := testDB(t)
	err := dst.Load(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", err)
	}
}

// FuzzCodecRoundTrip drives three properties at once: (1) a database
// built from fuzz-derived rows survives encode→decode bit-for-bit in
// both formats — through Load and through the streaming chunk cursors,
// which must agree; (2) Load over the raw fuzz bytes themselves returns
// an error or succeeds but never panics; and (3) the same holds for
// opening the raw bytes as a stream and draining its cursors.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte("hello world, this is seed data for rows"), true)
	f.Add([]byte(magicBinary+"\x02recs"), false)
	// A valid save as a seed so mutations explore near-valid inputs.
	{
		db := NewDB()
		recs := NewTable[rec]("recs")
		recs.SetCodec(recCodec{})
		extra := NewTable[aux]("extra")
		if Register(db, recs) == nil && Register(db, extra) == nil {
			fillDB(recs, extra, 40)
			var buf bytes.Buffer
			if err := db.Save(&buf); err == nil {
				f.Add(buf.Bytes(), true)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, compress bool) {
		// Property 2: arbitrary bytes never panic the loader.
		raw, _, _ := testDB(t)
		_ = raw.Load(bytes.NewReader(data))

		// Property 3: arbitrary bytes never panic the stream path either
		// — open, cursor creation and chunk decode all error cleanly.
		if sr, err := NewStreamReader(bytes.NewReader(data), int64(len(data))); err == nil {
			for _, name := range sr.TableNames() {
				if cur, err := NewStreamCursor[rec](sr, name, recCodec{}); err == nil {
					_, _ = drain(cur)
				}
			}
		}

		// Property 1: rows derived from the fuzz input round-trip exactly.
		src, recs, extra := testDB(t)
		var rows []rec
		for i := 0; i+4 <= len(data); i += 4 {
			rows = append(rows, rec{
				ID:   int(int8(data[i])) * 1000,
				Name: string(data[i+1 : i+3]),
				Dur:  int64(int8(data[i+3])),
			})
		}
		recs.BatchInsert(rows)
		if len(data) > 0 {
			extra.Insert(aux{Tag: string(data[:len(data)%5]), N: float64(len(data))})
		}
		for _, format := range []Format{FormatBinary, FormatGob} {
			var buf bytes.Buffer
			if err := src.SaveWith(&buf, SaveOptions{Format: format, Compress: compress}); err != nil {
				t.Fatalf("save format=%d: %v", format, err)
			}
			dst, drecs, dextra := testDB(t)
			if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("load format=%d: %v", format, err)
			}
			if !reflect.DeepEqual(recs.Rows(), drecs.Rows()) {
				t.Fatalf("format=%d: recs did not round-trip", format)
			}
			if !reflect.DeepEqual(extra.Rows(), dextra.Rows()) {
				t.Fatalf("format=%d: extra did not round-trip", format)
			}
			if format != FormatBinary {
				continue
			}
			// Property 1, streaming side: the chunk cursors over the
			// same valid save must deliver exactly the resident rows.
			sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatalf("stream open of a valid save: %v", err)
			}
			if got := drainTable[rec](t, sr, "recs", recCodec{}); !rowsEqual(got, recs.Rows()) {
				t.Fatalf("streamed recs diverge from resident rows")
			}
			if got := drainTable[aux](t, sr, "extra", nil); !rowsEqual(got, extra.Rows()) {
				t.Fatalf("streamed extra diverges from resident rows")
			}
		}
	})
}
