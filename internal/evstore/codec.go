package evstore

// The versioned binary trace codec — the replacement for gob on the
// Save/Load path. The gob format round-tripped every table through
// reflection in one monolithic stream; at paper-size traces (§5's
// multi-million-event runs) both directions were the slowest link in the
// pipeline. The codec instead writes each table as a sequence of
// independent row chunks:
//
//	file   := magic "sgxperf-evc\x02" | uvarint(#tables) | table*
//	table  := str(name) | byte(codec: 0 gob, 1 columnar) |
//	          uvarint(#rows) | uvarint(#chunks) | chunk*
//	chunk  := uvarint(#rows) | byte(flags: bit0 flate) |
//	          uvarint(len(payload)) | payload
//
// A columnar chunk payload is self-contained: a string dictionary (call
// names intern to small indexes) followed by column-major varint data,
// with delta encoding for the monotone columns (event IDs, timestamps)
// supplied by the per-type RowCodec implementations in
// internal/perf/events. Self-containment is what buys parallelism: every
// chunk encodes and decodes independently on the shared worker pool, and
// the loader streams chunks into BatchInsert a window at a time instead
// of materialising whole tables. Tables without a registered RowCodec
// fall back to gob per chunk (codec byte 0) and still gain chunking,
// optional compression and parallelism.
//
// Legacy traces saved by the gob format are still readable: Load peeks
// at the first bytes and dispatches on the magic (see db.Load).

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"sgxperf/internal/pool"
)

// magicBinary identifies the columnar format; the trailing byte is the
// format version. Version 2 is the index-less layout; version 3 appends
// the chunk index and footer described in stream.go. Both versions load;
// Save writes version 3.
const (
	magicBinary   = "sgxperf-evc\x02"
	magicBinaryV3 = "sgxperf-evc\x03"
)

// Format selects the on-disk representation for SaveWith.
type Format int

const (
	// FormatBinary is the chunked columnar codec (the default).
	FormatBinary Format = iota
	// FormatGob is the legacy reflection-based format, kept writable for
	// interop tests and migration fixtures.
	FormatGob
)

// SaveOptions configures SaveWith.
type SaveOptions struct {
	Format Format
	// Compress flate-compresses each chunk payload. It costs encode CPU
	// and is off by default; chunks record the choice per chunk, so
	// readers need no configuration.
	Compress bool
}

const (
	chunkFlagFlate = 1 << 0

	codecGob      = 0
	codecColumnar = 1

	// Decode-side sanity caps: corrupted counts must produce errors, not
	// multi-gigabyte allocations.
	maxDecodeTables   = 1 << 12
	maxDecodeName     = 1 << 12
	maxDecodeChunkLen = 1 << 28
	maxDecodeRows     = 1 << 24
)

// ErrCorrupt reports a structurally invalid binary trace. Test with
// errors.Is.
var ErrCorrupt = errors.New("corrupt trace data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("evstore: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// A RowCodec encodes one chunk of rows into the columnar payload and
// back. Implementations live next to the row types (internal/perf/
// events); they choose the column order and the delta/interning scheme.
// Decode must tolerate arbitrary input by relying on the Decoder's
// sticky error — never panic.
type RowCodec[T any] interface {
	Encode(e *Encoder, rows []T)
	Decode(d *Decoder, n int) []T
}

// SetCodec registers the table's columnar codec. It must be called
// before the table is shared between goroutines (in practice: right
// after NewTable); tables without a codec serialise chunks through gob.
func (t *Table[T]) SetCodec(c RowCodec[T]) { t.codec = c }

// ---------------------------------------------------------------------
// Encoder / Decoder: the primitive layer RowCodecs are written against.

// Encoder accumulates one chunk's columnar payload: varints, zigzag
// varints, fixed floats and dictionary-interned strings. The dictionary
// is per chunk, so payloads stay self-contained and chunks can be
// encoded concurrently with no shared state.
type Encoder struct {
	col  []byte
	dict map[string]uint64
	ord  []string
}

// Uvarint appends an unsigned varint.
//
//sgxperf:hotpath
func (e *Encoder) Uvarint(v uint64) { e.col = binary.AppendUvarint(e.col, v) }

// Varint appends a zigzag-encoded signed varint — the delta encoding
// primitive for monotone columns.
//
//sgxperf:hotpath
func (e *Encoder) Varint(v int64) { e.col = binary.AppendVarint(e.col, v) }

// Float64 appends a fixed 8-byte little-endian float.
//
//sgxperf:hotpath
func (e *Encoder) Float64(v float64) {
	e.col = binary.LittleEndian.AppendUint64(e.col, math.Float64bits(v))
}

// String appends the dictionary index of s, interning it on first use.
//
//sgxperf:hotpath
func (e *Encoder) String(s string) {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	}
	idx, ok := e.dict[s]
	if !ok {
		idx = uint64(len(e.ord))
		e.dict[s] = idx
		e.ord = append(e.ord, s)
	}
	e.Uvarint(idx)
}

// finish assembles the payload: dictionary block then column data.
func (e *Encoder) finish() []byte {
	head := binary.AppendUvarint(nil, uint64(len(e.ord)))
	for _, s := range e.ord {
		head = binary.AppendUvarint(head, uint64(len(s)))
		head = append(head, s...)
	}
	return append(head, e.col...)
}

// Decoder reads one chunk payload written by an Encoder. Every method
// returns a zero value once an error has been recorded (sticky error),
// so RowCodec.Decode loops need no per-read checks; the caller inspects
// Err once per chunk.
type Decoder struct {
	data []byte
	pos  int
	dict []string
	err  error
}

func newDecoder(payload []byte, nrows int) (*Decoder, error) {
	d := &Decoder{data: payload}
	ndict := d.Uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ndict > uint64(len(payload)) {
		return nil, corruptf("dictionary of %d entries in a %d-byte payload", ndict, len(payload))
	}
	d.dict = make([]string, 0, ndict)
	for i := uint64(0); i < ndict; i++ {
		n := d.Uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if n > uint64(len(d.data)-d.pos) {
			return nil, corruptf("dictionary string of %d bytes with %d remaining", n, len(d.data)-d.pos)
		}
		d.dict = append(d.dict, string(d.data[d.pos:d.pos+int(n)]))
		d.pos += int(n)
	}
	_ = nrows
	return d, nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Uvarint reads an unsigned varint. Delta-encoded columns make
// single-byte varints the overwhelmingly common case, so that case is
// decoded inline before falling back to the generic loop.
//
//sgxperf:hotpath
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail(corruptf("truncated uvarint at offset %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
//
//sgxperf:hotpath
func (d *Decoder) Varint() int64 {
	ux := d.Uvarint()
	return int64(ux>>1) ^ -int64(ux&1)
}

// Float64 reads a fixed 8-byte little-endian float.
//
//sgxperf:hotpath
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.pos < 8 {
		d.fail(corruptf("truncated float64 at offset %d", d.pos))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

// Length reads a uvarint element count and validates it against the
// bytes remaining (every encoded element occupies at least one byte), so
// corrupt counts cannot trigger outsized allocations in RowCodecs.
func (d *Decoder) Length() int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.pos) {
		d.fail(corruptf("element count %d with %d bytes remaining", v, len(d.data)-d.pos))
		return 0
	}
	return int(v)
}

// String reads a dictionary index and resolves it.
//
//sgxperf:hotpath
func (d *Decoder) String() string {
	idx := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if idx >= uint64(len(d.dict)) {
		d.fail(corruptf("string index %d outside dictionary of %d", idx, len(d.dict)))
		return ""
	}
	return d.dict[idx]
}

// ---------------------------------------------------------------------
// Table-level encode: snapshot chunks, encode them on the pool, write.

// chunkSnapshot captures the committed chunk slices under the read lock;
// committed prefixes are never rewritten, so the slices stay valid after
// the lock is released and chunks can be encoded concurrently.
func (t *Table[T]) chunkSnapshot() (chunks [][]T, total int) {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	chunks = make([][]T, 0, len(t.chunks))
	for _, c := range t.chunks {
		if len(c) > 0 {
			chunks = append(chunks, c[:len(c):len(c)])
		}
	}
	return chunks, t.length
}

// encodeChunkPayload produces one chunk's payload bytes (pre-compression).
func (t *Table[T]) encodeChunkPayload(rows []T) ([]byte, byte, error) {
	if t.codec != nil {
		// Pre-size for the common shape — a dozen-odd mostly-single-byte
		// columns per row — so the append path grows the buffer rarely.
		e := Encoder{col: make([]byte, 0, 16*len(rows)+64)}
		t.codec.Encode(&e, rows)
		return e.finish(), codecColumnar, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
		return nil, codecGob, err
	}
	return buf.Bytes(), codecGob, nil
}

// tableIndex is one table's slice of the v3 chunk index (stream.go),
// collected while writeBinary emits the table.
type tableIndex struct {
	name      string
	codecByte byte
	rows      int
	chunks    []ChunkInfo
}

// writeBinary serialises the table: header, then each chunk encoded (and
// optionally compressed) in parallel on the shared pool and written in
// order. The returned index records each chunk's file offset, row count
// and pre-compression content hash for the v3 chunk index.
func (t *Table[T]) writeBinary(w *countingWriter, opts SaveOptions) (tableIndex, error) {
	chunks, total := t.chunkSnapshot()

	codecByte := byte(codecGob)
	if t.codec != nil {
		codecByte = codecColumnar
	}
	idx := tableIndex{name: t.name, codecByte: codecByte, rows: total}

	head := binary.AppendUvarint(nil, uint64(len(t.name)))
	head = append(head, t.name...)
	head = append(head, codecByte)
	head = binary.AppendUvarint(head, uint64(total))
	head = binary.AppendUvarint(head, uint64(len(chunks)))
	if _, err := w.Write(head); err != nil {
		return idx, err
	}

	payloads := make([][]byte, len(chunks))
	flags := make([]byte, len(chunks))
	hashes := make([]uint64, len(chunks))
	errs := make([]error, len(chunks))
	pool.ForEach(len(chunks), func(i int) {
		p, _, err := t.encodeChunkPayload(chunks[i])
		if err != nil {
			errs[i] = err
			return
		}
		hashes[i] = hashChunkPayload(codecByte, p)
		if opts.Compress {
			var buf bytes.Buffer
			fw, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err == nil {
				if _, err = fw.Write(p); err == nil {
					err = fw.Close()
				}
			}
			if err != nil {
				errs[i] = err
				return
			}
			if buf.Len() < len(p) {
				p = buf.Bytes()
				flags[i] = chunkFlagFlate
			}
		}
		payloads[i] = p
	})
	for i, err := range errs {
		if err != nil {
			return idx, fmt.Errorf("chunk %d: %w", i, err)
		}
	}

	idx.chunks = make([]ChunkInfo, len(chunks))
	var chead []byte
	for i, p := range payloads {
		idx.chunks[i] = ChunkInfo{Offset: w.n, Rows: len(chunks[i]), Hash: hashes[i]}
		chead = binary.AppendUvarint(chead[:0], uint64(len(chunks[i])))
		chead = append(chead, flags[i])
		chead = binary.AppendUvarint(chead, uint64(len(p)))
		if _, err := w.Write(chead); err != nil {
			return idx, err
		}
		if _, err := w.Write(p); err != nil {
			return idx, err
		}
	}
	return idx, nil
}

// countingWriter tracks the absolute file offset so writeBinary can
// record chunk offsets for the index.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ---------------------------------------------------------------------
// Table-level decode: stream chunk windows, decode them on the pool,
// batch-insert in order.

// rawChunk is one chunk read off the wire, pre-decode.
type rawChunk struct {
	nrows   int
	flags   byte
	payload []byte
}

// binTableReader carries the streaming state the DB loader hands each
// table. pos, when set, reports the absolute file offset consumed so far
// so readBinary can record per-chunk marks for the v3 index validation.
type binTableReader struct {
	br  *countingReader
	pos func() int64
}

func (t *Table[T]) readBinary(r *binTableReader) (tableIndex, error) {
	idx := tableIndex{name: t.name}
	codecByte, err := r.br.readByte()
	if err != nil {
		return idx, err
	}
	idx.codecByte = codecByte
	switch codecByte {
	case codecColumnar:
		if t.codec == nil {
			return idx, corruptf("table %q was written with a columnar codec but none is registered", t.name)
		}
	case codecGob:
		// Decodable regardless of registration.
	default:
		return idx, corruptf("table %q: unknown codec %d", t.name, codecByte)
	}
	total, err := r.br.readUvarint(maxDecodeRows)
	if err != nil {
		return idx, err
	}
	idx.rows = int(total)
	nchunks, err := r.br.readUvarint(maxDecodeRows)
	if err != nil {
		return idx, err
	}

	t.mu.Lock()
	t.chunks = nil
	t.length = 0
	t.invalidateHashesLocked()
	t.mu.Unlock()

	// Stream a window of chunks at a time: sequential reads, parallel
	// decode, in-order append. Memory stays bounded by the window, not
	// the table.
	window := pool.Size() * 2
	if window < 4 {
		window = 4
	}
	decoded := 0
	for done := 0; done < int(nchunks); {
		n := int(nchunks) - done
		if n > window {
			n = window
		}
		raws := make([]rawChunk, n)
		offs := make([]int64, n)
		for i := 0; i < n; i++ {
			if r.pos != nil {
				offs[i] = r.pos()
			}
			if raws[i], err = r.br.readChunk(); err != nil {
				return idx, fmt.Errorf("table %q chunk %d: %w", t.name, done+i, err)
			}
		}
		rows := make([][]T, n)
		errs := make([]error, n)
		pool.ForEach(n, func(i int) {
			rows[i], errs[i] = t.decodeChunk(raws[i], codecByte)
		})
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return idx, fmt.Errorf("table %q chunk %d: %w", t.name, done+i, errs[i])
			}
			decoded += len(rows[i])
			if decoded > int(total) {
				return idx, corruptf("table %q: more rows than declared (%d > %d)", t.name, decoded, total)
			}
			if r.pos != nil {
				idx.chunks = append(idx.chunks, ChunkInfo{Offset: offs[i], Rows: len(rows[i])})
			}
			t.appendQuiet(rows[i])
		}
		done += n
	}
	if decoded != int(total) {
		return idx, corruptf("table %q: %d rows decoded, header declared %d", t.name, decoded, total)
	}
	return idx, nil
}

// inflateChunk undoes the optional per-chunk flate compression,
// returning the pre-compression payload bytes.
func inflateChunk(rc rawChunk) ([]byte, error) {
	if rc.flags&chunkFlagFlate == 0 {
		return rc.payload, nil
	}
	fr := flate.NewReader(bytes.NewReader(rc.payload))
	inflated, err := io.ReadAll(io.LimitReader(fr, maxDecodeChunkLen+1))
	if err != nil {
		return nil, corruptf("inflate: %v", err)
	}
	if len(inflated) > maxDecodeChunkLen {
		return nil, corruptf("inflated chunk exceeds %d bytes", maxDecodeChunkLen)
	}
	return inflated, nil
}

// decodeChunkPayload decodes one pre-compression chunk payload into
// rows — the shared core of the resident loader and the stream cursors.
// codec may be nil only for gob chunks.
func decodeChunkPayload[T any](codec RowCodec[T], codecByte byte, payload []byte, nrows int) ([]T, error) {
	if codecByte == codecGob {
		var rows []T
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rows); err != nil {
			return nil, corruptf("gob chunk: %v", err)
		}
		if len(rows) != nrows {
			return nil, corruptf("gob chunk decoded %d rows, header declared %d", len(rows), nrows)
		}
		return rows, nil
	}
	// Every columnar row occupies at least one payload byte, so a row
	// count above the payload size is corrupt — reject it before the
	// RowCodec allocates the row slice.
	if nrows > len(payload) {
		return nil, corruptf("%d rows declared in a %d-byte payload", nrows, len(payload))
	}
	d, err := newDecoder(payload, nrows)
	if err != nil {
		return nil, err
	}
	rows := codec.Decode(d, nrows)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(rows) != nrows {
		return nil, corruptf("codec decoded %d rows, header declared %d", len(rows), nrows)
	}
	return rows, nil
}

// decodeChunk inflates and decodes one raw chunk.
func (t *Table[T]) decodeChunk(rc rawChunk, codecByte byte) ([]T, error) {
	payload, err := inflateChunk(rc)
	if err != nil {
		return nil, err
	}
	return decodeChunkPayload(t.codec, codecByte, payload, rc.nrows)
}

// appendQuiet appends decoded rows without notifying subscribers — the
// load path mirrors the gob decodeRows semantics (a restore, not an
// insert stream). Decoded chunks arrive at exactly the storage chunk
// size except the last (writeBinary emits storage chunks), so a full
// chunk slice is adopted directly instead of copied; the indexing
// invariant — every chunk but the last holds exactly chunkSize rows —
// is preserved because adoption only happens when the previous chunk is
// full.
func (t *Table[T]) appendQuiet(rows []T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rows) == chunkSize {
		if n := len(t.chunks); n == 0 || len(t.chunks[n-1]) == chunkSize {
			t.chunks = append(t.chunks, rows)
			t.length += len(rows)
			return
		}
	}
	t.appendLocked(rows)
}

// ---------------------------------------------------------------------
// Wire-reading helpers.

// countingReader wraps the load stream with bounds-checked primitives.
type countingReader struct {
	r io.Reader
	// scratch avoids a per-call allocation for single bytes.
	scratch [1]byte
}

func (c *countingReader) readByte() (byte, error) {
	if br, ok := c.r.(io.ByteReader); ok {
		return br.ReadByte()
	}
	_, err := io.ReadFull(c.r, c.scratch[:])
	return c.scratch[0], err
}

func (c *countingReader) readUvarint(limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(byteReaderFunc(c.readByte))
	if err != nil {
		return 0, corruptf("truncated varint: %v", err)
	}
	if v > limit {
		return 0, corruptf("value %d exceeds limit %d", v, limit)
	}
	return v, nil
}

func (c *countingReader) readN(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, corruptf("truncated read of %d bytes: %v", n, err)
	}
	return buf, nil
}

func (c *countingReader) readString(limit uint64) (string, error) {
	n, err := c.readUvarint(limit)
	if err != nil {
		return "", err
	}
	b, err := c.readN(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *countingReader) readChunk() (rawChunk, error) {
	nrows, err := c.readUvarint(maxDecodeRows)
	if err != nil {
		return rawChunk{}, err
	}
	flags, err := c.readByte()
	if err != nil {
		return rawChunk{}, corruptf("truncated chunk flags: %v", err)
	}
	plen, err := c.readUvarint(maxDecodeChunkLen)
	if err != nil {
		return rawChunk{}, err
	}
	payload, err := c.readN(int(plen))
	if err != nil {
		return rawChunk{}, err
	}
	return rawChunk{nrows: int(nrows), flags: flags, payload: payload}, nil
}

// byteReaderFunc adapts a func to io.ByteReader.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

// ---------------------------------------------------------------------
// DB-level save/load.

// saveBinary writes the columnar format (version 3: table data followed
// by the chunk index and footer, see stream.go). Caller holds db.mu.
func (db *DB) saveBinary(w io.Writer, opts SaveOptions) error {
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, magicBinaryV3); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	head := binary.AppendUvarint(nil, uint64(len(db.tables)))
	if _, err := cw.Write(head); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	index := make([]tableIndex, 0, len(db.tables))
	for _, t := range db.tables {
		idx, err := t.writeBinary(cw, opts)
		if err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.Name(), err)
		}
		index = append(index, idx)
	}
	indexOff := cw.n
	blob := appendStreamIndex(nil, index)
	blob = binary.LittleEndian.AppendUint64(blob, uint64(indexOff))
	blob = append(blob, indexMagic...)
	if _, err := cw.Write(blob); err != nil {
		return fmt.Errorf("evstore: index: %w", err)
	}
	return nil
}

// loadBinary reads the columnar format; r is positioned just past the
// magic. For v3 files the trailing chunk index and footer are read and
// cross-checked against the tables actually decoded, so a truncated or
// structurally inconsistent file always errors even on this sequential
// path.
func (db *DB) loadBinary(r io.Reader, v3 bool) error {
	src := &countedSource{r: r, n: int64(len(magicBinary))}
	cr := &countingReader{r: src}
	ntables, err := cr.readUvarint(maxDecodeTables)
	if err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	if int(ntables) != len(db.tables) {
		return fmt.Errorf("evstore: file has %d tables, schema has %d", ntables, len(db.tables))
	}
	marks := make([]tableIndex, 0, len(db.tables))
	btr := &binTableReader{br: cr}
	if v3 {
		btr.pos = func() int64 { return src.n }
	}
	for i, t := range db.tables {
		name, err := cr.readString(maxDecodeName)
		if err != nil {
			return fmt.Errorf("evstore: table %d: %w", i, err)
		}
		if name != t.Name() {
			return fmt.Errorf("evstore: table %d is %q in file, %q in schema", i, name, t.Name())
		}
		idx, err := t.readBinary(btr)
		if err != nil {
			return fmt.Errorf("evstore: table %q: %w", name, err)
		}
		marks = append(marks, idx)
	}
	if !v3 {
		return nil
	}
	return validateStreamIndex(cr, src.n, marks)
}

// validateStreamIndex reads a v3 file's index block and footer off the
// sequential stream and checks them against the tables just decoded.
// Chunk hashes are carried, not recomputed — the structural cross-check
// is what guarantees truncations cannot pass silently.
func validateStreamIndex(cr *countingReader, indexOff int64, marks []tableIndex) error {
	tables, err := parseStreamIndex(byteReaderAdapter{cr}, indexOff)
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	if len(tables) != len(marks) {
		return corruptf("index describes %d tables, file holds %d", len(tables), len(marks))
	}
	for i, ti := range tables {
		m := marks[i]
		if ti.name != m.name || ti.codecByte != m.codecByte || ti.rows != m.rows || len(ti.chunks) != len(m.chunks) {
			return corruptf("index entry for table %q does not match its data", m.name)
		}
		for j, c := range ti.chunks {
			if c.Offset != m.chunks[j].Offset || c.Rows != m.chunks[j].Rows {
				return corruptf("index entry for table %q chunk %d does not match its data", m.name, j)
			}
		}
	}
	foot, err := cr.readN(footerSize)
	if err != nil {
		return fmt.Errorf("evstore: footer: %w", err)
	}
	if int64(binary.LittleEndian.Uint64(foot[:8])) != indexOff || string(foot[8:]) != indexMagic {
		return corruptf("footer does not match index position")
	}
	return nil
}

// byteReaderAdapter re-exposes a countingReader as a plain io.Reader so
// parseStreamIndex can run over the sequential load stream.
type byteReaderAdapter struct{ cr *countingReader }

func (a byteReaderAdapter) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	b, err := a.cr.readByte()
	if err != nil {
		return 0, err
	}
	p[0] = b
	return 1, nil
}
