package evstore

// The versioned binary trace codec — the replacement for gob on the
// Save/Load path. The gob format round-tripped every table through
// reflection in one monolithic stream; at paper-size traces (§5's
// multi-million-event runs) both directions were the slowest link in the
// pipeline. The codec instead writes each table as a sequence of
// independent row chunks:
//
//	file   := magic "sgxperf-evc\x02" | uvarint(#tables) | table*
//	table  := str(name) | byte(codec: 0 gob, 1 columnar) |
//	          uvarint(#rows) | uvarint(#chunks) | chunk*
//	chunk  := uvarint(#rows) | byte(flags: bit0 flate) |
//	          uvarint(len(payload)) | payload
//
// A columnar chunk payload is self-contained: a string dictionary (call
// names intern to small indexes) followed by column-major varint data,
// with delta encoding for the monotone columns (event IDs, timestamps)
// supplied by the per-type RowCodec implementations in
// internal/perf/events. Self-containment is what buys parallelism: every
// chunk encodes and decodes independently on the shared worker pool, and
// the loader streams chunks into BatchInsert a window at a time instead
// of materialising whole tables. Tables without a registered RowCodec
// fall back to gob per chunk (codec byte 0) and still gain chunking,
// optional compression and parallelism.
//
// Legacy traces saved by the gob format are still readable: Load peeks
// at the first bytes and dispatches on the magic (see db.Load).

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"sgxperf/internal/pool"
)

// magicBinary identifies the columnar format; the trailing byte is the
// format version.
const magicBinary = "sgxperf-evc\x02"

// Format selects the on-disk representation for SaveWith.
type Format int

const (
	// FormatBinary is the chunked columnar codec (the default).
	FormatBinary Format = iota
	// FormatGob is the legacy reflection-based format, kept writable for
	// interop tests and migration fixtures.
	FormatGob
)

// SaveOptions configures SaveWith.
type SaveOptions struct {
	Format Format
	// Compress flate-compresses each chunk payload. It costs encode CPU
	// and is off by default; chunks record the choice per chunk, so
	// readers need no configuration.
	Compress bool
}

const (
	chunkFlagFlate = 1 << 0

	codecGob      = 0
	codecColumnar = 1

	// Decode-side sanity caps: corrupted counts must produce errors, not
	// multi-gigabyte allocations.
	maxDecodeTables   = 1 << 12
	maxDecodeName     = 1 << 12
	maxDecodeChunkLen = 1 << 28
	maxDecodeRows     = 1 << 24
)

// ErrCorrupt reports a structurally invalid binary trace. Test with
// errors.Is.
var ErrCorrupt = errors.New("corrupt trace data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("evstore: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// A RowCodec encodes one chunk of rows into the columnar payload and
// back. Implementations live next to the row types (internal/perf/
// events); they choose the column order and the delta/interning scheme.
// Decode must tolerate arbitrary input by relying on the Decoder's
// sticky error — never panic.
type RowCodec[T any] interface {
	Encode(e *Encoder, rows []T)
	Decode(d *Decoder, n int) []T
}

// SetCodec registers the table's columnar codec. It must be called
// before the table is shared between goroutines (in practice: right
// after NewTable); tables without a codec serialise chunks through gob.
func (t *Table[T]) SetCodec(c RowCodec[T]) { t.codec = c }

// ---------------------------------------------------------------------
// Encoder / Decoder: the primitive layer RowCodecs are written against.

// Encoder accumulates one chunk's columnar payload: varints, zigzag
// varints, fixed floats and dictionary-interned strings. The dictionary
// is per chunk, so payloads stay self-contained and chunks can be
// encoded concurrently with no shared state.
type Encoder struct {
	col  []byte
	dict map[string]uint64
	ord  []string
}

// Uvarint appends an unsigned varint.
//
//sgxperf:hotpath
func (e *Encoder) Uvarint(v uint64) { e.col = binary.AppendUvarint(e.col, v) }

// Varint appends a zigzag-encoded signed varint — the delta encoding
// primitive for monotone columns.
//
//sgxperf:hotpath
func (e *Encoder) Varint(v int64) { e.col = binary.AppendVarint(e.col, v) }

// Float64 appends a fixed 8-byte little-endian float.
//
//sgxperf:hotpath
func (e *Encoder) Float64(v float64) {
	e.col = binary.LittleEndian.AppendUint64(e.col, math.Float64bits(v))
}

// String appends the dictionary index of s, interning it on first use.
//
//sgxperf:hotpath
func (e *Encoder) String(s string) {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	}
	idx, ok := e.dict[s]
	if !ok {
		idx = uint64(len(e.ord))
		e.dict[s] = idx
		e.ord = append(e.ord, s)
	}
	e.Uvarint(idx)
}

// finish assembles the payload: dictionary block then column data.
func (e *Encoder) finish() []byte {
	head := binary.AppendUvarint(nil, uint64(len(e.ord)))
	for _, s := range e.ord {
		head = binary.AppendUvarint(head, uint64(len(s)))
		head = append(head, s...)
	}
	return append(head, e.col...)
}

// Decoder reads one chunk payload written by an Encoder. Every method
// returns a zero value once an error has been recorded (sticky error),
// so RowCodec.Decode loops need no per-read checks; the caller inspects
// Err once per chunk.
type Decoder struct {
	data []byte
	pos  int
	dict []string
	err  error
}

func newDecoder(payload []byte, nrows int) (*Decoder, error) {
	d := &Decoder{data: payload}
	ndict := d.Uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ndict > uint64(len(payload)) {
		return nil, corruptf("dictionary of %d entries in a %d-byte payload", ndict, len(payload))
	}
	d.dict = make([]string, 0, ndict)
	for i := uint64(0); i < ndict; i++ {
		n := d.Uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if n > uint64(len(d.data)-d.pos) {
			return nil, corruptf("dictionary string of %d bytes with %d remaining", n, len(d.data)-d.pos)
		}
		d.dict = append(d.dict, string(d.data[d.pos:d.pos+int(n)]))
		d.pos += int(n)
	}
	_ = nrows
	return d, nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Uvarint reads an unsigned varint. Delta-encoded columns make
// single-byte varints the overwhelmingly common case, so that case is
// decoded inline before falling back to the generic loop.
//
//sgxperf:hotpath
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos < len(d.data) {
		if b := d.data[d.pos]; b < 0x80 {
			d.pos++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail(corruptf("truncated uvarint at offset %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
//
//sgxperf:hotpath
func (d *Decoder) Varint() int64 {
	ux := d.Uvarint()
	return int64(ux>>1) ^ -int64(ux&1)
}

// Float64 reads a fixed 8-byte little-endian float.
//
//sgxperf:hotpath
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.pos < 8 {
		d.fail(corruptf("truncated float64 at offset %d", d.pos))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

// Length reads a uvarint element count and validates it against the
// bytes remaining (every encoded element occupies at least one byte), so
// corrupt counts cannot trigger outsized allocations in RowCodecs.
func (d *Decoder) Length() int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.pos) {
		d.fail(corruptf("element count %d with %d bytes remaining", v, len(d.data)-d.pos))
		return 0
	}
	return int(v)
}

// String reads a dictionary index and resolves it.
//
//sgxperf:hotpath
func (d *Decoder) String() string {
	idx := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if idx >= uint64(len(d.dict)) {
		d.fail(corruptf("string index %d outside dictionary of %d", idx, len(d.dict)))
		return ""
	}
	return d.dict[idx]
}

// ---------------------------------------------------------------------
// Table-level encode: snapshot chunks, encode them on the pool, write.

// chunkSnapshot captures the committed chunk slices under the read lock;
// committed prefixes are never rewritten, so the slices stay valid after
// the lock is released and chunks can be encoded concurrently.
func (t *Table[T]) chunkSnapshot() (chunks [][]T, total int) {
	t.notifyRead()
	t.mu.RLock()
	defer t.mu.RUnlock()
	chunks = make([][]T, 0, len(t.chunks))
	for _, c := range t.chunks {
		if len(c) > 0 {
			chunks = append(chunks, c[:len(c):len(c)])
		}
	}
	return chunks, t.length
}

// encodeChunkPayload produces one chunk's payload bytes (pre-compression).
func (t *Table[T]) encodeChunkPayload(rows []T) ([]byte, byte, error) {
	if t.codec != nil {
		// Pre-size for the common shape — a dozen-odd mostly-single-byte
		// columns per row — so the append path grows the buffer rarely.
		e := Encoder{col: make([]byte, 0, 16*len(rows)+64)}
		t.codec.Encode(&e, rows)
		return e.finish(), codecColumnar, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rows); err != nil {
		return nil, codecGob, err
	}
	return buf.Bytes(), codecGob, nil
}

// writeBinary serialises the table: header, then each chunk encoded (and
// optionally compressed) in parallel on the shared pool and written in
// order.
func (t *Table[T]) writeBinary(w io.Writer, opts SaveOptions) error {
	chunks, total := t.chunkSnapshot()

	head := binary.AppendUvarint(nil, uint64(len(t.name)))
	head = append(head, t.name...)
	codecByte := byte(codecGob)
	if t.codec != nil {
		codecByte = codecColumnar
	}
	head = append(head, codecByte)
	head = binary.AppendUvarint(head, uint64(total))
	head = binary.AppendUvarint(head, uint64(len(chunks)))
	if _, err := w.Write(head); err != nil {
		return err
	}

	payloads := make([][]byte, len(chunks))
	flags := make([]byte, len(chunks))
	errs := make([]error, len(chunks))
	pool.ForEach(len(chunks), func(i int) {
		p, _, err := t.encodeChunkPayload(chunks[i])
		if err != nil {
			errs[i] = err
			return
		}
		if opts.Compress {
			var buf bytes.Buffer
			fw, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err == nil {
				if _, err = fw.Write(p); err == nil {
					err = fw.Close()
				}
			}
			if err != nil {
				errs[i] = err
				return
			}
			if buf.Len() < len(p) {
				p = buf.Bytes()
				flags[i] = chunkFlagFlate
			}
		}
		payloads[i] = p
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
	}

	var chead []byte
	for i, p := range payloads {
		chead = binary.AppendUvarint(chead[:0], uint64(len(chunks[i])))
		chead = append(chead, flags[i])
		chead = binary.AppendUvarint(chead, uint64(len(p)))
		if _, err := w.Write(chead); err != nil {
			return err
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Table-level decode: stream chunk windows, decode them on the pool,
// batch-insert in order.

// rawChunk is one chunk read off the wire, pre-decode.
type rawChunk struct {
	nrows   int
	flags   byte
	payload []byte
}

// binTableReader carries the streaming state the DB loader hands each
// table.
type binTableReader struct {
	br *countingReader
}

func (t *Table[T]) readBinary(r *binTableReader) error {
	codecByte, err := r.br.readByte()
	if err != nil {
		return err
	}
	switch codecByte {
	case codecColumnar:
		if t.codec == nil {
			return corruptf("table %q was written with a columnar codec but none is registered", t.name)
		}
	case codecGob:
		// Decodable regardless of registration.
	default:
		return corruptf("table %q: unknown codec %d", t.name, codecByte)
	}
	total, err := r.br.readUvarint(maxDecodeRows)
	if err != nil {
		return err
	}
	nchunks, err := r.br.readUvarint(maxDecodeRows)
	if err != nil {
		return err
	}

	t.mu.Lock()
	t.chunks = nil
	t.length = 0
	t.invalidateHashesLocked()
	t.mu.Unlock()

	// Stream a window of chunks at a time: sequential reads, parallel
	// decode, in-order append. Memory stays bounded by the window, not
	// the table.
	window := pool.Size() * 2
	if window < 4 {
		window = 4
	}
	decoded := 0
	for done := 0; done < int(nchunks); {
		n := int(nchunks) - done
		if n > window {
			n = window
		}
		raws := make([]rawChunk, n)
		for i := 0; i < n; i++ {
			if raws[i], err = r.br.readChunk(); err != nil {
				return fmt.Errorf("table %q chunk %d: %w", t.name, done+i, err)
			}
		}
		rows := make([][]T, n)
		errs := make([]error, n)
		pool.ForEach(n, func(i int) {
			rows[i], errs[i] = t.decodeChunk(raws[i], codecByte)
		})
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return fmt.Errorf("table %q chunk %d: %w", t.name, done+i, errs[i])
			}
			decoded += len(rows[i])
			if decoded > int(total) {
				return corruptf("table %q: more rows than declared (%d > %d)", t.name, decoded, total)
			}
			t.appendQuiet(rows[i])
		}
		done += n
	}
	if decoded != int(total) {
		return corruptf("table %q: %d rows decoded, header declared %d", t.name, decoded, total)
	}
	return nil
}

// decodeChunk inflates and decodes one raw chunk.
func (t *Table[T]) decodeChunk(rc rawChunk, codecByte byte) ([]T, error) {
	payload := rc.payload
	if rc.flags&chunkFlagFlate != 0 {
		fr := flate.NewReader(bytes.NewReader(payload))
		inflated, err := io.ReadAll(io.LimitReader(fr, maxDecodeChunkLen+1))
		if err != nil {
			return nil, corruptf("inflate: %v", err)
		}
		if len(inflated) > maxDecodeChunkLen {
			return nil, corruptf("inflated chunk exceeds %d bytes", maxDecodeChunkLen)
		}
		payload = inflated
	}
	if codecByte == codecGob {
		var rows []T
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rows); err != nil {
			return nil, corruptf("gob chunk: %v", err)
		}
		if len(rows) != rc.nrows {
			return nil, corruptf("gob chunk decoded %d rows, header declared %d", len(rows), rc.nrows)
		}
		return rows, nil
	}
	// Every columnar row occupies at least one payload byte, so a row
	// count above the payload size is corrupt — reject it before the
	// RowCodec allocates the row slice.
	if rc.nrows > len(payload) {
		return nil, corruptf("%d rows declared in a %d-byte payload", rc.nrows, len(payload))
	}
	d, err := newDecoder(payload, rc.nrows)
	if err != nil {
		return nil, err
	}
	rows := t.codec.Decode(d, rc.nrows)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(rows) != rc.nrows {
		return nil, corruptf("codec decoded %d rows, header declared %d", len(rows), rc.nrows)
	}
	return rows, nil
}

// appendQuiet appends decoded rows without notifying subscribers — the
// load path mirrors the gob decodeRows semantics (a restore, not an
// insert stream). Decoded chunks arrive at exactly the storage chunk
// size except the last (writeBinary emits storage chunks), so a full
// chunk slice is adopted directly instead of copied; the indexing
// invariant — every chunk but the last holds exactly chunkSize rows —
// is preserved because adoption only happens when the previous chunk is
// full.
func (t *Table[T]) appendQuiet(rows []T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rows) == chunkSize {
		if n := len(t.chunks); n == 0 || len(t.chunks[n-1]) == chunkSize {
			t.chunks = append(t.chunks, rows)
			t.length += len(rows)
			return
		}
	}
	t.appendLocked(rows)
}

// ---------------------------------------------------------------------
// Wire-reading helpers.

// countingReader wraps the load stream with bounds-checked primitives.
type countingReader struct {
	r io.Reader
	// scratch avoids a per-call allocation for single bytes.
	scratch [1]byte
}

func (c *countingReader) readByte() (byte, error) {
	if br, ok := c.r.(io.ByteReader); ok {
		return br.ReadByte()
	}
	_, err := io.ReadFull(c.r, c.scratch[:])
	return c.scratch[0], err
}

func (c *countingReader) readUvarint(limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(byteReaderFunc(c.readByte))
	if err != nil {
		return 0, corruptf("truncated varint: %v", err)
	}
	if v > limit {
		return 0, corruptf("value %d exceeds limit %d", v, limit)
	}
	return v, nil
}

func (c *countingReader) readN(n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, corruptf("truncated read of %d bytes: %v", n, err)
	}
	return buf, nil
}

func (c *countingReader) readString(limit uint64) (string, error) {
	n, err := c.readUvarint(limit)
	if err != nil {
		return "", err
	}
	b, err := c.readN(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *countingReader) readChunk() (rawChunk, error) {
	nrows, err := c.readUvarint(maxDecodeRows)
	if err != nil {
		return rawChunk{}, err
	}
	flags, err := c.readByte()
	if err != nil {
		return rawChunk{}, corruptf("truncated chunk flags: %v", err)
	}
	plen, err := c.readUvarint(maxDecodeChunkLen)
	if err != nil {
		return rawChunk{}, err
	}
	payload, err := c.readN(int(plen))
	if err != nil {
		return rawChunk{}, err
	}
	return rawChunk{nrows: int(nrows), flags: flags, payload: payload}, nil
}

// byteReaderFunc adapts a func to io.ByteReader.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

// ---------------------------------------------------------------------
// DB-level save/load.

// saveBinary writes the columnar format. Caller holds db.mu.
func (db *DB) saveBinary(w io.Writer, opts SaveOptions) error {
	if _, err := io.WriteString(w, magicBinary); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	head := binary.AppendUvarint(nil, uint64(len(db.tables)))
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	for _, t := range db.tables {
		if err := t.writeBinary(w, opts); err != nil {
			return fmt.Errorf("evstore: table %q: %w", t.Name(), err)
		}
	}
	return nil
}

// loadBinary reads the columnar format; r is positioned just past the
// magic.
func (db *DB) loadBinary(r io.Reader) error {
	cr := &countingReader{r: r}
	ntables, err := cr.readUvarint(maxDecodeTables)
	if err != nil {
		return fmt.Errorf("evstore: header: %w", err)
	}
	if int(ntables) != len(db.tables) {
		return fmt.Errorf("evstore: file has %d tables, schema has %d", ntables, len(db.tables))
	}
	for i, t := range db.tables {
		name, err := cr.readString(maxDecodeName)
		if err != nil {
			return fmt.Errorf("evstore: table %d: %w", i, err)
		}
		if name != t.Name() {
			return fmt.Errorf("evstore: table %d is %q in file, %q in schema", i, name, t.Name())
		}
		if err := t.readBinary(&binTableReader{br: cr}); err != nil {
			return fmt.Errorf("evstore: table %q: %w", name, err)
		}
	}
	return nil
}
