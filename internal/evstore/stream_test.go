package evstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// saveBytes serialises a testDB in the (v3) binary format.
func saveBytes(t *testing.T, db *DB, opts SaveOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.SaveWith(&buf, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// asV2 rewrites v3 file bytes as the index-less v2 layout: the data
// section is byte-identical between the versions, so stripping the
// index block and footer and patching the magic yields a valid v2 file.
func asV2(t *testing.T, v3 []byte) []byte {
	t.Helper()
	if len(v3) < len(magicBinaryV3)+footerSize || string(v3[:len(magicBinaryV3)]) != magicBinaryV3 {
		t.Fatalf("not a v3 file (%d bytes)", len(v3))
	}
	indexOff := binary.LittleEndian.Uint64(v3[len(v3)-footerSize:][:8])
	out := append([]byte(magicBinary), v3[len(magicBinary):indexOff]...)
	return out
}

// drain reads every remaining chunk off a cursor.
func drain[T any](cur *StreamCursor[T]) ([]T, error) {
	var out []T
	for {
		rows, err := cur.Next()
		if err != nil {
			return out, err
		}
		if rows == nil {
			return out, nil
		}
		out = append(out, rows...)
	}
}

// drainTable opens a cursor and drains it, failing the test on any error.
func drainTable[T any](t *testing.T, sr *StreamReader, name string, codec RowCodec[T]) []T {
	t.Helper()
	cur, err := NewStreamCursor[T](sr, name, codec)
	if err != nil {
		t.Fatalf("cursor %q: %v", name, err)
	}
	rows, err := drain(cur)
	if err != nil {
		t.Fatalf("drain %q: %v", name, err)
	}
	return rows
}

func rowsEqual[T any](a, b []T) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestStreamMatchesLoad proves the chunk-at-a-time read path delivers
// exactly the rows a full Load would, across table sizes (including the
// multi-chunk regime), both chunk codecs (columnar and gob fallback)
// and both compression settings — and that the index's chunk hashes are
// identical to the resident Table.ChunkHashes.
func TestStreamMatchesLoad(t *testing.T) {
	for _, n := range []int{0, 1, 100, chunkSize + 1, 3*chunkSize + 17} {
		for _, compress := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d/compress=%v", n, compress), func(t *testing.T) {
				src, recs, extra := testDB(t)
				fillDB(recs, extra, n)
				b := saveBytes(t, src, SaveOptions{Compress: compress})
				sr, err := NewStreamReader(bytes.NewReader(b), int64(len(b)))
				if err != nil {
					t.Fatal(err)
				}
				if got := drainTable[rec](t, sr, "recs", recCodec{}); !rowsEqual(got, recs.Rows()) {
					t.Errorf("streamed recs differ from resident rows")
				}
				if got := drainTable[aux](t, sr, "extra", nil); !rowsEqual(got, extra.Rows()) {
					t.Errorf("streamed extra differs from resident rows")
				}
				if got, _ := sr.Rows("recs"); got != recs.Len() {
					t.Errorf("Rows(recs) = %d, want %d", got, recs.Len())
				}
				if got := sr.ChunkHashes("recs"); !rowsEqual(got, recs.ChunkHashes()) {
					t.Errorf("stream chunk hashes %x != table %x", got, recs.ChunkHashes())
				}
			})
		}
	}
}

// TestStreamV2ScanIndex proves index-less v2 files stream too: the
// sequential header scan rebuilds row counts and chunk hashes identical
// to what the v3 index carries.
func TestStreamV2ScanIndex(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			src, recs, extra := testDB(t)
			fillDB(recs, extra, 2*chunkSize+9)
			v3 := saveBytes(t, src, SaveOptions{Compress: compress})
			v2 := asV2(t, v3)
			sr3, err := NewStreamReader(bytes.NewReader(v3), int64(len(v3)))
			if err != nil {
				t.Fatal(err)
			}
			sr2, err := NewStreamReader(bytes.NewReader(v2), int64(len(v2)))
			if err != nil {
				t.Fatalf("opening v2 layout: %v", err)
			}
			if !reflect.DeepEqual(sr2.TableNames(), sr3.TableNames()) {
				t.Fatalf("table names %v != %v", sr2.TableNames(), sr3.TableNames())
			}
			for _, name := range sr3.TableNames() {
				if !reflect.DeepEqual(sr2.ChunkHashes(name), sr3.ChunkHashes(name)) {
					t.Errorf("table %q: scanned hashes differ from indexed", name)
				}
			}
			if got := drainTable[rec](t, sr2, "recs", recCodec{}); !rowsEqual(got, recs.Rows()) {
				t.Errorf("v2 streamed recs differ from resident rows")
			}
		})
	}
}

// TestStreamTruncationErrors feeds every truncation of a saved file to
// the stream opener: each must fail to open (v3 loses its footer, v2
// loses chunk data) — never panic, never open with missing rows.
func TestStreamTruncationErrors(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 300)
	v3 := saveBytes(t, src, SaveOptions{Compress: true})
	for name, full := range map[string][]byte{"v3": v3, "v2": asV2(t, v3)} {
		for cut := 0; cut < len(full); cut += 7 {
			if _, err := NewStreamReader(bytes.NewReader(full[:cut]), int64(cut)); err == nil {
				t.Fatalf("%s truncated at %d/%d opened without error", name, cut, len(full))
			}
		}
	}
}

// TestStreamBitFlipNeverWrongRows is the corruption contract of the
// chunk-hash verification: flip any byte of the file and the stream
// path either errors (at open, cursor creation, or decode) or still
// delivers exactly the original rows — silent corruption never reaches
// a caller. (Bytes outside every integrity domain, like the data
// section's table headers that an indexed open never reads, fall in the
// second arm.)
func TestStreamBitFlipNeverWrongRows(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 300)
	full := saveBytes(t, src, SaveOptions{Compress: true})
	for pos := 0; pos < len(full); pos += 11 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x41
		sr, err := NewStreamReader(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			continue
		}
		for _, open := range []func() (any, error){
			func() (any, error) {
				cur, err := NewStreamCursor[rec](sr, "recs", recCodec{})
				if err != nil {
					return nil, err
				}
				return drain(cur)
			},
			func() (any, error) {
				cur, err := NewStreamCursor[aux](sr, "extra", nil)
				if err != nil {
					return nil, err
				}
				return drain(cur)
			},
		} {
			got, err := open()
			if err != nil {
				continue
			}
			switch rows := got.(type) {
			case []rec:
				if !rowsEqual(rows, recs.Rows()) {
					t.Fatalf("flip at %d: recs decoded without error but differ", pos)
				}
			case []aux:
				if !rowsEqual(rows, extra.Rows()) {
					t.Fatalf("flip at %d: extra decoded without error but differ", pos)
				}
			}
		}
	}
}

// TestStreamMidStreamCorruption damages one interior chunk of a
// multi-chunk table: chunks before it stream fine, the damaged chunk
// reports ErrCorrupt (the hash check), and seeking past it recovers the
// clean tail — the random-access property the chunk index exists for.
func TestStreamMidStreamCorruption(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 3*chunkSize+17)
	full := saveBytes(t, src, SaveOptions{})
	clean, err := NewStreamReader(bytes.NewReader(full), int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	chunks := clean.Chunks("recs")
	if len(chunks) != 4 {
		t.Fatalf("expected 4 chunks, got %d", len(chunks))
	}

	mut := append([]byte(nil), full...)
	mut[chunks[2].Offset+20] ^= 0x41 // inside chunk 2's payload
	sr, err := NewStreamReader(bytes.NewReader(mut), int64(len(mut)))
	if err != nil {
		t.Fatalf("index is intact, open must succeed: %v", err)
	}
	cur, err := NewStreamCursor[rec](sr, "recs", recCodec{})
	if err != nil {
		t.Fatal(err)
	}
	want := recs.Rows()
	for k := 0; k < 2; k++ {
		rows, err := cur.Next()
		if err != nil {
			t.Fatalf("clean chunk %d: %v", k, err)
		}
		if !rowsEqual(rows, want[k*chunkSize:(k+1)*chunkSize]) {
			t.Fatalf("clean chunk %d decoded wrong rows", k)
		}
	}
	if _, err := cur.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged chunk error = %v, want ErrCorrupt", err)
	}
	rows, err := cur.Next()
	if err != nil {
		t.Fatalf("clean tail chunk after the damaged one: %v", err)
	}
	if !rowsEqual(rows, want[3*chunkSize:]) {
		t.Fatalf("tail chunk decoded wrong rows")
	}
}

// TestStreamSeek pins the cursor's random access: in-range seeks
// reposition, the end position yields a clean EOF, and out-of-range
// seeks error.
func TestStreamSeek(t *testing.T) {
	src, recs, extra := testDB(t)
	fillDB(recs, extra, 2*chunkSize+5)
	b := saveBytes(t, src, SaveOptions{})
	sr, err := NewStreamReader(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := NewStreamCursor[rec](sr, "recs", recCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Seek(1); err != nil {
		t.Fatal(err)
	}
	rows, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := recs.Rows()[chunkSize : 2*chunkSize]; !rowsEqual(rows, want) {
		t.Fatalf("seek(1) did not yield chunk 1")
	}
	if err := cur.Seek(cur.NumChunks()); err != nil {
		t.Fatal(err)
	}
	if rows, err := cur.Next(); rows != nil || err != nil {
		t.Fatalf("next at end = (%v, %v), want clean EOF", rows, err)
	}
	if err := cur.Seek(-1); err == nil {
		t.Fatal("seek(-1) must error")
	}
	if err := cur.Seek(cur.NumChunks() + 1); err == nil {
		t.Fatal("seek past end must error")
	}
}
