// Typed intraprocedural dataflow engine: the shared machinery under the
// lockorder, heldacross and staticlint boundary-sync analyses.
//
// The engine models three things:
//
//   - lock identity — every acquisition site is resolved through go/types
//     to the declaring (package, struct, field) triple, so w.p.mapMu on
//     two different instances is one lock, and the same field reached
//     from two packages is still one lock;
//   - the held-set lattice — a walk over each function body tracks the
//     ordered set of locks held on every control-flow path, joining
//     branches by intersection (must-hold), so a lock released on one arm
//     of an if does not leak a false "held" fact past the join, and paths
//     that return or panic drop out of the join entirely;
//   - blocking-call summaries — a whole-repo fixpoint marks every
//     function that directly or transitively reaches a blocking boundary
//     (channel send/receive, select without default, worker-pool
//     fan-out, ocall dispatch, SDK sync primitives), so "calls a helper
//     that eventually ocalls" is caught without interprocedural held
//     sets.
//
// Known approximations, chosen for zero false-positive pressure over
// completeness: loop bodies are walked once (a lock leaked across a
// back-edge is not tracked into the second iteration); function literals
// that are not invoked where they are written are analysed as separate
// roots with an empty held set (a closure run by pool.Do is charged to
// the pool.Do boundary at the call site instead); and locks whose
// identity cannot be resolved to a declaration (locals, aliases through
// calls) participate in held tracking but never in the repo-wide order
// graph.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// LockClass distinguishes the lock APIs the engine understands.
type LockClass int

const (
	// LockSync is sync.Mutex / sync.RWMutex.
	LockSync LockClass = iota
	// LockSDK is the simulated in-enclave sdk.Mutex, whose contended
	// path sleeps through an ocall (§2.3.2).
	LockSDK
)

func (c LockClass) String() string {
	if c == LockSDK {
		return "sdk.Mutex"
	}
	return "sync mutex"
}

// Import paths of the repository packages the engine knows by name.
const (
	sdkPkgPath  = "sgxperf/internal/sdk"
	poolPkgPath = "sgxperf/internal/pool"
)

// A LockID names one lock by declaration, not by instance: the declaring
// package, the owning struct type ("" for package-level vars) and the
// field or variable name. Locals and unresolvable lock expressions are
// marked local and excluded from the cross-package order graph.
type LockID struct {
	Pkg   string
	Owner string
	Field string
	Class LockClass
	local bool
}

func (id LockID) String() string {
	base := id.Field
	if id.Owner != "" && !id.local {
		base = id.Owner + "." + base
	}
	if id.Pkg != "" && !id.local {
		base = path.Base(id.Pkg) + "." + base
	}
	return base
}

// heldLock is one entry of the held set: the lock plus where it was
// acquired on this path.
type heldLock struct {
	id  LockID
	pos token.Pos
}

// lockOp is one resolved acquisition or release.
type lockOp struct {
	id      LockID
	acquire bool
	read    bool // RLock/RUnlock
}

// boundaryHit is one blocking boundary reached during the walk.
type boundaryHit struct {
	pos  token.Pos
	desc string
	// ocall is the statically-known ocall name when the boundary is an
	// ocall dispatch with a constant name argument.
	ocall string
	// condWait marks a condition-variable Wait, which by contract holds
	// (and internally releases) exactly one lock: consumers skip the
	// finding when a single lock is held, and flag only extra locks.
	condWait bool
}

// dfFunc is one analysis root: a declared function or a function literal.
type dfFunc struct {
	pkg  *Package
	name string
	body *ast.BlockStmt
}

// funcSummary records whether calling a function may block, and why.
type funcSummary struct {
	display string
	blocks  bool
	reason  string
	// callees lists resolved callees in source order, for the fixpoint.
	callees []string
}

// blockingSeeds are the known blocking functions, by go/types FullName.
var blockingSeeds = map[string]string{
	"(*sync.WaitGroup).Wait":               "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":                    "sync.Cond.Wait",
	poolPkgPath + ".Do":                    "worker-pool fan-out (pool.Do)",
	poolPkgPath + ".ForEach":               "worker-pool fan-out (pool.ForEach)",
	"(*" + sdkPkgPath + ".Env).Ocall":      "ocall dispatch",
	"(*" + sdkPkgPath + ".Env).OcallByID":  "ocall dispatch",
	"(*" + sdkPkgPath + ".Mutex).Lock":     "sdk.Mutex.Lock, which sleeps via ocall when contended",
	"(*" + sdkPkgPath + ".Mutex).Unlock":   "sdk.Mutex.Unlock, which wakes a sleeper via ocall",
	"(*" + sdkPkgPath + ".Cond).Wait":      "sdk.Cond.Wait (sleep ocall)",
	"(*" + sdkPkgPath + ".Cond).Signal":    "sdk.Cond.Signal (wake ocall)",
	"(*" + sdkPkgPath + ".Cond).Broadcast": "sdk.Cond.Broadcast (wake ocall)",
	"time.Sleep":                           "time.Sleep",
}

// ocallDispatchers are the seeds whose first argument names the ocall.
var ocallDispatchers = map[string]bool{
	"(*" + sdkPkgPath + ".Env).Ocall": true,
}

// condWaitSeeds are the boundaries with the condition-variable contract:
// called with exactly one lock held, released internally while parked.
var condWaitSeeds = map[string]bool{
	"(*sync.Cond).Wait":               true,
	"(*" + sdkPkgPath + ".Cond).Wait": true,
}

// engine drives the walk over one set of packages.
type engine struct {
	fset      *token.FileSet
	summaries map[string]*funcSummary

	// onAcquire fires when a lock is acquired with held non-empty; held
	// is the set before the acquisition.
	onAcquire func(fn *dfFunc, held []heldLock, op lockOp, pos token.Pos)
	// onBoundary fires at every blocking boundary; held may be empty.
	onBoundary func(fn *dfFunc, held []heldLock, b boundaryHit)
}

// newEngine builds summaries over every given package (the summary scope
// should be the whole tree even when only some packages are walked).
func newEngine(fset *token.FileSet, pkgs []*Package) *engine {
	e := &engine{fset: fset}
	e.summaries = buildSummaries(pkgs)
	return e
}

// shortName compresses a go/types FullName for messages.
func shortName(full string) string {
	full = strings.ReplaceAll(full, "sgxperf/internal/", "")
	return strings.ReplaceAll(full, "sgxperf/", "")
}

// walkPackage analyses every function body of one package.
func (e *engine) walkPackage(pkg *Package) {
	for _, fn := range collectFuncs(pkg) {
		w := &walker{e: e, pkg: pkg, fn: fn}
		w.block(fn.body.List, nil)
	}
}

// collectFuncs returns the package's analysis roots in source order:
// every declared function plus every function literal (literals start
// with an empty held set; a literal invoked where it is written is
// additionally walked inline by the caller's walk).
func collectFuncs(pkg *Package) []*dfFunc {
	var out []*dfFunc
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil {
				if _, typ := receiver(fd); typ != "" {
					name = typ + "." + name
				}
			}
			out = append(out, &dfFunc{pkg: pkg, name: name, body: fd.Body})
			outer := name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, &dfFunc{pkg: pkg, name: outer + " (func literal)", body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// --- the held-set walker --------------------------------------------------

type walker struct {
	e   *engine
	pkg *Package
	fn  *dfFunc
	// muteChan suppresses channel-op boundaries while walking the comm
	// clauses of a select (the select itself is the boundary).
	muteChan bool
}

func (w *walker) boundary(held []heldLock, pos token.Pos, desc, ocall string) {
	if w.e.onBoundary != nil {
		w.e.onBoundary(w.fn, held, boundaryHit{pos: pos, desc: desc, ocall: ocall})
	}
}

func (w *walker) chanBoundary(held []heldLock, pos token.Pos, desc string) {
	if !w.muteChan {
		w.boundary(held, pos, desc, "")
	}
}

func (w *walker) acquire(held []heldLock, op lockOp, pos token.Pos) []heldLock {
	for _, h := range held {
		if h.id == op.id {
			return held // recursive RLock etc.: no new fact
		}
	}
	if w.e.onAcquire != nil {
		w.e.onAcquire(w.fn, held, op, pos)
	}
	return append(held[:len(held):len(held)], heldLock{id: op.id, pos: pos})
}

func release(held []heldLock, id LockID) []heldLock {
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		if h.id != id {
			out = append(out, h)
		}
	}
	return out
}

// joinHeld intersects two non-terminated branch states, preserving a's
// acquisition order (must-hold join).
func joinHeld(a, b []heldLock) []heldLock {
	out := make([]heldLock, 0, len(a))
	for _, h := range a {
		for _, g := range b {
			if g.id == h.id {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

// block walks a statement list; the bool result is true when every path
// through the list terminates (return, panic, branch).
func (w *walker) block(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call, w.pkg.Info) {
			for _, a := range call.Args {
				held = w.expr(a, held)
			}
			return held, true
		}
		return w.expr(s.X, held), false
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		held = w.expr(s.Value, held)
		w.chanBoundary(held, s.Arrow, "channel send")
		return held, false
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			held = w.expr(r, held)
		}
		for _, l := range s.Lhs {
			held = w.expr(l, held)
		}
		return held, false
	case *ast.IncDecStmt:
		return w.expr(s.X, held), false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.expr(v, held)
					}
				}
			}
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.expr(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this path as far as the enclosing
		// block's join is concerned; the loop-level approximation is
		// documented in the package comment.
		return held, true
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		held, _ = w.stmt(s.Init, held)
		held = w.expr(s.Cond, held)
		thenOut, thenTerm := w.block(s.Body.List, held)
		elseOut, elseTerm := held, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, held)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return joinHeld(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		held, _ = w.stmt(s.Init, held)
		held = w.expr(s.Cond, held)
		bodyOut, bodyTerm := w.block(s.Body.List, held)
		if !bodyTerm {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
			// Zero iterations (or the condition failing) keeps the entry
			// state; otherwise the body's exit state flows out.
			if s.Cond == nil {
				// for{}: only break leaves; approximate with entry state.
				return held, false
			}
			return joinHeld(held, bodyOut), false
		}
		return held, false
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		if tv, ok := w.pkg.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.chanBoundary(held, s.Pos(), "channel receive (range)")
			}
		}
		bodyOut, bodyTerm := w.block(s.Body.List, held)
		if bodyTerm {
			return held, false
		}
		return joinHeld(held, bodyOut), false
	case *ast.SwitchStmt:
		held, _ = w.stmt(s.Init, held)
		held = w.expr(s.Tag, held)
		return w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		held, _ = w.stmt(s.Init, held)
		held, _ = w.stmt(s.Assign, held)
		return w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.boundary(held, s.Pos(), "select", "")
		}
		prevMute := w.muteChan
		w.muteChan = true
		var outs [][]heldLock
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			armHeld, armTerm := w.stmt(cc.Comm, held)
			w.muteChan = prevMute
			if !armTerm {
				armHeld, armTerm = w.block(cc.Body, armHeld)
			}
			w.muteChan = true
			if !armTerm {
				outs = append(outs, armHeld)
			}
		}
		w.muteChan = prevMute
		return joinAll(held, outs, true)
	case *ast.DeferStmt:
		// Arguments and the receiver are evaluated now; the call body
		// runs at return time, when held-across facts no longer apply.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			held = w.expr(sel.X, held)
		}
		for _, a := range s.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		// The spawned body runs concurrently with an empty held set (it
		// is analysed as a separate root); only the argument expressions
		// evaluate here.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			held = w.expr(sel.X, held)
		}
		for _, a := range s.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.EmptyStmt:
		return held, false
	default:
		return held, false
	}
}

// caseClauses joins the arms of a switch; a missing default keeps the
// entry state as one possible outcome.
func (w *walker) caseClauses(body *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	hasDefault := false
	var outs [][]heldLock
	allTerm := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		armHeld := held
		for _, e := range cc.List {
			armHeld = w.expr(e, armHeld)
		}
		armOut, armTerm := w.block(cc.Body, armHeld)
		if !armTerm {
			allTerm = false
			outs = append(outs, armOut)
		}
	}
	if !hasDefault {
		return joinAll(held, outs, true)
	}
	if allTerm {
		return held, true
	}
	return joinAll(held, outs, false)
}

// joinAll intersects the surviving branch states; withEntry adds the
// fall-through (no branch taken) state.
func joinAll(entry []heldLock, outs [][]heldLock, withEntry bool) ([]heldLock, bool) {
	if withEntry {
		outs = append(outs, entry)
	}
	if len(outs) == 0 {
		return entry, true
	}
	state := outs[0]
	for _, o := range outs[1:] {
		state = joinHeld(state, o)
	}
	return state, false
}

func (w *walker) expr(e ast.Expr, held []heldLock) []heldLock {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		return w.call(e, held)
	case *ast.UnaryExpr:
		held = w.expr(e.X, held)
		if e.Op == token.ARROW {
			w.chanBoundary(held, e.Pos(), "channel receive")
		}
		return held
	case *ast.BinaryExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Y, held)
	case *ast.ParenExpr:
		return w.expr(e.X, held)
	case *ast.SelectorExpr:
		return w.expr(e.X, held)
	case *ast.IndexExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Index, held)
	case *ast.IndexListExpr:
		held = w.expr(e.X, held)
		for _, i := range e.Indices {
			held = w.expr(i, held)
		}
		return held
	case *ast.SliceExpr:
		held = w.expr(e.X, held)
		held = w.expr(e.Low, held)
		held = w.expr(e.High, held)
		return w.expr(e.Max, held)
	case *ast.StarExpr:
		return w.expr(e.X, held)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return w.expr(e.Value, held)
	case *ast.FuncLit:
		// Analysed as a separate root with an empty held set.
		return held
	default:
		return held
	}
}

func (w *walker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	// Receiver and arguments evaluate before the call itself.
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		held = w.expr(fun.X, held)
	case *ast.ParenExpr, *ast.ArrayType, *ast.MapType, *ast.ChanType:
		// conversions; nothing to walk beyond args
	}
	for _, a := range call.Args {
		held = w.expr(a, held)
	}

	if op, ok := w.resolveLockOp(call); ok {
		if op.acquire {
			if op.id.Class == LockSDK {
				w.boundary(held, call.Pos(), blockingSeeds["(*"+sdkPkgPath+".Mutex).Lock"], "")
			}
			return w.acquire(held, op, call.Pos())
		}
		held = release(held, op.id)
		if op.id.Class == LockSDK {
			w.boundary(held, call.Pos(), blockingSeeds["(*"+sdkPkgPath+".Mutex).Unlock"], "")
		}
		return held
	}

	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: flows inline with the current held
		// set (the separate empty-held root adds nothing new).
		out, term := w.block(lit.Body.List, held)
		if term {
			return held
		}
		return out
	}

	if b, ok := w.callBoundary(call); ok {
		b.pos = call.Pos()
		if w.e.onBoundary != nil {
			w.e.onBoundary(w.fn, held, b)
		}
	}
	return held
}

// --- resolution helpers ---------------------------------------------------

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := derefType(t).(*types.Named)
	return n
}

// lockClassOf classifies a mutex-like named type.
func lockClassOf(n *types.Named) (LockClass, bool) {
	if n == nil || n.Obj().Pkg() == nil {
		return 0, false
	}
	switch {
	case n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"):
		return LockSync, true
	case n.Obj().Pkg().Path() == sdkPkgPath && n.Obj().Name() == "Mutex":
		return LockSDK, true
	}
	return 0, false
}

// resolveLockOp recognises Lock/RLock/Unlock/RUnlock calls on sync.Mutex,
// sync.RWMutex and sdk.Mutex values (TryLock variants never block and
// never pin an order, so they are ignored).
func (w *walker) resolveLockOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	info := w.pkg.Info
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	class, ok := lockClassOf(namedOf(sig.Recv().Type()))
	if !ok {
		return lockOp{}, false
	}
	var acquire, read bool
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}

	var id LockID
	if idx := selection.Index(); len(idx) > 1 {
		// Promoted method: the mutex is an embedded field of sel.X's type.
		id, ok = w.embeddedLockID(sel.X, idx[:len(idx)-1])
		if !ok {
			id = w.fallbackLockID(sel.X)
		}
	} else {
		id = w.lockExprID(sel.X)
	}
	id.Class = class
	return lockOp{id: id, acquire: acquire, read: read}, true
}

// embeddedLockID resolves the embedded-field chain of a promoted
// Lock/Unlock call to the lock's declaration.
func (w *walker) embeddedLockID(x ast.Expr, index []int) (LockID, bool) {
	tv, ok := w.pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return LockID{}, false
	}
	owner := namedOf(tv.Type)
	if owner == nil {
		return LockID{}, false
	}
	t := tv.Type
	var names []string
	var fieldPkg *types.Package
	for _, i := range index {
		st, ok := derefType(t).Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return LockID{}, false
		}
		f := st.Field(i)
		names = append(names, f.Name())
		fieldPkg = f.Pkg()
		t = f.Type()
	}
	if fieldPkg == nil {
		return LockID{}, false
	}
	return LockID{Pkg: fieldPkg.Path(), Owner: owner.Obj().Name(), Field: strings.Join(names, ".")}, true
}

// lockExprID resolves the expression denoting a lock to its declaration.
func (w *walker) lockExprID(x ast.Expr) LockID {
	info := w.pkg.Info
	switch x := x.(type) {
	case *ast.ParenExpr:
		return w.lockExprID(x.X)
	case *ast.StarExpr:
		return w.lockExprID(x.X)
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			f, ok := sel.Obj().(*types.Var)
			if ok && f.Pkg() != nil {
				owner := ""
				if tv, ok := info.Types[x.X]; ok {
					if n := namedOf(tv.Type); n != nil {
						owner = n.Obj().Name()
					}
				}
				return LockID{Pkg: f.Pkg().Path(), Owner: owner, Field: f.Name()}
			}
		}
		// Package-qualified variable (pkg.Mu).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return LockID{Pkg: v.Pkg().Path(), Field: v.Name()}
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return LockID{Pkg: v.Pkg().Path(), Field: v.Name()}
			}
			return LockID{Pkg: v.Pkg().Path(), Owner: "local in " + w.fn.name, Field: v.Name(), local: true}
		}
	}
	return w.fallbackLockID(x)
}

func (w *walker) fallbackLockID(x ast.Expr) LockID {
	return LockID{Owner: "local in " + w.fn.name, Field: types.ExprString(x), local: true}
}

// resolveCallee returns the statically-known callee of a call, nil for
// indirect calls, conversions and unresolved names.
func resolveCallee(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// callBoundary classifies a call as a blocking boundary: a known seed or
// a repo function whose summary says it transitively blocks.
func (w *walker) callBoundary(call *ast.CallExpr) (boundaryHit, bool) {
	fn := resolveCallee(call, w.pkg.Info)
	if fn == nil {
		return boundaryHit{}, false
	}
	full := fn.FullName()
	if desc, ok := blockingSeeds[full]; ok {
		b := boundaryHit{desc: desc, condWait: condWaitSeeds[full]}
		if ocallDispatchers[full] {
			b.ocall = constStringArg(call, w.pkg.Info)
		}
		return b, true
	}
	if s := w.e.summaries[full]; s != nil && s.blocks {
		return boundaryHit{desc: fmt.Sprintf("call into %s, which may block (%s)", s.display, s.reason)}, true
	}
	return boundaryHit{}, false
}

// constStringArg extracts the first argument when it is a compile-time
// string constant (a literal or a named constant like sdk.OcallThreadWait).
func constStringArg(call *ast.CallExpr, info *types.Info) string {
	if len(call.Args) == 0 {
		return ""
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	return ""
}

func isPanic(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin || info.Uses[id] == nil
}

// --- blocking summaries ---------------------------------------------------

// buildSummaries computes, for every declared function in the given
// packages, whether calling it may block, propagating through the call
// graph to a fixpoint.
func buildSummaries(pkgs []*Package) map[string]*funcSummary {
	type pending struct {
		sum  *funcSummary
		pkg  *Package
		body *ast.BlockStmt
	}
	summaries := make(map[string]*funcSummary)
	var order []string
	var all []pending
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				full := obj.FullName()
				sum := &funcSummary{display: shortName(full)}
				summaries[full] = sum
				order = append(order, full)
				all = append(all, pending{sum: sum, pkg: pkg, body: fd.Body})
			}
		}
	}

	for _, p := range all {
		scanDirectBlocking(p.pkg, p.body, p.sum)
	}

	for changed := true; changed; {
		changed = false
		for _, full := range order {
			sum := summaries[full]
			if sum.blocks {
				continue
			}
			for _, callee := range sum.callees {
				if cs := summaries[callee]; cs != nil && cs.blocks {
					sum.blocks = true
					sum.reason = "calls " + cs.display
					changed = true
					break
				}
			}
		}
	}
	return summaries
}

// scanDirectBlocking fills a summary's direct boundary facts and callee
// list, skipping goroutine bodies (their blocking belongs to them).
func scanDirectBlocking(pkg *Package, body *ast.BlockStmt, sum *funcSummary) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning never blocks; arguments still evaluate here.
			for _, a := range n.Call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						noteCall(pkg, c, sum)
					}
					return true
				})
			}
			return false
		case *ast.SendStmt:
			noteBlock(sum, "sends on a channel")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				noteBlock(sum, "receives from a channel")
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					noteBlock(sum, "ranges over a channel")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				noteBlock(sum, "selects without a default")
			}
		case *ast.CallExpr:
			noteCall(pkg, n, sum)
		}
		return true
	})
}

func noteBlock(sum *funcSummary, reason string) {
	if !sum.blocks {
		sum.blocks = true
		sum.reason = reason
	}
}

func noteCall(pkg *Package, call *ast.CallExpr, sum *funcSummary) {
	fn := resolveCallee(call, pkg.Info)
	if fn == nil {
		return
	}
	full := fn.FullName()
	if desc, ok := blockingSeeds[full]; ok {
		noteBlock(sum, "calls "+desc)
		return
	}
	sum.callees = append(sum.callees, full)
}

// --- the exported sync analysis (reused by staticlint) --------------------

// A HeldSite is one lock held across a blocking boundary.
type HeldSite struct {
	Lock     LockID
	Class    LockClass
	LockPos  token.Position
	Pos      token.Position
	Func     string
	Boundary string
	// Ocall is the boundary's statically-known ocall name, "" otherwise.
	Ocall string
}

// A Cycle is one strongly-connected component of the lock-acquisition
// order graph: a potential deadlock.
type Cycle struct {
	// Locks are the cycle's members, sorted by name.
	Locks []LockID
	// Edges describe the conflicting acquisitions, one line each.
	Edges []string
	// Pos is the earliest edge site, for positioning reports.
	Pos token.Position

	// reportPos is Pos as a token.Pos, for the lint driver's Reportf.
	reportPos token.Pos
}

// A SyncReport aggregates the dataflow engine's raw findings for callers
// outside the lint driver (the staticlint boundary-sync detector).
type SyncReport struct {
	Held   []HeldSite
	Cycles []Cycle
}

// AnalyzeSync parses and type-checks the tree under root and runs the
// held-across and lock-order analyses over the packages whose
// root-relative directory starts with one of the given prefixes (all
// packages when none are given). Suppression annotations are ignored:
// this is the raw analysis for callers that price findings rather than
// gate commits on them.
func AnalyzeSync(root string, dirs []string) (*SyncReport, error) {
	tree, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeSyncTree(tree, dirs), nil
}

// AnalyzeSyncTree is AnalyzeSync over an already-loaded tree, sharing
// its cached types and engine summaries with other analyses.
func AnalyzeSyncTree(tree *Tree, dirs []string) *SyncReport {
	fset := tree.Fset
	scope := &Analyzer{Name: "sync", Packages: dirs}

	report := &SyncReport{}
	e := tree.engineFor(nil)
	edges := newEdgeSet()
	e.onBoundary = func(fn *dfFunc, held []heldLock, b boundaryHit) {
		if len(held) == 0 || (b.condWait && len(held) == 1) {
			return
		}
		for _, h := range held {
			report.Held = append(report.Held, HeldSite{
				Lock:     h.id,
				Class:    h.id.Class,
				LockPos:  fset.Position(h.pos),
				Pos:      fset.Position(b.pos),
				Func:     fn.name,
				Boundary: b.desc,
				Ocall:    b.ocall,
			})
		}
	}
	e.onAcquire = func(fn *dfFunc, held []heldLock, op lockOp, pos token.Pos) {
		edges.add(fset, fn, held, op, pos)
	}
	for _, pkg := range tree.Pkgs {
		if scope.applies(pkg.Dir) {
			e.walkPackage(pkg)
		}
	}
	report.Cycles = edges.cycles(fset)
	return report
}
