package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a synthetic source tree for Run.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func TestVirtualClockFlagsWallClockReads(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sgx/clock.go": `package sgx

import "time"

func bad() time.Time { return time.Now() }

func alsoBad() { time.Sleep(time.Millisecond) }

// Durations and conversions stay legal.
func fine(d time.Duration) time.Duration { return d + time.Nanosecond }
`,
		// Aliased import: the check must follow the rename.
		"internal/sdk/alias.go": `package sdk

import wall "time"

func sneaky() wall.Time { return wall.Now() }
`,
		// Outside the configured packages: wall clock is fine.
		"cmd/tool/main.go": `package main

import "time"

func main() { _ = time.Now() }
`,
		// Test files are exempt (watchdog deadlines).
		"internal/sgx/clock_test.go": `package sgx

import "time"

func watchdog() { time.Sleep(time.Second) }
`,
	})
	diags, err := Run(root, []*Analyzer{VirtualClock})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want 3", messages(diags))
	}
	for _, want := range []string{"time.Now", "time.Sleep", "wall.Now"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no diagnostic mentions %s: %v", want, messages(diags))
		}
	}
}

func TestVirtualClockShadowedIdentifier(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sgx/shadow.go": `package sgx

import "time"

type clock struct{}

func (clock) Now() int { return 0 }

func fine() int {
	time := clock{} // local shadows the import
	return time.Now()
}

var _ = time.Nanosecond
`,
	})
	diags, err := Run(root, []*Analyzer{VirtualClock})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("shadowed identifier flagged: %v", messages(diags))
	}
}

const hotPathSrc = `package logger

import "sync"

type Logger struct {
	mu      sync.Mutex
	tableMu sync.RWMutex
	n       int
}

type shard struct {
	mu sync.Mutex
}

// record is hot.
//
//sgxperf:hotpath
func (l *Logger) record(sh *shard) {
	sh.mu.Lock() // shard-local: legal
	sh.mu.Unlock()
	%s
}

// grow is the slow path: receiver locks are fine here.
func (l *Logger) grow() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
}
`

func TestHotPathFlagsReceiverMutex(t *testing.T) {
	src := strings.Replace(hotPathSrc, "%s", "l.mu.Lock()\n\tl.mu.Unlock()\n\tl.tableMu.RLock()\n\tl.tableMu.RUnlock()", 1)
	root := writeTree(t, map[string]string{"internal/perf/logger/logger.go": src})
	diags, err := Run(root, []*Analyzer{HotPathLocks})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (Lock + RLock)", messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "Logger.record") {
			t.Fatalf("diagnostic does not name the method: %s", d)
		}
	}
}

func TestHotPathCleanMethodPasses(t *testing.T) {
	src := strings.Replace(hotPathSrc, "%s", "_ = l.n", 1)
	root := writeTree(t, map[string]string{"internal/perf/logger/logger.go": src})
	diags, err := Run(root, []*Analyzer{HotPathLocks})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean hot path flagged: %v", messages(diags))
	}
}

func TestHotPathFlagsClosureBodies(t *testing.T) {
	src := strings.Replace(hotPathSrc, "%s", "f := func() { l.mu.Lock(); l.mu.Unlock() }; f()", 1)
	root := writeTree(t, map[string]string{"internal/perf/logger/logger.go": src})
	diags, err := Run(root, []*Analyzer{HotPathLocks})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1 (lock inside closure)", messages(diags))
	}
}

func TestHotPathRequiresAnnotations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/perf/logger/logger.go": `package logger

func plain() {}
`,
	})
	diags, err := Run(root, []*Analyzer{HotPathLocks})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no //sgxperf:hotpath") {
		t.Fatalf("missing-annotation diagnostic not emitted: %v", messages(diags))
	}
}

func TestRunSkipsTestdataAndSortsDiagnostics(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sgx/testdata/bad.go": `package bad

import "time"

var _ = time.Now()
`,
		"internal/sgx/b.go": `package sgx

import "time"

var _ = time.Now()
`,
		"internal/sgx/a.go": `package sgx

import "time"

var _ = time.Now()
`,
	})
	diags, err := Run(root, []*Analyzer{VirtualClock})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (testdata skipped)", messages(diags))
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, "a.go") {
		t.Fatalf("diagnostics not sorted by file: %v", messages(diags))
	}
}

func TestRunAbortsOnParseError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sgx/broken.go": "package sgx\n\nfunc {",
	})
	if _, err := Run(root, []*Analyzer{VirtualClock}); err == nil {
		t.Fatal("parse error not reported")
	}
}

// TestRepositoryIsClean runs the full analyzer suite over this repository:
// the invariants the analyzers encode must hold on the tree that ships
// them. The roster is pinned first, so a silently dropped analyzer can
// never make this test pass vacuously.
func TestRepositoryIsClean(t *testing.T) {
	want := []string{"vclock", "hotpath", "lockorder", "heldacross", "atomicmix", "transamp", "doublefetch", "ptrescape", "secretflow", "edlflow"}
	suite := Analyzers()
	var names []string
	for _, a := range suite {
		names = append(names, a.Name)
	}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("analyzer suite = %v, want %v", names, want)
	}
	diags, err := Run("../..", suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("repository violates its own invariants:\n%s", strings.Join(messages(diags), "\n"))
	}
}
