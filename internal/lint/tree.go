package lint

import (
	"go/token"
	"strings"
)

// A Tree is one parsed source tree with every expensive derived artifact
// — the go/types view, the suppression directives, the dataflow-engine
// summaries and the interprocedural call graphs — computed at most once
// and shared by every analyzer and exported analysis that runs over it.
// Before the cache, each of lockorder/heldacross re-summarised the repo
// and each of transamp/doublefetch/ptrescape rebuilt a call graph, and
// every Analyze* entry point re-parsed and re-type-checked the tree from
// scratch; the repo gate now pays for each package once.
//
// A Tree is not safe for concurrent use: the driver runs analyzers
// sequentially, and the memo maps are plain.
type Tree struct {
	Root string
	Fset *token.FileSet
	// Pkgs are every parsed package, sorted by Dir.
	Pkgs []*Package

	typed   bool
	allows  *allowSet
	engines map[string]*engine
	graphs  map[string]*interproc
	taint   *taintGraph
}

// LoadTree parses every Go package under root. Type checking is lazy:
// it happens on the first use that needs it.
func LoadTree(root string) (*Tree, error) {
	pkgs, fset, err := parseTree(root)
	if err != nil {
		return nil, err
	}
	return &Tree{
		Root:    root,
		Fset:    fset,
		Pkgs:    pkgs,
		engines: make(map[string]*engine),
		graphs:  make(map[string]*interproc),
	}, nil
}

// ensureTypes resolves types for the whole tree, once.
func (t *Tree) ensureTypes() {
	if t.typed {
		return
	}
	typecheck(t.Root, t.Fset, t.Pkgs)
	t.typed = true
}

// allowSet returns the memoised suppression directives.
func (t *Tree) allowSet() *allowSet {
	if t.allows == nil {
		t.allows = collectAllows(t.Fset, t.Pkgs)
	}
	return t.allows
}

// scoped returns the packages selected by the dir prefixes (all packages
// when none are given).
func (t *Tree) scoped(dirs []string) []*Package {
	if len(dirs) == 0 {
		return t.Pkgs
	}
	scope := &Analyzer{Packages: dirs}
	var out []*Package
	for _, pkg := range t.Pkgs {
		if scope.applies(pkg.Dir) {
			out = append(out, pkg)
		}
	}
	return out
}

func scopeKey(dirs []string) string { return strings.Join(dirs, ",") }

// engineFor returns the dataflow engine summarising the packages in
// scope, building it on first use. Callbacks are cleared on every fetch
// so one analyzer's hooks never fire during another's walk.
func (t *Tree) engineFor(dirs []string) *engine {
	key := scopeKey(dirs)
	e, ok := t.engines[key]
	if !ok {
		t.ensureTypes()
		e = newEngine(t.Fset, t.scoped(dirs))
		t.engines[key] = e
	}
	e.onAcquire, e.onBoundary = nil, nil
	return e
}

// taintGraph returns the whole-tree secret-flow taint analysis, built
// on first use. Unlike the call graphs it has no per-scope variants:
// summaries must compose across the whole tree for cross-package flows,
// and the analyzers scope-filter at reporting time.
func (t *Tree) taintGraph() *taintGraph {
	if t.taint == nil {
		t.taint = newTaintGraph(t)
	}
	return t.taint
}

// interprocFor returns the interprocedural call graph over the packages
// in scope, building it on first use. The graph's fixpoint (which
// functions transitively cross the boundary) depends on the scope, so
// each distinct prefix set gets its own graph.
func (t *Tree) interprocFor(dirs []string) *interproc {
	key := scopeKey(dirs)
	ip, ok := t.graphs[key]
	if !ok {
		t.ensureTypes()
		ip = newInterproc(t.Fset, t.scoped(dirs))
		t.graphs[key] = ip
	}
	return ip
}
