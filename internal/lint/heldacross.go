package lint

import (
	"fmt"
	"go/token"
)

// HeldAcross flags any mutex — sync.Mutex, sync.RWMutex or the simulated
// in-enclave sdk.Mutex — held across a blocking boundary: a channel send
// or receive, a select without default, a worker-pool fan-out
// (pool.Do/ForEach), an ocall dispatch, or a call into a function the
// whole-repo summary says transitively blocks. A holder parked on any of
// those stalls every contender of the lock; inside an enclave the paper
// prices exactly this shape as sleep-ocall round trips (§2.3.2, §3.4).
//
// The held-set is tracked intraprocedurally with must-hold joins, so a
// lock released on one branch is not reported at a boundary after the
// join. Deliberate cases (a bounded send under a shard lock, say) carry
// //sgxperf:allow(heldacross) with a one-line justification.
var HeldAcross = &Analyzer{
	Name: "heldacross",
	Doc: "forbid holding a mutex across a blocking boundary (channel ops, " +
		"pool fan-out, ocall dispatch, transitively-blocking calls)",
	NeedTypes: true,
	RunRepo:   runHeldAcross,
}

func runHeldAcross(p *RepoPass) error {
	e := p.Engine()
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	e.onBoundary = func(fn *dfFunc, held []heldLock, b boundaryHit) {
		if b.condWait && len(held) == 1 {
			// cond.Wait with exactly the cond's own lock held: correct by
			// contract (Wait releases it while parked).
			return
		}
		for _, h := range held {
			acq := p.Fset.Position(h.pos)
			what := b.desc
			if b.ocall != "" {
				what = fmt.Sprintf("%s (%q)", b.desc, b.ocall)
			}
			findings = append(findings, finding{
				pos: b.pos,
				msg: fmt.Sprintf("%s is held across %s in %s (acquired at line %d); release it before blocking, or justify with //sgxperf:allow(heldacross)",
					h.id, what, fn.name, acq.Line),
			})
		}
	}
	for _, pkg := range p.Pkgs {
		e.walkPackage(pkg)
	}
	for _, f := range findings {
		p.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}
