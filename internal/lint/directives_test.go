package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirectiveFixture parses one source string into the []*Package
// shape collectDirectives wants.
func parseDirectiveFixture(t *testing.T, src string) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fset, []*Package{{Dir: ".", Files: []*ast.File{file}}}
}

const directiveFixture = `package p

func f() {
	//sgxperf:allow(vclock) deliberate wall-clock read for the exhibit
	a := 1
	//sgxperf:allow(hotpath)
	b := 2
	_, _ = a, b
}

//sgxperf:lockorder shards nest under the registry by design
func g() {}
`

func TestCollectDirectivesParsesBothSyntaxes(t *testing.T) {
	fset, pkgs := parseDirectiveFixture(t, directiveFixture)

	allows := collectDirectives(fset, pkgs, allowRE, "")
	if len(allows.entries) != 2 {
		t.Fatalf("allow entries = %d, want 2", len(allows.entries))
	}
	for k, why := range allows.entries {
		switch k.analyzer {
		case "vclock":
			if why != "deliberate wall-clock read for the exhibit" {
				t.Errorf("vclock justification = %q", why)
			}
		case "hotpath":
			if why != "" {
				t.Errorf("hotpath justification = %q, want empty", why)
			}
		default:
			t.Errorf("unexpected analyzer %q", k.analyzer)
		}
	}

	marks := collectDirectives(fset, pkgs, lockOrderRE, "lockorder")
	if len(marks.entries) != 1 {
		t.Fatalf("lockorder entries = %d, want 1", len(marks.entries))
	}
	for k, why := range marks.entries {
		if k.analyzer != "lockorder" {
			t.Errorf("analyzer = %q, want lockorder", k.analyzer)
		}
		if why != "shards nest under the registry by design" {
			t.Errorf("justification = %q", why)
		}
	}
}

func TestDirectiveSetCovers(t *testing.T) {
	fset, pkgs := parseDirectiveFixture(t, directiveFixture)
	ds := collectDirectives(fset, pkgs, allowRE, "")

	// The vclock directive sits on line 4; it covers line 4 and line 5
	// (the statement below), for the named analyzer only.
	pos := func(line int) token.Pos {
		return fset.File(pkgs[0].Files[0].Pos()).LineStart(line)
	}
	if !ds.covers("vclock", pos(5)) {
		t.Error("directive on line above should cover the statement")
	}
	if !ds.covers("vclock", pos(4)) {
		t.Error("directive should cover its own line")
	}
	if ds.covers("hotpath", pos(5)) {
		t.Error("directive must not cover a different analyzer's diagnostic")
	}
	if ds.covers("vclock", pos(8)) {
		t.Error("directive must not cover an unrelated line")
	}

	var nilSet *directiveSet
	if nilSet.covers("vclock", pos(5)) {
		t.Error("nil directiveSet must cover nothing")
	}
}

func TestDirectiveSetProblems(t *testing.T) {
	fset, pkgs := parseDirectiveFixture(t, directiveFixture)
	ds := collectDirectives(fset, pkgs, allowRE, "")

	// Use the vclock directive; leave hotpath (no justification) untouched.
	pos := fset.File(pkgs[0].Files[0].Pos()).LineStart(5)
	ds.covers("vclock", pos)

	missing := func(a string) string { return "missing:" + a }
	stale := func(a string) string { return "stale:" + a }

	diags := ds.problems(map[string]bool{"vclock": true, "hotpath": true}, missing, stale)
	if len(diags) != 1 {
		t.Fatalf("problems = %d, want 1 (hotpath missing justification): %v", len(diags), diags)
	}
	if diags[0].Message != "missing:hotpath" || diags[0].Analyzer != "hotpath" {
		t.Errorf("unexpected diagnostic %+v", diags[0])
	}

	// An unused directive with a justification is stale.
	ds2 := collectDirectives(fset, pkgs, allowRE, "")
	diags = ds2.problems(map[string]bool{"vclock": true}, missing, stale)
	if len(diags) != 1 || diags[0].Message != "stale:vclock" {
		t.Fatalf("want one stale vclock problem, got %v", diags)
	}

	// Inactive analyzers are out of scope when an active map is given…
	if diags := ds2.problems(map[string]bool{}, missing, stale); len(diags) != 0 {
		t.Errorf("empty active map should report nothing, got %v", diags)
	}
	// …while a nil map puts every occurrence in scope.
	if diags := ds2.problems(nil, missing, stale); len(diags) != 2 {
		t.Errorf("nil active map should report both occurrences, got %v", diags)
	}
}

func TestAllowAndMarkWrappersKeepWording(t *testing.T) {
	fset, pkgs := parseDirectiveFixture(t, directiveFixture)

	as := collectAllows(fset, pkgs)
	msgs := map[string]bool{}
	for _, d := range as.problems(map[string]bool{"vclock": true, "hotpath": true}) {
		msgs[d.Message] = true
	}
	if !msgs["//sgxperf:allow(hotpath) needs a one-line justification after the parenthesis"] {
		t.Errorf("missing-justification wording changed: %v", msgs)
	}
	if !msgs["stale //sgxperf:allow(vclock): no diagnostic here to suppress; remove the annotation"] {
		t.Errorf("stale wording changed: %v", msgs)
	}

	ms := collectLockOrderMarks(fset, pkgs)
	got := ms.problems("lockorder")
	if len(got) != 1 {
		t.Fatalf("lockorder problems = %d, want 1", len(got))
	}
	want := "stale //sgxperf:lockorder: no acquisition edge here to exempt; remove the annotation"
	if got[0].Message != want {
		t.Errorf("lockorder stale wording = %q, want %q", got[0].Message, want)
	}
	if got[0].Analyzer != "lockorder" {
		t.Errorf("analyzer = %q", got[0].Analyzer)
	}
	if !strings.HasSuffix(got[0].Pos.Filename, "fixture.go") {
		t.Errorf("position filename = %q", got[0].Pos.Filename)
	}
}
