package lint

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
)

// A Package is one parsed directory plus, when an analyzer in the run
// needs it, the go/types view of its sources. Type information is
// best-effort: imports that cannot be resolved (a fixture tree outside
// the module, say) are stubbed out and checking continues, so Info may be
// partial. Analyzers must treat missing type info as "don't know" and
// stay silent rather than guess.
type Package struct {
	// Dir is the package directory relative to the analysis root.
	Dir string
	// ImportPath is the path the package was type-checked under
	// (module path + Dir when a go.mod is present).
	ImportPath string
	// Files are the package's non-test sources, sorted by filename.
	Files []*ast.File
	// Types is the checked package (never nil after type checking, but
	// possibly incomplete).
	Types *types.Package
	// Info holds the resolved uses, definitions, selections and types.
	Info *types.Info
}

// tolerantImporter resolves imports from source via the standard
// go/importer and degrades to an empty stub package when resolution
// fails, so analysis of partial trees (test fixtures, other checkouts)
// still type-checks what it can instead of aborting.
type tolerantImporter struct {
	src   types.Importer
	stubs map[string]*types.Package
}

func newTolerantImporter(fset *token.FileSet) *tolerantImporter {
	return &tolerantImporter{
		src:   importer.ForCompiler(fset, "source", nil),
		stubs: make(map[string]*types.Package),
	}
}

func (imp *tolerantImporter) Import(p string) (*types.Package, error) {
	if stub, ok := imp.stubs[p]; ok {
		return stub, nil
	}
	pkg, err := imp.src.Import(p)
	if err == nil {
		return pkg, nil
	}
	stub := types.NewPackage(p, path.Base(p))
	imp.stubs[p] = stub
	return stub, nil
}

// modulePath reads the module path from root/go.mod ("" when absent).
func modulePath(root string) string {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(raw)
	if m == nil {
		return ""
	}
	return string(m[1])
}

// typecheck resolves types for every parsed package. Imports between the
// parsed packages resolve to each other (dependencies are checked first),
// so lock identities and function names agree across the tree; everything
// else goes through the tolerant source importer. Checking is tolerant
// throughout: a types error never fails the run (the build gate catches
// real ones); it only leaves holes in Info that analyzers skip.
func typecheck(root string, fset *token.FileSet, pkgs []*Package) {
	mod := modulePath(root)
	tc := &treeChecker{
		fset:   fset,
		imp:    newTolerantImporter(fset),
		byPath: make(map[string]*Package, len(pkgs)),
		state:  make(map[string]int, len(pkgs)),
	}
	for _, pkg := range pkgs {
		ipath := pkg.Dir
		switch {
		case mod != "" && pkg.Dir == ".":
			ipath = mod
		case mod != "":
			ipath = mod + "/" + filepath.ToSlash(pkg.Dir)
		default:
			ipath = "lintfixture/" + filepath.ToSlash(pkg.Dir)
		}
		pkg.ImportPath = ipath
		tc.byPath[ipath] = pkg
	}
	for _, pkg := range pkgs {
		tc.check(pkg)
	}
}

// treeChecker type-checks the parsed packages, resolving in-tree imports
// to the freshly-checked package objects so identities unify.
type treeChecker struct {
	fset   *token.FileSet
	imp    *tolerantImporter
	byPath map[string]*Package
	state  map[string]int // 0 unvisited, 1 in progress, 2 done
}

func (tc *treeChecker) check(pkg *Package) {
	if tc.state[pkg.ImportPath] != 0 {
		return
	}
	tc.state[pkg.ImportPath] = 1
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    tc,
		Error:       func(error) {}, // collect nothing; keep checking
		FakeImportC: true,
	}
	tpkg, _ := conf.Check(pkg.ImportPath, tc.fset, pkg.Files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(pkg.ImportPath, "")
	}
	pkg.Types = tpkg
	pkg.Info = info
	tc.state[pkg.ImportPath] = 2
}

// Import prefers an in-tree package (checking it on demand; an import
// cycle degrades to the external importer) over external resolution.
func (tc *treeChecker) Import(p string) (*types.Package, error) {
	if dep, ok := tc.byPath[p]; ok && tc.state[p] != 1 {
		tc.check(dep)
		if dep.Types != nil {
			return dep.Types, nil
		}
	}
	return tc.imp.Import(p)
}

// --- suppression annotations ---------------------------------------------

// allowDirective is the inline suppression marker:
//
//	//sgxperf:allow(heldacross) flush owns the shard; the send is bounded
//
// placed on (or on the line directly above) the flagged statement. The
// analyzer name in parentheses must match, and the justification is
// mandatory — an allow without a reason is itself a diagnostic.
const allowDirective = "//sgxperf:allow"

var allowRE = regexp.MustCompile(`^//sgxperf:allow\(([a-z]+)\)\s*(.*)$`)

// an allowKey locates one suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSet wraps the shared directiveSet with the allow directive's
// parse syntax and problem wording.
type allowSet struct {
	*directiveSet
}

// collectAllows scans every comment in the tree for allow directives.
func collectAllows(fset *token.FileSet, pkgs []*Package) *allowSet {
	return &allowSet{collectDirectives(fset, pkgs, allowRE, "")}
}

// allowed reports whether a diagnostic of the named analyzer at pos is
// suppressed by an allow directive on the same line or the line above.
func (as *allowSet) allowed(analyzer string, pos token.Pos) bool {
	if as == nil {
		return false
	}
	return as.covers(analyzer, pos)
}

// problems returns diagnostics about the annotations themselves: allows
// with no justification, and allows for an active analyzer that matched
// nothing (stale suppressions hide future regressions).
func (as *allowSet) problems(active map[string]bool) []Diagnostic {
	return as.directiveSet.problems(active,
		func(a string) string {
			return "//sgxperf:allow(" + a + ") needs a one-line justification after the parenthesis"
		},
		func(a string) string {
			return "stale //sgxperf:allow(" + a + "): no diagnostic here to suppress; remove the annotation"
		})
}
