package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags struct fields and package-level variables that are
// accessed both through sync/atomic (by address: atomic.AddInt64(&s.n, 1))
// and by plain loads or stores elsewhere in the package. Mixing the two
// disciplines is the classic pre-race smell: the plain access tears or
// reorders against the atomic one, and the race detector only notices
// when the schedule cooperates. Fields of the atomic.* value types
// (atomic.Int64, atomic.Pointer) cannot be mixed and are never flagged.
//
// The check is per-package: the fields in question are invariably
// unexported, so every access site is visible to one pass.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid mixing sync/atomic access with plain loads/stores of the " +
		"same variable; pick one discipline or guard with a mutex",
	NeedTypes: true,
	Run:       runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	info := pass.Pkg.Info
	if info == nil {
		return nil
	}

	type access struct {
		pos token.Pos
	}
	atomicUse := make(map[*types.Var][]access)
	plainUse := make(map[*types.Var][]access)
	// atomicArgs are the &x expressions consumed by atomic calls, so the
	// plain-access scan below can skip them (and their sub-expressions).
	atomicArgs := make(map[ast.Expr]bool)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(call, info) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := addressedVar(un.X, info); v != nil {
					atomicUse[v] = append(atomicUse[v], access{pos: un.Pos()})
					atomicArgs[un.X] = true
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[n] {
					return false
				}
				if v := selectedVar(n, info); v != nil {
					if _, tracked := atomicUse[v]; tracked {
						plainUse[v] = append(plainUse[v], access{pos: n.Pos()})
					}
					return false
				}
			case *ast.Ident:
				if atomicArgs[n] {
					return false
				}
				v, ok := info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				if _, tracked := atomicUse[v]; tracked {
					plainUse[v] = append(plainUse[v], access{pos: n.Pos()})
				}
			}
			return true
		})
	}

	vars := make([]*types.Var, 0, len(atomicUse))
	for v := range atomicUse {
		if len(plainUse[v]) > 0 {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		a, p := atomicUse[v], plainUse[v]
		sort.Slice(a, func(i, j int) bool { return a[i].pos < a[j].pos })
		sort.Slice(p, func(i, j int) bool { return p[i].pos < p[j].pos })
		pass.Reportf(v.Pos(),
			"%s is accessed via sync/atomic (line %d) and by plain load/store (line %d); use one discipline for every access",
			varLabel(v), pass.Fset.Position(a[0].pos).Line, pass.Fset.Position(p[0].pos).Line)
	}
	return nil
}

// isAtomicCall reports whether the call is a package-level function of
// sync/atomic (atomic.AddInt64, atomic.LoadUint32, …). Methods of the
// atomic value types (atomic.Pointer.Store(&x)) are excluded: their
// pointer arguments are values being stored, not addresses being
// atomically accessed.
func isAtomicCall(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedVar resolves &expr's operand to a struct field or variable.
func addressedVar(x ast.Expr, info *types.Info) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		return selectedVar(x, info)
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		// &slice[i] has no stable per-element identity; skip.
	}
	return nil
}

// selectedVar resolves a selector to the field it denotes (nil for
// methods, package selectors and unresolved expressions).
func selectedVar(sel *ast.SelectorExpr, info *types.Info) *types.Var {
	if s := info.Selections[sel]; s != nil {
		if s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}
	// Package-qualified variable (pkg.Counter).
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

func varLabel(v *types.Var) string {
	if v.IsField() {
		return "field " + v.Name()
	}
	return "variable " + v.Name()
}
