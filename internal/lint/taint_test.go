package lint

import (
	"strings"
	"testing"
)

// taintFixture merges the stub sdk/edl packages — the dispatch and
// declaration surfaces the taint engine classifies by name — with the
// test's own enclave sources.
func taintFixture(extra map[string]string) map[string]string {
	files := map[string]string{
		"internal/sdk/env.go": `package sdk

type Env struct{}

func (e *Env) Ocall(name string, args any) (any, error) { return nil, nil }
`,
		"internal/sdk/trusted.go": `package sdk

type TrustedFn func(env *Env, args any) (any, error)
`,
		"internal/edl/edl.go": `package edl

type PtrDir int

const (
	DirValue PtrDir = iota + 1
	DirIn
	DirOut
	DirInOut
	DirUserCheck
)

type Param struct {
	Name string
	Dir  PtrDir
	Size string
}

type Interface struct{}

func New() *Interface { return &Interface{} }

func (i *Interface) AddEcall(name string, public bool, params ...Param) {}

func (i *Interface) AddOcall(name string, allow []string, params ...Param) {}
`,
	}
	for k, v := range extra {
		files[k] = v
	}
	return files
}

// TestSecretFlowWitnessChain proves the engine carries a secret through
// a local copy and an interprocedural hop and renders every step of the
// witness: source, helper passage, sink.
func TestSecretFlowWitnessChain(t *testing.T) {
	root := writeTree(t, taintFixture(map[string]string{
		"internal/enclave/vault.go": `package enclave

import "lintfixture/internal/sdk"

type vault struct {
	//sgxperf:secret master key
	key [8]byte
}

func ship(env *sdk.Env, blob [8]byte) error {
	_, err := env.Ocall("ocall_ship", blob)
	return err
}

func (v *vault) export(env *sdk.Env) error {
	copied := v.key
	return ship(env, copied)
}
`,
	}))
	rep, err := AnalyzeTaint(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 1 {
		t.Fatalf("flows = %+v, want exactly 1", rep.Flows)
	}
	fl := rep.Flows[0]
	if fl.Call != "ocall_ship" || fl.SinkKind != "ocall-arg" {
		t.Errorf("flow sink = %q/%q, want ocall_ship/ocall-arg", fl.Call, fl.SinkKind)
	}
	if !strings.Contains(fl.Source, "key") {
		t.Errorf("flow source = %q, want the annotated key field", fl.Source)
	}
	if fl.Bytes != 8 {
		t.Errorf("flow bytes = %d, want the static 8-byte array size", fl.Bytes)
	}
	if len(fl.Chain) < 3 {
		t.Fatalf("witness chain %+v, want source, interprocedural hop and sink", fl.Chain)
	}
	if first := fl.Chain[0].Note; !strings.Contains(first, "key") {
		t.Errorf("chain starts at %q, want the secret source", first)
	}
	if last := fl.Chain[len(fl.Chain)-1].Note; !strings.Contains(last, "ocall_ship") {
		t.Errorf("chain ends at %q, want the ocall sink", last)
	}
}

// TestSecretFlowSanitizerSilences proves a seal/encrypt-named function
// launders taint: the sealed crossing produces no flow at all.
func TestSecretFlowSanitizerSilences(t *testing.T) {
	root := writeTree(t, taintFixture(map[string]string{
		"internal/enclave/vault.go": `package enclave

import "lintfixture/internal/sdk"

type vault struct {
	//sgxperf:secret master key
	key [8]byte
}

func sealKey(k [8]byte) []byte {
	out := make([]byte, len(k))
	for i, b := range k {
		out[i] = b ^ 0x5a
	}
	return out
}

func (v *vault) backup(env *sdk.Env) error {
	_, err := env.Ocall("ocall_backup", sealKey(v.key))
	return err
}
`,
	}))
	rep, err := AnalyzeTaint(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 0 {
		t.Errorf("flows = %+v, want none: sealKey sanitizes the crossing", rep.Flows)
	}
}

// TestSecretFlowFieldSensitivity proves taint stays on the annotated
// field: shipping an un-annotated sibling from the same struct is
// silent.
func TestSecretFlowFieldSensitivity(t *testing.T) {
	root := writeTree(t, taintFixture(map[string]string{
		"internal/enclave/vault.go": `package enclave

import "lintfixture/internal/sdk"

type vault struct {
	//sgxperf:secret master key
	key   [8]byte
	epoch int
}

func (v *vault) stamp(env *sdk.Env) error {
	_, err := env.Ocall("ocall_stamp", v.epoch)
	return err
}
`,
	}))
	rep, err := AnalyzeTaint(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 0 {
		t.Errorf("flows = %+v, want none: only the key field is secret", rep.Flows)
	}
}

// TestSecretFlowAllowDirective proves //sgxperf:allow(secretflow) on the
// sink line suppresses the repository diagnostic, while a stale allow —
// nothing underneath to suppress — becomes a diagnostic itself.
func TestSecretFlowAllowDirective(t *testing.T) {
	root := writeTree(t, taintFixture(map[string]string{
		"internal/enclave/vault.go": `package enclave

import "lintfixture/internal/sdk"

type vault struct {
	//sgxperf:secret master key
	key [8]byte
}

func (v *vault) export(env *sdk.Env) error {
	//sgxperf:allow(secretflow) deliberate exhibit for the test
	_, err := env.Ocall("ocall_ship", v.key)
	return err
}

func (v *vault) clean(env *sdk.Env) error {
	//sgxperf:allow(secretflow) nothing leaks here
	_, err := env.Ocall("ocall_ping", struct{}{})
	return err
}
`,
	}))
	diags, err := Run(root, []*Analyzer{SecretFlowCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want only the stale-allow complaint", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "stale") {
		t.Errorf("diagnostic %q, want the stale //sgxperf:allow report", diags[0].Message)
	}
}

// TestEDLFlowDirectionIssues proves the EDL cross-validation flags each
// mismatch kind — an [in] param written, an [out] param read before its
// first write, a user_check pointer dereferenced unguarded — while a
// bounds-guarded user_check handler stays clean.
func TestEDLFlowDirectionIssues(t *testing.T) {
	root := writeTree(t, taintFixture(map[string]string{
		"internal/enclave/handlers.go": `package enclave

import (
	"lintfixture/internal/edl"
	"lintfixture/internal/sdk"
)

type stampArgs struct{ Tag int }
type readArgs struct{ Sum int }
type scatterArgs struct {
	Buf []byte
	N   int
}
type pokeArgs struct {
	Buf []byte
	N   int
}

type enclave struct{ epoch int }

func (e *enclave) stamp(env *sdk.Env, args any) (any, error) {
	a := args.(*stampArgs)
	a.Tag = e.epoch
	return nil, nil
}

func (e *enclave) readout(env *sdk.Env, args any) (any, error) {
	a := args.(*readArgs)
	stale := a.Sum
	a.Sum = stale + 1
	return a.Sum, nil
}

func (e *enclave) scatter(env *sdk.Env, args any) (any, error) {
	a := args.(*scatterArgs)
	a.Buf[0] = 1
	return nil, nil
}

func (e *enclave) poke(env *sdk.Env, args any) (any, error) {
	a := args.(*pokeArgs)
	if a.N < 1 || len(a.Buf) < a.N {
		return nil, nil
	}
	a.Buf[0] = 1
	return nil, nil
}

func wire() (map[string]sdk.TrustedFn, *edl.Interface) {
	e := &enclave{}
	impl := map[string]sdk.TrustedFn{
		"ecall_stamp":   e.stamp,
		"ecall_readout": e.readout,
		"ecall_scatter": e.scatter,
		"ecall_poke":    e.poke,
	}
	iface := edl.New()
	iface.AddEcall("ecall_stamp", true, edl.Param{Name: "tag", Dir: edl.DirIn})
	iface.AddEcall("ecall_readout", true, edl.Param{Name: "sum", Dir: edl.DirOut})
	iface.AddEcall("ecall_scatter", true, edl.Param{Name: "buf", Dir: edl.DirUserCheck})
	iface.AddEcall("ecall_poke", true, edl.Param{Name: "buf", Dir: edl.DirUserCheck})
	return impl, iface
}
`,
	}))
	rep, err := AnalyzeTaint(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]string, len(rep.Issues))
	for _, is := range rep.Issues {
		kinds[is.Ecall] = is.Kind
	}
	want := map[string]string{
		"ecall_stamp":   "in-written",
		"ecall_readout": "out-stale-read",
		"ecall_scatter": "user-check-unguarded",
	}
	if len(rep.Issues) != len(want) {
		t.Fatalf("issues = %+v, want one per seeded mismatch and the guarded poke silent", rep.Issues)
	}
	for ecall, kind := range want {
		if kinds[ecall] != kind {
			t.Errorf("%s: kind %q, want %q", ecall, kinds[ecall], kind)
		}
	}
}
