package lint

import (
	"strings"
	"testing"
)

// --- lockorder ------------------------------------------------------------

// The acceptance fixture: A→B in one function, B→A in another.
const inversionSrc = `package locks

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *server) forward() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *server) backward() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
}
`

func TestLockOrderReportsInversion(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": inversionSrc})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1 cycle", messages(diags))
	}
	msg := diags[0].Message
	for _, want := range []string{"lock-order cycle", "server.a", "server.b", "forward", "backward"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("cycle report missing %q: %s", want, msg)
		}
	}
}

func TestLockOrderConsistentOrderPasses(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": `package locks

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *server) one() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) two() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}
`})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("consistent order flagged: %v", messages(diags))
	}
}

// Instances must unify: the same field on two different receivers is one
// lock, so self-edges (a→a) must not be reported as cycles.
func TestLockOrderInstancesUnify(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": `package locks

import "sync"

type node struct {
	mu sync.Mutex
}

func transfer(from, to *node) {
	from.mu.Lock()
	defer from.mu.Unlock()
	to.mu.Lock()
	defer to.mu.Unlock()
}
`})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	// transfer(x, y) + transfer(y, x) deadlocks for real, but by
	// declaration the edge is node.mu→node.mu: identical IDs are skipped
	// rather than reported as a self-cycle (instance-level order needs
	// runtime identity the static pass does not have).
	if len(diags) != 0 {
		t.Fatalf("same-field self edge flagged: %v", messages(diags))
	}
}

func TestLockOrderCrossPackageCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/a/a.go": `package a

import "sync"

var MuA sync.Mutex
var MuB sync.Mutex

func Forward() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock()
	defer MuB.Unlock()
}
`,
		"pkg/b/b.go": `package b

import "lintfixture/pkg/a"

func Backward() {
	a.MuB.Lock()
	defer a.MuB.Unlock()
	a.MuA.Lock()
	defer a.MuA.Unlock()
}
`,
	})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "lock-order cycle") {
		t.Fatalf("cross-package inversion not reported: %v", messages(diags))
	}
}

func TestLockOrderDirectiveExemptsEdge(t *testing.T) {
	// The directive sits on the line above the inverted acquisition.
	src := strings.Replace(inversionSrc,
		"\tdefer s.b.Unlock()\n\ts.a.Lock()",
		"\tdefer s.b.Unlock()\n\t//sgxperf:lockorder b precedes a on the drain path by design\n\ts.a.Lock()", 1)
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": src})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("annotated hierarchy still flagged: %v", messages(diags))
	}
}

func TestLockOrderDirectiveNeedsJustification(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": `package locks

import "sync"

var a, b sync.Mutex

func f() {
	a.Lock()
	//sgxperf:lockorder
	b.Lock()
	b.Unlock()
	a.Unlock()
}
`})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "justification") {
		t.Fatalf("unjustified directive not flagged: %v", messages(diags))
	}
}

func TestLockOrderStaleDirective(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/locks/locks.go": `package locks

import "sync"

var a sync.Mutex

func f() {
	//sgxperf:lockorder nothing is nested here
	a.Lock()
	a.Unlock()
}
`})
	diags, err := Run(root, []*Analyzer{LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale") {
		t.Fatalf("stale directive not flagged: %v", messages(diags))
	}
}

// --- heldacross -----------------------------------------------------------

// The acceptance fixture: a mutex held across a channel send.
const heldSendSrc = `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
	n   int
}

func (s *q) push(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.out <- v
}
`

func TestHeldAcrossChannelSend(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": heldSendSrc})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	msg := diags[0].Message
	for _, want := range []string{"q.mu", "channel send", "push"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("report missing %q: %s", want, msg)
		}
	}
}

func TestHeldAcrossReleaseBeforeSendPasses(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
	n   int
}

func (s *q) push(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.out <- v
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("release-before-send flagged: %v", messages(diags))
	}
}

// Must-hold join: a lock released on every path before the boundary is
// not held at it, even when one branch returns early.
func TestHeldAcrossBranchJoin(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
	n   int
}

func (s *q) push(v int) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	s.out <- v
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("joined-release flagged: %v", messages(diags))
	}
}

// A call into a function that transitively blocks is a boundary too.
func TestHeldAcrossTransitiveBlockingCall(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
}

func (s *q) emit(v int) {
	s.forward(v)
}

func (s *q) forward(v int) {
	s.out <- v
}

func (s *q) push(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(v)
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "may block") {
		t.Fatalf("report does not explain the transitive chain: %s", diags[0].Message)
	}
}

// cond.Wait holding exactly the cond's lock is the contract, not a bug;
// a second lock held across the wait is one.
func TestHeldAcrossCondWaitContract(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu    sync.Mutex
	extra sync.Mutex
	cond  *sync.Cond
	n     int
}

func (s *q) waitFine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait()
	}
}

func (s *q) waitBad() {
	s.extra.Lock()
	defer s.extra.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait()
	}
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	// Both held locks hit the same boundary line; dedupe keeps one
	// diagnostic per (file, line, analyzer).
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1 (at the two-lock wait)", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "waitBad") {
		t.Fatalf("single-lock cond.Wait flagged: %s", diags[0])
	}
}

// select with a default never parks; without one it does.
func TestHeldAcrossSelect(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
}

func (s *q) tryPush(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
	default:
	}
}

func (s *q) mustPush(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
	}
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "mustPush") {
		t.Fatalf("diagnostics = %v, want 1 in mustPush only", messages(diags))
	}
}

// Goroutine bodies start with an empty held set: the launch site's locks
// are not held inside the goroutine.
func TestHeldAcrossGoroutineBodyIsSeparate(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

import "sync"

type q struct {
	mu  sync.Mutex
	out chan int
}

func (s *q) spawn(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.out <- v
	}()
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("goroutine body charged with launcher's locks: %v", messages(diags))
	}
}

// Holding a sync.Mutex across an ocall dispatch into the real sdk package
// is the paper's §2.3.2 shape; the report names the ocall when its name
// is a compile-time constant.
func TestHeldAcrossOcallDispatch(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/encl/encl.go": `package encl

import (
	"sync"

	"sgxperf/internal/sdk"
)

type state struct {
	mu sync.Mutex
	n  int
}

func (s *state) audit(env *sdk.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	env.Ocall("ocall_audit_log", s.n)
}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	msg := diags[0].Message
	for _, want := range []string{"ocall dispatch", "ocall_audit_log", "state.mu"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("report missing %q: %s", want, msg)
		}
	}
}

func TestHeldAcrossAllowSuppresses(t *testing.T) {
	src := strings.Replace(heldSendSrc, "\ts.out <- v",
		"\t//sgxperf:allow(heldacross) the channel is buffered to len(q) and drained by a dedicated goroutine\n\ts.out <- v", 1)
	root := writeTree(t, map[string]string{"pkg/held/held.go": src})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("justified allow did not suppress: %v", messages(diags))
	}
}

func TestAllowWithoutJustification(t *testing.T) {
	src := strings.Replace(heldSendSrc, "\ts.out <- v",
		"\t//sgxperf:allow(heldacross)\n\ts.out <- v", 1)
	root := writeTree(t, map[string]string{"pkg/held/held.go": src})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "justification") {
		t.Fatalf("bare allow not flagged: %v", messages(diags))
	}
}

func TestStaleAllowIsFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/held/held.go": `package held

//sgxperf:allow(heldacross) nothing here blocks any more
func fine() {}
`})
	diags, err := Run(root, []*Analyzer{HeldAcross})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale") {
		t.Fatalf("stale allow not flagged: %v", messages(diags))
	}
}

// --- atomicmix ------------------------------------------------------------

func TestAtomicMixFlagsMixedField(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/mix/mix.go": `package mix

import "sync/atomic"

type counter struct {
	n    int64
	safe atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // plain read of an atomically-written field
}

func (c *counter) fine() int64 {
	c.safe.Add(1) // atomic value type: methods only, cannot be mixed
	return c.safe.Load()
}
`})
	diags, err := Run(root, []*Analyzer{AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "field n") {
		t.Fatalf("report does not name the field: %s", diags[0].Message)
	}
}

func TestAtomicMixConsistentAtomicPasses(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/mix/mix.go": `package mix

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}
`})
	diags, err := Run(root, []*Analyzer{AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("consistent atomic use flagged: %v", messages(diags))
	}
}

// atomic.Pointer.Store(&x) stores the address as a value; x is not being
// atomically accessed and plain use of it stays legal.
func TestAtomicMixIgnoresAtomicValueMethods(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/mix/mix.go": `package mix

import "sync/atomic"

type registry struct {
	table atomic.Pointer[map[string]int]
}

func (r *registry) set(m map[string]int) {
	next := make(map[string]int, len(m))
	for k, v := range m {
		next[k] = v
	}
	r.table.Store(&next)
}
`})
	diags, err := Run(root, []*Analyzer{AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("atomic.Pointer.Store operand flagged: %v", messages(diags))
	}
}

func TestAtomicMixPackageVariable(t *testing.T) {
	root := writeTree(t, map[string]string{"pkg/mix/mix.go": `package mix

import "sync/atomic"

var hits int64

func inc() {
	atomic.AddInt64(&hits, 1)
}

func reset() {
	hits = 0 // plain store racing the atomic adds
}
`})
	diags, err := Run(root, []*Analyzer{AtomicMix})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "variable hits") {
		t.Fatalf("mixed package var not reported: %v", messages(diags))
	}
}

// --- AnalyzeSync (the raw API staticlint consumes) ------------------------

func TestAnalyzeSyncReportsHoldsAndCycles(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/locks/locks.go": inversionSrc,
		"pkg/held/held.go":   heldSendSrc,
	})
	rep, err := AnalyzeSync(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cycles) != 1 {
		t.Fatalf("cycles = %+v, want 1", rep.Cycles)
	}
	if len(rep.Held) != 1 {
		t.Fatalf("held sites = %+v, want 1", rep.Held)
	}
	h := rep.Held[0]
	if h.Lock.Field != "mu" || h.Boundary != "channel send" || h.Func != "q.push" {
		t.Fatalf("held site = %+v", h)
	}
	// Scoping: restrict to a directory with no findings.
	rep, err = AnalyzeSync(root, []string{"pkg/none"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cycles)+len(rep.Held) != 0 {
		t.Fatalf("scoped run found %+v", rep)
	}
}
