package lint

import (
	"go/ast"
)

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Types and constants (time.Duration, time.Nanosecond) stay
// legal: the simulator is full of durations — it just must not *observe*
// real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// VirtualClock forbids wall-clock reads in the simulator packages. The
// whole point of the repository is deterministic virtual time
// (vtime.Cycles advanced by Context.Compute); a time.Now or time.Sleep in
// these packages silently couples results to the host scheduler, which no
// unit test reliably catches. Test files are exempt — watchdog deadlines
// around Wait calls legitimately use the wall clock.
var VirtualClock = &Analyzer{
	Name: "vclock",
	Doc: "forbid wall-clock reads (time.Now, time.Sleep, …) in simulator " +
		"packages; they run on virtual time",
	Packages: []string{
		"internal/sgx",
		"internal/sdk",
		"internal/kernel",
		"internal/host",
		"internal/vtime",
		"internal/loader",
		"internal/perf/logger",
		// The shared worker pool and the event store sit under both the
		// simulator and the analysis pipeline; neither may observe real
		// time (timing belongs to the experiments layer).
		"internal/pool",
		"internal/evstore",
		// Bundled workloads execute inside the simulator; a wall-clock
		// read there would leak host scheduling into recorded traces.
		"internal/workloads",
		// The serve daemon replays and re-analyses recorded virtual-time
		// traces; wall-clock reads belong to its HTTP plumbing (timeouts,
		// pollers) which lives behind time.Duration options, not in the
		// artifact computations this scope guards. The wire layer is pure
		// serialisation and may not observe time at all.
		"internal/serve",
		"api/v1",
	},
	Run: runVirtualClock,
}

func runVirtualClock(pass *Pass) error {
	for _, file := range pass.Files {
		alias := importName(file, "time")
		if alias == "" {
			continue
		}
		if alias == "." {
			// A dot import hides every call site from the check below.
			ast.Inspect(file, func(n ast.Node) bool {
				if imp, ok := n.(*ast.ImportSpec); ok && imp.Path.Value == `"time"` {
					pass.Reportf(imp.Pos(), "dot import of time defeats the wall-clock check; import it named")
					return false
				}
				return true
			})
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != alias || pkg.Obj != nil {
				// pkg.Obj != nil means the identifier resolves to a local
				// object shadowing the import, not the package itself.
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"%s.%s reads the wall clock; simulator packages run on virtual time (use the Context/vtime clock)",
					alias, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
