package lint

import "fmt"

// DoubleFetchCheck flags the §3.6 TOCTOU shape inside ecall handlers:
// an expression derived from the boundary args buffer (the `args any`
// parameter of a TrustedFn-shaped handler, or a local type-asserted
// from it) read before an ocall dispatch and read again after it. The
// ocall hands control to the untrusted side, which shares the buffer —
// a value validated before the crossing cannot be trusted after it;
// the handler must copy it into enclave-owned state once and use the
// copy on both sides.
//
// Writes between the two reads do not clear the fact (the re-read of a
// just-written field is still cheap to hoist), and reads inside the
// dispatch's own argument list count as "before" — they are what the
// ocall carried out. Deliberate re-reads carry
// //sgxperf:allow(doublefetch) with a one-line justification.
var DoubleFetchCheck = &Analyzer{
	Name: "doublefetch",
	Doc: "forbid re-reading a boundary-buffer expression after an ocall " +
		"crossing in an ecall handler (TOCTOU): copy once, use the copy",
	NeedTypes: true,
	Run:       runDoubleFetch,
}

func runDoubleFetch(p *Pass) error {
	// The shared whole-tree graph is safe here: fetches are per-function
	// facts independent of the graph's scope.
	ip := p.Interproc()
	for _, full := range ip.order {
		fn := ip.funcs[full]
		if fn.pkg != p.Pkg {
			continue
		}
		for _, f := range fn.fetches {
			cross := p.Fset.Position(f.crossPos)
			what := "an ocall"
			if f.ocall != "" {
				what = fmt.Sprintf("ocall %q", f.ocall)
			}
			p.Reportf(f.pos, "%s re-reads boundary-buffer expression %s after %s (dispatched at line %d): the untrusted side shares the buffer across the crossing; copy it into enclave state once, or justify with //sgxperf:allow(doublefetch)",
				fn.name, f.expr, what, cross.Line)
		}
	}
	return nil
}
