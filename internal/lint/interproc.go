// Interprocedural boundary-cost model: the call-graph layer under the
// transamp, doublefetch and ptrescape analyzers and the staticlint
// transition predictor.
//
// Where dataflow.go answers "may calling this function block?", this
// file answers the quantitative question the paper prices in §3.1/§6:
// *how many* enclave transitions does one invocation of an entry point
// execute, and where do they multiply? Each declared function gets a
// summary of
//
//   - its direct boundary crossings — ocall dispatch (env.Ocall /
//     env.OcallByID), ecall dispatch through an sdk.Proxy value, and
//     the SDK sync primitives whose contended path sleeps via ocall —
//     each tagged with the loop-nest depth it sits at, the product of
//     the statically-known trip counts of the enclosing loops, and
//     whether a branch guards it;
//   - its resolved call sites with the same depth/trip/guard tags, so
//     a fixpoint lifts callee crossings to the caller ("flush calls
//     putChunk eight times per invocation, putChunk ocalls once");
//   - for TrustedFn-shaped handlers (func(env *sdk.Env, args any)),
//     the reads of expressions derived from the boundary args buffer,
//     ordered against the ocall crossings — the §3.6 double-fetch
//     shape — and enclave pointers passed to ocall arguments.
//
// SDK types are recognised by name (receiver type Env/Mutex/Cond/Proxy
// in a package whose path basename is "sdk"), not by import path, so
// fixture trees that type-check under lintfixture/… and the real
// sgxperf/internal/sdk resolve identically.
//
// Known approximations, chosen like dataflow.go's for low false-positive
// pressure: function-literal bodies are not attributed to their
// enclosing function (a crossing inside a goroutine or callback belongs
// to no summary); go-statement callees are skipped (their crossings run
// on another thread under another parent); loop trip counts are only
// derived from `for i := c0; i < n; i += k` with constant bounds and
// from range-over-int/range-over-array, everything else counts as
// "unknown" (trip 0); writes between a fetch and a re-fetch do not
// clear the double-fetch fact; and an sdk.Mutex crossing is priced as
// contention-conditional, so it never contributes to the transition
// prediction.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"sort"
)

// CrossKind classifies one boundary-crossing site.
type CrossKind int

const (
	// CrossOcall is a direct ocall dispatch (env.Ocall / env.OcallByID):
	// one full EEXIT→OCALL→EENTER round trip per execution.
	CrossOcall CrossKind = iota
	// CrossEcall is an ecall dispatch through an sdk.Proxy value — the
	// untrusted side entering the enclave.
	CrossEcall
	// CrossSleep is an SDK sync primitive (sdk.Mutex, sdk.Cond) whose
	// contended path leaves the enclave through the sleep/wake ocall
	// pair; uncontended it crosses nothing, so it is tracked separately
	// from the unconditional dispatches.
	CrossSleep
)

func (k CrossKind) String() string {
	switch k {
	case CrossEcall:
		return "ecall dispatch"
	case CrossSleep:
		return "sdk sync primitive"
	default:
		return "ocall dispatch"
	}
}

// tripCap bounds the lifted trip product so nested constant loops
// cannot overflow the prediction arithmetic.
const tripCap = 1 << 20

// depthCap bounds the lifted loop depth; recursion past it stops
// contributing new facts, which is what terminates the fixpoint.
const depthCap = 8

// An ipCrossing is one direct crossing site inside a function.
type ipCrossing struct {
	kind CrossKind
	// name is the statically-known ocall name ("" when the first
	// argument is not a compile-time constant, and for OcallByID).
	name string
	// desc names CrossSleep primitives (sdk.Mutex.Lock etc).
	desc string
	pos  token.Pos
	end  token.Pos // the call's End, for ordering arg reads as "before"
	// depth is the loop-nest depth of the site; trip is the product of
	// the known constant trip counts of the enclosing loops (1 outside
	// any loop, 0 when any enclosing loop's count is unknown).
	depth int
	trip  int
	// cond marks sites guarded by a branch (if/switch/select arm).
	cond bool
}

// An ipCall is one resolved call site, tagged like a crossing.
type ipCall struct {
	callee string // go/types FullName
	pos    token.Pos
	depth  int
	trip   int
	cond   bool
}

// An ipFetch is one boundary-buffer expression read on both sides of an
// ocall crossing.
type ipFetch struct {
	expr     string
	firstPos token.Pos
	crossPos token.Pos
	ocall    string
	pos      token.Pos // the re-read
}

// An ipEscape is one enclave pointer passed as an ocall argument.
type ipEscape struct {
	expr  string
	ocall string
	pos   token.Pos
}

// An ipFunc is one declared function's interprocedural summary.
type ipFunc struct {
	pkg       *Package
	name      string // display name (Recv.Method)
	full      string // go/types FullName
	crossings []ipCrossing
	calls     []ipCall
	fetches   []ipFetch
	escapes   []ipEscape
}

// interproc is the whole-graph view over one set of packages.
type interproc struct {
	fset  *token.FileSet
	funcs map[string]*ipFunc
	order []string // FullNames in source order, for determinism
	// entries maps ecall names to handler FullNames, recovered from
	// map[string]sdk.TrustedFn composite literals.
	entries map[string]string
	// crosses is the fixpoint: does calling the function execute at
	// least one unconditional-kind ocall dispatch, transitively?
	crosses map[string]bool
}

// newInterproc scans every declared function of the given packages and
// computes the ocall-reachability fixpoint.
func newInterproc(fset *token.FileSet, pkgs []*Package) *interproc {
	ip := &interproc{
		fset:    fset,
		funcs:   make(map[string]*ipFunc),
		entries: make(map[string]string),
		crosses: make(map[string]bool),
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil {
					if _, typ := receiver(fd); typ != "" {
						name = typ + "." + name
					}
				}
				fn := &ipFunc{pkg: pkg, name: name, full: obj.FullName()}
				s := &ipScanner{pkg: pkg, fn: fn, reads: make(map[string][]token.Pos)}
				s.argObjs = boundaryParams(fd, pkg.Info)
				s.block(fd.Body, ipCtx{trip: 1})
				s.resolveFetches()
				ip.funcs[fn.full] = fn
				ip.order = append(ip.order, fn.full)
			}
		}
		collectEntries(pkg, ip.entries)
	}
	ip.fixpoint()
	return ip
}

// fixpoint propagates "transitively dispatches an ocall" through the
// resolved call graph, mirroring dataflow.go's blocking summaries.
func (ip *interproc) fixpoint() {
	for _, full := range ip.order {
		for _, c := range ip.funcs[full].crossings {
			if c.kind == CrossOcall {
				ip.crosses[full] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, full := range ip.order {
			if ip.crosses[full] {
				continue
			}
			for _, call := range ip.funcs[full].calls {
				if ip.crosses[call.callee] {
					ip.crosses[full] = true
					changed = true
					break
				}
			}
		}
	}
}

// predInfo is one function's transition prediction: expected ocall
// dispatches per single invocation, with the precision caveats.
type predInfo struct {
	n           int
	loopUnknown bool
	cond        bool
}

// pred evaluates the expected ocall count of one invocation of full,
// memoised over the call graph; recursion is cut by reporting the
// in-progress callee as unbounded (loopUnknown).
func (ip *interproc) pred(full string, memo map[string]predInfo, visiting map[string]bool) predInfo {
	if p, ok := memo[full]; ok {
		return p
	}
	if visiting[full] {
		return predInfo{loopUnknown: true}
	}
	fn := ip.funcs[full]
	if fn == nil {
		return predInfo{}
	}
	visiting[full] = true
	var p predInfo
	add := func(weight int, sub predInfo, siteCond bool) {
		w := weight
		if w == 0 {
			w = 1
			p.loopUnknown = true
		}
		p.n += w * sub.n
		if p.n > tripCap {
			p.n = tripCap
		}
		p.loopUnknown = p.loopUnknown || sub.loopUnknown
		p.cond = p.cond || sub.cond || siteCond
	}
	for _, c := range fn.crossings {
		if c.kind != CrossOcall {
			continue // sleeps are contention-conditional, ecalls go inward
		}
		add(c.trip, predInfo{n: 1}, c.cond)
	}
	for _, call := range fn.calls {
		if ip.funcs[call.callee] == nil {
			continue
		}
		sub := ip.pred(call.callee, memo, visiting)
		if sub.n == 0 && !sub.loopUnknown && !sub.cond {
			continue
		}
		add(call.trip, sub, call.cond)
	}
	delete(visiting, full)
	memo[full] = p
	return p
}

// --- the context-carrying scanner -----------------------------------------

// ipCtx is the static execution context of a site: loop depth, trip
// product and branch guarding.
type ipCtx struct {
	depth int
	trip  int
	cond  bool
}

func (c ipCtx) loop(trip int) ipCtx {
	if c.depth < depthCap {
		c.depth++
	}
	switch {
	case trip == 0:
		c.trip = 0
	case c.trip != 0:
		c.trip *= trip
		if c.trip > tripCap {
			c.trip = tripCap
		}
	}
	return c
}

func (c ipCtx) branch() ipCtx {
	c.cond = true
	return c
}

type ipScanner struct {
	pkg *Package
	fn  *ipFunc
	// argObjs are the boundary-buffer roots of a TrustedFn-shaped
	// handler: the args parameter plus locals type-asserted from it
	// (nil for every other function).
	argObjs map[types.Object]bool
	// reads orders every boundary-derived expression read by position.
	reads map[string][]token.Pos
}

func (s *ipScanner) block(b *ast.BlockStmt, c ipCtx) {
	for _, st := range b.List {
		s.stmt(st, c)
	}
}

func (s *ipScanner) stmt(st ast.Stmt, c ipCtx) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		s.expr(st.X, c, true)
	case *ast.AssignStmt:
		s.noteDerived(st)
		for _, r := range st.Rhs {
			s.expr(r, c, true)
		}
		for _, l := range st.Lhs {
			s.lvalue(l, c)
		}
	case *ast.IfStmt:
		s.stmt(st.Init, c)
		s.expr(st.Cond, c, true)
		s.block(st.Body, c.branch())
		s.stmt(st.Else, c.branch())
	case *ast.ForStmt:
		s.stmt(st.Init, c)
		s.expr(st.Cond, c, true)
		body := c.loop(forTrip(st, s.pkg.Info))
		s.block(st.Body, body)
		s.stmt(st.Post, body)
	case *ast.RangeStmt:
		s.expr(st.X, c, true)
		s.block(st.Body, c.loop(rangeTrip(st, s.pkg.Info)))
	case *ast.BlockStmt:
		s.block(st, c)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, c)
	case *ast.SwitchStmt:
		s.stmt(st.Init, c)
		s.expr(st.Tag, c, true)
		s.caseBodies(st.Body, c)
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init, c)
		s.stmt(st.Assign, c)
		s.caseBodies(st.Body, c)
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			cl, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			s.stmt(cl.Comm, c.branch())
			for _, bs := range cl.Body {
				s.stmt(bs, c.branch())
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, c, true)
		}
	case *ast.SendStmt:
		s.expr(st.Chan, c, true)
		s.expr(st.Value, c, true)
	case *ast.IncDecStmt:
		s.expr(st.X, c, true)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, c, true)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred call runs once per reaching execution of the defer
		// statement, so the site's own context prices it correctly.
		s.call(st.Call, c)
	case *ast.GoStmt:
		// The spawned callee's crossings run on another thread under
		// another trace parent; only the argument expressions count here.
		for _, a := range st.Call.Args {
			s.expr(a, c, true)
		}
	}
}

func (s *ipScanner) caseBodies(body *ast.BlockStmt, c ipCtx) {
	for _, cc := range body.List {
		cl, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cl.List {
			s.expr(e, c, true)
		}
		for _, bs := range cl.Body {
			s.stmt(bs, c.branch())
		}
	}
}

// noteDerived extends the boundary-root set with locals type-asserted
// from it: `a, ok := args.(*T)` makes a a boundary-derived pointer.
func (s *ipScanner) noteDerived(st *ast.AssignStmt) {
	if s.argObjs == nil || len(st.Rhs) != 1 || len(st.Lhs) == 0 {
		return
	}
	ta, ok := st.Rhs[0].(*ast.TypeAssertExpr)
	if !ok || ta.Type == nil {
		return
	}
	root, ok := ta.X.(*ast.Ident)
	if !ok || !s.argObjs[s.pkg.Info.Uses[root]] {
		return
	}
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := s.pkg.Info.Defs[lhs]; obj != nil {
		s.argObjs[obj] = true
	} else if obj := s.pkg.Info.Uses[lhs]; obj != nil {
		s.argObjs[obj] = true
	}
}

// lvalue walks an assignment target: a store into a boundary-derived
// expression is a write, not a fetch, so the outer selector is not
// recorded (inner index expressions still walk normally).
func (s *ipScanner) lvalue(l ast.Expr, c ipCtx) {
	switch l := l.(type) {
	case *ast.SelectorExpr:
		if s.boundaryRoot(l) != "" {
			s.expr(l.X, c, false)
			return
		}
	case *ast.IndexExpr:
		if s.boundaryRoot(l) != "" {
			s.expr(l.X, c, false)
			s.expr(l.Index, c, true)
			return
		}
	}
	s.expr(l, c, true)
}

func (s *ipScanner) expr(e ast.Expr, c ipCtx, record bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		s.call(e, c)
	case *ast.SelectorExpr:
		if record && s.recordRead(e) {
			return
		}
		s.expr(e.X, c, record)
	case *ast.IndexExpr:
		if record && s.recordRead(e) {
			s.expr(e.Index, c, true)
			return
		}
		s.expr(e.X, c, record)
		s.expr(e.Index, c, true)
	case *ast.IndexListExpr:
		s.expr(e.X, c, record)
		for _, i := range e.Indices {
			s.expr(i, c, true)
		}
	case *ast.UnaryExpr:
		s.expr(e.X, c, record)
	case *ast.BinaryExpr:
		s.expr(e.X, c, record)
		s.expr(e.Y, c, record)
	case *ast.ParenExpr:
		s.expr(e.X, c, record)
	case *ast.StarExpr:
		s.expr(e.X, c, record)
	case *ast.SliceExpr:
		s.expr(e.X, c, record)
		s.expr(e.Low, c, true)
		s.expr(e.High, c, true)
		s.expr(e.Max, c, true)
	case *ast.TypeAssertExpr:
		s.expr(e.X, c, record)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el, c, record)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Value, c, record)
	case *ast.FuncLit:
		// Not attributed to the enclosing function; see the package
		// comment on approximations.
	}
}

// boundaryRoot returns the canonical expression string of a selector or
// index chain rooted at a boundary-derived object, "" otherwise.
func (s *ipScanner) boundaryRoot(e ast.Expr) string {
	if s.argObjs == nil {
		return ""
	}
	root := e
	for {
		switch r := root.(type) {
		case *ast.SelectorExpr:
			root = r.X
		case *ast.IndexExpr:
			root = r.X
		case *ast.ParenExpr:
			root = r.X
		case *ast.Ident:
			if s.argObjs[s.pkg.Info.Uses[r]] {
				return types.ExprString(e)
			}
			return ""
		default:
			return ""
		}
	}
}

// recordRead notes one boundary-derived fetch; the root identifier is
// not separately recorded (a.Key is one fetch, not a fetch of a too).
func (s *ipScanner) recordRead(e ast.Expr) bool {
	key := s.boundaryRoot(e)
	if key == "" {
		return false
	}
	s.reads[key] = append(s.reads[key], e.Pos())
	return true
}

func (s *ipScanner) call(call *ast.CallExpr, c ipCtx) {
	// Arguments (and a method receiver) evaluate regardless of what the
	// call turns out to be; nested calls inside them are ordinary sites.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		s.expr(sel.X, c, true)
	}
	for _, a := range call.Args {
		s.expr(a, c, true)
	}

	info := s.pkg.Info
	if name, ok := envDispatch(call, info); ok {
		s.fn.crossings = append(s.fn.crossings, ipCrossing{
			kind: CrossOcall, name: name, pos: call.Pos(), end: call.End(),
			depth: c.depth, trip: c.trip, cond: c.cond,
		})
		s.scanEscapes(call, name)
		return
	}
	if desc, ok := sleepPrimitive(call, info); ok {
		s.fn.crossings = append(s.fn.crossings, ipCrossing{
			kind: CrossSleep, desc: desc, pos: call.Pos(), end: call.End(),
			depth: c.depth, trip: c.trip, cond: c.cond,
		})
		return
	}
	if proxyDispatch(call, info) {
		s.fn.crossings = append(s.fn.crossings, ipCrossing{
			kind: CrossEcall, pos: call.Pos(), end: call.End(),
			depth: c.depth, trip: c.trip, cond: c.cond,
		})
		return
	}
	if fn := resolveCallee(call, info); fn != nil {
		s.fn.calls = append(s.fn.calls, ipCall{
			callee: fn.FullName(), pos: call.Pos(),
			depth: c.depth, trip: c.trip, cond: c.cond,
		})
	}
}

// scanEscapes flags enclave pointers passed as ocall arguments: any
// explicit &lvalue (composite literals are fresh values, not enclave
// state, and are excluded; so are plain pointer-typed variables, whose
// provenance one function cannot see).
func (s *ipScanner) scanEscapes(call *ast.CallExpr, ocall string) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			u, ok := n.(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			if _, isLit := u.X.(*ast.CompositeLit); isLit {
				return true
			}
			s.fn.escapes = append(s.fn.escapes, ipEscape{
				expr: types.ExprString(u), ocall: ocall, pos: u.Pos(),
			})
			return true
		})
	}
}

// resolveFetches pairs the ordered boundary reads with the ocall
// crossings: an expression read at or before a crossing's end and again
// after it is a double fetch (reads inside the dispatch's own argument
// list count as "before" — they are what the ocall carried out).
func (s *ipScanner) resolveFetches() {
	if len(s.reads) == 0 {
		return
	}
	exprs := make([]string, 0, len(s.reads))
	for e := range s.reads {
		exprs = append(exprs, e)
	}
	sort.Strings(exprs)
	for _, expr := range exprs {
		reads := s.reads[expr]
		sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
		for _, cr := range s.fn.crossings {
			if cr.kind != CrossOcall {
				continue
			}
			var first, again token.Pos
			for _, r := range reads {
				if r <= cr.end {
					if first == token.NoPos {
						first = r
					}
				} else {
					again = r
					break
				}
			}
			if first != token.NoPos && again != token.NoPos {
				s.fn.fetches = append(s.fn.fetches, ipFetch{
					expr: expr, firstPos: first, crossPos: cr.pos, ocall: cr.name, pos: again,
				})
				break
			}
		}
	}
	sort.Slice(s.fn.fetches, func(i, j int) bool { return s.fn.fetches[i].pos < s.fn.fetches[j].pos })
}

// --- classification helpers -----------------------------------------------

// sdkBase reports whether a package is "the SDK" by path basename, so
// fixture trees checked under lintfixture/internal/sdk and the real
// sgxperf/internal/sdk classify identically.
func sdkBase(pkg *types.Package) bool {
	return pkg != nil && path.Base(pkg.Path()) == "sdk"
}

// recvNamed returns the callee's receiver as a named type, nil for
// functions and unresolved methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// envDispatch recognises env.Ocall / env.OcallByID calls and extracts
// the statically-known ocall name when there is one.
func envDispatch(call *ast.CallExpr, info *types.Info) (string, bool) {
	fn := resolveCallee(call, info)
	if fn == nil {
		return "", false
	}
	n := recvNamed(fn)
	if n == nil || n.Obj().Name() != "Env" || !sdkBase(n.Obj().Pkg()) {
		return "", false
	}
	switch fn.Name() {
	case "Ocall":
		return constStringArg(call, info), true
	case "OcallByID":
		return "", true
	}
	return "", false
}

// sleepMethods are the sdk.Mutex/sdk.Cond methods whose contended path
// crosses the boundary through the sleep/wake ocalls.
var sleepMethods = map[string]bool{
	"Lock": true, "Unlock": true, "Wait": true, "Signal": true, "Broadcast": true,
}

// sleepPrimitive recognises sdk.Mutex / sdk.Cond method calls.
func sleepPrimitive(call *ast.CallExpr, info *types.Info) (string, bool) {
	fn := resolveCallee(call, info)
	if fn == nil || !sleepMethods[fn.Name()] {
		return "", false
	}
	n := recvNamed(fn)
	if n == nil || !sdkBase(n.Obj().Pkg()) {
		return "", false
	}
	if name := n.Obj().Name(); name == "Mutex" || name == "Cond" {
		return "sdk." + name + "." + fn.Name(), true
	}
	return "", false
}

// proxyDispatch recognises indirect calls through an sdk.Proxy value —
// the untrusted side's ecall dispatch.
func proxyDispatch(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	n := namedOf(tv.Type)
	return n != nil && n.Obj().Name() == "Proxy" && sdkBase(n.Obj().Pkg())
}

// boundaryParams returns the boundary-buffer root set of a
// TrustedFn-shaped handler — two parameters, *sdk.Env then the empty
// interface — or nil for every other function.
func boundaryParams(fd *ast.FuncDecl, info *types.Info) map[types.Object]bool {
	if fd.Type.Params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			return nil // unnamed args cannot be read, so nothing to track
		}
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				return nil
			}
			objs = append(objs, obj)
		}
	}
	if len(objs) != 2 {
		return nil
	}
	ptr, ok := objs[0].Type().(*types.Pointer)
	if !ok {
		return nil
	}
	env := namedOf(ptr.Elem())
	if env == nil || env.Obj().Name() != "Env" || !sdkBase(env.Obj().Pkg()) {
		return nil
	}
	iface, ok := objs[1].Type().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return nil
	}
	return map[types.Object]bool{objs[1]: true}
}

// forTrip derives the constant trip count of a counted for loop
// (`for i := c0; i < n; i += k` with constant bounds), 0 when unknown.
func forTrip(st *ast.ForStmt, info *types.Info) int {
	init, ok := st.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return 0
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return 0
	}
	c0, ok := intConst(info, init.Rhs[0])
	if !ok {
		return 0
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return 0
	}
	if id, ok := cond.X.(*ast.Ident); !ok || id.Name != iv.Name {
		return 0
	}
	bound, ok := intConst(info, cond.Y)
	if !ok {
		return 0
	}
	step := 0
	switch post := st.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := post.X.(*ast.Ident); ok && id.Name == iv.Name && post.Tok == token.INC {
			step = 1
		}
	case *ast.AssignStmt:
		if post.Tok == token.ADD_ASSIGN && len(post.Lhs) == 1 && len(post.Rhs) == 1 {
			if id, ok := post.Lhs[0].(*ast.Ident); ok && id.Name == iv.Name {
				if k, ok := intConst(info, post.Rhs[0]); ok && k > 0 {
					step = k
				}
			}
		}
	}
	if step == 0 {
		return 0
	}
	switch cond.Op {
	case token.LSS:
	case token.LEQ:
		bound++
	default:
		return 0
	}
	iters := (bound - c0 + step - 1) / step
	if iters <= 0 || iters > tripCap {
		return 0
	}
	return iters
}

// rangeTrip derives the trip count of range-over-int and
// range-over-array loops, 0 otherwise.
func rangeTrip(st *ast.RangeStmt, info *types.Info) int {
	if n, ok := intConst(info, st.X); ok {
		if n > 0 && n <= tripCap {
			return n
		}
		return 0
	}
	tv, ok := info.Types[st.X]
	if !ok || tv.Type == nil {
		return 0
	}
	if arr, ok := derefType(tv.Type).Underlying().(*types.Array); ok {
		if n := int(arr.Len()); n > 0 && n <= tripCap {
			return n
		}
	}
	return 0
}

func intConst(info *types.Info, e ast.Expr) (int, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v < 0 || v > tripCap {
		return 0, false
	}
	return int(v), true
}

// collectEntries recovers the ecall→handler map from
// map[string]sdk.TrustedFn composite literals with constant keys and
// statically-resolvable function values.
func collectEntries(pkg *Package, out map[string]string) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			m, ok := tv.Type.Underlying().(*types.Map)
			if !ok {
				return true
			}
			elem := namedOf(m.Elem())
			if elem == nil || elem.Obj().Name() != "TrustedFn" || !sdkBase(elem.Obj().Pkg()) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				ktv, ok := pkg.Info.Types[kv.Key]
				if !ok || ktv.Value == nil || ktv.Value.Kind() != constant.String {
					continue
				}
				var fn *types.Func
				switch v := kv.Value.(type) {
				case *ast.SelectorExpr:
					if sel := pkg.Info.Selections[v]; sel != nil {
						fn, _ = sel.Obj().(*types.Func)
					} else {
						fn, _ = pkg.Info.Uses[v.Sel].(*types.Func)
					}
				case *ast.Ident:
					fn, _ = pkg.Info.Uses[v].(*types.Func)
				}
				if fn != nil {
					out[constant.StringVal(ktv.Value)] = fn.FullName()
				}
			}
			return true
		})
	}
}

// --- the exported interprocedural analysis (reused by staticlint) ---------

// A LoopCrossing is one boundary crossing reached inside a loop: either
// a direct dispatch at loop depth ≥ 1, or a looped call into a function
// that transitively dispatches.
type LoopCrossing struct {
	Pos  token.Position
	Func string
	// Ocall is the statically-known ocall name ("" when unknown).
	Ocall string
	// Via is the display name of the transitively-dispatching callee
	// for indirect sites, "" for direct dispatches.
	Via string
	// Depth is the static loop-nest depth of the site; Trip is the
	// product of the known constant trip counts of the enclosing loops
	// (0 when any of them is unknown).
	Depth int
	Trip  int
	// Conditional marks sites guarded by a branch.
	Conditional bool
}

// A DoubleFetch is one boundary-buffer expression read on both sides of
// an ocall crossing — the §3.6 TOCTOU shape.
type DoubleFetch struct {
	// Pos is the re-read after the crossing; FirstPos the initial
	// fetch; CrossPos the ocall dispatch between them.
	Pos      token.Position
	FirstPos token.Position
	CrossPos token.Position
	Func     string
	Expr     string
	Ocall    string
}

// A PtrEscape is one enclave pointer passed as an ocall argument.
type PtrEscape struct {
	Pos   token.Position
	Func  string
	Expr  string
	Ocall string
}

// An EntryPrediction is the static transition estimate for one ecall
// entry point: expected ocall dispatches per invocation.
type EntryPrediction struct {
	// Ecall is the wire name the TrustedFn map registers; Handler the
	// Go function implementing it.
	Ecall   string
	Handler string
	// Predicted is the expected number of ocall dispatches one
	// invocation executes, from the call-graph summaries (known loop
	// trips multiplied through; unknown trips count once).
	Predicted int
	// LoopUnknown marks predictions involving a loop (or recursion)
	// whose trip count is not statically known — Predicted is then a
	// lower bound.
	LoopUnknown bool
	// Conditional marks predictions counting branch-guarded dispatches
	// — Predicted is then an upper bound for those sites.
	Conditional bool
}

// An InterReport aggregates the interprocedural engine's raw findings
// for callers outside the lint driver (staticlint), suppression-blind
// like AnalyzeSync.
type InterReport struct {
	Loops   []LoopCrossing
	Fetches []DoubleFetch
	Escapes []PtrEscape
	Entries []EntryPrediction
}

// AnalyzeInterproc parses and type-checks the tree under root and runs
// the interprocedural boundary analysis. The whole tree builds the call
// graph (so cross-package callees resolve); loop crossings, double
// fetches and pointer escapes are reported only for functions in
// packages whose root-relative directory starts with one of the given
// prefixes (all packages when none are given), and entry predictions
// only for TrustedFn maps found there.
func AnalyzeInterproc(root string, dirs []string) (*InterReport, error) {
	tree, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeInterprocTree(tree, dirs), nil
}

// AnalyzeInterprocTree is AnalyzeInterproc over an already-loaded tree,
// sharing its cached types and call graph with other analyses.
func AnalyzeInterprocTree(tree *Tree, dirs []string) *InterReport {
	fset := tree.Fset
	ip := tree.interprocFor(nil)
	scope := &Analyzer{Name: "interproc", Packages: dirs}

	report := &InterReport{}
	for _, full := range ip.order {
		fn := ip.funcs[full]
		if !scope.applies(fn.pkg.Dir) {
			continue
		}
		for _, lc := range ip.loopCrossings(fn) {
			report.Loops = append(report.Loops, LoopCrossing{
				Pos: fset.Position(lc.pos), Func: fn.name, Ocall: lc.ocall,
				Via: lc.via, Depth: lc.depth, Trip: lc.trip, Conditional: lc.cond,
			})
		}
		for _, f := range fn.fetches {
			report.Fetches = append(report.Fetches, DoubleFetch{
				Pos: fset.Position(f.pos), FirstPos: fset.Position(f.firstPos),
				CrossPos: fset.Position(f.crossPos), Func: fn.name, Expr: f.expr, Ocall: f.ocall,
			})
		}
		for _, e := range fn.escapes {
			report.Escapes = append(report.Escapes, PtrEscape{
				Pos: fset.Position(e.pos), Func: fn.name, Expr: e.expr, Ocall: e.ocall,
			})
		}
	}

	// Entry predictions, for the TrustedFn maps registered in scope.
	scopedEntries := make(map[string]string)
	for _, pkg := range tree.Pkgs {
		if pkg.Info == nil || !scope.applies(pkg.Dir) {
			continue
		}
		collectEntries(pkg, scopedEntries)
	}
	names := make([]string, 0, len(scopedEntries))
	for n := range scopedEntries {
		names = append(names, n)
	}
	sort.Strings(names)
	memo := make(map[string]predInfo)
	for _, name := range names {
		full := scopedEntries[name]
		fn := ip.funcs[full]
		if fn == nil {
			continue
		}
		p := ip.pred(full, memo, make(map[string]bool))
		report.Entries = append(report.Entries, EntryPrediction{
			Ecall: name, Handler: fn.name, Predicted: p.n,
			LoopUnknown: p.loopUnknown, Conditional: p.cond,
		})
	}
	return report
}

// An ipLoop is the raw (token.Pos-keyed) form of a LoopCrossing, kept
// separate so the analyzer can feed Reportf's suppression matching.
type ipLoop struct {
	pos   token.Pos
	ocall string
	via   string
	depth int
	trip  int
	cond  bool
}

// loopCrossings lifts one function's summary into loop-crossing facts:
// direct ocall dispatches at depth ≥ 1, plus looped calls into
// transitively-dispatching callees.
func (ip *interproc) loopCrossings(fn *ipFunc) []ipLoop {
	var out []ipLoop
	for _, c := range fn.crossings {
		if c.kind != CrossOcall || c.depth == 0 {
			continue
		}
		out = append(out, ipLoop{
			pos: c.pos, ocall: c.name,
			depth: c.depth, trip: c.trip, cond: c.cond,
		})
	}
	for _, call := range fn.calls {
		if call.depth == 0 || !ip.crosses[call.callee] {
			continue
		}
		out = append(out, ipLoop{
			pos: call.pos, via: shortName(call.callee),
			depth: call.depth, trip: call.trip, cond: call.cond,
		})
	}
	return out
}
