// Package lint is a small static-analysis framework for the repository's
// own invariants, mirroring the golang.org/x/tools go/analysis API shape
// (Analyzer → Pass → Diagnostic) on the standard library's go/ast,
// go/parser and go/types alone, so the tree stays dependency-free.
//
// Ten invariants matter enough to machine-check here:
//
//   - the simulator runs on virtual time, so wall-clock reads in
//     simulator packages are bugs even when tests pass (see VirtualClock);
//   - the logger's hot path is lock-free by design (one shard-local lock
//     at most), so Logger-level mutex acquisition in a hot-path method is
//     a regression even when the race detector stays quiet (see
//     HotPathLocks);
//   - locks must be acquired in one global order, so the whole-repo
//     acquisition graph must stay acyclic (see LockOrder);
//   - no mutex may be held across a blocking boundary — channel
//     operations, worker-pool fan-outs, ocall dispatch — because a
//     blocked holder stalls every contender, the exact shape the paper
//     prices as sleep ocalls in §2.3.2/§3.4 (see HeldAcross);
//   - a field is either atomic or lock-guarded, never both (see
//     AtomicMix);
//   - no ocall dispatch inside a loop, directly or through a callee
//     that transitively dispatches — transitions multiply by the trip
//     count, the amplification §6 fixes by batching (see TransAmp);
//   - an ecall handler reads each boundary-buffer expression on one
//     side of an ocall crossing only — a re-read after the crossing is
//     the §3.6 TOCTOU shape (see DoubleFetchCheck);
//   - no enclave pointer escapes through an ocall argument (see
//     PtrEscapeCheck);
//   - enclave-confidential data (//sgxperf:secret declarations) never
//     reaches a boundary sink — an ocall argument, a copy-back field,
//     a user_check write — without passing a seal/encrypt function
//     (see SecretFlowCheck);
//   - what an ecall handler does to its boundary buffer matches the
//     directions its EDL declares: in params stay unwritten, out params
//     are written before read, user_check pointers are bounds-guarded
//     before dereference (see EDLFlowCheck).
//
// The lockorder/heldacross/atomicmix trio runs on a typed
// intraprocedural dataflow engine (dataflow.go) that tracks lock-held
// sets through control flow and summarises which functions transitively
// block; the last three run on the interprocedural call-graph layer
// above it (interproc.go), whose per-function summaries also power the
// staticlint transition predictor; the secretflow/edlflow pair runs on
// the field-sensitive taint engine (taint.go) that composes
// taint-in/taint-out summaries over the same call graph. Findings are
// suppressible
// site-by-site with a justified //sgxperf:allow(name) annotation (see
// typecheck.go); lock-order edges with an intentional hierarchy carry
// //sgxperf:lockorder instead.
//
// The cmd/sgx-perf-vet driver runs every analyzer over the tree; `make
// verify` runs the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzers returns the full analyzer suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VirtualClock, HotPathLocks, LockOrder, HeldAcross, AtomicMix,
		TransAmp, DoubleFetchCheck, PtrEscapeCheck,
		SecretFlowCheck, EDLFlowCheck,
	}
}

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description the driver prints.
	Doc string
	// Packages restricts the analyzer to packages whose root-relative
	// directory has one of these prefixes. Empty means every package.
	Packages []string
	// NeedTypes requests go/types resolution for the whole tree before
	// the analyzer runs (the dataflow analyzers set it).
	NeedTypes bool
	// Run inspects one package and reports diagnostics through the pass.
	// Nil for repo-level analyzers.
	Run func(*Pass) error
	// RunRepo inspects every in-scope package at once — for analyses
	// whose facts span packages, like the lock-acquisition-order graph.
	// Nil for per-package analyzers.
	RunRepo func(*RepoPass) error
}

// applies reports whether the analyzer covers the given package dir.
func (a *Analyzer) applies(relDir string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	rel := filepath.ToSlash(relDir)
	for _, p := range a.Packages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// A Pass hands one parsed (and possibly type-checked) package to an
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package under analysis; Files and Dir mirror its fields
	// for the pre-types analyzers.
	Pkg   *Package
	Files []*ast.File
	Dir   string

	tree   *Tree
	allows *allowSet
	diags  *[]Diagnostic
}

// Interproc returns the tree-shared whole-repo call graph (see
// Tree.interprocFor); per-function facts must be filtered to Pkg.
func (p *Pass) Interproc() *interproc {
	return p.tree.interprocFor(nil)
}

// Reportf records a diagnostic at the given position unless an
// //sgxperf:allow(analyzer) annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allows.allowed(p.Analyzer.Name, pos) {
		return
	}
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A RepoPass hands every in-scope package to a repo-level analyzer.
type RepoPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are the in-scope packages, sorted by Dir.
	Pkgs []*Package

	tree   *Tree
	allows *allowSet
	diags  *[]Diagnostic
}

// Engine returns the tree-shared dataflow engine summarising this
// pass's scope, with callbacks cleared (see Tree.engineFor).
func (p *RepoPass) Engine() *engine {
	return p.tree.engineFor(p.Analyzer.Packages)
}

// Interproc returns the tree-shared call graph over this pass's scope
// (see Tree.interprocFor).
func (p *RepoPass) Interproc() *interproc {
	return p.tree.interprocFor(p.Analyzer.Packages)
}

// Reportf records a diagnostic at the given position unless an
// //sgxperf:allow(analyzer) annotation covers it.
func (p *RepoPass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allows.allowed(p.Analyzer.Name, pos) {
		return
	}
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run parses every Go package under root and applies the analyzers,
// returning the diagnostics sorted and deduplicated by
// (file, line, analyzer). Test files, testdata trees and hidden
// directories are skipped; parse errors abort the run — the build is
// broken anyway. Type errors never abort: checking is tolerant and
// analyzers skip what they cannot resolve.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	tree, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return RunTree(tree, analyzers)
}

// RunTree applies the analyzers to an already-loaded tree, sharing its
// cached type information, directive sets and engine summaries. Callers
// that run several analyses over the same root (the vet driver, the
// staticlint source pass) load one Tree and reuse it.
func RunTree(tree *Tree, analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if a.NeedTypes {
			tree.ensureTypes()
			break
		}
	}
	allows := tree.allowSet()

	var diags []Diagnostic
	for _, pkg := range tree.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil || !a.applies(pkg.Dir) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     tree.Fset,
				Pkg:      pkg,
				Files:    pkg.Files,
				Dir:      pkg.Dir,
				tree:     tree,
				allows:   allows,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Dir, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunRepo == nil {
			continue
		}
		pass := &RepoPass{
			Analyzer: a,
			Fset:     tree.Fset,
			Pkgs:     tree.scoped(a.Packages),
			tree:     tree,
			allows:   allows,
			diags:    &diags,
		}
		if err := a.RunRepo(pass); err != nil {
			return diags, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}

	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	diags = append(diags, allows.problems(active)...)
	return dedupe(diags), nil
}

// dedupe sorts diagnostics by position and collapses duplicates with the
// same (file, line, analyzer) key, keeping the first message, so driver
// output is deterministic across runs and usable as a golden file.
func dedupe(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := diags[i-1]
			if prev.Pos.Filename == d.Pos.Filename && prev.Pos.Line == d.Pos.Line &&
				prev.Analyzer == d.Analyzer {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// parseTree parses all non-test Go files under root, grouped by their
// directory relative to root.
func parseTree(root string) ([]*Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	byDir := make(map[string][]*ast.File)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		byDir[rel] = append(byDir[rel], file)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		files := byDir[dir]
		sort.Slice(files, func(i, j int) bool {
			return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
		})
		pkgs = append(pkgs, &Package{Dir: dir, Files: files})
	}
	return pkgs, fset, nil
}

// importName returns the local name under which file imports the given
// path: the alias if renamed, the default base name otherwise, "" if the
// path is not imported, and "." for dot imports.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
