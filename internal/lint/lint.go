// Package lint is a small static-analysis framework for the repository's
// own invariants, mirroring the golang.org/x/tools go/analysis API shape
// (Analyzer → Pass → Diagnostic) on the standard library's go/ast and
// go/parser alone, so the tree stays dependency-free.
//
// Two invariants matter enough to machine-check here:
//
//   - the simulator runs on virtual time, so wall-clock reads in
//     simulator packages are bugs even when tests pass (see VirtualClock);
//   - the logger's hot path is lock-free by design (one shard-local lock
//     at most), so Logger-level mutex acquisition in a hot-path method is
//     a regression even when the race detector stays quiet (see
//     HotPathLocks).
//
// The cmd/sgx-perf-vet driver runs every analyzer over the tree; `make
// verify` runs the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzers returns the full analyzer suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{VirtualClock, HotPathLocks}
}

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description the driver prints.
	Doc string
	// Packages restricts the analyzer to packages whose root-relative
	// directory has one of these prefixes. Empty means every package.
	Packages []string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// applies reports whether the analyzer covers the given package dir.
func (a *Analyzer) applies(relDir string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	rel := filepath.ToSlash(relDir)
	for _, p := range a.Packages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// A Pass hands one parsed package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test sources, sorted by filename.
	Files []*ast.File
	// Dir is the package directory relative to the analysis root.
	Dir string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run parses every Go package under root and applies the analyzers,
// returning the diagnostics sorted by position. Test files, testdata
// trees and hidden directories are skipped; parse errors abort the run —
// the build is broken anyway.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, fset, err := parseTree(root)
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var diags []Diagnostic
	for _, dir := range dirs {
		for _, a := range analyzers {
			if !a.applies(dir) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkgs[dir],
				Dir:      dir,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("lint: %s on %s: %w", a.Name, dir, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// parseTree parses all non-test Go files under root, grouped by their
// directory relative to root.
func parseTree(root string) (map[string][]*ast.File, *token.FileSet, error) {
	fset := token.NewFileSet()
	pkgs := make(map[string][]*ast.File)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgs[rel] = append(pkgs[rel], file)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, files := range pkgs {
		sort.Slice(files, func(i, j int) bool {
			return fset.Position(files[i].Package).Filename < fset.Position(files[j].Package).Filename
		})
	}
	return pkgs, fset, nil
}

// importName returns the local name under which file imports the given
// path: the alias if renamed, the default base name otherwise, "" if the
// path is not imported, and "." for dot imports.
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
