package lint

import (
	"strings"
	"testing"
)

// sdkStub is a minimal SDK lookalike: interproc classification is
// name-based (type name + package basename "sdk"), so fixture trees
// exercise the same code paths the real sgxperf/internal/sdk does.
const sdkStub = `package sdk

type Env struct{}

func (e *Env) Ocall(name string, args any) (any, error)   { return nil, nil }
func (e *Env) OcallByID(id uint64, args any) (any, error) { return nil, nil }

type Mutex struct{}

func (m *Mutex) Lock(env *Env) error   { return nil }
func (m *Mutex) Unlock(env *Env) error { return nil }

type TrustedFn func(env *Env, args any) (any, error)

type Proxy func(args any) (any, error)
`

func TestTransAmpFlagsDirectAndTransitiveLoops(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/workloads/enclave/enclave.go": `package enclave

import "lintfixture/internal/sdk"

// Direct: a counted loop around a dispatch.
func flushAll(env *sdk.Env) error {
	for i := 0; i < 8; i++ {
		if _, err := env.Ocall("ocall_put_chunk", i); err != nil {
			return err
		}
	}
	return nil
}

// Transitive: the loop body calls a helper that dispatches.
func drain(env *sdk.Env, items []int) error {
	for range items {
		if err := putOne(env); err != nil {
			return err
		}
	}
	return nil
}

func putOne(env *sdk.Env) error {
	_, err := env.Ocall("ocall_put_one", nil)
	return err
}

// A single dispatch outside any loop is the fix, not a finding.
func flushOnce(env *sdk.Env) error {
	_, err := env.Ocall("ocall_put_batch", nil)
	return err
}

// Ecall dispatch through a proxy in a loop is the untrusted driver's
// job, not amplification the enclave can batch away.
func drive(p sdk.Proxy) {
	for i := 0; i < 100; i++ {
		p(i)
	}
}
`,
	})
	diags, err := Run(root, []*Analyzer{TransAmp})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2", messages(diags))
	}
	direct, transitive := diags[0], diags[1]
	if !strings.Contains(direct.Message, `ocall "ocall_put_chunk"`) ||
		!strings.Contains(direct.Message, "8 iterations") {
		t.Errorf("direct finding = %q, want ocall_put_chunk at 8 iterations", direct.Message)
	}
	if !strings.Contains(transitive.Message, "putOne") ||
		!strings.Contains(transitive.Message, "transitively dispatches") ||
		!strings.Contains(transitive.Message, "unknown number of iterations") {
		t.Errorf("transitive finding = %q, want looped call into putOne", transitive.Message)
	}
}

func TestTransAmpOutOfScopePackagesAreIgnored(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/serve/loop.go": `package serve

import "lintfixture/internal/sdk"

func pump(env *sdk.Env) {
	for {
		env.Ocall("ocall_tick", nil)
	}
}
`,
	})
	diags, err := Run(root, []*Analyzer{TransAmp})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none outside internal/workloads+internal/sdk", messages(diags))
	}
}

func TestDoubleFetchFlagsReReadAcrossCrossing(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/enclave/handlers.go": `package enclave

import "lintfixture/internal/sdk"

type PutArgs struct {
	Key string
	Len int
}

// The §3.6 shape: a.Len validated before the crossing, trusted again
// after it.
func handlePut(env *sdk.Env, args any) (any, error) {
	a, _ := args.(*PutArgs)
	if a.Len > 64 {
		return nil, nil
	}
	if _, err := env.Ocall("ocall_log", a.Key); err != nil {
		return nil, err
	}
	return a.Len, nil
}

// Copy-once is the fix: every read happens before the dispatch.
func handleGet(env *sdk.Env, args any) (any, error) {
	a, _ := args.(*PutArgs)
	n := a.Len
	if _, err := env.Ocall("ocall_log", a.Key); err != nil {
		return nil, err
	}
	return n, nil
}

// Not a handler shape: boundary tracking does not apply.
func helper(env *sdk.Env, a *PutArgs) (any, error) {
	if a.Len > 64 {
		return nil, nil
	}
	env.Ocall("ocall_log", nil)
	return a.Len, nil
}
`,
	})
	diags, err := Run(root, []*Analyzer{DoubleFetchCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "a.Len") ||
		!strings.Contains(diags[0].Message, `ocall "ocall_log"`) ||
		!strings.Contains(diags[0].Message, "handlePut") {
		t.Errorf("finding = %q, want a.Len re-read across ocall_log in handlePut", diags[0].Message)
	}
}

func TestDoubleFetchWriteIsNotARead(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/enclave/handlers.go": `package enclave

import "lintfixture/internal/sdk"

type Reply struct{ N int }

// Storing the result into the boundary buffer after the crossing is a
// write-back, not a double fetch.
func handle(env *sdk.Env, args any) (any, error) {
	a, _ := args.(*Reply)
	if _, err := env.Ocall("ocall_fill", a.N); err != nil {
		return nil, err
	}
	a.N = 7
	return nil, nil
}
`,
	})
	diags, err := Run(root, []*Analyzer{DoubleFetchCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none for a write-back", messages(diags))
	}
}

func TestPtrEscapeFlagsAddressArguments(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/enclave/share.go": `package enclave

import "lintfixture/internal/sdk"

type state struct{ table [4]int }

type Note struct{ ID int }

var s state

// The untrusted side keeps &s.table after the call returns.
func share(env *sdk.Env) error {
	_, err := env.Ocall("ocall_register", &s.table)
	return err
}

// A fresh composite literal is a value built for the call, not enclave
// state.
func note(env *sdk.Env) error {
	_, err := env.Ocall("ocall_note", &Note{ID: 1})
	return err
}
`,
	})
	diags, err := Run(root, []*Analyzer{PtrEscapeCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "&s.table") ||
		!strings.Contains(diags[0].Message, `ocall "ocall_register"`) {
		t.Errorf("finding = %q, want &s.table escaping through ocall_register", diags[0].Message)
	}
}

func TestInterprocAllowSuppressionAndStaleness(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/workloads/enclave/enclave.go": `package enclave

import "lintfixture/internal/sdk"

func retryWake(env *sdk.Env) error {
	for {
		//sgxperf:allow(transamp) one wake ocall per park round by design
		if _, err := env.Ocall("ocall_wake", nil); err == nil {
			return nil
		}
	}
}

// Nothing to suppress on the next line: both stale.
//sgxperf:allow(doublefetch) justified but pointless
func quiet() {}

//sgxperf:allow(ptrescape) justified but pointless
func alsoQuiet() {}
`,
	})
	diags, err := Run(root, []*Analyzer{TransAmp, DoubleFetchCheck, PtrEscapeCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want the two stale allows only", messages(diags))
	}
	for i, want := range []string{"doublefetch", "ptrescape"} {
		if !strings.Contains(diags[i].Message, "stale //sgxperf:allow("+want+")") {
			t.Errorf("diags[%d] = %q, want stale %s allow", i, diags[i].Message, want)
		}
	}
}

func TestAnalyzeInterprocPredictions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sdk/sdk.go": sdkStub,
		"internal/enclave/enclave.go": `package enclave

import "lintfixture/internal/sdk"

var impls = map[string]sdk.TrustedFn{
	"ecall_flush": handleFlush,
	"ecall_maybe": handleMaybe,
	"ecall_drain": handleDrain,
	"ecall_deep":  handleDeep,
}

// 8 iterations × 1 dispatch: predicted 8, exact.
func handleFlush(env *sdk.Env, args any) (any, error) {
	for i := 0; i < 8; i++ {
		if _, err := env.Ocall("ocall_put", i); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Branch-guarded dispatch: predicted 1, conditional.
func handleMaybe(env *sdk.Env, args any) (any, error) {
	if args != nil {
		return env.Ocall("ocall_spill", args)
	}
	return nil, nil
}

// Unknown trip count: predicted counts the site once, loop-unknown.
func handleDrain(env *sdk.Env, args any) (any, error) {
	n, _ := args.(int)
	for n > 0 {
		if _, err := env.Ocall("ocall_pop", nil); err != nil {
			return nil, err
		}
		n--
	}
	return nil, nil
}

// Transitive with multiplication: 3 × (2 × 1) = 6 dispatches.
func handleDeep(env *sdk.Env, args any) (any, error) {
	for i := 0; i < 3; i++ {
		if err := pair(env); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func pair(env *sdk.Env) error {
	for i := 0; i < 2; i++ {
		if _, err := env.Ocall("ocall_half", i); err != nil {
			return err
		}
	}
	return nil
}
`,
	})
	rep, err := AnalyzeInterproc(root, []string{"internal/enclave"})
	if err != nil {
		t.Fatal(err)
	}
	want := []EntryPrediction{
		{Ecall: "ecall_deep", Handler: "handleDeep", Predicted: 6},
		{Ecall: "ecall_drain", Handler: "handleDrain", Predicted: 1, LoopUnknown: true},
		{Ecall: "ecall_flush", Handler: "handleFlush", Predicted: 8},
		{Ecall: "ecall_maybe", Handler: "handleMaybe", Predicted: 1, Conditional: true},
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("entries = %+v, want %d", rep.Entries, len(want))
	}
	for i, w := range want {
		if rep.Entries[i] != w {
			t.Errorf("entries[%d] = %+v, want %+v", i, rep.Entries[i], w)
		}
	}
	// The loop facts are exported too (handleFlush, handleDrain,
	// handleDeep's call into pair, pair's own loop).
	if len(rep.Loops) != 4 {
		t.Errorf("loops = %+v, want 4", rep.Loops)
	}
}
