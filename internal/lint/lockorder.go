package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// lockOrderDirective marks an acquisition site as part of an intentional
// lock hierarchy, exempting the edges it creates from cycle detection:
//
//	//sgxperf:lockorder shard locks nest under the registry lock by design
//	sh.mu.Lock()
//
// Like //sgxperf:allow, the justification is mandatory and a directive
// that exempts no edge is reported as stale.
const lockOrderDirective = "//sgxperf:lockorder"

var lockOrderRE = regexp.MustCompile(`^//sgxperf:lockorder\s*(.*)$`)

// LockOrder builds the whole-repo lock-acquisition-order graph — an edge
// A→B for every site that acquires B while holding A, with locks named by
// their declaration (package, struct, field) so instances unify — and
// reports every cycle as a potential deadlock. Locks whose identity
// cannot be resolved to a declaration (locals, values reached through
// calls) never enter the graph.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "keep the whole-repo lock-acquisition-order graph acyclic; a cycle " +
		"is a potential deadlock the race detector only finds when the " +
		"schedule cooperates",
	NeedTypes: true,
	RunRepo:   runLockOrder,
}

// A lockEdge is one ordered pair in the acquisition graph.
type lockEdge struct {
	from, to LockID
}

// edgeInfo keeps the earliest site witnessing an edge.
type edgeInfo struct {
	pos     token.Pos // where `to` was acquired
	fromPos token.Pos // where `from` was acquired on that path
	fn      string
}

type edgeSet struct {
	edges map[lockEdge]edgeInfo
	// exempt reports acquisition sites carrying //sgxperf:lockorder; nil
	// means no exemptions (the raw AnalyzeSync path).
	exempt *markSet
}

func newEdgeSet() *edgeSet {
	return &edgeSet{edges: make(map[lockEdge]edgeInfo)}
}

// add records held→op edges for one acquisition.
func (es *edgeSet) add(fset *token.FileSet, fn *dfFunc, held []heldLock, op lockOp, pos token.Pos) {
	if op.id.local {
		return
	}
	edgeWorthy := false
	for _, h := range held {
		if !h.id.local && h.id != op.id {
			edgeWorthy = true
		}
	}
	// The exempt check runs only when this site actually creates an edge,
	// so a directive on an outermost acquisition is correctly stale.
	if !edgeWorthy || (es.exempt != nil && es.exempt.covers(pos)) {
		return
	}
	for _, h := range held {
		if h.id.local || h.id == op.id {
			continue
		}
		e := lockEdge{from: h.id, to: op.id}
		if old, ok := es.edges[e]; ok {
			// Keep the earliest witness, by position, for determinism.
			if posLess(fset.Position(old.pos), fset.Position(pos)) {
				continue
			}
		}
		es.edges[e] = edgeInfo{pos: pos, fromPos: h.pos, fn: fn.name}
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// cycles runs Tarjan's SCC over the edge graph and renders every
// component with a cycle (more than one lock, or a self-edge) as a Cycle,
// sorted by report position.
func (es *edgeSet) cycles(fset *token.FileSet) []Cycle {
	adj := make(map[LockID][]LockID)
	nodes := make(map[LockID]bool)
	for e := range es.edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	order := make([]LockID, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return lockIDLess(order[i], order[j]) })
	for _, out := range adj {
		sort.Slice(out, func(i, j int) bool { return lockIDLess(out[i], out[j]) })
	}

	t := &tarjan{adj: adj, index: make(map[LockID]int), low: make(map[LockID]int), onStack: make(map[LockID]bool)}
	for _, n := range order {
		if _, seen := t.index[n]; !seen {
			t.strongConnect(n)
		}
	}

	var out []Cycle
	for _, scc := range t.sccs {
		if len(scc) == 1 {
			self := lockEdge{from: scc[0], to: scc[0]}
			if _, ok := es.edges[self]; !ok {
				continue
			}
		}
		out = append(out, es.renderCycle(fset, scc))
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].Pos, out[j].Pos) })
	return out
}

func lockIDLess(a, b LockID) bool {
	if a.Pkg != b.Pkg {
		return a.Pkg < b.Pkg
	}
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	return a.Field < b.Field
}

// renderCycle builds the report for one strongly-connected component:
// the member locks and every witnessed edge between them.
func (es *edgeSet) renderCycle(fset *token.FileSet, scc []LockID) Cycle {
	in := make(map[LockID]bool, len(scc))
	for _, l := range scc {
		in[l] = true
	}
	sort.Slice(scc, func(i, j int) bool { return lockIDLess(scc[i], scc[j]) })

	type edgeLine struct {
		pos  token.Position
		line string
	}
	var lines []edgeLine
	for e, info := range es.edges {
		if !in[e.from] || !in[e.to] {
			continue
		}
		p := fset.Position(info.pos)
		lines = append(lines, edgeLine{
			pos: p,
			line: fmt.Sprintf("%s acquired while holding %s in %s at %s:%d",
				e.to, e.from, info.fn, p.Filename, p.Line),
		})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].pos != lines[j].pos {
			return posLess(lines[i].pos, lines[j].pos)
		}
		return lines[i].line < lines[j].line
	})

	c := Cycle{Pos: lines[0].pos, reportPos: token.NoPos}
	for _, l := range scc {
		c.Locks = append(c.Locks, l)
	}
	for e, info := range es.edges {
		if in[e.from] && in[e.to] && fset.Position(info.pos) == c.Pos {
			c.reportPos = info.pos
		}
	}
	for _, l := range lines {
		c.Edges = append(c.Edges, l.line)
	}
	return c
}

func runLockOrder(p *RepoPass) error {
	e := p.Engine()
	es := newEdgeSet()
	es.exempt = collectLockOrderMarks(p.Fset, p.Pkgs)
	e.onAcquire = func(fn *dfFunc, held []heldLock, op lockOp, pos token.Pos) {
		es.add(p.Fset, fn, held, op, pos)
	}
	for _, pkg := range p.Pkgs {
		e.walkPackage(pkg)
	}
	for _, c := range es.cycles(p.Fset) {
		names := make([]string, len(c.Locks))
		for i, l := range c.Locks {
			names[i] = l.String()
		}
		p.Reportf(c.reportPos,
			"lock-order cycle between %s — a potential deadlock: %s; "+
				"acquire them in one global order, or annotate an intentional hierarchy with %s",
			strings.Join(names, " and "), strings.Join(c.Edges, "; "), lockOrderDirective)
	}
	for _, d := range es.exempt.problems("lockorder") {
		*p.diags = append(*p.diags, d)
	}
	return nil
}

// tarjan is the classic iterative-enough SCC computation (recursion depth
// is bounded by the number of distinct locks, a few dozen at most).
type tarjan struct {
	adj     map[LockID][]LockID
	index   map[LockID]int
	low     map[LockID]int
	onStack map[LockID]bool
	stack   []LockID
	counter int
	sccs    [][]LockID
}

func (t *tarjan) strongConnect(v LockID) {
	t.index[v] = t.counter
	t.low[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onStack[v] = true
	for _, w := range t.adj[v] {
		if _, seen := t.index[w]; !seen {
			t.strongConnect(w)
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.onStack[w] && t.index[w] < t.low[v] {
			t.low[v] = t.index[w]
		}
	}
	if t.low[v] == t.index[v] {
		var scc []LockID
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onStack[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

// --- directive bookkeeping ------------------------------------------------

// a markSet locates //sgxperf:lockorder directives by (file, line). It is
// the shared directiveSet with the directive name fixed to "lockorder".
type markSet struct {
	*directiveSet
}

// collectLockOrderMarks scans every comment for lockorder directives.
func collectLockOrderMarks(fset *token.FileSet, pkgs []*Package) *markSet {
	return &markSet{collectDirectives(fset, pkgs, lockOrderRE, "lockorder")}
}

// covers reports whether an acquisition at pos is marked, on its own line
// or the line above.
func (ms *markSet) covers(pos token.Pos) bool {
	if ms == nil {
		return false
	}
	return ms.directiveSet.covers("lockorder", pos)
}

// problems mirrors allowSet.problems for the lockorder directive: a mark
// needs a justification, and a mark exempting nothing is stale.
func (ms *markSet) problems(analyzer string) []Diagnostic {
	diags := ms.directiveSet.problems(nil,
		func(string) string { return lockOrderDirective + " needs a one-line justification" },
		func(string) string {
			return "stale " + lockOrderDirective + ": no acquisition edge here to exempt; remove the annotation"
		})
	for i := range diags {
		diags[i].Analyzer = analyzer
	}
	return diags
}
