// Secret-flow taint analysis: the §3.6 confidentiality counterpart of
// the interprocedural boundary-cost model. Where interproc.go asks "how
// many transitions does an entry point execute?", this file asks "does
// enclave-confidential data reach the untrusted side un-sealed?" and
// cross-validates what handlers actually do against what the EDL
// declares.
//
// Sources are declarations carrying a //sgxperf:secret directive —
// struct fields holding sealed-key material, trusted-only state, secret
// parameters. Taint propagates field-sensitively (k.sealKey is tracked
// apart from k.pub) through assignments, field selects, index/slice
// expressions, composite literals and calls; per-function summaries
// carry taint-in/taint-out bits (param reaches sink, param flows to
// result, result born secret) so flows compose across the call graph the
// same way interproc.go's transition counts do. A call whose callee name
// contains "seal" or "encrypt" is a recognised sanitizer: its result is
// clean, which is exactly the discipline the analysis enforces.
//
// Sinks are the three ways data crosses to the untrusted side:
//
//   - an ocall argument buffer (env.Ocall / env.OcallByID arguments);
//   - a write into the boundary args buffer of a TrustedFn handler whose
//     field maps to an out/inout EDL parameter (copied back on return);
//   - a write through a field mapping to a user_check EDL parameter
//     (untrusted memory the SDK never copies or checks).
//
// Each flow records a full witness chain — source declaration, every
// assignment and call hop, the sink — so a diagnostic reads as a path,
// not a verdict.
//
// The EDL side is recovered statically from iface.AddEcall/AddOcall
// builder calls (receiver type Interface in a package whose basename is
// "edl", matching interproc.go's name-based SDK classification), giving
// the edlflow analyzer the declared directions to validate handlers
// against: an `in` parameter the handler writes should be `inout`; an
// `out` parameter read before its first write leaks stale enclave
// memory to the caller; a user_check pointer dereferenced without a
// prior bounds guard is the unchecked-pointer hazard §3.6 warns about.
//
// Approximations, chosen like interproc.go's for low false-positive
// pressure: function-literal bodies are not walked; method receivers do
// not carry taint into callees; bare returns of named results are not
// tracked; and taint through an unresolved callee is propagated
// conservatively (any tainted argument taints the result) unless the
// callee is a recognised sanitizer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"sort"
	"strings"
)

// secretDirective marks one declaration as enclave-confidential:
//
//	//sgxperf:secret the long-term sealing key never leaves the enclave
//	sealKey [32]byte
//
// Like //sgxperf:allow, the justification is mandatory and a marker on
// no declaration is reported as stale.
const secretDirective = "//sgxperf:secret"

var secretRE = regexp.MustCompile(`^//sgxperf:secret\s*(.*)$`)

// a secretSet locates //sgxperf:secret directives; it is the shared
// directiveSet with the directive name fixed to "secret".
type secretSet struct {
	*directiveSet
}

func collectSecretMarks(fset *token.FileSet, pkgs []*Package) *secretSet {
	return &secretSet{collectDirectives(fset, pkgs, secretRE, "secret")}
}

// marks reports whether a declaration at pos carries the directive, on
// its own line or the line above.
func (ss *secretSet) marks(pos token.Pos) bool {
	if ss == nil {
		return false
	}
	return ss.directiveSet.covers("secret", pos)
}

// problems mirrors allowSet.problems: a secret marker needs a
// justification, and a marker on no declaration is stale.
func (ss *secretSet) problems(analyzer string) []Diagnostic {
	diags := ss.directiveSet.problems(nil,
		func(string) string { return secretDirective + " needs a one-line justification" },
		func(string) string {
			return "stale " + secretDirective + ": no declaration here to mark; remove the annotation"
		})
	for i := range diags {
		diags[i].Analyzer = analyzer
	}
	return diags
}

// SecretFlowCheck flags enclave-confidential data reaching a boundary
// sink without passing a recognised seal/encrypt function: an ocall
// argument, a copy-back (out/inout) field of the boundary args buffer,
// or a write through a user_check field. The diagnostic carries the
// full source→…→sink witness chain. Deliberate flows carry
// //sgxperf:allow(secretflow) with a one-line justification.
var SecretFlowCheck = &Analyzer{
	Name: "secretflow",
	Doc: "track //sgxperf:secret data to boundary sinks: a secret crossing " +
		"to the untrusted side without sealing is a leak",
	NeedTypes: true,
	RunRepo:   runSecretFlow,
}

func runSecretFlow(p *RepoPass) error {
	g := p.tree.taintGraph()
	scope := make(map[*Package]bool, len(p.Pkgs))
	for _, pkg := range p.Pkgs {
		scope[pkg] = true
	}
	for _, fl := range g.flows {
		if !scope[fl.fn.pkg] {
			continue
		}
		p.Reportf(fl.sink.pos,
			"%s leaks %s to %s without sealing: %s; seal or encrypt it before the crossing, or justify with //sgxperf:allow(secretflow)",
			fl.fn.name, fl.src.desc, fl.sink.desc, chainString(p.Fset, fl.chain))
	}
	for _, d := range g.secrets.problems(p.Analyzer.Name) {
		*p.diags = append(*p.diags, d)
	}
	return nil
}

// EDLFlowCheck cross-validates ecall handlers against the directions
// their EDL declares (recovered from the AddEcall builder calls): an
// `in` parameter the handler writes should be declared `inout`; an
// `out` parameter read before its first write hands the caller stale
// enclave memory; a user_check field dereferenced before any branch
// condition mentions it is an unchecked untrusted pointer. Intentional
// shapes carry //sgxperf:allow(edlflow) with a one-line justification.
var EDLFlowCheck = &Analyzer{
	Name: "edlflow",
	Doc: "cross-validate ecall handlers against declared EDL directions: " +
		"written in params, stale out reads, unguarded user_check derefs",
	NeedTypes: true,
	RunRepo:   runEDLFlow,
}

func runEDLFlow(p *RepoPass) error {
	g := p.tree.taintGraph()
	scope := make(map[*Package]bool, len(p.Pkgs))
	for _, pkg := range p.Pkgs {
		scope[pkg] = true
	}
	for _, is := range g.issues {
		if !scope[is.fn.pkg] {
			continue
		}
		p.Reportf(is.pos, "%s; fix the handler or the EDL, or justify with //sgxperf:allow(edlflow)", is.detail)
	}
	return nil
}

// chainString renders a witness chain as a compact path.
func chainString(fset *token.FileSet, chain []tstep) string {
	parts := make([]string, 0, len(chain))
	for _, s := range chain {
		p := fset.Position(s.pos)
		parts = append(parts, fmt.Sprintf("%s (%s:%d)", s.note, path.Base(p.Filename), p.Line))
	}
	return strings.Join(parts, " -> ")
}

// --- the taint lattice -----------------------------------------------------

// chainCap bounds witness-chain growth so deep call stacks cannot
// balloon the diagnostics; the sink step is always appended.
const chainCap = 12

// a secretSrc is one //sgxperf:secret-marked declaration.
type secretSrc struct {
	obj  types.Object
	desc string // "secret field sealKey"
	pos  token.Pos
}

// a tstep is one hop of a witness chain.
type tstep struct {
	pos  token.Pos
	note string
}

// a taintVal is the taint carried by one tracked value: either rooted
// at a secret source (src != nil) or derived from a function parameter
// (param >= 0), with the hops that produced it.
type taintVal struct {
	src   *secretSrc
	param int
	chain []tstep
}

// extend returns the value with one more hop (unchanged once the chain
// is at its cap — the sink hop is appended separately).
func (v *taintVal) extend(pos token.Pos, note string) *taintVal {
	if len(v.chain) >= chainCap {
		return v
	}
	nv := &taintVal{src: v.src, param: v.param}
	nv.chain = append(append([]tstep{}, v.chain...), tstep{pos, note})
	return nv
}

// a taintKey identifies one tracked storage root field-sensitively: the
// declared object plus the selector path below it ("" = whole object).
type taintKey struct {
	obj  types.Object
	path string
}

// a sinkInfo describes one boundary sink.
type sinkInfo struct {
	kind  string // "ocall-arg", "out-param", "user_check" or "boundary-write"
	call  string // joinable ocall/ecall name ("" when unknown)
	desc  string
	pos   token.Pos
	bytes int64 // static size of the sunk value (0 when not derivable)
}

// a paramSink is a function-summary fact: values arriving through one
// parameter reach a sink, with the in-callee hops.
type paramSink struct {
	steps []tstep
	sink  sinkInfo
}

// a taintFunc is one declared function plus its composable summary.
type taintFunc struct {
	pkg    *Package
	name   string
	full   string
	decl   *ast.FuncDecl
	sig    *types.Signature
	sanit  bool
	// Summary bits, grown monotonically by the fixpoint rounds.
	sinkVia      map[int]*paramSink // param index → sink it reaches
	resultSecret map[int]*taintVal  // result index → secret taint born inside
	passes       map[[2]int]bool    // param i flows to result j
}

// a taintFlow is one complete source→sink path (suppression decisions
// happen later, in the analyzer or the exported report).
type taintFlow struct {
	fn    *taintFunc
	src   *secretSrc
	sink  sinkInfo
	chain []tstep
}

// a taintIssue is one EDL direction mismatch.
type taintIssue struct {
	fn     *taintFunc
	pos    token.Pos
	ecall  string
	param  string
	dir    string
	kind   string // "in-written", "out-stale-read" or "user-check-unguarded"
	detail string
}

// an edlParam is one statically-recovered EDL parameter declaration.
type edlParam struct {
	name string
	dir  string // "value", "in", "out", "inout" or "user_check"
}

// an edlDecl is one statically-recovered AddEcall/AddOcall declaration.
type edlDecl struct {
	kind   string // "ecall" or "ocall"
	params []edlParam
}

// taintGraph is the whole-tree taint view: sources, summaries, flows
// and EDL direction issues, built once per Tree and scope-filtered by
// the analyzers and the exported report.
type taintGraph struct {
	fset    *token.FileSet
	secrets *secretSet
	sources map[types.Object]*secretSrc
	edl     map[string]*edlDecl
	// handlerEcall maps handler FullNames back to their registered ecall
	// names (from the TrustedFn maps interproc.go recovers).
	handlerEcall map[string]string
	funcs        map[string]*taintFunc
	order        []string
	flows        []taintFlow
	issues       []taintIssue
}

// fixpointCap bounds the summary rounds; the lattice (sink bits, pass
// bits per function) is finite, so rounds converge long before it.
const fixpointCap = 10

// newTaintGraph builds the whole-tree taint analysis.
func newTaintGraph(tree *Tree) *taintGraph {
	tree.ensureTypes()
	g := &taintGraph{
		fset:         tree.Fset,
		secrets:      collectSecretMarks(tree.Fset, tree.Pkgs),
		sources:      make(map[types.Object]*secretSrc),
		edl:          make(map[string]*edlDecl),
		handlerEcall: make(map[string]string),
		funcs:        make(map[string]*taintFunc),
	}
	for _, pkg := range tree.Pkgs {
		if pkg.Info == nil {
			continue
		}
		g.collectSources(pkg)
		g.collectEDL(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig, ok := obj.Type().(*types.Signature)
				if !ok {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil {
					if _, typ := receiver(fd); typ != "" {
						name = typ + "." + name
					}
				}
				fn := &taintFunc{
					pkg: pkg, name: name, full: obj.FullName(), decl: fd, sig: sig,
					sanit:        sanitizerName(fd.Name.Name),
					sinkVia:      make(map[int]*paramSink),
					resultSecret: make(map[int]*taintVal),
					passes:       make(map[[2]int]bool),
				}
				g.funcs[fn.full] = fn
				g.order = append(g.order, fn.full)
			}
		}
	}
	for ecall, handler := range tree.interprocFor(nil).entries {
		g.handlerEcall[handler] = ecall
	}

	// Summary fixpoint: walk every function against the current callee
	// summaries until no summary grows.
	for round := 0; round < fixpointCap; round++ {
		changed := false
		for _, full := range g.order {
			w := g.walker(g.funcs[full], false)
			w.changed = &changed
			w.run()
		}
		if !changed {
			break
		}
	}
	// Collection pass: with summaries stable, one more walk gathers the
	// complete source→sink flows, then the EDL cross-validation runs
	// over the registered handlers.
	for _, full := range g.order {
		g.walker(g.funcs[full], true).run()
	}
	g.validateDirections()
	sort.Slice(g.flows, func(i, j int) bool {
		a, b := g.fset.Position(g.flows[i].sink.pos), g.fset.Position(g.flows[j].sink.pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	sort.Slice(g.issues, func(i, j int) bool {
		a, b := g.fset.Position(g.issues[i].pos), g.fset.Position(g.issues[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return g
}

// sanitizerName recognises seal/encrypt functions by name: their result
// is safe to cross the boundary.
func sanitizerName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "seal") || strings.Contains(l, "encrypt")
}

// collectSources records every //sgxperf:secret-marked declaration.
func (g *taintGraph) collectSources(pkg *Package) {
	note := func(names []*ast.Ident) {
		for _, name := range names {
			if !g.secrets.marks(name.Pos()) {
				continue
			}
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			kind := "value"
			if v, ok := obj.(*types.Var); ok {
				if v.IsField() {
					kind = "field"
				} else {
					kind = "variable"
				}
			}
			g.sources[obj] = &secretSrc{
				obj:  obj,
				desc: fmt.Sprintf("secret %s %s", kind, obj.Name()),
				pos:  name.Pos(),
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				note(n.Names)
			case *ast.ValueSpec:
				note(n.Names)
			}
			return true
		})
	}
}

// edlBase mirrors sdkBase: the EDL package is recognised by path
// basename, so fixture trees classify identically to the real one.
func edlBase(pkg *types.Package) bool {
	return pkg != nil && path.Base(pkg.Path()) == "edl"
}

// collectEDL recovers declared call directions from AddEcall/AddOcall
// builder calls with constant names and edl.Param composite literals;
// directions resolve by constant identifier name (DirIn, DirOut, …) so
// fixture EDL packages need not share the real package's values.
func (g *taintGraph) collectEDL(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolveCallee(call, pkg.Info)
			if fn == nil || (fn.Name() != "AddEcall" && fn.Name() != "AddOcall") {
				return true
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "Interface" || !edlBase(recv.Obj().Pkg()) {
				return true
			}
			name := constStringArg(call, pkg.Info)
			if name == "" || len(call.Args) < 2 {
				return true
			}
			decl := &edlDecl{kind: "ecall"}
			if fn.Name() == "AddOcall" {
				decl.kind = "ocall"
			}
			for _, a := range call.Args[2:] {
				lit, ok := a.(*ast.CompositeLit)
				if !ok {
					continue
				}
				tn := namedOf(pkg.Info.Types[lit].Type)
				if tn == nil || tn.Obj().Name() != "Param" || !edlBase(tn.Obj().Pkg()) {
					continue
				}
				p := edlParam{dir: "value"}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Name":
						if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil {
							p.name = strings.Trim(tv.Value.ExactString(), `"`)
						}
					case "Dir":
						p.dir = dirName(kv.Value)
					}
				}
				if p.name != "" {
					decl.params = append(decl.params, p)
				}
			}
			g.edl[name] = decl
			return true
		})
	}
}

// dirName resolves a direction expression by its constant's identifier.
func dirName(e ast.Expr) string {
	var id string
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel.Name
	case *ast.Ident:
		id = e.Name
	}
	switch id {
	case "DirIn":
		return "in"
	case "DirOut":
		return "out"
	case "DirInOut":
		return "inout"
	case "DirUserCheck":
		return "user_check"
	}
	return "value"
}

// paramDir looks up the declared direction of the EDL parameter mapping
// (case-insensitively) to a Go field name.
func (g *taintGraph) paramDir(ecall, field string) (string, string) {
	decl := g.edl[ecall]
	if decl == nil {
		return "", ""
	}
	for _, p := range decl.params {
		if strings.EqualFold(p.name, field) {
			return p.name, p.dir
		}
	}
	return "", ""
}

// --- the per-function walk -------------------------------------------------

// taintWalker propagates taint through one function body in source
// order, updating the function's summary and (in the collection pass)
// recording complete flows.
type taintWalker struct {
	g       *taintGraph
	fn      *taintFunc
	pkg     *Package
	taint   map[taintKey]*taintVal
	argObjs map[types.Object]bool
	collect bool
	changed *bool
}

func (g *taintGraph) walker(fn *taintFunc, collect bool) *taintWalker {
	w := &taintWalker{
		g: g, fn: fn, pkg: fn.pkg,
		taint:   make(map[taintKey]*taintVal),
		argObjs: boundaryParams(fn.decl, fn.pkg.Info),
		collect: collect,
	}
	params := fn.sig.Params()
	for i := 0; i < params.Len(); i++ {
		obj := params.At(i)
		if src := g.sources[obj]; src != nil {
			w.taint[taintKey{obj, ""}] = &taintVal{
				src: src, param: -1, chain: []tstep{{src.pos, src.desc}},
			}
			continue
		}
		w.taint[taintKey{obj, ""}] = &taintVal{
			param: i, chain: []tstep{{obj.Pos(), "parameter " + obj.Name()}},
		}
	}
	return w
}

func (w *taintWalker) run() {
	for _, st := range w.fn.decl.Body.List {
		w.stmt(st)
	}
}

func (w *taintWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		w.exprTaint(st.X)
	case *ast.AssignStmt:
		w.assign(st)
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.exprTaint(st.Cond)
		w.block(st.Body)
		w.stmt(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.exprTaint(st.Cond)
		w.block(st.Body)
		w.stmt(st.Post)
	case *ast.RangeStmt:
		v := w.exprTaint(st.X)
		for _, lv := range []ast.Expr{st.Key, st.Value} {
			if lv == nil {
				continue
			}
			if obj, pth := rootKey(lv, w.pkg.Info); obj != nil && v != nil {
				w.taint[taintKey{obj, pth}] = v.extend(lv.Pos(), "ranged into "+types.ExprString(lv))
			}
		}
		w.block(st.Body)
	case *ast.BlockStmt:
		w.block(st)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.exprTaint(st.Tag)
		w.caseBodies(st.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		w.caseBodies(st.Body)
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				w.stmt(cl.Comm)
				for _, bs := range cl.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.ReturnStmt:
		for j, r := range st.Results {
			v := w.exprTaint(r)
			if v == nil {
				continue
			}
			if v.src != nil && w.fn.resultSecret[j] == nil {
				w.fn.resultSecret[j] = v.extend(r.Pos(), "returned by "+w.fn.name)
				w.note()
			}
			if v.param >= 0 && !w.fn.passes[[2]int{v.param, j}] {
				w.fn.passes[[2]int{v.param, j}] = true
				w.note()
			}
		}
	case *ast.SendStmt:
		w.exprTaint(st.Chan)
		w.exprTaint(st.Value)
	case *ast.IncDecStmt:
		w.exprTaint(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					v := w.exprTaint(val)
					if v == nil || i >= len(vs.Names) {
						continue
					}
					if obj := w.pkg.Info.Defs[vs.Names[i]]; obj != nil {
						w.taint[taintKey{obj, ""}] = v.extend(vs.Names[i].Pos(), "assigned to "+vs.Names[i].Name)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.callTaint(st.Call)
	case *ast.GoStmt:
		w.callTaint(st.Call)
	}
}

func (w *taintWalker) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *taintWalker) caseBodies(body *ast.BlockStmt) {
	for _, cc := range body.List {
		if cl, ok := cc.(*ast.CaseClause); ok {
			for _, e := range cl.List {
				w.exprTaint(e)
			}
			for _, bs := range cl.Body {
				w.stmt(bs)
			}
		}
	}
}

// note flags a summary change for the fixpoint driver.
func (w *taintWalker) note() {
	if w.changed != nil {
		*w.changed = true
	}
}

// assign pairs RHS taint onto LHS roots, extends the boundary-derived
// set through type assertions, and checks boundary-write sinks.
func (w *taintWalker) assign(st *ast.AssignStmt) {
	w.noteAsserted(st)
	vals := make([]*taintVal, len(st.Lhs))
	if len(st.Lhs) == len(st.Rhs) {
		for i, r := range st.Rhs {
			vals[i] = w.exprTaint(r)
		}
	} else if len(st.Rhs) == 1 {
		v := w.exprTaint(st.Rhs[0])
		for i := range vals {
			vals[i] = v
		}
	}
	for i, lhs := range st.Lhs {
		v := vals[i]
		// Compound assignments (+=, etc.) keep the target's own taint.
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE && v == nil {
			continue
		}
		if v != nil {
			ri := i
			if ri >= len(st.Rhs) {
				ri = len(st.Rhs) - 1
			}
			w.boundaryWrite(lhs, v, st.Rhs[ri])
		}
		obj, pth := rootKey(lhs, w.pkg.Info)
		if obj == nil {
			continue
		}
		key := taintKey{obj, pth}
		if v != nil {
			w.taint[key] = v.extend(lhs.Pos(), "assigned to "+types.ExprString(lhs))
			continue
		}
		// Strong update: an untainted store clears the root and its
		// sub-fields.
		for k := range w.taint {
			if k.obj == obj && strings.HasPrefix(k.path, pth) {
				delete(w.taint, k)
			}
		}
	}
}

// noteAsserted mirrors ipScanner.noteDerived: `a, ok := args.(*T)`
// makes a a boundary-derived root of a TrustedFn handler.
func (w *taintWalker) noteAsserted(st *ast.AssignStmt) {
	if w.argObjs == nil || len(st.Rhs) != 1 || len(st.Lhs) == 0 {
		return
	}
	ta, ok := st.Rhs[0].(*ast.TypeAssertExpr)
	if !ok || ta.Type == nil {
		return
	}
	root, ok := ta.X.(*ast.Ident)
	if !ok || !w.argObjs[w.pkg.Info.Uses[root]] {
		return
	}
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := w.pkg.Info.Defs[lhs]; obj != nil {
		w.argObjs[obj] = true
	} else if obj := w.pkg.Info.Uses[lhs]; obj != nil {
		w.argObjs[obj] = true
	}
}

// boundaryWrite checks whether a tainted store targets the boundary
// args buffer of a TrustedFn handler and records the sink, classified
// by the EDL direction of the written field when recoverable.
func (w *taintWalker) boundaryWrite(lhs ast.Expr, v *taintVal, rhs ast.Expr) {
	if w.argObjs == nil {
		return
	}
	sel, field := w.boundaryField(lhs)
	if sel == nil {
		return
	}
	ecall := w.g.handlerEcall[w.fn.full]
	kind, dirNote := "boundary-write", ""
	if ecall != "" {
		if pname, dir := w.g.paramDir(ecall, field); pname != "" {
			switch dir {
			case "user_check":
				kind = "user_check"
			case "out", "inout":
				kind = "out-param"
			}
			dirNote = fmt.Sprintf(" (param %q, [%s])", pname, dir)
		}
	}
	w.sinkHit(v, sinkInfo{
		kind: kind,
		call: ecall,
		desc: fmt.Sprintf("boundary buffer field %s%s copied back to the untrusted side",
			types.ExprString(lhs), dirNote),
		pos:   lhs.Pos(),
		bytes: w.staticSize(rhs),
	})
}

// boundaryField returns the selector writing into the boundary buffer
// and the outermost written field name ("" when lhs is no such write).
func (w *taintWalker) boundaryField(lhs ast.Expr) (ast.Expr, string) {
	e := lhs
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			root := t.X
			for {
				switch r := root.(type) {
				case *ast.SelectorExpr:
					root = r.X
				case *ast.IndexExpr:
					root = r.X
				case *ast.ParenExpr:
					root = r.X
				case *ast.Ident:
					if w.argObjs[w.pkg.Info.Uses[r]] {
						return lhs, outerFieldName(lhs)
					}
					return nil, ""
				default:
					return nil, ""
				}
			}
		default:
			return nil, ""
		}
	}
}

// outerFieldName returns the field named directly on the boundary root:
// for a.Buf[i] and a.Buf both "Buf".
func outerFieldName(e ast.Expr) string {
	var last string
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			last = t.Sel.Name
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return last
		}
	}
}

// sinkHit records one taint arrival at a sink: a complete flow when the
// taint is source-rooted, a summary bit when parameter-derived.
func (w *taintWalker) sinkHit(v *taintVal, sink sinkInfo) {
	if v.src != nil {
		if w.collect {
			chain := append(append([]tstep{}, v.chain...), tstep{sink.pos, sink.desc})
			w.g.flows = append(w.g.flows, taintFlow{fn: w.fn, src: v.src, sink: sink, chain: chain})
		}
		return
	}
	if v.param >= 0 && w.fn.sinkVia[v.param] == nil {
		w.fn.sinkVia[v.param] = &paramSink{steps: append([]tstep{}, v.chain...), sink: sink}
		w.note()
	}
}

// exprTaint evaluates one expression's taint, visiting subexpressions
// for their side effects (nested calls, sinks) along the way.
func (w *taintWalker) exprTaint(e ast.Expr) *taintVal {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		if obj == nil {
			return nil
		}
		if src := w.g.sources[obj]; src != nil {
			return &taintVal{src: src, param: -1, chain: []tstep{{src.pos, src.desc}}}
		}
		return w.taint[taintKey{obj, ""}]
	case *ast.SelectorExpr:
		// A select of a secret-marked field is a source wherever its
		// owner came from.
		if sel := w.pkg.Info.Selections[e]; sel != nil {
			if src := w.g.sources[sel.Obj()]; src != nil {
				return &taintVal{src: src, param: -1, chain: []tstep{{src.pos, src.desc}}}
			}
		}
		if obj, pth := rootKey(e, w.pkg.Info); obj != nil {
			if v := w.lookup(obj, pth); v != nil {
				return v
			}
			return nil
		}
		return w.exprTaint(e.X)
	case *ast.IndexExpr:
		w.exprTaint(e.Index)
		if obj, pth := rootKey(e, w.pkg.Info); obj != nil {
			if v := w.lookup(obj, pth); v != nil {
				return v
			}
			return nil
		}
		return w.exprTaint(e.X)
	case *ast.IndexListExpr:
		return w.exprTaint(e.X)
	case *ast.SliceExpr:
		w.exprTaint(e.Low)
		w.exprTaint(e.High)
		w.exprTaint(e.Max)
		return w.exprTaint(e.X)
	case *ast.StarExpr:
		return w.exprTaint(e.X)
	case *ast.ParenExpr:
		return w.exprTaint(e.X)
	case *ast.UnaryExpr:
		return w.exprTaint(e.X)
	case *ast.BinaryExpr:
		x := w.exprTaint(e.X)
		y := w.exprTaint(e.Y)
		if x != nil {
			return x
		}
		return y
	case *ast.TypeAssertExpr:
		return w.exprTaint(e.X)
	case *ast.CompositeLit:
		var out *taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if v := w.exprTaint(el); v != nil && out == nil {
				out = v.extend(e.Pos(), "packed into composite literal")
			}
		}
		return out
	case *ast.KeyValueExpr:
		return w.exprTaint(e.Value)
	case *ast.CallExpr:
		return w.callTaint(e)
	case *ast.FuncLit:
		// Not walked; see the file comment on approximations.
		return nil
	}
	return nil
}

// lookup finds the taint of (obj, path), falling back to enclosing
// prefixes so whole-object taint covers every field.
func (w *taintWalker) lookup(obj types.Object, pth string) *taintVal {
	for {
		if v, ok := w.taint[taintKey{obj, pth}]; ok {
			return v
		}
		i := strings.LastIndexByte(pth, '.')
		if i < 0 {
			if pth == "" {
				return nil
			}
			pth = ""
			continue
		}
		pth = pth[:i]
	}
}

// callTaint handles call expressions: sanitizers launder, ocall
// dispatches sink their arguments, known callees compose through their
// summaries, unknown callees propagate conservatively.
func (w *taintWalker) callTaint(call *ast.CallExpr) *taintVal {
	info := w.pkg.Info
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.exprTaint(sel.X)
	}
	vals := make([]*taintVal, len(call.Args))
	for i, a := range call.Args {
		vals[i] = w.exprTaint(a)
	}

	// Ocall dispatch: every tainted argument crosses the boundary.
	if name, ok := envDispatch(call, info); ok {
		what := "an ocall"
		if name != "" {
			what = fmt.Sprintf("ocall %q", name)
		}
		for i, v := range vals {
			if v == nil || i == 0 {
				continue // args[0] is the ocall name itself
			}
			w.sinkHit(v, sinkInfo{
				kind:  "ocall-arg",
				call:  name,
				desc:  fmt.Sprintf("argument %d of %s", i, what),
				pos:   call.Args[i].Pos(),
				bytes: w.staticSize(call.Args[i]),
			})
		}
		return nil // the result comes from the untrusted side
	}

	fn := resolveCallee(call, info)
	if fn != nil && sanitizerName(fn.Name()) {
		return nil // recognised seal/encrypt: the result is safe to cross
	}
	if fn != nil {
		if g, ok := w.g.funcs[fn.FullName()]; ok {
			var out *taintVal
			for i, v := range vals {
				if v == nil {
					continue
				}
				if ps := g.sinkVia[i]; ps != nil {
					sunk := v.extend(call.Pos(), "passed to "+g.name)
					sunk = &taintVal{src: sunk.src, param: sunk.param,
						chain: append(append([]tstep{}, sunk.chain...), ps.steps...)}
					w.sinkHit(sunk, ps.sink)
				}
				for j := 0; j < g.sig.Results().Len(); j++ {
					if g.passes[[2]int{i, j}] && out == nil {
						out = v.extend(call.Pos(), "through call to "+g.name)
					}
				}
			}
			if out == nil {
				for j := 0; j < g.sig.Results().Len(); j++ {
					if rv := g.resultSecret[j]; rv != nil {
						out = rv.extend(call.Pos(), "returned by "+g.name)
						break
					}
				}
			}
			return out
		}
	}
	// Unknown callee (stdlib, builtin, interface method): any tainted
	// argument conservatively taints the result.
	for _, v := range vals {
		if v != nil {
			name := "call"
			if fn != nil {
				name = "call to " + fn.Name()
			}
			return v.extend(call.Pos(), "derived through "+name)
		}
	}
	return nil
}

// staticSize derives the byte size of an expression's type when it is
// statically fixed (basic values, arrays, pointer-free structs by
// header); strings, slices and maps return 0 (unknown until runtime).
func (w *taintWalker) staticSize(e ast.Expr) int64 {
	tv, ok := w.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return 0
	}
	return typeSize(tv.Type)
}

var taintSizes = types.SizesFor("gc", "amd64")

func typeSize(t types.Type) int64 {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return 0
		}
		return taintSizes.Sizeof(t)
	case *types.Array:
		elem := typeSize(u.Elem())
		if elem == 0 {
			return 0
		}
		return elem * u.Len()
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeSize(u.Field(i).Type()) == 0 {
				return 0
			}
		}
		return taintSizes.Sizeof(t)
	case *types.Pointer:
		return typeSize(u.Elem())
	}
	return 0
}

// rootKey peels a selector/index chain down to its declared root
// object, building the field-sensitive path ("" for the bare object,
// "[]" path elements for index steps).
func rootKey(e ast.Expr, info *types.Info) (types.Object, string) {
	var parts []string
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, t.Sel.Name)
			e = t.X
		case *ast.IndexExpr:
			parts = append(parts, "[]")
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			obj := info.Uses[t]
			if obj == nil {
				obj = info.Defs[t]
			}
			if obj == nil {
				return nil, ""
			}
			if len(parts) == 0 {
				return obj, ""
			}
			// parts were collected outside-in; reverse into a path.
			var b strings.Builder
			for i := len(parts) - 1; i >= 0; i-- {
				b.WriteByte('.')
				b.WriteString(parts[i])
			}
			return obj, b.String()
		default:
			return nil, ""
		}
	}
}

// --- EDL direction cross-validation ----------------------------------------

// validateDirections checks every registered handler against the
// recovered EDL declaration of its ecall.
func (g *taintGraph) validateDirections() {
	names := make([]string, 0, len(g.handlerEcall))
	for full := range g.handlerEcall {
		names = append(names, full)
	}
	sort.Strings(names)
	for _, full := range names {
		fn := g.funcs[full]
		if fn == nil {
			continue
		}
		ecall := g.handlerEcall[full]
		decl := g.edl[ecall]
		if decl == nil {
			continue
		}
		argObjs := boundaryParams(fn.decl, fn.pkg.Info)
		if argObjs == nil {
			continue
		}
		s := &edlScanner{
			pkg: fn.pkg, argObjs: argObjs,
			fields: make(map[string]*fieldUse),
		}
		for _, st := range fn.decl.Body.List {
			s.stmt(st)
		}
		for _, p := range decl.params {
			u := s.fields[strings.ToLower(p.name)]
			if u == nil {
				continue
			}
			switch p.dir {
			case "in":
				if u.write != token.NoPos {
					g.issues = append(g.issues, taintIssue{
						fn: fn, pos: u.write, ecall: ecall, param: p.name, dir: p.dir,
						kind: "in-written",
						detail: fmt.Sprintf(
							"%s writes boundary param %q of ecall %q, but the EDL declares it [in]: the write is silently dropped at copy-back; declare it [inout]",
							fn.name, p.name, ecall),
					})
				}
			case "out":
				if u.read != token.NoPos && (u.write == token.NoPos || u.read < u.write) {
					g.issues = append(g.issues, taintIssue{
						fn: fn, pos: u.read, ecall: ecall, param: p.name, dir: p.dir,
						kind: "out-stale-read",
						detail: fmt.Sprintf(
							"%s reads boundary param %q of ecall %q before its first write, but the EDL declares it [out]: the buffer arrives uninitialised and the read leaks whatever the copy-back returns",
							fn.name, p.name, ecall),
					})
				}
			case "user_check":
				if u.deref != token.NoPos && (u.guard == token.NoPos || u.deref < u.guard) {
					g.issues = append(g.issues, taintIssue{
						fn: fn, pos: u.deref, ecall: ecall, param: p.name, dir: p.dir,
						kind: "user-check-unguarded",
						detail: fmt.Sprintf(
							"%s dereferences [user_check] param %q of ecall %q without a prior bounds guard: the SDK copies and checks nothing for user_check pointers",
							fn.name, p.name, ecall),
					})
				}
			}
		}
	}
}

// a fieldUse records the first read, write, dereference and branch
// guard of one boundary field, in source order.
type fieldUse struct {
	read, write, deref, guard token.Pos
}

func (u *fieldUse) first(p *token.Pos, pos token.Pos) {
	if *p == token.NoPos || pos < *p {
		*p = pos
	}
}

// edlScanner orders every use of the boundary buffer's fields inside
// one handler.
type edlScanner struct {
	pkg     *Package
	argObjs map[types.Object]bool
	fields  map[string]*fieldUse
}

func (s *edlScanner) use(name string) *fieldUse {
	key := strings.ToLower(name)
	u := s.fields[key]
	if u == nil {
		u = &fieldUse{}
		s.fields[key] = u
	}
	return u
}

// fieldSel returns the boundary field a selector reads ("" otherwise).
func (s *edlScanner) fieldSel(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	root := sel.X
	for {
		switch r := root.(type) {
		case *ast.ParenExpr:
			root = r.X
		case *ast.StarExpr:
			root = r.X
		case *ast.Ident:
			if s.argObjs[s.pkg.Info.Uses[r]] {
				return sel.Sel.Name
			}
			return ""
		default:
			return ""
		}
	}
}

func (s *edlScanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.reads(r)
		}
		s.noteAsserted(st)
		for _, l := range st.Lhs {
			s.writeTarget(l)
		}
	case *ast.IfStmt:
		s.stmt(st.Init)
		s.guards(st.Cond)
		s.block(st.Body)
		s.stmt(st.Else)
	case *ast.ForStmt:
		s.stmt(st.Init)
		s.guards(st.Cond)
		s.block(st.Body)
		s.stmt(st.Post)
	case *ast.RangeStmt:
		s.reads(st.X)
		s.block(st.Body)
	case *ast.BlockStmt:
		s.block(st)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.SwitchStmt:
		s.stmt(st.Init)
		s.guards(st.Tag)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					s.reads(e)
				}
				for _, bs := range cl.Body {
					s.stmt(bs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init)
		s.stmt(st.Assign)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, bs := range cl.Body {
					s.stmt(bs)
				}
			}
		}
	case *ast.IncDecStmt:
		s.writeTarget(st.X)
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.noteRead(e)
			}
			return true
		})
	}
}

func (s *edlScanner) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.stmt(st)
	}
}

// noteAsserted extends the boundary-root set through type assertions,
// like taintWalker.noteAsserted.
func (s *edlScanner) noteAsserted(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 || len(st.Lhs) == 0 {
		return
	}
	ta, ok := st.Rhs[0].(*ast.TypeAssertExpr)
	if !ok || ta.Type == nil {
		return
	}
	root, ok := ta.X.(*ast.Ident)
	if !ok || !s.argObjs[s.pkg.Info.Uses[root]] {
		return
	}
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := s.pkg.Info.Defs[lhs]; obj != nil {
		s.argObjs[obj] = true
	} else if obj := s.pkg.Info.Uses[lhs]; obj != nil {
		s.argObjs[obj] = true
	}
}

// reads walks an expression recording field reads and dereferences.
func (s *edlScanner) reads(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			s.noteRead(e)
		}
		return true
	})
}

func (s *edlScanner) noteRead(e ast.Expr) {
	if f := s.fieldSel(e); f != "" {
		u := s.use(f)
		u.first(&u.read, e.Pos())
		return
	}
	// An index, slice or star over a boundary field is a dereference of
	// the pointer it holds.
	var x ast.Expr
	switch t := e.(type) {
	case *ast.IndexExpr:
		x = t.X
	case *ast.SliceExpr:
		x = t.X
	case *ast.StarExpr:
		x = t.X
	default:
		return
	}
	if f := s.fieldSel(x); f != "" {
		u := s.use(f)
		u.first(&u.deref, e.Pos())
	}
}

// writeTarget records a store into a boundary field; an indexed store
// (a.Buf[i] = x) both writes and dereferences.
func (s *edlScanner) writeTarget(l ast.Expr) {
	if f := s.fieldSel(l); f != "" {
		u := s.use(f)
		u.first(&u.write, l.Pos())
		return
	}
	if ix, ok := l.(*ast.IndexExpr); ok {
		s.reads(ix.Index)
		if f := s.fieldSel(ix.X); f != "" {
			u := s.use(f)
			u.first(&u.write, l.Pos())
			u.first(&u.deref, l.Pos())
			return
		}
	}
	s.reads(l)
}

// guards marks every boundary field a branch condition mentions as
// bounds-checked from the condition's position on.
func (s *edlScanner) guards(cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if f := s.fieldSel(e); f != "" {
			u := s.use(f)
			u.first(&u.guard, cond.Pos())
		}
		// len(a.Buf) and similar inside the condition also guard.
		if call, ok := e.(*ast.CallExpr); ok {
			for _, a := range call.Args {
				if f := s.fieldSel(a); f != "" {
					u := s.use(f)
					u.first(&u.guard, cond.Pos())
				}
			}
		}
		return true
	})
	s.reads(cond)
}

// --- the exported taint analysis (reused by staticlint) --------------------

// A FlowStep is one hop of a secret-flow witness chain.
type FlowStep struct {
	Pos  token.Position
	Note string
}

// A SecretFlow is one enclave secret reaching a boundary sink without
// sealing.
type SecretFlow struct {
	// Pos is the sink site; Func the function containing it.
	Pos  token.Position
	Func string
	// Source describes the //sgxperf:secret declaration; Sink the
	// boundary crossing.
	Source string
	Sink   string
	// SinkKind is "ocall-arg", "out-param", "user_check" or
	// "boundary-write".
	SinkKind string
	// Call is the joinable wire name: the ocall for argument sinks, the
	// enclosing handler's ecall for buffer-write sinks ("" unknown).
	Call string
	// Bytes is the static size of the sunk value (0 when not derivable).
	Bytes int
	// Chain is the full witness path, source first, sink last.
	Chain []FlowStep
}

// A DirectionIssue is one mismatch between what a handler does and what
// the EDL declares.
type DirectionIssue struct {
	Pos   token.Position
	Func  string
	Ecall string
	Param string
	// Dir is the declared direction; Kind is "in-written",
	// "out-stale-read" or "user-check-unguarded".
	Dir    string
	Kind   string
	Detail string
}

// A TaintReport aggregates the taint engine's raw findings for callers
// outside the lint driver (staticlint), suppression-blind like
// AnalyzeSync and AnalyzeInterproc.
type TaintReport struct {
	Flows  []SecretFlow
	Issues []DirectionIssue
}

// AnalyzeTaint parses and type-checks the tree under root and runs the
// secret-flow taint analysis. The whole tree builds the summaries (so
// cross-package flows compose); flows and direction issues are reported
// only for functions in packages whose root-relative directory starts
// with one of the given prefixes (all packages when none are given).
func AnalyzeTaint(root string, dirs []string) (*TaintReport, error) {
	tree, err := LoadTree(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeTaintTree(tree, dirs), nil
}

// AnalyzeTaintTree is AnalyzeTaint over an already-loaded tree, sharing
// its cached types, call graph and taint summaries with other analyses.
func AnalyzeTaintTree(tree *Tree, dirs []string) *TaintReport {
	g := tree.taintGraph()
	scope := &Analyzer{Name: "taint", Packages: dirs}
	report := &TaintReport{}
	for _, fl := range g.flows {
		if !scope.applies(fl.fn.pkg.Dir) {
			continue
		}
		chain := make([]FlowStep, 0, len(fl.chain))
		for _, s := range fl.chain {
			chain = append(chain, FlowStep{Pos: g.fset.Position(s.pos), Note: s.note})
		}
		report.Flows = append(report.Flows, SecretFlow{
			Pos: g.fset.Position(fl.sink.pos), Func: fl.fn.name,
			Source: fl.src.desc, Sink: fl.sink.desc, SinkKind: fl.sink.kind,
			Call: fl.sink.call, Bytes: int(fl.sink.bytes), Chain: chain,
		})
	}
	for _, is := range g.issues {
		if !scope.applies(is.fn.pkg.Dir) {
			continue
		}
		report.Issues = append(report.Issues, DirectionIssue{
			Pos: g.fset.Position(is.pos), Func: is.fn.name, Ecall: is.ecall,
			Param: is.param, Dir: is.dir, Kind: is.kind, Detail: is.detail,
		})
	}
	return report
}
