// Shared machinery for the repository's inline source directives —
// //sgxperf:allow(name), //sgxperf:lockorder and //sgxperf:secret all
// follow the same protocol: a marker comment placed on (or on the line
// directly above) the statement it concerns, followed by a mandatory
// one-line justification, with unused markers reported as stale so a
// suppression can never outlive the diagnostic it was written for.
// Each directive's collector parses its own syntax and delegates the
// bookkeeping (position matching, used tracking, justification and
// staleness problems) here.
package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// a directiveKey locates one directive occurrence: the file and line it
// sits on, and the analyzer it addresses.
type directiveKey = allowKey

// A directiveSet is the parsed occurrences of one directive family,
// keyed by (file, line, analyzer) with the justification as the value.
// It underlies allowSet (suppressions) and markSet (lock-order
// exemptions), which differ only in parse syntax and problem wording.
type directiveSet struct {
	fset    *token.FileSet
	entries map[directiveKey]string // key → justification
	used    map[directiveKey]bool
}

// collectDirectives scans every comment of the given packages for the
// directive matched by re. When fixedName is non-empty the directive
// names no analyzer itself (//sgxperf:lockorder) and re's first capture
// group is the justification; otherwise (//sgxperf:allow) the first
// group is the analyzer name and the second the justification.
func collectDirectives(fset *token.FileSet, pkgs []*Package, re *regexp.Regexp, fixedName string) *directiveSet {
	ds := &directiveSet{
		fset:    fset,
		entries: make(map[directiveKey]string),
		used:    make(map[directiveKey]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := re.FindStringSubmatch(strings.TrimSpace(c.Text))
					if m == nil {
						continue
					}
					name, why := fixedName, m[1]
					if fixedName == "" {
						name, why = m[1], m[2]
					}
					p := fset.Position(c.Pos())
					ds.entries[directiveKey{p.Filename, p.Line, name}] = strings.TrimSpace(why)
				}
			}
		}
	}
	return ds
}

// covers reports whether a directive addressed to the named analyzer
// sits on the same line as pos or the line directly above, marking the
// matched entry as used for staleness tracking.
func (ds *directiveSet) covers(analyzer string, pos token.Pos) bool {
	if ds == nil {
		return false
	}
	p := ds.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		k := directiveKey{p.Filename, line, analyzer}
		if _, ok := ds.entries[k]; ok {
			ds.used[k] = true
			return true
		}
	}
	return false
}

// problems returns diagnostics about the directives themselves:
// occurrences with no justification, and occurrences that matched
// nothing (stale markers hide future regressions). active limits the
// check to directives addressing an analyzer in the map (nil means all
// occurrences are in scope). The message text comes from the callbacks
// so each directive family keeps its established wording.
func (ds *directiveSet) problems(active map[string]bool, missing, stale func(analyzer string) string) []Diagnostic {
	var out []Diagnostic
	for k, why := range ds.entries {
		if active != nil && !active[k.analyzer] {
			continue
		}
		switch {
		case why == "":
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: k.file, Line: k.line, Column: 1},
				Analyzer: k.analyzer,
				Message:  missing(k.analyzer),
			})
		case !ds.used[k]:
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: k.file, Line: k.line, Column: 1},
				Analyzer: k.analyzer,
				Message:  stale(k.analyzer),
			})
		}
	}
	return out
}
