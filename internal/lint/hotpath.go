package lint

import (
	"go/ast"
	"strings"
)

// hotPathDirective marks a method as being on the recorder's hot path.
// The marker is a machine-readable comment (like //go:noinline), placed
// in the method's doc block:
//
//	// shard returns the calling thread's recorder shard.
//	//
//	//sgxperf:hotpath
//	func (l *Logger) shard(tid sgx.ThreadID) *shard { ... }
const hotPathDirective = "//sgxperf:hotpath"

// HotPathLocks enforces the logger's lock-free hot path: a method marked
// //sgxperf:hotpath must not acquire a mutex field of its own receiver.
// The per-thread shard's lock (sh.mu) stays legal — it is uncontended by
// construction — but Logger-level registry locks (shardMu, stubMu, encMu,
// signalMu) on the hot path would serialise every recording thread, which
// is exactly the regression the sharded recorder exists to prevent. Slow
// paths belong in separate, unannotated methods (growShard, noteEnclave,
// buildStubTable).
//
// The analyzer also fails when a package in scope contains no annotations
// at all: the check silently checking nothing is itself a bug.
var HotPathLocks = &Analyzer{
	Name: "hotpath",
	Doc: "forbid receiver-mutex acquisition in //sgxperf:hotpath methods; " +
		"the recorder hot path is lock-free by design",
	Packages: []string{
		"internal/perf/logger",
		// The codec primitives (Encoder/Decoder), the typed event codecs
		// and the parallel analysis kernels are per-partition hot loops:
		// they run once per row or per chunk on the worker pool, where a
		// receiver lock would serialise the whole fan-out.
		"internal/evstore",
		"internal/perf/events",
		"internal/perf/analyzer",
		// The switchless submit/collect path runs once per routed call and
		// must stay lock-free: Switchless.tuneMu is tuner-only state, and a
		// hot-path acquisition would serialise every caller through the
		// epoch bookkeeping.
		"internal/sdk",
		// Simulator core and workloads honour the directive when present
		// (annotations are optional there — see requireAnnotations).
		"internal/kernel",
		"internal/vtime",
		"internal/workloads",
		// The serve daemon's artifact computations and the wire codecs
		// run per-request on the worker pool; annotations are optional
		// here too, but a //sgxperf:hotpath method that appears must stay
		// lock-free.
		"internal/serve",
		"api/v1",
	},
	Run: runHotPathLocks,
}

// requireAnnotations lists the packages where at least one
// //sgxperf:hotpath annotation must exist — the packages the directive
// was written for, where silently checking nothing would itself be a
// bug. The wider simulator packages are scanned opportunistically.
var requireAnnotations = []string{
	"internal/perf/logger",
	"internal/evstore",
	"internal/perf/events",
	"internal/perf/analyzer",
	"internal/sdk",
}

// lockMethods are the sync.Mutex/RWMutex methods that acquire (or juggle)
// the lock.
var lockMethods = map[string]bool{
	"Lock":    true,
	"RLock":   true,
	"TryLock": true,
}

func runHotPathLocks(pass *Pass) error {
	mutexFields := collectMutexFields(pass.Files)
	annotated := 0
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotPath(fn) {
				continue
			}
			annotated++
			recvName, recvType := receiver(fn)
			if recvName == "" {
				pass.Reportf(fn.Pos(), "%s on a function without a named receiver has no effect", hotPathDirective)
				continue
			}
			fields := mutexFields[recvType]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !lockMethods[method.Sel.Name] {
					return true
				}
				field, ok := method.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := field.X.(*ast.Ident)
				if !ok || base.Name != recvName || !fields[field.Sel.Name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"hot-path method %s.%s acquires receiver mutex %s.%s.%s; move the slow path into an unannotated method",
					recvType, fn.Name.Name, recvName, field.Sel.Name, method.Sel.Name)
				return true
			})
		}
	}
	if annotated == 0 && annotationRequired(pass.Dir) {
		pos := pass.Files[0].Package
		pass.Reportf(pos, "package %s declares no %s methods; the hot-path check is checking nothing (annotations lost?)",
			pass.Dir, hotPathDirective)
	}
	return nil
}

func annotationRequired(dir string) bool {
	probe := &Analyzer{Packages: requireAnnotations}
	return probe.applies(dir)
}

// isHotPath reports whether the function carries the hot-path directive.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// receiver returns the receiver's identifier and named type ("" when
// absent or anonymous).
func receiver(fn *ast.FuncDecl) (name, typ string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return "", ""
	}
	field := fn.Recv.List[0]
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typ = id.Name
	}
	return name, typ
}

// collectMutexFields maps each struct type in the package to the set of
// its fields typed sync.Mutex or sync.RWMutex (by the file's own import
// alias for sync).
func collectMutexFields(files []*ast.File) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, file := range files {
		alias := importName(file, "sync")
		if alias == "" || alias == "." {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !isMutexType(f.Type, alias) {
					continue
				}
				if out[ts.Name.Name] == nil {
					out[ts.Name.Name] = make(map[string]bool)
				}
				for _, name := range f.Names {
					out[ts.Name.Name][name.Name] = true
				}
			}
			return true
		})
	}
	return out
}

// isMutexType reports whether the expression names sync.Mutex or
// sync.RWMutex under the given import alias.
func isMutexType(t ast.Expr, alias string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != alias {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}
