package lint

import (
	"go/types"
	"testing"
)

// findPkg returns the parsed package at the given root-relative dir.
func findPkg(t *testing.T, tree *Tree, dir string) *Package {
	t.Helper()
	for _, pkg := range tree.Pkgs {
		if pkg.Dir == dir {
			return pkg
		}
	}
	t.Fatalf("no package at %q (have %v)", dir, func() []string {
		var dirs []string
		for _, p := range tree.Pkgs {
			dirs = append(dirs, p.Dir)
		}
		return dirs
	}())
	return nil
}

// loadTyped parses and fully type-checks a fixture tree.
func loadTyped(t *testing.T, files map[string]string) *Tree {
	t.Helper()
	root := writeTree(t, files)
	tree, err := LoadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	tree.ensureTypes()
	return tree
}

// TestTypecheckImportCycle proves an in-tree import cycle — illegal Go,
// but exactly what a half-edited tree under analysis looks like — cannot
// hang or abort the checker: the in-progress package degrades to a stub
// import and both sides still produce a types view for the analyzers.
func TestTypecheckImportCycle(t *testing.T) {
	tree := loadTyped(t, map[string]string{
		"go.mod": "module example.com/fix\n\ngo 1.22\n",
		"internal/a/a.go": `package a

import "example.com/fix/internal/b"

type Left struct{ R b.Right }

func FromA() int { return 1 }
`,
		"internal/b/b.go": `package b

import "example.com/fix/internal/a"

type Right struct{}

func FromB() int { return a.FromA() }
`,
	})
	for _, dir := range []string{"internal/a", "internal/b"} {
		pkg := findPkg(t, tree, dir)
		if pkg.Types == nil || pkg.Info == nil {
			t.Fatalf("%s: nil types view after a cycle; checking aborted", dir)
		}
	}
	// The package checked second still resolves the first for real: Left
	// sees the genuine b.Right, not a stub.
	a := findPkg(t, tree, "internal/a")
	left, ok := a.Types.Scope().Lookup("Left").(*types.TypeName)
	if !ok {
		t.Fatal("internal/a: Left not type-checked")
	}
	st := left.Type().Underlying().(*types.Struct)
	if got := st.Field(0).Type().String(); got != "example.com/fix/internal/b.Right" {
		t.Errorf("Left.R resolved to %s, want the in-tree b.Right", got)
	}
}

// TestTypecheckMissingInTreeDep proves an import of a package that does
// not exist anywhere — not in the tree, not installed — stubs out rather
// than failing the run, and the rest of the file still type-checks.
func TestTypecheckMissingInTreeDep(t *testing.T) {
	tree := loadTyped(t, map[string]string{
		"go.mod": "module example.com/fix\n\ngo 1.22\n",
		"internal/app/app.go": `package app

import "example.com/fix/internal/gone"

func broken() { gone.Call() }

func intact() int { return 40 + 2 }
`,
	})
	pkg := findPkg(t, tree, "internal/app")
	if pkg.Types == nil {
		t.Fatal("nil types view; a missing dependency aborted checking")
	}
	fn, ok := pkg.Types.Scope().Lookup("intact").(*types.Func)
	if !ok {
		t.Fatal("intact not type-checked; the missing import poisoned the whole file")
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 || sig.Results().At(0).Type().String() != "int" {
		t.Errorf("intact signature = %s, want func() int", sig)
	}
}

// TestTypecheckShadowedPackageNames proves two in-tree directories with
// the same package name stay distinct: each is checked under its full
// import path, so same-named types from the two never unify and a
// consumer importing both under aliases resolves each to its own
// package.
func TestTypecheckShadowedPackageNames(t *testing.T) {
	tree := loadTyped(t, map[string]string{
		"go.mod": "module example.com/fix\n\ngo 1.22\n",
		"internal/red/util/util.go": `package util

type T struct{ R int }
`,
		"internal/blue/util/util.go": `package util

type T struct{ B string }
`,
		"internal/app/app.go": `package app

import (
	bu "example.com/fix/internal/blue/util"
	ru "example.com/fix/internal/red/util"
)

func Use(r ru.T, b bu.T) {}
`,
	})
	red := findPkg(t, tree, "internal/red/util")
	blue := findPkg(t, tree, "internal/blue/util")
	if red.Types.Name() != "util" || blue.Types.Name() != "util" {
		t.Fatalf("package names = %q, %q, want both util", red.Types.Name(), blue.Types.Name())
	}
	if red.Types.Path() == blue.Types.Path() {
		t.Fatalf("both util packages checked under %q; shadowed names collided", red.Types.Path())
	}
	rt := red.Types.Scope().Lookup("T")
	bt := blue.Types.Scope().Lookup("T")
	if rt == nil || bt == nil {
		t.Fatal("T missing from a util package scope")
	}
	if types.Identical(rt.Type(), bt.Type()) {
		t.Error("red util.T and blue util.T unified; identities must stay per-path")
	}
	app := findPkg(t, tree, "internal/app")
	use, ok := app.Types.Scope().Lookup("Use").(*types.Func)
	if !ok {
		t.Fatal("Use not type-checked")
	}
	params := use.Type().(*types.Signature).Params()
	if got := params.At(0).Type(); !types.Identical(got, rt.Type()) {
		t.Errorf("Use's first param = %s, want the red util.T", got)
	}
	if got := params.At(1).Type(); !types.Identical(got, bt.Type()) {
		t.Errorf("Use's second param = %s, want the blue util.T", got)
	}
}

// TestTypecheckNoModuleFallback proves a tree without a go.mod — a bare
// fixture checkout — still checks under synthetic lintfixture/ paths and
// in-tree imports cannot accidentally resolve (they stub out instead of
// hitting the real module cache).
func TestTypecheckNoModuleFallback(t *testing.T) {
	tree := loadTyped(t, map[string]string{
		"pkg/one/one.go": `package one

func One() int { return 1 }
`,
	})
	pkg := findPkg(t, tree, "pkg/one")
	if got := pkg.ImportPath; got != "lintfixture/pkg/one" {
		t.Errorf("import path = %q, want lintfixture/pkg/one", got)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("One") == nil {
		t.Error("module-less package not type-checked")
	}
}
