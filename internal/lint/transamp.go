package lint

import "fmt"

// TransAmp flags transition amplification: an ocall dispatch reached
// inside a loop, either directly (env.Ocall at loop depth ≥ 1) or
// through a looped call into a function the interprocedural summary
// says transitively dispatches an ocall. Every iteration pays a full
// EEXIT→OCALL→EENTER round trip, so the paper's per-transition price
// (§3.1) multiplies by the loop trip count — the exact shape §6 fixes
// by batching the buffer and crossing once.
//
// The loop multiplier is static: constant-bound counted loops and
// range-over-int/array report the trip product, anything else reports
// an unknown multiplier (at least the round trip per iteration).
// Deliberate per-iteration dispatches (a retry loop around a
// thread-wake ocall, say) carry //sgxperf:allow(transamp) with a
// one-line justification.
var TransAmp = &Analyzer{
	Name: "transamp",
	Doc: "forbid ocall dispatch inside a loop (directly or through a " +
		"transitively-dispatching callee): transitions multiply by the trip count",
	Packages:  []string{"internal/workloads", "internal/sdk"},
	NeedTypes: true,
	RunRepo:   runTransAmp,
}

func runTransAmp(p *RepoPass) error {
	ip := p.Interproc()
	for _, full := range ip.order {
		fn := ip.funcs[full]
		for _, lc := range ip.loopCrossings(fn) {
			mult := "an unknown number of iterations"
			if lc.trip > 0 {
				mult = fmt.Sprintf("%d iterations", lc.trip)
			}
			var msg string
			if lc.via == "" {
				name := "an ocall"
				if lc.ocall != "" {
					name = fmt.Sprintf("ocall %q", lc.ocall)
				}
				msg = fmt.Sprintf("%s dispatches %s inside a loop (depth %d, %s): each iteration pays a full enclave round trip; batch the buffer and cross once, or justify with //sgxperf:allow(transamp)",
					fn.name, name, lc.depth, mult)
			} else {
				msg = fmt.Sprintf("%s calls %s inside a loop (depth %d, %s) and the callee transitively dispatches an ocall: each iteration pays a full enclave round trip; batch the buffer and cross once, or justify with //sgxperf:allow(transamp)",
					fn.name, lc.via, lc.depth, mult)
			}
			p.Reportf(lc.pos, "%s", msg)
		}
	}
	return nil
}
