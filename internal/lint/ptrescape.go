package lint

import "fmt"

// PtrEscapeCheck flags enclave pointers escaping through ocall
// arguments: an explicit &lvalue passed (directly or nested in the
// payload) to env.Ocall / env.OcallByID. The untrusted side keeps the
// address after the call returns — the moral equivalent of handing out
// a user_check pointer into enclave memory (§3.6) — and every later
// write through it bypasses the boundary copy discipline the machine
// model prices. Marshal a value copy instead, or move the state to the
// untrusted side.
//
// Fresh composite literals (&T{…}) are values built for the call, not
// enclave state, and are not flagged; neither are plain pointer-typed
// variables, whose provenance a single function cannot see. Deliberate
// escapes carry //sgxperf:allow(ptrescape) with a one-line
// justification.
var PtrEscapeCheck = &Analyzer{
	Name: "ptrescape",
	Doc: "forbid passing the address of enclave state as an ocall " +
		"argument: the untrusted side keeps the pointer",
	NeedTypes: true,
	Run:       runPtrEscape,
}

func runPtrEscape(p *Pass) error {
	// The shared whole-tree graph is safe here: escapes are per-function
	// facts independent of the graph's scope.
	ip := p.Interproc()
	for _, full := range ip.order {
		fn := ip.funcs[full]
		if fn.pkg != p.Pkg {
			continue
		}
		for _, e := range fn.escapes {
			what := "an ocall"
			if e.ocall != "" {
				what = fmt.Sprintf("ocall %q", e.ocall)
			}
			p.Reportf(e.pos, "%s passes enclave pointer %s to %s: the untrusted side keeps the address after the call returns; marshal a copy instead, or justify with //sgxperf:allow(ptrescape)",
				fn.name, e.expr, what)
		}
	}
	return nil
}
