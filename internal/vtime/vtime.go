// Package vtime provides the virtual-time substrate used by the SGX machine
// model. All simulated measurements are taken on virtual clocks that count
// CPU cycles at a configurable frequency, never on the wall clock, so every
// experiment in this repository is deterministic.
//
// Each simulated OS thread owns a Clock. Clocks only move forward. When two
// threads interact through a shared object (a lock handoff, a wake-up, a
// queue), their clocks are merged Lamport-style through a SyncPoint so that
// virtual time stays causally consistent across threads.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Cycles is a point in (or span of) virtual time, measured in CPU cycles.
type Cycles int64

// DefaultFrequencyHz matches the Intel Xeon E3-1230 v5 @ 3.40 GHz used in the
// paper's evaluation (§5).
const DefaultFrequencyHz = 3.4e9

// Frequency converts between cycles and wall-clock-shaped durations at a
// fixed CPU frequency.
type Frequency float64

// DefaultFrequency is the frequency used across the repository unless a test
// overrides it.
const DefaultFrequency = Frequency(DefaultFrequencyHz)

// Duration converts a cycle count into a time.Duration at frequency f.
func (f Frequency) Duration(c Cycles) time.Duration {
	return time.Duration(float64(c) / float64(f) * float64(time.Second))
}

// Cycles converts a duration into a cycle count at frequency f.
func (f Frequency) Cycles(d time.Duration) Cycles {
	return Cycles(d.Seconds() * float64(f))
}

// String renders the frequency in GHz.
func (f Frequency) String() string {
	return fmt.Sprintf("%.2f GHz", float64(f)/1e9)
}

// Clock is the virtual clock of a single simulated thread. It is not safe
// for concurrent use: exactly one goroutine (the simulated thread) may
// advance it. Cross-thread reads must go through a SyncPoint.
type Clock struct {
	freq Frequency
	now  Cycles
}

// NewClock returns a thread clock starting at cycle 0.
func NewClock(freq Frequency) *Clock {
	return &Clock{freq: freq}
}

// Now returns the current virtual time of this thread.
func (c *Clock) Now() Cycles { return c.now }

// Frequency returns the clock's frequency.
func (c *Clock) Frequency() Frequency { return c.freq }

// Advance moves the clock forward by n cycles. Negative advances are
// ignored: virtual time never goes backwards.
func (c *Clock) Advance(n Cycles) {
	if n > 0 {
		c.now += n
	}
}

// AdvanceDuration moves the clock forward by the cycle equivalent of d.
func (c *Clock) AdvanceDuration(d time.Duration) {
	c.Advance(c.freq.Cycles(d))
}

// MergeAtLeast raises the clock to t if t is ahead. It implements the
// receive half of a Lamport-clock merge.
func (c *Clock) MergeAtLeast(t Cycles) {
	if t > c.now {
		c.now = t
	}
}

// DurationSince returns the elapsed duration between start and the clock's
// current time.
func (c *Clock) DurationSince(start Cycles) time.Duration {
	return c.freq.Duration(c.now - start)
}

// SyncPoint is a shared rendezvous for virtual clocks. A thread publishing
// causality (unlocking a mutex, enqueueing work, waking a sleeper) calls
// Publish; a thread acquiring it calls Observe. SyncPoint is safe for
// concurrent use.
type SyncPoint struct {
	last atomic.Int64
}

// Publish records that an event at time t happened-before anything that
// later Observes this point.
func (p *SyncPoint) Publish(t Cycles) {
	for {
		cur := p.last.Load()
		if int64(t) <= cur {
			return
		}
		if p.last.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Observe merges the point's time into the given clock and returns the
// clock's (possibly raised) current time.
func (p *SyncPoint) Observe(c *Clock) Cycles {
	c.MergeAtLeast(Cycles(p.last.Load()))
	return c.Now()
}

// Time returns the last published time without merging.
func (p *SyncPoint) Time() Cycles { return Cycles(p.last.Load()) }
