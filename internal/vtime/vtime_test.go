package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFrequencyRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
	}{
		{"zero", 0},
		{"one_us", time.Microsecond},
		{"one_ms", time.Millisecond},
		{"mixed", 2130 * time.Nanosecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultFrequency.Cycles(tt.d)
			got := DefaultFrequency.Duration(c)
			if diff := got - tt.d; diff > time.Nanosecond || diff < -time.Nanosecond {
				t.Fatalf("round-trip %v -> %d cycles -> %v", tt.d, c, got)
			}
		})
	}
}

func TestFrequencyPaperCalibration(t *testing.T) {
	// §2.3.1: ≈5,850 cycles ≈ 2,130 ns on the 3.4 GHz evaluation machine.
	d := DefaultFrequency.Duration(5850)
	if d < 1700*time.Nanosecond || d > 1750*time.Nanosecond {
		// 5850 / 3.4e9 = 1720 ns for a one-way pair; the paper's 2130 ns
		// round-trip corresponds to ~7242 cycles at 3.4GHz. Their cycle
		// figure was measured with rdtsc on a different clock domain; we
		// only require self-consistency here.
		t.Fatalf("5850 cycles = %v, want ~1720ns", d)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(DefaultFrequency)
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(100)
	c.Advance(-50) // ignored
	c.Advance(0)
	if c.Now() != 100 {
		t.Fatalf("clock at %d, want 100", c.Now())
	}
	c.AdvanceDuration(time.Microsecond)
	want := Cycles(100) + DefaultFrequency.Cycles(time.Microsecond)
	if c.Now() != want {
		t.Fatalf("clock at %d, want %d", c.Now(), want)
	}
}

func TestClockMergeAtLeast(t *testing.T) {
	c := NewClock(DefaultFrequency)
	c.Advance(500)
	c.MergeAtLeast(200) // no-op, behind
	if c.Now() != 500 {
		t.Fatalf("merge went backwards: %d", c.Now())
	}
	c.MergeAtLeast(900)
	if c.Now() != 900 {
		t.Fatalf("merge failed: %d, want 900", c.Now())
	}
}

func TestClockDurationSince(t *testing.T) {
	c := NewClock(DefaultFrequency)
	c.AdvanceDuration(5 * time.Microsecond)
	start := c.Now()
	c.AdvanceDuration(10 * time.Microsecond)
	got := c.DurationSince(start)
	if got < 9999*time.Nanosecond || got > 10001*time.Nanosecond {
		t.Fatalf("DurationSince = %v, want ~10µs", got)
	}
}

func TestSyncPointPublishObserve(t *testing.T) {
	var p SyncPoint
	a := NewClock(DefaultFrequency)
	b := NewClock(DefaultFrequency)
	a.Advance(1000)
	p.Publish(a.Now())
	b.Advance(10)
	if got := p.Observe(b); got != 1000 {
		t.Fatalf("observe = %d, want 1000", got)
	}
	if b.Now() != 1000 {
		t.Fatalf("b not merged: %d", b.Now())
	}
	// Older publishes never lower the point.
	p.Publish(500)
	if p.Time() != 1000 {
		t.Fatalf("sync point lowered to %d", p.Time())
	}
}

func TestSyncPointConcurrent(t *testing.T) {
	var p SyncPoint
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClock(DefaultFrequency)
			for j := 0; j < 1000; j++ {
				c.Advance(Cycles(i + 1))
				p.Publish(c.Now())
				p.Observe(c)
			}
		}(i)
	}
	wg.Wait()
	// Workers observe each other's publishes, so clocks compound; the
	// point must end at least as high as the fastest isolated worker
	// (worker 15: 16 cycles × 1000 steps) and must never be zero.
	if p.Time() < 16000 {
		t.Fatalf("final sync point %d, want ≥16000", p.Time())
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: any interleaving of Advance/MergeAtLeast never decreases Now.
	f := func(steps []int16) bool {
		c := NewClock(DefaultFrequency)
		prev := Cycles(0)
		for _, s := range steps {
			if s%2 == 0 {
				c.Advance(Cycles(s))
			} else {
				c.MergeAtLeast(Cycles(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyConversionProperty(t *testing.T) {
	// Property: Cycles(Duration(c)) ≈ c. Duration truncates to whole
	// nanoseconds, so up to one nanosecond (≈3.4 cycles) may be lost.
	f := func(raw uint32) bool {
		c := Cycles(raw)
		back := DefaultFrequency.Cycles(DefaultFrequency.Duration(c))
		diff := back - c
		return diff >= -5 && diff <= 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
