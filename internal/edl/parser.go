package edl

import (
	"fmt"
)

// Parse parses EDL source into a validated Interface. Validation warnings
// are returned alongside; a non-nil error means the interface is unusable.
func Parse(src string) (*Interface, []string, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	iface, err := p.parseEnclave()
	if err != nil {
		return nil, nil, err
	}
	warnings, err := iface.Validate()
	if err != nil {
		return nil, warnings, err
	}
	return iface, warnings, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("edl:%d:%d: expected %v, found %v %q", t.line, t.col, k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if t.text != kw {
		return fmt.Errorf("edl:%d:%d: expected %q, found %q", t.line, t.col, kw, t.text)
	}
	return nil
}

// parseEnclave: 'enclave' '{' section* '}' ';'?
func (p *parser) parseEnclave() (*Interface, error) {
	if err := p.expectKeyword("enclave"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	iface := NewInterface()
	for p.cur().kind != tokRBrace {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "trusted":
			if err := p.parseSection(iface, true); err != nil {
				return nil, err
			}
		case "untrusted":
			if err := p.parseSection(iface, false); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("edl:%d:%d: expected 'trusted' or 'untrusted', found %q", t.line, t.col, t.text)
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if p.cur().kind == tokSemi {
		p.next()
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return iface, nil
}

// parseSection: '{' decl* '}' ';'?
func (p *parser) parseSection(iface *Interface, trusted bool) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		if err := p.parseDecl(iface, trusted); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return err
	}
	if p.cur().kind == tokSemi {
		p.next()
	}
	return nil
}

// parseDecl: ['public'] ident '(' params ')' ['allow' '(' idents ')'] ';'
func (p *parser) parseDecl(iface *Interface, trusted bool) error {
	public := false
	t, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if t.text == "public" {
		if !trusted {
			return fmt.Errorf("edl:%d:%d: 'public' only applies to ecalls", t.line, t.col)
		}
		public = true
		t, err = p.expect(tokIdent)
		if err != nil {
			return err
		}
	}
	name := t.text
	params, err := p.parseParams()
	if err != nil {
		return err
	}
	var allow []string
	if p.cur().kind == tokIdent && p.cur().text == "allow" {
		p.next()
		allow, err = p.parseAllow()
		if err != nil {
			return err
		}
		if trusted {
			return fmt.Errorf("edl: ecall %q carries an allow() list; allow applies to ocalls", name)
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if trusted {
		_, err = iface.AddEcall(name, public, params...)
	} else {
		_, err = iface.AddOcall(name, allow, params...)
	}
	return err
}

// parseParams: '(' [param {',' param}] ')'
func (p *parser) parseParams() ([]Param, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []Param
	if p.cur().kind == tokRParen {
		p.next()
		return params, nil
	}
	for {
		prm, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		params = append(params, prm)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

// parseParam: ['[' attr {',' attr} ']'] ident
func (p *parser) parseParam() (Param, error) {
	var prm Param
	prm.Dir = DirValue
	if p.cur().kind == tokLBracket {
		p.next()
		in, out := false, false
		for {
			t, err := p.expect(tokIdent)
			if err != nil {
				return prm, err
			}
			switch t.text {
			case "in":
				in = true
			case "out":
				out = true
			case "user_check":
				prm.Dir = DirUserCheck
			case "string":
				prm.IsString = true
			case "size":
				if _, err := p.expect(tokEq); err != nil {
					return prm, err
				}
				st, err := p.expect(tokIdent)
				if err != nil {
					return prm, err
				}
				prm.Size = st.text
			default:
				return prm, fmt.Errorf("edl:%d:%d: unknown attribute %q", t.line, t.col, t.text)
			}
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return prm, err
		}
		if prm.Dir != DirUserCheck {
			switch {
			case in && out:
				prm.Dir = DirInOut
			case in:
				prm.Dir = DirIn
			case out:
				prm.Dir = DirOut
			}
		} else if in || out {
			return prm, fmt.Errorf("edl: parameter combines user_check with in/out")
		}
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return prm, err
	}
	prm.Name = t.text
	return prm, nil
}

// parseAllow: '(' [ident {',' ident}] ')'
func (p *parser) parseAllow() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var names []string
	if p.cur().kind == tokRParen {
		p.next()
		return names, nil
	}
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		names = append(names, t.text)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return names, nil
}
