package edl

import (
	"fmt"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokEq
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokEq:
		return "'='"
	case tokEOF:
		return "end of input"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexError reports a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("edl:%d:%d: %s", e.line, e.col, e.msg)
}

// lex tokenises EDL source. It supports //-line and /* */ block comments.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k && i < n; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, &lexError{startLine, startCol, "unterminated block comment"}
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line, col})
			advance(1)
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line, col})
			advance(1)
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line, col})
			advance(1)
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line, col})
			advance(1)
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", line, col})
			advance(1)
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", line, col})
			advance(1)
		case c == ',':
			toks = append(toks, token{tokComma, ",", line, col})
			advance(1)
		case c == ';':
			toks = append(toks, token{tokSemi, ";", line, col})
			advance(1)
		case c == '=':
			toks = append(toks, token{tokEq, "=", line, col})
			advance(1)
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			start := i
			for i < n && isIdentCont(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{tokIdent, src[start:i], startLine, startCol})
		default:
			return nil, &lexError{line, col, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
