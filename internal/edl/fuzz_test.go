package edl

import (
	"strings"
	"testing"
)

// FuzzParse checks that the EDL parser never panics and that anything it
// accepts survives a Format→Parse round trip. Run the seeds with go test;
// explore with go test -fuzz=FuzzParse ./internal/edl.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleEDL,
		"enclave { };",
		"enclave { trusted { }; untrusted { }; };",
		"enclave { trusted { public e(); }; };",
		"enclave { trusted { public e([in, out, size=n] p, n); }; };",
		"enclave { untrusted { o([user_check] p) allow(); }; };",
		"enclave { /* comment */ trusted { public e(); // tail\n }; };",
		"enclave { trusted { public e(",
		"enclave { trusted { public public(); }; };",
		"banana",
		"",
		"enclave { trusted { public e([size=, in] p); }; };",
		strings.Repeat("enclave {", 50),
		// Shapes the static interface analyzer (internal/perf/staticlint)
		// cares about: reentrancy cycles via allow-lists, user_check
		// pointers on both call kinds, unreachable private ecalls, and
		// un-sized in/out buffers.
		`enclave {
    trusted {
        public ecall_put([in, size=len] buf, len);
        public ecall_peek([user_check] p);
        ecall_resume();
        ecall_orphan();
    };
    untrusted {
        ocall_wait() allow(ecall_resume);
        ocall_raw([user_check] buf);
        ocall_unsized([in] blob);
    };
};`,
		`enclave {
    trusted {
        public sgx_ecall_from_client([in, size=len] req, len);
        sgx_ecall_renew_session_key([user_check] sealed_key);
    };
    untrusted {
        ocall_zk_notify(code) allow(sgx_ecall_renew_session_key);
        ocall_print_debug([in, string] msg);
    };
};`,
		"enclave { untrusted { o1() allow(e1, e2); }; trusted { e2(); e1(); }; };",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		iface, _, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input: Format must be re-parseable and stable.
		text := iface.Format()
		again, _, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output unparsable: %v\ninput: %q\nformatted: %s", err, src, text)
		}
		if again.Format() != text {
			t.Fatalf("Format not a fixed point for %q", src)
		}
		if len(again.Ecalls()) != len(iface.Ecalls()) || len(again.Ocalls()) != len(iface.Ocalls()) {
			t.Fatalf("round trip changed function counts for %q", src)
		}
	})
}
