// Package edl implements a dialect of Intel's Enclave Description Language
// (§2.2): the interface definition from which the SDK's edger8r generates
// ecall/ocall wrappers. The model keeps exactly the information sgx-perf
// needs — public vs private ecalls, per-ocall allow-lists, and pointer
// direction annotations (in / out / user_check) — which drive both the
// runtime dispatch checks (§3.6) and the analyser's security hints
// (§4.3.2).
//
// Grammar (a simplification of Intel's, same shape):
//
//	enclave {
//	    trusted {
//	        public ecall_work([in, size=len] buf, len);
//	        ecall_helper([user_check] p);          // private: no 'public'
//	    };
//	    untrusted {
//	        ocall_print([in, string] msg) allow(ecall_helper);
//	        ocall_read([out, size=n] buf, n);
//	    };
//	};
package edl

import (
	"fmt"
	"strings"
)

// CallKind distinguishes ecalls from ocalls.
type CallKind int

const (
	// Ecall is a call from the untrusted application into the enclave.
	Ecall CallKind = iota + 1
	// Ocall is a call from the enclave out into the application.
	Ocall
)

// String names the kind.
func (k CallKind) String() string {
	switch k {
	case Ecall:
		return "ecall"
	case Ocall:
		return "ocall"
	default:
		return "unknown"
	}
}

// PtrDir is a pointer-direction annotation (§3.6).
type PtrDir int

const (
	// DirValue is a plain by-value parameter (no pointer annotation).
	DirValue PtrDir = iota + 1
	// DirIn copies the buffer into the enclave before an ecall (out of it
	// before an ocall).
	DirIn
	// DirOut copies the buffer out after the call.
	DirOut
	// DirInOut copies both ways.
	DirInOut
	// DirUserCheck leaves all pointer handling to the developer — the
	// annotation the analyser flags as a security risk.
	DirUserCheck
)

// String renders the direction as it appears in EDL.
func (d PtrDir) String() string {
	switch d {
	case DirValue:
		return "value"
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "in, out"
	case DirUserCheck:
		return "user_check"
	default:
		return "unknown"
	}
}

// Param is one declared parameter.
type Param struct {
	Name string
	Dir  PtrDir
	// Size names the parameter carrying the buffer length (size=len), if
	// any.
	Size string
	// IsString marks NUL-terminated string copying.
	IsString bool
}

// Func is one declared ecall or ocall.
type Func struct {
	Name string
	Kind CallKind
	// ID is the numeric identifier the runtime dispatches on; assigned in
	// declaration order, as edger8r does.
	ID int
	// Public applies to ecalls: private ecalls may only be issued during
	// an ocall (§3.6).
	Public bool
	Params []Param
	// Allow applies to ocalls: the ecalls that may be issued while this
	// ocall is in flight (§3.6).
	Allow []string
}

// HasUserCheck reports whether any parameter is annotated user_check.
func (f *Func) HasUserCheck() bool {
	for _, p := range f.Params {
		if p.Dir == DirUserCheck {
			return true
		}
	}
	return false
}

// Interface is a parsed, validated enclave interface.
type Interface struct {
	ecalls []*Func
	ocalls []*Func
	byName map[string]*Func
}

// NewInterface creates an empty interface for programmatic construction
// (workload code builds large interfaces this way instead of writing
// 200-entry EDL files by hand).
func NewInterface() *Interface {
	return &Interface{byName: make(map[string]*Func)}
}

// AddEcall declares an ecall; order of calls assigns IDs.
func (i *Interface) AddEcall(name string, public bool, params ...Param) (*Func, error) {
	if _, dup := i.byName[name]; dup {
		return nil, fmt.Errorf("edl: duplicate function %q", name)
	}
	f := &Func{Name: name, Kind: Ecall, ID: len(i.ecalls), Public: public, Params: params}
	i.ecalls = append(i.ecalls, f)
	i.byName[name] = f
	return f, nil
}

// AddOcall declares an ocall with its allow-list.
func (i *Interface) AddOcall(name string, allow []string, params ...Param) (*Func, error) {
	if _, dup := i.byName[name]; dup {
		return nil, fmt.Errorf("edl: duplicate function %q", name)
	}
	f := &Func{Name: name, Kind: Ocall, ID: len(i.ocalls), Params: params, Allow: allow}
	i.ocalls = append(i.ocalls, f)
	i.byName[name] = f
	return f, nil
}

// Ecalls returns the declared ecalls in ID order.
func (i *Interface) Ecalls() []*Func { return i.ecalls }

// Ocalls returns the declared ocalls in ID order.
func (i *Interface) Ocalls() []*Func { return i.ocalls }

// Lookup finds a function by name.
func (i *Interface) Lookup(name string) (*Func, bool) {
	f, ok := i.byName[name]
	return f, ok
}

// EcallByID returns the ecall with the given numeric ID.
func (i *Interface) EcallByID(id int) (*Func, bool) {
	if id < 0 || id >= len(i.ecalls) {
		return nil, false
	}
	return i.ecalls[id], true
}

// OcallByID returns the ocall with the given numeric ID.
func (i *Interface) OcallByID(id int) (*Func, bool) {
	if id < 0 || id >= len(i.ocalls) {
		return nil, false
	}
	return i.ocalls[id], true
}

// Allowed reports whether the named ecall may be issued during the given
// ocall.
func (i *Interface) Allowed(ocall, ecall string) bool {
	f, ok := i.byName[ocall]
	if !ok || f.Kind != Ocall {
		return false
	}
	for _, a := range f.Allow {
		if a == ecall {
			return true
		}
	}
	return false
}

// Validate checks interface consistency and returns (warnings, error).
// Errors are hard violations (unknown allow target, allow naming an
// ocall, size referencing a missing parameter); warnings flag risky but
// legal declarations (user_check pointers §3.6, unreachable private
// ecalls).
func (i *Interface) Validate() ([]string, error) {
	var warnings []string
	allowedSomewhere := make(map[string]bool)
	for _, o := range i.ocalls {
		for _, a := range o.Allow {
			target, ok := i.byName[a]
			if !ok {
				return warnings, fmt.Errorf("edl: ocall %q allows unknown function %q", o.Name, a)
			}
			if target.Kind != Ecall {
				return warnings, fmt.Errorf("edl: ocall %q allows %q, which is not an ecall", o.Name, a)
			}
			allowedSomewhere[a] = true
		}
	}
	check := func(f *Func) error {
		names := make(map[string]bool, len(f.Params))
		for _, p := range f.Params {
			if names[p.Name] {
				return fmt.Errorf("edl: %s %q: duplicate parameter %q", f.Kind, f.Name, p.Name)
			}
			names[p.Name] = true
		}
		for _, p := range f.Params {
			if p.Size != "" && !names[p.Size] {
				return fmt.Errorf("edl: %s %q: size=%s names no parameter", f.Kind, f.Name, p.Size)
			}
			if p.Dir == DirUserCheck {
				warnings = append(warnings, fmt.Sprintf(
					"%s %s: parameter %q is user_check; pointer handling is unvalidated (§3.6)",
					f.Kind, f.Name, p.Name))
			}
		}
		return nil
	}
	for _, f := range i.ecalls {
		if err := check(f); err != nil {
			return warnings, err
		}
		if !f.Public && !allowedSomewhere[f.Name] {
			warnings = append(warnings, fmt.Sprintf(
				"ecall %s is private but allowed by no ocall: unreachable", f.Name))
		}
	}
	for _, f := range i.ocalls {
		if err := check(f); err != nil {
			return warnings, err
		}
	}
	return warnings, nil
}

// Format renders the interface back to EDL text. The rendering
// round-trips: Parse(Format(i)) reproduces every function ID, parameter
// attribute and allow-list — allow entries keep their declaration order,
// which fixes which ecall a reentrancy finding names as its partner.
func (i *Interface) Format() string {
	var b strings.Builder
	b.WriteString("enclave {\n    trusted {\n")
	for _, f := range i.ecalls {
		b.WriteString("        ")
		if f.Public {
			b.WriteString("public ")
		}
		writeSig(&b, f)
		b.WriteString(";\n")
	}
	b.WriteString("    };\n    untrusted {\n")
	for _, f := range i.ocalls {
		b.WriteString("        ")
		writeSig(&b, f)
		if len(f.Allow) > 0 {
			b.WriteString(" allow(" + strings.Join(f.Allow, ", ") + ")")
		}
		b.WriteString(";\n")
	}
	b.WriteString("    };\n};\n")
	return b.String()
}

func writeSig(b *strings.Builder, f *Func) {
	b.WriteString(f.Name)
	b.WriteByte('(')
	for pi, p := range f.Params {
		if pi > 0 {
			b.WriteString(", ")
		}
		var attrs []string
		switch p.Dir {
		case DirIn:
			attrs = append(attrs, "in")
		case DirOut:
			attrs = append(attrs, "out")
		case DirInOut:
			attrs = append(attrs, "in", "out")
		case DirUserCheck:
			attrs = append(attrs, "user_check")
		}
		if p.IsString {
			attrs = append(attrs, "string")
		}
		if p.Size != "" {
			attrs = append(attrs, "size="+p.Size)
		}
		if len(attrs) > 0 {
			b.WriteString("[" + strings.Join(attrs, ", ") + "] ")
		}
		b.WriteString(p.Name)
	}
	b.WriteByte(')')
}
