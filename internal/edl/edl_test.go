package edl

import (
	"strings"
	"testing"
)

const sampleEDL = `
// The enclave interface for the quickstart example.
enclave {
    trusted {
        public ecall_encrypt([in, size=len] buf, len);
        public ecall_status();
        ecall_callback([user_check] p); /* private */
    };
    untrusted {
        ocall_print([in, string] msg) allow(ecall_callback);
        ocall_read([out, size=n] buf, n);
        ocall_nothing();
    };
};
`

func TestParseSample(t *testing.T) {
	iface, warnings, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Ecalls()) != 3 || len(iface.Ocalls()) != 3 {
		t.Fatalf("parsed %d ecalls, %d ocalls", len(iface.Ecalls()), len(iface.Ocalls()))
	}
	enc, ok := iface.Lookup("ecall_encrypt")
	if !ok || enc.Kind != Ecall || !enc.Public || enc.ID != 0 {
		t.Fatalf("ecall_encrypt = %+v", enc)
	}
	if enc.Params[0].Dir != DirIn || enc.Params[0].Size != "len" {
		t.Fatalf("ecall_encrypt param 0 = %+v", enc.Params[0])
	}
	if enc.Params[1].Dir != DirValue {
		t.Fatalf("ecall_encrypt param 1 = %+v", enc.Params[1])
	}
	cb, _ := iface.Lookup("ecall_callback")
	if cb.Public {
		t.Fatal("ecall_callback should be private")
	}
	if !cb.HasUserCheck() {
		t.Fatal("ecall_callback should have a user_check param")
	}
	pr, _ := iface.Lookup("ocall_print")
	if pr.Kind != Ocall || len(pr.Allow) != 1 || pr.Allow[0] != "ecall_callback" {
		t.Fatalf("ocall_print = %+v", pr)
	}
	if !pr.Params[0].IsString {
		t.Fatal("ocall_print msg should be a string param")
	}
	rd, _ := iface.Lookup("ocall_read")
	if rd.Params[0].Dir != DirOut || rd.Params[0].Size != "n" {
		t.Fatalf("ocall_read param 0 = %+v", rd.Params[0])
	}
	// user_check produces a warning.
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "user_check") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no user_check warning in %v", warnings)
	}
}

func TestAllowedQuery(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Allowed("ocall_print", "ecall_callback") {
		t.Fatal("allowed pair rejected")
	}
	if iface.Allowed("ocall_read", "ecall_callback") {
		t.Fatal("disallowed pair accepted")
	}
	if iface.Allowed("ecall_status", "ecall_callback") {
		t.Fatal("Allowed on an ecall name accepted")
	}
}

func TestIDAssignmentOrder(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	for want, f := range iface.Ecalls() {
		if f.ID != want {
			t.Fatalf("ecall %s ID = %d, want %d", f.Name, f.ID, want)
		}
		got, ok := iface.EcallByID(want)
		if !ok || got != f {
			t.Fatalf("EcallByID(%d) mismatch", want)
		}
	}
	if _, ok := iface.EcallByID(99); ok {
		t.Fatal("EcallByID out of range succeeded")
	}
	if _, ok := iface.OcallByID(-1); ok {
		t.Fatal("OcallByID(-1) succeeded")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	text := iface.Format()
	again, _, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, text)
	}
	if again.Format() != text {
		t.Fatalf("Format not a fixed point:\n%s\nvs\n%s", text, again.Format())
	}
}

// TestFormatSemanticRoundTrip checks the stronger contract Format
// documents: Parse(Format(i)) reproduces every function ID, parameter
// attribute and allow-list entry, with allow entries in declaration
// order. The order matters downstream — the static analyzer names the
// first allowed ecall as the reentrancy partner.
func TestFormatSemanticRoundTrip(t *testing.T) {
	iface := NewInterface()
	mustEcall := func(name string, public bool, params ...Param) {
		t.Helper()
		if _, err := iface.AddEcall(name, public, params...); err != nil {
			t.Fatal(err)
		}
	}
	mustOcall := func(name string, allow []string, params ...Param) {
		t.Helper()
		if _, err := iface.AddOcall(name, allow, params...); err != nil {
			t.Fatal(err)
		}
	}
	mustEcall("ecall_store", true,
		Param{Name: "buf", Dir: DirIn, Size: "len"},
		Param{Name: "len", Dir: DirValue})
	mustEcall("ecall_load", true,
		Param{Name: "buf", Dir: DirInOut, Size: "len"},
		Param{Name: "len", Dir: DirValue})
	mustEcall("ecall_cb_late", false)
	mustEcall("ecall_cb_early", false,
		Param{Name: "p", Dir: DirUserCheck})
	mustOcall("ocall_log", nil,
		Param{Name: "msg", Dir: DirIn, IsString: true})
	// Allow-list deliberately not in name order: declaration order must
	// survive the round trip.
	mustOcall("ocall_notify", []string{"ecall_cb_late", "ecall_cb_early"},
		Param{Name: "code", Dir: DirValue})

	again, _, err := Parse(iface.Format())
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, iface.Format())
	}
	checkFuncs := func(kind string, want, got []*Func) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s count: want %d, got %d", kind, len(want), len(got))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Name != g.Name || w.ID != g.ID || w.Public != g.Public || w.Kind != g.Kind {
				t.Errorf("%s %d: want %+v, got %+v", kind, i, w, g)
			}
			if len(w.Params) != len(g.Params) {
				t.Fatalf("%s %s param count: want %d, got %d", kind, w.Name, len(w.Params), len(g.Params))
			}
			for pi := range w.Params {
				if w.Params[pi] != g.Params[pi] {
					t.Errorf("%s %s param %d: want %+v, got %+v",
						kind, w.Name, pi, w.Params[pi], g.Params[pi])
				}
			}
			if len(w.Allow) != len(g.Allow) {
				t.Fatalf("%s %s allow count: want %v, got %v", kind, w.Name, w.Allow, g.Allow)
			}
			for ai := range w.Allow {
				if w.Allow[ai] != g.Allow[ai] {
					t.Errorf("%s %s allow order drifted: want %v, got %v",
						kind, w.Name, w.Allow, g.Allow)
				}
			}
		}
	}
	checkFuncs("ecall", iface.Ecalls(), again.Ecalls())
	checkFuncs("ocall", iface.Ocalls(), again.Ocalls())
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "expected"},
		{"not_enclave", "banana { };", `"enclave"`},
		{"allow_on_ecall", "enclave { trusted { public e() allow(x); }; };", "allow applies to ocalls"},
		{"public_ocall", "enclave { untrusted { public o(); }; };", "'public' only applies to ecalls"},
		{"unknown_attr", "enclave { trusted { public e([banana] p); }; };", "unknown attribute"},
		{"unknown_allow_target", "enclave { untrusted { o() allow(ghost); }; };", "unknown function"},
		{"allow_names_ocall", "enclave { untrusted { o1(); o2() allow(o1); }; };", "not an ecall"},
		{"dup_function", "enclave { trusted { public e(); public e(); }; };", "duplicate function"},
		{"dup_param", "enclave { trusted { public e(a, a); }; };", "duplicate parameter"},
		{"bad_size_ref", "enclave { trusted { public e([in, size=n] buf); }; };", "names no parameter"},
		{"user_check_with_in", "enclave { trusted { public e([user_check, in] p); }; };", "user_check with in/out"},
		{"unterminated_comment", "enclave { /* oops", "unterminated block comment"},
		{"bad_char", "enclave { trusted { public e(); }; }; $", "unexpected character"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

// TestValidateWarnings exercises every warning path of Validate with
// programmatically built interfaces: user_check pointers on both call
// kinds, unreachable private ecalls, and the clean cases that must stay
// silent (public ecalls, private ecalls reachable via an allow-list).
func TestValidateWarnings(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *Interface
		want  []string // substrings, one per expected warning, in order
	}{
		{
			name: "unreachable_private_ecall",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_hidden", false); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: []string{"ecall_hidden is private but allowed by no ocall"},
		},
		{
			name: "user_check_on_ecall",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_peek", true,
					Param{Name: "p", Dir: DirUserCheck}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: []string{`ecall ecall_peek: parameter "p" is user_check`},
		},
		{
			name: "user_check_on_ocall",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddOcall("ocall_raw", nil,
					Param{Name: "buf", Dir: DirUserCheck}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: []string{`ocall ocall_raw: parameter "buf" is user_check`},
		},
		{
			name: "reachable_private_ecall_is_silent",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_cb", false); err != nil {
					t.Fatal(err)
				}
				if _, err := iface.AddOcall("ocall_wait", []string{"ecall_cb"}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: nil,
		},
		{
			name: "public_ecall_is_silent",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_work", true,
					Param{Name: "buf", Dir: DirIn, Size: "len"},
					Param{Name: "len", Dir: DirValue}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: nil,
		},
		{
			name: "warnings_accumulate_across_functions",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_peek", true,
					Param{Name: "p", Dir: DirUserCheck}); err != nil {
					t.Fatal(err)
				}
				if _, err := iface.AddEcall("ecall_hidden", false); err != nil {
					t.Fatal(err)
				}
				if _, err := iface.AddOcall("ocall_raw", nil,
					Param{Name: "buf", Dir: DirUserCheck}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: []string{
				`ecall ecall_peek: parameter "p" is user_check`,
				"ecall_hidden is private but allowed by no ocall",
				`ocall ocall_raw: parameter "buf" is user_check`,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			warnings, err := tt.build(t).Validate()
			if err != nil {
				t.Fatal(err)
			}
			if len(warnings) != len(tt.want) {
				t.Fatalf("got %d warnings %v, want %d", len(warnings), warnings, len(tt.want))
			}
			for i, sub := range tt.want {
				if !strings.Contains(warnings[i], sub) {
					t.Errorf("warning %d = %q, want substring %q", i, warnings[i], sub)
				}
			}
		})
	}
}

// TestValidateErrors covers the hard-violation paths reachable only
// through the programmatic builder (the parser rejects these earlier).
func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *Interface
		want  string
	}{
		{
			name: "allow_unknown_function",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddOcall("ocall_x", []string{"ghost"}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: "allows unknown function",
		},
		{
			name: "allow_names_ocall",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddOcall("ocall_a", nil); err != nil {
					t.Fatal(err)
				}
				if _, err := iface.AddOcall("ocall_b", []string{"ocall_a"}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: "not an ecall",
		},
		{
			name: "duplicate_parameter",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_dup", true,
					Param{Name: "a"}, Param{Name: "a"}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: "duplicate parameter",
		},
		{
			name: "size_names_no_parameter",
			build: func(t *testing.T) *Interface {
				iface := NewInterface()
				if _, err := iface.AddEcall("ecall_bad", true,
					Param{Name: "buf", Dir: DirIn, Size: "missing"}); err != nil {
					t.Fatal(err)
				}
				return iface
			},
			want: "names no parameter",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build(t).Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestBuilderDuplicate(t *testing.T) {
	iface := NewInterface()
	if _, err := iface.AddEcall("f", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("f", nil); err == nil {
		t.Fatal("duplicate name across kinds accepted")
	}
}

func TestParamDirections(t *testing.T) {
	src := `enclave { trusted {
        public e([in] a, [out] b, [in, out] c, [user_check] d, e);
    }; }; `
	iface, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := iface.Lookup("e")
	want := []PtrDir{DirIn, DirOut, DirInOut, DirUserCheck, DirValue}
	for i, p := range f.Params {
		if p.Dir != want[i] {
			t.Errorf("param %d dir = %v, want %v", i, p.Dir, want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, _, err := Parse("enclave {\n  trusted {\n    public e(; \n  };\n};")
	if err == nil || !strings.Contains(err.Error(), "edl:3:") {
		t.Fatalf("error without useful position: %v", err)
	}
}

func TestLargeGeneratedInterface(t *testing.T) {
	// The TaLoS workload declares 207 ecalls programmatically (§5.2.1);
	// make sure large interfaces round-trip.
	iface := NewInterface()
	for i := 0; i < 207; i++ {
		name := "sgx_ecall_gen_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := iface.AddEcall(name, true, Param{Name: "x", Dir: DirValue}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 61; i++ {
		name := "enclave_ocall_gen_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := iface.AddOcall(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iface.Validate(); err != nil {
		t.Fatal(err)
	}
	parsed, _, err := Parse(iface.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ecalls()) != 207 || len(parsed.Ocalls()) != 61 {
		t.Fatalf("round trip lost functions: %d/%d", len(parsed.Ecalls()), len(parsed.Ocalls()))
	}
}
