package edl

import (
	"strings"
	"testing"
)

const sampleEDL = `
// The enclave interface for the quickstart example.
enclave {
    trusted {
        public ecall_encrypt([in, size=len] buf, len);
        public ecall_status();
        ecall_callback([user_check] p); /* private */
    };
    untrusted {
        ocall_print([in, string] msg) allow(ecall_callback);
        ocall_read([out, size=n] buf, n);
        ocall_nothing();
    };
};
`

func TestParseSample(t *testing.T) {
	iface, warnings, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Ecalls()) != 3 || len(iface.Ocalls()) != 3 {
		t.Fatalf("parsed %d ecalls, %d ocalls", len(iface.Ecalls()), len(iface.Ocalls()))
	}
	enc, ok := iface.Lookup("ecall_encrypt")
	if !ok || enc.Kind != Ecall || !enc.Public || enc.ID != 0 {
		t.Fatalf("ecall_encrypt = %+v", enc)
	}
	if enc.Params[0].Dir != DirIn || enc.Params[0].Size != "len" {
		t.Fatalf("ecall_encrypt param 0 = %+v", enc.Params[0])
	}
	if enc.Params[1].Dir != DirValue {
		t.Fatalf("ecall_encrypt param 1 = %+v", enc.Params[1])
	}
	cb, _ := iface.Lookup("ecall_callback")
	if cb.Public {
		t.Fatal("ecall_callback should be private")
	}
	if !cb.HasUserCheck() {
		t.Fatal("ecall_callback should have a user_check param")
	}
	pr, _ := iface.Lookup("ocall_print")
	if pr.Kind != Ocall || len(pr.Allow) != 1 || pr.Allow[0] != "ecall_callback" {
		t.Fatalf("ocall_print = %+v", pr)
	}
	if !pr.Params[0].IsString {
		t.Fatal("ocall_print msg should be a string param")
	}
	rd, _ := iface.Lookup("ocall_read")
	if rd.Params[0].Dir != DirOut || rd.Params[0].Size != "n" {
		t.Fatalf("ocall_read param 0 = %+v", rd.Params[0])
	}
	// user_check produces a warning.
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "user_check") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no user_check warning in %v", warnings)
	}
}

func TestAllowedQuery(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.Allowed("ocall_print", "ecall_callback") {
		t.Fatal("allowed pair rejected")
	}
	if iface.Allowed("ocall_read", "ecall_callback") {
		t.Fatal("disallowed pair accepted")
	}
	if iface.Allowed("ecall_status", "ecall_callback") {
		t.Fatal("Allowed on an ecall name accepted")
	}
}

func TestIDAssignmentOrder(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	for want, f := range iface.Ecalls() {
		if f.ID != want {
			t.Fatalf("ecall %s ID = %d, want %d", f.Name, f.ID, want)
		}
		got, ok := iface.EcallByID(want)
		if !ok || got != f {
			t.Fatalf("EcallByID(%d) mismatch", want)
		}
	}
	if _, ok := iface.EcallByID(99); ok {
		t.Fatal("EcallByID out of range succeeded")
	}
	if _, ok := iface.OcallByID(-1); ok {
		t.Fatal("OcallByID(-1) succeeded")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	iface, _, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	text := iface.Format()
	again, _, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, text)
	}
	if again.Format() != text {
		t.Fatalf("Format not a fixed point:\n%s\nvs\n%s", text, again.Format())
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "expected"},
		{"not_enclave", "banana { };", `"enclave"`},
		{"allow_on_ecall", "enclave { trusted { public e() allow(x); }; };", "allow applies to ocalls"},
		{"public_ocall", "enclave { untrusted { public o(); }; };", "'public' only applies to ecalls"},
		{"unknown_attr", "enclave { trusted { public e([banana] p); }; };", "unknown attribute"},
		{"unknown_allow_target", "enclave { untrusted { o() allow(ghost); }; };", "unknown function"},
		{"allow_names_ocall", "enclave { untrusted { o1(); o2() allow(o1); }; };", "not an ecall"},
		{"dup_function", "enclave { trusted { public e(); public e(); }; };", "duplicate function"},
		{"dup_param", "enclave { trusted { public e(a, a); }; };", "duplicate parameter"},
		{"bad_size_ref", "enclave { trusted { public e([in, size=n] buf); }; };", "names no parameter"},
		{"user_check_with_in", "enclave { trusted { public e([user_check, in] p); }; };", "user_check with in/out"},
		{"unterminated_comment", "enclave { /* oops", "unterminated block comment"},
		{"bad_char", "enclave { trusted { public e(); }; }; $", "unexpected character"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestValidateWarnsUnreachablePrivateEcall(t *testing.T) {
	iface := NewInterface()
	if _, err := iface.AddEcall("ecall_hidden", false); err != nil {
		t.Fatal(err)
	}
	warnings, err := iface.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "unreachable") {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestBuilderDuplicate(t *testing.T) {
	iface := NewInterface()
	if _, err := iface.AddEcall("f", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("f", nil); err == nil {
		t.Fatal("duplicate name across kinds accepted")
	}
}

func TestParamDirections(t *testing.T) {
	src := `enclave { trusted {
        public e([in] a, [out] b, [in, out] c, [user_check] d, e);
    }; }; `
	iface, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := iface.Lookup("e")
	want := []PtrDir{DirIn, DirOut, DirInOut, DirUserCheck, DirValue}
	for i, p := range f.Params {
		if p.Dir != want[i] {
			t.Errorf("param %d dir = %v, want %v", i, p.Dir, want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, _, err := Parse("enclave {\n  trusted {\n    public e(; \n  };\n};")
	if err == nil || !strings.Contains(err.Error(), "edl:3:") {
		t.Fatalf("error without useful position: %v", err)
	}
}

func TestLargeGeneratedInterface(t *testing.T) {
	// The TaLoS workload declares 207 ecalls programmatically (§5.2.1);
	// make sure large interfaces round-trip.
	iface := NewInterface()
	for i := 0; i < 207; i++ {
		name := "sgx_ecall_gen_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := iface.AddEcall(name, true, Param{Name: "x", Dir: DirValue}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 61; i++ {
		name := "enclave_ocall_gen_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := iface.AddOcall(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iface.Validate(); err != nil {
		t.Fatal(err)
	}
	parsed, _, err := Parse(iface.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ecalls()) != 207 || len(parsed.Ocalls()) != 61 {
		t.Fatalf("round trip lost functions: %d/%d", len(parsed.Ecalls()), len(parsed.Ocalls()))
	}
}
